module socrel

go 1.22
