// Package socrel is an architecture-based reliability prediction library
// for service-oriented computing, reproducing V. Grassi,
// "Architecture-Based Reliability Prediction for Service-Oriented
// Computing" (Architecting Dependable Systems III, LNCS 3549).
//
// A service publishes an analytic interface: formal parameters, attributes,
// and — for composite services — a usage-profile flow: a discrete-time
// Markov chain whose states contain cascading service requests under a
// completion model (AND / OR / k-of-n) and a dependency model (sharing /
// no sharing). Actual parameters, transition probabilities and failure laws
// are expressions over the formal parameters, which is what makes the
// prediction compositional: the engine propagates concrete parameter
// values down the assembly, adds a failure structure to each flow, and
// solves the resulting absorbing chains.
//
// # Quick start
//
//	cpu := socrel.NewCPU("cpu1", 1e9, 1e-10) // speed, failure rate
//	sorter := socrel.NewComposite("sorter", []string{"n"}, socrel.Attrs{"phi": 1e-6})
//	st, _ := sorter.Flow().AddState("work", socrel.AND, socrel.NoSharing)
//	st.AddRequest(socrel.Request{
//	    Role:     "cpu",
//	    Params:   []socrel.Expr{socrel.MustParseExpr("n * log2(n)")},
//	    Internal: socrel.SoftwareFailure(socrel.MustParseExpr("phi"), socrel.MustParseExpr("n * log2(n)")),
//	})
//	sorter.Flow().AddTransitionP(socrel.StartState, "work", 1)
//	sorter.Flow().AddTransitionP("work", socrel.EndState, 1)
//
//	asm := socrel.NewAssembly("demo")
//	asm.MustAddService(cpu)
//	asm.MustAddService(sorter)
//	asm.AddBinding("sorter", "cpu", "cpu1", "")
//
//	ev := socrel.NewEvaluator(asm, socrel.Options{})
//	rel, err := ev.Reliability("sorter", 1<<20)
//
// Subsystems re-exported here: the service model and connectors
// (internal/model), assemblies (internal/assembly), the evaluation engine
// (internal/core), the expression language (internal/expr), the Monte
// Carlo validator (internal/sim), the performance extension
// (internal/perf), the service registry with reliability-driven selection
// (internal/registry), the ADL (internal/adl), usage-profile estimation
// (internal/hmm), parameter studies (internal/sensitivity), and the
// self-healing runtime — retrying resolution, circuit-breaking health
// tracking, supervised rebinding, degraded-mode answers
// (internal/runtime; see extensions.go).
package socrel

import (
	"context"

	"socrel/internal/adl"
	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/expr"
	"socrel/internal/hmm"
	"socrel/internal/model"
	"socrel/internal/perf"
	"socrel/internal/registry"
	"socrel/internal/sensitivity"
	"socrel/internal/sim"
)

// Expression language.
type (
	// Expr is an immutable expression over formal parameters and
	// attributes.
	Expr = expr.Expr
	// Env binds identifiers to values during expression evaluation.
	Env = expr.Env
)

// ParseExpr parses expression source text.
func ParseExpr(source string) (Expr, error) { return expr.Parse(source) }

// MustParseExpr parses statically known-good expression text, panicking on
// error.
func MustParseExpr(source string) Expr { return expr.MustParse(source) }

// Num returns a numeric literal expression.
func Num(v float64) Expr { return expr.Num(v) }

// Var returns an identifier expression.
func Var(name string) Expr { return expr.Var(name) }

// Service model.
type (
	// Service is an analytic interface (simple or composite).
	Service = model.Service
	// Resolver resolves service names and role bindings; *Assembly is the
	// canonical implementation, and decorators (RetryResolver, fault
	// injectors) wrap one.
	Resolver = model.Resolver
	// Simple is a service with a closed-form failure law.
	Simple = model.Simple
	// Composite is a service realized by a flow of cascading requests.
	Composite = model.Composite
	// Flow is a composite service's usage profile.
	Flow = model.Flow
	// State is one flow state.
	State = model.State
	// Request is one cascading service request inside a state.
	Request = model.Request
	// Attrs holds the published attributes of an analytic interface.
	Attrs = model.Attrs
	// Completion selects how a state's requests must complete.
	Completion = model.Completion
	// Dependency selects the state's dependency model.
	Dependency = model.Dependency
	// RequestFailure is a request's (internal, external) failure pair.
	RequestFailure = model.RequestFailure
)

// Completion and dependency models (section 3.2 of the paper).
const (
	// AND requires every request of a state to complete.
	AND = model.AND
	// OR requires at least one request to complete.
	OR = model.OR
	// KOfN requires at least State.K requests to complete.
	KOfN = model.KOfN
	// NoSharing treats a state's requests as independent.
	NoSharing = model.NoSharing
	// Sharing models all requests of a state targeting one shared service.
	Sharing = model.Sharing
)

// Reserved flow state names.
const (
	// StartState is the entry state of every flow.
	StartState = model.StartState
	// EndState is the successful-completion absorbing state.
	EndState = model.EndState
)

// Connector roles bound by assemblies for the built-in connectors.
const (
	// RoleCPU is the LPC connector's processing role.
	RoleCPU = model.RoleCPU
	// RoleClientCPU is the RPC connector's client-side processing role.
	RoleClientCPU = model.RoleClientCPU
	// RoleServerCPU is the RPC connector's server-side processing role.
	RoleServerCPU = model.RoleServerCPU
	// RoleNet is the RPC connector's communication role.
	RoleNet = model.RoleNet
)

// NewSimple defines a simple service with an explicit failure-law
// expression over formals and attrs.
func NewSimple(name string, formals []string, attrs Attrs, pfail Expr) *Simple {
	return model.NewSimple(name, formals, attrs, pfail)
}

// NewCPU returns a processing resource: Pfail(N) = 1 - exp(-rate*N/speed)
// (equation 1 of the paper).
func NewCPU(name string, speed, failureRate float64) *Simple {
	return model.NewCPU(name, speed, failureRate)
}

// NewNetwork returns a communication resource:
// Pfail(B) = 1 - exp(-rate*B/bandwidth) (equation 2).
func NewNetwork(name string, bandwidth, failureRate float64) *Simple {
	return model.NewNetwork(name, bandwidth, failureRate)
}

// NewPerfect returns a perfectly reliable service (e.g. a "local
// processing" connector).
func NewPerfect(name string, formals ...string) *Simple {
	return model.NewPerfect(name, formals...)
}

// NewConstant returns a service with a constant failure probability.
func NewConstant(name string, pfail float64, formals ...string) *Simple {
	return model.NewConstant(name, pfail, formals...)
}

// NewComposite defines a composite service with an empty flow.
func NewComposite(name string, formals []string, attrs Attrs) *Composite {
	return model.NewComposite(name, formals, attrs)
}

// NewLPC builds the local-procedure-call connector of the paper's Figure 2
// (l control-transfer operations on the RoleCPU role).
func NewLPC(name string, l float64) (*Composite, error) { return model.NewLPC(name, l) }

// NewRPC builds the remote-procedure-call connector of Figure 2
// (c marshal operations and m transmitted bytes per size unit, over the
// RoleClientCPU / RoleServerCPU / RoleNet roles).
func NewRPC(name string, c, m float64) (*Composite, error) { return model.NewRPC(name, c, m) }

// SoftwareFailure is the internal-failure law of equation (14):
// 1 - (1-phi)^ops.
func SoftwareFailure(phi, ops Expr) Expr { return model.SoftwareFailure(phi, ops) }

// CombineState combines per-request failure probabilities into a state
// failure probability under the given models (equations 4-13 and the
// k-of-n extension).
func CombineState(completion Completion, dependency Dependency, k int, reqs []RequestFailure) (float64, error) {
	return model.CombineState(completion, dependency, k, reqs)
}

// Assemblies.
type (
	// Assembly is a set of services plus role bindings; it is the
	// resolver the evaluator runs against.
	Assembly = assembly.Assembly
	// Binding connects a (caller, role) pair to a provider and connector.
	Binding = assembly.Binding
	// PaperParams holds the constants of the paper's section 4 example.
	PaperParams = assembly.PaperParams
)

// NewAssembly returns an empty assembly.
func NewAssembly(name string) *Assembly { return assembly.New(name) }

// DefaultPaperParams returns the documented constants used to reproduce
// Figure 6 (see DESIGN.md section 5).
func DefaultPaperParams() PaperParams { return assembly.DefaultPaperParams() }

// LocalAssembly builds the paper's local assembly (Figure 3).
func LocalAssembly(p PaperParams) (*Assembly, error) { return assembly.LocalAssembly(p) }

// RemoteAssembly builds the paper's remote assembly (Figure 4).
func RemoteAssembly(p PaperParams) (*Assembly, error) { return assembly.RemoteAssembly(p) }

// Evaluation engine.
type (
	// Evaluator computes failure probabilities over an assembly.
	Evaluator = core.Evaluator
	// Options configures an Evaluator.
	Options = core.Options
	// CyclePolicy selects how recursive assemblies are treated.
	CyclePolicy = core.CyclePolicy
	// EvalReport is the per-state, per-request breakdown of an evaluation.
	EvalReport = core.Report
	// CompiledAssembly is an immutable compiled evaluator: bindings
	// resolved, expressions compiled to slot programs, chain skeletons
	// pre-built. Safe for concurrent use from any number of goroutines.
	CompiledAssembly = core.CompiledAssembly
)

// Cycle policies.
const (
	// CycleError rejects recursive assemblies (the paper's procedure).
	CycleError = core.CycleError
	// CycleFixedPoint solves them by fixed-point iteration (the paper's
	// proposed extension).
	CycleFixedPoint = core.CycleFixedPoint
)

// NewEvaluator returns an evaluator over the resolver (usually an
// *Assembly). The evaluator transparently compiles hot root services and
// serves repeat queries from the compiled artifact; use Compile directly
// for explicit compile-then-execute control and concurrent evaluation.
func NewEvaluator(resolver model.Resolver, opts Options) *Evaluator {
	return core.New(resolver, opts)
}

// Compile resolves, validates, and compiles every service of the assembly
// up front, returning an immutable CompiledAssembly whose Pfail /
// PfailBatch methods are safe for concurrent use:
//
//	ca, err := socrel.Compile(asm, socrel.Options{})
//	pfs, err := ca.PfailBatch("search", [][]float64{{1, 4096, 1}, {1, 8192, 1}})
//
// Compile rejects recursive assemblies and the iterative Markov solver
// with core.ErrNotCompilable; use NewEvaluator for those.
func Compile(asm *Assembly, opts Options) (*CompiledAssembly, error) {
	return core.Compile(asm, opts, asm.ServiceNames()...)
}

// CompileServices compiles only the given root services (and everything
// they transitively request) against an arbitrary resolver.
func CompileServices(resolver model.Resolver, opts Options, roots ...string) (*CompiledAssembly, error) {
	return core.Compile(resolver, opts, roots...)
}

// Parametric compilation: the absorbing chain is solved once,
// symbolically, so every evaluation (Pfail, PfailBatch, sweeps,
// uncertainty sampling) is a pure closed-form expression evaluation, and
// exact partial derivatives come for free via Sensitivities.
type (
	// ParametricOptions bounds the symbolic solve (cyclic-SCC state
	// bound, expression node budget) and observes fallbacks.
	ParametricOptions = core.ParametricOptions
	// ParametricStats counts closed forms, fallbacks, and how many
	// points each path answered.
	ParametricStats = core.ParametricStats
)

// Parametric-compilation sentinels and defaults.
var (
	// ErrNoParametricForm marks roots served numerically because no
	// closed form was built (Sensitivities wraps the fallback reason).
	ErrNoParametricForm = core.ErrNoParametricForm
	// ErrNonDifferentiable marks closed forms whose exact gradient does
	// not exist (absolute values, floors, minima along the solved path).
	ErrNonDifferentiable = core.ErrNonDifferentiable
)

// DefaultStateBound is the largest cyclic strongly-connected component
// CompileParametric eliminates symbolically before falling back to the
// numeric kernel for that root.
const DefaultStateBound = core.DefaultStateBound

// CompileParametric is Compile plus a symbolic solve of each root's
// absorbing chain: the resulting CompiledAssembly answers Pfail and
// PfailBatch by evaluating one compiled closed-form program per point
// (falling back to the numeric kernel transparently), exposes the form
// via ClosedForm, and exact partials via Sensitivities:
//
//	ca, err := socrel.CompileParametric(asm, socrel.Options{}, socrel.ParametricOptions{})
//	form, ok := ca.ClosedForm("search")     // printable Pfail(elem, list, res)
//	grads, err := ca.Sensitivities("search", 1, 4096, 1)
func CompileParametric(asm *Assembly, opts Options, popts ParametricOptions) (*CompiledAssembly, error) {
	return core.CompileParametric(asm, opts, popts, asm.ServiceNames()...)
}

// CompileParametricServices is CompileParametric for explicit roots
// against an arbitrary resolver.
func CompileParametricServices(resolver model.Resolver, opts Options, popts ParametricOptions, roots ...string) (*CompiledAssembly, error) {
	return core.CompileParametric(resolver, opts, popts, roots...)
}

// Resilience & error taxonomy (DESIGN.md section 8). Every failure an
// evaluation entry point returns matches one of these sentinels (or a
// model-layer sentinel such as model.ErrInvalidService) via errors.Is.
var (
	// ErrCanceled marks evaluations stopped by context cancellation or
	// deadline expiry.
	ErrCanceled = core.ErrCanceled
	// ErrNonFinite marks NaN or infinite probabilities produced by a
	// failure law, attribute, or transition expression.
	ErrNonFinite = core.ErrNonFinite
	// ErrNoConvergence marks iterative solves that exhausted their sweep
	// budget; errors.As extracts the *linalg.NoConvergenceError detail.
	ErrNoConvergence = core.ErrNoConvergence
	// ErrUnresolvedBinding marks requests whose role could not be resolved
	// to a registered provider or connector.
	ErrUnresolvedBinding = core.ErrUnresolvedBinding
	// ErrDefectiveFlow marks structurally broken usage profiles (bad row
	// sums, transition probabilities outside [0,1], no path to absorption).
	ErrDefectiveFlow = core.ErrDefectiveFlow
	// ErrNotCompilable marks assemblies the compiled engine rejects
	// (recursion, iterative solver, dynamic resolvers).
	ErrNotCompilable = core.ErrNotCompilable
	// ErrPanic marks evaluations recovered from a panicking expression or
	// model; errors.As extracts the *PanicError with value and stack.
	ErrPanic = core.ErrPanic
)

type (
	// PanicError carries the recovered value and stack of a panic isolated
	// inside an evaluation; it matches ErrPanic via errors.Is.
	PanicError = core.PanicError
	// EvalError prefixes a failure with the service/state path from the
	// evaluation root down to the defect.
	EvalError = core.EvalError
	// FallbackRecord describes one root service that degraded from the
	// compiled to the interpreted path (see Evaluator.Fallbacks and
	// Options.OnFallback).
	FallbackRecord = core.FallbackRecord
)

// Monte Carlo validation.
type (
	// Simulator is the fault-injection simulator.
	Simulator = sim.Simulator
	// SimOptions configures a Simulator.
	SimOptions = sim.Options
	// Estimate is a simulated reliability estimate with its confidence
	// interval.
	Estimate = sim.Estimate
)

// NewSimulator returns a simulator over the resolver.
func NewSimulator(resolver model.Resolver, opts SimOptions) *Simulator {
	return sim.New(resolver, opts)
}

// Performance extension.
type (
	// PerfProfile computes expected execution times (Markov rewards).
	PerfProfile = perf.Profile
)

// NewPerfProfile returns an empty performance profile over the resolver.
func NewPerfProfile(resolver model.Resolver) *PerfProfile { return perf.New(resolver) }

// Registry and selection.
type (
	// Registry is the publish/discover service registry.
	Registry = registry.Registry
	// Candidate is one provider/connector option for a role.
	Candidate = registry.Candidate
	// Selection is the result of reliability-driven provider selection.
	Selection = registry.Selection
)

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return registry.New() }

// SelectBinding picks the candidate binding maximizing the predicted
// reliability of the target invocation.
func SelectBinding(asm *Assembly, caller, role string, candidates []Candidate, opts Options, target string, params ...float64) (Selection, error) {
	return registry.SelectBinding(asm, caller, role, candidates, opts, target, params...)
}

// SelectBindingCtx is SelectBinding honoring cancellation and isolating
// candidate panics.
func SelectBindingCtx(ctx context.Context, asm *Assembly, caller, role string, candidates []Candidate, opts Options, target string, params ...float64) (Selection, error) {
	return registry.SelectBindingCtx(ctx, asm, caller, role, candidates, opts, target, params...)
}

// ADL.
type (
	// Document is a parsed ADL document (services + assemblies).
	Document = adl.Document
)

// ParseADL parses the textual analytic-interface DSL.
func ParseADL(source string) (*Document, error) { return adl.ParseDSL(source) }

// MarshalADLJSON serializes a document to JSON.
func MarshalADLJSON(d *Document) ([]byte, error) { return adl.MarshalJSON(d) }

// UnmarshalADLJSON parses a JSON document.
func UnmarshalADLJSON(data []byte) (*Document, error) { return adl.UnmarshalJSON(data) }

// Usage-profile estimation.

// EstimateChainFromTraces computes the maximum-likelihood usage-profile
// chain from fully observed state traces.
func EstimateChainFromTraces(traces [][]string) (*MarkovChain, error) {
	return hmm.EstimateChain(traces)
}

// MarkovChain is a discrete-time Markov chain (re-exported for trace
// estimation results and custom flows).
type MarkovChain = markovChain

// Parameter studies.
type (
	// Series is one named curve of a parameter sweep.
	Series = sensitivity.Series
	// SweepPoint is one sample of a series.
	SweepPoint = sensitivity.Point
)

// Sweep evaluates f over xs into a named series.
func Sweep(name string, xs []float64, f func(x float64) (float64, error)) (Series, error) {
	return sensitivity.Sweep(name, xs, f)
}

// SweepParallel evaluates f over xs (points in xs order in the result)
// with per-point panic isolation. For parallel throughput, sweep a
// compiled service through SweepBatch + CompiledBatch instead: the batch
// kernel owns the worker pool and the lane-vectorized solver.
func SweepParallel(name string, xs []float64, f func(x float64) (float64, error)) (Series, error) {
	return sensitivity.SweepParallel(name, xs, f)
}

// SweepParallelCtx is SweepParallel honoring cancellation (the sweep stops
// at the next point boundary with ErrCanceled) and isolating panics (a
// panicking point fails with ErrPanic without killing its siblings).
func SweepParallelCtx(ctx context.Context, name string, xs []float64, f func(x float64) (float64, error)) (Series, error) {
	return sensitivity.SweepParallelCtx(ctx, name, xs, f)
}

// BatchFunc evaluates a whole sweep grid in one call; CompiledBatch builds
// one from a compiled service so sweeps run through the batch kernel.
type BatchFunc = sensitivity.BatchFunc

// SweepBatch evaluates the whole grid through one BatchFunc call.
func SweepBatch(name string, xs []float64, bf BatchFunc) (Series, error) {
	return sensitivity.SweepBatch(name, xs, bf)
}

// SweepBatchCtx is SweepBatch honoring cancellation.
func SweepBatchCtx(ctx context.Context, name string, xs []float64, bf BatchFunc) (Series, error) {
	return sensitivity.SweepBatchCtx(ctx, name, xs, bf)
}

// CompiledBatch adapts a compiled service to a BatchFunc sweeping Pfail:
// frame maps the swept scalar to the service's actual parameters. The
// grid is evaluated by one PfailBatch call through the lane-vectorized
// kernel.
func CompiledBatch(ca *CompiledAssembly, service string, frame func(x float64) []float64) BatchFunc {
	return sensitivity.CompiledBatch(ca, service, frame)
}

// CompiledReliabilityBatch is CompiledBatch sweeping reliability (1-Pfail).
func CompiledReliabilityBatch(ca *CompiledAssembly, service string, frame func(x float64) []float64) BatchFunc {
	return sensitivity.CompiledReliabilityBatch(ca, service, frame)
}

// Crossover locates where f - g changes sign within [lo, hi] by bisection.
func Crossover(f, g func(x float64) (float64, error), lo, hi, tol float64) (float64, error) {
	return sensitivity.Crossover(f, g, lo, hi, tol)
}

// PowersOfTwo returns 2^loExp .. 2^hiExp inclusive.
func PowersOfTwo(loExp, hiExp int) ([]float64, error) {
	return sensitivity.PowersOfTwo(loExp, hiExp)
}
