// Monitoring closes the loop the paper's conclusion describes: prediction
// is "one side of the reliability assessment ..., with the other side
// represented by appropriate monitoring activities to check whether the
// assembly of selected services will actually achieve the predicted
// reliability."
//
// We predict the remote search assembly's reliability, "deploy" it (the
// fault-injection simulator plays the deployed system), stream invocation
// outcomes into a monitor, and watch the sequential test confirm the
// prediction. Then the network silently degrades — and the monitor flags
// the violation within a few hundred invocations.
//
// Run with: go run ./examples/monitoring
package main

import (
	"fmt"
	"log"

	"socrel"
)

func main() {
	p := socrel.DefaultPaperParams()
	p.Gamma = 5e-2
	asm, err := socrel.RemoteAssembly(p)
	if err != nil {
		log.Fatal(err)
	}

	predicted, err := socrel.NewEvaluator(asm, socrel.Options{}).
		Reliability("search", 1, 4096, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted reliability of search(1, 4096, 1): %.4f\n\n", predicted)

	mon, err := socrel.NewMonitor(socrel.MonitorConfig{
		Predicted: predicted,
		Degraded:  predicted * 0.9, // alarm if we run 10% below prediction
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: healthy deployment.
	healthy := socrel.NewSimulator(asm, socrel.SimOptions{Seed: 1})
	n := feedUntilDecision(mon, healthy)
	fmt.Printf("phase 1 (healthy): %s after %d invocations (observed %.4f)\n",
		mon.SPRT(), n, mon.Cumulative())

	// Phase 2: the network degrades 4x without anyone re-running the
	// prediction. Re-arm the sequential test and keep monitoring.
	mon.ResetSPRT()
	pBad := p
	pBad.Gamma = 2e-1
	asmBad, err := socrel.RemoteAssembly(pBad)
	if err != nil {
		log.Fatal(err)
	}
	degraded := socrel.NewSimulator(asmBad, socrel.SimOptions{Seed: 2})
	n = feedUntilDecision(mon, degraded)
	fmt.Printf("phase 2 (network degraded 4x): %s after %d further invocations (window %.4f)\n",
		mon.SPRT(), n, mon.Windowed())

	if mon.SPRT() == socrel.VerdictViolating {
		fmt.Println("\n-> violation detected: time to re-run selection against the new environment")
	}
}

func feedUntilDecision(mon *socrel.Monitor, s *socrel.Simulator) int {
	n := 0
	for mon.SPRT() == socrel.VerdictUndecided && n < 100000 {
		ok, err := s.Invoke("search", 1, 4096, 1)
		if err != nil {
			log.Fatal(err)
		}
		mon.Record(ok)
		n++
	}
	return n
}
