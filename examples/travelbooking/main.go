// Travelbooking models a realistic SOC composition — the kind of
// application the paper's introduction motivates: a trip-booking service
// that reserves a flight and a hotel and then charges the customer through
// replicated payment gateways.
//
// The example demonstrates the two phenomena the paper analyzes beyond
// plain composition:
//
//   - OR-replication: the booking tries two payment gateways; one success
//     suffices (a fault-tolerance feature, section 3.2's OR model).
//   - service sharing: if both "replicas" are actually fronts for the same
//     clearing house, their failures are correlated (the Sharing model),
//     and most of the replication benefit evaporates.
//
// Run with: go run ./examples/travelbooking
package main

import (
	"fmt"
	"log"

	"socrel"
)

func main() {
	for _, shared := range []bool{false, true} {
		asm, err := buildAssembly(shared)
		if err != nil {
			log.Fatal(err)
		}
		ev := socrel.NewEvaluator(asm, socrel.Options{})
		rel, err := ev.Reliability("booking", 2000) // 2000-byte itinerary
		if err != nil {
			log.Fatal(err)
		}
		arch := "independent payment gateways (NoSharing)"
		if shared {
			arch = "gateways behind one clearing house (Sharing)"
		}
		fmt.Printf("%-48s reliability = %.6f\n", arch, rel)

		rep, err := ev.Report("booking", 2000)
		if err != nil {
			log.Fatal(err)
		}
		for _, st := range rep.States {
			if st.Name == "pay" {
				fmt.Printf("  payment-state failure probability: %.6f\n", st.PFail)
			}
		}
	}
	fmt.Println()
	fmt.Println("The AND states (flight+hotel) are unaffected by sharing — the")
	fmt.Println("paper proves AND completion is sharing-invariant — but the OR")
	fmt.Println("payment state loses most of its fault tolerance when the")
	fmt.Println("gateways share a backend.")
}

// buildAssembly wires the booking application. The itinerary size (bytes)
// is the booking service's formal parameter and flows into every RPC
// connector's transmission cost.
func buildAssembly(sharedClearing bool) (*socrel.Assembly, error) {
	asm := socrel.NewAssembly("travel")

	// Infrastructure: the orchestrator node, a provider data center node,
	// and the WAN between them.
	for _, svc := range []socrel.Service{
		socrel.NewCPU("appnode", 1e9, 1e-9),
		socrel.NewCPU("dcnode", 1e9, 1e-9),
		socrel.NewNetwork("wan", 1e6, 2e-3),
		// Third-party services publish only their overall failure
		// probability — the "internal part" of their reliability.
		socrel.NewConstant("flightsvc", 0.002, "bytes"),
		socrel.NewConstant("hotelsvc", 0.003, "bytes"),
		socrel.NewConstant("gatewayA", 0.01, "bytes"),
		socrel.NewConstant("gatewayB", 0.01, "bytes"),
		// The clearing house both gateways depend on in the shared
		// architecture.
		socrel.NewConstant("clearing", 0.01, "bytes"),
	} {
		asm.MustAddService(svc)
	}

	rpc, err := socrel.NewRPC("rpc", 10, 1)
	if err != nil {
		return nil, err
	}
	asm.MustAddService(rpc)
	asm.AddBinding("rpc", socrel.RoleClientCPU, "appnode", "")
	asm.AddBinding("rpc", socrel.RoleServerCPU, "dcnode", "")
	asm.AddBinding("rpc", socrel.RoleNet, "wan", "")

	// The booking orchestration: reserve flight and hotel in parallel
	// (AND state), then charge through either gateway (OR state).
	booking := socrel.NewComposite("booking", []string{"bytes"}, socrel.Attrs{"phi": 1e-8})
	reserve, err := booking.Flow().AddState("reserve", socrel.AND, socrel.NoSharing)
	if err != nil {
		return nil, err
	}
	sz := socrel.Var("bytes")
	reserve.AddRequest(socrel.Request{
		Role: "flight", Params: []socrel.Expr{sz},
		ConnParams: []socrel.Expr{sz, socrel.Num(200)},
	})
	reserve.AddRequest(socrel.Request{
		Role: "hotel", Params: []socrel.Expr{sz},
		ConnParams: []socrel.Expr{sz, socrel.Num(200)},
	})

	dep := socrel.NoSharing
	if sharedClearing {
		dep = socrel.Sharing
	}
	pay, err := booking.Flow().AddState("pay", socrel.OR, dep)
	if err != nil {
		return nil, err
	}
	payReq := socrel.Request{
		Role: "payment", Params: []socrel.Expr{socrel.Num(512)},
		ConnParams: []socrel.Expr{socrel.Num(512), socrel.Num(64)},
	}
	pay.AddRequest(payReq)
	pay.AddRequest(payReq)

	for _, e := range []struct {
		from, to string
	}{
		{socrel.StartState, "reserve"},
		{"reserve", "pay"},
		{"pay", socrel.EndState},
	} {
		if err := booking.Flow().AddTransitionP(e.from, e.to, 1); err != nil {
			return nil, err
		}
	}
	asm.MustAddService(booking)

	asm.AddBinding("booking", "flight", "flightsvc", "rpc")
	asm.AddBinding("booking", "hotel", "hotelsvc", "rpc")
	if sharedClearing {
		// Both payment requests resolve to the single clearing house —
		// the paper's sharing restriction: same service, same connector.
		asm.AddBinding("booking", "payment", "clearing", "rpc")
	} else {
		// Independent gateways: model them as one role bound to gatewayA
		// for both requests would be sharing; to keep them independent
		// the OR state uses NoSharing over the same provider, which the
		// model treats as independent exposures.
		asm.AddBinding("booking", "payment", "gatewayA", "rpc")
	}
	if err := asm.Validate(); err != nil {
		return nil, err
	}
	return asm, nil
}
