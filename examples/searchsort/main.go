// Searchsort reproduces the paper's section 4 example end to end: the
// search service assembled with a local sort (LPC connector, shared node)
// or a remote sort (RPC connector over an unreliable network), compared
// across list sizes — the content of the paper's Figure 6 — including the
// crossover points where the better architecture flips.
//
// Run with: go run ./examples/searchsort
package main

import (
	"fmt"
	"log"
	"math"

	"socrel"
)

func main() {
	lists, err := socrel.PowersOfTwo(4, 20)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 6 reproduction: search-service reliability vs list size")
	fmt.Println()

	// One local curve per phi1 (local sort software failure rate); one
	// remote curve per gamma (network failure rate) — exactly the curves
	// the paper plots.
	for _, phi1 := range []float64{1e-6, 5e-6} {
		p := socrel.DefaultPaperParams()
		p.Phi1 = phi1
		asm, err := socrel.LocalAssembly(p)
		if err != nil {
			log.Fatal(err)
		}
		printCurve(fmt.Sprintf("local  phi1=%.0e", phi1), asm, lists)
	}
	for _, gamma := range []float64{1e-1, 5e-2, 2.5e-2, 5e-3} {
		p := socrel.DefaultPaperParams()
		p.Gamma = gamma
		asm, err := socrel.RemoteAssembly(p)
		if err != nil {
			log.Fatal(err)
		}
		printCurve(fmt.Sprintf("remote gamma=%.1e", gamma), asm, lists)
	}

	fmt.Println()
	fmt.Println("crossovers (where the remote assembly overtakes the local one):")
	for _, phi1 := range []float64{1e-6, 5e-6} {
		for _, gamma := range []float64{1e-1, 5e-2, 2.5e-2, 5e-3} {
			reportCrossover(phi1, gamma)
		}
	}
}

func printCurve(name string, asm *socrel.Assembly, lists []float64) {
	ev := socrel.NewEvaluator(asm, socrel.Options{})
	fmt.Printf("%-20s", name)
	for _, list := range lists {
		rel, err := ev.Reliability("search", 1, list, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf(" %.4f", rel)
	}
	fmt.Println()
}

func reportCrossover(phi1, gamma float64) {
	p := socrel.DefaultPaperParams()
	p.Phi1, p.Gamma = phi1, gamma
	localAsm, err := socrel.LocalAssembly(p)
	if err != nil {
		log.Fatal(err)
	}
	remoteAsm, err := socrel.RemoteAssembly(p)
	if err != nil {
		log.Fatal(err)
	}
	evL := socrel.NewEvaluator(localAsm, socrel.Options{})
	evR := socrel.NewEvaluator(remoteAsm, socrel.Options{})
	local := func(l float64) (float64, error) { return evL.Pfail("search", 1, l, 1) }
	remote := func(l float64) (float64, error) { return evR.Pfail("search", 1, l, 1) }

	x, err := socrel.Crossover(local, remote, 16, 1<<20, 1e-6)
	if err != nil {
		// No crossover in range: report who wins.
		lv, lerr := local(1 << 20)
		rv, rerr := remote(1 << 20)
		if lerr != nil || rerr != nil {
			log.Fatal(lerr, rerr)
		}
		winner := "local"
		if rv < lv {
			winner = "remote"
		}
		fmt.Printf("  phi1=%.0e gamma=%.1e: %s assembly wins across the whole range\n",
			phi1, gamma, winner)
		return
	}
	fmt.Printf("  phi1=%.0e gamma=%.1e: remote becomes more reliable above list ≈ 2^%.1f\n",
		phi1, gamma, math.Log2(x))
}
