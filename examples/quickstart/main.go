// Quickstart: define a tiny assembly — one software component deployed on
// one processor — and predict its reliability for different workloads.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"socrel"
)

func main() {
	// A processing resource: 1 GOPS, hardware failure rate 1e-8 per
	// second (equation 1 of the paper).
	cpu := socrel.NewCPU("cpu1", 1e9, 1e-8)

	// A sorter component with software failure rate phi per operation.
	// Its analytic interface says: sorting a list of n elements issues
	// n*log2(n) operations to the "cpu" role, and its own code may fail
	// per equation (14).
	sorter := socrel.NewComposite("sorter", []string{"n"}, socrel.Attrs{"phi": 1e-9})
	work, err := sorter.Flow().AddState("work", socrel.AND, socrel.NoSharing)
	if err != nil {
		log.Fatal(err)
	}
	ops := socrel.MustParseExpr("n * log2(n)")
	work.AddRequest(socrel.Request{
		Role:     "cpu",
		Params:   []socrel.Expr{ops},
		Internal: socrel.SoftwareFailure(socrel.Var("phi"), ops),
	})
	if err := sorter.Flow().AddTransitionP(socrel.StartState, "work", 1); err != nil {
		log.Fatal(err)
	}
	if err := sorter.Flow().AddTransitionP("work", socrel.EndState, 1); err != nil {
		log.Fatal(err)
	}

	// Assemble: the sorter's cpu role is served by cpu1 through a perfect
	// local connection.
	asm := socrel.NewAssembly("quickstart")
	asm.MustAddService(cpu)
	asm.MustAddService(sorter)
	asm.AddBinding("sorter", "cpu", "cpu1", "")
	if err := asm.Validate(); err != nil {
		log.Fatal(err)
	}

	// Predict: reliability as a function of the list size. The engine
	// propagates n into both the software failure law and the cpu demand.
	ev := socrel.NewEvaluator(asm, socrel.Options{})
	fmt.Println("list size     reliability")
	for _, n := range []float64{1 << 10, 1 << 15, 1 << 20, 1 << 25} {
		rel, err := ev.Reliability("sorter", n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.0f  %.9f\n", n, rel)
	}
}
