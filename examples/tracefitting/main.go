// Tracefitting closes the loop between monitoring and prediction: observe
// a deployed service's control flow, estimate its usage profile (the
// Markov chain of its analytic interface) from the traces, and re-run the
// reliability prediction with the estimated profile — the
// imperfect-knowledge setting the paper's section 5 discusses.
//
// Run with: go run ./examples/tracefitting
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"socrel"
)

func main() {
	p := socrel.DefaultPaperParams()
	p.Gamma = 5e-2

	// Ground truth: the remote assembly with the true branching
	// probability q = 0.9 (the chance the list needs sorting).
	asm, err := socrel.RemoteAssembly(p)
	if err != nil {
		log.Fatal(err)
	}
	truth, err := socrel.NewEvaluator(asm, socrel.Options{}).Reliability("search", 1, 4096, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("true q = %.2f, true predicted reliability = %.6f\n\n", p.Q, truth)

	// The observable behavior: the search flow's state sequence per
	// invocation (without failures — we are learning the usage profile,
	// not the failure rates).
	observed := socrel.NewMarkovChain()
	for _, tr := range []struct {
		from, to string
		prob     float64
	}{
		{"Start", "sort", p.Q},
		{"Start", "lookup", 1 - p.Q},
		{"sort", "lookup", 1},
		{"lookup", "End", 1},
	} {
		if err := observed.SetTransition(tr.from, tr.to, tr.prob); err != nil {
			log.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(7))
	fmt.Printf("%-8s %-12s %-12s %s\n", "traces", "q estimate", "|q error|", "|R error|")
	for _, n := range []int{10, 100, 1000, 10000} {
		traces := make([][]string, n)
		for i := range traces {
			w, err := observed.Walk(rng, "Start", 100)
			if err != nil {
				log.Fatal(err)
			}
			traces[i] = w
		}

		est, err := socrel.EstimateChainFromTraces(traces)
		if err != nil {
			log.Fatal(err)
		}
		qHat := est.Transition("Start", "sort")

		// Re-predict with the estimated profile.
		pHat := p
		pHat.Q = qHat
		asmHat, err := socrel.RemoteAssembly(pHat)
		if err != nil {
			log.Fatal(err)
		}
		rHat, err := socrel.NewEvaluator(asmHat, socrel.Options{}).Reliability("search", 1, 4096, 1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %-12.4f %-12.2e %.2e\n",
			n, qHat, math.Abs(qHat-p.Q), math.Abs(rHat-truth))
	}
	fmt.Println()
	fmt.Println("Prediction error tracks the O(1/sqrt(n)) profile-estimation error:")
	fmt.Println("a few thousand monitored invocations pin the prediction down.")
}
