// Selection demonstrates the SOC workflow the paper's introduction
// motivates: providers publish services (with analytic interfaces) into a
// registry; an integrator discovers candidates for a required role and
// selects the one whose assembly has the highest *predicted* reliability —
// a choice that depends on the workload and the network, not just on the
// providers' own failure rates.
//
// Run with: go run ./examples/selection
package main

import (
	"fmt"
	"log"

	"socrel"
)

func main() {
	p := socrel.DefaultPaperParams()

	// Providers publish their sort services into the registry.
	reg := socrel.NewRegistry()
	localAsm, err := socrel.LocalAssembly(p)
	if err != nil {
		log.Fatal(err)
	}
	remoteAsm, err := socrel.RemoteAssembly(p)
	if err != nil {
		log.Fatal(err)
	}
	for _, pub := range []struct {
		asm  *socrel.Assembly
		name string
		desc string
	}{
		{localAsm, "sort1", "co-located sort, software failure rate 1e-6"},
		{remoteAsm, "sort2", "remote sort farm, software failure rate 1e-7"},
	} {
		svc, err := pub.asm.ServiceByName(pub.name)
		if err != nil {
			log.Fatal(err)
		}
		if err := reg.Publish(svc, pub.desc, "sort"); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("discovered providers for capability 'sort':")
	for _, e := range reg.Discover("sort") {
		fmt.Printf("  %-8s %s\n", e.Service.Name(), e.Description)
	}
	fmt.Println()

	// The integrator's assembly contains both candidates; selection
	// evaluates each binding with the prediction engine.
	candidates := []socrel.Candidate{
		{Provider: "sort1", Connector: "lpc"},
		{Provider: "sort2", Connector: "rpc"},
	}

	fmt.Println("reliability-driven selection across environments:")
	fmt.Printf("%-10s %-10s %-8s %-10s %s\n", "gamma", "list", "chosen", "R(best)", "R(other)")
	for _, gamma := range []float64{5e-3, 2.5e-2, 1e-1} {
		for _, list := range []float64{256, 65536, 1 << 20} {
			pp := socrel.DefaultPaperParams()
			pp.Gamma = gamma
			asm, err := combined(pp)
			if err != nil {
				log.Fatal(err)
			}
			sel, err := socrel.SelectBinding(asm, "search", "sort", candidates,
				socrel.Options{}, "search", 1, list, 1)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-10.1e %-10.0f %-8s %-10.6f %.6f\n",
				gamma, list, sel.Candidate.Provider,
				sel.Ranking[0].Reliability, sel.Ranking[1].Reliability)
		}
	}
	fmt.Println()
	fmt.Println("The winner flips with workload and network quality — the reason")
	fmt.Println("the paper wants prediction wired into automatic service selection.")
}

// combined builds an assembly containing both sort providers and both
// connectors so selection can switch the binding.
func combined(p socrel.PaperParams) (*socrel.Assembly, error) {
	local, err := socrel.LocalAssembly(p)
	if err != nil {
		return nil, err
	}
	remote, err := socrel.RemoteAssembly(p)
	if err != nil {
		return nil, err
	}
	asm := local.Clone("combined")
	for _, name := range []string{"sort2", "rpc", "cpu2", "net12"} {
		svc, err := remote.ServiceByName(name)
		if err != nil {
			return nil, err
		}
		if err := asm.AddService(svc); err != nil {
			return nil, err
		}
	}
	asm.AddBinding("sort2", "cpu", "cpu2", "")
	asm.AddBinding("rpc", socrel.RoleClientCPU, "cpu1", "")
	asm.AddBinding("rpc", socrel.RoleServerCPU, "cpu2", "")
	asm.AddBinding("rpc", socrel.RoleNet, "net12", "")
	return asm, nil
}
