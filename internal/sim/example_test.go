package sim_test

import (
	"fmt"

	"socrel/internal/assembly"
	"socrel/internal/model"
	"socrel/internal/sim"
)

// Example estimates a service's reliability by fault injection and prints
// the confidence interval.
func Example() {
	asm := assembly.New("demo")
	asm.MustAddService(model.NewConstant("flaky", 0.25))
	s := sim.New(asm, sim.Options{Seed: 42})
	est, err := s.Estimate("flaky", 100000)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("true reliability 0.75 inside CI: %v\n", est.Contains(0.75))
	fmt.Printf("interval width under 1%%: %v\n", est.Hi-est.Lo < 0.01)
	// Output:
	// true reliability 0.75 inside CI: true
	// interval width under 1%: true
}
