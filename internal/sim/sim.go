// Package sim is a Monte Carlo fault-injection simulator for service
// assemblies. It executes the operational semantics that the analytic model
// of the paper abstracts: a service invocation walks the usage-profile
// flow, sampling internal and external failures per request, honoring the
// completion model (AND / OR / k-of-n) and the dependency model (under
// Sharing, the external outcome is sampled once per state and shared by all
// requests). The resulting reliability estimate provides an independent
// check of the analytic engine (experiment T4).
package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"socrel/internal/model"
)

// Errors returned by the simulator.
var (
	// ErrDepthExceeded is returned when invocation nesting exceeds the
	// configured bound (e.g. a recursive assembly that rarely terminates).
	ErrDepthExceeded = errors.New("sim: invocation depth exceeded")
	// ErrBadFlow is returned when a flow's sampled transition probabilities
	// are inconsistent.
	ErrBadFlow = errors.New("sim: invalid flow")
)

// Options configures a Simulator.
type Options struct {
	// Seed seeds the deterministic random source.
	Seed int64
	// MaxDepth bounds invocation nesting (default 512).
	MaxDepth int
	// MaxSteps bounds the number of flow transitions per invocation
	// (default 100000).
	MaxSteps int
	// Z is the normal quantile of the confidence interval reported by
	// Estimate (default 1.96, a 95% interval; use 3.29 for 99.9%).
	Z float64
}

func (o Options) withDefaults() Options {
	if o.MaxDepth <= 0 {
		o.MaxDepth = 512
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 100000
	}
	if o.Z <= 0 {
		o.Z = 1.959963984540054 // 95%
	}
	return o
}

// Simulator samples service invocations against a resolver.
type Simulator struct {
	resolver model.Resolver
	rng      *rand.Rand
	opts     Options

	// Timing state, active only inside EstimateTime.
	coster  Coster
	curTime float64
}

// New returns a Simulator over the given resolver.
func New(resolver model.Resolver, opts Options) *Simulator {
	opts = opts.withDefaults()
	return &Simulator{
		resolver: resolver,
		rng:      rand.New(rand.NewSource(opts.Seed)),
		opts:     opts,
	}
}

// Invoke performs one simulated invocation of the named service and reports
// whether it completed successfully.
func (s *Simulator) Invoke(service string, params ...float64) (bool, error) {
	svc, err := s.resolver.ServiceByName(service)
	if err != nil {
		return false, err
	}
	return s.invoke(svc, params, 0)
}

func (s *Simulator) invoke(svc model.Service, params []float64, depth int) (bool, error) {
	if depth > s.opts.MaxDepth {
		return false, fmt.Errorf("%w: %d levels at %s", ErrDepthExceeded, depth, svc.Name())
	}
	switch v := svc.(type) {
	case *model.Simple:
		p, err := v.Pfail(params)
		if err != nil {
			return false, err
		}
		if s.coster != nil {
			c, err := s.coster.SimpleCost(v.Name(), params)
			if err != nil {
				return false, err
			}
			s.curTime += c
		}
		return s.rng.Float64() >= p, nil
	case *model.Composite:
		return s.invokeComposite(v, params, depth)
	default:
		return false, fmt.Errorf("%w: unsupported service type %T", model.ErrInvalidService, svc)
	}
}

func (s *Simulator) invokeComposite(svc *model.Composite, params []float64, depth int) (bool, error) {
	env, err := model.Env(svc, params)
	if err != nil {
		return false, err
	}
	flow := svc.Flow()

	// Group transitions by source with evaluated probabilities.
	next := make(map[string][]sampledEdge)
	for _, tr := range flow.Transitions() {
		p, err := tr.Prob.Eval(env)
		if err != nil {
			return false, fmt.Errorf("sim: %s transition %s -> %s: %w", svc.Name(), tr.From, tr.To, err)
		}
		if p < 0 || p > 1+1e-12 {
			return false, fmt.Errorf("%w: %s: P(%s -> %s) = %g", ErrBadFlow, svc.Name(), tr.From, tr.To, p)
		}
		next[tr.From] = append(next[tr.From], sampledEdge{to: tr.To, p: p})
	}

	current := model.StartState
	for step := 0; step < s.opts.MaxSteps; step++ {
		if current == model.EndState {
			return true, nil
		}
		st := flow.State(current)
		if st == nil {
			return false, fmt.Errorf("%w: %s: missing state %q", ErrBadFlow, svc.Name(), current)
		}
		if current != model.StartState {
			ok, err := s.executeState(svc, st, env, depth)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil // fail-stop: the whole invocation fails
			}
		}
		edges := next[current]
		if len(edges) == 0 {
			return false, fmt.Errorf("%w: %s: state %q has no outgoing transition", ErrBadFlow, svc.Name(), current)
		}
		current = sampleEdge(s.rng, edges)
	}
	return false, fmt.Errorf("%w: %s: exceeded %d steps", ErrBadFlow, svc.Name(), s.opts.MaxSteps)
}

type sampledEdge struct {
	to string
	p  float64
}

func sampleEdge(rng *rand.Rand, edges []sampledEdge) string {
	u := rng.Float64()
	var acc float64
	for _, e := range edges {
		acc += e.p
		if u < acc {
			return e.to
		}
	}
	return edges[len(edges)-1].to
}

// executeState simulates one flow state: sample every request's internal
// and external outcome and apply the completion model.
//
// Under the Sharing dependency model each request still performs its own
// invocation of the shared service (its own exposure window, possibly with
// different parameters), but because the requests share one resource and no
// repair occurs (section 3.2), an external failure during any invocation
// fails every request of the state with probability one.
func (s *Simulator) executeState(svc *model.Composite, st *model.State, env map[string]float64, depth int) (bool, error) {
	if len(st.Requests) == 0 {
		return true, nil
	}
	successes := 0
	anyExtFail := false
	for _, req := range st.Requests {
		intOK := true
		if req.Internal != nil {
			p, err := req.Internal.Eval(env)
			if err != nil {
				return false, fmt.Errorf("sim: %s state %s internal: %w", svc.Name(), st.Name, err)
			}
			intOK = s.rng.Float64() >= clamp01(p)
		}
		extOK, err := s.executeRequest(svc, req, env, depth)
		if err != nil {
			return false, err
		}
		if !extOK {
			anyExtFail = true
		}
		if intOK && extOK {
			successes++
		}
	}
	if st.Dependency == model.Sharing && anyExtFail {
		// The shared resource is dead: every request of the state fails.
		return false, nil
	}
	switch st.Completion {
	case model.AND:
		return successes == len(st.Requests), nil
	case model.OR:
		return successes >= 1, nil
	case model.KOfN:
		return successes >= st.K, nil
	default:
		return false, fmt.Errorf("%w: %s state %s: completion %v", ErrBadFlow, svc.Name(), st.Name, st.Completion)
	}
}

// executeRequest samples the external part of a request: the connector
// transport and the provider execution.
func (s *Simulator) executeRequest(svc *model.Composite, req model.Request, env map[string]float64, depth int) (bool, error) {
	providerName, connectorName, err := s.resolver.Bind(svc.Name(), req.Role)
	if errors.Is(err, model.ErrNoBinding) {
		providerName, connectorName = req.Role, ""
	} else if err != nil {
		return false, err
	}
	provider, err := s.resolver.ServiceByName(providerName)
	if err != nil {
		return false, fmt.Errorf("sim: %s request %q: %w", svc.Name(), req.Role, err)
	}
	apVals := make([]float64, len(req.Params))
	for i, e := range req.Params {
		v, err := e.Eval(env)
		if err != nil {
			return false, fmt.Errorf("sim: %s request %q params: %w", svc.Name(), req.Role, err)
		}
		apVals[i] = v
	}
	if connectorName != "" {
		connector, err := s.resolver.ServiceByName(connectorName)
		if err != nil {
			return false, fmt.Errorf("sim: %s request %q connector: %w", svc.Name(), req.Role, err)
		}
		cpVals := make([]float64, len(req.ConnParams))
		for i, e := range req.ConnParams {
			v, err := e.Eval(env)
			if err != nil {
				return false, fmt.Errorf("sim: %s request %q connector params: %w", svc.Name(), req.Role, err)
			}
			cpVals[i] = v
		}
		ok, err := s.invoke(connector, cpVals, depth+1)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return s.invoke(provider, apVals, depth+1)
}

// Estimate is a reliability estimate from repeated simulated invocations,
// with a Wilson score 95% confidence interval.
type Estimate struct {
	// Trials is the number of simulated invocations.
	Trials int
	// Successes is the number that completed.
	Successes int
	// Reliability is the point estimate Successes/Trials.
	Reliability float64
	// Lo and Hi bound the Wilson 95% confidence interval.
	Lo, Hi float64
}

// Pfail returns the estimated failure probability.
func (e Estimate) Pfail() float64 { return 1 - e.Reliability }

// Contains reports whether the confidence interval contains the given
// reliability value.
func (e Estimate) Contains(reliability float64) bool {
	return reliability >= e.Lo && reliability <= e.Hi
}

// Estimate simulates trials invocations of the named service and returns
// the reliability estimate.
func (s *Simulator) Estimate(service string, trials int, params ...float64) (Estimate, error) {
	if trials <= 0 {
		return Estimate{}, fmt.Errorf("sim: trials must be positive, got %d", trials)
	}
	successes := 0
	for i := 0; i < trials; i++ {
		ok, err := s.Invoke(service, params...)
		if err != nil {
			return Estimate{}, err
		}
		if ok {
			successes++
		}
	}
	return newEstimate(trials, successes, s.opts.Z), nil
}

func newEstimate(trials, successes int, z float64) Estimate {
	p := float64(successes) / float64(trials)
	lo, hi := wilson(p, float64(trials), z)
	return Estimate{
		Trials:      trials,
		Successes:   successes,
		Reliability: p,
		Lo:          lo,
		Hi:          hi,
	}
}

// wilson computes the Wilson score interval for a binomial proportion.
func wilson(p, n, z float64) (lo, hi float64) {
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	return math.Max(0, center-half), math.Min(1, center+half)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
