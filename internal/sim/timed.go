package sim

import (
	"fmt"
	"sort"
)

// Coster supplies the execution time of a simple-service invocation.
// perf.Profile implements it via its registered cost laws.
type Coster interface {
	// SimpleCost returns the execution time of one invocation of the
	// named simple service with the given actual parameters.
	SimpleCost(service string, params []float64) (float64, error)
}

// TimedEstimate is a simulated response-time distribution, conditioned on
// successful completion (fail-stop runs abort and report no time).
type TimedEstimate struct {
	// Trials and Successes count the simulated invocations.
	Trials, Successes int
	// Mean is the average response time of successful runs.
	Mean float64
	// P50, P95, P99 are response-time percentiles of successful runs.
	P50, P95, P99 float64
	// Min and Max observed successful response times.
	Min, Max float64
}

// EstimateTime simulates trials invocations, accumulating the execution
// time of every simple-service call along each run (connector and nested
// composite flows included), and summarizes the response-time distribution
// of the successful runs. It complements the analytic expectation of the
// perf package with percentiles.
func (s *Simulator) EstimateTime(coster Coster, service string, trials int, params ...float64) (TimedEstimate, error) {
	if trials <= 0 {
		return TimedEstimate{}, fmt.Errorf("sim: trials must be positive, got %d", trials)
	}
	if coster == nil {
		return TimedEstimate{}, fmt.Errorf("sim: nil coster")
	}
	s.coster = coster
	defer func() { s.coster = nil }()

	var times []float64
	for i := 0; i < trials; i++ {
		s.curTime = 0
		ok, err := s.Invoke(service, params...)
		if err != nil {
			return TimedEstimate{}, err
		}
		if ok {
			times = append(times, s.curTime)
		}
	}
	est := TimedEstimate{Trials: trials, Successes: len(times)}
	if len(times) == 0 {
		return est, nil
	}
	sort.Float64s(times)
	var sum float64
	for _, t := range times {
		sum += t
	}
	est.Mean = sum / float64(len(times))
	est.P50 = timedQuantile(times, 0.50)
	est.P95 = timedQuantile(times, 0.95)
	est.P99 = timedQuantile(times, 0.99)
	est.Min = times[0]
	est.Max = times[len(times)-1]
	return est, nil
}

func timedQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	if lo >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
