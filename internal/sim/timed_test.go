package sim

import (
	"math"
	"testing"

	"socrel/internal/assembly"
	"socrel/internal/model"
	"socrel/internal/perf"
)

func paperCoster(t *testing.T, asm *assembly.Assembly) *perf.Profile {
	t.Helper()
	prof := perf.New(asm)
	if err := prof.UseCanonicalCosts(asm.ServiceNames()); err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestEstimateTimeMatchesAnalyticMean(t *testing.T) {
	// With negligible failures, the simulated mean response time must
	// match perf.ExpectedTime; the only randomness is the q-branch.
	p := assembly.DefaultPaperParams()
	asm, err := assembly.RemoteAssembly(p)
	if err != nil {
		t.Fatal(err)
	}
	prof := paperCoster(t, asm)
	list := 1024.0
	want, err := prof.ExpectedTime("search", 1, list, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := New(asm, Options{Seed: 4})
	est, err := s.EstimateTime(prof, "search", 20000, 1, list, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Successes == 0 {
		t.Fatal("no successful runs")
	}
	if math.Abs(est.Mean-want)/want > 0.02 {
		t.Errorf("simulated mean %g vs analytic %g", est.Mean, want)
	}
	// Percentile ordering and bounds.
	if !(est.Min <= est.P50 && est.P50 <= est.P95 && est.P95 <= est.P99 && est.P99 <= est.Max) {
		t.Errorf("percentiles out of order: %+v", est)
	}
	// The q-branch makes the distribution bimodal: the fast path (no
	// sort) must appear as a min far below the median.
	if est.Min > est.P50/10 {
		t.Errorf("expected a fast no-sort mode: min %g vs p50 %g", est.Min, est.P50)
	}
}

func TestEstimateTimeDeterministicFlow(t *testing.T) {
	// A deterministic single-path flow has zero spread.
	p := assembly.DefaultPaperParams()
	asm, err := assembly.LocalAssembly(p)
	if err != nil {
		t.Fatal(err)
	}
	prof := paperCoster(t, asm)
	s := New(asm, Options{Seed: 5})
	est, err := s.EstimateTime(prof, "sort1", 200, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if est.Successes == 0 {
		t.Fatal("no successes")
	}
	if est.Max-est.Min > 1e-15 {
		t.Errorf("deterministic flow has spread: %+v", est)
	}
	want := 4096 * math.Log2(4096) / p.S1
	if math.Abs(est.Mean-want) > 1e-12 {
		t.Errorf("mean = %g, want %g", est.Mean, want)
	}
}

func TestEstimateTimeErrors(t *testing.T) {
	p := assembly.DefaultPaperParams()
	asm, err := assembly.LocalAssembly(p)
	if err != nil {
		t.Fatal(err)
	}
	prof := paperCoster(t, asm)
	s := New(asm, Options{Seed: 6})
	if _, err := s.EstimateTime(prof, "search", 0, 1, 16, 1); err == nil {
		t.Error("expected error for zero trials")
	}
	if _, err := s.EstimateTime(nil, "search", 10, 1, 16, 1); err == nil {
		t.Error("expected error for nil coster")
	}
	if _, err := s.EstimateTime(prof, "ghost", 10); err == nil {
		t.Error("expected error for unknown service")
	}
}

func TestEstimateTimeAllFailures(t *testing.T) {
	// A certainly-failing assembly yields zero successes and empty stats.
	asm := newAssembly(t)
	asm.MustAddService(mustCPU(t))
	prof := perf.New(asm)
	prof.SetCost("cpu", perf.CPUCost())
	s := New(asm, Options{Seed: 7})
	est, err := s.EstimateTime(prof, "cpu", 50, 1e18) // hopeless workload
	if err != nil {
		t.Fatal(err)
	}
	if est.Successes != 0 || est.Mean != 0 {
		t.Errorf("est = %+v", est)
	}
}

func mustCPU(t *testing.T) *model.Simple {
	t.Helper()
	return model.NewCPU("cpu", 1, 1) // 1 op/s, 1 failure/s: doomed for big N
}
