package sim

// Cross-validation property test: for randomly generated assemblies —
// random flow shapes, completion/dependency models, connector usage and
// parameter expressions — the analytic engine and the fault-injection
// simulator must agree within binomial confidence bounds. This is the
// strongest end-to-end check in the repository: any divergence between the
// equations of section 3.2 and their operational meaning shows up here.

import (
	"fmt"
	"math/rand"
	"testing"

	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/expr"
	"socrel/internal/model"
)

// randomAssembly builds a random two-level assembly: a set of leaf
// services with random constant failure probabilities, optional connector
// services, and a root composite with a random flow over them.
func randomAssembly(rng *rand.Rand) (*assembly.Assembly, error) {
	asm := assembly.New("random")

	nLeaves := rng.Intn(3) + 1
	leaves := make([]string, nLeaves)
	for i := range leaves {
		leaves[i] = fmt.Sprintf("leaf%d", i)
		if err := asm.AddService(model.NewConstant(leaves[i], rng.Float64()*0.4, "x")); err != nil {
			return nil, err
		}
	}
	// One optional connector with a failure law over its (ip, op) params.
	hasConn := rng.Float64() < 0.5
	if hasConn {
		conn := model.NewSimple("conn", []string{"ip", "op"}, model.Attrs{"r": rng.Float64() * 0.001},
			expr.MustParse("1 - exp(-r * (ip + op))"))
		if err := asm.AddService(conn); err != nil {
			return nil, err
		}
	}

	root := model.NewComposite("root", []string{"n"}, model.Attrs{"phi": rng.Float64() * 0.01})
	nStates := rng.Intn(3) + 1
	stateNames := make([]string, nStates)
	for i := 0; i < nStates; i++ {
		stateNames[i] = fmt.Sprintf("st%d", i)
		completion := model.AND
		dep := model.NoSharing
		k := 0
		nReqs := rng.Intn(3) + 1
		switch rng.Intn(3) {
		case 1:
			completion = model.OR
		case 2:
			completion = model.KOfN
			k = rng.Intn(nReqs) + 1
		}
		// Sharing requires all requests to target one role.
		sharedRole := leaves[rng.Intn(nLeaves)]
		if rng.Float64() < 0.4 {
			dep = model.Sharing
		}
		st, err := root.Flow().AddState(stateNames[i], completion, dep)
		if err != nil {
			return nil, err
		}
		st.K = k
		for r := 0; r < nReqs; r++ {
			role := sharedRole
			if dep == model.NoSharing {
				role = leaves[rng.Intn(nLeaves)]
			}
			req := model.Request{
				Role:   role,
				Params: []expr.Expr{expr.MustParse("n * 2")},
			}
			if rng.Float64() < 0.5 {
				req.Internal = model.SoftwareFailure(expr.Var("phi"), expr.Var("n"))
			}
			st.AddRequest(req)
		}
	}
	// Connector usage is a property of the role binding, so pick the roles
	// routed through the connector and mark every request of those roles.
	connRoles := make(map[string]bool)
	if hasConn {
		for _, leaf := range leaves {
			if rng.Float64() < 0.4 {
				connRoles[leaf] = true
			}
		}
		for _, st := range root.Flow().States() {
			for i := range st.Requests {
				if connRoles[st.Requests[i].Role] {
					st.Requests[i].ConnParams = []expr.Expr{expr.Var("n"), expr.Num(1)}
				}
			}
		}
	}
	// Flow shape: sequential chain with a chance of skipping forward and a
	// self-loop on the first state. The loop mass is reserved up front so
	// each state's outgoing probabilities stay stochastic.
	loopP := 0.0
	if rng.Float64() < 0.4 {
		loopP = rng.Float64() * 0.4
		if err := root.Flow().AddTransitionP(stateNames[0], stateNames[0], loopP); err != nil {
			return nil, err
		}
	}
	scale := func(from string) float64 {
		if from == stateNames[0] {
			return 1 - loopP
		}
		return 1
	}
	prev := model.StartState
	for i, name := range stateNames {
		if i < nStates-1 && rng.Float64() < 0.3 {
			split := 0.3 + rng.Float64()*0.4
			if err := root.Flow().AddTransitionP(prev, name, scale(prev)*split); err != nil {
				return nil, err
			}
			if err := root.Flow().AddTransitionP(prev, stateNames[i+1], scale(prev)*(1-split)); err != nil {
				return nil, err
			}
		} else {
			if err := root.Flow().AddTransitionP(prev, name, scale(prev)); err != nil {
				return nil, err
			}
		}
		prev = name
	}
	// Close every state to End with its residual mass.
	outgoing := make(map[string]float64)
	for _, tr := range root.Flow().Transitions() {
		p, err := tr.Prob.Eval(nil)
		if err != nil {
			return nil, err
		}
		outgoing[tr.From] += p
	}
	for _, name := range stateNames {
		if rest := 1 - outgoing[name]; rest > 1e-12 {
			if err := root.Flow().AddTransitionP(name, model.EndState, rest); err != nil {
				return nil, err
			}
		}
	}
	if err := asm.AddService(root); err != nil {
		return nil, err
	}
	// Bindings: each leaf role resolves to the same-named service, through
	// the connector when the role was selected above.
	for _, leaf := range leaves {
		connector := ""
		if connRoles[leaf] {
			connector = "conn"
		}
		asm.AddBinding("root", leaf, leaf, connector)
	}
	if err := asm.Validate(); err != nil {
		return nil, err
	}
	return asm, nil
}

func TestEngineMatchesSimulatorOnRandomAssemblies(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte Carlo cross-check skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(2025))
	const trialsPerAssembly = 20000
	misses := 0
	const assemblies = 25
	for i := 0; i < assemblies; i++ {
		asm, err := randomAssembly(rng)
		if err != nil {
			t.Fatalf("assembly %d: %v", i, err)
		}
		n := float64(rng.Intn(50) + 1)
		want, err := core.New(asm, core.Options{}).Reliability("root", n)
		if err != nil {
			t.Fatalf("assembly %d: engine: %v", i, err)
		}
		est, err := New(asm, Options{Seed: int64(i), Z: 3.29}).
			Estimate("root", trialsPerAssembly, n)
		if err != nil {
			t.Fatalf("assembly %d: simulator: %v", i, err)
		}
		if !est.Contains(want) {
			misses++
			t.Logf("assembly %d: analytic %g outside CI [%g, %g]", i, want, est.Lo, est.Hi)
		}
	}
	// With 99.9% intervals, even one miss in 25 assemblies is unusual;
	// allow a single statistical straggler, fail on more.
	if misses > 1 {
		t.Errorf("%d of %d random assemblies disagree between engine and simulator", misses, assemblies)
	}
}
