package sim

import (
	"errors"
	"math"
	"testing"

	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/expr"
	"socrel/internal/model"
)

func newAssembly(t *testing.T, services ...model.Service) *assembly.Assembly {
	t.Helper()
	a := assembly.New("test")
	for _, s := range services {
		if err := a.AddService(s); err != nil {
			t.Fatal(err)
		}
	}
	return a
}

func TestSimpleServiceEstimate(t *testing.T) {
	a := newAssembly(t, model.NewConstant("flaky", 0.3))
	s := New(a, Options{Seed: 1})
	est, err := s.Estimate("flaky", 20000)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Contains(0.7) {
		t.Errorf("CI [%g, %g] does not contain 0.7 (point %g)", est.Lo, est.Hi, est.Reliability)
	}
	if est.Trials != 20000 || est.Successes <= 0 {
		t.Errorf("estimate = %+v", est)
	}
	if !approxEq(est.Pfail(), 1-est.Reliability, 1e-15) {
		t.Errorf("Pfail = %g", est.Pfail())
	}
}

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestEstimateErrors(t *testing.T) {
	a := newAssembly(t)
	s := New(a, Options{Seed: 1})
	if _, err := s.Estimate("ghost", 10); !errors.Is(err, model.ErrUnknownService) {
		t.Errorf("error = %v", err)
	}
	if _, err := s.Estimate("x", 0); err == nil {
		t.Error("expected error for zero trials")
	}
}

func TestRecursionDepthGuard(t *testing.T) {
	// A service that always re-invokes itself exceeds the depth bound.
	c := model.NewComposite("loop", nil, nil)
	st, err := c.Flow().AddState("s", model.AND, model.NoSharing)
	if err != nil {
		t.Fatal(err)
	}
	st.AddRequest(model.Request{Role: "loop"})
	if err := c.Flow().AddTransitionP(model.StartState, "s", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Flow().AddTransitionP("s", model.EndState, 1); err != nil {
		t.Fatal(err)
	}
	a := newAssembly(t, c)
	s := New(a, Options{Seed: 1, MaxDepth: 10})
	if _, err := s.Invoke("loop"); !errors.Is(err, ErrDepthExceeded) {
		t.Errorf("error = %v, want ErrDepthExceeded", err)
	}
}

// TestAgreesWithAnalyticPaperAssemblies is experiment T4's core assertion:
// on the paper's local and remote assemblies, the analytic reliability lies
// within the Monte Carlo confidence interval.
func TestAgreesWithAnalyticPaperAssemblies(t *testing.T) {
	p := assembly.DefaultPaperParams()
	// Stress the failure paths so the comparison is informative: a very
	// unreliable network and software.
	p.Gamma = 1e-1
	p.Phi1 = 5e-6
	elem, list, res := 1.0, 4096.0, 1.0

	for _, tc := range []struct {
		name  string
		build func(assembly.PaperParams) (*assembly.Assembly, error)
	}{
		{"local", assembly.LocalAssembly},
		{"remote", assembly.RemoteAssembly},
	} {
		t.Run(tc.name, func(t *testing.T) {
			asm, err := tc.build(p)
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.New(asm, core.Options{}).Reliability("search", elem, list, res)
			if err != nil {
				t.Fatal(err)
			}
			s := New(asm, Options{Seed: 42})
			est, err := s.Estimate("search", 30000, elem, list, res)
			if err != nil {
				t.Fatal(err)
			}
			if !est.Contains(want) {
				t.Errorf("analytic %g outside CI [%g, %g] (point %g)",
					want, est.Lo, est.Hi, est.Reliability)
			}
		})
	}
}

// TestSharingSemanticsMatchAnalytic verifies the simulator implements the
// sharing dependency operationally: one external sample shared by all
// requests of the state, matching equation (12).
func TestSharingSemanticsMatchAnalytic(t *testing.T) {
	backend := model.NewConstant("backend", 0.4)
	mk := func(name string, dep model.Dependency) *model.Composite {
		c := model.NewComposite(name, nil, nil)
		st, err := c.Flow().AddState("s", model.OR, dep)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			st.AddRequest(model.Request{Role: "backend", Internal: expr.Num(0.2)})
		}
		if err := c.Flow().AddTransitionP(model.StartState, "s", 1); err != nil {
			t.Fatal(err)
		}
		if err := c.Flow().AddTransitionP("s", model.EndState, 1); err != nil {
			t.Fatal(err)
		}
		return c
	}
	a := newAssembly(t, backend, mk("shared", model.Sharing), mk("indep", model.NoSharing))
	ev := core.New(a, core.Options{})
	s := New(a, Options{Seed: 7})
	for _, name := range []string{"shared", "indep"} {
		want, err := ev.Reliability(name)
		if err != nil {
			t.Fatal(err)
		}
		est, err := s.Estimate(name, 40000)
		if err != nil {
			t.Fatal(err)
		}
		if !est.Contains(want) {
			t.Errorf("%s: analytic %g outside CI [%g, %g]", name, want, est.Lo, est.Hi)
		}
	}
}

// TestKofNSemantics verifies the simulator and engine agree on the k-of-n
// completion extension.
func TestKofNSemantics(t *testing.T) {
	backend := model.NewConstant("backend", 0.35)
	c := model.NewComposite("app", nil, nil)
	st, err := c.Flow().AddState("s", model.KOfN, model.NoSharing)
	if err != nil {
		t.Fatal(err)
	}
	st.K = 2
	for i := 0; i < 4; i++ {
		st.AddRequest(model.Request{Role: "backend"})
	}
	if err := c.Flow().AddTransitionP(model.StartState, "s", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Flow().AddTransitionP("s", model.EndState, 1); err != nil {
		t.Fatal(err)
	}
	a := newAssembly(t, backend, c)
	want, err := core.New(a, core.Options{}).Reliability("app")
	if err != nil {
		t.Fatal(err)
	}
	est, err := New(a, Options{Seed: 3}).Estimate("app", 40000)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Contains(want) {
		t.Errorf("analytic %g outside CI [%g, %g]", want, est.Lo, est.Hi)
	}
}

func TestLoopingFlowSimulation(t *testing.T) {
	// Same looping flow as the engine test; verifies transition sampling.
	f, r := 0.1, 0.4
	leaf := model.NewConstant("leaf", f)
	c := model.NewComposite("app", nil, nil)
	st, err := c.Flow().AddState("s", model.AND, model.NoSharing)
	if err != nil {
		t.Fatal(err)
	}
	st.AddRequest(model.Request{Role: "leaf"})
	if err := c.Flow().AddTransitionP(model.StartState, "s", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Flow().AddTransitionP("s", "s", r); err != nil {
		t.Fatal(err)
	}
	if err := c.Flow().AddTransitionP("s", model.EndState, 1-r); err != nil {
		t.Fatal(err)
	}
	a := newAssembly(t, leaf, c)
	want := (1 - f) * (1 - r) / (1 - r*(1-f))
	est, err := New(a, Options{Seed: 11}).Estimate("app", 40000)
	if err != nil {
		t.Fatal(err)
	}
	if !est.Contains(want) {
		t.Errorf("analytic %g outside CI [%g, %g]", want, est.Lo, est.Hi)
	}
}

func TestWilsonIntervalProperties(t *testing.T) {
	// Interval is within [0,1], contains the point estimate, and shrinks
	// with more trials.
	narrow := newEstimate(100000, 50000, 1.96)
	wide := newEstimate(100, 50, 1.96)
	if narrow.Lo < 0 || narrow.Hi > 1 || wide.Lo < 0 || wide.Hi > 1 {
		t.Error("interval outside [0,1]")
	}
	if !narrow.Contains(narrow.Reliability) || !wide.Contains(wide.Reliability) {
		t.Error("interval excludes point estimate")
	}
	if (narrow.Hi - narrow.Lo) >= (wide.Hi - wide.Lo) {
		t.Error("interval does not shrink with trials")
	}
	// Degenerate cases do not produce NaN.
	zero := newEstimate(100, 0, 1.96)
	one := newEstimate(100, 100, 1.96)
	if math.IsNaN(zero.Lo) || math.IsNaN(one.Hi) {
		t.Error("NaN in degenerate Wilson interval")
	}
	if !approxEq(zero.Lo, 0, 1e-12) {
		t.Errorf("zero-success Lo = %g", zero.Lo)
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	p := assembly.DefaultPaperParams()
	asm, err := assembly.LocalAssembly(p)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := New(asm, Options{Seed: 5}).Estimate("search", 500, 1, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := New(asm, Options{Seed: 5}).Estimate("search", 500, 1, 256, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e1.Successes != e2.Successes {
		t.Errorf("same seed, different outcomes: %d vs %d", e1.Successes, e2.Successes)
	}
}
