package query

import (
	"errors"
	"fmt"
)

// The builder's structured error taxonomy. Every failure Build returns is
// (a join of) *BuildError values, each matching exactly one sentinel via
// errors.Is — so callers branch on the class without parsing prose, and a
// misuse is reported at build time, not at solve time. The style follows
// typed-query builders (tsq): record operations freely, validate
// everything at once, name every way a composition can be wrong.
var (
	// ErrUnknownAssembly marks a variant built over an assembly name the
	// document does not define.
	ErrUnknownAssembly = errors.New("query: unknown assembly")
	// ErrUnknownService marks a handle naming a service the document does
	// not define.
	ErrUnknownService = errors.New("query: unknown service")
	// ErrUnknownRole marks a role handle whose composite never requests
	// that role.
	ErrUnknownRole = errors.New("query: unknown role")
	// ErrUnknownParam marks a parameter vector naming a formal parameter
	// the service does not declare.
	ErrUnknownParam = errors.New("query: unknown formal parameter")
	// ErrMissingParam marks a parameter vector that omits a declared
	// formal parameter.
	ErrMissingParam = errors.New("query: missing formal parameter")
	// ErrUnknownAttr marks an attribute override naming an attribute the
	// service does not publish.
	ErrUnknownAttr = errors.New("query: unknown attribute")
	// ErrIncompatibleOverride marks an override that names known parts but
	// cannot work: provider/connector arity does not match the call sites,
	// the caller is not a composite, a non-composite is used as a caller,
	// or an attribute value is not finite.
	ErrIncompatibleOverride = errors.New("query: incompatible override")
	// ErrConflictingOverride marks two operations that contradict each
	// other (the same role rebound twice, the same attribute set twice).
	ErrConflictingOverride = errors.New("query: conflicting override")
	// ErrNoCandidates marks a Select over an empty candidate set.
	ErrNoCandidates = errors.New("query: no candidates")
)

// BuildError is one build-time validation failure: the operation that
// caused it (as the caller wrote it) and the classified cause. It matches
// its sentinel via errors.Is and is extracted with errors.As.
type BuildError struct {
	// Op names the builder operation, e.g. `Rebind(search.sort)`.
	Op string
	// Err wraps exactly one of the sentinel errors above.
	Err error
}

func (e *BuildError) Error() string { return fmt.Sprintf("%s: %v", e.Op, e.Err) }

// Unwrap exposes the classified cause to errors.Is / errors.As.
func (e *BuildError) Unwrap() error { return e.Err }

// opErr builds a *BuildError wrapping sentinel with a detail message.
func opErr(op string, sentinel error, format string, args ...any) error {
	return &BuildError{Op: op, Err: fmt.Errorf("%w: %s", sentinel, fmt.Sprintf(format, args...))}
}
