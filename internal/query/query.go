// Package query is the typed query/builder layer over ADL documents: the
// programmatic way to compose "this stored assembly, but with the network
// provider swapped" without string templates. Handles (ServiceRef,
// RoleRef) are cheap typed names into a document; every operation on a
// Builder is recorded and validated together at Build time, which returns
// the structured error taxonomy of errors.go instead of failing later at
// solve time.
//
//	q := query.From(doc)
//	b := q.Variant("remote").Named("remote-alt").
//		Rebind(q.Service("rpc").Role("net"), query.To(q.Service("net13"))).
//		SetAttr(q.Service("search"), "q", 0.95)
//	asm, err := b.Build()          // -> *assembly.Assembly, typed errors
//	doc2, err := b.BuildDocument() // -> publishable variant document
package query

import (
	"fmt"
	"math"
	"sort"

	"socrel/internal/adl"
	"socrel/internal/model"
)

// Query is a read-only typed view over a parsed ADL document.
type Query struct {
	doc *adl.Document
}

// From wraps a document. The document is not copied; it must not be
// mutated while the query is in use.
func From(doc *adl.Document) *Query { return &Query{doc: doc} }

// Doc returns the underlying document.
func (q *Query) Doc() *adl.Document { return q.doc }

// Services returns the declared service names in declaration order.
func (q *Query) Services() []string {
	out := make([]string, len(q.doc.Services))
	for i, s := range q.doc.Services {
		out[i] = s.Name()
	}
	return out
}

// Assemblies returns the declared assembly names in declaration order.
func (q *Query) Assemblies() []string { return q.doc.AssemblyNames() }

// Service returns a typed handle on the named service. The handle is
// always valid to create; existence is checked when it is used (Build,
// ParamVector, ...), in the tsq style of deferred validation.
func (q *Query) Service(name string) ServiceRef { return ServiceRef{q: q, name: name} }

// ServiceRef is a typed handle on one service of a document.
type ServiceRef struct {
	q    *Query
	name string
}

// Name returns the referenced service name.
func (s ServiceRef) Name() string { return s.name }

// Exists reports whether the document defines the service.
func (s ServiceRef) Exists() bool {
	_, ok := s.q.doc.Service(s.name)
	return ok
}

// Role returns a typed handle on a required role of this (composite)
// service — the left-hand side of a binding override.
func (s ServiceRef) Role(role string) RoleRef { return RoleRef{svc: s, role: role} }

// Formals returns the service's formal parameter names in declaration
// order, or ErrUnknownService.
func (s ServiceRef) Formals() ([]string, error) {
	svc, ok := s.q.doc.Service(s.name)
	if !ok {
		return nil, opErr(fmt.Sprintf("Service(%s)", s.name), ErrUnknownService, "document defines %v", s.q.Services())
	}
	return svc.FormalParams(), nil
}

// Attrs returns a copy of the service's published attributes, or
// ErrUnknownService.
func (s ServiceRef) Attrs() (model.Attrs, error) {
	svc, ok := s.q.doc.Service(s.name)
	if !ok {
		return nil, opErr(fmt.Sprintf("Service(%s)", s.name), ErrUnknownService, "document defines %v", s.q.Services())
	}
	out := make(model.Attrs, len(svc.Attributes()))
	for k, v := range svc.Attributes() {
		out[k] = v
	}
	return out, nil
}

// Roles returns the roles the (composite) service requests, sorted;
// simple services have none.
func (s ServiceRef) Roles() ([]string, error) {
	svc, ok := s.q.doc.Service(s.name)
	if !ok {
		return nil, opErr(fmt.Sprintf("Service(%s)", s.name), ErrUnknownService, "document defines %v", s.q.Services())
	}
	comp, ok := svc.(*model.Composite)
	if !ok {
		return nil, nil
	}
	roles := comp.Roles()
	sort.Strings(roles)
	return roles, nil
}

// ParamVector assembles the service's actual-parameter vector from a
// name→value map — the typed replacement for hand-ordering positional
// parameters. Every formal must be supplied (ErrMissingParam) and every
// key must be a declared formal (ErrUnknownParam).
func (s ServiceRef) ParamVector(vals map[string]float64) ([]float64, error) {
	op := fmt.Sprintf("ParamVector(%s)", s.name)
	svc, ok := s.q.doc.Service(s.name)
	if !ok {
		return nil, opErr(op, ErrUnknownService, "document defines %v", s.q.Services())
	}
	formals := svc.FormalParams()
	index := make(map[string]int, len(formals))
	for i, f := range formals {
		index[f] = i
	}
	for name := range vals {
		if _, ok := index[name]; !ok {
			return nil, opErr(op, ErrUnknownParam, "%q is not a formal of %s (has %v)", name, s.name, formals)
		}
	}
	out := make([]float64, len(formals))
	for i, f := range formals {
		v, ok := vals[f]
		if !ok {
			return nil, opErr(op, ErrMissingParam, "formal %q of %s not supplied", f, s.name)
		}
		out[i] = v
	}
	return out, nil
}

// RoleRef is a typed handle on a (caller, role) pair — the unit a binding
// override targets.
type RoleRef struct {
	svc  ServiceRef
	role string
}

// Caller returns the caller service handle.
func (r RoleRef) Caller() ServiceRef { return r.svc }

// Role returns the role name.
func (r RoleRef) Role() string { return r.role }

func (r RoleRef) String() string { return r.svc.name + "." + r.role }

// BindingSpec is the typed right-hand side of a binding override: a
// provider, optionally reached through a connector.
type BindingSpec struct {
	provider  ServiceRef
	connector ServiceRef
	hasConn   bool
}

// To binds directly to a provider (perfect connection).
func To(provider ServiceRef) BindingSpec { return BindingSpec{provider: provider} }

// Via routes the binding through a connector service.
func (b BindingSpec) Via(connector ServiceRef) BindingSpec {
	b.connector = connector
	b.hasConn = true
	return b
}

func (b BindingSpec) String() string {
	if b.hasConn {
		return b.provider.name + " via " + b.connector.name
	}
	return b.provider.name
}

// isFinite reports whether v is a usable attribute value.
func isFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
