package query

import (
	"context"
	"errors"
	"fmt"

	"socrel/internal/adl"
	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/model"
	"socrel/internal/registry"
)

// Builder derives a variant assembly from a document's base assembly.
// Operations are recorded in call order and validated together by Build;
// a Builder is single-use and not safe for concurrent use.
type Builder struct {
	q    *Query
	base string // base assembly name
	name string // variant name ("" = base name)
	opts core.Options
	ops  []buildOp
}

// buildOp is one recorded operation, applied and validated at Build time.
type buildOp struct {
	op      string // rendered operation, e.g. "Rebind(search.sort)"
	rebind  *rebindOp
	setAttr *setAttrOp
	define  model.Service
	include *ServiceRef
	sel     *selectOp
}

type rebindOp struct {
	role RoleRef
	to   BindingSpec
}

type setAttrOp struct {
	svc   ServiceRef
	attr  string
	value float64
}

type selectOp struct {
	role       RoleRef
	candidates []registry.Candidate
	target     ServiceRef
	params     []float64
}

// Variant starts a builder over the named base assembly of the document.
func (q *Query) Variant(assemblyName string) *Builder {
	return &Builder{q: q, base: assemblyName}
}

// Named sets the variant assembly's name (default: the base name).
func (b *Builder) Named(name string) *Builder {
	b.name = name
	return b
}

// WithOptions sets the engine options used by registry-driven Select
// scoring (and only there; Build itself is engine-free).
func (b *Builder) WithOptions(opts core.Options) *Builder {
	b.opts = opts
	return b
}

// Rebind overrides the binding of a (caller, role) pair: requests for
// role made by the caller are served by the spec's provider (through its
// connector, when given) instead of the base binding.
func (b *Builder) Rebind(role RoleRef, to BindingSpec) *Builder {
	b.ops = append(b.ops, buildOp{
		op:     fmt.Sprintf("Rebind(%s -> %s)", role, to),
		rebind: &rebindOp{role: role, to: to},
	})
	return b
}

// SetAttr overrides one published attribute of a service; the variant
// gets a rebuilt service definition, the base document is untouched.
func (b *Builder) SetAttr(svc ServiceRef, attr string, value float64) *Builder {
	b.ops = append(b.ops, buildOp{
		op:      fmt.Sprintf("SetAttr(%s.%s)", svc.name, attr),
		setAttr: &setAttrOp{svc: svc, attr: attr, value: value},
	})
	return b
}

// Define adds a service definition to the variant — a brand-new provider
// to swap in, or a replacement for a document service of the same name.
func (b *Builder) Define(svc model.Service) *Builder {
	op := "Define(<nil>)"
	if svc != nil {
		op = fmt.Sprintf("Define(%s)", svc.Name())
	}
	b.ops = append(b.ops, buildOp{op: op, define: svc})
	return b
}

// Include forces a document service into the variant even when no binding
// reaches it (e.g. a spare provider kept available for later rebinds).
func (b *Builder) Include(svc ServiceRef) *Builder {
	b.ops = append(b.ops, buildOp{op: fmt.Sprintf("Include(%s)", svc.name), include: &svc})
	return b
}

// Select resolves the (caller, role) binding by reliability-driven
// selection over the candidates: at Build time every candidate is scored
// with registry.SelectBinding against the variant's bindings, and the
// winner is applied as if Rebind had been called with it. The target
// service and parameters define the invocation being optimized.
func (b *Builder) Select(role RoleRef, candidates []registry.Candidate, target ServiceRef, params ...float64) *Builder {
	b.ops = append(b.ops, buildOp{
		op:  fmt.Sprintf("Select(%s from %d candidates)", role, len(candidates)),
		sel: &selectOp{role: role, candidates: candidates, target: target, params: params},
	})
	return b
}

// Build validates every recorded operation and materializes the variant
// assembly. All failures are reported together (errors.Join of
// *BuildError values), each matching its taxonomy sentinel via errors.Is.
func (b *Builder) Build() (*assembly.Assembly, error) {
	return b.build(context.Background())
}

// BuildCtx is Build honoring cancellation inside registry-driven Select
// scoring.
func (b *Builder) BuildCtx(ctx context.Context) (*assembly.Assembly, error) {
	return b.build(ctx)
}

// BuildDocument builds the variant and lifts it into a single-assembly
// document ready for store.Publish.
func (b *Builder) BuildDocument() (*adl.Document, error) {
	asm, err := b.Build()
	if err != nil {
		return nil, err
	}
	return adl.FromAssembly(asm)
}

// services returns the effective service definition: Define overrides,
// then attr-overridden clones, then the document.
func (b *Builder) build(ctx context.Context) (*assembly.Assembly, error) {
	var errs []error
	fail := func(op string, sentinel error, format string, args ...any) {
		errs = append(errs, opErr(op, sentinel, format, args...))
	}

	// Resolve the base assembly.
	var baseDef *adl.AssemblyDef
	for i := range b.q.doc.Assemblies {
		if b.q.doc.Assemblies[i].Name == b.base {
			baseDef = &b.q.doc.Assemblies[i]
			break
		}
	}
	if baseDef == nil {
		return nil, opErr(fmt.Sprintf("Variant(%s)", b.base), ErrUnknownAssembly,
			"document defines %v", b.q.Assemblies())
	}

	// Effective service definitions: document, overlaid by Define ops and
	// attribute-overridden clones.
	defined := make(map[string]model.Service)
	attrsOverrides := make(map[string]model.Attrs) // service -> attr -> value
	lookup := func(name string) (model.Service, bool) {
		if svc, ok := defined[name]; ok {
			return svc, true
		}
		return b.q.doc.Service(name)
	}

	// Binding state: start from the base definition.
	type bindKey struct{ caller, role string }
	bindings := make(map[bindKey]assembly.Binding)
	var bindOrder []bindKey
	setBinding := func(bd assembly.Binding) {
		key := bindKey{bd.Caller, bd.Role}
		if _, ok := bindings[key]; !ok {
			bindOrder = append(bindOrder, key)
		}
		bindings[key] = bd
	}
	for _, bd := range baseDef.Bindings {
		setBinding(bd)
	}
	rebound := make(map[bindKey]string) // first op that rebound the pair
	attrSet := make(map[string]string)  // "svc.attr" -> first op
	includes := make(map[string]bool)   // forced includes
	var selects []buildOp               // deferred to after static ops

	// validateSpec checks a rebind target against the caller's call sites.
	validateSpec := func(op string, role RoleRef, to BindingSpec) (ok bool) {
		ok = true
		callerSvc, exists := lookup(role.svc.name)
		if !exists {
			fail(op, ErrUnknownService, "caller %q is not defined", role.svc.name)
			return false
		}
		comp, isComp := callerSvc.(*model.Composite)
		if !isComp {
			fail(op, ErrIncompatibleOverride, "caller %q is a simple service; only composites request roles", role.svc.name)
			return false
		}
		var reqs []model.Request
		for _, st := range comp.Flow().States() {
			for _, r := range st.Requests {
				if r.Role == role.role {
					reqs = append(reqs, r)
				}
			}
		}
		if len(reqs) == 0 {
			fail(op, ErrUnknownRole, "%q never requests role %q (has %v)", role.svc.name, role.role, comp.Roles())
			return false
		}
		provider, exists := lookup(to.provider.name)
		if !exists {
			fail(op, ErrUnknownService, "provider %q is not defined", to.provider.name)
			ok = false
		} else {
			pf := len(provider.FormalParams())
			for _, r := range reqs {
				if len(r.Params) != pf {
					fail(op, ErrIncompatibleOverride,
						"provider %q takes %d parameters but %s calls %s with %d",
						to.provider.name, pf, role.svc.name, role.role, len(r.Params))
					ok = false
					break
				}
			}
		}
		if to.hasConn {
			conn, exists := lookup(to.connector.name)
			if !exists {
				fail(op, ErrUnknownService, "connector %q is not defined", to.connector.name)
				ok = false
			} else {
				cf := len(conn.FormalParams())
				for _, r := range reqs {
					if len(r.ConnParams) != cf {
						fail(op, ErrIncompatibleOverride,
							"connector %q takes %d parameters but %s calls %s with %d connector parameters",
							to.connector.name, cf, role.svc.name, role.role, len(r.ConnParams))
						ok = false
						break
					}
				}
			}
		}
		return ok
	}

	// Pass 1: apply Define / Include / SetAttr / Rebind; queue Selects.
	for _, op := range b.ops {
		switch {
		case op.define != nil:
			name := op.define.Name()
			if prev, ok := defined[name]; ok && prev != op.define {
				fail(op.op, ErrConflictingOverride, "service %q already defined by an earlier Define", name)
				continue
			}
			defined[name] = op.define
		case op.include != nil:
			if _, ok := lookup(op.include.name); !ok {
				fail(op.op, ErrUnknownService, "document defines %v", b.q.Services())
				continue
			}
			includes[op.include.name] = true
		case op.setAttr != nil:
			sa := op.setAttr
			svc, ok := lookup(sa.svc.name)
			if !ok {
				fail(op.op, ErrUnknownService, "document defines %v", b.q.Services())
				continue
			}
			if _, ok := svc.Attributes()[sa.attr]; !ok {
				fail(op.op, ErrUnknownAttr, "%q publishes no attribute %q", sa.svc.name, sa.attr)
				continue
			}
			if !isFinite(sa.value) {
				fail(op.op, ErrIncompatibleOverride, "attribute value %v is not finite", sa.value)
				continue
			}
			key := sa.svc.name + "." + sa.attr
			if first, ok := attrSet[key]; ok {
				fail(op.op, ErrConflictingOverride, "attribute already set by %s", first)
				continue
			}
			attrSet[key] = op.op
			if attrsOverrides[sa.svc.name] == nil {
				attrsOverrides[sa.svc.name] = model.Attrs{}
			}
			attrsOverrides[sa.svc.name][sa.attr] = sa.value
		case op.rebind != nil:
			rb := op.rebind
			key := bindKey{rb.role.svc.name, rb.role.role}
			if first, ok := rebound[key]; ok {
				fail(op.op, ErrConflictingOverride, "binding already overridden by %s", first)
				continue
			}
			rebound[key] = op.op
			if !validateSpec(op.op, rb.role, rb.to) {
				continue
			}
			bd := assembly.Binding{Caller: rb.role.svc.name, Role: rb.role.role, Provider: rb.to.provider.name}
			if rb.to.hasConn {
				bd.Connector = rb.to.connector.name
			}
			setBinding(bd)
		case op.sel != nil:
			key := bindKey{op.sel.role.svc.name, op.sel.role.role}
			if first, ok := rebound[key]; ok {
				fail(op.op, ErrConflictingOverride, "binding already overridden by %s", first)
				continue
			}
			rebound[key] = op.op
			selects = append(selects, op)
		}
	}

	// Apply attribute overrides by rebuilding the affected services.
	for name, attrs := range attrsOverrides {
		svc, ok := lookup(name)
		if !ok {
			continue // reported above
		}
		clone, err := cloneWithAttrs(svc, attrs)
		if err != nil {
			fail(fmt.Sprintf("SetAttr(%s)", name), ErrIncompatibleOverride, "%v", err)
			continue
		}
		defined[name] = clone
	}

	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}

	// materialize builds an assembly from the current binding state.
	materialize := func(name string, extra map[string]bool) (*assembly.Assembly, error) {
		needed := make(map[string]bool)
		for _, key := range bindOrder {
			bd := bindings[key]
			needed[bd.Caller] = true
			needed[bd.Provider] = true
			if bd.Connector != "" {
				needed[bd.Connector] = true
			}
		}
		for n := range includes {
			needed[n] = true
		}
		for n := range extra {
			needed[n] = true
		}
		// Close over direct-name role references of included composites.
		for changed := true; changed; {
			changed = false
			for svcName := range needed {
				svc, ok := lookup(svcName)
				if !ok {
					continue // assembly.Validate reports it
				}
				comp, ok := svc.(*model.Composite)
				if !ok {
					continue
				}
				for _, role := range comp.Roles() {
					if _, bound := bindings[bindKey{svcName, role}]; bound {
						continue
					}
					if _, ok := lookup(role); ok && !needed[role] {
						needed[role] = true
						changed = true
					}
				}
			}
		}
		asm := assembly.New(name)
		add := func(svcName string) error {
			if !needed[svcName] {
				return nil
			}
			svc, ok := lookup(svcName)
			if !ok {
				return nil
			}
			needed[svcName] = false // consumed
			return asm.AddService(svc)
		}
		// Document order first (stable), then Define-only services.
		for _, svc := range b.q.doc.Services {
			if err := add(svc.Name()); err != nil {
				return nil, err
			}
		}
		for svcName, pending := range needed {
			if !pending {
				continue
			}
			if err := add(svcName); err != nil {
				return nil, err
			}
		}
		for _, key := range bindOrder {
			bd := bindings[key]
			asm.AddBinding(bd.Caller, bd.Role, bd.Provider, bd.Connector)
		}
		return asm, nil
	}

	// Pass 2: registry-driven selections, each scored against the variant
	// as built so far.
	for _, op := range selects {
		sel := op.sel
		if len(sel.candidates) == 0 {
			fail(op.op, ErrNoCandidates, "no candidates given for %s", sel.role)
			continue
		}
		if _, ok := lookup(sel.target.name); !ok {
			fail(op.op, ErrUnknownService, "target %q is not defined", sel.target.name)
			continue
		}
		candNames := make(map[string]bool)
		bad := false
		for _, c := range sel.candidates {
			if _, ok := lookup(c.Provider); !ok {
				fail(op.op, ErrUnknownService, "candidate provider %q is not defined", c.Provider)
				bad = true
			} else {
				candNames[c.Provider] = true
			}
			if c.Connector != "" {
				if _, ok := lookup(c.Connector); !ok {
					fail(op.op, ErrUnknownService, "candidate connector %q is not defined", c.Connector)
					bad = true
				} else {
					candNames[c.Connector] = true
				}
			}
		}
		if bad {
			continue
		}
		candNames[sel.target.name] = true
		trial, err := materialize(b.base+"+select", candNames)
		if err != nil {
			errs = append(errs, &BuildError{Op: op.op, Err: err})
			continue
		}
		selection, err := registry.SelectBindingCtx(ctx, trial, sel.role.svc.name, sel.role.role,
			sel.candidates, b.opts, sel.target.name, sel.params...)
		if err != nil {
			errs = append(errs, &BuildError{Op: op.op, Err: err})
			continue
		}
		winner := BindingSpec{provider: b.q.Service(selection.Candidate.Provider)}
		if selection.Candidate.Connector != "" {
			winner = winner.Via(b.q.Service(selection.Candidate.Connector))
		}
		if !validateSpec(op.op, sel.role, winner) {
			continue
		}
		bd := assembly.Binding{Caller: sel.role.svc.name, Role: sel.role.role, Provider: selection.Candidate.Provider, Connector: selection.Candidate.Connector}
		setBinding(bd)
		// Keep the selected provider's services resident in the variant.
		for n := range candNames {
			if n == bd.Provider || n == bd.Connector {
				includes[n] = true
			}
		}
	}

	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}

	name := b.name
	if name == "" {
		name = b.base
	}
	asm, err := materialize(name, nil)
	if err != nil {
		return nil, &BuildError{Op: fmt.Sprintf("Build(%s)", name), Err: err}
	}
	if err := asm.Validate(); err != nil {
		return nil, &BuildError{Op: fmt.Sprintf("Build(%s)", name), Err: err}
	}
	return asm, nil
}

// cloneWithAttrs rebuilds a service definition with some attributes
// replaced, leaving the original untouched.
func cloneWithAttrs(svc model.Service, overrides model.Attrs) (model.Service, error) {
	attrs := model.Attrs{}
	for k, v := range svc.Attributes() {
		attrs[k] = v
	}
	for k, v := range overrides {
		attrs[k] = v
	}
	switch s := svc.(type) {
	case *model.Simple:
		return model.NewSimple(s.Name(), s.FormalParams(), attrs, s.PfailExpr()), nil
	case *model.Composite:
		clone := model.NewComposite(s.Name(), s.FormalParams(), attrs)
		for _, st := range s.Flow().States() {
			if st.Name == model.StartState || st.Name == model.EndState {
				continue
			}
			cst, err := clone.Flow().AddState(st.Name, st.Completion, st.Dependency)
			if err != nil {
				return nil, err
			}
			cst.K = st.K
			for _, r := range st.Requests {
				cst.AddRequest(r)
			}
		}
		for _, tr := range s.Flow().Transitions() {
			if err := clone.Flow().AddTransition(tr.From, tr.To, tr.Prob); err != nil {
				return nil, err
			}
		}
		return clone, nil
	default:
		return nil, fmt.Errorf("unsupported service type %T", svc)
	}
}
