package query

import (
	"math"
	"testing"

	"socrel/internal/adl"
	"socrel/internal/core"
	"socrel/internal/registry"
)

// paperDSL is the paper's section 4 example written in the ADL (same
// fixture as internal/adl's tests).
const paperDSL = `
# The search/sort example of Grassi's section 4.
service cpu1 cpu {
    speed 1e9
    rate 1e-10
}
service cpu2 cpu {
    speed 1e9
    rate 1e-10
}
service net12 network {
    bandwidth 1e5
    rate 5e-3
}
service lpc lpc {
    l 1000
}
service rpc rpc {
    c 10
    m 270
}
service sort1 composite(list) {
    attr phi 1e-6
    state work and nosharing {
        call cpu(list * log2(list)) internal 1 - (1 - phi)^(list * log2(list))
    }
    transition Start -> work prob 1
    transition work -> End prob 1
}
service sort2 composite(list) {
    attr phi 1e-7
    state work and nosharing {
        call cpu(list * log2(list)) internal 1 - (1 - phi)^(list * log2(list))
    }
    transition Start -> work prob 1
    transition work -> End prob 1
}
service search composite(elem, list, res) {
    attr phi 1e-7
    attr q 0.9
    state sort and nosharing {
        call sort(list) connector(elem + list, res)
    }
    state lookup and nosharing {
        call cpu(log2(list)) internal 1 - (1 - phi)^log2(list)
    }
    transition Start -> sort prob q
    transition Start -> lookup prob 1 - q
    transition sort -> lookup prob 1
    transition lookup -> End prob 1
}
assembly local {
    bind search.sort -> sort1 via lpc
    bind search.cpu -> cpu1
    bind sort1.cpu -> cpu1
    bind lpc.cpu -> cpu1
}
assembly remote {
    bind search.sort -> sort2 via rpc
    bind search.cpu -> cpu1
    bind sort2.cpu -> cpu2
    bind rpc.clientcpu -> cpu1
    bind rpc.servercpu -> cpu2
    bind rpc.net -> net12
}
`

// handWiredVariant is the provider-swap variant written out longhand: the
// local assembly with sort2 swapped in for sort1. The builder must
// reproduce its prediction exactly.
const handWiredVariant = `
assembly swapped {
    bind search.sort -> sort2 via lpc
    bind search.cpu -> cpu1
    bind sort1.cpu -> cpu1
    bind sort2.cpu -> cpu1
    bind lpc.cpu -> cpu1
}
`

// TestVariantMatchesHandWired builds the provider-swap variant through
// the typed builder and checks its prediction against the hand-wired
// assembly to 1e-12.
func TestVariantMatchesHandWired(t *testing.T) {
	doc := mustParse(t, paperDSL)
	q := From(doc)

	b := q.Variant("local").Named("swapped").
		Rebind(q.Service("search").Role("sort"), To(q.Service("sort2")).Via(q.Service("lpc"))).
		Rebind(q.Service("sort2").Role("cpu"), To(q.Service("cpu1")))
	asm, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if asm.Name() != "swapped" {
		t.Fatalf("variant name = %q, want swapped", asm.Name())
	}

	hand := mustParse(t, paperDSL+handWiredVariant)
	handAsm, err := hand.BuildAssembly("swapped")
	if err != nil {
		t.Fatal(err)
	}

	params, err := q.Service("search").ParamVector(map[string]float64{"elem": 16, "list": 1024, "res": 64})
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.New(asm, core.Options{}).Reliability("search", params...)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.New(handAsm, core.Options{}).Reliability("search", params...)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("builder variant %.15g vs hand-wired %.15g (diff %g)", got, want, math.Abs(got-want))
	}

	// Sanity: the swap changed the prediction vs the base assembly.
	baseAsm, err := doc.BuildAssembly("local")
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.New(baseAsm, core.Options{}).Reliability("search", params...)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-base) < 1e-15 {
		t.Fatal("provider swap did not change the prediction; test is vacuous")
	}
}

// TestBuildDocumentRoundTrip lifts the built variant into a document and
// checks the compiled document predicts identically to the built
// assembly — the path a stored variant takes through the model store.
func TestBuildDocumentRoundTrip(t *testing.T) {
	doc := mustParse(t, paperDSL)
	q := From(doc)

	b := q.Variant("local").Named("swapped").
		Rebind(q.Service("search").Role("sort"), To(q.Service("sort2")).Via(q.Service("lpc"))).
		Rebind(q.Service("sort2").Role("cpu"), To(q.Service("cpu1")))
	asm, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	vdoc, err := b.BuildDocument()
	if err != nil {
		t.Fatal(err)
	}
	// The document must be canonicalizable and hashable (publishable).
	if _, err := adl.Hash(vdoc); err != nil {
		t.Fatal(err)
	}

	ca, err := core.CompileDocument(vdoc, "swapped", core.Options{}, "search")
	if err != nil {
		t.Fatal(err)
	}
	got, err := ca.Pfail("search", 16, 1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	rel, err := core.New(asm, core.Options{}).Reliability("search", 16, 1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(1-rel)) > 1e-12 {
		t.Fatalf("document pfail %.15g vs assembly pfail %.15g", got, 1-rel)
	}
}

// TestSetAttrOverridesWithoutMutatingBase checks attribute overrides:
// the variant uses the new value, the base document is untouched, and
// the prediction shifts accordingly.
func TestSetAttrOverridesWithoutMutatingBase(t *testing.T) {
	doc := mustParse(t, paperDSL)
	q := From(doc)

	asm, err := q.Variant("local").SetAttr(q.Service("search"), "q", 0.0).Build()
	if err != nil {
		t.Fatal(err)
	}
	// With q=0 the sort branch is never taken; prediction must differ
	// from the base and match a hand-edited document.
	params := []float64{16, 1024, 64}
	got, err := core.New(asm, core.Options{}).Reliability("search", params...)
	if err != nil {
		t.Fatal(err)
	}
	baseAsm, err := doc.BuildAssembly("local")
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.New(baseAsm, core.Options{}).Reliability("search", params...)
	if err != nil {
		t.Fatal(err)
	}
	if got <= base {
		t.Fatalf("q=0 variant should be more reliable: %.15g vs base %.15g", got, base)
	}
	// The base document still publishes q=0.9.
	attrs, err := q.Service("search").Attrs()
	if err != nil {
		t.Fatal(err)
	}
	if attrs["q"] != 0.9 {
		t.Fatalf("base document mutated: q = %v", attrs["q"])
	}
}

// TestSelectPicksMostReliableCandidate degrades cpu2 via SetAttr and
// checks that a registry-driven Select applied through the builder picks
// cpu1 even though cpu2 is listed first.
func TestSelectPicksMostReliableCandidate(t *testing.T) {
	doc := mustParse(t, paperDSL)
	q := From(doc)

	asm, err := q.Variant("local").
		SetAttr(q.Service("cpu2"), "lambda", 0.5).
		Select(q.Service("sort1").Role("cpu"),
			[]registry.Candidate{{Provider: "cpu2"}, {Provider: "cpu1"}},
			q.Service("search"), 16, 1024, 64).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, bd := range asm.Bindings() {
		if bd.Caller == "sort1" && bd.Role == "cpu" {
			if bd.Provider != "cpu1" {
				t.Fatalf("Select picked %q, want cpu1 (cpu2 was degraded)", bd.Provider)
			}
			return
		}
	}
	t.Fatal("sort1.cpu binding missing from variant")
}

// TestDefineAddsNewProvider defines a brand-new simple service and
// rebinds a role to it.
func TestDefineAddsNewProvider(t *testing.T) {
	doc := mustParse(t, paperDSL)
	q := From(doc)

	// A Define takes any model.Service; build one from a tiny aux doc.
	aux := mustParse(t, "service cpu3 cpu {\n    speed 2e9\n    rate 1e-10\n}\n")
	svc, ok := aux.Service("cpu3")
	if !ok {
		t.Fatal("aux doc lost cpu3")
	}

	asm, err := q.Variant("local").
		Define(svc).
		Rebind(q.Service("sort1").Role("cpu"), To(q.Service("cpu3"))).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, bd := range asm.Bindings() {
		if bd.Caller == "sort1" && bd.Role == "cpu" && bd.Provider == "cpu3" {
			found = true
		}
	}
	if !found {
		t.Fatal("rebind to defined service not applied")
	}
	if _, err := core.New(asm, core.Options{}).Reliability("search", 16, 1024, 64); err != nil {
		t.Fatalf("variant with defined provider does not solve: %v", err)
	}
}
