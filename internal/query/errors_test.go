package query

import (
	"errors"
	"math"
	"testing"

	"socrel/internal/adl"
	"socrel/internal/registry"
)

// TestErrorTaxonomy exercises every sentinel in the taxonomy through a
// real builder misuse: each row asserts the errors.Is class, the
// errors.As extraction of the *BuildError, and the exact human-readable
// message (snapshot) so a wording regression is caught, not just a
// classification one.
func TestErrorTaxonomy(t *testing.T) {
	doc := mustParse(t, paperDSL)
	q := From(doc)

	cases := []struct {
		name     string
		run      func() error
		sentinel error
		msg      string
	}{
		{
			name:     "unknown assembly",
			run:      func() error { _, err := q.Variant("nope").Build(); return err },
			sentinel: ErrUnknownAssembly,
			msg:      `Variant(nope): query: unknown assembly: document defines [local remote]`,
		},
		{
			name: "unknown service as rebind provider",
			run: func() error {
				_, err := q.Variant("local").
					Rebind(q.Service("search").Role("sort"), To(q.Service("ghost"))).
					Build()
				return err
			},
			sentinel: ErrUnknownService,
			msg:      `Rebind(search.sort -> ghost): query: unknown service: provider "ghost" is not defined`,
		},
		{
			name: "unknown service in SetAttr",
			run: func() error {
				_, err := q.Variant("local").SetAttr(q.Service("ghost"), "phi", 1e-5).Build()
				return err
			},
			sentinel: ErrUnknownService,
			msg:      `SetAttr(ghost.phi): query: unknown service: document defines [cpu1 cpu2 net12 lpc rpc sort1 sort2 search]`,
		},
		{
			name: "unknown role",
			run: func() error {
				_, err := q.Variant("local").
					Rebind(q.Service("search").Role("paint"), To(q.Service("sort1"))).
					Build()
				return err
			},
			sentinel: ErrUnknownRole,
			msg:      `Rebind(search.paint -> sort1): query: unknown role: "search" never requests role "paint" (has [cpu sort])`,
		},
		{
			name: "unknown formal parameter",
			run: func() error {
				_, err := q.Service("search").ParamVector(map[string]float64{
					"elem": 16, "list": 1024, "res": 64, "bogus": 1,
				})
				return err
			},
			sentinel: ErrUnknownParam,
			msg:      `ParamVector(search): query: unknown formal parameter: "bogus" is not a formal of search (has [elem list res])`,
		},
		{
			name: "missing formal parameter",
			run: func() error {
				_, err := q.Service("search").ParamVector(map[string]float64{"elem": 16, "res": 64})
				return err
			},
			sentinel: ErrMissingParam,
			msg:      `ParamVector(search): query: missing formal parameter: formal "list" of search not supplied`,
		},
		{
			name: "unknown attribute",
			run: func() error {
				_, err := q.Variant("local").SetAttr(q.Service("search"), "zeta", 1).Build()
				return err
			},
			sentinel: ErrUnknownAttr,
			msg:      `SetAttr(search.zeta): query: unknown attribute: "search" publishes no attribute "zeta"`,
		},
		{
			name: "incompatible: simple service as caller",
			run: func() error {
				_, err := q.Variant("local").
					Rebind(q.Service("cpu1").Role("x"), To(q.Service("cpu2"))).
					Build()
				return err
			},
			sentinel: ErrIncompatibleOverride,
			msg:      `Rebind(cpu1.x -> cpu2): query: incompatible override: caller "cpu1" is a simple service; only composites request roles`,
		},
		{
			name: "incompatible: provider arity mismatch",
			run: func() error {
				_, err := q.Variant("local").
					Rebind(q.Service("search").Role("sort"), To(q.Service("search"))).
					Build()
				return err
			},
			sentinel: ErrIncompatibleOverride,
			msg:      `Rebind(search.sort -> search): query: incompatible override: provider "search" takes 3 parameters but search calls sort with 1`,
		},
		{
			name: "incompatible: non-finite attribute value",
			run: func() error {
				_, err := q.Variant("local").SetAttr(q.Service("search"), "q", math.NaN()).Build()
				return err
			},
			sentinel: ErrIncompatibleOverride,
			msg:      `SetAttr(search.q): query: incompatible override: attribute value NaN is not finite`,
		},
		{
			name: "conflicting: role rebound twice",
			run: func() error {
				_, err := q.Variant("local").
					Rebind(q.Service("search").Role("sort"), To(q.Service("sort2")).Via(q.Service("lpc"))).
					Rebind(q.Service("search").Role("sort"), To(q.Service("sort1"))).
					Build()
				return err
			},
			sentinel: ErrConflictingOverride,
			msg:      `Rebind(search.sort -> sort1): query: conflicting override: binding already overridden by Rebind(search.sort -> sort2 via lpc)`,
		},
		{
			name: "conflicting: attribute set twice",
			run: func() error {
				_, err := q.Variant("local").
					SetAttr(q.Service("search"), "q", 0.8).
					SetAttr(q.Service("search"), "q", 0.7).
					Build()
				return err
			},
			sentinel: ErrConflictingOverride,
			msg:      `SetAttr(search.q): query: conflicting override: attribute already set by SetAttr(search.q)`,
		},
		{
			name: "no candidates",
			run: func() error {
				_, err := q.Variant("local").
					Select(q.Service("search").Role("sort"), nil, q.Service("search"), 16, 1024, 64).
					Build()
				return err
			},
			sentinel: ErrNoCandidates,
			msg:      `Select(search.sort from 0 candidates): query: no candidates: no candidates given for search.sort`,
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.run()
			if err == nil {
				t.Fatal("expected a build error")
			}
			if !errors.Is(err, tc.sentinel) {
				t.Fatalf("errors.Is(%v, sentinel) = false for %v", err, tc.sentinel)
			}
			var be *BuildError
			if !errors.As(err, &be) {
				t.Fatalf("errors.As failed to extract *BuildError from %v", err)
			}
			if got := be.Error(); got != tc.msg {
				t.Fatalf("message snapshot mismatch:\n got: %s\nwant: %s", got, tc.msg)
			}
			// A BuildError must be attributable to exactly one class.
			matched := 0
			for _, s := range []error{
				ErrUnknownAssembly, ErrUnknownService, ErrUnknownRole,
				ErrUnknownParam, ErrMissingParam, ErrUnknownAttr,
				ErrIncompatibleOverride, ErrConflictingOverride, ErrNoCandidates,
			} {
				if errors.Is(be, s) {
					matched++
				}
			}
			if matched != 1 {
				t.Fatalf("BuildError matches %d sentinels, want exactly 1: %v", matched, be)
			}
		})
	}
}

// TestBuildAccumulatesErrors checks that independent mistakes are all
// reported in one Build, each with its own class.
func TestBuildAccumulatesErrors(t *testing.T) {
	doc := mustParse(t, paperDSL)
	q := From(doc)
	_, err := q.Variant("local").
		Rebind(q.Service("search").Role("paint"), To(q.Service("sort1"))).
		SetAttr(q.Service("search"), "zeta", 1).
		SetAttr(q.Service("ghost"), "phi", 1e-5).
		Build()
	if err == nil {
		t.Fatal("expected errors")
	}
	for _, want := range []error{ErrUnknownRole, ErrUnknownAttr, ErrUnknownService} {
		if !errors.Is(err, want) {
			t.Errorf("joined error missing class %v:\n%v", want, err)
		}
	}
}

// TestSelectErrorsPropagate checks that registry failures inside a Select
// surface as BuildError-wrapped errors too.
func TestSelectErrorsPropagate(t *testing.T) {
	doc := mustParse(t, paperDSL)
	q := From(doc)
	_, err := q.Variant("local").
		Select(q.Service("sort1").Role("cpu"),
			[]registry.Candidate{{Provider: "ghost"}},
			q.Service("search"), 16, 1024, 64).
		Build()
	if !errors.Is(err, ErrUnknownService) {
		t.Fatalf("want ErrUnknownService for unknown candidate, got %v", err)
	}
}

func mustParse(t *testing.T, src string) *adl.Document {
	t.Helper()
	doc, err := adl.ParseDSL(src)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}
