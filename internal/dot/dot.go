// Package dot renders service flows and assemblies as Graphviz DOT — the
// machine-drawable counterparts of the paper's Figures 1-5 (service flows,
// optionally with the failure structure the engine adds) and Figures 3-4
// (assembly diagrams of components, connectors and bindings).
package dot

import (
	"fmt"
	"sort"
	"strings"

	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/model"
)

// Flow renders a composite service's usage-profile flow (Figure 1/2
// style): states with their completion/dependency models and requests,
// edges with their probability expressions.
func Flow(c *model.Composite) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", c.Name())
	b.WriteString("  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n")
	fmt.Fprintf(&b, "  label=%q;\n", flowLabel(c))

	for _, st := range c.Flow().States() {
		switch st.Name {
		case model.StartState:
			fmt.Fprintf(&b, "  %q [shape=circle, style=filled, fillcolor=black, label=\"\", width=0.25];\n", st.Name)
		case model.EndState:
			fmt.Fprintf(&b, "  %q [shape=doublecircle, style=filled, fillcolor=black, label=\"\", width=0.2];\n", st.Name)
		default:
			fmt.Fprintf(&b, "  %q [shape=box, style=rounded, label=%q];\n", st.Name, stateLabel(st))
		}
	}
	for _, tr := range c.Flow().Transitions() {
		label := tr.Prob.String()
		if label == "1" {
			label = ""
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", tr.From, tr.To, label)
	}
	b.WriteString("}\n")
	return b.String()
}

func flowLabel(c *model.Composite) string {
	return fmt.Sprintf("%s(%s)", c.Name(), strings.Join(c.FormalParams(), ", "))
}

func stateLabel(st *model.State) string {
	var lines []string
	mode := st.Completion.String()
	if st.Completion == model.KOfN {
		mode = fmt.Sprintf("%d-of-%d", st.K, len(st.Requests))
	}
	lines = append(lines, fmt.Sprintf("%s [%s/%s]", st.Name, mode, st.Dependency))
	for _, r := range st.Requests {
		params := make([]string, len(r.Params))
		for i, e := range r.Params {
			params[i] = e.String()
		}
		lines = append(lines, fmt.Sprintf("call %s(%s)", r.Role, strings.Join(params, ", ")))
	}
	return strings.Join(lines, "\\n")
}

// FlowWithFailures renders the flow augmented with its failure structure
// at a concrete parameter point (Figure 5 style): each working state gets
// a transition to Fail labeled with its computed p(i, Fail), and working
// transitions are shown rescaled.
func FlowWithFailures(resolver model.Resolver, c *model.Composite, params []float64, opts core.Options) (string, error) {
	rep, err := core.New(resolver, opts).Report(c.Name(), params...)
	if err != nil {
		return "", err
	}
	stateFail := make(map[string]float64, len(rep.States))
	for _, st := range rep.States {
		stateFail[st.Name] = st.PFail
	}
	env, err := model.Env(c, params)
	if err != nil {
		return "", err
	}

	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", c.Name()+"_failures")
	b.WriteString("  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n")
	fmt.Fprintf(&b, "  label=\"%s with failure structure (Pfail = %.6g)\";\n", flowLabel(c), rep.Pfail)
	for _, st := range c.Flow().States() {
		switch st.Name {
		case model.StartState:
			fmt.Fprintf(&b, "  %q [shape=circle, style=filled, fillcolor=black, label=\"\", width=0.25];\n", st.Name)
		case model.EndState:
			fmt.Fprintf(&b, "  %q [shape=doublecircle, label=\"End\"];\n", st.Name)
		default:
			fmt.Fprintf(&b, "  %q [shape=box, style=rounded];\n", st.Name)
		}
	}
	fmt.Fprintf(&b, "  %q [shape=doublecircle, color=red, fontcolor=red];\n", model.FailState)
	for _, tr := range c.Flow().Transitions() {
		p, err := tr.Prob.Eval(env)
		if err != nil {
			return "", fmt.Errorf("dot: transition %s -> %s: %w", tr.From, tr.To, err)
		}
		p *= 1 - stateFail[tr.From]
		fmt.Fprintf(&b, "  %q -> %q [label=\"%.6g\"];\n", tr.From, tr.To, p)
	}
	names := make([]string, 0, len(stateFail))
	for name := range stateFail {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if f := stateFail[name]; f > 0 {
			fmt.Fprintf(&b, "  %q -> %q [label=\"%.6g\", color=red, fontcolor=red];\n",
				name, model.FailState, f)
		}
	}
	b.WriteString("}\n")
	return b.String(), nil
}

// Assembly renders an assembly diagram (Figure 3/4 style): services as
// nodes (boxes for composites, ellipses for simple resources), bindings as
// labeled edges caller -> provider, with the connector on the edge label.
func Assembly(a *assembly.Assembly) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", a.Name())
	b.WriteString("  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n")
	fmt.Fprintf(&b, "  label=\"assembly %s\";\n", a.Name())
	for _, name := range a.ServiceNames() {
		svc, err := a.ServiceByName(name)
		if err != nil {
			continue
		}
		switch svc.(type) {
		case *model.Composite:
			fmt.Fprintf(&b, "  %q [shape=box];\n", name)
		default:
			fmt.Fprintf(&b, "  %q [shape=ellipse, style=filled, fillcolor=lightgray];\n", name)
		}
	}
	for _, bind := range a.Bindings() {
		label := bind.Role
		if bind.Connector != "" {
			label += " via " + bind.Connector
		}
		fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", bind.Caller, bind.Provider, label)
	}
	b.WriteString("}\n")
	return b.String()
}
