package dot

import (
	"strings"
	"testing"

	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/model"
)

func paperSearch(t *testing.T) (*assembly.Assembly, *model.Composite) {
	t.Helper()
	p := assembly.DefaultPaperParams()
	asm, err := assembly.RemoteAssembly(p)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := asm.ServiceByName("search")
	if err != nil {
		t.Fatal(err)
	}
	return asm, svc.(*model.Composite)
}

func TestFlowDOT(t *testing.T) {
	_, search := paperSearch(t)
	out := Flow(search)
	for _, want := range []string{
		"digraph \"search\"",
		"search(elem, list, res)",
		"call sort(list)",
		"call cpu(log2(list))",
		"\"Start\" -> \"sort\"",
		"[label=\"q\"]",
		"\"lookup\" -> \"End\"",
		"AND/NoSharing",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Flow DOT missing %q\n%s", want, out)
		}
	}
	// Balanced braces.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces")
	}
}

func TestFlowWithFailuresDOT(t *testing.T) {
	asm, search := paperSearch(t)
	out, err := FlowWithFailures(asm, search, []float64{1, 4096, 1}, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"failure structure",
		"\"sort\" -> \"Fail\"",
		"\"lookup\" -> \"Fail\"",
		"Pfail = ",
		"color=red",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("failure DOT missing %q\n%s", want, out)
		}
	}
}

func TestFlowWithFailuresBadParams(t *testing.T) {
	asm, search := paperSearch(t)
	if _, err := FlowWithFailures(asm, search, []float64{1}, core.Options{}); err == nil {
		t.Error("expected arity error")
	}
}

func TestAssemblyDOT(t *testing.T) {
	asm, _ := paperSearch(t)
	out := Assembly(asm)
	for _, want := range []string{
		"digraph \"remote\"",
		"\"search\" [shape=box]",
		"\"cpu1\" [shape=ellipse",
		"\"search\" -> \"sort2\" [label=\"sort via rpc\"]",
		"\"rpc\" -> \"net12\"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("assembly DOT missing %q\n%s", want, out)
		}
	}
}

func TestKofNStateLabel(t *testing.T) {
	rep, err := model.NewKOfNTransport("rep", 3, 2, model.Sharing)
	if err != nil {
		t.Fatal(err)
	}
	out := Flow(rep)
	if !strings.Contains(out, "2-of-3") || !strings.Contains(out, "Sharing") {
		t.Errorf("k-of-n label missing:\n%s", out)
	}
}
