package runtime_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"socrel/internal/core"
	"socrel/internal/faultinject"
	"socrel/internal/model"
	"socrel/internal/monitor"
	rt "socrel/internal/runtime"
)

// TestChaosSelfHealingEndToEnd is the acceptance scenario for the
// self-healing runtime: a supervised assembly whose resolver flakes and
// stalls under fault injection, and whose bound provider silently degrades
// below its predicted reliability. The supervisor must (a) trip the
// provider's breaker via the SPRT within a bounded number of samples,
// (b) rebind to the healthy candidate, (c) never serve an untagged
// degraded answer, and the whole run is deterministic on a virtual clock
// and seeded randomness (no wall-clock sleeps). Run under -race in CI.
func TestChaosSelfHealingEndToEnd(t *testing.T) {
	clk := rt.NewFakeClock(time.Unix(1_700_000_000, 0))
	clk.AutoAdvance()
	outcomes := rand.New(rand.NewSource(101)) // observed invocation outcomes
	jitter := rand.New(rand.NewSource(202))   // retry backoff jitter

	asm, cands := buildWorkerAssembly(t, 0.01, 0.03)
	var injectors []*faultinject.Resolver
	var retriers []*rt.RetryResolver
	cfg := rt.SupervisorConfig{
		Clock: clk,
		Health: rt.HealthConfig{
			// OpenFor longer than any virtual time the run accumulates, so a
			// tripped provider stays quarantined for the whole scenario.
			Breaker: rt.BreakerConfig{Clock: clk, OpenFor: time.Hour},
			Monitor: monitor.Config{Alpha: 1e-4, Beta: 1e-4, Window: 50},
		},
		// The evaluator sees the assembly through chaos: a fault injector
		// that fails 10% of lookups and stalls the rest for 2ms of virtual
		// time, wrapped by the retrying resolver that rides the flakes out.
		WrapResolver: func(r model.Resolver) model.Resolver {
			inj := faultinject.Wrap(r, faultinject.Options{
				Seed:              7,
				LookupFailureRate: 0.10,
				LookupDelay:       2 * time.Millisecond,
				LookupDelayRate:   0.5,
				Sleep:             func(d time.Duration) { _ = clk.Sleep(context.Background(), d) },
			})
			injectors = append(injectors, inj)
			rr := rt.NewRetryResolver(inj, rt.RetryPolicy{
				MaxAttempts: 6,
				BaseDelay:   time.Millisecond,
				Clock:       clk,
				Rand:        jitter.Float64,
			})
			retriers = append(retriers, rr)
			return rr
		},
	}
	ctx := context.Background()
	sup, err := rt.NewSupervisor(ctx, cfg, asm, "app", "worker", cands, core.Options{}, "app")
	if err != nil {
		t.Fatal(err)
	}
	if got := sup.Current().Provider; got != "providerA" {
		t.Fatalf("initial binding %q, want providerA", got)
	}

	var answers []rt.Answer
	ask := func() rt.Answer {
		ans := sup.Pfail(ctx)
		answers = append(answers, ans)
		return ans
	}
	report := func(trueReliability float64) bool {
		_, rebound, err := sup.ReportOutcome(ctx, outcomes.Float64() < trueReliability)
		if err != nil {
			t.Fatal(err)
		}
		return rebound
	}

	// Phase 1 — healthy: providerA runs slightly above its predicted 0.99
	// reliability. The SPRT decides Meeting (and re-arms); no rebind, and
	// every sampled answer is exact despite the injected chaos.
	for i := 0; i < 400; i++ {
		if report(0.999) {
			t.Fatalf("spurious rebind on a healthy provider at sample %d", i)
		}
		if i%20 == 0 {
			if ans := ask(); !ans.IsExact() || math.Abs(ans.Pfail-0.01) > 1e-9 {
				t.Fatalf("healthy-phase answer = %+v, want exact 0.01", ans)
			}
		}
	}
	if len(sup.Rebinds()) != 0 {
		t.Fatalf("healthy phase produced rebinds: %+v", sup.Rebinds())
	}

	// Phase 2 — degradation: providerA silently drops to 0.75 true
	// reliability. The SPRT must trip and the supervisor must fail over to
	// providerB within a bounded number of samples (the expected detection
	// delay at these SPRT parameters is ~20 samples; 200 is generous).
	const sampleBound = 200
	detected := -1
	for i := 0; i < sampleBound; i++ {
		if report(0.75) {
			detected = i + 1
			break
		}
	}
	if detected < 0 {
		t.Fatalf("degradation not detected within %d samples", sampleBound)
	}
	t.Logf("SPRT detected the degradation after %d samples", detected)
	if got := sup.Current().Provider; got != "providerB" {
		t.Fatalf("bound to %q after failover, want providerB", got)
	}
	if math.Abs(sup.Predicted()-0.97) > 1e-9 {
		t.Fatalf("predicted reliability after failover = %g, want 0.97", sup.Predicted())
	}
	rebinds := sup.Rebinds()
	if len(rebinds) != 1 {
		t.Fatalf("rebinds = %d, want exactly 1", len(rebinds))
	}
	if !errors.Is(rebinds[0].Reason, rt.ErrProviderDegraded) {
		t.Fatalf("rebind reason = %v, want ErrProviderDegraded", rebinds[0].Reason)
	}
	if sup.Tracker().BreakerState("providerA") != rt.Open {
		t.Fatalf("providerA breaker = %v, want open", sup.Tracker().BreakerState("providerA"))
	}

	// Phase 3 — recovered: providerB honors its prediction; service is
	// exact again and stays on providerB.
	for i := 0; i < 300; i++ {
		if report(0.99) {
			t.Fatalf("spurious rebind on healthy providerB at sample %d", i)
		}
		if i%20 == 0 {
			if ans := ask(); !ans.IsExact() || math.Abs(ans.Pfail-0.03) > 1e-9 {
				t.Fatalf("recovered-phase answer = %+v, want exact 0.03", ans)
			}
		}
	}
	if len(sup.Rebinds()) != 1 {
		t.Fatalf("recovery phase produced extra rebinds: %+v", sup.Rebinds())
	}

	// Invariant (c): a degraded value never masquerades as exact — every
	// exact answer has a nil error, every non-exact answer carries its
	// cause, and no answer is untagged.
	for i, ans := range answers {
		if ans.Kind == rt.AnswerKind(0) {
			t.Fatalf("answer %d is untagged: %+v", i, ans)
		}
		if (ans.Kind == rt.Exact) != (ans.Err == nil) {
			t.Fatalf("answer %d violates the exact/error invariant: %+v", i, ans)
		}
	}

	// The chaos actually happened: faults were injected and ridden out by
	// the retry layer, all on the virtual clock.
	var injected, retries int
	for _, inj := range injectors {
		injected += inj.Injected()
	}
	for _, rr := range retriers {
		retries += rr.Retries()
	}
	if injected == 0 {
		t.Fatal("fault injector never fired")
	}
	if retries == 0 {
		t.Fatal("retry layer never retried")
	}
	if len(clk.Slept()) == 0 {
		t.Fatal("no virtual sleeps recorded: latency injection did not engage")
	}
	t.Logf("chaos: %d injected faults, %d retries, %d virtual sleeps, %d answers",
		injected, retries, len(clk.Slept()), len(answers))
}
