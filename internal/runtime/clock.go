// Package runtime makes a deployed assembly self-healing: it closes the
// loop the paper's conclusion leaves open between prediction and
// monitoring ("the other side represented by appropriate monitoring
// activities to check whether the assembly of selected services will
// actually achieve the predicted reliability").
//
// Three cooperating pieces:
//
//   - RetryResolver decorates a model.Resolver with budgeted retries,
//     exponential backoff with full jitter, per-attempt deadlines, and
//     retryable-vs-permanent classification driven by the engine's typed
//     error taxonomy.
//   - HealthTracker keeps a per-provider circuit breaker fed by two
//     signals: invocation outcomes streamed into a per-provider
//     monitor.Monitor (an SPRT Violating verdict trips the breaker) and
//     repeated typed evaluation errors. SelectHealthyBinding is the
//     registry selection variant that excludes quarantined providers.
//   - Supervisor ties both to an assembly: it performs the initial
//     reliability-driven binding, streams outcomes, rebinds automatically
//     when the current binding's breaker opens, and serves degraded
//     answers (last-known-good with staleness, or a conservative interval
//     from the iterative solver's residual) when an exact Pfail is
//     unavailable.
//
// All time-dependent behavior runs against the Clock interface so tests
// are deterministic: backoff, breaker quarantine windows, and staleness
// metadata never require a wall-clock sleep in unit tests.
package runtime

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts time for retry backoff, breaker quarantine windows, and
// staleness metadata. The zero configuration of every type in this package
// uses the real wall clock.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the time after d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// RealClock is the wall clock.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// After implements Clock.
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (RealClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// FakeClock is a deterministic Clock for tests. It supports two styles:
//
//   - auto-advance (AutoAdvance): Sleep records the requested duration,
//     advances the clock, and returns immediately — single-threaded
//     backoff tests assert the recorded delay sequence;
//   - manual: Sleep and After block on virtual timers that only fire when
//     the test calls Advance, with WaitForTimers to synchronize against
//     goroutines that are about to block.
type FakeClock struct {
	mu     sync.Mutex
	cond   *sync.Cond
	now    time.Time
	auto   bool
	slept  []time.Duration
	timers []*fakeTimer
}

type fakeTimer struct {
	at time.Time
	ch chan time.Time
}

// NewFakeClock returns a FakeClock starting at start.
func NewFakeClock(start time.Time) *FakeClock {
	c := &FakeClock{now: start}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// AutoAdvance switches the clock to auto-advance mode: every Sleep
// advances the clock by the requested duration and returns immediately.
func (c *FakeClock) AutoAdvance() {
	c.mu.Lock()
	c.auto = true
	c.mu.Unlock()
}

// Now implements Clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Slept returns every duration passed to Sleep so far, in call order.
func (c *FakeClock) Slept() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.slept...)
}

// After implements Clock: the returned channel fires once Advance moves
// the clock to or past now+d. A non-positive d fires immediately.
func (c *FakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.timers = append(c.timers, &fakeTimer{at: c.now.Add(d), ch: ch})
	c.cond.Broadcast()
	return ch
}

// Sleep implements Clock. In auto-advance mode it records d, advances the
// clock, and returns (after checking ctx); otherwise it blocks on After.
func (c *FakeClock) Sleep(ctx context.Context, d time.Duration) error {
	c.mu.Lock()
	if c.auto {
		c.slept = append(c.slept, d)
		c.now = c.now.Add(d)
		c.mu.Unlock()
		return ctx.Err()
	}
	c.slept = append(c.slept, d)
	c.mu.Unlock()
	select {
	case <-c.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Advance moves the clock forward by d and fires every timer whose
// deadline has been reached, removing it from the pending set.
func (c *FakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	pending := c.timers[:0]
	for _, t := range c.timers {
		if !t.at.After(c.now) {
			t.ch <- c.now
		} else {
			pending = append(pending, t)
		}
	}
	c.timers = pending
}

// WaitForTimers blocks until at least n timers are pending — i.e. n
// goroutines have registered an After/Sleep and are about to block on it.
// Tests use it to sequence Advance calls deterministically.
func (c *FakeClock) WaitForTimers(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.timers) < n {
		c.cond.Wait()
	}
}
