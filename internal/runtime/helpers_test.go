package runtime_test

import (
	"testing"

	"socrel/internal/assembly"
	"socrel/internal/model"
	"socrel/internal/registry"
)

// buildWorkerAssembly builds the canonical self-healing fixture: an "app"
// composite with one open role "worker" and two candidate providers with
// the given constant failure probabilities. The role is left unbound; the
// supervisor (or the test) binds it.
func buildWorkerAssembly(t *testing.T, pfailA, pfailB float64) (*assembly.Assembly, []registry.Candidate) {
	t.Helper()
	asm := assembly.New("selfheal")
	asm.MustAddService(model.NewConstant("providerA", pfailA))
	asm.MustAddService(model.NewConstant("providerB", pfailB))
	app := model.NewComposite("app", nil, nil)
	st, err := app.Flow().AddState("work", model.AND, model.NoSharing)
	if err != nil {
		t.Fatal(err)
	}
	st.AddRequest(model.Request{Role: "worker"})
	if err := app.Flow().AddTransitionP(model.StartState, "work", 1); err != nil {
		t.Fatal(err)
	}
	if err := app.Flow().AddTransitionP("work", model.EndState, 1); err != nil {
		t.Fatal(err)
	}
	asm.MustAddService(app)
	cands := []registry.Candidate{{Provider: "providerA"}, {Provider: "providerB"}}
	return asm, cands
}
