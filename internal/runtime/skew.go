package runtime

import (
	"context"
	"sync"
	"time"
)

// SkewedClock derives a per-node clock from a shared base clock by
// adding an adjustable offset to Now. Durations (After, Sleep) pass
// through to the base unchanged: skew models a wrong wall clock, not a
// wrong oscillator, so timers still fire in base time while timestamps
// — staleness metadata, membership lastAlive, estimator observation
// times — are read through the skewed lens.
//
// In deterministic simulation every node wraps one shared FakeClock in
// its own SkewedClock, so a single Advance moves the whole fleet while
// each node keeps its own (possibly wrong) idea of what time it is.
type SkewedClock struct {
	base Clock

	mu   sync.Mutex
	skew time.Duration
}

// NewSkewedClock wraps base with an initially zero skew.
func NewSkewedClock(base Clock) *SkewedClock {
	if base == nil {
		base = RealClock{}
	}
	return &SkewedClock{base: base}
}

// SetSkew sets the offset added to every Now reading.
func (c *SkewedClock) SetSkew(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.skew = d
}

// Skew returns the current offset.
func (c *SkewedClock) Skew() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.skew
}

// Now implements Clock: the base time shifted by the current skew.
func (c *SkewedClock) Now() time.Time {
	c.mu.Lock()
	skew := c.skew
	c.mu.Unlock()
	return c.base.Now().Add(skew)
}

// After implements Clock, delegating to the base clock: a skewed wall
// clock does not change how long a duration takes to elapse.
func (c *SkewedClock) After(d time.Duration) <-chan time.Time {
	return c.base.After(d)
}

// Sleep implements Clock, delegating to the base clock.
func (c *SkewedClock) Sleep(ctx context.Context, d time.Duration) error {
	return c.base.Sleep(ctx, d)
}
