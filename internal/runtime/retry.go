package runtime

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"time"

	"socrel/internal/core"
	"socrel/internal/model"
)

// Errors returned by the retry layer.
var (
	// ErrRetriesExhausted is returned when every attempt of a resolver
	// call failed with a retryable error; it wraps the last attempt's
	// error, so the underlying taxonomy sentinel stays matchable.
	ErrRetriesExhausted = errors.New("runtime: retries exhausted")
	// ErrRetryBudgetExhausted is returned when the resolver's global retry
	// budget ran out before the call's own attempts did.
	ErrRetryBudgetExhausted = errors.New("runtime: retry budget exhausted")
	// ErrAttemptTimeout marks a single attempt that exceeded the
	// per-attempt deadline. It is retryable and deliberately does NOT
	// match context.DeadlineExceeded: a slow attempt is the decorator's
	// business, a caller's expired deadline is not.
	ErrAttemptTimeout = errors.New("runtime: attempt deadline exceeded")
)

// RetryPolicy configures a RetryResolver.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per call, including the
	// first (default 4).
	MaxAttempts int
	// BaseDelay is the backoff cap before the first retry (default 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 1s).
	MaxDelay time.Duration
	// Multiplier is the exponential backoff growth factor (default 2).
	Multiplier float64
	// AttemptTimeout is the per-attempt deadline; an attempt still running
	// when it expires is abandoned and counted as a retryable
	// ErrAttemptTimeout failure (0 = no per-attempt deadline).
	AttemptTimeout time.Duration
	// Budget is the global retry budget: the maximum number of retries
	// (attempts beyond each call's first) the resolver will perform over
	// its lifetime, shared across calls and goroutines (0 = unlimited).
	// An exhausted budget fails the call with ErrRetryBudgetExhausted
	// instead of sleeping — a persistent fault then degrades quickly
	// instead of multiplying load with retry storms.
	Budget int
	// Retryable classifies an attempt error; nil means DefaultRetryable.
	Retryable func(error) bool
	// Rand is the jitter source in [0,1) (default a private seeded
	// source). Inject a seeded source for deterministic backoff in tests.
	Rand func() float64
	// Clock supplies timers and sleeps (default RealClock).
	Clock Clock
	// OnRetry, when set, is called before each backoff sleep with the
	// operation label, the attempt number that just failed (1-based), the
	// chosen delay, and the attempt's error.
	OnRetry func(op string, attempt int, delay time.Duration, err error)
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier <= 1 {
		p.Multiplier = 2
	}
	if p.Retryable == nil {
		p.Retryable = DefaultRetryable
	}
	if p.Clock == nil {
		p.Clock = RealClock{}
	}
	return p
}

// DefaultRetryable is the taxonomy-driven retry classification:
//
//	retry      ErrTransient (marked-transient failures), ErrAttemptTimeout,
//	           ErrUnresolvedBinding, ErrUnknownService (transient lookup
//	           flakes are indistinguishable from them at the resolver)
//	fail fast  ErrCanceled and context expiry (the caller gave up),
//	           ErrNoBinding (a semantic fallback signal, not a failure),
//	           ErrDefectiveFlow, ErrNotCompilable, ErrInvalidService,
//	           ErrNonFinite, ErrPanic (deterministic defects), and
//	           anything unclassified
func DefaultRetryable(err error) bool {
	switch {
	case err == nil:
		return false
	case errors.Is(err, core.ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return false
	case errors.Is(err, model.ErrNoBinding):
		return false
	case errors.Is(err, core.ErrDefectiveFlow),
		errors.Is(err, core.ErrNotCompilable),
		errors.Is(err, core.ErrPanic),
		errors.Is(err, core.ErrNonFinite),
		errors.Is(err, model.ErrInvalidService):
		return false
	case errors.Is(err, model.ErrTransient),
		errors.Is(err, ErrAttemptTimeout),
		errors.Is(err, core.ErrUnresolvedBinding),
		errors.Is(err, model.ErrUnknownService):
		return true
	default:
		return false
	}
}

// RetryResolver decorates a model.Resolver with retries. It is safe for
// concurrent use if the base resolver is; the retry budget and telemetry
// are shared across goroutines.
type RetryResolver struct {
	base   model.Resolver
	policy RetryPolicy
	ctx    context.Context
	shared *retryShared
}

// retryShared is the state WithContext views share with their parent.
type retryShared struct {
	mu        sync.Mutex
	rng       func() float64
	budget    int
	unlimited bool
	retries   int
}

var _ model.Resolver = (*RetryResolver)(nil)

// NewRetryResolver returns a retrying decorator over base.
func NewRetryResolver(base model.Resolver, policy RetryPolicy) *RetryResolver {
	policy = policy.withDefaults()
	r := &RetryResolver{
		base:   base,
		policy: policy,
		ctx:    context.Background(),
		shared: &retryShared{
			rng:       policy.Rand,
			budget:    policy.Budget,
			unlimited: policy.Budget <= 0,
		},
	}
	if r.shared.rng == nil {
		src := rand.New(rand.NewSource(rand.Int63()))
		var mu sync.Mutex
		r.shared.rng = func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return src.Float64()
		}
	}
	return r
}

// WithContext returns a view of the resolver whose backoff sleeps and
// attempt waits are canceled when ctx is done. The view shares the base,
// budget, and telemetry with the receiver.
func (r *RetryResolver) WithContext(ctx context.Context) *RetryResolver {
	if ctx == nil {
		ctx = context.Background()
	}
	view := *r
	view.ctx = ctx
	return &view
}

// Retries returns how many retries (attempts beyond a call's first) the
// resolver has performed so far.
func (r *RetryResolver) Retries() int {
	r.shared.mu.Lock()
	defer r.shared.mu.Unlock()
	return r.shared.retries
}

// BudgetRemaining returns the remaining global retry budget, or -1 when
// the budget is unlimited.
func (r *RetryResolver) BudgetRemaining() int {
	r.shared.mu.Lock()
	defer r.shared.mu.Unlock()
	if r.shared.unlimited {
		return -1
	}
	return r.shared.budget
}

// ServiceByName implements model.Resolver with retries.
func (r *RetryResolver) ServiceByName(name string) (model.Service, error) {
	return doRetry(r, "lookup "+name, func() (model.Service, error) {
		return r.base.ServiceByName(name)
	})
}

// bindResult carries Bind's pair through the generic retry loop.
type bindResult struct {
	provider, connector string
}

// Bind implements model.Resolver with retries. model.ErrNoBinding passes
// through unretried and unwrapped: it is the engine's signal to fall back
// to role-as-name resolution, not a failure.
func (r *RetryResolver) Bind(caller, role string) (provider, connector string, err error) {
	res, err := doRetry(r, "bind "+caller+"/"+role, func() (bindResult, error) {
		p, c, err := r.base.Bind(caller, role)
		return bindResult{p, c}, err
	})
	if err != nil {
		return "", "", err
	}
	return res.provider, res.connector, nil
}

// doRetry runs one resolver call under the retry policy. Permanent errors
// are returned unwrapped so semantic sentinels (model.ErrNoBinding) keep
// their exact meaning; exhausted attempts wrap the last error under
// ErrRetriesExhausted. Each attempt captures its result in its own slot —
// an abandoned (timed-out) attempt can never clobber a later attempt's
// result.
func doRetry[T any](r *RetryResolver, op string, f func() (T, error)) (T, error) {
	var zero T
	for attempt := 1; ; attempt++ {
		res, err := attemptOnce(r, f)
		if err == nil {
			return res, nil
		}
		if !r.policy.Retryable(err) {
			return zero, err
		}
		if attempt >= r.policy.MaxAttempts {
			return zero, fmt.Errorf("%w: %s failed after %d attempts: %w", ErrRetriesExhausted, op, attempt, err)
		}
		if !r.takeBudget() {
			return zero, fmt.Errorf("%w: %s: %w", ErrRetryBudgetExhausted, op, err)
		}
		delay := r.backoff(attempt)
		if r.policy.OnRetry != nil {
			r.policy.OnRetry(op, attempt, delay, err)
		}
		if serr := r.policy.Clock.Sleep(r.ctx, delay); serr != nil {
			return zero, fmt.Errorf("%w: %s canceled during backoff: %w", core.ErrCanceled, op, serr)
		}
	}
}

// attemptOnce runs f once, bounded by the per-attempt deadline. A
// timed-out attempt is abandoned (its goroutine finishes into a buffered
// channel) and reported as ErrAttemptTimeout; a panicking attempt is
// isolated into a *core.PanicError.
func attemptOnce[T any](r *RetryResolver, f func() (T, error)) (T, error) {
	var zero T
	if r.policy.AttemptTimeout <= 0 {
		if err := r.ctx.Err(); err != nil {
			return zero, fmt.Errorf("%w: %w", core.ErrCanceled, err)
		}
		return f()
	}
	type outcome struct {
		res T
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- outcome{err: &core.PanicError{Value: p, Stack: debug.Stack()}}
			}
		}()
		res, err := f()
		done <- outcome{res: res, err: err}
	}()
	select {
	case out := <-done:
		return out.res, out.err
	case <-r.policy.Clock.After(r.policy.AttemptTimeout):
		return zero, fmt.Errorf("%w: exceeded %v", ErrAttemptTimeout, r.policy.AttemptTimeout)
	case <-r.ctx.Done():
		return zero, fmt.Errorf("%w: %w", core.ErrCanceled, r.ctx.Err())
	}
}

// takeBudget consumes one unit of the global retry budget.
func (r *RetryResolver) takeBudget() bool {
	s := r.shared
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.unlimited {
		if s.budget <= 0 {
			return false
		}
		s.budget--
	}
	s.retries++
	return true
}

// backoff computes the delay before retry number attempt (1-based) with
// full jitter: uniform in [0, min(MaxDelay, BaseDelay*Multiplier^(a-1))).
func (r *RetryResolver) backoff(attempt int) time.Duration {
	cap := float64(r.policy.BaseDelay)
	for i := 1; i < attempt; i++ {
		cap *= r.policy.Multiplier
		if cap >= float64(r.policy.MaxDelay) {
			cap = float64(r.policy.MaxDelay)
			break
		}
	}
	r.shared.mu.Lock()
	u := r.shared.rng()
	r.shared.mu.Unlock()
	return time.Duration(u * cap)
}
