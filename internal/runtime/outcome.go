package runtime

// The typed outcome-event hook and the re-prediction entry point: the two
// halves of the Supervisor's estimation seam. Outcome events stream what
// the supervisor observes (so estimation layers consume a stable typed
// surface instead of scraping internals), and Repredict feeds what the
// estimation layer learned back into the live model.

import (
	"context"
	"fmt"
	"math"
	"time"

	"socrel/internal/core"
	"socrel/internal/model"
	"socrel/internal/monitor"
)

// OutcomeClass classifies an observed invocation outcome.
type OutcomeClass int

// Outcome classes.
const (
	// OutcomeSuccess means the invocation completed successfully.
	OutcomeSuccess OutcomeClass = iota + 1
	// OutcomeFailure means the invocation failed.
	OutcomeFailure
)

func (c OutcomeClass) String() string {
	switch c {
	case OutcomeSuccess:
		return "success"
	case OutcomeFailure:
		return "failure"
	default:
		return fmt.Sprintf("OutcomeClass(%d)", int(c))
	}
}

// Invocation describes one observed invocation of the currently bound
// provider, as reported to ReportInvocation. Only Success is required;
// the remaining fields default to a nominal invocation of the supervised
// target at the supervisor's clock.
type Invocation struct {
	// Success reports whether the invocation succeeded.
	Success bool
	// Latency is the observed invocation latency (0 if unmeasured).
	Latency time.Duration
	// Context tags the service context for estimation bucketing; empty
	// defaults to the supervised target service.
	Context string
	// Exposure is the exposure accumulated under the provider's failure
	// law (the N/s of eq. (1) or B/b of eq. (2)); non-positive defaults
	// to 1.
	Exposure float64
	// Load is the load bucket the invocation ran under.
	Load int
	// At is the observation timestamp; zero defaults to the supervisor's
	// clock.
	At time.Time
}

// OutcomeEvent is the typed event published to SupervisorConfig.OnOutcome
// for every reported invocation: provider, service context, outcome
// class, latency, and clock timestamp — everything an estimation layer
// needs, nothing it has to scrape.
type OutcomeEvent struct {
	// Provider is the provider that was bound when the outcome was
	// observed.
	Provider string
	// Context is the service context (the supervised target unless the
	// reporter overrode it).
	Context string
	// Class is the outcome class.
	Class OutcomeClass
	// Latency is the observed latency and Exposure the failure-law
	// exposure; Load is the load bucket.
	Latency  time.Duration
	Exposure float64
	Load     int
	// At is the observation timestamp.
	At time.Time
}

// RepredictEvent records one re-prediction: a learned failure-law
// parameter re-entering the live model.
type RepredictEvent struct {
	// Provider is the service whose attribute was rebound and Attr the
	// attribute name (e.g. "lambda", "beta").
	Provider string
	Attr     string
	// OldValue and NewValue are the attribute before and after.
	OldValue, NewValue float64
	// OldPfail and NewPfail are the supervised target's predicted
	// failure probability before and after (OldPfail is NaN when no
	// pre-swap prediction was computable).
	OldPfail, NewPfail float64
	// At is when the re-prediction completed.
	At time.Time
}

// ReportInvocation streams one observed invocation outcome of the
// currently bound provider: the health layer consumes it (SPRT monitor,
// breaker, automatic rebind — exactly like ReportOutcome), and
// SupervisorConfig.OnOutcome receives the typed event, outside the
// supervisor's lock. It returns the SPRT verdict after the outcome and
// whether a rebind happened (rebindErr reports a rebind that was needed
// but found no healthy candidate — the binding then stays and answers
// degrade).
func (s *Supervisor) ReportInvocation(ctx context.Context, inv Invocation) (v monitor.Verdict, rebound bool, rebindErr error) {
	if inv.Exposure <= 0 || math.IsNaN(inv.Exposure) || math.IsInf(inv.Exposure, 0) {
		inv.Exposure = 1
	}
	if inv.At.IsZero() {
		inv.At = s.clock.Now()
	}

	s.lock()
	prov := s.current.Provider
	if inv.Context == "" {
		inv.Context = s.target
	}
	v = s.tracker.Observe(prov, inv.Success)
	if s.tracker.Quarantined(prov) {
		why, _ := s.tracker.Breaker(prov).LastTrip()
		if why == nil {
			why = fmt.Errorf("%w: %q", ErrQuarantined, prov)
		}
		if err := s.rebindLocked(ctx, why); err != nil {
			rebindErr = err
		} else {
			rebound = true
		}
	}
	s.unlock()

	if s.cfg.OnOutcome != nil {
		class := OutcomeSuccess
		if !inv.Success {
			class = OutcomeFailure
		}
		s.cfg.OnOutcome(OutcomeEvent{
			Provider: prov,
			Context:  inv.Context,
			Class:    class,
			Latency:  inv.Latency,
			Exposure: inv.Exposure,
			Load:     inv.Load,
			At:       inv.At,
		})
	}
	return v, rebound, rebindErr
}

// Repredict rebinds one attribute of a (simple) service to a learned
// value and recomputes the prediction through the updated model: the
// service is replaced by a WithAttr copy, the evaluator rebuilt, and the
// supervised target re-evaluated. On success the supervisor's predicted
// reliability, last-known-good value, and the provider's health state
// are refreshed (breaker closed, SPRT re-armed against the new
// prediction — the old evidence judged the old model), and
// SupervisorConfig.OnRepredict fires outside the lock. On evaluation
// failure the old service is restored and the model is unchanged.
// *Supervisor implements estimate.Repredictor with this method.
func (s *Supervisor) Repredict(ctx context.Context, provider, attr string, value float64) (oldPfail, newPfail float64, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ev, err := s.repredictLocked(ctx, provider, attr, value)
	if err != nil {
		return 0, 0, err
	}
	if s.cfg.OnRepredict != nil {
		s.cfg.OnRepredict(ev)
	}
	return ev.OldPfail, ev.NewPfail, nil
}

func (s *Supervisor) repredictLocked(ctx context.Context, provider, attr string, value float64) (RepredictEvent, error) {
	s.lock()
	defer s.unlock()

	svc, err := s.asm.ServiceByName(provider)
	if err != nil {
		return RepredictEvent{}, err
	}
	simple, ok := svc.(*model.Simple)
	if !ok {
		return RepredictEvent{}, fmt.Errorf("runtime: repredict %q: %w: not a simple service", provider, model.ErrInvalidService)
	}
	updated, err := simple.WithAttr(attr, value)
	if err != nil {
		return RepredictEvent{}, fmt.Errorf("runtime: repredict %q: %w", provider, err)
	}
	oldValue := simple.Attributes()[attr]

	// Pre-swap prediction, for the published old/new pair; fall back to
	// the last-known-good value when the current model cannot evaluate
	// (e.g. the drifted provider is quarantined with no alternative).
	oldPfail := math.NaN()
	if p, perr := s.ev.PfailCtx(ctx, s.target, s.params...); perr == nil {
		oldPfail = p
	} else if s.last != nil {
		oldPfail = s.last.Pfail
	}

	if err := s.asm.ReplaceService(updated); err != nil {
		return RepredictEvent{}, err
	}
	s.ev = core.New(s.wrapped(), s.opts)
	newPfail, err := s.ev.PfailCtx(ctx, s.target, s.params...)
	if err != nil {
		// The learned parameter broke the model: roll back.
		if rerr := s.asm.ReplaceService(svc); rerr != nil {
			err = fmt.Errorf("%w (rollback failed: %v)", err, rerr)
		}
		s.ev = core.New(s.wrapped(), s.opts)
		return RepredictEvent{}, fmt.Errorf("runtime: repredict %s.%s=%g: %w", provider, attr, value, err)
	}

	s.predicted = 1 - newPfail
	s.last = &LastGood{Pfail: newPfail, Provider: s.current.Provider, At: s.clock.Now()}
	// The re-predicted provider's quarantine and SPRT evidence judged
	// the old model; clear them so the corrected model gets a fresh
	// sequential test against the new prediction.
	s.tracker.Recover(provider)
	if err := s.tracker.Watch(s.current.Provider, s.predicted); err != nil {
		return RepredictEvent{}, err
	}

	ev := RepredictEvent{
		Provider: provider,
		Attr:     attr,
		OldValue: oldValue,
		NewValue: value,
		OldPfail: oldPfail,
		NewPfail: newPfail,
		At:       s.clock.Now(),
	}
	s.repredicts = append(s.repredicts, ev)
	return ev, nil
}

// Repredictions returns every completed re-prediction so far, oldest
// first.
func (s *Supervisor) Repredictions() []RepredictEvent {
	s.lock()
	defer s.unlock()
	return append([]RepredictEvent(nil), s.repredicts...)
}
