package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/monitor"
	"socrel/internal/registry"
)

// Errors returned by the health layer.
var (
	// ErrProviderDegraded is the trip reason when a provider's SPRT
	// monitor decides it is running below its predicted reliability.
	ErrProviderDegraded = errors.New("runtime: provider violating predicted reliability")
	// ErrAllQuarantined is returned by SelectHealthyBinding when every
	// candidate provider is quarantined.
	ErrAllQuarantined = errors.New("runtime: all candidate providers quarantined")
	// ErrPeerEvidence is the trip reason when merged evidence gossiped
	// from a peer replica — not this process's own observations — carries
	// a Violating SPRT verdict for a provider.
	ErrPeerEvidence = errors.New("runtime: SPRT violating in merged peer evidence")
	// ErrDrift is the trip reason when the estimation layer confirms a
	// provider's failure parameters drifted away from the bound model.
	ErrDrift = errors.New("runtime: failure-parameter drift")
)

// HealthConfig parameterizes a HealthTracker.
type HealthConfig struct {
	// Breaker configures every per-provider circuit breaker.
	Breaker BreakerConfig
	// Monitor is the template for per-provider SPRT monitors; Predicted
	// and Degraded are overridden per provider when it is watched.
	Monitor monitor.Config
	// DegradedRatio sets each monitor's H1 as ratio*predicted (default:
	// the monitor package's 0.9*predicted).
	DegradedRatio float64
	// OnTrip, when set, is called whenever a provider's breaker opens —
	// from an SPRT violation or from repeated evaluation errors. It runs
	// with the tracker's lock held; it must not call back into the
	// tracker.
	OnTrip func(provider string, reason error)
}

// providerHealth is one provider's breaker plus SPRT monitor.
type providerHealth struct {
	breaker *Breaker
	mon     *monitor.Monitor
}

// HealthTracker keeps per-provider health: a circuit breaker fed by typed
// evaluation errors and by an SPRT monitor over streamed invocation
// outcomes. It is safe for concurrent use.
type HealthTracker struct {
	cfg HealthConfig

	mu        sync.Mutex
	providers map[string]*providerHealth
}

// NewHealthTracker returns an empty tracker.
func NewHealthTracker(cfg HealthConfig) *HealthTracker {
	cfg.Breaker = cfg.Breaker.withDefaults()
	return &HealthTracker{cfg: cfg, providers: make(map[string]*providerHealth)}
}

// Watch starts (or re-parameterizes) health tracking for a provider whose
// predicted reliability is predicted. A provider already watched keeps its
// breaker and its accumulated monitor evidence; only a change of the
// predicted reliability re-arms the SPRT (preserving cumulative and
// windowed statistics via Snapshot/Restore).
func (h *HealthTracker) Watch(provider string, predicted float64) error {
	cfg := h.cfg.Monitor
	// A prediction of exactly 0 or 1 is outside the SPRT's open interval;
	// nudge it inside so perfect (or hopeless) predictions stay watchable.
	const eps = 1e-9
	if predicted >= 1 {
		predicted = 1 - eps
	}
	if predicted <= 0 {
		predicted = eps
	}
	cfg.Predicted = predicted
	if h.cfg.DegradedRatio > 0 {
		cfg.Degraded = h.cfg.DegradedRatio * predicted
	} else {
		cfg.Degraded = 0
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	ph, ok := h.providers[provider]
	if !ok {
		mon, err := monitor.New(cfg)
		if err != nil {
			return fmt.Errorf("runtime: watch %q: %w", provider, err)
		}
		h.providers[provider] = &providerHealth{
			breaker: NewBreaker(h.cfg.Breaker),
			mon:     mon,
		}
		return nil
	}
	old := ph.mon.Snapshot()
	if old.Config.Predicted == cfg.Predicted {
		return nil
	}
	old.Config = cfg
	old.LLR = 0
	old.Decided = monitor.Undecided
	mon, err := monitor.Restore(old)
	if err != nil {
		return fmt.Errorf("runtime: re-watch %q: %w", provider, err)
	}
	ph.mon = mon
	return nil
}

// Observe streams one invocation outcome for a provider. The outcome
// updates the provider's SPRT monitor; a Violating verdict trips the
// breaker (once per armed test). Unwatched providers are ignored and
// report Undecided.
func (h *HealthTracker) Observe(provider string, success bool) monitor.Verdict {
	h.mu.Lock()
	defer h.mu.Unlock()
	ph, ok := h.providers[provider]
	if !ok {
		return monitor.Undecided
	}
	armed := ph.mon.SPRT() == monitor.Undecided
	ph.mon.Record(success)
	v := ph.mon.SPRT()
	switch {
	case armed && v == monitor.Violating:
		reason := fmt.Errorf("%w: SPRT violating after %d outcomes (windowed reliability %.4g)",
			ErrProviderDegraded, ph.mon.Total(), ph.mon.Windowed())
		ph.breaker.Trip(reason)
		if h.cfg.OnTrip != nil {
			h.cfg.OnTrip(provider, reason)
		}
	case v == monitor.Meeting:
		// A Meeting decision ends one sequential test; re-arm immediately
		// (repeated SPRT) so a later degradation is still detected. The
		// decided-Violating state is sticky instead: it is cleared by the
		// breaker lifecycle, not by more data.
		ph.mon.ResetSPRT()
	}
	return v
}

// ObserveEvalError feeds one failed evaluation against a provider into its
// breaker. Cancellation is not held against the provider (the caller gave
// up, the provider did not fail); every other error counts toward the
// consecutive-failure threshold.
func (h *HealthTracker) ObserveEvalError(provider string, err error) {
	if err == nil || errors.Is(err, core.ErrCanceled) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	ph, ok := h.providers[provider]
	if !ok {
		return
	}
	before := ph.breaker.State()
	ph.breaker.RecordFailure(err)
	if h.cfg.OnTrip != nil && before != Open && ph.breaker.State() == Open {
		why, _ := ph.breaker.LastTrip()
		h.cfg.OnTrip(provider, why)
	}
}

// ObserveEvalSuccess feeds one successful evaluation into the provider's
// breaker (resetting the consecutive-failure count, or consuming one
// half-open probe).
func (h *HealthTracker) ObserveEvalSuccess(provider string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ph, ok := h.providers[provider]; ok {
		ph.breaker.RecordSuccess()
	}
}

// Quarantined reports whether the provider's breaker currently refuses
// calls. Unwatched providers are never quarantined.
func (h *HealthTracker) Quarantined(provider string) bool {
	h.mu.Lock()
	ph, ok := h.providers[provider]
	h.mu.Unlock()
	return ok && !ph.breaker.Allow()
}

// BreakerState returns the provider's breaker state (Closed for unwatched
// providers).
func (h *HealthTracker) BreakerState(provider string) BreakerState {
	h.mu.Lock()
	ph, ok := h.providers[provider]
	h.mu.Unlock()
	if !ok {
		return Closed
	}
	return ph.breaker.State()
}

// Breaker returns the provider's breaker for direct inspection, or nil
// for unwatched providers.
func (h *HealthTracker) Breaker(provider string) *Breaker {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ph, ok := h.providers[provider]; ok {
		return ph.breaker
	}
	return nil
}

// Verdict returns the provider's current SPRT verdict (Undecided for
// unwatched providers).
func (h *HealthTracker) Verdict(provider string) monitor.Verdict {
	h.mu.Lock()
	defer h.mu.Unlock()
	if ph, ok := h.providers[provider]; ok {
		return ph.mon.SPRT()
	}
	return monitor.Undecided
}

// Healthy filters candidates whose provider is not quarantined.
func (h *HealthTracker) Healthy(candidates []registry.Candidate) []registry.Candidate {
	out := make([]registry.Candidate, 0, len(candidates))
	for _, c := range candidates {
		if !h.Quarantined(c.Provider) {
			out = append(out, c)
		}
	}
	return out
}

// Checkpoint snapshots every watched provider's monitor, keyed by
// provider name, so SPRT evidence survives rebinds and process restarts.
func (h *HealthTracker) Checkpoint() map[string]monitor.Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make(map[string]monitor.Snapshot, len(h.providers))
	for name, ph := range h.providers {
		out[name] = ph.mon.Snapshot()
	}
	return out
}

// RestoreCheckpoint restores monitors from a Checkpoint, creating breaker
// state afresh (breakers protect the running process; monitors carry the
// statistical evidence worth persisting).
func (h *HealthTracker) RestoreCheckpoint(snap map[string]monitor.Snapshot) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for name, s := range snap {
		mon, err := monitor.Restore(s)
		if err != nil {
			return fmt.Errorf("runtime: restore %q: %w", name, err)
		}
		if ph, ok := h.providers[name]; ok {
			ph.mon = mon
		} else {
			h.providers[name] = &providerHealth{breaker: NewBreaker(h.cfg.Breaker), mon: mon}
		}
	}
	return nil
}

// MergeCheckpoint folds a remote replica's checkpoint into this tracker:
// each provider's snapshot merges with the local one under the monitor
// package's most-evidence-wins semantics (commutative and idempotent, so
// re-delivered gossip neither double-counts evidence nor regresses a
// tripped verdict), and providers the tracker has never seen are adopted
// wholesale with a fresh breaker. When a merge moves a provider's verdict
// to Violating that was not already Violating locally, the provider's
// breaker trips — this is how a quarantine observed on one replica
// propagates fleet-wide — and OnTrip fires with a reason wrapping both
// ErrProviderDegraded and ErrPeerEvidence.
func (h *HealthTracker) MergeCheckpoint(snap map[string]monitor.Snapshot) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	for name, remote := range snap {
		ph, ok := h.providers[name]
		if !ok {
			mon, err := monitor.Restore(remote)
			if err != nil {
				return fmt.Errorf("runtime: merge %q: %w", name, err)
			}
			ph = &providerHealth{breaker: NewBreaker(h.cfg.Breaker), mon: mon}
			h.providers[name] = ph
			if remote.Decided == monitor.Violating {
				h.tripFromPeerLocked(name, ph, remote.Total)
			}
			continue
		}
		local := ph.mon.Snapshot()
		merged, err := local.Merge(remote)
		if err != nil {
			return fmt.Errorf("runtime: merge %q: %w", name, err)
		}
		mon, err := monitor.Restore(merged)
		if err != nil {
			return fmt.Errorf("runtime: merge %q: %w", name, err)
		}
		ph.mon = mon
		if merged.Decided == monitor.Violating && local.Decided != monitor.Violating {
			h.tripFromPeerLocked(name, ph, merged.Total)
		}
	}
	return nil
}

// tripFromPeerLocked opens a provider's breaker because merged peer
// evidence says it is violating. Callers hold h.mu.
func (h *HealthTracker) tripFromPeerLocked(name string, ph *providerHealth, total int) {
	reason := fmt.Errorf("%w: %w after %d merged outcomes", ErrProviderDegraded, ErrPeerEvidence, total)
	ph.breaker.Trip(reason)
	if h.cfg.OnTrip != nil {
		h.cfg.OnTrip(name, reason)
	}
}

// TripDrift opens a watched provider's breaker because the estimation
// layer confirmed sustained failure-parameter drift — the same
// quarantine path hard failures take, with a reason wrapping ErrDrift.
// It reports whether the provider was watched (unwatched providers are
// ignored). HealthTracker implements estimate.DriftTripper with it.
func (h *HealthTracker) TripDrift(provider string, reason error) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	ph, ok := h.providers[provider]
	if !ok {
		return false
	}
	why := ErrDrift
	if reason != nil {
		why = fmt.Errorf("%w: %w", ErrDrift, reason)
	}
	ph.breaker.Trip(why)
	if h.cfg.OnTrip != nil {
		h.cfg.OnTrip(provider, why)
	}
	return true
}

// Recover force-closes a provider's breaker and re-arms its SPRT. The
// re-prediction path uses it: evidence accumulated against the old
// prediction — including a quarantine it caused — no longer applies once
// the model is rebound to the observed behavior. It reports whether the
// provider was watched.
func (h *HealthTracker) Recover(provider string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	ph, ok := h.providers[provider]
	if !ok {
		return false
	}
	ph.breaker.Reset()
	ph.mon.ResetSPRT()
	return true
}

// SelectHealthyBinding is registry.SelectBindingCtx restricted to healthy
// candidates: providers whose breaker is open are excluded before scoring.
// With every candidate quarantined it fails fast with ErrAllQuarantined
// (wrapping ErrQuarantined) instead of scoring providers known to be bad.
func SelectHealthyBinding(ctx context.Context, tracker *HealthTracker, asm *assembly.Assembly, caller, role string, candidates []registry.Candidate, opts core.Options, target string, params ...float64) (registry.Selection, error) {
	healthy := tracker.Healthy(candidates)
	if len(healthy) == 0 {
		if len(candidates) == 0 {
			return registry.Selection{}, registry.ErrNoCandidates
		}
		return registry.Selection{}, fmt.Errorf("%w: %w: %d candidates for %s/%s", ErrAllQuarantined, ErrQuarantined, len(candidates), caller, role)
	}
	return registry.SelectBindingCtx(ctx, asm, caller, role, healthy, opts, target, params...)
}
