package runtime

import (
	"errors"
	"fmt"
	"math"
	"testing"
	"time"

	"socrel/internal/linalg"
)

func TestDegradeBoundedFromResidual(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	cause := fmt.Errorf("solve: %w", &linalg.NoConvergenceError{Iterations: 9, Residual: 0.05})
	last := &LastGood{Pfail: 0.02, Provider: "p", At: now.Add(-3 * time.Second)}

	a := Degrade(cause, last, now)
	if a.Kind != Bounded {
		t.Fatalf("kind = %v, want bounded", a.Kind)
	}
	if a.Lo != 0 || math.Abs(a.Hi-0.07) > 1e-12 {
		t.Fatalf("bound [%g, %g], want [0, 0.07]", a.Lo, a.Hi)
	}
	if a.Pfail != a.Hi {
		t.Fatalf("Pfail = %g, want the conservative end %g", a.Pfail, a.Hi)
	}
	if a.Provider != "p" || a.Age != 3*time.Second {
		t.Fatalf("answer = %+v, want provider p aged 3s", a)
	}
	if !errors.Is(a.Err, linalg.ErrNoConvergence) || a.IsExact() {
		t.Fatalf("bounded answer mis-tagged: %+v", a)
	}

	// Reliability is the conservative (lower) bound under the upper Pfail.
	if math.Abs(a.Reliability()-0.93) > 1e-12 {
		t.Fatalf("Reliability = %g, want 0.93", a.Reliability())
	}
}

func TestDegradeBoundedWithoutHistoryIsVacuous(t *testing.T) {
	cause := &linalg.NoConvergenceError{Iterations: 1, Residual: 0.5}
	a := Degrade(cause, nil, time.Unix(0, 0))
	if a.Kind != Bounded {
		t.Fatalf("kind = %v, want bounded", a.Kind)
	}
	if a.Lo != 0 || a.Hi != 1 || a.Pfail != 1 {
		t.Fatalf("bound [%g, %g] Pfail %g, want the vacuous [0, 1] with Pfail 1", a.Lo, a.Hi, a.Pfail)
	}
}

func TestDegradeStale(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	cause := errors.New("breaker open")
	last := &LastGood{Pfail: 0.1, Provider: "p", At: now.Add(-time.Minute)}
	a := Degrade(cause, last, now)
	if a.Kind != Stale || a.Pfail != 0.1 || a.Provider != "p" {
		t.Fatalf("answer = %+v, want stale 0.1 from p", a)
	}
	if a.Age != time.Minute || !a.AsOf.Equal(last.At) {
		t.Fatalf("staleness = %v as of %v, want 1m as of %v", a.Age, a.AsOf, last.At)
	}
	if a.Err != cause || a.IsExact() {
		t.Fatalf("stale answer mis-tagged: %+v", a)
	}
}

func TestDegradeUnavailable(t *testing.T) {
	cause := errors.New("nothing works")
	a := Degrade(cause, nil, time.Unix(0, 0))
	if a.Kind != Unavailable || a.Err != cause || a.IsExact() {
		t.Fatalf("answer = %+v, want unavailable carrying the cause", a)
	}
}

func TestAnswerKindStrings(t *testing.T) {
	for kind, want := range map[AnswerKind]string{
		Exact:          "exact",
		Stale:          "stale",
		Bounded:        "bounded",
		Unavailable:    "unavailable",
		AnswerKind(42): "AnswerKind(42)",
	} {
		if got := kind.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(kind), got, want)
		}
	}
}

func TestClamp01(t *testing.T) {
	for _, tc := range []struct{ in, want float64 }{
		{-0.5, 0}, {0, 0}, {0.25, 0.25}, {1, 1}, {1.5, 1},
	} {
		if got := clamp01(tc.in); got != tc.want {
			t.Errorf("clamp01(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
}
