package runtime_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"socrel/internal/core"
	"socrel/internal/linalg"
	"socrel/internal/model"
	"socrel/internal/monitor"
	rt "socrel/internal/runtime"
)

// gateResolver passes through to base until an error is installed with
// fail(); installed errors apply to every ServiceByName call.
type gateResolver struct {
	mu   sync.Mutex
	base model.Resolver
	err  error
}

func (g *gateResolver) fail(err error) {
	g.mu.Lock()
	g.err = err
	g.mu.Unlock()
}

func (g *gateResolver) ServiceByName(name string) (model.Service, error) {
	g.mu.Lock()
	err := g.err
	g.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return g.base.ServiceByName(name)
}

func (g *gateResolver) Bind(caller, role string) (string, string, error) {
	return g.base.Bind(caller, role)
}

func newTestSupervisor(t *testing.T, clk rt.Clock, wrap func(model.Resolver) model.Resolver, onRebind func(rt.RebindEvent)) *rt.Supervisor {
	t.Helper()
	asm, cands := buildWorkerAssembly(t, 0.01, 0.03)
	cfg := rt.SupervisorConfig{
		Clock: clk,
		Health: rt.HealthConfig{
			Breaker: rt.BreakerConfig{FailureThreshold: 3, OpenFor: 30 * time.Second, ProbeSuccesses: 1},
		},
		WrapResolver: wrap,
		OnRebind:     onRebind,
	}
	sup, err := rt.NewSupervisor(context.Background(), cfg, asm, "app", "worker", cands, core.Options{}, "app")
	if err != nil {
		t.Fatal(err)
	}
	return sup
}

func TestSupervisorInitialBindingAndExactAnswer(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	sup := newTestSupervisor(t, clk, nil, nil)
	if got := sup.Current().Provider; got != "providerA" {
		t.Fatalf("initial binding %q, want providerA", got)
	}
	if math.Abs(sup.Predicted()-0.99) > 1e-9 {
		t.Fatalf("predicted reliability %g, want 0.99", sup.Predicted())
	}
	ans := sup.Pfail(context.Background())
	if !ans.IsExact() || ans.Kind != rt.Exact {
		t.Fatalf("answer = %+v, want exact", ans)
	}
	if math.Abs(ans.Pfail-0.01) > 1e-9 {
		t.Fatalf("Pfail = %g, want 0.01", ans.Pfail)
	}
	if ans.Provider != "providerA" || ans.Err != nil {
		t.Fatalf("answer = %+v, want providerA with nil Err", ans)
	}
	if math.Abs(ans.Reliability()-0.99) > 1e-9 {
		t.Fatalf("Reliability = %g, want 0.99", ans.Reliability())
	}
}

func TestSupervisorSPRTFailoverAndRecovery(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	var events []rt.RebindEvent
	sup := newTestSupervisor(t, clk, nil, func(ev rt.RebindEvent) { events = append(events, ev) })
	ctx := context.Background()

	// Seed the last-known-good value while providerA is still healthy.
	if ans := sup.Pfail(ctx); !ans.IsExact() {
		t.Fatalf("setup answer = %+v, want exact", ans)
	}

	// Stream failures: the SPRT trips providerA's breaker and the
	// supervisor rebinds to providerB in the same call.
	var rebound bool
	for i := 0; i < 50 && !rebound; i++ {
		var err error
		_, rebound, err = sup.ReportOutcome(ctx, false)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !rebound {
		t.Fatal("supervisor never rebound under an all-failure stream")
	}
	if got := sup.Current().Provider; got != "providerB" {
		t.Fatalf("bound to %q after failover, want providerB", got)
	}
	if math.Abs(sup.Predicted()-0.97) > 1e-9 {
		t.Fatalf("predicted after failover = %g, want 0.97", sup.Predicted())
	}
	if len(events) != 1 {
		t.Fatalf("rebind events = %d, want 1", len(events))
	}
	ev := events[0]
	if ev.From.Provider != "providerA" || ev.To.Provider != "providerB" {
		t.Fatalf("rebind %q -> %q, want providerA -> providerB", ev.From.Provider, ev.To.Provider)
	}
	if !errors.Is(ev.Reason, rt.ErrProviderDegraded) {
		t.Fatalf("rebind reason = %v, want ErrProviderDegraded", ev.Reason)
	}
	if got := sup.Rebinds(); len(got) != 1 || got[0].To.Provider != "providerB" {
		t.Fatalf("Rebinds() = %+v, want the same single event", got)
	}

	// The new binding answers exactly.
	ans := sup.Pfail(ctx)
	if !ans.IsExact() || math.Abs(ans.Pfail-0.03) > 1e-9 {
		t.Fatalf("post-failover answer = %+v, want exact 0.03", ans)
	}

	// Now degrade providerB too: with providerA still quarantined there is
	// no healthy candidate, so the outcome reports the rebind failure ...
	var rebindErr error
	for i := 0; i < 50 && rebindErr == nil; i++ {
		_, _, rebindErr = sup.ReportOutcome(ctx, false)
	}
	if !errors.Is(rebindErr, rt.ErrAllQuarantined) {
		t.Fatalf("rebind error = %v, want ErrAllQuarantined", rebindErr)
	}

	// ... and answers degrade to the last known good value, tagged stale,
	// with staleness measured on the supervisor's clock.
	clk.Advance(5 * time.Second)
	ans = sup.Pfail(ctx)
	if ans.Kind != rt.Stale {
		t.Fatalf("answer under total quarantine = %+v, want stale", ans)
	}
	if math.Abs(ans.Pfail-0.03) > 1e-9 || ans.Provider != "providerB" {
		t.Fatalf("stale answer = %+v, want last good 0.03 from providerB", ans)
	}
	if ans.Err == nil || !errors.Is(ans.Err, rt.ErrQuarantined) {
		t.Fatalf("stale answer Err = %v, want ErrQuarantined", ans.Err)
	}
	if ans.Age < 5*time.Second {
		t.Fatalf("stale Age = %v, want >= 5s", ans.Age)
	}

	// After the quarantine window the breakers half-open and exact service
	// resumes without manual intervention.
	clk.Advance(30 * time.Second)
	ans = sup.Pfail(ctx)
	if !ans.IsExact() {
		t.Fatalf("answer after quarantine window = %+v, want exact", ans)
	}
}

func TestSupervisorDegradesToBoundedOnNoConvergence(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	gate := &gateResolver{}
	sup := newTestSupervisor(t, clk, func(r model.Resolver) model.Resolver {
		gate.mu.Lock()
		gate.base = r
		gate.mu.Unlock()
		return gate
	}, nil)
	ctx := context.Background()

	if ans := sup.Pfail(ctx); !ans.IsExact() {
		t.Fatalf("setup answer = %+v, want exact", ans)
	}
	gate.fail(fmt.Errorf("iterative solve: %w", &linalg.NoConvergenceError{Iterations: 7, Residual: 0.02}))
	clk.Advance(time.Second)

	ans := sup.Pfail(ctx)
	if ans.Kind != rt.Bounded {
		t.Fatalf("answer = %+v, want bounded", ans)
	}
	// Interval: last good 0.01 widened by the residual 0.02, clamped.
	if ans.Lo != 0 || math.Abs(ans.Hi-0.03) > 1e-12 {
		t.Fatalf("bound [%g, %g], want [0, 0.03]", ans.Lo, ans.Hi)
	}
	if ans.Pfail != ans.Hi {
		t.Fatalf("bounded Pfail = %g, want the conservative end %g", ans.Pfail, ans.Hi)
	}
	if !errors.Is(ans.Err, linalg.ErrNoConvergence) {
		t.Fatalf("bounded Err = %v, want ErrNoConvergence", ans.Err)
	}
	if ans.IsExact() {
		t.Fatal("bounded answer claims to be exact")
	}
}

func TestSupervisorUnavailableWithoutHistory(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	gate := &gateResolver{}
	sup := newTestSupervisor(t, clk, func(r model.Resolver) model.Resolver {
		gate.mu.Lock()
		gate.base = r
		gate.mu.Unlock()
		return gate
	}, nil)

	// Fail before any exact answer exists: nothing to serve.
	gate.fail(fmt.Errorf("%w: registry flaking", model.ErrTransient))
	ans := sup.Pfail(context.Background())
	if ans.Kind != rt.Unavailable {
		t.Fatalf("answer = %+v, want unavailable", ans)
	}
	if ans.Err == nil {
		t.Fatal("unavailable answer lost its cause")
	}
}

func TestSupervisorStaleOnCanceledEvaluation(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	gate := &gateResolver{}
	sup := newTestSupervisor(t, clk, func(r model.Resolver) model.Resolver {
		gate.mu.Lock()
		gate.base = r
		gate.mu.Unlock()
		return gate
	}, nil)
	if ans := sup.Pfail(context.Background()); !ans.IsExact() {
		t.Fatalf("setup answer = %+v, want exact", ans)
	}
	clk.Advance(2 * time.Second)

	// An evaluation that dies on an expired deadline degrades to the last
	// known good value instead of failing the caller.
	gate.fail(fmt.Errorf("%w: evaluation deadline expired: %w", core.ErrCanceled, context.DeadlineExceeded))
	ans := sup.Pfail(context.Background())
	if ans.Kind != rt.Stale {
		t.Fatalf("answer = %+v, want stale", ans)
	}
	if !errors.Is(ans.Err, core.ErrCanceled) {
		t.Fatalf("stale Err = %v, want ErrCanceled", ans.Err)
	}
	if math.Abs(ans.Pfail-0.01) > 1e-9 || ans.Age < 2*time.Second {
		t.Fatalf("stale answer = %+v, want last good 0.01 aged >= 2s", ans)
	}

	// A deadline is the caller's choice, not the provider's failure: the
	// breaker must not have moved.
	if sup.Tracker().BreakerState("providerA") != rt.Closed {
		t.Fatal("an expired caller deadline was held against the provider")
	}
}

func TestSupervisorEvalErrorsTriggerRebind(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	gate := &gateResolver{}
	sup := newTestSupervisor(t, clk, func(r model.Resolver) model.Resolver {
		gate.mu.Lock()
		gate.base = r
		gate.mu.Unlock()
		return gate
	}, nil)
	ctx := context.Background()

	// Three consecutive typed eval errors reach the breaker threshold.
	evalErr := fmt.Errorf("%w: provider vanished", model.ErrUnknownService)
	gate.fail(evalErr)
	for i := 0; i < 2; i++ {
		if ans := sup.Pfail(ctx); ans.Kind == rt.Exact {
			t.Fatalf("call %d: got an exact answer from a failing evaluator", i)
		}
	}
	// The third failure trips the breaker; the supervisor rebinds to
	// providerB and retries against the still-failing gate, so the answer
	// degrades — then heal the gate and observe exact service again.
	ans := sup.Pfail(ctx)
	if ans.Kind == rt.Exact {
		t.Fatalf("answer = %+v, want degraded while the gate still fails", ans)
	}
	if len(sup.Rebinds()) == 0 {
		t.Fatal("eval-error breaker trip did not trigger a rebind")
	}
	if got := sup.Current().Provider; got != "providerB" {
		t.Fatalf("bound to %q, want providerB", got)
	}
	gate.fail(nil)
	if ans := sup.Pfail(ctx); !ans.IsExact() {
		t.Fatalf("post-heal answer = %+v, want exact", ans)
	}
}

func TestSupervisorCheckpointSurvivesRestart(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	sup := newTestSupervisor(t, clk, nil, nil)
	ctx := context.Background()
	// Feed failures until providerA's SPRT decides Violating (the trip also
	// rebinds to the still-healthy providerB).
	for i := 0; i < 10 && sup.Tracker().Verdict("providerA") != monitor.Violating; i++ {
		if _, _, err := sup.ReportOutcome(ctx, false); err != nil {
			t.Fatal(err)
		}
	}
	if sup.Tracker().Verdict("providerA") != monitor.Violating {
		t.Fatal("setup: providerA not Violating")
	}
	snap := sup.Checkpoint()

	// A fresh supervisor (e.g. after a process restart) restores the SPRT
	// evidence without losing it to the rebind.
	sup2 := newTestSupervisor(t, clk, nil, nil)
	if err := sup2.RestoreCheckpoint(snap); err != nil {
		t.Fatal(err)
	}
	if v := sup2.Tracker().Verdict("providerA"); v != monitor.Violating {
		t.Fatalf("restored verdict = %v, want Violating", v)
	}
}
