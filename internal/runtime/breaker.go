package runtime

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrQuarantined marks operations refused because a provider's circuit
// breaker is open.
var ErrQuarantined = errors.New("runtime: provider quarantined by circuit breaker")

// BreakerState is the circuit breaker's state.
type BreakerState int

// Breaker states.
const (
	// Closed means the provider is trusted; every call flows through.
	Closed BreakerState = iota + 1
	// Open means the provider is quarantined; calls are refused until the
	// quarantine window elapses.
	Open
	// HalfOpen means the quarantine window elapsed; a bounded probe budget
	// decides between closing (recovered) and reopening (still broken).
	HalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("BreakerState(%d)", int(s))
	}
}

// BreakerConfig parameterizes a Breaker.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive recorded failures that
	// trips a closed breaker (default 5).
	FailureThreshold int
	// OpenFor is how long an open breaker quarantines its provider before
	// allowing half-open probes (default 30s).
	OpenFor time.Duration
	// ProbeSuccesses is the number of consecutive half-open successes
	// required to close the breaker; any half-open failure reopens it and
	// restarts the quarantine window (default 3).
	ProbeSuccesses int
	// Clock supplies the quarantine timing (default RealClock).
	Clock Clock
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 30 * time.Second
	}
	if c.ProbeSuccesses <= 0 {
		c.ProbeSuccesses = 3
	}
	if c.Clock == nil {
		c.Clock = RealClock{}
	}
	return c
}

// Breaker is a per-provider circuit breaker: closed → open (threshold of
// consecutive failures, or an external Trip from the SPRT monitor) →
// half-open (quarantine elapsed, bounded probes) → closed or back to open.
// It is safe for concurrent use.
type Breaker struct {
	mu  sync.Mutex
	cfg BreakerConfig

	state        BreakerState
	consecFails  int
	openedAt     time.Time
	probeSuccs   int
	trips        int
	lastTripWhy  error
	lastTripTime time.Time
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), state: Closed}
}

// sync applies the lazily evaluated open → half-open transition. Callers
// hold b.mu.
func (b *Breaker) sync() {
	if b.state == Open && !b.cfg.Clock.Now().Before(b.openedAt.Add(b.cfg.OpenFor)) {
		b.state = HalfOpen
		b.probeSuccs = 0
	}
}

// State returns the current state (applying the quarantine-elapsed
// transition first).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sync()
	return b.state
}

// Allow reports whether a call may flow to the provider: true when closed
// or half-open (probing), false while the quarantine window is running.
func (b *Breaker) Allow() bool {
	return b.State() != Open
}

// RecordSuccess feeds one successful call. In half-open it counts toward
// the probe budget and closes the breaker once ProbeSuccesses consecutive
// probes succeeded; in closed it resets the consecutive-failure count.
func (b *Breaker) RecordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sync()
	switch b.state {
	case Closed:
		b.consecFails = 0
	case HalfOpen:
		b.probeSuccs++
		if b.probeSuccs >= b.cfg.ProbeSuccesses {
			b.state = Closed
			b.consecFails = 0
			b.probeSuccs = 0
		}
	}
}

// RecordFailure feeds one failed call. In closed it trips the breaker
// after FailureThreshold consecutive failures; in half-open any failure
// reopens it and restarts the quarantine window.
func (b *Breaker) RecordFailure(reason error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sync()
	switch b.state {
	case Closed:
		b.consecFails++
		if b.consecFails >= b.cfg.FailureThreshold {
			b.tripLocked(fmt.Errorf("runtime: %d consecutive failures, last: %w", b.consecFails, reason))
		}
	case HalfOpen:
		b.tripLocked(fmt.Errorf("runtime: half-open probe failed: %w", reason))
	}
}

// Trip forces the breaker open regardless of state — the SPRT monitor's
// Violating verdict uses this path.
func (b *Breaker) Trip(reason error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tripLocked(reason)
}

func (b *Breaker) tripLocked(reason error) {
	b.state = Open
	b.openedAt = b.cfg.Clock.Now()
	b.consecFails = 0
	b.probeSuccs = 0
	b.trips++
	b.lastTripWhy = reason
	b.lastTripTime = b.openedAt
}

// Reset force-closes the breaker and clears its probe and failure
// counters (the trip count and last-trip reason are kept as history).
// Re-prediction uses it: once the model is rebound to the observed
// failure rate, a quarantine justified by the old prediction no longer
// is.
func (b *Breaker) Reset() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.consecFails = 0
	b.probeSuccs = 0
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// LastTrip returns the reason and time of the most recent trip (nil and
// zero time if the breaker never opened).
func (b *Breaker) LastTrip() (error, time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastTripWhy, b.lastTripTime
}
