package runtime_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"socrel/internal/core"
	"socrel/internal/monitor"
	"socrel/internal/registry"
	rt "socrel/internal/runtime"
)

func newTestTracker(clk rt.Clock, onTrip func(string, error)) *rt.HealthTracker {
	return rt.NewHealthTracker(rt.HealthConfig{
		Breaker: rt.BreakerConfig{FailureThreshold: 2, OpenFor: 10 * time.Second, Clock: clk},
		OnTrip:  onTrip,
	})
}

func TestHealthSPRTTripQuarantines(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	var tripped []string
	var reason error
	h := newTestTracker(clk, func(p string, why error) { tripped = append(tripped, p); reason = why })
	if err := h.Watch("p", 0.99); err != nil {
		t.Fatal(err)
	}

	samples := 0
	for !h.Quarantined("p") {
		if samples++; samples > 50 {
			t.Fatal("SPRT did not trip within 50 all-failure samples")
		}
		h.Observe("p", false)
	}
	// Predicted 0.99 vs degraded 0.891 gives ~2.39 LLR per failure against
	// a ~4.6 threshold: an all-failure stream must trip within a handful.
	if samples > 5 {
		t.Fatalf("SPRT needed %d failures to trip, want <= 5", samples)
	}
	if h.Verdict("p") != monitor.Violating {
		t.Fatalf("verdict = %v, want Violating", h.Verdict("p"))
	}
	if h.BreakerState("p") != rt.Open {
		t.Fatalf("breaker = %v, want open", h.BreakerState("p"))
	}
	if len(tripped) != 1 || tripped[0] != "p" {
		t.Fatalf("OnTrip calls = %v, want exactly [p]", tripped)
	}
	if !errors.Is(reason, rt.ErrProviderDegraded) {
		t.Fatalf("trip reason = %v, want ErrProviderDegraded", reason)
	}

	// Further outcomes on a decided-Violating monitor must not re-trip.
	h.Observe("p", false)
	if b := h.Breaker("p"); b.Trips() != 1 {
		t.Fatalf("breaker tripped %d times, want 1", b.Trips())
	}
}

func TestHealthMeetingReArmsSPRT(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	h := rt.NewHealthTracker(rt.HealthConfig{
		Breaker:       rt.BreakerConfig{Clock: clk},
		DegradedRatio: 0.5, // H1 far from H0: Meeting decisions come quickly
	})
	if err := h.Watch("p", 0.5); err != nil {
		t.Fatal(err)
	}
	meetings := 0
	for i := 0; i < 60; i++ {
		if h.Observe("p", true) == monitor.Meeting {
			meetings++
		}
	}
	if meetings < 2 {
		t.Fatalf("got %d Meeting decisions in 60 successes, want >= 2 (re-arm broken?)", meetings)
	}
	if v := h.Verdict("p"); v != monitor.Undecided {
		t.Fatalf("verdict after re-arm = %v, want Undecided", v)
	}
	// The re-armed test still detects a later degradation.
	for i := 0; i < 100 && !h.Quarantined("p"); i++ {
		h.Observe("p", false)
	}
	if !h.Quarantined("p") {
		t.Fatal("re-armed SPRT never detected the degradation")
	}
}

func TestHealthEvalErrorsTripBreaker(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	trips := 0
	h := newTestTracker(clk, func(string, error) { trips++ })
	if err := h.Watch("p", 0.9); err != nil {
		t.Fatal(err)
	}

	// Cancellation is never held against the provider.
	for i := 0; i < 10; i++ {
		h.ObserveEvalError("p", fmt.Errorf("%w: caller gave up", core.ErrCanceled))
		h.ObserveEvalError("p", nil)
	}
	if h.Quarantined("p") {
		t.Fatal("cancellations opened the breaker")
	}

	evalErr := fmt.Errorf("%w: role worker", core.ErrUnresolvedBinding)
	h.ObserveEvalError("p", evalErr)
	h.ObserveEvalSuccess("p") // resets the consecutive count
	h.ObserveEvalError("p", evalErr)
	if h.Quarantined("p") {
		t.Fatal("non-consecutive errors opened the breaker")
	}
	h.ObserveEvalError("p", evalErr)
	if !h.Quarantined("p") {
		t.Fatal("2 consecutive eval errors did not open the breaker (threshold 2)")
	}
	if trips != 1 {
		t.Fatalf("OnTrip fired %d times, want 1", trips)
	}
	why, _ := h.Breaker("p").LastTrip()
	if !errors.Is(why, core.ErrUnresolvedBinding) {
		t.Fatalf("trip reason %v does not carry the eval error", why)
	}
}

func TestHealthUnwatchedProvidersAreInert(t *testing.T) {
	h := newTestTracker(rt.NewFakeClock(t0), nil)
	if v := h.Observe("ghost", false); v != monitor.Undecided {
		t.Fatalf("Observe on unwatched = %v, want Undecided", v)
	}
	h.ObserveEvalError("ghost", errors.New("x"))
	h.ObserveEvalSuccess("ghost")
	if h.Quarantined("ghost") {
		t.Fatal("unwatched provider quarantined")
	}
	if h.BreakerState("ghost") != rt.Closed {
		t.Fatalf("unwatched breaker state = %v, want closed", h.BreakerState("ghost"))
	}
	if h.Breaker("ghost") != nil {
		t.Fatal("Breaker returned a breaker for an unwatched provider")
	}
}

func TestHealthWatchReArmOnNewPrediction(t *testing.T) {
	h := newTestTracker(rt.NewFakeClock(t0), nil)
	if err := h.Watch("p", 0.9); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		h.Observe("p", false)
	}
	if h.Verdict("p") != monitor.Violating {
		t.Fatalf("verdict = %v, want Violating", h.Verdict("p"))
	}
	total := h.Checkpoint()["p"].Total

	// Same prediction: monitor untouched.
	if err := h.Watch("p", 0.9); err != nil {
		t.Fatal(err)
	}
	if h.Verdict("p") != monitor.Violating {
		t.Fatal("re-watch with the same prediction reset the verdict")
	}

	// New prediction: SPRT re-armed, statistics preserved.
	if err := h.Watch("p", 0.7); err != nil {
		t.Fatal(err)
	}
	if v := h.Verdict("p"); v != monitor.Undecided {
		t.Fatalf("verdict after re-watch = %v, want Undecided", v)
	}
	if got := h.Checkpoint()["p"].Total; got != total {
		t.Fatalf("re-watch lost statistics: total %d -> %d", total, got)
	}

	// Degenerate predictions are clamped into the SPRT's open interval.
	if err := h.Watch("perfect", 1); err != nil {
		t.Fatalf("Watch(1) = %v", err)
	}
	if err := h.Watch("hopeless", 0); err != nil {
		t.Fatalf("Watch(0) = %v", err)
	}
}

func TestHealthCheckpointRestore(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	h := newTestTracker(clk, nil)
	if err := h.Watch("p", 0.99); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		h.Observe("p", false)
	}
	if !h.Quarantined("p") {
		t.Fatal("setup: p not quarantined")
	}
	snap := h.Checkpoint()

	// The restored tracker keeps the SPRT evidence but starts with fresh
	// breakers: monitors carry the statistics worth persisting, breakers
	// protect the new process.
	h2 := newTestTracker(clk, nil)
	if err := h2.RestoreCheckpoint(snap); err != nil {
		t.Fatal(err)
	}
	if v := h2.Verdict("p"); v != monitor.Violating {
		t.Fatalf("restored verdict = %v, want Violating", v)
	}
	if h2.Checkpoint()["p"].Total != snap["p"].Total {
		t.Fatal("restore lost outcome counts")
	}
	if h2.Quarantined("p") {
		t.Fatal("restore resurrected breaker state")
	}

	// Restoring a corrupt snapshot fails loudly.
	bad := snap["p"]
	bad.Successes = bad.Total + 1
	if err := h2.RestoreCheckpoint(map[string]monitor.Snapshot{"p": bad}); err == nil {
		t.Fatal("RestoreCheckpoint accepted a corrupt snapshot")
	}
}

func TestSelectHealthyBindingExcludesQuarantined(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	asm, cands := buildWorkerAssembly(t, 0.01, 0.03)
	h := newTestTracker(clk, nil)
	for _, c := range cands {
		if err := h.Watch(c.Provider, 0.95); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()

	// All healthy: the more reliable providerA wins.
	sel, err := rt.SelectHealthyBinding(ctx, h, asm, "app", "worker", cands, core.Options{}, "app")
	if err != nil {
		t.Fatal(err)
	}
	if sel.Candidate.Provider != "providerA" {
		t.Fatalf("winner = %q, want providerA", sel.Candidate.Provider)
	}

	// Quarantining the best candidate reroutes to the runner-up.
	h.Breaker("providerA").Trip(errors.New("degraded"))
	sel, err = rt.SelectHealthyBinding(ctx, h, asm, "app", "worker", cands, core.Options{}, "app")
	if err != nil {
		t.Fatal(err)
	}
	if sel.Candidate.Provider != "providerB" {
		t.Fatalf("winner = %q, want providerB", sel.Candidate.Provider)
	}

	// All quarantined: fail fast with the typed sentinel.
	h.Breaker("providerB").Trip(errors.New("degraded"))
	_, err = rt.SelectHealthyBinding(ctx, h, asm, "app", "worker", cands, core.Options{}, "app")
	if !errors.Is(err, rt.ErrAllQuarantined) || !errors.Is(err, rt.ErrQuarantined) {
		t.Fatalf("err = %v, want ErrAllQuarantined wrapping ErrQuarantined", err)
	}

	// No candidates at all keeps the registry's sentinel.
	if _, err := rt.SelectHealthyBinding(ctx, h, asm, "app", "worker", nil, core.Options{}, "app"); !errors.Is(err, registry.ErrNoCandidates) {
		t.Fatalf("err = %v, want ErrNoCandidates", err)
	}
}
