package runtime

import (
	"errors"
	"fmt"
	"time"

	"socrel/internal/linalg"
)

// AnswerKind tags how an Answer was produced, so callers can always
// distinguish an exact prediction from a degraded one. The zero value is
// invalid: every Answer produced by this package carries an explicit tag.
type AnswerKind int

// Answer kinds.
const (
	// Exact means the value was freshly computed by the engine.
	Exact AnswerKind = iota + 1
	// Stale means the exact computation was unavailable and the value is
	// the last known good one; AsOf and Age carry the staleness.
	Stale
	// Bounded means no exact value was available but a conservative
	// interval was derived from the iterative solver's residual; Lo and Hi
	// bound the true value and Pfail holds the conservative (upper) end.
	Bounded
	// Unavailable means no answer could be produced at all: no exact
	// value, no last known good, no residual bound. Err carries the cause.
	Unavailable
)

func (k AnswerKind) String() string {
	switch k {
	case Exact:
		return "exact"
	case Stale:
		return "stale"
	case Bounded:
		return "bounded"
	case Unavailable:
		return "unavailable"
	default:
		return fmt.Sprintf("AnswerKind(%d)", int(k))
	}
}

// Answer is a possibly degraded Pfail prediction. Exact answers have
// Err == nil; every degraded answer carries the error that forced the
// degradation, so a degraded value can never silently masquerade as
// exact.
type Answer struct {
	// Kind tags the answer (exact / stale / bounded / unavailable).
	Kind AnswerKind
	// Pfail is the failure probability: the exact value (Exact), the last
	// known good value (Stale), or the conservative upper bound (Bounded).
	// Zero and meaningless for Unavailable.
	Pfail float64
	// Lo and Hi bound the true Pfail for Bounded answers.
	Lo, Hi float64
	// Provider is the bound provider the value was computed under.
	Provider string
	// AsOf is when the underlying exact value was computed (Exact and
	// Stale answers).
	AsOf time.Time
	// Age is the staleness at answer time (Stale answers).
	Age time.Duration
	// Err is the failure that forced the degradation (nil iff Exact).
	Err error
}

// Reliability returns 1 - Pfail (for Bounded answers: the conservative
// lower bound on reliability).
func (a Answer) Reliability() float64 { return 1 - a.Pfail }

// IsExact reports whether the answer is a fresh, exact computation.
func (a Answer) IsExact() bool { return a.Kind == Exact && a.Err == nil }

// LastGood is a previously computed exact evaluation, the raw material of
// Stale (and residual-centered Bounded) answers. The Supervisor keeps one
// internally; serving layers that cache many exact answers (e.g. the
// admission-controlled prediction front end) keep one per parameter point
// and hand it to Degrade when shedding load.
type LastGood struct {
	// Pfail is the exact value.
	Pfail float64
	// Provider is the binding the value was computed under (may be empty
	// when the caller does not track bindings).
	Provider string
	// At is when the value was computed.
	At time.Time
}

// Degrade builds the best degraded answer available for cause: a residual
// bound when the cause carries a *linalg.NoConvergenceError, otherwise the
// last known good value (nil when none exists) with staleness metadata,
// otherwise Unavailable. It never returns an Exact answer: cause must be
// the non-nil error that forced the degradation, and it is always carried
// in the answer so a degraded value cannot masquerade as exact.
//
// The residual bound is conservative by construction: the iterative
// solvers ascend to the absorption probability and stop with an infinity-
// norm iterate difference of Residual, so the last known good value
// widened by the residual (clamped to [0,1]) brackets where the exact
// solve was heading. Without any last known good value the bound
// degenerates to the vacuous [0,1].
func Degrade(cause error, last *LastGood, now time.Time) Answer {
	var nce *linalg.NoConvergenceError
	if errors.As(cause, &nce) {
		lo, hi := 0.0, 1.0
		center := 0.0
		if last != nil {
			center = last.Pfail
			lo = clamp01(center - nce.Residual)
			hi = clamp01(center + nce.Residual)
		}
		a := Answer{Kind: Bounded, Pfail: hi, Lo: lo, Hi: hi, Err: cause}
		if last != nil {
			a.Provider = last.Provider
			a.AsOf = last.At
			a.Age = now.Sub(last.At)
		}
		return a
	}
	if last != nil {
		return Answer{
			Kind:     Stale,
			Pfail:    last.Pfail,
			Provider: last.Provider,
			AsOf:     last.At,
			Age:      now.Sub(last.At),
			Err:      cause,
		}
	}
	return Answer{Kind: Unavailable, Err: cause}
}

// BoundedInterval builds a Bounded answer from an externally derived
// interval — e.g. the serving layer's sliding min/max window over recent
// exact answers, used when saturation forces an answer without an
// evaluation and no per-point snapshot exists. Pfail carries the
// conservative (upper) end; cause is the error that forced the
// degradation. The interval is clamped to [0,1] and inverted bounds are
// widened to the vacuous [0,1] rather than trusted.
func BoundedInterval(lo, hi float64, cause error) Answer {
	lo, hi = clamp01(lo), clamp01(hi)
	if lo > hi {
		lo, hi = 0, 1
	}
	return Answer{Kind: Bounded, Pfail: hi, Lo: lo, Hi: hi, Err: cause}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
