package runtime

import (
	"errors"
	"fmt"
	"time"

	"socrel/internal/linalg"
)

// AnswerKind tags how an Answer was produced, so callers can always
// distinguish an exact prediction from a degraded one. The zero value is
// invalid: every Answer produced by this package carries an explicit tag.
type AnswerKind int

// Answer kinds.
const (
	// Exact means the value was freshly computed by the engine.
	Exact AnswerKind = iota + 1
	// Stale means the exact computation was unavailable and the value is
	// the last known good one; AsOf and Age carry the staleness.
	Stale
	// Bounded means no exact value was available but a conservative
	// interval was derived from the iterative solver's residual; Lo and Hi
	// bound the true value and Pfail holds the conservative (upper) end.
	Bounded
	// Unavailable means no answer could be produced at all: no exact
	// value, no last known good, no residual bound. Err carries the cause.
	Unavailable
)

func (k AnswerKind) String() string {
	switch k {
	case Exact:
		return "exact"
	case Stale:
		return "stale"
	case Bounded:
		return "bounded"
	case Unavailable:
		return "unavailable"
	default:
		return fmt.Sprintf("AnswerKind(%d)", int(k))
	}
}

// Answer is a possibly degraded Pfail prediction. Exact answers have
// Err == nil; every degraded answer carries the error that forced the
// degradation, so a degraded value can never silently masquerade as
// exact.
type Answer struct {
	// Kind tags the answer (exact / stale / bounded / unavailable).
	Kind AnswerKind
	// Pfail is the failure probability: the exact value (Exact), the last
	// known good value (Stale), or the conservative upper bound (Bounded).
	// Zero and meaningless for Unavailable.
	Pfail float64
	// Lo and Hi bound the true Pfail for Bounded answers.
	Lo, Hi float64
	// Provider is the bound provider the value was computed under.
	Provider string
	// AsOf is when the underlying exact value was computed (Exact and
	// Stale answers).
	AsOf time.Time
	// Age is the staleness at answer time (Stale answers).
	Age time.Duration
	// Err is the failure that forced the degradation (nil iff Exact).
	Err error
}

// Reliability returns 1 - Pfail (for Bounded answers: the conservative
// lower bound on reliability).
func (a Answer) Reliability() float64 { return 1 - a.Pfail }

// IsExact reports whether the answer is a fresh, exact computation.
func (a Answer) IsExact() bool { return a.Kind == Exact && a.Err == nil }

// lastKnown is the supervisor's last exact evaluation.
type lastKnown struct {
	pfail    float64
	provider string
	at       time.Time
}

// degrade builds the best degraded answer available for cause: a residual
// bound when the cause carries a *linalg.NoConvergenceError, otherwise the
// last known good value with staleness metadata, otherwise Unavailable.
//
// The residual bound is conservative by construction: the iterative
// solvers ascend to the absorption probability and stop with an infinity-
// norm iterate difference of Residual, so the last known good value
// widened by the residual (clamped to [0,1]) brackets where the exact
// solve was heading. Without any last known good value the bound
// degenerates to the vacuous [0,1].
func degrade(cause error, last *lastKnown, now time.Time) Answer {
	var nce *linalg.NoConvergenceError
	if errors.As(cause, &nce) {
		lo, hi := 0.0, 1.0
		center := 0.0
		if last != nil {
			center = last.pfail
			lo = clamp01(center - nce.Residual)
			hi = clamp01(center + nce.Residual)
		}
		a := Answer{Kind: Bounded, Pfail: hi, Lo: lo, Hi: hi, Err: cause}
		if last != nil {
			a.Provider = last.provider
			a.AsOf = last.at
			a.Age = now.Sub(last.at)
		}
		return a
	}
	if last != nil {
		return Answer{
			Kind:     Stale,
			Pfail:    last.pfail,
			Provider: last.provider,
			AsOf:     last.at,
			Age:      now.Sub(last.at),
			Err:      cause,
		}
	}
	return Answer{Kind: Unavailable, Err: cause}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
