package runtime

import (
	"context"
	"fmt"
	"time"

	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/model"
	"socrel/internal/monitor"
	"socrel/internal/registry"
)

// SupervisorConfig parameterizes a Supervisor.
type SupervisorConfig struct {
	// Health configures the per-provider breakers and SPRT monitors.
	Health HealthConfig
	// Clock stamps last-known-good values and staleness (default
	// RealClock).
	Clock Clock
	// EvalTimeout bounds each exact evaluation; an expired deadline
	// degrades the answer instead of blocking the caller (0 = none).
	EvalTimeout time.Duration
	// WrapResolver, when set, decorates the assembly before the evaluator
	// sees it — typically a RetryResolver (optionally over a
	// fault-injecting resolver in chaos tests). Selection scoring always
	// runs against the undecorated assembly.
	WrapResolver func(model.Resolver) model.Resolver
	// OnRebind, when set, is called after every successful automatic
	// rebind.
	OnRebind func(RebindEvent)
	// OnOutcome, when set, receives a typed OutcomeEvent for every
	// invocation reported via ReportInvocation/ReportOutcome. It is
	// called outside the supervisor's lock (calling back into the
	// supervisor is safe) — this is the outcome stream estimation
	// layers consume.
	OnOutcome func(OutcomeEvent)
	// OnRepredict, when set, is called after every completed
	// re-prediction (see Repredict), outside the supervisor's lock.
	OnRepredict func(RepredictEvent)
}

// RebindEvent records one automatic rebind.
type RebindEvent struct {
	// From and To are the previous and new winning candidates.
	From, To registry.Candidate
	// Reason is why the previous binding was abandoned.
	Reason error
	// Predicted is the new binding's predicted reliability.
	Predicted float64
	// At is when the rebind happened.
	At time.Time
}

// Supervisor makes one open role of an assembly self-healing: it performs
// the initial reliability-driven binding among the candidates, streams
// observed invocation outcomes into the health layer, rebinds
// automatically when the current binding's breaker opens (SPRT violation
// or repeated evaluation errors), and serves tagged degraded answers when
// an exact prediction is unavailable. Methods are safe for concurrent
// use; evaluations are serialized internally.
type Supervisor struct {
	cfg     SupervisorConfig
	clock   Clock
	tracker *HealthTracker

	asm        *assembly.Assembly
	caller     string
	role       string
	candidates []registry.Candidate
	opts       core.Options
	target     string
	params     []float64

	mu         chan struct{} // semaphore: also serializes the interpreted evaluator
	current    registry.Candidate
	predicted  float64
	ev         *core.Evaluator
	last       *LastGood
	rebinds    []RebindEvent
	repredicts []RepredictEvent
}

// NewSupervisor binds the (caller, role) requirement to the most reliable
// healthy candidate (exactly like registry.SelectBinding), starts SPRT
// monitoring of the winner against its predicted reliability, and returns
// the supervisor. The assembly is taken over by the supervisor: it
// rebinds (caller, role) in place on failover.
func NewSupervisor(ctx context.Context, cfg SupervisorConfig, asm *assembly.Assembly, caller, role string, candidates []registry.Candidate, opts core.Options, target string, params ...float64) (*Supervisor, error) {
	if cfg.Clock == nil {
		cfg.Clock = RealClock{}
	}
	if cfg.Health.Breaker.Clock == nil {
		cfg.Health.Breaker.Clock = cfg.Clock
	}
	s := &Supervisor{
		cfg:        cfg,
		clock:      cfg.Clock,
		tracker:    NewHealthTracker(cfg.Health),
		asm:        asm,
		caller:     caller,
		role:       role,
		candidates: append([]registry.Candidate(nil), candidates...),
		opts:       opts,
		target:     target,
		params:     append([]float64(nil), params...),
		mu:         make(chan struct{}, 1),
	}
	s.mu <- struct{}{}
	s.lock()
	defer s.unlock()
	if err := s.rebindLocked(ctx, nil); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Supervisor) lock()   { <-s.mu }
func (s *Supervisor) unlock() { s.mu <- struct{}{} }

// rebindLocked selects the best healthy candidate, rebinds the assembly,
// and rebuilds the evaluator. reason == nil means the initial binding.
func (s *Supervisor) rebindLocked(ctx context.Context, reason error) error {
	sel, err := SelectHealthyBinding(ctx, s.tracker, s.asm, s.caller, s.role, s.candidates, s.opts, s.target, s.params...)
	if err != nil {
		return err
	}
	old := s.current
	s.asm.AddBinding(s.caller, s.role, sel.Candidate.Provider, sel.Candidate.Connector)
	s.ev = core.New(s.wrapped(), s.opts)
	s.current = sel.Candidate
	s.predicted = sel.Reliability
	if err := s.tracker.Watch(sel.Candidate.Provider, sel.Reliability); err != nil {
		return err
	}
	if reason != nil {
		ev := RebindEvent{From: old, To: sel.Candidate, Reason: reason, Predicted: sel.Reliability, At: s.clock.Now()}
		s.rebinds = append(s.rebinds, ev)
		if s.cfg.OnRebind != nil {
			s.cfg.OnRebind(ev)
		}
	}
	return nil
}

func (s *Supervisor) wrapped() model.Resolver {
	if s.cfg.WrapResolver != nil {
		return s.cfg.WrapResolver(s.asm)
	}
	return s.asm
}

// Current returns the currently bound candidate.
func (s *Supervisor) Current() registry.Candidate {
	s.lock()
	defer s.unlock()
	return s.current
}

// Predicted returns the predicted reliability of the current binding.
func (s *Supervisor) Predicted() float64 {
	s.lock()
	defer s.unlock()
	return s.predicted
}

// Rebinds returns every automatic rebind so far, oldest first.
func (s *Supervisor) Rebinds() []RebindEvent {
	s.lock()
	defer s.unlock()
	return append([]RebindEvent(nil), s.rebinds...)
}

// Tracker exposes the health layer for inspection and checkpointing.
func (s *Supervisor) Tracker() *HealthTracker { return s.tracker }

// Checkpoint snapshots all SPRT monitors (see HealthTracker.Checkpoint);
// feed the result to RestoreCheckpoint after a restart so accumulated
// evidence survives.
func (s *Supervisor) Checkpoint() map[string]monitor.Snapshot {
	return s.tracker.Checkpoint()
}

// RestoreCheckpoint restores SPRT monitors from a Checkpoint.
func (s *Supervisor) RestoreCheckpoint(snap map[string]monitor.Snapshot) error {
	return s.tracker.RestoreCheckpoint(snap)
}

// ReportOutcome streams one observed invocation outcome of the currently
// bound provider. If the accumulated evidence trips the provider's
// breaker (SPRT Violating), the supervisor immediately rebinds to the
// best healthy alternative. It returns the SPRT verdict after the
// outcome and whether a rebind happened (rebindErr reports a rebind that
// was needed but found no healthy candidate — the binding then stays and
// answers degrade). It is shorthand for ReportInvocation with a nominal
// invocation; richer reporters (latency, exposure, context, load) use
// ReportInvocation directly.
func (s *Supervisor) ReportOutcome(ctx context.Context, success bool) (v monitor.Verdict, rebound bool, rebindErr error) {
	return s.ReportInvocation(ctx, Invocation{Success: success})
}

// Pfail returns the current prediction for the supervised target
// invocation, degrading instead of failing: an open breaker on the
// current binding (with no healthy alternative), a solver that did not
// converge, or an expired deadline each produce a tagged non-exact
// answer. Exact answers refresh the last-known-good value.
func (s *Supervisor) Pfail(ctx context.Context) Answer {
	if ctx == nil {
		ctx = context.Background()
	}
	s.lock()
	defer s.unlock()
	prov := s.current.Provider
	if s.tracker.Quarantined(prov) {
		// The binding is quarantined and no rebind target was available
		// when it tripped; try once more now (a sibling breaker may have
		// closed since), then degrade.
		why, _ := s.tracker.Breaker(prov).LastTrip()
		if err := s.rebindLocked(ctx, why); err != nil {
			return s.degradeLocked(fmt.Errorf("%w: %q: %w", ErrQuarantined, prov, why))
		}
		prov = s.current.Provider
	}
	evalCtx := ctx
	if s.cfg.EvalTimeout > 0 {
		var cancel context.CancelFunc
		evalCtx, cancel = context.WithTimeout(ctx, s.cfg.EvalTimeout)
		defer cancel()
	}
	p, err := s.ev.PfailCtx(evalCtx, s.target, s.params...)
	if err == nil {
		s.last = &LastGood{Pfail: p, Provider: prov, At: s.clock.Now()}
		s.tracker.ObserveEvalSuccess(prov)
		return Answer{Kind: Exact, Pfail: p, Provider: prov, AsOf: s.last.At}
	}
	s.tracker.ObserveEvalError(prov, err)
	if s.tracker.Quarantined(prov) {
		// Repeated typed evaluation errors opened the breaker: rebind and
		// retry once against the new binding before degrading.
		why, _ := s.tracker.Breaker(prov).LastTrip()
		if rerr := s.rebindLocked(ctx, why); rerr == nil {
			if p, rerr := s.ev.PfailCtx(evalCtx, s.target, s.params...); rerr == nil {
				s.last = &LastGood{Pfail: p, Provider: s.current.Provider, At: s.clock.Now()}
				return Answer{Kind: Exact, Pfail: p, Provider: s.current.Provider, AsOf: s.last.At}
			}
		}
	}
	return s.degradeLocked(err)
}

func (s *Supervisor) degradeLocked(cause error) Answer {
	return Degrade(cause, s.last, s.clock.Now())
}
