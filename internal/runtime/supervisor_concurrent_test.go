package runtime_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"socrel/internal/core"
	rt "socrel/internal/runtime"
)

// TestSupervisorConcurrentPfailDuringRebinds hammers one supervisor from
// concurrent predictors and outcome reporters. The reporters stream
// mostly-failure outcomes with a short breaker quarantine, so bindings
// trip, rebind, recover, and trip again while predictions are in flight.
// Run under -race this is the concurrency contract of the supervisor:
// every answer is tagged, exact ⇔ nil-error holds for every single
// answer, and exact answers always quote a real candidate.
func TestSupervisorConcurrentPfailDuringRebinds(t *testing.T) {
	asm, cands := buildWorkerAssembly(t, 0.01, 0.03)
	cfg := rt.SupervisorConfig{
		Clock: rt.RealClock{},
		Health: rt.HealthConfig{
			Breaker: rt.BreakerConfig{
				FailureThreshold: 3,
				OpenFor:          200 * time.Microsecond,
				ProbeSuccesses:   1,
			},
		},
	}
	sup, err := rt.NewSupervisor(context.Background(), cfg, asm, "app", "worker", cands, core.Options{}, "app")
	if err != nil {
		t.Fatal(err)
	}

	const (
		predictors = 4
		reporters  = 4
		iters      = 200
	)
	ctx := context.Background()
	providers := map[string]bool{"providerA": true, "providerB": true}
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		answers []rt.Answer
	)
	for g := 0; g < predictors; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ans := sup.Pfail(ctx)
				mu.Lock()
				answers = append(answers, ans)
				mu.Unlock()
			}
		}()
	}
	for g := 0; g < reporters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Mostly failures, so breakers trip and rebinds fire; the
				// occasional success closes half-open breakers again and
				// keeps candidates cycling in and out of quarantine.
				sup.ReportOutcome(ctx, (g+i)%5 == 0)
			}
		}(g)
	}
	wg.Wait()

	if len(answers) != predictors*iters {
		t.Fatalf("collected %d answers, want %d", len(answers), predictors*iters)
	}
	exact := 0
	for _, ans := range answers {
		if ans.Kind == rt.AnswerKind(0) {
			t.Fatalf("untagged answer: %+v", ans)
		}
		if (ans.Kind == rt.Exact) != (ans.Err == nil) {
			t.Fatalf("exact ⇔ nil-error invariant violated: %+v", ans)
		}
		if ans.Kind == rt.Exact {
			exact++
			if !providers[ans.Provider] {
				t.Fatalf("exact answer from unknown provider %q", ans.Provider)
			}
		}
	}
	if exact == 0 {
		t.Fatal("no exact answers: the supervisor never actually predicted")
	}
	if got := sup.Current().Provider; !providers[got] {
		t.Fatalf("final binding %q is not a candidate", got)
	}
	t.Logf("concurrent soak: %d answers, %d exact, %d rebinds, final binding %s",
		len(answers), exact, len(sup.Rebinds()), sup.Current().Provider)
}
