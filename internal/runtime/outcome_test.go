package runtime_test

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/expr"
	"socrel/internal/model"
	"socrel/internal/monitor"
	"socrel/internal/registry"
	rt "socrel/internal/runtime"
)

// buildCPUAssembly builds an estimation fixture: an "app" composite with
// one open role "worker" and two CPU candidates whose failure laws are
// 1 - exp(-lambda * N / s). With speed 1 and N = 1, each invocation
// carries exposure exactly 1, so Pfail(app) == 1 - exp(-lambda).
func buildCPUAssembly(t *testing.T, lam1, lam2 float64) (*assembly.Assembly, []registry.Candidate) {
	t.Helper()
	asm := assembly.New("estfix")
	asm.MustAddService(model.NewCPU("cpu1", 1, lam1))
	asm.MustAddService(model.NewCPU("cpu2", 1, lam2))
	app := model.NewComposite("app", nil, nil)
	st, err := app.Flow().AddState("work", model.AND, model.NoSharing)
	if err != nil {
		t.Fatal(err)
	}
	st.AddRequest(model.Request{Role: "worker", Params: []expr.Expr{expr.Num(1)}})
	if err := app.Flow().AddTransitionP(model.StartState, "work", 1); err != nil {
		t.Fatal(err)
	}
	if err := app.Flow().AddTransitionP("work", model.EndState, 1); err != nil {
		t.Fatal(err)
	}
	asm.MustAddService(app)
	return asm, []registry.Candidate{{Provider: "cpu1"}, {Provider: "cpu2"}}
}

func TestReportInvocationPublishesTypedEvent(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	var events []rt.OutcomeEvent
	asm, cands := buildWorkerAssembly(t, 0.01, 0.03)
	cfg := rt.SupervisorConfig{
		Clock:     clk,
		OnOutcome: func(ev rt.OutcomeEvent) { events = append(events, ev) },
	}
	sup, err := rt.NewSupervisor(context.Background(), cfg, asm, "app", "worker", cands, core.Options{}, "app")
	if err != nil {
		t.Fatal(err)
	}

	if _, _, err := sup.ReportInvocation(context.Background(), rt.Invocation{
		Success: true, Latency: 20 * time.Millisecond, Exposure: 2.5, Load: 3,
	}); err != nil {
		t.Fatalf("ReportInvocation: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	ev := events[0]
	if ev.Provider != "providerA" || ev.Context != "app" || ev.Class != rt.OutcomeSuccess {
		t.Fatalf("bad event: %+v", ev)
	}
	if ev.Latency != 20*time.Millisecond || ev.Exposure != 2.5 || ev.Load != 3 || !ev.At.Equal(t0) {
		t.Fatalf("bad event details: %+v", ev)
	}

	// Defaults: context falls back to the target, exposure to 1, the
	// timestamp to the clock; failures classify as OutcomeFailure.
	clk.Advance(time.Second)
	if _, _, err := sup.ReportInvocation(context.Background(), rt.Invocation{Success: false, Context: "custom"}); err != nil {
		t.Fatalf("ReportInvocation: %v", err)
	}
	ev = events[1]
	if ev.Class != rt.OutcomeFailure || ev.Context != "custom" || ev.Exposure != 1 || !ev.At.Equal(t0.Add(time.Second)) {
		t.Fatalf("bad defaulted event: %+v", ev)
	}
	if ev.Class.String() != "failure" || rt.OutcomeSuccess.String() != "success" {
		t.Fatal("OutcomeClass.String broken")
	}
}

// TestReportOutcomeFeedsHookAndHealth verifies the migration: the legacy
// ReportOutcome path now flows through ReportInvocation, so it both feeds
// the health tracker (SPRT trip + rebind as before) and publishes typed
// events.
func TestReportOutcomeFeedsHookAndHealth(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	var events []rt.OutcomeEvent
	asm, cands := buildWorkerAssembly(t, 0.01, 0.03)
	cfg := rt.SupervisorConfig{
		Clock:     clk,
		OnOutcome: func(ev rt.OutcomeEvent) { events = append(events, ev) },
	}
	sup, err := rt.NewSupervisor(context.Background(), cfg, asm, "app", "worker", cands, core.Options{}, "app")
	if err != nil {
		t.Fatal(err)
	}
	reports, rebound := 0, false
	for i := 0; i < 2000 && !rebound; i++ {
		_, rb, err := sup.ReportOutcome(context.Background(), false)
		if err != nil {
			t.Fatalf("ReportOutcome: %v", err)
		}
		reports++
		rebound = rb
	}
	if !rebound {
		t.Fatal("all-failure stream never tripped the SPRT and rebound")
	}
	if sup.Current().Provider != "providerB" {
		t.Fatalf("bound to %q after trip", sup.Current().Provider)
	}
	if len(events) != reports {
		t.Fatalf("%d events for %d reports", len(events), reports)
	}
	if last := events[len(events)-1]; last.Provider != "providerA" {
		t.Fatalf("event attributed to %q, want the provider bound at observation time", last.Provider)
	}
}

func TestRepredictRebindsParameterAndPrediction(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	var published []rt.RepredictEvent
	asm, cands := buildCPUAssembly(t, 0.05, 0.5)
	cfg := rt.SupervisorConfig{
		Clock:       clk,
		OnRepredict: func(ev rt.RepredictEvent) { published = append(published, ev) },
	}
	sup, err := rt.NewSupervisor(context.Background(), cfg, asm, "app", "worker", cands, core.Options{}, "app")
	if err != nil {
		t.Fatal(err)
	}
	if sup.Current().Provider != "cpu1" {
		t.Fatalf("initial binding %q", sup.Current().Provider)
	}
	wantOld := -math.Expm1(-0.05)

	oldPfail, newPfail, err := sup.Repredict(context.Background(), "cpu1", "lambda", 0.2)
	if err != nil {
		t.Fatalf("Repredict: %v", err)
	}
	if math.Abs(oldPfail-wantOld) > 1e-12 {
		t.Fatalf("old Pfail %g, want %g", oldPfail, wantOld)
	}
	if want := -math.Expm1(-0.2); math.Abs(newPfail-want) > 1e-12 {
		t.Fatalf("new Pfail %g, want %g", newPfail, want)
	}
	// The live model now carries the learned rate...
	svc, err := asm.ServiceByName("cpu1")
	if err != nil {
		t.Fatal(err)
	}
	if got := svc.Attributes()["lambda"]; got != 0.2 {
		t.Fatalf("lambda after repredict = %g", got)
	}
	// ...the prediction and served answers track it...
	if want := 1 - newPfail; math.Abs(sup.Predicted()-want) > 1e-12 {
		t.Fatalf("predicted %g, want %g", sup.Predicted(), want)
	}
	ans := sup.Pfail(context.Background())
	if !ans.IsExact() || math.Abs(ans.Pfail-newPfail) > 1e-12 {
		t.Fatalf("served answer %+v", ans)
	}
	// ...and the event was recorded and published.
	evs := sup.Repredictions()
	if len(evs) != 1 || len(published) != 1 || evs[0] != published[0] {
		t.Fatalf("events: recorded %+v published %+v", evs, published)
	}
	ev := evs[0]
	if ev.Provider != "cpu1" || ev.Attr != "lambda" || ev.OldValue != 0.05 || ev.NewValue != 0.2 {
		t.Fatalf("bad event: %+v", ev)
	}
	if ev.OldPfail != oldPfail || ev.NewPfail != newPfail || !ev.At.Equal(t0) {
		t.Fatalf("bad event predictions: %+v", ev)
	}
}

func TestRepredictValidation(t *testing.T) {
	asm, cands := buildCPUAssembly(t, 0.05, 0.5)
	sup, err := rt.NewSupervisor(context.Background(), rt.SupervisorConfig{Clock: rt.NewFakeClock(t0)}, asm, "app", "worker", cands, core.Options{}, "app")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := sup.Repredict(context.Background(), "nosuch", "lambda", 0.1); !errors.Is(err, model.ErrUnknownService) {
		t.Fatalf("unknown provider: %v", err)
	}
	if _, _, err := sup.Repredict(context.Background(), "app", "lambda", 0.1); !errors.Is(err, model.ErrInvalidService) {
		t.Fatalf("composite provider: %v", err)
	}
	if _, _, err := sup.Repredict(context.Background(), "cpu1", "nosuchattr", 0.1); err == nil {
		t.Fatal("unknown attribute accepted")
	}
	if _, _, err := sup.Repredict(context.Background(), "cpu1", "lambda", math.NaN()); err == nil {
		t.Fatal("NaN value accepted")
	}
	// Nothing above may have disturbed the model.
	svc, _ := asm.ServiceByName("cpu1")
	if got := svc.Attributes()["lambda"]; got != 0.05 {
		t.Fatalf("lambda disturbed by failed repredicts: %g", got)
	}
	if len(sup.Repredictions()) != 0 {
		t.Fatal("failed repredicts were recorded")
	}
}

// TestRepredictRecoversQuarantine drives the single-candidate drift
// story: drift trips the breaker, answers degrade, and a re-prediction —
// not more failures — restores exact service under the corrected model.
func TestRepredictRecoversQuarantine(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	asm, _ := buildCPUAssembly(t, 0.05, 0.5)
	cands := []registry.Candidate{{Provider: "cpu1"}} // nowhere to fail over
	cfg := rt.SupervisorConfig{
		Clock:  clk,
		Health: rt.HealthConfig{Breaker: rt.BreakerConfig{OpenFor: time.Hour}},
	}
	sup, err := rt.NewSupervisor(context.Background(), cfg, asm, "app", "worker", cands, core.Options{}, "app")
	if err != nil {
		t.Fatal(err)
	}
	if !sup.Tracker().TripDrift("cpu1", errors.New("estimate says 4x the bound")) {
		t.Fatal("TripDrift on watched provider returned false")
	}
	if ans := sup.Pfail(context.Background()); ans.IsExact() {
		t.Fatalf("quarantined single binding served exact answer: %+v", ans)
	}
	if _, _, err := sup.Repredict(context.Background(), "cpu1", "lambda", 0.2); err != nil {
		t.Fatalf("Repredict: %v", err)
	}
	ans := sup.Pfail(context.Background())
	if !ans.IsExact() {
		t.Fatalf("answer after repredict: %+v", ans)
	}
	if want := -math.Expm1(-0.2); math.Abs(ans.Pfail-want) > 1e-12 {
		t.Fatalf("Pfail %g, want %g", ans.Pfail, want)
	}
}

func TestTripDriftAndRecover(t *testing.T) {
	var trips []error
	tr := rt.NewHealthTracker(rt.HealthConfig{
		Breaker: rt.BreakerConfig{OpenFor: time.Hour, Clock: rt.NewFakeClock(t0)},
		OnTrip:  func(_ string, reason error) { trips = append(trips, reason) },
	})
	if tr.TripDrift("ghost", nil) {
		t.Fatal("TripDrift tripped an unwatched provider")
	}
	if err := tr.Watch("p", 0.95); err != nil {
		t.Fatal(err)
	}
	if !tr.TripDrift("p", errors.New("rate 4x bound")) {
		t.Fatal("TripDrift failed on watched provider")
	}
	if !tr.Quarantined("p") {
		t.Fatal("provider not quarantined after TripDrift")
	}
	if len(trips) != 1 || !errors.Is(trips[0], rt.ErrDrift) {
		t.Fatalf("OnTrip: %v", trips)
	}
	why, _ := tr.Breaker("p").LastTrip()
	if !errors.Is(why, rt.ErrDrift) {
		t.Fatalf("trip reason: %v", why)
	}

	if tr.Recover("ghost") {
		t.Fatal("Recover on unwatched provider returned true")
	}
	if !tr.Recover("p") {
		t.Fatal("Recover failed on watched provider")
	}
	if tr.Quarantined("p") {
		t.Fatal("provider still quarantined after Recover")
	}
	if v := tr.Verdict("p"); v != monitor.Undecided {
		t.Fatalf("verdict after Recover: %v", v)
	}
	if got := tr.Breaker("p").Trips(); got != 1 {
		t.Fatalf("Recover erased trip history: %d", got)
	}
}

func TestBreakerReset(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	b := rt.NewBreaker(rt.BreakerConfig{OpenFor: time.Hour, Clock: clk})
	b.Trip(errors.New("drift"))
	if b.State() != rt.Open || b.Allow() {
		t.Fatal("breaker not open after Trip")
	}
	b.Reset()
	if b.State() != rt.Closed || !b.Allow() {
		t.Fatal("breaker not closed after Reset")
	}
	if b.Trips() != 1 {
		t.Fatalf("Reset erased trip count: %d", b.Trips())
	}
	if why, _ := b.LastTrip(); why == nil {
		t.Fatal("Reset erased last-trip reason")
	}
}

func TestWithAttrAndReplaceService(t *testing.T) {
	cpu := model.NewCPU("cpu1", 2, 0.05)
	up, err := cpu.WithAttr("lambda", 0.4)
	if err != nil {
		t.Fatalf("WithAttr: %v", err)
	}
	if got := up.Attributes()["lambda"]; got != 0.4 {
		t.Fatalf("updated lambda %g", got)
	}
	if got := cpu.Attributes()["lambda"]; got != 0.05 {
		t.Fatalf("original mutated: lambda %g", got)
	}
	if up.Attributes()["s"] != 2 || up.Name() != "cpu1" {
		t.Fatalf("copy lost fields: %+v", up.Attributes())
	}
	if err := up.Validate(); err != nil {
		t.Fatalf("updated service invalid: %v", err)
	}
	if _, err := cpu.WithAttr("nope", 1); err == nil {
		t.Fatal("WithAttr accepted unknown attribute")
	}
	if _, err := cpu.WithAttr("lambda", math.Inf(1)); err == nil {
		t.Fatal("WithAttr accepted infinite value")
	}

	asm := assembly.New("a")
	asm.MustAddService(cpu)
	if err := asm.ReplaceService(up); err != nil {
		t.Fatalf("ReplaceService: %v", err)
	}
	got, err := asm.ServiceByName("cpu1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Attributes()["lambda"] != 0.4 {
		t.Fatal("ReplaceService did not swap the definition")
	}
	if err := asm.ReplaceService(model.NewConstant("stranger", 0.1)); !errors.Is(err, model.ErrUnknownService) {
		t.Fatalf("ReplaceService on unknown name: %v", err)
	}
	if names := asm.ServiceNames(); len(names) != 1 || names[0] != "cpu1" {
		t.Fatalf("registration order disturbed: %v", names)
	}
}
