package runtime_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/faultinject"
	"socrel/internal/model"
	rt "socrel/internal/runtime"
)

// scriptedResolver fails lookups/binds with the scripted errors in call
// order; past the end of a script every call succeeds.
type scriptedResolver struct {
	mu      sync.Mutex
	svc     model.Service
	lookup  []error
	bind    []error
	lookups int
	binds   int
}

func (r *scriptedResolver) ServiceByName(name string) (model.Service, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.lookups
	r.lookups++
	if i < len(r.lookup) && r.lookup[i] != nil {
		return nil, r.lookup[i]
	}
	return r.svc, nil
}

func (r *scriptedResolver) Bind(caller, role string) (string, string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	i := r.binds
	r.binds++
	if i < len(r.bind) && r.bind[i] != nil {
		return "", "", r.bind[i]
	}
	return "prov", "", nil
}

func (r *scriptedResolver) counts() (lookups, binds int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lookups, r.binds
}

func transientErr() error {
	return fmt.Errorf("%w: blip", model.ErrTransient)
}

func TestRetryBackoffIsDeterministic(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	clk.AutoAdvance()
	base := &scriptedResolver{
		svc:    model.NewConstant("svc", 0.1),
		lookup: []error{transientErr(), transientErr(), transientErr()},
	}
	policy := rt.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    time.Second,
		Multiplier:  2,
		Clock:       clk,
		Rand:        rand.New(rand.NewSource(5)).Float64,
	}
	r := rt.NewRetryResolver(base, policy)

	svc, err := r.ServiceByName("svc")
	if err != nil {
		t.Fatal(err)
	}
	if svc.Name() != "svc" {
		t.Fatalf("resolved %q, want svc", svc.Name())
	}
	if lookups, _ := base.counts(); lookups != 4 {
		t.Fatalf("base lookups = %d, want 4", lookups)
	}
	if r.Retries() != 3 {
		t.Fatalf("Retries = %d, want 3", r.Retries())
	}

	// Full jitter over caps 10ms, 20ms, 40ms with the same seeded source.
	ref := rand.New(rand.NewSource(5))
	var want []time.Duration
	for _, capDelay := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond} {
		want = append(want, time.Duration(ref.Float64()*float64(capDelay)))
	}
	got := clk.Slept()
	if len(got) != len(want) {
		t.Fatalf("slept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("backoff %d = %v, want %v (full sequence %v)", i, got[i], want[i], got)
		}
	}
}

func TestRetryBackoffRespectsMaxDelay(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	clk.AutoAdvance()
	base := &scriptedResolver{
		svc:    model.NewConstant("svc", 0.1),
		lookup: []error{transientErr(), transientErr(), transientErr(), transientErr()},
	}
	var onRetry []time.Duration
	policy := rt.RetryPolicy{
		MaxAttempts: 5,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    25 * time.Millisecond,
		Multiplier:  2,
		Clock:       clk,
		Rand:        func() float64 { return 1 }, // jitter pinned to the cap
		OnRetry: func(op string, attempt int, delay time.Duration, err error) {
			if op != "lookup svc" {
				t.Errorf("OnRetry op = %q, want %q", op, "lookup svc")
			}
			onRetry = append(onRetry, delay)
		},
	}
	r := rt.NewRetryResolver(base, policy)
	if _, err := r.ServiceByName("svc"); err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond, 25 * time.Millisecond}
	got := clk.Slept()
	if len(got) != len(want) {
		t.Fatalf("slept %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] || onRetry[i] != want[i] {
			t.Fatalf("backoff %d: slept %v, OnRetry %v, want %v", i, got[i], onRetry[i], want[i])
		}
	}
}

func TestRetryPermanentErrorFailsFast(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	clk.AutoAdvance()
	permanent := []error{
		fmt.Errorf("%w: bad row sum", core.ErrDefectiveFlow),
		fmt.Errorf("%w: dynamic flow", core.ErrNotCompilable),
		fmt.Errorf("%w: negative speed", model.ErrInvalidService),
		fmt.Errorf("%w: NaN attribute", core.ErrNonFinite),
	}
	for _, perr := range permanent {
		base := &scriptedResolver{lookup: []error{perr, perr, perr, perr}}
		r := rt.NewRetryResolver(base, rt.RetryPolicy{Clock: clk, Rand: func() float64 { return 0 }})
		_, err := r.ServiceByName("svc")
		if err != perr {
			t.Fatalf("permanent error was wrapped or retried: got %v, want %v", err, perr)
		}
		if lookups, _ := base.counts(); lookups != 1 {
			t.Fatalf("%v: base called %d times, want 1", perr, lookups)
		}
	}
	if len(clk.Slept()) != 0 {
		t.Fatalf("permanent errors slept: %v", clk.Slept())
	}
}

func TestRetryNoBindingPassesThrough(t *testing.T) {
	base := &scriptedResolver{bind: []error{model.ErrNoBinding}}
	r := rt.NewRetryResolver(base, rt.RetryPolicy{Clock: rt.NewFakeClock(t0)})
	_, _, err := r.Bind("app", "worker")
	if err != model.ErrNoBinding {
		t.Fatalf("ErrNoBinding did not pass through verbatim: %v", err)
	}
	if errors.Is(err, rt.ErrRetriesExhausted) {
		t.Fatal("ErrNoBinding was wrapped in ErrRetriesExhausted")
	}
	if _, binds := base.counts(); binds != 1 {
		t.Fatalf("base binds = %d, want 1 (no retries on a semantic signal)", binds)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	clk.AutoAdvance()
	base := &scriptedResolver{lookup: []error{transientErr(), transientErr()}}
	// MaxAttempts 2 < script length, so the call never succeeds.
	r := rt.NewRetryResolver(base, rt.RetryPolicy{MaxAttempts: 2, Clock: clk, Rand: func() float64 { return 0.5 }})
	_, err := r.ServiceByName("svc")
	if !errors.Is(err, rt.ErrRetriesExhausted) {
		t.Fatalf("err = %v, want ErrRetriesExhausted", err)
	}
	if !errors.Is(err, model.ErrTransient) {
		t.Fatalf("exhaustion hides the last attempt error: %v", err)
	}
	if lookups, _ := base.counts(); lookups != 2 {
		t.Fatalf("base lookups = %d, want 2", lookups)
	}
	if r.Retries() != 1 {
		t.Fatalf("Retries = %d, want 1", r.Retries())
	}
}

func TestRetryBudgetIsSharedAcrossCalls(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	clk.AutoAdvance()
	base := &scriptedResolver{lookup: []error{
		transientErr(), transientErr(), transientErr(), transientErr(), transientErr(),
	}}
	r := rt.NewRetryResolver(base, rt.RetryPolicy{
		MaxAttempts: 10,
		Budget:      3,
		Clock:       clk,
		Rand:        func() float64 { return 0.5 },
	})

	_, err := r.ServiceByName("svc")
	if !errors.Is(err, rt.ErrRetryBudgetExhausted) {
		t.Fatalf("err = %v, want ErrRetryBudgetExhausted", err)
	}
	if !errors.Is(err, model.ErrTransient) {
		t.Fatalf("budget exhaustion hides the last attempt error: %v", err)
	}
	if lookups, _ := base.counts(); lookups != 4 {
		t.Fatalf("base lookups = %d, want 4 (1 first + 3 budgeted retries)", lookups)
	}
	if got := r.BudgetRemaining(); got != 0 {
		t.Fatalf("BudgetRemaining = %d, want 0", got)
	}

	// A second call — through a context view — shares the drained budget:
	// it fails after its first attempt without sleeping again.
	before := len(clk.Slept())
	_, err = r.WithContext(context.Background()).ServiceByName("svc")
	if !errors.Is(err, rt.ErrRetryBudgetExhausted) {
		t.Fatalf("second call err = %v, want ErrRetryBudgetExhausted", err)
	}
	if lookups, _ := base.counts(); lookups != 5 {
		t.Fatalf("base lookups = %d, want 5", lookups)
	}
	if len(clk.Slept()) != before {
		t.Fatal("a call with no budget slept before failing")
	}
	if r.Retries() != 3 {
		t.Fatalf("Retries = %d, want 3", r.Retries())
	}
}

func TestRetryCanceledContextFailsFast(t *testing.T) {
	base := &scriptedResolver{svc: model.NewConstant("svc", 0.1)}
	r := rt.NewRetryResolver(base, rt.RetryPolicy{Clock: rt.NewFakeClock(t0)})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.WithContext(ctx).ServiceByName("svc")
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if lookups, _ := base.counts(); lookups != 0 {
		t.Fatalf("base called %d times under a canceled context, want 0", lookups)
	}
}

func TestRetryCancelDuringBackoff(t *testing.T) {
	clk := rt.NewFakeClock(t0) // manual: backoff sleeps block until Advance
	base := &scriptedResolver{lookup: []error{transientErr(), transientErr(), transientErr()}}
	r := rt.NewRetryResolver(base, rt.RetryPolicy{
		BaseDelay: 10 * time.Millisecond,
		Clock:     clk,
		Rand:      func() float64 { return 1 },
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := r.WithContext(ctx).ServiceByName("svc")
		done <- err
	}()
	clk.WaitForTimers(1) // first backoff sleep registered
	cancel()
	err := <-done
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if lookups, _ := base.counts(); lookups != 1 {
		t.Fatalf("base lookups = %d, want 1 (canceled during the first backoff)", lookups)
	}
}

// blockingResolver signals each lookup's entry on entered, then blocks it
// until release is closed.
type blockingResolver struct {
	entered chan struct{}
	release chan struct{}
}

func (b *blockingResolver) ServiceByName(name string) (model.Service, error) {
	b.entered <- struct{}{}
	<-b.release
	return model.NewConstant(name, 0.1), nil
}

func (b *blockingResolver) Bind(caller, role string) (string, string, error) {
	return "", "", model.ErrNoBinding
}

func TestRetryPerAttemptDeadline(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	base := &blockingResolver{entered: make(chan struct{}, 2), release: make(chan struct{})}
	r := rt.NewRetryResolver(base, rt.RetryPolicy{
		MaxAttempts:    2,
		AttemptTimeout: 50 * time.Millisecond,
		BaseDelay:      10 * time.Millisecond,
		Clock:          clk,
		Rand:           func() float64 { return 1 },
	})
	done := make(chan error, 1)
	go func() {
		_, err := r.ServiceByName("slow")
		done <- err
	}()

	<-base.entered       // attempt 1 is inside the blocked lookup
	clk.WaitForTimers(1) // attempt 1 deadline armed
	clk.Advance(50 * time.Millisecond)
	clk.WaitForTimers(1) // backoff sleep armed
	clk.Advance(10 * time.Millisecond)
	<-base.entered       // attempt 2 is inside the blocked lookup
	clk.WaitForTimers(1) // attempt 2 deadline armed
	clk.Advance(50 * time.Millisecond)

	err := <-done
	if !errors.Is(err, rt.ErrRetriesExhausted) || !errors.Is(err, rt.ErrAttemptTimeout) {
		t.Fatalf("err = %v, want ErrRetriesExhausted wrapping ErrAttemptTimeout", err)
	}
	if errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("ErrAttemptTimeout must not match context.DeadlineExceeded")
	}
	if r.Retries() != 1 {
		t.Fatalf("Retries = %d, want 1", r.Retries())
	}
	close(base.release) // let the two abandoned attempts drain
}

func TestRetryIsolatesPanickingAttempt(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	r := rt.NewRetryResolver(panickingResolver{}, rt.RetryPolicy{
		AttemptTimeout: time.Hour, // forces the goroutine+recover path
		Clock:          clk,
	})
	_, err := r.ServiceByName("svc")
	if !errors.Is(err, core.ErrPanic) {
		t.Fatalf("err = %v, want ErrPanic", err)
	}
	var pe *core.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *core.PanicError", err)
	}
}

type panickingResolver struct{}

func (panickingResolver) ServiceByName(string) (model.Service, error) { panic("kaboom") }
func (panickingResolver) Bind(string, string) (string, string, error) {
	return "", "", model.ErrNoBinding
}

// TestRetryDeadlineAgainstLatencyInjector drives the per-attempt deadline
// with faultinject's latency injector instead of a hand-rolled blocking
// resolver: every lookup is delayed 100ms on the virtual clock, past the
// 50ms attempt deadline, so both attempts time out deterministically.
func TestRetryDeadlineAgainstLatencyInjector(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	asm := assembly.New("latency")
	asm.MustAddService(model.NewConstant("svc", 0.1))
	inj := faultinject.Wrap(asm, faultinject.Options{
		LookupDelay: 100 * time.Millisecond,
		Sleep:       func(d time.Duration) { _ = clk.Sleep(context.Background(), d) },
	})
	r := rt.NewRetryResolver(inj, rt.RetryPolicy{
		MaxAttempts:    2,
		AttemptTimeout: 50 * time.Millisecond,
		BaseDelay:      10 * time.Millisecond,
		Clock:          clk,
		Rand:           func() float64 { return 1 },
	})
	done := make(chan error, 1)
	go func() {
		_, err := r.ServiceByName("svc")
		done <- err
	}()

	clk.WaitForTimers(2) // attempt 1: injected delay (t+100ms) + deadline (t+50ms)
	clk.Advance(50 * time.Millisecond)
	clk.WaitForTimers(2) // surviving delay timer + backoff sleep
	clk.Advance(10 * time.Millisecond)
	clk.WaitForTimers(3) // attempt 2's delay + deadline join attempt 1's delay
	clk.Advance(50 * time.Millisecond)

	err := <-done
	if !errors.Is(err, rt.ErrRetriesExhausted) || !errors.Is(err, rt.ErrAttemptTimeout) {
		t.Fatalf("err = %v, want ErrRetriesExhausted wrapping ErrAttemptTimeout", err)
	}
	if got := inj.Injected(); got != 2 {
		t.Fatalf("injected delays = %d, want 2", got)
	}
	clk.Advance(100 * time.Millisecond) // drain the abandoned attempts
}
