package runtime

import (
	"errors"
	"testing"

	"socrel/internal/monitor"
)

// tripTracker feeds a provider failures until its SPRT trips, returning
// the tracker.
func tripTracker(t *testing.T, provider string) *HealthTracker {
	t.Helper()
	h := NewHealthTracker(HealthConfig{})
	if err := h.Watch(provider, 0.99); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200 && h.Verdict(provider) != monitor.Violating; i++ {
		h.Observe(provider, false)
	}
	if h.Verdict(provider) != monitor.Violating {
		t.Fatal("SPRT never tripped under a pure-failure stream")
	}
	if !h.Quarantined(provider) {
		t.Fatal("Violating verdict did not quarantine the provider")
	}
	return h
}

// TestMergeCheckpointPropagatesQuarantine is the fleet-wide quarantine
// path: a provider tripped on replica A becomes quarantined on replica B
// after B merges A's checkpoint, with OnTrip firing a peer-evidence
// reason.
func TestMergeCheckpointPropagatesQuarantine(t *testing.T) {
	a := tripTracker(t, "p")

	var tripped []string
	var reasons []error
	b := NewHealthTracker(HealthConfig{OnTrip: func(provider string, reason error) {
		tripped = append(tripped, provider)
		reasons = append(reasons, reason)
	}})
	if err := b.Watch("p", 0.99); err != nil {
		t.Fatal(err)
	}
	b.Observe("p", true) // a little healthy local evidence

	if err := b.MergeCheckpoint(a.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	if !b.Quarantined("p") {
		t.Fatal("merged Violating evidence did not quarantine the provider on the receiving tracker")
	}
	if b.Verdict("p") != monitor.Violating {
		t.Fatalf("merged verdict = %v, want Violating", b.Verdict("p"))
	}
	if len(tripped) != 1 || tripped[0] != "p" {
		t.Fatalf("OnTrip calls = %v, want exactly [p]", tripped)
	}
	if !errors.Is(reasons[0], ErrPeerEvidence) || !errors.Is(reasons[0], ErrProviderDegraded) {
		t.Fatalf("trip reason %v does not wrap ErrPeerEvidence and ErrProviderDegraded", reasons[0])
	}
}

// TestMergeCheckpointIdempotent re-delivers the same checkpoint and
// checks evidence is not double-counted and the breaker does not re-trip.
func TestMergeCheckpointIdempotent(t *testing.T) {
	a := tripTracker(t, "p")
	snap := a.Checkpoint()

	trips := 0
	b := NewHealthTracker(HealthConfig{OnTrip: func(string, error) { trips++ }})
	if err := b.MergeCheckpoint(snap); err != nil {
		t.Fatal(err)
	}
	first := b.Checkpoint()["p"]
	for i := 0; i < 3; i++ {
		if err := b.MergeCheckpoint(snap); err != nil {
			t.Fatal(err)
		}
	}
	again := b.Checkpoint()["p"]
	if again.Total != first.Total || again.Successes != first.Successes {
		t.Fatalf("re-delivered checkpoint changed evidence: %+v -> %+v", first, again)
	}
	if trips != 1 {
		t.Fatalf("OnTrip fired %d times across re-deliveries, want 1", trips)
	}
}

// TestMergeCheckpointAdoptsUnknownProvider: a provider only a peer has
// seen appears locally with the peer's evidence (and no trip when the
// peer's verdict is not Violating).
func TestMergeCheckpointAdoptsUnknownProvider(t *testing.T) {
	a := NewHealthTracker(HealthConfig{})
	if err := a.Watch("fresh", 0.9); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a.Observe("fresh", true)
	}

	b := NewHealthTracker(HealthConfig{OnTrip: func(string, error) { t.Fatal("unexpected trip") }})
	if err := b.MergeCheckpoint(a.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	got := b.Checkpoint()["fresh"]
	if got.Total != 10 || got.Successes != 10 {
		t.Fatalf("adopted evidence = %+v, want 10/10", got)
	}
	if b.Quarantined("fresh") {
		t.Fatal("healthy adopted provider is quarantined")
	}
}

// TestMergeCheckpointKeepsLocalEvidenceWhenLarger: the local side wins
// when it carries more outcomes; remote Undecided evidence cannot erase
// it.
func TestMergeCheckpointKeepsLocalEvidenceWhenLarger(t *testing.T) {
	local := NewHealthTracker(HealthConfig{})
	if err := local.Watch("p", 0.9); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		local.Observe("p", true)
	}
	remote := NewHealthTracker(HealthConfig{})
	if err := remote.Watch("p", 0.9); err != nil {
		t.Fatal(err)
	}
	remote.Observe("p", true)

	if err := local.MergeCheckpoint(remote.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	if got := local.Checkpoint()["p"]; got.Total != 50 {
		t.Fatalf("local evidence regressed to %d outcomes, want 50", got.Total)
	}
}

// TestMergeCheckpointRejectsCorrupt: a torn snapshot fails loudly instead
// of poisoning the tracker.
func TestMergeCheckpointRejectsCorrupt(t *testing.T) {
	b := NewHealthTracker(HealthConfig{})
	bad := map[string]monitor.Snapshot{
		"p": {Config: monitor.Config{Predicted: 0.9}, Total: 1, Successes: 9},
	}
	if err := b.MergeCheckpoint(bad); err == nil {
		t.Fatal("MergeCheckpoint accepted a corrupt snapshot")
	}
}
