package runtime

import (
	"context"
	"testing"
	"time"
)

// TestSkewedClockShiftsNowOnly: Now is offset, durations are not — two
// skewed views of one base clock advance together but disagree on the
// wall time by exactly their skew difference.
func TestSkewedClockShiftsNowOnly(t *testing.T) {
	base := NewFakeClock(time.Unix(100, 0))
	a := NewSkewedClock(base)
	b := NewSkewedClock(base)
	a.SetSkew(2 * time.Second)
	b.SetSkew(-time.Second)

	if got := a.Now().Sub(b.Now()); got != 3*time.Second {
		t.Fatalf("skew difference %v, want 3s", got)
	}

	ch := a.After(time.Second)
	base.Advance(time.Second)
	select {
	case <-ch:
	default:
		t.Fatal("After did not fire on base-clock advance: skew must not stretch durations")
	}

	if got, want := a.Now(), time.Unix(103, 0); !got.Equal(want) {
		t.Fatalf("skewed Now %v, want %v", got, want)
	}
	if a.Skew() != 2*time.Second {
		t.Fatalf("Skew() = %v, want 2s", a.Skew())
	}

	// Sleep delegates: in auto-advance mode it returns immediately and
	// moves the base, which both skewed views observe.
	base.AutoAdvance()
	if err := a.Sleep(context.Background(), time.Second); err != nil {
		t.Fatal(err)
	}
	if got, want := b.Now(), time.Unix(101, 0); !got.Equal(want) {
		t.Fatalf("peer view after shared sleep %v, want %v", got, want)
	}
}
