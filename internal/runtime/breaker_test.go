package runtime_test

import (
	"errors"
	"testing"
	"time"

	rt "socrel/internal/runtime"
)

func newTestBreaker(clk rt.Clock) *rt.Breaker {
	return rt.NewBreaker(rt.BreakerConfig{
		FailureThreshold: 2,
		OpenFor:          10 * time.Second,
		ProbeSuccesses:   2,
		Clock:            clk,
	})
}

func TestBreakerLifecycle(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	b := newTestBreaker(clk)

	if got := b.State(); got != rt.Closed {
		t.Fatalf("initial state %v, want closed", got)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a call")
	}

	cause := errors.New("boom")
	b.RecordFailure(cause)
	if got := b.State(); got != rt.Closed {
		t.Fatalf("state after 1/2 failures = %v, want closed", got)
	}
	b.RecordFailure(cause)
	if got := b.State(); got != rt.Open {
		t.Fatalf("state after threshold = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a call")
	}
	why, at := b.LastTrip()
	if !errors.Is(why, cause) {
		t.Fatalf("LastTrip reason %v does not wrap the failure cause", why)
	}
	if !at.Equal(t0) {
		t.Fatalf("trip time %v, want %v", at, t0)
	}

	// Quarantine elapses -> half-open, probes allowed.
	clk.Advance(10 * time.Second)
	if got := b.State(); got != rt.HalfOpen {
		t.Fatalf("state after quarantine = %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused a probe")
	}

	// A half-open failure reopens immediately and restarts the window.
	b.RecordFailure(cause)
	if got := b.State(); got != rt.Open {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	clk.Advance(9 * time.Second)
	if got := b.State(); got != rt.Open {
		t.Fatalf("restarted quarantine ended early: %v", got)
	}
	clk.Advance(time.Second)

	// Enough consecutive probe successes close it again.
	b.RecordSuccess()
	if got := b.State(); got != rt.HalfOpen {
		t.Fatalf("state after 1/2 probes = %v, want half-open", got)
	}
	b.RecordSuccess()
	if got := b.State(); got != rt.Closed {
		t.Fatalf("state after probe budget = %v, want closed", got)
	}
	if b.Trips() != 2 {
		t.Fatalf("Trips = %d, want 2", b.Trips())
	}
}

func TestBreakerSuccessResetsFailureCount(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	b := newTestBreaker(clk)
	cause := errors.New("boom")
	b.RecordFailure(cause)
	b.RecordSuccess() // resets the consecutive count
	b.RecordFailure(cause)
	if got := b.State(); got != rt.Closed {
		t.Fatalf("non-consecutive failures tripped the breaker: %v", got)
	}
}

func TestBreakerExternalTrip(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	b := newTestBreaker(clk)
	reason := errors.New("SPRT violating")
	b.Trip(reason)
	if got := b.State(); got != rt.Open {
		t.Fatalf("state after Trip = %v, want open", got)
	}
	why, _ := b.LastTrip()
	if !errors.Is(why, reason) {
		t.Fatalf("LastTrip = %v, want the Trip reason", why)
	}
	// Half-open after the window, then recovery via probes.
	clk.Advance(10 * time.Second)
	b.RecordSuccess()
	b.RecordSuccess()
	if got := b.State(); got != rt.Closed {
		t.Fatalf("breaker did not recover: %v", got)
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for state, want := range map[rt.BreakerState]string{
		rt.Closed:           "closed",
		rt.Open:             "open",
		rt.HalfOpen:         "half-open",
		rt.BreakerState(99): "BreakerState(99)",
	} {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(state), got, want)
		}
	}
}
