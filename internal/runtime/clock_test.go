package runtime_test

import (
	"context"
	"testing"
	"time"

	rt "socrel/internal/runtime"
)

var t0 = time.Unix(1_700_000_000, 0)

func TestFakeClockAutoAdvance(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	clk.AutoAdvance()
	if err := clk.Sleep(context.Background(), 3*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := clk.Sleep(context.Background(), 2*time.Second); err != nil {
		t.Fatal(err)
	}
	if got := clk.Now(); !got.Equal(t0.Add(5 * time.Second)) {
		t.Fatalf("Now = %v, want %v", got, t0.Add(5*time.Second))
	}
	want := []time.Duration{3 * time.Second, 2 * time.Second}
	got := clk.Slept()
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("Slept = %v, want %v", got, want)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := clk.Sleep(ctx, time.Second); err == nil {
		t.Fatal("auto-advance Sleep ignored a canceled context")
	}
}

func TestFakeClockManualAdvance(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	ch := clk.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before Advance")
	default:
	}
	clk.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired early")
	default:
	}
	clk.Advance(time.Second)
	select {
	case at := <-ch:
		if !at.Equal(t0.Add(10 * time.Second)) {
			t.Fatalf("fired at %v, want %v", at, t0.Add(10*time.Second))
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
	// Non-positive durations fire immediately.
	select {
	case <-clk.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestFakeClockSleepCancel(t *testing.T) {
	clk := rt.NewFakeClock(t0)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- clk.Sleep(ctx, time.Minute) }()
	clk.WaitForTimers(1)
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Sleep returned %v, want context.Canceled", err)
	}
}
