package model

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// TestConstructorRejectsBadArguments (satellite S2): the fluent
// constructors carry out-of-range arguments as a construction defect that
// both Validate and Pfail surface with an error naming the service.
func TestConstructorRejectsBadArguments(t *testing.T) {
	cases := []struct {
		name   string
		svc    *Simple
		params []float64
	}{
		{"constant-above-one", NewConstant("C", 1.5), nil},
		{"constant-negative", NewConstant("C", -0.1), nil},
		{"constant-nan", NewConstant("C", math.NaN()), nil},
		{"cpu-zero-speed", NewCPU("C", 0, 0.1), []float64{1}},
		{"cpu-negative-speed", NewCPU("C", -5, 0.1), []float64{1}},
		{"cpu-negative-rate", NewCPU("C", 10, -1), []float64{1}},
		{"cpu-nan-speed", NewCPU("C", math.NaN(), 0.1), []float64{1}},
		{"network-zero-bandwidth", NewNetwork("C", 0, 0.1), []float64{1}},
		{"network-inf-rate", NewNetwork("C", 10, math.Inf(1)), []float64{1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.svc.Validate()
			if !errors.Is(err, ErrInvalidService) {
				t.Fatalf("Validate() = %v, want ErrInvalidService", err)
			}
			if !strings.Contains(err.Error(), `"C"`) {
				t.Errorf("Validate() = %v, want the service name in the message", err)
			}
			if _, err := tc.svc.Pfail(tc.params); !errors.Is(err, ErrInvalidService) {
				t.Errorf("Pfail() err = %v, want ErrInvalidService", err)
			}
		})
	}

	// Boundary values stay accepted.
	for _, svc := range []*Simple{
		NewConstant("ok", 0),
		NewConstant("ok", 1),
		NewCPU("ok", 1e9, 0),
		NewNetwork("ok", 1, 0),
	} {
		if err := svc.Validate(); err != nil {
			t.Errorf("Validate(%s) = %v, want nil", svc.Name(), err)
		}
	}
}

// TestKOfNChannelBound: the redundancy degree of a k-of-n transport (and
// the retry connector built on it) is bounded, so a huge n cannot turn one
// constructor call into an unbounded amount of work.
func TestKOfNChannelBound(t *testing.T) {
	if _, err := NewKOfNTransport("t", MaxKOfNChannels+1, 1, NoSharing); !errors.Is(err, ErrInvalidService) {
		t.Errorf("NewKOfNTransport(n=%d) err = %v, want ErrInvalidService", MaxKOfNChannels+1, err)
	}
	if _, err := NewRetry("t", MaxKOfNChannels+1); !errors.Is(err, ErrInvalidService) {
		t.Errorf("NewRetry(attempts=%d) err = %v, want ErrInvalidService", MaxKOfNChannels+1, err)
	}
	if _, err := NewKOfNTransport("t", MaxKOfNChannels, 1, NoSharing); err != nil {
		t.Errorf("NewKOfNTransport(n=%d) err = %v, want nil", MaxKOfNChannels, err)
	}
}
