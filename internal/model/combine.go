package model

import (
	"errors"
	"fmt"
)

// ErrBadCombine is returned when failure probabilities cannot be combined
// (mismatched lengths, invalid K, probabilities outside [0, 1]).
var ErrBadCombine = errors.New("model: invalid failure combination")

// RequestFailure is the pair of failure probabilities of one request A_ij
// in a flow state: the internal part Pfail_int (call operation / software
// fault) and the external part Pfail_ext (connector + target service),
// per section 3.2.
type RequestFailure struct {
	Int float64 // Pfail_int(A_ij)
	Ext float64 // Pfail_ext(A_ij) = 1 - (1-Pfail(C_j))·(1-Pfail(S_j))
}

// Total returns the request's overall failure probability per equation (8):
// 1 - (1-Pint)(1-Pext).
func (r RequestFailure) Total() float64 {
	return 1 - (1-r.Int)*(1-r.Ext)
}

// ExtFailure combines a connector failure probability and a target-service
// failure probability into Pfail_ext per the decomposition in equation (8):
// the external part does not fail only if neither the connector nor the
// requested service fails.
func ExtFailure(connector, service float64) float64 {
	return 1 - (1-connector)*(1-service)
}

// CombineState computes the state failure probability p_{S,fp}(i, Fail)
// from the per-request failure probabilities, under the given completion
// and dependency models. K is used only for the KOfN completion model.
//
// Formulas (section 3.2):
//
//	AND / NoSharing: eq. (6)   f = 1 - Π_j (1 - Ptotal_j)
//	OR  / NoSharing: eq. (7)   f = Π_j Ptotal_j
//	AND / Sharing:   eq. (11)  f = 1 - Π_j (1-Pint_j) · Π_j (1-Pext_j)
//	OR  / Sharing:   eq. (12)  f = 1 - Π_j (1-Pext_j) · (1 - Π_j Pint_j)
//
// The KOfN extension requires at least K fulfilled requests:
//
//	KOfN / NoSharing: f = P[#successes < K] with independent success
//	    probabilities (1-Pint_j)(1-Pext_j) (Poisson-binomial tail).
//	KOfN / Sharing:   one external failure fails every request, so
//	    f = (1 - Π_j (1-Pext_j)) + Π_j (1-Pext_j) · P[#internal-successes < K].
//
// KOfN reduces to AND at K = n and to OR at K = 1 under both dependency
// models, which the tests verify.
//
// A state with no requests never fails: f = 0.
func CombineState(completion Completion, dependency Dependency, k int, reqs []RequestFailure) (float64, error) {
	if len(reqs) == 0 {
		return 0, nil
	}
	for i, r := range reqs {
		if r.Int < 0 || r.Int > 1 || r.Ext < 0 || r.Ext > 1 {
			return 0, fmt.Errorf("%w: request %d has Pint=%g Pext=%g", ErrBadCombine, i, r.Int, r.Ext)
		}
	}
	switch completion {
	case AND:
		switch dependency {
		case NoSharing:
			noFail := 1.0
			for _, r := range reqs {
				noFail *= 1 - r.Total()
			}
			return clamp01(1 - noFail), nil
		case Sharing:
			intOK, extOK := 1.0, 1.0
			for _, r := range reqs {
				intOK *= 1 - r.Int
				extOK *= 1 - r.Ext
			}
			return clamp01(1 - intOK*extOK), nil
		}
	case OR:
		switch dependency {
		case NoSharing:
			allFail := 1.0
			for _, r := range reqs {
				allFail *= r.Total()
			}
			return clamp01(allFail), nil
		case Sharing:
			extOK, intFail := 1.0, 1.0
			for _, r := range reqs {
				extOK *= 1 - r.Ext
				intFail *= r.Int
			}
			return clamp01(1 - extOK*(1-intFail)), nil
		}
	case KOfN:
		if k < 1 || k > len(reqs) {
			return 0, fmt.Errorf("%w: K=%d with %d requests", ErrBadCombine, k, len(reqs))
		}
		switch dependency {
		case NoSharing:
			probs := make([]float64, len(reqs))
			for i, r := range reqs {
				probs[i] = 1 - r.Total() // success probability
			}
			return clamp01(poissonBinomialTailBelow(probs, k)), nil
		case Sharing:
			extOK := 1.0
			probs := make([]float64, len(reqs))
			for i, r := range reqs {
				extOK *= 1 - r.Ext
				probs[i] = 1 - r.Int // success given no external failure
			}
			fewerThanK := poissonBinomialTailBelow(probs, k)
			return clamp01((1 - extOK) + extOK*fewerThanK), nil
		}
	}
	return 0, fmt.Errorf("%w: completion=%v dependency=%v", ErrBadCombine, completion, dependency)
}

// poissonBinomialTailBelow returns P[X < k] where X is the number of
// successes among independent Bernoulli trials with the given success
// probabilities, computed by the standard O(n·k) dynamic program.
func poissonBinomialTailBelow(success []float64, k int) float64 {
	n := len(success)
	// dist[j] = P[#successes among trials seen so far == j], truncated at k
	// successes (we only need P[X < k], so probabilities at >= k collapse).
	dist := make([]float64, k+1)
	dist[0] = 1
	for i := 0; i < n; i++ {
		p := success[i]
		for j := k; j >= 1; j-- {
			dist[j] = dist[j]*(1-p) + dist[j-1]*p
		}
		dist[0] *= 1 - p
	}
	var tail float64
	for j := 0; j < k; j++ {
		tail += dist[j]
	}
	return tail
}
