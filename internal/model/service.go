// Package model defines the service model of the paper: analytic
// interfaces for simple and composite services, usage-profile flows whose
// states hold sets of cascading service requests, completion models
// (AND, OR, and the k-out-of-n generalization), dependency models
// (sharing / no sharing), and the connector constructions of section 4
// (local processing, LPC, RPC).
//
// Everything that may depend on a service's formal parameters — actual
// parameters of cascading requests, transition probabilities, internal and
// simple-service failure laws — is an expression tree from internal/expr,
// which is what makes the model compositional and serializable.
package model

import (
	"errors"
	"fmt"
	"math"

	"socrel/internal/expr"
)

// Reserved flow state names.
const (
	// StartState is the entry point of every flow; it models no real
	// behavior and can never fail (section 3.2).
	StartState = "Start"
	// EndState is the absorbing state representing successful completion.
	EndState = "End"
	// FailState is the absorbing failure state added by the engine when
	// augmenting a flow with its failure structure. It must not appear in
	// user flows.
	FailState = "Fail"
)

// Errors returned by model construction and validation.
var (
	// ErrInvalidService is returned when a service definition is malformed.
	ErrInvalidService = errors.New("model: invalid service")
	// ErrUnknownService is returned by resolvers when a name has no
	// definition.
	ErrUnknownService = errors.New("model: unknown service")
	// ErrNoBinding is returned by resolvers when a (caller, role) pair has
	// no binding.
	ErrNoBinding = errors.New("model: no binding")
	// ErrArity is returned when a service is invoked with the wrong number
	// of actual parameters.
	ErrArity = errors.New("model: wrong number of parameters")
	// ErrNonFinite is returned when a failure law, parameter, or attribute
	// evaluates to NaN or ±Inf. Probabilities must be finite; clamping a
	// NaN would silently corrupt every downstream combination, so it is
	// rejected instead.
	ErrNonFinite = errors.New("model: non-finite value")
	// ErrTransient marks a failure the producer believes is temporary —
	// a flaky lookup, a refused binding that may succeed on re-resolution.
	// Resolver decorators wrap such failures with this sentinel so retry
	// layers (internal/runtime) can distinguish "try again" from
	// "permanently broken" without parsing messages.
	ErrTransient = errors.New("model: transient failure")
)

// Attrs holds the named numeric attributes published in an analytic
// interface (speeds, failure rates, bandwidths, ...). Attribute values are
// visible as identifiers in the service's expressions; formal parameters
// shadow attributes of the same name.
type Attrs = expr.Env

// Service is an analytic interface: something that offers a single named
// service with formal parameters and attributes. Implementations are
// *Simple and *Composite.
type Service interface {
	// Name returns the unique service name.
	Name() string
	// FormalParams returns the ordered formal parameter names.
	FormalParams() []string
	// Attributes returns the published attributes (not a copy; callers
	// must not modify).
	Attributes() Attrs
	// Validate checks structural well-formedness.
	Validate() error
}

// Env builds the evaluation environment for a service invocation:
// attributes overridden by formal parameters bound to actual values.
func Env(s Service, params []float64) (expr.Env, error) {
	formals := s.FormalParams()
	if len(params) != len(formals) {
		return nil, fmt.Errorf("%w: %s expects %d, got %d", ErrArity, s.Name(), len(formals), len(params))
	}
	env := make(expr.Env, len(formals)+len(s.Attributes()))
	for k, v := range s.Attributes() {
		env[k] = v
	}
	for i, f := range formals {
		env[f] = params[i]
	}
	return env, nil
}

// Simple is a service that requires no other service: its failure
// probability is a known closed-form function of its formal parameters and
// attributes (section 3.1).
type Simple struct {
	name    string
	formals []string
	attrs   Attrs
	pfail   expr.Expr
	// ctorErr records a defect detected at construction (out-of-range
	// constant, non-positive resource capacity). The fluent constructors
	// cannot return errors without breaking every model-building call
	// site, so the defect is carried here and surfaced by Validate and
	// Pfail — construction-time rejection with evaluation-time reporting.
	ctorErr error
}

var _ Service = (*Simple)(nil)

// NewSimple defines a simple service whose failure probability is given by
// the pfail expression over formals and attrs.
func NewSimple(name string, formals []string, attrs Attrs, pfail expr.Expr) *Simple {
	return &Simple{name: name, formals: append([]string(nil), formals...), attrs: attrs, pfail: pfail}
}

// NewCPU returns a processing resource per equation (1):
// Pfail(cpu, N) = 1 - exp(-lambda*N/s), with speed s (operations per time
// unit) and failure rate lambda (failures per time unit). A non-positive
// or non-finite speed, or a negative or non-finite failure rate, is
// rejected: the returned service fails validation and evaluation with an
// error naming it.
func NewCPU(name string, speed, failureRate float64) *Simple {
	s := NewSimple(name, []string{"N"},
		Attrs{"s": speed, "lambda": failureRate},
		expr.MustParse("1 - exp(-lambda * N / s)"))
	s.ctorErr = checkRate(name, "speed", speed, "failure rate", failureRate)
	return s
}

// NewNetwork returns a communication resource per equation (2):
// Pfail(net, B) = 1 - exp(-beta*B/b), with bandwidth b (bytes per time
// unit) and failure rate beta (failures per time unit). A non-positive or
// non-finite bandwidth, or a negative or non-finite failure rate, is
// rejected the same way as in NewCPU.
func NewNetwork(name string, bandwidth, failureRate float64) *Simple {
	s := NewSimple(name, []string{"B"},
		Attrs{"b": bandwidth, "beta": failureRate},
		expr.MustParse("1 - exp(-beta * B / b)"))
	s.ctorErr = checkRate(name, "bandwidth", bandwidth, "failure rate", failureRate)
	return s
}

// NewPerfect returns a perfectly reliable service with the given formal
// parameters (all ignored). Section 3.1 uses these for "local processing"
// connectors that are pure modeling artifacts.
func NewPerfect(name string, formals ...string) *Simple {
	return NewSimple(name, formals, nil, expr.Num(0))
}

// NewConstant returns a service with a constant failure probability.
// A pfail outside [0, 1] (or NaN) is rejected: the returned service fails
// validation and evaluation with an error naming it.
func NewConstant(name string, pfail float64, formals ...string) *Simple {
	s := NewSimple(name, formals, nil, expr.Num(pfail))
	if math.IsNaN(pfail) || pfail < 0 || pfail > 1 {
		s.ctorErr = fmt.Errorf("%w: service %q: constant pfail %g outside [0,1]", ErrInvalidService, name, pfail)
	}
	return s
}

// checkRate validates a resource capacity (must be positive and finite)
// and failure-rate (must be non-negative and finite) pair.
func checkRate(name, capLabel string, capacity float64, rateLabel string, rate float64) error {
	if capacity <= 0 || math.IsInf(capacity, 0) || math.IsNaN(capacity) {
		return fmt.Errorf("%w: service %q: %s %g must be positive and finite", ErrInvalidService, name, capLabel, capacity)
	}
	if rate < 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
		return fmt.Errorf("%w: service %q: %s %g must be non-negative and finite", ErrInvalidService, name, rateLabel, rate)
	}
	return nil
}

// WithAttr returns a copy of the service with one attribute rebound to
// value. This is the re-prediction primitive: an estimation layer that
// learns a new failure rate produces an updated service without mutating
// the one live evaluators still reference. The attribute must already
// exist (failure laws only read declared attributes) and the value must
// be finite.
func (s *Simple) WithAttr(name string, value float64) (*Simple, error) {
	if s.ctorErr != nil {
		return nil, s.ctorErr
	}
	if _, ok := s.attrs[name]; !ok {
		return nil, fmt.Errorf("%w: service %q has no attribute %q", ErrInvalidService, s.name, name)
	}
	if math.IsNaN(value) || math.IsInf(value, 0) {
		return nil, fmt.Errorf("%w: attribute %q = %g", ErrNonFinite, name, value)
	}
	attrs := make(Attrs, len(s.attrs))
	for k, v := range s.attrs {
		attrs[k] = v
	}
	attrs[name] = value
	return &Simple{name: s.name, formals: append([]string(nil), s.formals...), attrs: attrs, pfail: s.pfail}, nil
}

// Name implements Service.
func (s *Simple) Name() string { return s.name }

// FormalParams implements Service.
func (s *Simple) FormalParams() []string { return append([]string(nil), s.formals...) }

// Attributes implements Service.
func (s *Simple) Attributes() Attrs { return s.attrs }

// PfailExpr returns the failure-law expression.
func (s *Simple) PfailExpr() expr.Expr { return s.pfail }

// Pfail evaluates the failure probability for the given actual parameters,
// clamped to [0, 1]. A non-finite law value is rejected with ErrNonFinite
// rather than clamped (clamp01 would silently pass NaN through).
func (s *Simple) Pfail(params []float64) (float64, error) {
	if s.ctorErr != nil {
		return 0, s.ctorErr
	}
	env, err := Env(s, params)
	if err != nil {
		return 0, err
	}
	v, err := s.pfail.Eval(env)
	if err != nil {
		return 0, fmt.Errorf("model: Pfail(%s): %w", s.name, err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("%w: Pfail(%s) = %g", ErrNonFinite, s.name, v)
	}
	return clamp01(v), nil
}

// Validate implements Service.
func (s *Simple) Validate() error {
	if s.ctorErr != nil {
		return s.ctorErr
	}
	if s.name == "" {
		return fmt.Errorf("%w: empty name", ErrInvalidService)
	}
	if s.pfail == nil {
		return fmt.Errorf("%w: %s has no failure law", ErrInvalidService, s.name)
	}
	if err := checkFreeVars(s.pfail, s.formals, s.attrs); err != nil {
		return fmt.Errorf("%w: %s failure law: %v", ErrInvalidService, s.name, err)
	}
	return seenDuplicates(s.name, s.formals)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// checkFreeVars verifies that every free identifier of e is either a formal
// parameter or an attribute.
func checkFreeVars(e expr.Expr, formals []string, attrs Attrs) error {
	known := make(map[string]bool, len(formals)+len(attrs))
	for _, f := range formals {
		known[f] = true
	}
	for a := range attrs {
		known[a] = true
	}
	for _, v := range expr.Vars(e) {
		if !known[v] {
			return fmt.Errorf("unbound identifier %q", v)
		}
	}
	return nil
}

func seenDuplicates(name string, formals []string) error {
	seen := make(map[string]bool, len(formals))
	for _, f := range formals {
		if f == "" {
			return fmt.Errorf("%w: %s has an empty formal parameter", ErrInvalidService, name)
		}
		if seen[f] {
			return fmt.Errorf("%w: %s has duplicate formal parameter %q", ErrInvalidService, name, f)
		}
		seen[f] = true
	}
	return nil
}
