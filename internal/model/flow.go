package model

import (
	"fmt"
	"sort"

	"socrel/internal/expr"
)

// Completion enumerates the completion models of section 3.2: when is a
// transition out of a flow state enabled, given that some of the state's
// requests may have failed.
type Completion int

// Completion models.
const (
	// AND requires every request in the state to be fulfilled (eq. 4).
	AND Completion = iota + 1
	// OR requires at least one request to be fulfilled (eq. 5); it models
	// fault-tolerance features such as replicated providers.
	OR
	// KOfN requires at least K of the N requests to be fulfilled. The paper
	// names this model ("k out of n") without analyzing it; it generalizes
	// AND (K = N) and OR (K = 1).
	KOfN
)

func (c Completion) String() string {
	switch c {
	case AND:
		return "AND"
	case OR:
		return "OR"
	case KOfN:
		return "KofN"
	default:
		return fmt.Sprintf("Completion(%d)", int(c))
	}
}

// Dependency enumerates the dependency models of section 3.2.
type Dependency int

// Dependency models.
const (
	// NoSharing assumes the requests of a state are independent (eqs. 6-8).
	NoSharing Dependency = iota + 1
	// Sharing assumes all requests of a state target the same service
	// through the same connector, so one external failure fails them all
	// (eqs. 9-13).
	Sharing
)

func (d Dependency) String() string {
	switch d {
	case NoSharing:
		return "NoSharing"
	case Sharing:
		return "Sharing"
	default:
		return fmt.Sprintf("Dependency(%d)", int(d))
	}
}

// Request is one service request A_ij inside a flow state: all the
// activities involved in invoking and executing a target service.
type Request struct {
	// Role names the required service. The assembly's bindings map
	// (caller, role) to a concrete provider and connector; if no binding
	// exists, Role is taken as a concrete service name reached through a
	// perfect connector.
	Role string
	// Params are the actual-parameter expressions ap_j(fp), evaluated in
	// the caller's environment (formal parameters + attributes).
	Params []expr.Expr
	// ConnParams are the actual-parameter expressions for the connector
	// service that transports the request (e.g. the ip/op sizes of the
	// LPC/RPC connectors). Evaluated in the caller's environment.
	ConnParams []expr.Expr
	// Internal is the internal failure probability Pfail_int of the
	// request, an expression in the caller's environment (e.g.
	// 1-(1-phi)^N for a call to a processing service, eq. 14). A nil
	// Internal means a perfectly reliable invocation operation.
	Internal expr.Expr
}

// Transition is one edge of a flow with a probability expression over the
// owning service's environment.
type Transition struct {
	From, To string
	Prob     expr.Expr
}

// State is a node of a usage-profile flow: a set of requests with a
// completion and dependency model.
type State struct {
	Name       string
	Completion Completion
	// K is the threshold for the KOfN completion model; ignored otherwise.
	K          int
	Dependency Dependency
	Requests   []Request
}

// Flow is the abstract usage profile of a composite service: a discrete
// time Markov chain over states, from StartState to EndState.
type Flow struct {
	states      []*State
	stateByName map[string]*State
	transitions []Transition
}

// NewFlow returns an empty flow containing only the Start and End states.
func NewFlow() *Flow {
	f := &Flow{stateByName: make(map[string]*State)}
	f.addState(&State{Name: StartState})
	f.addState(&State{Name: EndState})
	return f
}

func (f *Flow) addState(s *State) {
	f.states = append(f.states, s)
	f.stateByName[s.Name] = s
}

// AddState adds a working state with the given completion and dependency
// models and returns it for request population. Adding a duplicate or
// reserved name returns an error.
func (f *Flow) AddState(name string, completion Completion, dependency Dependency) (*State, error) {
	if name == StartState || name == EndState || name == FailState {
		return nil, fmt.Errorf("%w: state name %q is reserved", ErrInvalidService, name)
	}
	if _, ok := f.stateByName[name]; ok {
		return nil, fmt.Errorf("%w: duplicate state %q", ErrInvalidService, name)
	}
	s := &State{Name: name, Completion: completion, Dependency: dependency}
	f.addState(s)
	return s, nil
}

// State returns the named state, or nil.
func (f *Flow) State(name string) *State { return f.stateByName[name] }

// States returns the states in insertion order (Start first, End second).
func (f *Flow) States() []*State { return append([]*State(nil), f.states...) }

// AddTransition adds an edge with a probability expression.
func (f *Flow) AddTransition(from, to string, prob expr.Expr) error {
	if _, ok := f.stateByName[from]; !ok {
		return fmt.Errorf("%w: transition from unknown state %q", ErrInvalidService, from)
	}
	if _, ok := f.stateByName[to]; !ok {
		return fmt.Errorf("%w: transition to unknown state %q", ErrInvalidService, to)
	}
	if from == EndState {
		return fmt.Errorf("%w: transition out of End", ErrInvalidService)
	}
	f.transitions = append(f.transitions, Transition{From: from, To: to, Prob: prob})
	return nil
}

// AddTransitionP adds an edge with a constant probability.
func (f *Flow) AddTransitionP(from, to string, p float64) error {
	return f.AddTransition(from, to, expr.Num(p))
}

// Transitions returns the flow's edges in insertion order.
func (f *Flow) Transitions() []Transition { return append([]Transition(nil), f.transitions...) }

// AddRequest appends a request to the state.
func (s *State) AddRequest(r Request) *State {
	s.Requests = append(s.Requests, r)
	return s
}

// Composite is a service realized by an assembly of other services, as
// described by its flow (section 3.2).
type Composite struct {
	name    string
	formals []string
	attrs   Attrs
	flow    *Flow
}

var _ Service = (*Composite)(nil)

// NewComposite defines a composite service with the given analytic
// interface and an empty flow.
func NewComposite(name string, formals []string, attrs Attrs) *Composite {
	return &Composite{
		name:    name,
		formals: append([]string(nil), formals...),
		attrs:   attrs,
		flow:    NewFlow(),
	}
}

// Name implements Service.
func (c *Composite) Name() string { return c.name }

// FormalParams implements Service.
func (c *Composite) FormalParams() []string { return append([]string(nil), c.formals...) }

// Attributes implements Service.
func (c *Composite) Attributes() Attrs { return c.attrs }

// Flow returns the usage-profile flow for population and inspection.
func (c *Composite) Flow() *Flow { return c.flow }

// Validate implements Service: the flow must be structurally sound —
// reserved states present, Start without requests, every expression closed
// over the service's identifiers, valid completion/dependency models, and
// every non-End state with at least one outgoing transition.
func (c *Composite) Validate() error {
	if c.name == "" {
		return fmt.Errorf("%w: empty name", ErrInvalidService)
	}
	if err := seenDuplicates(c.name, c.formals); err != nil {
		return err
	}
	outgoing := make(map[string]int)
	constSum := make(map[string]float64)
	allConst := make(map[string]bool)
	seenEdge := make(map[string]bool)
	for _, st := range c.flow.states {
		allConst[st.Name] = true
	}
	for _, tr := range c.flow.transitions {
		edge := tr.From + "\x00" + tr.To
		if seenEdge[edge] {
			return fmt.Errorf("%w: %s: duplicate transition %s -> %s", ErrInvalidService, c.name, tr.From, tr.To)
		}
		seenEdge[edge] = true
		outgoing[tr.From]++
		if tr.Prob == nil {
			return fmt.Errorf("%w: %s: transition %s -> %s has no probability", ErrInvalidService, c.name, tr.From, tr.To)
		}
		if err := checkFreeVars(tr.Prob, c.formals, c.attrs); err != nil {
			return fmt.Errorf("%w: %s: transition %s -> %s: %v", ErrInvalidService, c.name, tr.From, tr.To, err)
		}
		// Constant probabilities can be checked statically; expressions
		// over formal parameters are checked at evaluation time.
		if n, ok := expr.Simplify(expr.Bind(tr.Prob, c.attrs)).(expr.Num); ok {
			v := float64(n)
			if v < -1e-12 || v > 1+1e-12 {
				return fmt.Errorf("%w: %s: P(%s -> %s) = %g", ErrInvalidService, c.name, tr.From, tr.To, v)
			}
			constSum[tr.From] += v
		} else {
			allConst[tr.From] = false
		}
	}
	for name, ok := range allConst {
		if !ok || name == EndState || outgoing[name] == 0 {
			continue
		}
		if s := constSum[name]; s < 1-1e-9 || s > 1+1e-9 {
			return fmt.Errorf("%w: %s: outgoing probabilities of %q sum to %.12g", ErrInvalidService, c.name, name, s)
		}
	}
	for _, st := range c.flow.states {
		if st.Name == StartState && len(st.Requests) > 0 {
			return fmt.Errorf("%w: %s: Start must not contain requests", ErrInvalidService, c.name)
		}
		if st.Name != EndState && outgoing[st.Name] == 0 {
			return fmt.Errorf("%w: %s: state %q has no outgoing transition", ErrInvalidService, c.name, st.Name)
		}
		if st.Name == StartState || st.Name == EndState {
			continue
		}
		switch st.Completion {
		case AND, OR:
		case KOfN:
			if st.K < 1 || st.K > len(st.Requests) {
				return fmt.Errorf("%w: %s: state %q has K=%d with %d requests", ErrInvalidService, c.name, st.Name, st.K, len(st.Requests))
			}
		default:
			return fmt.Errorf("%w: %s: state %q has no completion model", ErrInvalidService, c.name, st.Name)
		}
		switch st.Dependency {
		case NoSharing, Sharing:
		default:
			return fmt.Errorf("%w: %s: state %q has no dependency model", ErrInvalidService, c.name, st.Name)
		}
		for ri, r := range st.Requests {
			if r.Role == "" {
				return fmt.Errorf("%w: %s: state %q request %d has empty role", ErrInvalidService, c.name, st.Name, ri)
			}
			for _, e := range r.Params {
				if err := checkFreeVars(e, c.formals, c.attrs); err != nil {
					return fmt.Errorf("%w: %s: state %q request %q params: %v", ErrInvalidService, c.name, st.Name, r.Role, err)
				}
			}
			for _, e := range r.ConnParams {
				if err := checkFreeVars(e, c.formals, c.attrs); err != nil {
					return fmt.Errorf("%w: %s: state %q request %q connector params: %v", ErrInvalidService, c.name, st.Name, r.Role, err)
				}
			}
			if r.Internal != nil {
				if err := checkFreeVars(r.Internal, c.formals, c.attrs); err != nil {
					return fmt.Errorf("%w: %s: state %q request %q internal failure: %v", ErrInvalidService, c.name, st.Name, r.Role, err)
				}
			}
		}
		if st.Dependency == Sharing {
			// The paper restricts sharing to requests for the same service
			// through the same connector.
			for _, r := range st.Requests[1:] {
				if r.Role != st.Requests[0].Role {
					return fmt.Errorf("%w: %s: sharing state %q mixes roles %q and %q", ErrInvalidService, c.name, st.Name, st.Requests[0].Role, r.Role)
				}
			}
		}
	}
	return nil
}

// Roles returns the sorted set of roles requested anywhere in the flow.
func (c *Composite) Roles() []string {
	set := make(map[string]bool)
	for _, st := range c.flow.states {
		for _, r := range st.Requests {
			set[r.Role] = true
		}
	}
	out := make([]string, 0, len(set))
	for role := range set {
		out = append(out, role)
	}
	sort.Strings(out)
	return out
}

// Resolver resolves service names and role bindings during evaluation.
// The assembly package provides the standard implementation.
type Resolver interface {
	// ServiceByName returns the named service definition.
	ServiceByName(name string) (Service, error)
	// Bind resolves the (caller, role) pair to a provider service name and
	// a connector service name. An empty connector name means a perfect
	// (zero failure) connection. ErrNoBinding means the role should be
	// treated as a concrete service name.
	Bind(caller, role string) (provider, connector string, err error)
}
