package model

import (
	"socrel/internal/expr"
)

// Connector roles used by the LPC and RPC connector flows. Assemblies bind
// these roles to concrete cpu and network resources.
const (
	// RoleCPU is the single processing role of the LPC connector.
	RoleCPU = "cpu"
	// RoleClientCPU is the client-side processing role of RPC (marshal /
	// unmarshal on the caller's node).
	RoleClientCPU = "clientcpu"
	// RoleServerCPU is the server-side processing role of RPC.
	RoleServerCPU = "servercpu"
	// RoleNet is the communication role of RPC.
	RoleNet = "net"
)

// NewLPC builds the "local procedure call" connector of Figure 2: a
// composite service with formal parameters (ip, op) — the sizes of the data
// transmitted to and from the callee — that requires only a processing
// service for the constant number of control-transfer operations l.
// Its software failure rate is zero (all Internal expressions nil), per
// section 4.
//
// The single request targets the RoleCPU role.
func NewLPC(name string, l float64) (*Composite, error) {
	c := NewComposite(name, []string{"ip", "op"}, Attrs{"l": l})
	st, err := c.Flow().AddState("xfer", AND, NoSharing)
	if err != nil {
		return nil, err
	}
	st.AddRequest(Request{
		Role:   RoleCPU,
		Params: []expr.Expr{expr.Var("l")},
	})
	if err := c.Flow().AddTransitionP(StartState, "xfer", 1); err != nil {
		return nil, err
	}
	if err := c.Flow().AddTransitionP("xfer", EndState, 1); err != nil {
		return nil, err
	}
	return c, nil
}

// NewRPC builds the "remote procedure call" connector of Figure 2: two
// AND states — request transport (marshal ip on the client, transmit m·ip,
// unmarshal on the server) and response transport (marshal op on the
// server, transmit m·op, unmarshal on the client). Processing costs are
// c operations per size unit and communication costs m bytes per size
// unit. Its software failure rate is zero, per section 4.
//
// Requests target the RoleClientCPU, RoleServerCPU and RoleNet roles.
func NewRPC(name string, c, m float64) (*Composite, error) {
	conn := NewComposite(name, []string{"ip", "op"}, Attrs{"c": c, "m": m})
	req, err := conn.Flow().AddState("request", AND, NoSharing)
	if err != nil {
		return nil, err
	}
	req.AddRequest(Request{Role: RoleClientCPU, Params: []expr.Expr{expr.MustParse("c * ip")}})
	req.AddRequest(Request{Role: RoleNet, Params: []expr.Expr{expr.MustParse("m * ip")}})
	req.AddRequest(Request{Role: RoleServerCPU, Params: []expr.Expr{expr.MustParse("c * ip")}})
	resp, err := conn.Flow().AddState("response", AND, NoSharing)
	if err != nil {
		return nil, err
	}
	resp.AddRequest(Request{Role: RoleServerCPU, Params: []expr.Expr{expr.MustParse("c * op")}})
	resp.AddRequest(Request{Role: RoleNet, Params: []expr.Expr{expr.MustParse("m * op")}})
	resp.AddRequest(Request{Role: RoleClientCPU, Params: []expr.Expr{expr.MustParse("c * op")}})
	for _, e := range []struct {
		from, to string
	}{
		{StartState, "request"},
		{"request", "response"},
		{"response", EndState},
	} {
		if err := conn.Flow().AddTransitionP(e.from, e.to, 1); err != nil {
			return nil, err
		}
	}
	return conn, nil
}

// SoftwareFailure returns the internal-failure expression of equation (14)
// for a request executing opsExpr operations in a component with software
// failure rate phi per operation: 1 - (1-phi)^ops. The phi argument is an
// expression so callers can reference an attribute (e.g. expr.Var("phi"))
// or a literal.
func SoftwareFailure(phi, opsExpr expr.Expr) expr.Expr {
	return expr.Sub(expr.Num(1), expr.Pow(expr.Sub(expr.Num(1), phi), opsExpr))
}
