package model

import (
	"errors"
	"testing"
)

func TestKOfNTransportStructure(t *testing.T) {
	c, err := NewKOfNTransport("rep", 3, 2, NoSharing)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	st := c.Flow().State("deliver")
	if st.Completion != KOfN || st.K != 2 || len(st.Requests) != 3 {
		t.Errorf("state = %+v", st)
	}
	if got := c.Roles(); len(got) != 1 || got[0] != RoleTransport {
		t.Errorf("Roles = %v", got)
	}
	if got := c.FormalParams(); len(got) != 2 || got[0] != "ip" || got[1] != "op" {
		t.Errorf("FormalParams = %v", got)
	}
}

func TestKOfNTransportBadArgs(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{0, 1}, {3, 0}, {3, 4}, {-1, -1}} {
		if _, err := NewKOfNTransport("x", tc.n, tc.k, NoSharing); !errors.Is(err, ErrInvalidService) {
			t.Errorf("n=%d k=%d: error = %v", tc.n, tc.k, err)
		}
	}
}

func TestRetryIsOneOfN(t *testing.T) {
	c, err := NewRetry("retry", 4)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Flow().State("deliver")
	if st.K != 1 || len(st.Requests) != 4 || st.Dependency != NoSharing {
		t.Errorf("state = %+v", st)
	}
}

func TestQueueStructure(t *testing.T) {
	q, err := NewQueue("mq", 10, 270)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	roles := q.Roles()
	want := map[string]bool{
		RoleClientCPU: true, RoleServerCPU: true, RoleBrokerCPU: true,
		RoleNet1: true, RoleNet2: true,
	}
	if len(roles) != len(want) {
		t.Fatalf("Roles = %v", roles)
	}
	for _, r := range roles {
		if !want[r] {
			t.Errorf("unexpected role %q", r)
		}
	}
	// Four sequential AND states of three requests each.
	working := 0
	for _, st := range q.Flow().States() {
		if st.Name == StartState || st.Name == EndState {
			continue
		}
		working++
		if st.Completion != AND || len(st.Requests) != 3 {
			t.Errorf("state %q = %+v", st.Name, st)
		}
	}
	if working != 4 {
		t.Errorf("working states = %d, want 4", working)
	}
}
