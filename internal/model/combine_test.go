package model

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRequestFailureTotal(t *testing.T) {
	// Equation (8): Ptotal = 1 - (1-Pint)(1-Pext).
	r := RequestFailure{Int: 0.1, Ext: 0.2}
	want := 1 - 0.9*0.8
	if !approxEq(r.Total(), want, 1e-15) {
		t.Errorf("Total = %g, want %g", r.Total(), want)
	}
}

func TestExtFailure(t *testing.T) {
	// Connector and service failures compose per equation (8)'s
	// decomposition.
	if got := ExtFailure(0, 0); got != 0 {
		t.Errorf("ExtFailure(0,0) = %g", got)
	}
	if got := ExtFailure(1, 0); got != 1 {
		t.Errorf("ExtFailure(1,0) = %g", got)
	}
	want := 1 - 0.9*0.7
	if got := ExtFailure(0.1, 0.3); !approxEq(got, want, 1e-15) {
		t.Errorf("ExtFailure = %g, want %g", got, want)
	}
}

func randomReqs(rng *rand.Rand, n int) []RequestFailure {
	reqs := make([]RequestFailure, n)
	for i := range reqs {
		reqs[i] = RequestFailure{Int: rng.Float64(), Ext: rng.Float64()}
	}
	return reqs
}

func TestCombineEmptyStateNeverFails(t *testing.T) {
	for _, comp := range []Completion{AND, OR} {
		f, err := CombineState(comp, NoSharing, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if f != 0 {
			t.Errorf("%v: empty state f = %g", comp, f)
		}
	}
}

func TestCombineANDNoSharingHand(t *testing.T) {
	// Equation (6) with two requests.
	reqs := []RequestFailure{{Int: 0.1, Ext: 0.2}, {Int: 0.05, Ext: 0.3}}
	f, err := CombineState(AND, NoSharing, 0, reqs)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - (0.9*0.8)*(0.95*0.7)
	if !approxEq(f, want, 1e-15) {
		t.Errorf("f = %g, want %g", f, want)
	}
}

func TestCombineORNoSharingHand(t *testing.T) {
	// Equation (7) with two requests.
	reqs := []RequestFailure{{Int: 0.1, Ext: 0.2}, {Int: 0.05, Ext: 0.3}}
	f, err := CombineState(OR, NoSharing, 0, reqs)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 - 0.9*0.8) * (1 - 0.95*0.7)
	if !approxEq(f, want, 1e-15) {
		t.Errorf("f = %g, want %g", f, want)
	}
}

func TestCombineORSharingHand(t *testing.T) {
	// Equation (12) with two requests.
	reqs := []RequestFailure{{Int: 0.1, Ext: 0.2}, {Int: 0.05, Ext: 0.3}}
	f, err := CombineState(OR, Sharing, 0, reqs)
	if err != nil {
		t.Fatal(err)
	}
	extOK := 0.8 * 0.7
	intFail := 0.1 * 0.05
	want := 1 - extOK*(1-intFail)
	if !approxEq(f, want, 1e-15) {
		t.Errorf("f = %g, want %g", f, want)
	}
}

// TestANDSharingInvariance verifies the paper's analytical identity: under
// the AND completion model, sharing does not change the state failure
// probability (eq. 6+8 == eq. 11+13).
func TestANDSharingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		reqs := randomReqs(rng, rng.Intn(7)+1)
		a, err1 := CombineState(AND, NoSharing, 0, reqs)
		b, err2 := CombineState(AND, Sharing, 0, reqs)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(a-b) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestORSharingPessimism verifies the qualitative claim of section 3.2:
// under the OR completion model, sharing can only hurt (the shared external
// service correlates the replicas' failures), so f_sharing >= f_nosharing.
func TestORSharingPessimism(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func() bool {
		reqs := randomReqs(rng, rng.Intn(7)+1)
		ns, err1 := CombineState(OR, NoSharing, 0, reqs)
		sh, err2 := CombineState(OR, Sharing, 0, reqs)
		if err1 != nil || err2 != nil {
			return false
		}
		return sh >= ns-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestORSharingDiffersFromNoSharing reproduces the paper's observation that
// (unlike AND) the two dependency models give different results for OR.
func TestORSharingDiffersFromNoSharing(t *testing.T) {
	reqs := []RequestFailure{{Int: 0.01, Ext: 0.3}, {Int: 0.01, Ext: 0.3}}
	ns, err := CombineState(OR, NoSharing, 0, reqs)
	if err != nil {
		t.Fatal(err)
	}
	sh, err := CombineState(OR, Sharing, 0, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ns-sh) < 1e-6 {
		t.Errorf("OR sharing (%g) ≈ no sharing (%g); expected a clear difference", sh, ns)
	}
}

// TestKOfNReducesToANDOR verifies the k-of-n generalization: K = n matches
// AND and K = 1 matches OR, under both dependency models.
func TestKOfNReducesToANDOR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, dep := range []Dependency{NoSharing, Sharing} {
		f := func() bool {
			n := rng.Intn(6) + 1
			reqs := randomReqs(rng, n)
			and, err := CombineState(AND, dep, 0, reqs)
			if err != nil {
				return false
			}
			kn, err := CombineState(KOfN, dep, n, reqs)
			if err != nil {
				return false
			}
			or, err := CombineState(OR, dep, 0, reqs)
			if err != nil {
				return false
			}
			k1, err := CombineState(KOfN, dep, 1, reqs)
			if err != nil {
				return false
			}
			return math.Abs(and-kn) < 1e-12 && math.Abs(or-k1) < 1e-12
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("dependency %v: %v", dep, err)
		}
	}
}

// TestKOfNMonotoneInK verifies that requiring more completions can only
// increase the failure probability.
func TestKOfNMonotoneInK(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, dep := range []Dependency{NoSharing, Sharing} {
		for trial := 0; trial < 200; trial++ {
			n := rng.Intn(6) + 2
			reqs := randomReqs(rng, n)
			prev := -1.0
			for k := 1; k <= n; k++ {
				f, err := CombineState(KOfN, dep, k, reqs)
				if err != nil {
					t.Fatal(err)
				}
				if f < prev-1e-12 {
					t.Fatalf("dep %v: f(K=%d) = %g < f(K=%d) = %g", dep, k, f, k-1, prev)
				}
				prev = f
			}
		}
	}
}

func TestCombineStateErrors(t *testing.T) {
	reqs := randomReqs(rand.New(rand.NewSource(5)), 3)
	if _, err := CombineState(KOfN, NoSharing, 0, reqs); !errors.Is(err, ErrBadCombine) {
		t.Errorf("K=0 error = %v", err)
	}
	if _, err := CombineState(KOfN, NoSharing, 4, reqs); !errors.Is(err, ErrBadCombine) {
		t.Errorf("K>n error = %v", err)
	}
	if _, err := CombineState(Completion(99), NoSharing, 0, reqs); !errors.Is(err, ErrBadCombine) {
		t.Errorf("bad completion error = %v", err)
	}
	if _, err := CombineState(AND, Dependency(99), 0, reqs); !errors.Is(err, ErrBadCombine) {
		t.Errorf("bad dependency error = %v", err)
	}
	bad := []RequestFailure{{Int: -0.1, Ext: 0.5}}
	if _, err := CombineState(AND, NoSharing, 0, bad); !errors.Is(err, ErrBadCombine) {
		t.Errorf("bad probability error = %v", err)
	}
}

// TestCombineProbabilityBounds is a property test: every combination is a
// probability.
func TestCombineProbabilityBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func() bool {
		n := rng.Intn(6) + 1
		reqs := randomReqs(rng, n)
		for _, comp := range []Completion{AND, OR} {
			for _, dep := range []Dependency{NoSharing, Sharing} {
				v, err := CombineState(comp, dep, 0, reqs)
				if err != nil || v < 0 || v > 1 {
					return false
				}
			}
		}
		k := rng.Intn(n) + 1
		for _, dep := range []Dependency{NoSharing, Sharing} {
			v, err := CombineState(KOfN, dep, k, reqs)
			if err != nil || v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestKOfNAgainstBruteForce cross-checks the Poisson-binomial DP against
// exhaustive enumeration over all 2^n outcomes.
func TestKOfNAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(5) + 1
		k := rng.Intn(n) + 1
		reqs := randomReqs(rng, n)
		got, err := CombineState(KOfN, NoSharing, k, reqs)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force: sum over all outcome masks with < k successes.
		var want float64
		for mask := 0; mask < (1 << n); mask++ {
			successes := 0
			p := 1.0
			for j := 0; j < n; j++ {
				ps := 1 - reqs[j].Total()
				if mask&(1<<j) != 0 {
					p *= ps
					successes++
				} else {
					p *= 1 - ps
				}
			}
			if successes < k {
				want += p
			}
		}
		if !approxEq(got, want, 1e-12) {
			t.Errorf("trial %d (n=%d k=%d): DP %g vs brute force %g", trial, n, k, got, want)
		}
	}
}
