package model

import (
	"fmt"

	"socrel/internal/expr"
)

// Additional connector families beyond the paper's Figure 2. Section 2
// observes that a connector "can also represent a complex architectural
// element carrying out tasks that are not limited to the mere transmission
// of some information, but could also include services such as security
// and fault-tolerance"; these constructors realize the fault-tolerance
// side using the completion and dependency models of section 3.2.

// RoleTransport is the role the fault-tolerance connectors delegate to:
// assemblies bind it to an underlying transport connector (e.g. an RPC
// connector), whose (ip, op) parameters are forwarded unchanged.
const RoleTransport = "transport"

// NewKOfNTransport builds a redundant transport connector: the request is
// sent over n transport channels and at least k must deliver it. With
// dependency NoSharing the channels are independent (true spatial
// redundancy); with Sharing they run over one shared channel (the paper's
// sharing model), in which case redundancy buys much less.
//
// NewKOfNTransport(name, n, 1, NoSharing) is a retry/failover connector;
// NewKOfNTransport(name, n, n, dep) degenerates to n sequential mandatory
// deliveries.

// MaxKOfNChannels bounds the redundancy degree a k-of-n transport (and
// hence a retry connector) may request. The state carries one request per
// channel and the completion model enumerates them, so an unbounded n
// turns a single constructor call into an effectively unbounded amount of
// work; real redundancy degrees are tiny by comparison.
const MaxKOfNChannels = 1024

func NewKOfNTransport(name string, n, k int, dep Dependency) (*Composite, error) {
	if n < 1 || k < 1 || k > n {
		return nil, fmt.Errorf("%w: k-of-n transport with n=%d k=%d", ErrInvalidService, n, k)
	}
	if n > MaxKOfNChannels {
		return nil, fmt.Errorf("%w: k-of-n transport with n=%d exceeds %d channels", ErrInvalidService, n, MaxKOfNChannels)
	}
	c := NewComposite(name, []string{"ip", "op"}, nil)
	completion := KOfN
	st, err := c.Flow().AddState("deliver", completion, dep)
	if err != nil {
		return nil, err
	}
	st.K = k
	for i := 0; i < n; i++ {
		st.AddRequest(Request{
			Role:   RoleTransport,
			Params: []expr.Expr{expr.Var("ip"), expr.Var("op")},
		})
	}
	if err := c.Flow().AddTransitionP(StartState, "deliver", 1); err != nil {
		return nil, err
	}
	if err := c.Flow().AddTransitionP("deliver", EndState, 1); err != nil {
		return nil, err
	}
	return c, nil
}

// NewRetry builds a fault-tolerance connector that makes up to attempts
// independent delivery attempts over the underlying transport, at least
// one of which must succeed. Under the fail-stop/no-repair model,
// independent sequential retries and independent parallel attempts have
// the same success probability, so this is the 1-of-n special case of
// NewKOfNTransport with independent channels.
func NewRetry(name string, attempts int) (*Composite, error) {
	return NewKOfNTransport(name, attempts, 1, NoSharing)
}

// NewQueue builds a store-and-forward (message queue) connector: the
// request travels client -> broker -> server and the response back, each
// hop paying marshaling (c operations per size unit, like RPC) and
// transmission (m bytes per size unit) on its own network segment.
//
// Roles: RoleClientCPU, RoleServerCPU, "brokercpu", "net1" (client side),
// "net2" (server side). Its software failure rate is zero, like the
// paper's LPC/RPC connectors.
func NewQueue(name string, c, m float64) (*Composite, error) {
	conn := NewComposite(name, []string{"ip", "op"}, Attrs{"c": c, "m": m})
	type leg struct {
		state string
		size  string // "ip" or "op"
		net   string
		from  string // cpu doing the marshal
		to    string // cpu doing the unmarshal
	}
	legs := []leg{
		{"toBroker", "ip", "net1", RoleClientCPU, RoleBrokerCPU},
		{"toServer", "ip", "net2", RoleBrokerCPU, RoleServerCPU},
		{"replyToBroker", "op", "net2", RoleServerCPU, RoleBrokerCPU},
		{"replyToClient", "op", "net1", RoleBrokerCPU, RoleClientCPU},
	}
	prev := StartState
	for _, l := range legs {
		st, err := conn.Flow().AddState(l.state, AND, NoSharing)
		if err != nil {
			return nil, err
		}
		procCost := expr.MustParse("c * " + l.size)
		st.AddRequest(Request{Role: l.from, Params: []expr.Expr{procCost}})
		st.AddRequest(Request{Role: l.net, Params: []expr.Expr{expr.MustParse("m * " + l.size)}})
		st.AddRequest(Request{Role: l.to, Params: []expr.Expr{procCost}})
		if err := conn.Flow().AddTransitionP(prev, l.state, 1); err != nil {
			return nil, err
		}
		prev = l.state
	}
	if err := conn.Flow().AddTransitionP(prev, EndState, 1); err != nil {
		return nil, err
	}
	return conn, nil
}

// Queue connector roles beyond the shared cpu roles.
const (
	// RoleBrokerCPU is the queue broker's processing role.
	RoleBrokerCPU = "brokercpu"
	// RoleNet1 is the client-to-broker network segment role.
	RoleNet1 = "net1"
	// RoleNet2 is the broker-to-server network segment role.
	RoleNet2 = "net2"
)
