package model

import (
	"errors"
	"math"
	"testing"

	"socrel/internal/expr"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestCPUFailureLaw(t *testing.T) {
	// Equation (1): Pfail(cpu, N) = 1 - exp(-lambda*N/s).
	cpu := NewCPU("cpu1", 1e9, 1e-4)
	p, err := cpu.Pfail([]float64{1e9})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Exp(-1e-4)
	if !approxEq(p, want, 1e-15) {
		t.Errorf("Pfail = %g, want %g", p, want)
	}
	// Zero work never fails.
	p, err = cpu.Pfail([]float64{0})
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("Pfail(0 ops) = %g, want 0", p)
	}
}

func TestNetworkFailureLaw(t *testing.T) {
	// Equation (2): Pfail(net, B) = 1 - exp(-beta*B/b).
	net := NewNetwork("net12", 1e6, 1e-2)
	p, err := net.Pfail([]float64{5e5})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Exp(-1e-2*0.5)
	if !approxEq(p, want, 1e-15) {
		t.Errorf("Pfail = %g, want %g", p, want)
	}
}

func TestPerfectAndConstant(t *testing.T) {
	loc := NewPerfect("loc1", "ip", "op")
	p, err := loc.Pfail([]float64{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("perfect Pfail = %g", p)
	}
	c := NewConstant("flaky", 0.25)
	p, err = c.Pfail(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.25 {
		t.Errorf("constant Pfail = %g", p)
	}
}

func TestPfailArity(t *testing.T) {
	cpu := NewCPU("cpu1", 1e9, 1e-4)
	if _, err := cpu.Pfail(nil); !errors.Is(err, ErrArity) {
		t.Errorf("error = %v, want ErrArity", err)
	}
	if _, err := cpu.Pfail([]float64{1, 2}); !errors.Is(err, ErrArity) {
		t.Errorf("error = %v, want ErrArity", err)
	}
}

func TestPfailClamped(t *testing.T) {
	s := NewSimple("weird", []string{"x"}, nil, expr.MustParse("x"))
	p, err := s.Pfail([]float64{42})
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Errorf("Pfail clamped = %g, want 1", p)
	}
	p, err = s.Pfail([]float64{-3})
	if err != nil {
		t.Fatal(err)
	}
	if p != 0 {
		t.Errorf("Pfail clamped = %g, want 0", p)
	}
}

func TestSimpleValidate(t *testing.T) {
	good := NewCPU("cpu1", 1e9, 1e-4)
	if err := good.Validate(); err != nil {
		t.Errorf("valid simple rejected: %v", err)
	}
	tests := []struct {
		name string
		s    *Simple
	}{
		{"empty name", NewSimple("", nil, nil, expr.Num(0))},
		{"nil law", NewSimple("x", nil, nil, nil)},
		{"unbound var", NewSimple("x", []string{"a"}, nil, expr.MustParse("a + ghost"))},
		{"duplicate formals", NewSimple("x", []string{"a", "a"}, nil, expr.Num(0))},
		{"empty formal", NewSimple("x", []string{""}, nil, expr.Num(0))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.s.Validate(); !errors.Is(err, ErrInvalidService) {
				t.Errorf("Validate = %v, want ErrInvalidService", err)
			}
		})
	}
}

func TestEnvShadowing(t *testing.T) {
	// Formal parameters shadow attributes of the same name.
	s := NewSimple("x", []string{"v"}, Attrs{"v": 99, "w": 7}, expr.MustParse("v + w"))
	env, err := Env(s, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if env["v"] != 1 || env["w"] != 7 {
		t.Errorf("env = %v", env)
	}
}

func TestFormalParamsCopied(t *testing.T) {
	s := NewCPU("cpu1", 1, 1)
	fp := s.FormalParams()
	fp[0] = "mutated"
	if s.FormalParams()[0] != "N" {
		t.Error("FormalParams aliases internal storage")
	}
}

func TestFlowConstruction(t *testing.T) {
	f := NewFlow()
	if f.State(StartState) == nil || f.State(EndState) == nil {
		t.Fatal("missing reserved states")
	}
	st, err := f.AddState("work", AND, NoSharing)
	if err != nil {
		t.Fatal(err)
	}
	st.AddRequest(Request{Role: "cpu", Params: []expr.Expr{expr.Num(5)}})
	if got := f.State("work"); got == nil || len(got.Requests) != 1 {
		t.Errorf("State(work) = %+v", got)
	}
	if err := f.AddTransitionP(StartState, "work", 1); err != nil {
		t.Fatal(err)
	}
	if err := f.AddTransitionP("work", EndState, 1); err != nil {
		t.Fatal(err)
	}
	if got := len(f.Transitions()); got != 2 {
		t.Errorf("Transitions = %d", got)
	}
	if got := len(f.States()); got != 3 {
		t.Errorf("States = %d", got)
	}
}

func TestFlowReservedAndDuplicateStates(t *testing.T) {
	f := NewFlow()
	for _, name := range []string{StartState, EndState, FailState} {
		if _, err := f.AddState(name, AND, NoSharing); !errors.Is(err, ErrInvalidService) {
			t.Errorf("AddState(%q) error = %v", name, err)
		}
	}
	if _, err := f.AddState("a", AND, NoSharing); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddState("a", OR, Sharing); !errors.Is(err, ErrInvalidService) {
		t.Errorf("duplicate AddState error = %v", err)
	}
}

func TestFlowTransitionErrors(t *testing.T) {
	f := NewFlow()
	if err := f.AddTransitionP("ghost", EndState, 1); !errors.Is(err, ErrInvalidService) {
		t.Errorf("error = %v", err)
	}
	if err := f.AddTransitionP(StartState, "ghost", 1); !errors.Is(err, ErrInvalidService) {
		t.Errorf("error = %v", err)
	}
	if err := f.AddTransitionP(EndState, StartState, 1); !errors.Is(err, ErrInvalidService) {
		t.Errorf("transition out of End error = %v", err)
	}
}

// buildValidComposite builds a minimal valid composite for validation tests.
func buildValidComposite(t *testing.T) *Composite {
	t.Helper()
	c := NewComposite("svc", []string{"n"}, Attrs{"phi": 1e-6})
	st, err := c.Flow().AddState("s1", AND, NoSharing)
	if err != nil {
		t.Fatal(err)
	}
	st.AddRequest(Request{
		Role:     "cpu",
		Params:   []expr.Expr{expr.MustParse("n * log2(n)")},
		Internal: SoftwareFailure(expr.Var("phi"), expr.MustParse("n * log2(n)")),
	})
	if err := c.Flow().AddTransitionP(StartState, "s1", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Flow().AddTransitionP("s1", EndState, 1); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompositeValidate(t *testing.T) {
	c := buildValidComposite(t)
	if err := c.Validate(); err != nil {
		t.Errorf("valid composite rejected: %v", err)
	}
	if got := c.Roles(); len(got) != 1 || got[0] != "cpu" {
		t.Errorf("Roles = %v", got)
	}
}

func TestCompositeValidateRejects(t *testing.T) {
	t.Run("start with requests", func(t *testing.T) {
		c := buildValidComposite(t)
		c.Flow().State(StartState).AddRequest(Request{Role: "cpu"})
		if err := c.Validate(); !errors.Is(err, ErrInvalidService) {
			t.Errorf("error = %v", err)
		}
	})
	t.Run("dangling state", func(t *testing.T) {
		c := buildValidComposite(t)
		if _, err := c.Flow().AddState("orphan", AND, NoSharing); err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); !errors.Is(err, ErrInvalidService) {
			t.Errorf("error = %v", err)
		}
	})
	t.Run("bad KofN", func(t *testing.T) {
		c := buildValidComposite(t)
		c.Flow().State("s1").Completion = KOfN
		c.Flow().State("s1").K = 5 // more than the single request
		if err := c.Validate(); !errors.Is(err, ErrInvalidService) {
			t.Errorf("error = %v", err)
		}
	})
	t.Run("no completion model", func(t *testing.T) {
		c := buildValidComposite(t)
		c.Flow().State("s1").Completion = 0
		if err := c.Validate(); !errors.Is(err, ErrInvalidService) {
			t.Errorf("error = %v", err)
		}
	})
	t.Run("no dependency model", func(t *testing.T) {
		c := buildValidComposite(t)
		c.Flow().State("s1").Dependency = 0
		if err := c.Validate(); !errors.Is(err, ErrInvalidService) {
			t.Errorf("error = %v", err)
		}
	})
	t.Run("unbound transition expr", func(t *testing.T) {
		c := buildValidComposite(t)
		if err := c.Flow().AddTransition("s1", EndState, expr.Var("ghost")); err != nil {
			t.Fatal(err)
		}
		if err := c.Validate(); !errors.Is(err, ErrInvalidService) {
			t.Errorf("error = %v", err)
		}
	})
	t.Run("unbound request param", func(t *testing.T) {
		c := buildValidComposite(t)
		c.Flow().State("s1").AddRequest(Request{Role: "cpu", Params: []expr.Expr{expr.Var("ghost")}})
		if err := c.Validate(); !errors.Is(err, ErrInvalidService) {
			t.Errorf("error = %v", err)
		}
	})
	t.Run("empty role", func(t *testing.T) {
		c := buildValidComposite(t)
		c.Flow().State("s1").AddRequest(Request{Role: ""})
		if err := c.Validate(); !errors.Is(err, ErrInvalidService) {
			t.Errorf("error = %v", err)
		}
	})
	t.Run("sharing with mixed roles", func(t *testing.T) {
		c := buildValidComposite(t)
		st := c.Flow().State("s1")
		st.Dependency = Sharing
		st.AddRequest(Request{Role: "other"})
		if err := c.Validate(); !errors.Is(err, ErrInvalidService) {
			t.Errorf("error = %v", err)
		}
	})
}

func TestLPCStructure(t *testing.T) {
	lpc, err := NewLPC("lpc", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := lpc.Validate(); err != nil {
		t.Errorf("LPC invalid: %v", err)
	}
	if got := lpc.FormalParams(); len(got) != 2 || got[0] != "ip" || got[1] != "op" {
		t.Errorf("FormalParams = %v", got)
	}
	if got := lpc.Roles(); len(got) != 1 || got[0] != RoleCPU {
		t.Errorf("Roles = %v", got)
	}
}

func TestRPCStructure(t *testing.T) {
	rpc, err := NewRPC("rpc", 10, 270)
	if err != nil {
		t.Fatal(err)
	}
	if err := rpc.Validate(); err != nil {
		t.Errorf("RPC invalid: %v", err)
	}
	roles := rpc.Roles()
	want := []string{RoleClientCPU, RoleNet, RoleServerCPU}
	if len(roles) != len(want) {
		t.Fatalf("Roles = %v, want %v", roles, want)
	}
	for i := range want {
		if roles[i] != want[i] {
			t.Fatalf("Roles = %v, want %v", roles, want)
		}
	}
	// Two working states with three requests each (Figure 2).
	var working int
	for _, st := range rpc.Flow().States() {
		if st.Name == StartState || st.Name == EndState {
			continue
		}
		working++
		if len(st.Requests) != 3 {
			t.Errorf("state %q has %d requests, want 3", st.Name, len(st.Requests))
		}
		if st.Completion != AND {
			t.Errorf("state %q completion = %v, want AND", st.Name, st.Completion)
		}
	}
	if working != 2 {
		t.Errorf("RPC has %d working states, want 2", working)
	}
}

func TestSoftwareFailure(t *testing.T) {
	// Equation (14): 1 - (1-phi)^N.
	e := SoftwareFailure(expr.Num(1e-3), expr.Var("N"))
	v, err := e.Eval(expr.Env{"N": 1000})
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - math.Pow(1-1e-3, 1000)
	if !approxEq(v, want, 1e-12) {
		t.Errorf("software failure = %g, want %g", v, want)
	}
}

func TestCompletionDependencyStrings(t *testing.T) {
	if AND.String() != "AND" || OR.String() != "OR" || KOfN.String() != "KofN" {
		t.Error("completion String() mismatch")
	}
	if NoSharing.String() != "NoSharing" || Sharing.String() != "Sharing" {
		t.Error("dependency String() mismatch")
	}
	if Completion(99).String() == "" || Dependency(99).String() == "" {
		t.Error("unknown enums must still render")
	}
}

func TestCompositeValidateConstantSums(t *testing.T) {
	// Constant transition probabilities that do not sum to one are caught
	// statically.
	c := buildValidComposite(t)
	if err := c.Flow().AddTransitionP("s1", EndState, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); !errors.Is(err, ErrInvalidService) {
		t.Errorf("error = %v, want ErrInvalidService for sum 1.5", err)
	}
	// A constant probability outside [0, 1] is caught too.
	c2 := buildValidComposite(t)
	if _, err := c2.Flow().AddState("s2", AND, NoSharing); err != nil {
		t.Fatal(err)
	}
	// Rewire: s1 -> s2 with probability 1.3 (and remove validity by
	// construction): build a fresh composite instead.
	c3 := NewComposite("bad", nil, nil)
	st, err := c3.Flow().AddState("s", AND, NoSharing)
	if err != nil {
		t.Fatal(err)
	}
	_ = st
	if err := c3.Flow().AddTransition(StartState, "s", expr.Num(1.3)); err != nil {
		t.Fatal(err)
	}
	if err := c3.Flow().AddTransitionP("s", EndState, 1); err != nil {
		t.Fatal(err)
	}
	if err := c3.Validate(); !errors.Is(err, ErrInvalidService) {
		t.Errorf("error = %v, want ErrInvalidService for P=1.3", err)
	}
	// Parameter-dependent probabilities defer the check to evaluation.
	c4 := NewComposite("deferred", []string{"q"}, nil)
	st4, err := c4.Flow().AddState("s", AND, NoSharing)
	if err != nil {
		t.Fatal(err)
	}
	_ = st4
	if err := c4.Flow().AddTransition(StartState, "s", expr.Var("q")); err != nil {
		t.Fatal(err)
	}
	if err := c4.Flow().AddTransitionP("s", EndState, 1); err != nil {
		t.Fatal(err)
	}
	if err := c4.Validate(); err != nil {
		t.Errorf("parametric transitions must not fail static validation: %v", err)
	}
	// Attribute-valued probabilities are resolved statically via Bind.
	c5 := NewComposite("attrprob", nil, Attrs{"q": 0.4})
	st5, err := c5.Flow().AddState("a", AND, NoSharing)
	if err != nil {
		t.Fatal(err)
	}
	_ = st5
	if _, err := c5.Flow().AddState("b", AND, NoSharing); err != nil {
		t.Fatal(err)
	}
	if err := c5.Flow().AddTransition(StartState, "a", expr.Var("q")); err != nil {
		t.Fatal(err)
	}
	if err := c5.Flow().AddTransition(StartState, "b", expr.MustParse("1 - q")); err != nil {
		t.Fatal(err)
	}
	if err := c5.Flow().AddTransitionP("a", EndState, 1); err != nil {
		t.Fatal(err)
	}
	if err := c5.Flow().AddTransitionP("b", EndState, 1); err != nil {
		t.Fatal(err)
	}
	if err := c5.Validate(); err != nil {
		t.Errorf("attribute-probability flow rejected: %v", err)
	}
}

func TestCompositeValidateDuplicateTransition(t *testing.T) {
	// Duplicate (from, to) edges are ambiguous (the engine would overwrite
	// where the simulator would sum), so validation rejects them.
	c := NewComposite("dup", nil, nil)
	if _, err := c.Flow().AddState("a", AND, NoSharing); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Flow().AddState("b", AND, NoSharing); err != nil {
		t.Fatal(err)
	}
	if err := c.Flow().AddTransitionP(StartState, "a", 0.3); err != nil {
		t.Fatal(err)
	}
	if err := c.Flow().AddTransitionP(StartState, "a", 0.3); err != nil {
		t.Fatal(err)
	}
	if err := c.Flow().AddTransitionP(StartState, "b", 0.4); err != nil {
		t.Fatal(err)
	}
	if err := c.Flow().AddTransitionP("a", EndState, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Flow().AddTransitionP("b", EndState, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); !errors.Is(err, ErrInvalidService) {
		t.Errorf("error = %v, want ErrInvalidService for duplicate edge", err)
	}
}
