package model_test

import (
	"fmt"

	"socrel/internal/model"
)

// ExampleNewCPU shows the closed-form failure law of equation (1).
func ExampleNewCPU() {
	cpu := model.NewCPU("cpu1", 1e9, 1e-4) // 1 GOPS, 1e-4 failures/s
	p, err := cpu.Pfail([]float64{5e9})    // five seconds of work
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("Pfail(cpu, 5e9 ops) = %.6f\n", p)
	// Output:
	// Pfail(cpu, 5e9 ops) = 0.000500
}

// ExampleCombineState compares the OR completion model with and without
// service sharing — the analytical centerpiece of section 3.2.
func ExampleCombineState() {
	// Three replicas, each with internal failure 0.01 and external
	// failure 0.2.
	reqs := []model.RequestFailure{
		{Int: 0.01, Ext: 0.2},
		{Int: 0.01, Ext: 0.2},
		{Int: 0.01, Ext: 0.2},
	}
	independent, err := model.CombineState(model.OR, model.NoSharing, 0, reqs)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	shared, err := model.CombineState(model.OR, model.Sharing, 0, reqs)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("independent replicas: f = %.6f\n", independent)
	fmt.Printf("shared service:       f = %.6f\n", shared)
	// Output:
	// independent replicas: f = 0.008999
	// shared service:       f = 0.488001
}

// ExampleNewRPC shows the Figure 2 RPC connector structure.
func ExampleNewRPC() {
	rpc, err := model.NewRPC("rpc", 10, 270)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("roles:", rpc.Roles())
	fmt.Println("params:", rpc.FormalParams())
	// Output:
	// roles: [clientcpu net servercpu]
	// params: [ip op]
}
