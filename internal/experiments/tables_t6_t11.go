package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/expr"
	"socrel/internal/hmm"
	"socrel/internal/markov"
	"socrel/internal/model"
	"socrel/internal/perf"
	"socrel/internal/registry"
	"socrel/internal/sensitivity"
)

// SyntheticAssembly builds a layered assembly for scalability studies:
// depth levels of composite services, each with statesPerFlow sequential
// states, each state issuing width requests to the next level down; the
// bottom level is a single cpu resource. The root service is named
// "L<depth>" and takes one parameter n that propagates to every cpu call.
func SyntheticAssembly(depth, width, statesPerFlow int) (*assembly.Assembly, string, error) {
	asm := assembly.New(fmt.Sprintf("synthetic-d%d-w%d-s%d", depth, width, statesPerFlow))
	if err := asm.AddService(model.NewCPU("L0", 1e9, 1e-9)); err != nil {
		return nil, "", err
	}
	for level := 1; level <= depth; level++ {
		name := fmt.Sprintf("L%d", level)
		callee := fmt.Sprintf("L%d", level-1)
		comp := model.NewComposite(name, []string{"n"}, nil)
		prev := model.StartState
		for s := 0; s < statesPerFlow; s++ {
			stName := fmt.Sprintf("s%d", s)
			st, err := comp.Flow().AddState(stName, model.AND, model.NoSharing)
			if err != nil {
				return nil, "", err
			}
			for wi := 0; wi < width; wi++ {
				st.AddRequest(model.Request{
					Role:   callee,
					Params: []expr.Expr{expr.Var("n")},
				})
			}
			if err := comp.Flow().AddTransitionP(prev, stName, 1); err != nil {
				return nil, "", err
			}
			prev = stName
		}
		if err := comp.Flow().AddTransitionP(prev, model.EndState, 1); err != nil {
			return nil, "", err
		}
		if err := asm.AddService(comp); err != nil {
			return nil, "", err
		}
	}
	root := fmt.Sprintf("L%d", depth)
	if err := asm.Validate(); err != nil {
		return nil, "", err
	}
	return asm, root, nil
}

// RetryAssembly builds the recursive retry architecture of experiment T9:
// service "a" calls a leaf with failure probability pf and, with
// probability r, re-invokes itself. Its exact unreliability satisfies
// x = pf / (1 - r(1-pf)).
func RetryAssembly(pf, r float64) (*assembly.Assembly, error) {
	asm := assembly.New("retry")
	if err := asm.AddService(model.NewConstant("leaf", pf)); err != nil {
		return nil, err
	}
	c := model.NewComposite("a", nil, nil)
	work, err := c.Flow().AddState("work", model.AND, model.NoSharing)
	if err != nil {
		return nil, err
	}
	work.AddRequest(model.Request{Role: "leaf"})
	retry, err := c.Flow().AddState("retry", model.AND, model.NoSharing)
	if err != nil {
		return nil, err
	}
	retry.AddRequest(model.Request{Role: "a"})
	for _, e := range []struct {
		from, to string
		p        float64
	}{
		{model.StartState, "work", 1},
		{"work", "retry", r},
		{"work", model.EndState, 1 - r},
		{"retry", model.EndState, 1},
	} {
		if err := c.Flow().AddTransitionP(e.from, e.to, e.p); err != nil {
			return nil, err
		}
	}
	if err := asm.AddService(c); err != nil {
		return nil, err
	}
	return asm, nil
}

// T6Scalability measures evaluation wall time against flow size and
// recursion depth on synthetic layered assemblies.
func T6Scalability() (*Table, error) {
	t := &Table{
		ID:      "T6",
		Title:   "engine evaluation time on synthetic layered assemblies",
		Columns: []string{"depth", "width", "states/flow", "total flow states", "eval time"},
	}
	for _, cfg := range []struct{ depth, width, states int }{
		{1, 2, 10}, {2, 2, 10}, {4, 2, 10}, {8, 2, 10},
		{2, 2, 50}, {2, 2, 200}, {2, 2, 400},
		{4, 8, 20},
	} {
		asm, root, err := SyntheticAssembly(cfg.depth, cfg.width, cfg.states)
		if err != nil {
			return nil, err
		}
		ev := core.New(asm, core.Options{})
		start := time.Now()
		if _, err := ev.Pfail(root, 1e6); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		t.AddRow(cfg.depth, cfg.width, cfg.states, cfg.depth*cfg.states,
			elapsed.Round(time.Microsecond).String())
	}
	t.Notes = "memoization makes cost linear in distinct (service, parameters) invocations; per-flow cost is the absorbing-chain solve"
	return t, nil
}

// T7Performance mirrors Figure 6 in the time domain using the Markov
// reward extension: expected execution time of both assemblies.
func T7Performance() (*Table, error) {
	t := &Table{
		ID:      "T7",
		Title:   "expected execution time (s), local vs remote (performance QoS extension)",
		Columns: []string{"list", "local E[T]", "remote E[T]", "remote/local"},
	}
	p := assembly.DefaultPaperParams()
	local, err := assembly.LocalAssembly(p)
	if err != nil {
		return nil, err
	}
	remote, err := assembly.RemoteAssembly(p)
	if err != nil {
		return nil, err
	}
	profLocal := perf.New(local)
	if err := profLocal.UseCanonicalCosts(local.ServiceNames()); err != nil {
		return nil, err
	}
	profRemote := perf.New(remote)
	if err := profRemote.UseCanonicalCosts(remote.ServiceNames()); err != nil {
		return nil, err
	}
	for _, list := range figure6Lists() {
		tl, err := profLocal.ExpectedTime("search", 1, list, 1)
		if err != nil {
			return nil, err
		}
		tr, err := profRemote.ExpectedTime("search", 1, list, 1)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("2^%d", int(math.Log2(list))),
			fmt.Sprintf("%.3e", tl), fmt.Sprintf("%.3e", tr),
			fmt.Sprintf("%.3g", tr/tl))
	}
	t.Notes = "the remote assembly pays RPC marshaling and transmission on every sorted invocation; the ratio shrinks as sort cost (n log n) dominates transport (linear in n)"
	return t, nil
}

// T8KofN explores the k-out-of-n completion model the paper names but does
// not analyze, under both dependency models.
func T8KofN() (*Table, error) {
	t := &Table{
		ID:      "T8",
		Title:   "k-of-n completion over 5 replicas (Pint=0.01, Pext=0.2)",
		Columns: []string{"k", "f no-sharing", "f sharing", "sharing penalty factor"},
	}
	reqs := make([]model.RequestFailure, 5)
	for i := range reqs {
		reqs[i] = model.RequestFailure{Int: 0.01, Ext: 0.2}
	}
	for k := 1; k <= 5; k++ {
		ns, err := model.CombineState(model.KOfN, model.NoSharing, k, reqs)
		if err != nil {
			return nil, err
		}
		sh, err := model.CombineState(model.KOfN, model.Sharing, k, reqs)
		if err != nil {
			return nil, err
		}
		factor := math.Inf(1)
		if ns > 0 {
			factor = sh / ns
		}
		t.AddRow(k, fmt.Sprintf("%.4e", ns), fmt.Sprintf("%.4e", sh), fmt.Sprintf("%.3g", factor))
	}
	t.Notes = "k=5 matches AND (sharing-invariant); k=1 matches OR; intermediate thresholds interpolate, and sharing erases most of the benefit of any k < n"
	return t, nil
}

// T9FixedPoint studies the fixed-point extension on recursive (retrying)
// assemblies across coupling strengths.
func T9FixedPoint() (*Table, error) {
	t := &Table{
		ID:      "T9",
		Title:   "fixed-point evaluation of a recursive retry assembly (leaf Pfail=0.1)",
		Columns: []string{"retry prob r", "fixed-point Pfail", "analytic pf/(1-r(1-pf))", "abs error"},
	}
	const pf = 0.1
	var worst float64
	for _, r := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		asm, err := RetryAssembly(pf, r)
		if err != nil {
			return nil, err
		}
		ev := core.New(asm, core.Options{Cycles: core.CycleFixedPoint})
		got, err := ev.Pfail("a")
		if err != nil {
			return nil, err
		}
		want := pf / (1 - r*(1-pf))
		e := math.Abs(got - want)
		if e > worst {
			worst = e
		}
		t.AddRow(r, fmt.Sprintf("%.9f", got), fmt.Sprintf("%.9f", want), fmt.Sprintf("%.2e", e))
	}
	t.Notes = fmt.Sprintf("the least-fixed-point iteration the paper proposes as future work converges to the exact solution (worst error %.2e)", worst)
	return t, nil
}

// T10TraceFitting estimates the search usage profile from observed flow
// traces and measures the induced reliability prediction error as traces
// accumulate.
func T10TraceFitting() (*Table, error) {
	t := &Table{
		ID:      "T10",
		Title:   "usage-profile estimation from traces: reliability error vs trace count",
		Columns: []string{"traces", "estimated q", "|q_hat - q|", "|R_hat - R|"},
	}
	p := assembly.DefaultPaperParams()
	p.Gamma = 5e-2

	// Ground truth: the remote assembly's reliability with the true q.
	asm, err := assembly.RemoteAssembly(p)
	if err != nil {
		return nil, err
	}
	truth, err := core.New(asm, core.Options{}).Reliability("search", 1, 4096, 1)
	if err != nil {
		return nil, err
	}

	// Observable behavior: the search flow without failure structure.
	flowChain := markov.New()
	if err := flowChain.SetTransition("Start", "sort", p.Q); err != nil {
		return nil, err
	}
	if err := flowChain.SetTransition("Start", "lookup", 1-p.Q); err != nil {
		return nil, err
	}
	if err := flowChain.SetTransition("sort", "lookup", 1); err != nil {
		return nil, err
	}
	if err := flowChain.SetTransition("lookup", "End", 1); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(99))
	for _, n := range []int{10, 100, 1000, 10000} {
		traces := make([][]string, n)
		for i := range traces {
			w, err := flowChain.Walk(rng, "Start", 100)
			if err != nil {
				return nil, err
			}
			traces[i] = w
		}
		est, err := hmm.EstimateChain(traces)
		if err != nil {
			return nil, err
		}
		qHat := est.Transition("Start", "sort")
		pHat := p
		pHat.Q = qHat
		asmHat, err := assembly.RemoteAssembly(pHat)
		if err != nil {
			return nil, err
		}
		rHat, err := core.New(asmHat, core.Options{}).Reliability("search", 1, 4096, 1)
		if err != nil {
			return nil, err
		}
		t.AddRow(n, fmt.Sprintf("%.4f", qHat),
			fmt.Sprintf("%.2e", math.Abs(qHat-p.Q)),
			fmt.Sprintf("%.2e", math.Abs(rHat-truth)))
	}
	t.Notes = "reliability prediction error tracks the O(1/sqrt(n)) usage-profile estimation error — the imperfect-knowledge setting the paper cites [16] (HMMs) for"
	return t, nil
}

// T11Selection verifies that reliability-driven provider selection flips
// exactly where the Figure 6 curves cross.
func T11Selection() (*Table, error) {
	t := &Table{
		ID:      "T11",
		Title:   "registry selection between sort1(lpc) and sort2(rpc) vs closed-form winner",
		Columns: []string{"phi1", "gamma", "list", "selected", "closed-form winner", "match"},
	}
	candidates := []registry.Candidate{
		{Provider: "sort1", Connector: "lpc"},
		{Provider: "sort2", Connector: "rpc"},
	}
	lists, err := sensitivity.PowersOfTwo(6, 18)
	if err != nil {
		return nil, err
	}
	allMatch := true
	for _, phi1 := range assembly.Figure6Phi1 {
		for _, gamma := range []float64{5e-3, 2.5e-2} {
			p := assembly.DefaultPaperParams()
			p.Phi1, p.Gamma = phi1, gamma
			asm, err := combinedAssembly(p)
			if err != nil {
				return nil, err
			}
			for _, list := range []float64{lists[0], lists[len(lists)/2], lists[len(lists)-1]} {
				sel, err := registry.SelectBinding(asm, "search", "sort", candidates,
					core.Options{}, "search", 1, list, 1)
				if err != nil {
					return nil, err
				}
				want := "sort1"
				if assembly.ClosedFormSearch(p, true, 1, list, 1) <
					assembly.ClosedFormSearch(p, false, 1, list, 1) {
					want = "sort2"
				}
				match := sel.Candidate.Provider == want
				if !match {
					allMatch = false
				}
				t.AddRow(fmt.Sprintf("%.0e", phi1), fmt.Sprintf("%.1e", gamma),
					fmt.Sprintf("2^%d", int(math.Log2(list))),
					sel.Candidate.Provider, want, match)
			}
		}
	}
	verdict := "selection agrees with the closed-form ranking at every grid point"
	if !allMatch {
		verdict = "WARNING: selection disagreed with the closed-form ranking somewhere"
	}
	t.Notes = verdict
	return t, nil
}

// combinedAssembly contains both sort providers and both connectors so the
// selection can switch between them.
func combinedAssembly(p assembly.PaperParams) (*assembly.Assembly, error) {
	local, err := assembly.LocalAssembly(p)
	if err != nil {
		return nil, err
	}
	remote, err := assembly.RemoteAssembly(p)
	if err != nil {
		return nil, err
	}
	asm := local.Clone("combined")
	for _, name := range []string{"sort2", "rpc", "cpu2", "net12"} {
		svc, err := remote.ServiceByName(name)
		if err != nil {
			return nil, err
		}
		if err := asm.AddService(svc); err != nil {
			return nil, err
		}
	}
	asm.AddBinding("sort2", "cpu", "cpu2", "")
	asm.AddBinding("rpc", model.RoleClientCPU, "cpu1", "")
	asm.AddBinding("rpc", model.RoleServerCPU, "cpu2", "")
	asm.AddBinding("rpc", model.RoleNet, "net12", "")
	return asm, nil
}
