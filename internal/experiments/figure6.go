package experiments

import (
	"fmt"
	"math"

	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/sensitivity"
)

// figure6Lists returns the list sizes of the Figure 6 sweep: powers of two
// from 2^4 to 2^20.
func figure6Lists() []float64 {
	xs, err := sensitivity.PowersOfTwo(4, 20)
	if err != nil {
		panic(err) // static range, cannot fail
	}
	return xs
}

// Figure6Series computes the curves of Figure 6 with the parametric
// engine: one local series per phi1 value and one remote series per gamma
// value (the local assembly does not depend on gamma, nor the remote one
// on phi1, matching the paper's figure layout). Each curve is one
// core.PfailBatchCtx call against a CompileParametric assembly — the chain
// is solved symbolically once per assembly and the full list-size grid is
// then pure closed-form evaluation.
func Figure6Series() ([]sensitivity.Series, error) {
	lists := figure6Lists()
	var out []sensitivity.Series
	frame := func(list float64) []float64 { return []float64{1, list, 1} }

	for _, phi1 := range assembly.Figure6Phi1 {
		p := assembly.DefaultPaperParams()
		p.Phi1 = phi1
		asm, err := assembly.LocalAssembly(p)
		if err != nil {
			return nil, err
		}
		ca, err := core.CompileParametric(asm, core.Options{}, core.ParametricOptions{}, "search")
		if err != nil {
			return nil, err
		}
		s, err := sensitivity.SweepBatch(
			fmt.Sprintf("local phi1=%.0e", phi1), lists,
			sensitivity.CompiledReliabilityBatch(ca, "search", frame))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}

	for _, gamma := range assembly.Figure6Gamma {
		p := assembly.DefaultPaperParams()
		p.Gamma = gamma
		asm, err := assembly.RemoteAssembly(p)
		if err != nil {
			return nil, err
		}
		ca, err := core.CompileParametric(asm, core.Options{}, core.ParametricOptions{}, "search")
		if err != nil {
			return nil, err
		}
		s, err := sensitivity.SweepBatch(
			fmt.Sprintf("remote gamma=%.1e", gamma), lists,
			sensitivity.CompiledReliabilityBatch(ca, "search", frame))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Figure6 renders the Figure 6 series as a table (one row per list size,
// one column per curve) and summarizes the crossover structure in the
// notes.
func Figure6() (*Table, error) {
	series, err := Figure6Series()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "F6",
		Title: "search-service reliability, local vs remote assembly (engine-computed)",
	}
	t.Columns = append(t.Columns, "list")
	for _, s := range series {
		t.Columns = append(t.Columns, s.Name)
	}
	for i := range figure6Lists() {
		row := make([]any, 0, len(series)+1)
		row = append(row, fmt.Sprintf("2^%d", 4+i))
		for _, s := range series {
			row = append(row, fmt.Sprintf("%.9f", s.Points[i].Y))
		}
		t.AddRow(row...)
	}
	t.Notes = figure6CrossoverSummary()
	return t, nil
}

// figure6CrossoverSummary reports, per (phi1, gamma), whether the remote
// assembly meaningfully wins anywhere in the plotted range and where it
// first overtakes the local one — the qualitative content of the paper's
// discussion of Figure 6. "Meaningfully" excludes the saturated tail where
// both curves have flattened to the 1-q floor and differ only by float
// noise; a reliability margin below margin is treated as a tie.
func figure6CrossoverSummary() string {
	const margin = 1e-6
	var sb []string
	for _, phi1 := range assembly.Figure6Phi1 {
		for _, gamma := range assembly.Figure6Gamma {
			p := assembly.DefaultPaperParams()
			p.Phi1, p.Gamma = phi1, gamma
			firstWin := math.NaN()
			remoteEverWorse := false
			for _, l := range figure6Lists() {
				lv := assembly.ClosedFormSearch(p, false, 1, l, 1)
				rv := assembly.ClosedFormSearch(p, true, 1, l, 1)
				if rv < lv-margin && math.IsNaN(firstWin) {
					firstWin = l
				}
				if rv > lv+margin {
					remoteEverWorse = true
				}
			}
			switch {
			case math.IsNaN(firstWin):
				sb = append(sb, fmt.Sprintf("phi1=%.0e gamma=%.1e: local wins everywhere in range",
					phi1, gamma))
			case !remoteEverWorse:
				sb = append(sb, fmt.Sprintf("phi1=%.0e gamma=%.1e: remote wins everywhere in range",
					phi1, gamma))
			default:
				sb = append(sb, fmt.Sprintf("phi1=%.0e gamma=%.1e: remote overtakes local at list≈2^%.0f",
					phi1, gamma, math.Log2(firstWin)))
			}
		}
	}
	out := ""
	for i, s := range sb {
		if i > 0 {
			out += "; "
		}
		out += s
	}
	return out
}
