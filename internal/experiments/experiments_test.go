package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"socrel/internal/core"
)

func TestAllGeneratorsRun(t *testing.T) {
	for _, g := range All() {
		g := g
		t.Run(g.ID, func(t *testing.T) {
			if g.ID == "T4" && testing.Short() {
				t.Skip("Monte Carlo experiment skipped in -short mode")
			}
			table, err := g.Run()
			if err != nil {
				t.Fatalf("%s: %v", g.ID, err)
			}
			if table.ID != g.ID {
				t.Errorf("table ID = %q, want %q", table.ID, g.ID)
			}
			if len(table.Rows) == 0 {
				t.Error("no rows")
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Columns) {
					t.Errorf("row width %d != %d columns", len(row), len(table.Columns))
				}
			}
			var buf bytes.Buffer
			if err := table.Render(&buf); err != nil {
				t.Fatal(err)
			}
			if !strings.Contains(buf.String(), g.ID) {
				t.Error("render missing ID")
			}
			buf.Reset()
			if err := table.CSV(&buf); err != nil {
				t.Fatal(err)
			}
			if lines := strings.Count(buf.String(), "\n"); lines != len(table.Rows)+1 {
				t.Errorf("CSV has %d lines, want %d", lines, len(table.Rows)+1)
			}
			if strings.Contains(table.Notes, "WARNING") {
				t.Errorf("%s reported a verification warning: %s", g.ID, table.Notes)
			}
		})
	}
}

func TestByID(t *testing.T) {
	if g, ok := ByID("f6"); !ok || g.ID != "F6" {
		t.Errorf("ByID(f6) = %+v, %v", g, ok)
	}
	if _, ok := ByID("T99"); ok {
		t.Error("ByID(T99) should fail")
	}
}

func TestFigure6SeriesShape(t *testing.T) {
	series, err := Figure6Series()
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 6 { // 2 local curves + 4 remote curves
		t.Fatalf("series = %d, want 6", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 17 { // 2^4..2^20
			t.Errorf("%s has %d points, want 17", s.Name, len(s.Points))
		}
		// Reliability decreases with list size within every curve.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y > s.Points[i-1].Y+1e-12 {
				t.Errorf("%s not monotone at %g", s.Name, s.Points[i].X)
				break
			}
		}
		for _, pt := range s.Points {
			if pt.Y < 0 || pt.Y > 1 || math.IsNaN(pt.Y) {
				t.Errorf("%s has invalid reliability %g", s.Name, pt.Y)
			}
		}
	}
}

func TestSyntheticAssembly(t *testing.T) {
	asm, root, err := SyntheticAssembly(3, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if root != "L3" {
		t.Errorf("root = %q", root)
	}
	if err := asm.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := core.New(asm, core.Options{}).Pfail(root, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p >= 1 {
		t.Errorf("Pfail = %g", p)
	}
	// Deeper assemblies are less reliable (more cpu exposure).
	asm2, root2, err := SyntheticAssembly(4, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := core.New(asm2, core.Options{}).Pfail(root2, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if p2 <= p {
		t.Errorf("depth 4 Pfail %g should exceed depth 3 Pfail %g", p2, p)
	}
}

func TestRetryAssembly(t *testing.T) {
	asm, err := RetryAssembly(0.2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.New(asm, core.Options{Cycles: core.CycleFixedPoint}).Pfail("a")
	if err != nil {
		t.Fatal(err)
	}
	want := 0.2 / (1 - 0.5*0.8)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Pfail = %g, want %g", got, want)
	}
}

func TestTableAddRowFormatting(t *testing.T) {
	tb := &Table{Columns: []string{"a", "b", "c"}}
	tb.AddRow(1.23456789, "text", 42)
	if tb.Rows[0][0] != "1.23457" || tb.Rows[0][1] != "text" || tb.Rows[0][2] != "42" {
		t.Errorf("row = %v", tb.Rows[0])
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := &Table{Columns: []string{"x"}, Rows: [][]string{{`hello, "world"`}}}
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"hello, ""world"""`) {
		t.Errorf("CSV = %q", buf.String())
	}
}
