package experiments

import (
	"fmt"
	"strings"

	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/model"
	"socrel/internal/registry"
	"socrel/internal/sensitivity"
)

// T14Exploration enumerates a two-dimensional design space for the search
// application — sort provider x connector — and ranks every configuration
// by predicted reliability, the "different architectural alternatives"
// comparison section 2 motivates.
func T14Exploration() (*Table, error) {
	t := &Table{
		ID:      "T14",
		Title:   "design-space exploration: sort provider x transport, ranked by predicted reliability (gamma=5e-3, list=65536)",
		Columns: []string{"rank", "sort binding", "predicted R"},
	}
	p := assembly.DefaultPaperParams()
	asm, err := combinedAssembly(p)
	if err != nil {
		return nil, err
	}
	// Add a retried RPC as a third transport option for the remote sort.
	retry, err := newRetryOverRPC(asm)
	if err != nil {
		return nil, err
	}
	choices := []registry.Choice{{
		Caller: "search",
		Role:   "sort",
		Candidates: []registry.Candidate{
			{Provider: "sort1", Connector: "lpc"},
			{Provider: "sort2", Connector: "rpc"},
			{Provider: "sort2", Connector: retry},
		},
	}}
	configs, err := registry.Explore(asm, choices, registry.ExploreOptions{}, "search", 1, 65536, 1)
	if err != nil {
		return nil, err
	}
	for i, cfg := range configs {
		var names []string
		for _, pick := range cfg.Picks {
			names = append(names, pick.Provider+" via "+pick.Connector)
		}
		t.AddRow(i+1, strings.Join(names, ", "), fmt.Sprintf("%.6f", cfg.Reliability))
	}
	t.Notes = "the retried RPC promotes the remote sort past the local one at this workload — an alternative invisible to per-provider reliability numbers alone"
	return t, nil
}

func newRetryOverRPC(asm *assembly.Assembly) (string, error) {
	r, err := model.NewRetry("retry3", 3)
	if err != nil {
		return "", err
	}
	if err := asm.AddService(r); err != nil {
		return "", err
	}
	asm.AddBinding(r.Name(), "transport", "rpc", "")
	return r.Name(), nil
}

// T15Uncertainty propagates order-of-magnitude uncertainty in the network
// failure rate through the remote assembly's prediction — the honest way
// to report a prediction whose inputs are rough estimates.
func T15Uncertainty() (*Table, error) {
	t := &Table{
		ID:      "T15",
		Title:   "uncertainty bands: remote search reliability with gamma ~ LogUniform[5e-3, 5e-2] (5000 draws)",
		Columns: []string{"list", "mean R", "std dev", "5% quantile", "median", "95% quantile"},
	}
	for _, list := range []float64{256, 4096, 65536} {
		f := func(params map[string]float64) (float64, error) {
			p := assembly.DefaultPaperParams()
			p.Gamma = params["gamma"]
			asm, err := assembly.RemoteAssembly(p)
			if err != nil {
				return 0, err
			}
			return core.New(asm, core.Options{}).Reliability("search", 1, list, 1)
		}
		res, err := sensitivity.Uncertainty(f, map[string]sensitivity.Dist{
			"gamma": {Kind: sensitivity.DistLogUniform, A: 5e-3, B: 5e-2},
		}, 5000, 11)
		if err != nil {
			return nil, err
		}
		t.AddRow(int(list),
			fmt.Sprintf("%.4f", res.Mean), fmt.Sprintf("%.4f", res.StdDev),
			fmt.Sprintf("%.4f", res.Q05), fmt.Sprintf("%.4f", res.Median),
			fmt.Sprintf("%.4f", res.Q95))
	}
	t.Notes = "with gamma known only to an order of magnitude, the prediction for large lists spans most of [0.1, 0.95] — selection should use the quantiles, not the point estimate"
	return t, nil
}
