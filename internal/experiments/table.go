// Package experiments regenerates every table and figure of the
// reproduction: the paper's Figure 6 plus the derived and extension
// experiments indexed in DESIGN.md (T1-T16). Each experiment returns a
// Table that renders as aligned text or CSV; cmd/experiments prints them
// and the root bench suite times them.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result: a titled grid of formatted cells.
type Table struct {
	// ID is the experiment identifier from DESIGN.md (F6, T1, ...).
	ID string
	// Title is a one-line description.
	Title string
	// Columns holds the header cells.
	Columns []string
	// Rows holds the data cells, one slice per row.
	Rows [][]string
	// Notes carries the experiment's outcome summary (the
	// paper-vs-measured verdict recorded in EXPERIMENTS.md).
	Notes string
}

// AddRow appends a formatted row; values are formatted with %v, floats
// with %.6g.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.6g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	if t.Notes != "" {
		if _, err := fmt.Fprintf(w, "note: %s\n", t.Notes); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as comma-separated values (cells containing commas
// are quoted).
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if strings.ContainsAny(cell, ",\"\n") {
				parts[i] = `"` + strings.ReplaceAll(cell, `"`, `""`) + `"`
			} else {
				parts[i] = cell
			}
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Generator produces one experiment table.
type Generator struct {
	ID   string
	Name string
	Run  func() (*Table, error)
}

// All returns the registered experiment generators in index order.
func All() []Generator {
	return []Generator{
		{"F6", "Figure 6: local vs remote reliability", Figure6},
		{"T1", "closed-form agreement", T1ClosedFormAgreement},
		{"T2", "AND sharing invariance", T2ANDSharing},
		{"T3", "OR sharing divergence", T3ORSharing},
		{"T4", "Monte Carlo validation", T4MonteCarlo},
		{"T5", "baseline ablation", T5BaselineAblation},
		{"T6", "engine scalability", T6Scalability},
		{"T7", "performance extension", T7Performance},
		{"T8", "k-of-n completion", T8KofN},
		{"T9", "fixed-point recursion", T9FixedPoint},
		{"T10", "usage-profile estimation", T10TraceFitting},
		{"T11", "reliability-driven selection", T11Selection},
		{"T12", "error propagation extension", T12ErrorPropagation},
		{"T13", "fault-tolerant connectors", T13FaultTolerantConnectors},
		{"T14", "design-space exploration", T14Exploration},
		{"T15", "uncertainty propagation", T15Uncertainty},
		{"T16", "response-time distribution", T16ResponseTimes},
	}
}

// ByID returns the generator with the given ID.
func ByID(id string) (Generator, bool) {
	for _, g := range All() {
		if strings.EqualFold(g.ID, id) {
			return g, true
		}
	}
	return Generator{}, false
}
