package experiments

import (
	"fmt"

	"socrel/internal/assembly"
	"socrel/internal/perf"
	"socrel/internal/sim"
)

// T16ResponseTimes extends the performance QoS dimension (T7) from
// expectations to distributions: simulated response-time percentiles of
// both assemblies, with the simulated mean cross-checked against the
// analytic Markov-reward expectation.
func T16ResponseTimes() (*Table, error) {
	t := &Table{
		ID:      "T16",
		Title:   "simulated response-time distribution (s), 20000 successful-run samples (list=4096)",
		Columns: []string{"assembly", "analytic E[T]", "sim mean", "P50", "P95", "P99", "mean rel. error"},
	}
	for _, tc := range []struct {
		name  string
		build func(assembly.PaperParams) (*assembly.Assembly, error)
	}{
		{"local", assembly.LocalAssembly},
		{"remote", assembly.RemoteAssembly},
	} {
		p := assembly.DefaultPaperParams()
		asm, err := tc.build(p)
		if err != nil {
			return nil, err
		}
		prof := perf.New(asm)
		if err := prof.UseCanonicalCosts(asm.ServiceNames()); err != nil {
			return nil, err
		}
		analytic, err := prof.ExpectedTime("search", 1, 4096, 1)
		if err != nil {
			return nil, err
		}
		s := sim.New(asm, sim.Options{Seed: 21})
		est, err := s.EstimateTime(prof, "search", 20000, 1, 4096, 1)
		if err != nil {
			return nil, err
		}
		relErr := 0.0
		if analytic > 0 {
			relErr = (est.Mean - analytic) / analytic
			if relErr < 0 {
				relErr = -relErr
			}
		}
		t.AddRow(tc.name,
			fmt.Sprintf("%.4e", analytic), fmt.Sprintf("%.4e", est.Mean),
			fmt.Sprintf("%.4e", est.P50), fmt.Sprintf("%.4e", est.P95),
			fmt.Sprintf("%.4e", est.P99), fmt.Sprintf("%.2f%%", 100*relErr))
	}
	t.Notes = "the q-branch makes the distribution bimodal (the 1-q no-sort runs are orders of magnitude faster); percentiles expose what the Markov-reward expectation averages away"
	return t, nil
}
