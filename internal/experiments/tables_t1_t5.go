package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"socrel/internal/assembly"
	"socrel/internal/baseline"
	"socrel/internal/core"
	"socrel/internal/model"
	"socrel/internal/sim"
)

// T1ClosedFormAgreement compares the generic engine against the symbolic
// closed forms (15)-(22) of section 4 over the Figure 6 parameter grid.
func T1ClosedFormAgreement() (*Table, error) {
	t := &Table{
		ID:      "T1",
		Title:   "generic engine vs closed forms (15)-(22), max |error| per configuration",
		Columns: []string{"assembly", "phi1", "gamma", "max |engine - closed form|"},
	}
	var worst float64
	for _, phi1 := range assembly.Figure6Phi1 {
		for _, gamma := range assembly.Figure6Gamma {
			p := assembly.DefaultPaperParams()
			p.Phi1, p.Gamma = phi1, gamma
			for _, remote := range []bool{false, true} {
				var asm *assembly.Assembly
				var err error
				name := "local"
				if remote {
					name = "remote"
					asm, err = assembly.RemoteAssembly(p)
				} else {
					asm, err = assembly.LocalAssembly(p)
				}
				if err != nil {
					return nil, err
				}
				ev := core.New(asm, core.Options{})
				var maxErr float64
				for _, list := range figure6Lists() {
					got, err := ev.Pfail("search", 1, list, 1)
					if err != nil {
						return nil, err
					}
					want := assembly.ClosedFormSearch(p, remote, 1, list, 1)
					if e := math.Abs(got - want); e > maxErr {
						maxErr = e
					}
				}
				if maxErr > worst {
					worst = maxErr
				}
				t.AddRow(name, fmt.Sprintf("%.0e", phi1), fmt.Sprintf("%.1e", gamma),
					fmt.Sprintf("%.3e", maxErr))
			}
		}
	}
	t.Notes = fmt.Sprintf("worst-case disagreement %.3e (target < 1e-12): the recursive engine reproduces the paper's symbolic derivation exactly", worst)
	return t, nil
}

// T2ANDSharing checks the paper's analytical identity numerically: AND
// completion is unaffected by the sharing dependency model.
func T2ANDSharing() (*Table, error) {
	t := &Table{
		ID:      "T2",
		Title:   "AND completion: sharing vs no-sharing (paper: identical)",
		Columns: []string{"n requests", "max |f_sharing - f_nosharing| over 1000 random draws"},
	}
	rng := rand.New(rand.NewSource(2024))
	var worst float64
	for n := 2; n <= 8; n++ {
		var maxDelta float64
		for trial := 0; trial < 1000; trial++ {
			reqs := make([]model.RequestFailure, n)
			for i := range reqs {
				reqs[i] = model.RequestFailure{Int: rng.Float64(), Ext: rng.Float64()}
			}
			a, err := model.CombineState(model.AND, model.NoSharing, 0, reqs)
			if err != nil {
				return nil, err
			}
			b, err := model.CombineState(model.AND, model.Sharing, 0, reqs)
			if err != nil {
				return nil, err
			}
			if d := math.Abs(a - b); d > maxDelta {
				maxDelta = d
			}
		}
		if maxDelta > worst {
			worst = maxDelta
		}
		t.AddRow(n, fmt.Sprintf("%.3e", maxDelta))
	}
	t.Notes = fmt.Sprintf("worst delta %.3e: equations (6)+(8) and (11)+(13) coincide, as the paper derives", worst)
	return t, nil
}

// T3ORSharing quantifies the divergence the paper highlights: OR-model
// fault tolerance loses effectiveness when the replicas share a service.
func T3ORSharing() (*Table, error) {
	t := &Table{
		ID:      "T3",
		Title:   "OR completion: state failure probability, independent vs shared replicas (Pint=0.01)",
		Columns: []string{"n replicas", "Pext", "f no-sharing (eq 7)", "f sharing (eq 12)", "sharing penalty factor"},
	}
	for _, n := range []int{2, 3, 5, 8} {
		for _, pext := range []float64{0.05, 0.1, 0.2, 0.4} {
			reqs := make([]model.RequestFailure, n)
			for i := range reqs {
				reqs[i] = model.RequestFailure{Int: 0.01, Ext: pext}
			}
			ns, err := model.CombineState(model.OR, model.NoSharing, 0, reqs)
			if err != nil {
				return nil, err
			}
			sh, err := model.CombineState(model.OR, model.Sharing, 0, reqs)
			if err != nil {
				return nil, err
			}
			factor := math.Inf(1)
			if ns > 0 {
				factor = sh / ns
			}
			t.AddRow(n, pext, fmt.Sprintf("%.3e", ns), fmt.Sprintf("%.3e", sh),
				fmt.Sprintf("%.3g", factor))
		}
	}
	t.Notes = "replication behind a shared service is orders of magnitude less effective than independent replicas — the paper's motivation for modeling service sharing"
	return t, nil
}

// T4MonteCarlo validates the analytic engine against the fault-injection
// simulator on both paper assemblies under stressed failure rates.
func T4MonteCarlo() (*Table, error) {
	t := &Table{
		ID:      "T4",
		Title:   "analytic reliability vs Monte Carlo (30000 trials, Wilson 99.9% CI)",
		Columns: []string{"assembly", "gamma", "list", "analytic R", "simulated R", "CI low", "CI high", "analytic in CI"},
	}
	const trials = 30000
	allIn := true
	for _, gamma := range []float64{5e-3, 5e-2, 1e-1} {
		p := assembly.DefaultPaperParams()
		p.Gamma = gamma
		p.Phi1 = 5e-6
		for _, remote := range []bool{false, true} {
			name := "local"
			build := assembly.LocalAssembly
			if remote {
				name = "remote"
				build = assembly.RemoteAssembly
			}
			asm, err := build(p)
			if err != nil {
				return nil, err
			}
			for _, list := range []float64{256, 65536} {
				analytic, err := core.New(asm, core.Options{}).Reliability("search", 1, list, 1)
				if err != nil {
					return nil, err
				}
				est, err := sim.New(asm, sim.Options{Seed: int64(list) + int64(gamma*1e4), Z: 3.29}).
					Estimate("search", trials, 1, list, 1)
				if err != nil {
					return nil, err
				}
				in := est.Contains(analytic)
				if !in {
					allIn = false
				}
				t.AddRow(name, fmt.Sprintf("%.1e", gamma), int(list),
					fmt.Sprintf("%.6f", analytic), fmt.Sprintf("%.6f", est.Reliability),
					fmt.Sprintf("%.6f", est.Lo), fmt.Sprintf("%.6f", est.Hi), in)
			}
		}
	}
	verdict := "every analytic prediction lies inside its simulation confidence interval"
	if !allIn {
		verdict = "WARNING: some analytic predictions fall outside their confidence intervals"
	}
	t.Notes = verdict
	return t, nil
}

// T5BaselineAblation compares the full model against the related-work
// baselines (section 5) on the remote assembly: both ignore the
// interaction infrastructure and so overestimate reliability.
func T5BaselineAblation() (*Table, error) {
	t := &Table{
		ID:      "T5",
		Title:   "full model vs connector-blind baselines on the remote assembly (list=4096)",
		Columns: []string{"gamma", "full engine R", "state-based (Cheung) R", "path-based R", "baseline overestimate of R"},
	}
	for _, gamma := range assembly.Figure6Gamma {
		p := assembly.DefaultPaperParams()
		p.Gamma = gamma
		asm, err := assembly.RemoteAssembly(p)
		if err != nil {
			return nil, err
		}
		svc, err := asm.ServiceByName("search")
		if err != nil {
			return nil, err
		}
		comp, ok := svc.(*model.Composite)
		if !ok {
			return nil, fmt.Errorf("experiments: search is not composite")
		}
		params := []float64{1, 4096, 1}
		full, err := core.New(asm, core.Options{}).Reliability("search", params...)
		if err != nil {
			return nil, err
		}
		cheung, err := baseline.FromComposite(asm, comp, params, core.Options{})
		if err != nil {
			return nil, err
		}
		stateBased, err := cheung.Reliability()
		if err != nil {
			return nil, err
		}
		pathRes, err := baseline.PathBased(cheung, baseline.PathOptions{})
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%.1e", gamma),
			fmt.Sprintf("%.6f", full),
			fmt.Sprintf("%.6f", stateBased),
			fmt.Sprintf("%.6f", pathRes.Reliability),
			fmt.Sprintf("%.6f", stateBased-full))
	}
	t.Notes = "models without connectors (refs [5], [19] style) overestimate remote-assembly reliability by exactly the interaction-infrastructure contribution; the error grows with gamma"
	return t, nil
}
