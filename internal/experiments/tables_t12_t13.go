package experiments

import (
	"fmt"

	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/model"
	"socrel/internal/propagation"
)

// T12ErrorPropagation quantifies what the fail-stop assumption hides: on
// the remote assembly, let the sort provider silently corrupt a fraction
// of its outputs and sweep the lookup stage's detection coverage.
func T12ErrorPropagation() (*Table, error) {
	t := &Table{
		ID:      "T12",
		Title:   "releasing fail-stop: silent sort corruption (PIntro=0.02) vs detection coverage (remote assembly, list=4096)",
		Columns: []string{"PDetect at lookup", "P correct", "P erroneous (silent)", "P failed", "fail-stop R (for reference)"},
	}
	p := assembly.DefaultPaperParams()
	p.Gamma = 5e-3
	asm, err := assembly.RemoteAssembly(p)
	if err != nil {
		return nil, err
	}
	svc, err := asm.ServiceByName("search")
	if err != nil {
		return nil, err
	}
	comp, ok := svc.(*model.Composite)
	if !ok {
		return nil, fmt.Errorf("experiments: search is not composite")
	}
	params := []float64{1, 4096, 1}
	failStop, err := core.New(asm, core.Options{}).Reliability("search", params...)
	if err != nil {
		return nil, err
	}
	for _, detect := range []float64{0, 0.25, 0.5, 0.75, 1} {
		a, err := propagation.FromComposite(asm, comp, params, core.Options{}, map[string]propagation.Behavior{
			"sort":   {PIntro: 0.02},
			"lookup": {PDetect: detect},
		})
		if err != nil {
			return nil, err
		}
		res, err := a.Run()
		if err != nil {
			return nil, err
		}
		t.AddRow(detect,
			fmt.Sprintf("%.6f", res.PCorrect),
			fmt.Sprintf("%.6f", res.PErroneous),
			fmt.Sprintf("%.6f", res.PFailed),
			fmt.Sprintf("%.6f", failStop))
	}
	t.Notes = "a fail-stop analysis reports R regardless of silent corruption; the propagation extension separates the erroneous mass and shows detection converting it into (visible) failures — the paper's deferred extension [11]"
	return t, nil
}

// T13FaultTolerantConnectors studies the connector families of section 2's
// "connectors can include fault-tolerance" remark: a plain RPC, an m-of-n
// redundant transport with independent vs shared channels, and a
// store-and-forward queue, all carrying the paper's remote sort request.
func T13FaultTolerantConnectors() (*Table, error) {
	t := &Table{
		ID:      "T13",
		Title:   "connector families carrying sort(4096) over an unreliable network (gamma=5e-2)",
		Columns: []string{"connector", "connector Pfail", "end-to-end search R"},
	}
	p := assembly.DefaultPaperParams()
	p.Gamma = 5e-2

	type variant struct {
		name  string
		setup func(asm *assembly.Assembly) (connector string, err error)
	}
	variants := []variant{
		{"rpc (paper)", func(asm *assembly.Assembly) (string, error) {
			return "rpc", nil
		}},
		{"retry x2 over rpc", func(asm *assembly.Assembly) (string, error) {
			r, err := model.NewRetry("retry2", 2)
			if err != nil {
				return "", err
			}
			if err := asm.AddService(r); err != nil {
				return "", err
			}
			asm.AddBinding("retry2", model.RoleTransport, "rpc", "")
			return "retry2", nil
		}},
		{"retry x3 over rpc", func(asm *assembly.Assembly) (string, error) {
			r, err := model.NewRetry("retry3", 3)
			if err != nil {
				return "", err
			}
			if err := asm.AddService(r); err != nil {
				return "", err
			}
			asm.AddBinding("retry3", model.RoleTransport, "rpc", "")
			return "retry3", nil
		}},
		{"2-of-3 independent channels", func(asm *assembly.Assembly) (string, error) {
			r, err := model.NewKOfNTransport("rep23", 3, 2, model.NoSharing)
			if err != nil {
				return "", err
			}
			if err := asm.AddService(r); err != nil {
				return "", err
			}
			asm.AddBinding("rep23", model.RoleTransport, "rpc", "")
			return "rep23", nil
		}},
		{"2-of-3 shared channel", func(asm *assembly.Assembly) (string, error) {
			r, err := model.NewKOfNTransport("rep23s", 3, 2, model.Sharing)
			if err != nil {
				return "", err
			}
			if err := asm.AddService(r); err != nil {
				return "", err
			}
			asm.AddBinding("rep23s", model.RoleTransport, "rpc", "")
			return "rep23s", nil
		}},
		{"store-and-forward queue", func(asm *assembly.Assembly) (string, error) {
			q, err := model.NewQueue("mq", p.C, p.M)
			if err != nil {
				return "", err
			}
			if err := asm.AddService(q); err != nil {
				return "", err
			}
			if err := asm.AddService(model.NewCPU("broker", p.S1, p.Lambda1)); err != nil {
				return "", err
			}
			if err := asm.AddService(model.NewNetwork("net2", p.B, p.Gamma)); err != nil {
				return "", err
			}
			asm.AddBinding("mq", model.RoleClientCPU, "cpu1", "")
			asm.AddBinding("mq", model.RoleServerCPU, "cpu2", "")
			asm.AddBinding("mq", model.RoleBrokerCPU, "broker", "")
			asm.AddBinding("mq", model.RoleNet1, "net12", "")
			asm.AddBinding("mq", model.RoleNet2, "net2", "")
			return "mq", nil
		}},
	}

	for _, v := range variants {
		asm, err := assembly.RemoteAssembly(p)
		if err != nil {
			return nil, err
		}
		connector, err := v.setup(asm)
		if err != nil {
			return nil, err
		}
		asm.AddBinding("search", "sort", "sort2", connector)
		ev := core.New(asm, core.Options{})
		connPfail, err := ev.Pfail(connector, 1+4096, 1)
		if err != nil {
			return nil, err
		}
		rel, err := ev.Reliability("search", 1, 4096, 1)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name, fmt.Sprintf("%.6f", connPfail), fmt.Sprintf("%.6f", rel))
	}
	t.Notes = "retry/replication connectors recover most of the network-induced unreliability when channels are independent; sharing the channel (paper's dependency model) voids the redundancy, and the two-hop queue doubles the exposure"
	return t, nil
}
