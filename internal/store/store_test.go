package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"socrel/internal/adl"
	"socrel/internal/core"
)

// testDSL is a small self-contained model (one composite over one cpu).
const testDSL = `
service cpu1 cpu {
    speed 1e9
    rate 1e-10
}
service work composite(n) {
    attr phi 1e-6
    state run and nosharing {
        call cpu(n * log2(n)) internal 1 - (1 - phi)^(n * log2(n))
    }
    transition Start -> run prob 1
    transition run -> End prob 1
}
assembly main {
    bind work.cpu -> cpu1
}
`

func testDoc(t *testing.T, phi string) *adl.Document {
	t.Helper()
	src := strings.Replace(testDSL, "attr phi 1e-6", "attr phi "+phi, 1)
	doc, err := adl.ParseDSL(src)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

// backends runs a subtest against both Store implementations.
func backends(t *testing.T, fn func(t *testing.T, st Store)) {
	t.Run("mem", func(t *testing.T) { fn(t, NewMem()) })
	t.Run("disk", func(t *testing.T) {
		st, err := Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		fn(t, st)
	})
}

func TestPublishVersioningAndDedup(t *testing.T) {
	backends(t, func(t *testing.T, st Store) {
		v1, err := st.Publish("acme", "search", testDoc(t, "1e-6"), PublishOptions{Comment: "initial"})
		if err != nil {
			t.Fatal(err)
		}
		if v1.Version != 1 || v1.Hash == "" {
			t.Fatalf("v1 = %+v", v1.Ref)
		}
		// Same content republished → dedup to v1.
		again, err := st.Publish("acme", "search", testDoc(t, "1e-6"), PublishOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if again.Version != 1 || again.Hash != v1.Hash {
			t.Errorf("dedup returned version %d hash %s, want v1 %s", again.Version, again.Hash, v1.Hash)
		}
		// Changed content → v2.
		v2, err := st.Publish("acme", "search", testDoc(t, "5e-6"), PublishOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if v2.Version != 2 || v2.Hash == v1.Hash {
			t.Errorf("v2 = %d hash equal=%v", v2.Version, v2.Hash == v1.Hash)
		}
		// Latest resolves v2; pinned get resolves v1.
		latest, err := st.Get(Ref{Tenant: "acme", Model: "search"})
		if err != nil || latest.Version != 2 {
			t.Errorf("latest = %d (%v), want 2", latest.Version, err)
		}
		pinned, err := st.Get(Ref{Tenant: "acme", Model: "search", Version: 1})
		if err != nil || pinned.Hash != v1.Hash {
			t.Errorf("pinned v1 hash mismatch (%v)", err)
		}
		versions, err := st.Versions("acme", "search")
		if err != nil || len(versions) != 2 {
			t.Errorf("versions = %d (%v), want 2", len(versions), err)
		}
	})
}

func TestCompareAndSwap(t *testing.T) {
	backends(t, func(t *testing.T, st Store) {
		// Must-create on an absent model succeeds, then conflicts.
		if _, err := st.Publish("t", "m", testDoc(t, "1e-6"), PublishOptions{ExpectedLatest: -1}); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Publish("t", "m", testDoc(t, "2e-6"), PublishOptions{ExpectedLatest: -1}); !errors.Is(err, ErrVersionConflict) {
			t.Errorf("must-create on existing model: err = %v, want ErrVersionConflict", err)
		}
		// CAS against the right version succeeds; stale CAS conflicts.
		if _, err := st.Publish("t", "m", testDoc(t, "2e-6"), PublishOptions{ExpectedLatest: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Publish("t", "m", testDoc(t, "3e-6"), PublishOptions{ExpectedLatest: 1}); !errors.Is(err, ErrVersionConflict) {
			t.Errorf("stale CAS: err = %v, want ErrVersionConflict", err)
		}
	})
}

func TestNotFoundAndBadNames(t *testing.T) {
	backends(t, func(t *testing.T, st Store) {
		if _, err := st.Get(Ref{Tenant: "ghost", Model: "none"}); !errors.Is(err, ErrNotFound) {
			t.Errorf("Get absent: %v, want ErrNotFound", err)
		}
		if _, err := st.Versions("ghost", "none"); !errors.Is(err, ErrNotFound) {
			t.Errorf("Versions absent: %v, want ErrNotFound", err)
		}
		if err := st.Delete("ghost", "none"); !errors.Is(err, ErrNotFound) {
			t.Errorf("Delete absent: %v, want ErrNotFound", err)
		}
		for _, bad := range []string{"", "a/b", "..", "a b", "x@1"} {
			if _, err := st.Publish(bad, "m", testDoc(t, "1e-6"), PublishOptions{}); !errors.Is(err, ErrBadName) {
				t.Errorf("Publish tenant %q: %v, want ErrBadName", bad, err)
			}
		}
	})
}

func TestDeleteAndListing(t *testing.T) {
	backends(t, func(t *testing.T, st Store) {
		for _, m := range []string{"alpha", "beta"} {
			if _, err := st.Publish("t1", m, testDoc(t, "1e-6"), PublishOptions{}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := st.Publish("t2", "gamma", testDoc(t, "1e-6"), PublishOptions{}); err != nil {
			t.Fatal(err)
		}
		tenants, err := st.Tenants()
		if err != nil || len(tenants) != 2 || tenants[0] != "t1" || tenants[1] != "t2" {
			t.Errorf("tenants = %v (%v)", tenants, err)
		}
		models, err := st.Models("t1")
		if err != nil || len(models) != 2 || models[0] != "alpha" {
			t.Errorf("models = %v (%v)", models, err)
		}
		if err := st.Delete("t1", "alpha"); err != nil {
			t.Fatal(err)
		}
		if _, err := st.Get(Ref{Tenant: "t1", Model: "alpha"}); !errors.Is(err, ErrNotFound) {
			t.Errorf("deleted model still resolves: %v", err)
		}
	})
}

// TestDiskSurvivesReopen is the durability acceptance check: a stored
// model survives process restart (a fresh Open) and reloads byte-identical
// — same content hash, same canonical source.
func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := st.Publish("acme", "search", testDoc(t, "1e-6"), PublishOptions{Comment: "persist me"})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.Get(Ref{Tenant: "acme", Model: "search", Version: rec.Version})
	if err != nil {
		t.Fatal(err)
	}
	if got.Hash != rec.Hash {
		t.Errorf("hash after reopen = %s, want %s", got.Hash, rec.Hash)
	}
	if string(got.Source) != string(rec.Source) {
		t.Error("canonical source not byte-identical after reopen")
	}
	if got.Comment != "persist me" {
		t.Errorf("comment = %q", got.Comment)
	}
	// And it still compiles and predicts.
	ca, _, err := Compile(st2, Ref{Tenant: "acme", Model: "search"}, "", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p, err := ca.Pfail("work", 4096); err != nil || p <= 0 || p >= 1 {
		t.Errorf("Pfail = %g (%v)", p, err)
	}
}

// TestDiskQuarantinesTornVersion simulates a torn write (partial JSON) and
// a hash-tampered record: Open must quarantine both and keep serving the
// intact versions.
func TestDiskQuarantinesTornVersion(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Publish("t", "m", testDoc(t, "1e-6"), PublishOptions{}); err != nil {
		t.Fatal(err)
	}
	v2, err := st.Publish("t", "m", testDoc(t, "2e-6"), PublishOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Tear v2 (truncate mid-file) and drop a stray temp file.
	mdir := filepath.Join(dir, "t", "m")
	v2path := filepath.Join(mdir, versionFile(v2.Version))
	data, err := os.ReadFile(v2path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v2path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(mdir, ".tmp-v123"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	latest, err := st2.Get(Ref{Tenant: "t", Model: "m"})
	if err != nil {
		t.Fatal(err)
	}
	if latest.Version != 1 {
		t.Errorf("latest after tear = v%d, want v1 (torn v2 quarantined)", latest.Version)
	}
	if _, err := os.Stat(v2path + ".corrupt"); err != nil {
		t.Errorf("torn version not quarantined: %v", err)
	}
	entries, _ := os.ReadDir(mdir)
	for _, de := range entries {
		if strings.HasPrefix(de.Name(), ".tmp-") {
			t.Errorf("stray temp file survived open: %s", de.Name())
		}
	}
	// The store heals by appending: the next publish becomes v2 again.
	v2b, err := st2.Publish("t", "m", testDoc(t, "3e-6"), PublishOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v2b.Version != 2 {
		t.Errorf("publish after quarantine = v%d, want 2", v2b.Version)
	}
}

func TestArtifactCacheCountersAndEviction(t *testing.T) {
	st := NewMem()
	cache := NewArtifactCache(2)
	refs := make([]Ref, 3)
	for i := range refs {
		model := fmt.Sprintf("m%d", i)
		if _, err := st.Publish("t", model, testDoc(t, "1e-6"), PublishOptions{}); err != nil {
			t.Fatal(err)
		}
		refs[i] = Ref{Tenant: "t", Model: model, Version: 1}
	}
	// Miss, miss, hit, then evict the LRU (m0) with m2.
	if _, _, err := cache.Load(st, refs[0], "", core.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cache.Load(st, refs[1], "", core.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cache.Load(st, refs[1], "", core.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cache.Load(st, refs[2], "", core.Options{}); err != nil {
		t.Fatal(err)
	}
	stats := cache.Stats()
	if stats.Hits != 1 || stats.Misses != 3 || stats.Evictions != 1 || stats.Entries != 2 {
		t.Errorf("stats = %+v, want hits=1 misses=3 evictions=1 entries=2", stats)
	}
	// m0 was evicted: loading it again is a miss (recompile), m1 stays hot.
	if _, _, err := cache.Load(st, refs[0], "", core.Options{}); err != nil {
		t.Fatal(err)
	}
	if got := cache.Stats().Misses; got != 4 {
		t.Errorf("misses after reload = %d, want 4", got)
	}

	// Invalidate drops only the named model (m0 and m2 are resident now).
	cache.Invalidate("t", "m2")
	if got := cache.Stats().Entries; got != 1 {
		t.Errorf("entries after invalidate = %d, want 1", got)
	}
}

// TestLatestVersionResolution: a cache Load of "latest" picks up a new
// publish while a pinned ref keeps serving the old artifact.
func TestLatestVersionResolution(t *testing.T) {
	st := NewMem()
	cache := NewArtifactCache(8)
	if _, err := st.Publish("t", "m", testDoc(t, "1e-6"), PublishOptions{}); err != nil {
		t.Fatal(err)
	}
	ca1, rec1, err := cache.Load(st, Ref{Tenant: "t", Model: "m"}, "", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec1.Version != 1 {
		t.Fatalf("latest = v%d, want 1", rec1.Version)
	}
	if _, err := st.Publish("t", "m", testDoc(t, "5e-6"), PublishOptions{}); err != nil {
		t.Fatal(err)
	}
	// Pinned v1 still serves the original artifact (pointer-identical).
	caPinned, _, err := cache.Load(st, Ref{Tenant: "t", Model: "m", Version: 1}, "", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if caPinned != ca1 {
		t.Error("pinned v1 was invalidated by the publish")
	}
	// Latest now resolves v2 with a different prediction.
	ca2, rec2, err := cache.Load(st, Ref{Tenant: "t", Model: "m"}, "", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rec2.Version != 2 || ca2 == ca1 {
		t.Errorf("latest after publish = v%d (same artifact: %v)", rec2.Version, ca2 == ca1)
	}
	p1, _ := ca1.Pfail("work", 4096)
	p2, _ := ca2.Pfail("work", 4096)
	if p1 == p2 {
		t.Error("v1 and v2 predict identically despite different phi")
	}
}

// TestConcurrentPublishWhilePredicting is the -race acceptance check:
// readers stream predictions against the pinned v1 artifact while a writer
// publishes new versions; the old artifact keeps serving, and latest-loads
// converge on the new versions.
func TestConcurrentPublishWhilePredicting(t *testing.T) {
	backends(t, func(t *testing.T, st Store) {
		cache := NewArtifactCache(16)
		if _, err := st.Publish("t", "m", testDoc(t, "1e-6"), PublishOptions{}); err != nil {
			t.Fatal(err)
		}
		ca1, _, err := cache.Load(st, Ref{Tenant: "t", Model: "m", Version: 1}, "", core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		want, err := ca1.Pfail("work", 4096)
		if err != nil {
			t.Fatal(err)
		}

		const readers = 4
		const iters = 50
		var wg sync.WaitGroup
		errCh := make(chan error, readers+1)
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					ca, rec, err := cache.Load(st, Ref{Tenant: "t", Model: "m", Version: 1}, "", core.Options{})
					if err != nil {
						errCh <- err
						return
					}
					if rec.Version != 1 || ca != ca1 {
						errCh <- fmt.Errorf("pinned v1 drifted to v%d", rec.Version)
						return
					}
					p, err := ca.Pfail("work", 4096)
					if err != nil || p != want {
						errCh <- fmt.Errorf("pinned prediction drifted: %g vs %g (%v)", p, want, err)
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 2; i <= 6; i++ {
				phi := fmt.Sprintf("%de-6", i)
				if _, err := st.Publish("t", "m", testDoc(t, phi), PublishOptions{}); err != nil {
					errCh <- err
					return
				}
				if _, _, err := cache.Load(st, Ref{Tenant: "t", Model: "m"}, "", core.Options{}); err != nil {
					errCh <- err
					return
				}
			}
		}()
		wg.Wait()
		close(errCh)
		for err := range errCh {
			t.Error(err)
		}
		latest, err := st.Get(Ref{Tenant: "t", Model: "m"})
		if err != nil || latest.Version != 6 {
			t.Errorf("latest = v%d (%v), want 6", latest.Version, err)
		}
	})
}

func TestMigrate(t *testing.T) {
	backends(t, func(t *testing.T, st Store) {
		if _, err := st.Publish("t", "m", testDoc(t, "1e-6"), PublishOptions{}); err != nil {
			t.Fatal(err)
		}
		// set returns a hook that rewrites the model to the given phi —
		// a stand-in for a real retuning migration.
		set := func(phi string) MigrateFunc {
			return func(*adl.Document) (*adl.Document, error) {
				return adl.ParseDSL(strings.Replace(testDSL, "attr phi 1e-6", "attr phi "+phi, 1))
			}
		}
		rec, err := Migrate(st, "t", "m", set("2e-6"), "retune phi")
		if err != nil {
			t.Fatal(err)
		}
		if rec.Version != 2 || rec.Comment != "retune phi" {
			t.Errorf("migrated = v%d %q", rec.Version, rec.Comment)
		}
		// Identity migration dedups: no new version.
		same, err := Migrate(st, "t", "m", func(d *adl.Document) (*adl.Document, error) { return d, nil }, "noop")
		if err != nil {
			t.Fatal(err)
		}
		if same.Version != 2 {
			t.Errorf("identity migration appended v%d", same.Version)
		}
		// A failing hook propagates its error.
		boom := errors.New("boom")
		if _, err := Migrate(st, "t", "m", func(d *adl.Document) (*adl.Document, error) { return nil, boom }, ""); !errors.Is(err, boom) {
			t.Errorf("failing hook: %v", err)
		}
		// Chain composes left to right: the last hook's phi wins.
		chained, err := Migrate(st, "t", "m", Chain(set("3e-6"), set("4e-6")), "double bump")
		if err != nil {
			t.Fatal(err)
		}
		if chained.Version != 3 {
			t.Errorf("chained = v%d, want 3", chained.Version)
		}
	})
}

func TestParseRef(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Ref
		ok   bool
	}{
		{"acme/search", Ref{Tenant: "acme", Model: "search"}, true},
		{"acme/search@3", Ref{Tenant: "acme", Model: "search", Version: 3}, true},
		{"acme", Ref{}, false},
		{"acme/search@0", Ref{}, false},
		{"acme/search@x", Ref{}, false},
		{"a b/c", Ref{}, false},
		{"", Ref{}, false},
	} {
		got, err := ParseRef(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseRef(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseRef(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
		if !tc.ok && err != nil && !errors.Is(err, ErrBadName) {
			t.Errorf("ParseRef(%q) err = %v, want ErrBadName", tc.in, err)
		}
	}
}
