package store

import (
	"fmt"

	"socrel/internal/adl"
)

// MigrateFunc derives a new document from an existing one — the hook point
// for model-version migrations (retune a failure rate from observed
// traffic, swap a deprecated provider, add an assembly variant). It must
// treat its input as immutable and return a new document (returning the
// input unchanged is allowed and results in a dedup no-op).
type MigrateFunc func(*adl.Document) (*adl.Document, error)

// Migrate loads the latest version of (tenant, model), applies fn, and
// publishes the result as the next version under a compare-and-swap on the
// version it read — a concurrent publish fails the migration with
// ErrVersionConflict instead of silently clobbering it. If fn changes
// nothing (canonical hash unchanged), the latest record is returned and no
// version is appended.
func Migrate(st Store, tenant, model string, fn MigrateFunc, comment string) (Record, error) {
	base, err := st.Get(Ref{Tenant: tenant, Model: model})
	if err != nil {
		return Record{}, err
	}
	doc, err := base.Document()
	if err != nil {
		return Record{}, err
	}
	next, err := fn(doc)
	if err != nil {
		return Record{}, fmt.Errorf("store: migrate %s/%s from v%d: %w", tenant, model, base.Version, err)
	}
	if next == nil {
		return Record{}, fmt.Errorf("store: migrate %s/%s from v%d: hook returned nil document", tenant, model, base.Version)
	}
	return st.Publish(tenant, model, next, PublishOptions{
		ExpectedLatest: base.Version,
		Comment:        comment,
	})
}

// Chain composes migration hooks left to right.
func Chain(fns ...MigrateFunc) MigrateFunc {
	return func(doc *adl.Document) (*adl.Document, error) {
		var err error
		for _, fn := range fns {
			if doc, err = fn(doc); err != nil {
				return nil, err
			}
		}
		return doc, nil
	}
}
