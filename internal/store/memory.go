package store

import (
	"fmt"
	"sort"
	"sync"

	"socrel/internal/adl"
)

// Mem is the in-memory Store backend: full semantics (versioning, CAS,
// dedup), no durability. The zero value is not usable; call NewMem.
type Mem struct {
	mu     sync.RWMutex
	models map[string][]Record // key: tenant + "/" + model, versions ascending
}

var _ Store = (*Mem)(nil)

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{models: make(map[string][]Record)}
}

func memKey(tenant, model string) string { return tenant + "/" + model }

// Publish implements Store.
func (m *Mem) Publish(tenant, model string, doc *adl.Document, opts PublishOptions) (Record, error) {
	if err := validNames(tenant, model); err != nil {
		return Record{}, err
	}
	source, hash, err := canonicalize(doc)
	if err != nil {
		return Record{}, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	key := memKey(tenant, model)
	versions := m.models[key]
	latest := 0
	if n := len(versions); n > 0 {
		latest = versions[n-1].Version
	}
	if err := checkCAS(tenant, model, latest, opts.ExpectedLatest); err != nil {
		return Record{}, err
	}
	if latest > 0 && versions[len(versions)-1].Hash == hash {
		return versions[len(versions)-1], nil // content dedup
	}
	rec := Record{
		Ref:       Ref{Tenant: tenant, Model: model, Version: latest + 1},
		Hash:      hash,
		CreatedAt: stamp(opts),
		Comment:   opts.Comment,
		Source:    source,
	}
	m.models[key] = append(versions, rec)
	return rec, nil
}

// Get implements Store.
func (m *Mem) Get(ref Ref) (Record, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	versions := m.models[memKey(ref.Tenant, ref.Model)]
	if len(versions) == 0 {
		return Record{}, fmt.Errorf("%w: %s", ErrNotFound, ref)
	}
	if ref.Version == 0 {
		return versions[len(versions)-1], nil
	}
	for _, rec := range versions {
		if rec.Version == ref.Version {
			return rec, nil
		}
	}
	return Record{}, fmt.Errorf("%w: %s", ErrNotFound, ref)
}

// Versions implements Store.
func (m *Mem) Versions(tenant, model string) ([]Record, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	versions := m.models[memKey(tenant, model)]
	if len(versions) == 0 {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, tenant, model)
	}
	return append([]Record(nil), versions...), nil
}

// Models implements Store.
func (m *Mem) Models(tenant string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	prefix := tenant + "/"
	var out []string
	for key := range m.models {
		if len(key) > len(prefix) && key[:len(prefix)] == prefix {
			out = append(out, key[len(prefix):])
		}
	}
	sort.Strings(out)
	return out, nil
}

// Tenants implements Store.
func (m *Mem) Tenants() ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	seen := make(map[string]bool)
	for key := range m.models {
		for i := 0; i < len(key); i++ {
			if key[i] == '/' {
				seen[key[:i]] = true
				break
			}
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out, nil
}

// Delete implements Store.
func (m *Mem) Delete(tenant, model string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := memKey(tenant, model)
	if len(m.models[key]) == 0 {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, tenant, model)
	}
	delete(m.models, key)
	return nil
}

// Close implements Store (no-op).
func (m *Mem) Close() error { return nil }
