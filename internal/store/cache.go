package store

import (
	"container/list"
	"fmt"
	"sync"

	"socrel/internal/adl"
	"socrel/internal/core"
)

// resolve loads ref and picks the assembly: an empty name selects the
// document's sole assembly and fails if the document defines several.
func resolve(st Store, ref Ref, assemblyName string) (Record, *adl.Document, string, error) {
	rec, err := st.Get(ref)
	if err != nil {
		return Record{}, nil, "", err
	}
	doc, err := rec.Document()
	if err != nil {
		return Record{}, nil, "", err
	}
	if assemblyName == "" {
		names := doc.AssemblyNames()
		if len(names) != 1 {
			return Record{}, nil, "", fmt.Errorf("store: %s defines assemblies %v; pick one", rec.Ref, names)
		}
		assemblyName = names[0]
	}
	return rec, doc, assemblyName, nil
}

// ArtifactCache is an LRU of compiled assemblies keyed by concrete
// (tenant, model, version, assembly). It is the hot-reload path between
// the store and the engine: resolving a Ref loads the record, builds the
// named assembly, compiles it, and memoizes the immutable artifact.
//
// Invalidation rules (DESIGN.md §12):
//
//   - Records are append-only and artifacts immutable, so a cached entry
//     is valid forever — eviction is purely capacity-driven (LRU).
//   - A Ref with Version 0 ("latest") is resolved to a concrete version
//     on every load, so a publish is picked up on the next latest-load
//     while pinned versions keep serving their old artifact untouched.
//   - Delete does not reach into the cache; callers that delete a model
//     call Invalidate to drop its artifacts.
type ArtifactCache struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	entries  map[artifactKey]*list.Element

	hits, misses, evictions uint64
}

type artifactKey struct {
	tenant, model string
	version       int
	assembly      string
}

type artifactEntry struct {
	key artifactKey
	ca  *core.CompiledAssembly
	rec Record
}

// CacheStats is a snapshot of the cache counters.
type CacheStats struct {
	Hits, Misses, Evictions uint64
	Entries                 int
}

// NewArtifactCache returns a cache holding at most capacity compiled
// artifacts (minimum 1).
func NewArtifactCache(capacity int) *ArtifactCache {
	if capacity < 1 {
		capacity = 1
	}
	return &ArtifactCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  make(map[artifactKey]*list.Element),
	}
}

// Load resolves ref through st and returns the compiled artifact for the
// named assembly of that version, compiling (and caching) on miss. An
// empty assemblyName selects the document's sole assembly and fails if the
// document defines several. The returned Record identifies the concrete
// version served.
func (c *ArtifactCache) Load(st Store, ref Ref, assemblyName string, opts core.Options) (*core.CompiledAssembly, Record, error) {
	rec, doc, assemblyName, err := resolve(st, ref, assemblyName)
	if err != nil {
		return nil, Record{}, err
	}
	key := artifactKey{tenant: rec.Tenant, model: rec.Model, version: rec.Version, assembly: assemblyName}

	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		ent := el.Value.(*artifactEntry)
		c.mu.Unlock()
		return ent.ca, ent.rec, nil
	}
	c.misses++
	c.mu.Unlock()

	// Compile outside the lock: compilation is slow and artifacts are
	// immutable, so a duplicate concurrent compile is wasted work, not a
	// correctness problem.
	ca, err := core.CompileDocument(doc, assemblyName, opts)
	if err != nil {
		return nil, Record{}, fmt.Errorf("store: compile %s (%s): %w", rec.Ref, assemblyName, err)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok { // lost the compile race; keep first
		c.ll.MoveToFront(el)
		ent := el.Value.(*artifactEntry)
		return ent.ca, ent.rec, nil
	}
	c.entries[key] = c.ll.PushFront(&artifactEntry{key: key, ca: ca, rec: rec})
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*artifactEntry).key)
		c.evictions++
	}
	return ca, rec, nil
}

// Invalidate drops every cached artifact of (tenant, model) — used after
// Delete. It never drops other models' artifacts.
func (c *ArtifactCache) Invalidate(tenant, model string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.entries {
		if key.tenant == tenant && key.model == model {
			c.ll.Remove(el)
			delete(c.entries, key)
		}
	}
}

// Stats returns a snapshot of the counters.
func (c *ArtifactCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.ll.Len()}
}

// Compile is the uncached compile-from-stored-form path: it loads ref and
// compiles its sole (or named) assembly.
func Compile(st Store, ref Ref, assemblyName string, opts core.Options) (*core.CompiledAssembly, Record, error) {
	rec, doc, assemblyName, err := resolve(st, ref, assemblyName)
	if err != nil {
		return nil, Record{}, err
	}
	ca, err := core.CompileDocument(doc, assemblyName, opts)
	if err != nil {
		return nil, Record{}, fmt.Errorf("store: compile %s (%s): %w", rec.Ref, assemblyName, err)
	}
	return ca, rec, nil
}
