package store

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"socrel/internal/adl"
	"socrel/internal/core"
)

// TestCrashMidWriteReopensClean is the kill-mid-write round trip: a child
// process (this test binary re-exec'd) publishes versions in a tight loop
// until it is SIGKILLed at a random moment; the parent then reopens the
// store and asserts there are no torn versions — every surviving record
// parses, hash-verifies, version numbers are contiguous from 1, and the
// latest record compiles and predicts.
func TestCrashMidWriteReopensClean(t *testing.T) {
	if dir := os.Getenv("SOCREL_STORE_CRASH_DIR"); dir != "" {
		crashChildMain(dir) // never returns
	}
	if testing.Short() {
		t.Skip("subprocess test skipped in -short mode")
	}

	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for round := 0; round < 3; round++ {
		dir := t.TempDir()
		cmd := exec.Command(os.Args[0], "-test.run=TestCrashMidWriteReopensClean")
		cmd.Env = append(os.Environ(), "SOCREL_STORE_CRASH_DIR="+dir)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Let the child get some publishes in, then kill it mid-flight.
		time.Sleep(time.Duration(20+rng.Intn(80)) * time.Millisecond)
		if err := cmd.Process.Kill(); err != nil {
			t.Fatal(err)
		}
		_ = cmd.Wait() // expected: killed

		st, err := Open(dir)
		if err != nil {
			t.Fatalf("round %d: store does not reopen after kill: %v", round, err)
		}
		versions, err := st.Versions("crash", "m")
		if err != nil {
			// The kill can land before the first publish completes; an
			// empty store is a clean store.
			t.Logf("round %d: no versions survived (killed before first publish)", round)
			st.Close()
			continue
		}
		for i, rec := range versions {
			if rec.Version != i+1 {
				t.Errorf("round %d: versions not contiguous: position %d holds v%d", round, i, rec.Version)
			}
			doc, err := rec.Document()
			if err != nil {
				t.Errorf("round %d: v%d does not parse: %v", round, rec.Version, err)
				continue
			}
			hash, err := adl.Hash(doc)
			if err != nil || hash != rec.Hash {
				t.Errorf("round %d: v%d hash mismatch: %s vs %s (%v)", round, rec.Version, hash, rec.Hash, err)
			}
		}
		ca, _, err := Compile(st, Ref{Tenant: "crash", Model: "m"}, "", core.Options{})
		if err != nil {
			t.Errorf("round %d: latest does not compile: %v", round, err)
		} else if p, err := ca.Pfail("work", 1024); err != nil || p <= 0 || p >= 1 {
			t.Errorf("round %d: latest does not predict: %g (%v)", round, p, err)
		}
		t.Logf("round %d: %d versions survived clean", round, len(versions))
		st.Close()
	}
}

// crashChildMain publishes distinct versions as fast as possible until
// killed.
func crashChildMain(dir string) {
	st, err := Open(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "crash child:", err)
		os.Exit(1)
	}
	for i := 1; ; i++ {
		phi := fmt.Sprintf("%de-7", i%9+1)
		src := strings.Replace(testDSL, "attr phi 1e-6", "attr phi "+phi, 1)
		// Vary a second attribute so consecutive docs never dedup.
		src = strings.Replace(src, "speed 1e9", fmt.Sprintf("speed %d", 1_000_000_000+i), 1)
		doc, err := adl.ParseDSL(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crash child:", err)
			os.Exit(1)
		}
		if _, err := st.Publish("crash", "m", doc, PublishOptions{}); err != nil {
			fmt.Fprintln(os.Stderr, "crash child:", err)
			os.Exit(1)
		}
	}
}
