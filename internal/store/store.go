// Package store is the durable, versioned, multi-tenant home for
// ADL-defined assembly models. The paper's premise is that reliability
// prediction is driven by an architectural model of the service assembly;
// at fleet scale those models are not one-shot in-process values but
// thousands of tenant-owned documents, each evolving over time. The store
// gives them:
//
//   - append-only versioning keyed by (tenant, model, version), versions
//     starting at 1 and never rewritten;
//   - content-hash dedup: publishing a document whose canonical form
//     (adl.Normalize) matches the latest version returns that version
//     instead of appending a duplicate;
//   - optimistic concurrency: PublishOptions.ExpectedLatest turns a
//     publish into a compare-and-swap that fails with ErrVersionConflict
//     when another writer got there first;
//   - migration hooks (Migrate) that derive a new version from the latest
//     one under the same CAS discipline;
//   - hot reload into compiled form through ArtifactCache, an LRU of
//     core.CompiledAssembly artifacts keyed by concrete (tenant, model,
//     version, assembly) — a publish never invalidates a pinned artifact,
//     so predictions stream against the old version until the new one is
//     explicitly selected.
//
// Two backends implement Store: Mem (tests, ephemeral serving) and Disk
// (JSON-on-disk, one file per version, written atomically so a crash
// mid-publish can never tear an existing version; see disk.go).
package store

import (
	"errors"
	"fmt"
	"regexp"
	"time"

	"socrel/internal/adl"
)

// Error taxonomy. Every failure a Store method returns matches one of
// these sentinels via errors.Is.
var (
	// ErrNotFound marks lookups of tenants, models, or versions that do
	// not exist.
	ErrNotFound = errors.New("store: not found")
	// ErrVersionConflict marks compare-and-swap publishes that lost the
	// race: the store's latest version differs from ExpectedLatest.
	ErrVersionConflict = errors.New("store: version conflict")
	// ErrCorrupt marks records whose on-disk bytes fail to parse or whose
	// content hash does not match their document (torn or tampered data).
	ErrCorrupt = errors.New("store: corrupt record")
	// ErrBadName marks tenant or model names outside [A-Za-z0-9._-]+
	// (the character set that is safe as a path component and in
	// tenant/model@version references).
	ErrBadName = errors.New("store: bad tenant or model name")
)

// Ref addresses one stored model version. Version 0 means "latest".
type Ref struct {
	Tenant  string
	Model   string
	Version int
}

// String renders the reference as tenant/model@version (tenant/model when
// Version is 0, i.e. latest).
func (r Ref) String() string {
	if r.Version == 0 {
		return r.Tenant + "/" + r.Model
	}
	return fmt.Sprintf("%s/%s@%d", r.Tenant, r.Model, r.Version)
}

// Record is one immutable stored version.
type Record struct {
	Ref
	// Hash is the content address: adl.Hash of the stored document.
	Hash string
	// CreatedAt is the publish time (UTC).
	CreatedAt time.Time
	// Comment is the publisher's free-form annotation.
	Comment string
	// Source is the canonical JSON serialization of the document.
	Source []byte
}

// Document parses the stored canonical source back into a document.
func (r Record) Document() (*adl.Document, error) {
	doc, err := adl.UnmarshalJSON(r.Source)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %w", ErrCorrupt, r.Ref, err)
	}
	return doc, nil
}

// PublishOptions tunes one Publish call.
type PublishOptions struct {
	// ExpectedLatest, when nonzero, makes the publish a compare-and-swap:
	// >0 requires the current latest version to equal it; -1 requires the
	// model to not exist yet. 0 publishes unconditionally.
	ExpectedLatest int
	// Comment annotates the new version.
	Comment string
	// Now overrides the record timestamp (tests); zero means time.Now.
	Now time.Time
}

// Store is the versioned multi-tenant model store.
type Store interface {
	// Publish appends doc as the next version of (tenant, model) and
	// returns its record. If the canonical content hash equals the latest
	// version's, the latest record is returned unchanged (dedup) — after
	// the CAS check, so a conflicting dedup still fails.
	Publish(tenant, model string, doc *adl.Document, opts PublishOptions) (Record, error)
	// Get returns the addressed version; ref.Version 0 resolves latest.
	Get(ref Ref) (Record, error)
	// Versions returns every version of the model, oldest first.
	Versions(tenant, model string) ([]Record, error)
	// Models returns the model names of a tenant, sorted.
	Models(tenant string) ([]string, error)
	// Tenants returns every tenant name, sorted.
	Tenants() ([]string, error)
	// Delete removes a model and all its versions. Deleting a model that
	// does not exist returns ErrNotFound.
	Delete(tenant, model string) error
	// Close releases backend resources. The store must not be used after.
	Close() error
}

var nameRe = regexp.MustCompile(`^[A-Za-z0-9._-]+$`)

// validNames rejects tenant/model names that are empty, contain path
// separators or reference syntax ('@', '/'), or otherwise fall outside the
// safe character set.
func validNames(tenant, model string) error {
	for _, n := range []string{tenant, model} {
		if !nameRe.MatchString(n) || n == "." || n == ".." {
			return fmt.Errorf("%w: %q (want [A-Za-z0-9._-]+)", ErrBadName, n)
		}
	}
	return nil
}

// ParseRef parses "tenant/model" or "tenant/model@version".
func ParseRef(s string) (Ref, error) {
	var ref Ref
	rest := s
	if at := lastIndexByte(rest, '@'); at >= 0 {
		if _, err := fmt.Sscanf(rest[at+1:], "%d", &ref.Version); err != nil || ref.Version < 1 {
			return Ref{}, fmt.Errorf("%w: version in %q (want tenant/model@N, N >= 1)", ErrBadName, s)
		}
		rest = rest[:at]
	}
	slash := lastIndexByte(rest, '/')
	if slash < 0 {
		return Ref{}, fmt.Errorf("%w: %q (want tenant/model[@version])", ErrBadName, s)
	}
	ref.Tenant, ref.Model = rest[:slash], rest[slash+1:]
	if err := validNames(ref.Tenant, ref.Model); err != nil {
		return Ref{}, err
	}
	return ref, nil
}

func lastIndexByte(s string, b byte) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// canonicalize normalizes the document and returns its canonical bytes and
// content hash — the stored representation.
func canonicalize(doc *adl.Document) (source []byte, hash string, err error) {
	norm, err := adl.Normalize(doc)
	if err != nil {
		return nil, "", fmt.Errorf("store: normalize: %w", err)
	}
	source, err = adl.MarshalJSON(norm)
	if err != nil {
		return nil, "", fmt.Errorf("store: marshal: %w", err)
	}
	hash, err = adl.Hash(norm)
	if err != nil {
		return nil, "", fmt.Errorf("store: hash: %w", err)
	}
	return source, hash, nil
}

// checkCAS applies the ExpectedLatest compare-and-swap rule given the
// current latest version (0 = model absent).
func checkCAS(tenant, model string, latest, expected int) error {
	switch {
	case expected == 0:
		return nil
	case expected == -1 && latest != 0:
		return fmt.Errorf("%w: %s/%s exists at version %d, expected absent", ErrVersionConflict, tenant, model, latest)
	case expected > 0 && latest != expected:
		return fmt.Errorf("%w: %s/%s is at version %d, expected %d", ErrVersionConflict, tenant, model, latest, expected)
	}
	return nil
}

// stamp resolves the record timestamp.
func stamp(opts PublishOptions) time.Time {
	if !opts.Now.IsZero() {
		return opts.Now.UTC()
	}
	return time.Now().UTC()
}
