package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"socrel/internal/adl"
)

// Disk is the durable JSON-on-disk Store backend.
//
// Layout: one directory per tenant, one per model, one file per version —
// root/<tenant>/<model>/v%06d.json — each file a self-contained record
// (metadata plus the canonical document). Versions are append-only: a file,
// once renamed into place, is never rewritten.
//
// Durability discipline: a publish writes the record to a .tmp file in the
// model directory, fsyncs it, renames it to its final version name, and
// fsyncs the directory. A crash (or kill -9) mid-publish therefore leaves
// either no trace or a stray .tmp file — never a torn version. Open sweeps
// stray .tmp files and quarantines any version file that fails to parse or
// whose content hash does not verify (renamed *.corrupt), so the store
// always reopens clean.
type Disk struct {
	root string
	mu   sync.RWMutex // serializes version allocation across goroutines
}

var _ Store = (*Disk)(nil)

// recordJSON is the on-disk form of one version.
type recordJSON struct {
	Tenant    string          `json:"tenant"`
	Model     string          `json:"model"`
	Version   int             `json:"version"`
	Hash      string          `json:"hash"`
	CreatedAt time.Time       `json:"createdAt"`
	Comment   string          `json:"comment,omitempty"`
	Document  json.RawMessage `json:"document"`
}

// Open opens (creating if needed) a disk store rooted at dir, sweeping
// stray temp files and quarantining torn or tampered version files.
func Open(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open: %w", err)
	}
	d := &Disk{root: dir}
	if err := d.sweep(); err != nil {
		return nil, err
	}
	return d, nil
}

// Root returns the store's root directory.
func (d *Disk) Root() string { return d.root }

// sweep removes temp files and quarantines unreadable versions in every
// model directory.
func (d *Disk) sweep() error {
	return filepath.WalkDir(d.root, func(path string, de fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if de.IsDir() {
			return nil
		}
		name := de.Name()
		switch {
		case strings.HasPrefix(name, ".tmp-"):
			// A crash mid-write: the rename never happened, the version was
			// never visible. Remove the debris.
			if err := os.Remove(path); err != nil {
				return fmt.Errorf("store: sweep %s: %w", path, err)
			}
		case strings.HasSuffix(name, ".json"):
			if _, err := readRecordFile(path); err != nil {
				// Torn or tampered: quarantine rather than serve garbage.
				if qerr := os.Rename(path, path+".corrupt"); qerr != nil {
					return fmt.Errorf("store: quarantine %s: %w", path, qerr)
				}
			}
		}
		return nil
	})
}

// readRecordFile parses and hash-verifies one version file.
func readRecordFile(path string) (Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Record{}, fmt.Errorf("%w: %s: %w", ErrCorrupt, path, err)
	}
	var rj recordJSON
	if err := json.Unmarshal(data, &rj); err != nil {
		return Record{}, fmt.Errorf("%w: %s: %w", ErrCorrupt, path, err)
	}
	doc, err := adl.UnmarshalJSON(rj.Document)
	if err != nil {
		return Record{}, fmt.Errorf("%w: %s: %w", ErrCorrupt, path, err)
	}
	hash, err := adl.Hash(doc)
	if err != nil {
		return Record{}, fmt.Errorf("%w: %s: %w", ErrCorrupt, path, err)
	}
	if hash != rj.Hash {
		return Record{}, fmt.Errorf("%w: %s: content hash %s does not match recorded %s", ErrCorrupt, path, hash, rj.Hash)
	}
	// Re-serialize the parsed document so Source is the canonical bytes
	// regardless of the indentation the enclosing record file applied.
	source, err := adl.MarshalJSON(doc)
	if err != nil {
		return Record{}, fmt.Errorf("%w: %s: %w", ErrCorrupt, path, err)
	}
	return Record{
		Ref:       Ref{Tenant: rj.Tenant, Model: rj.Model, Version: rj.Version},
		Hash:      rj.Hash,
		CreatedAt: rj.CreatedAt,
		Comment:   rj.Comment,
		Source:    source,
	}, nil
}

func (d *Disk) modelDir(tenant, model string) string {
	return filepath.Join(d.root, tenant, model)
}

func versionFile(version int) string { return fmt.Sprintf("v%06d.json", version) }

// versionsLocked lists the valid version records of a model, ascending.
// Callers hold at least the read lock.
func (d *Disk) versionsLocked(tenant, model string) ([]Record, error) {
	dir := d.modelDir(tenant, model)
	entries, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []Record
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") || !strings.HasPrefix(name, "v") {
			continue
		}
		rec, err := readRecordFile(filepath.Join(dir, name))
		if err != nil {
			// Concurrently written or damaged after open: skip. Open's
			// sweep quarantines; here we only refuse to surface it.
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out, nil
}

// Publish implements Store.
func (d *Disk) Publish(tenant, model string, doc *adl.Document, opts PublishOptions) (Record, error) {
	if err := validNames(tenant, model); err != nil {
		return Record{}, err
	}
	source, hash, err := canonicalize(doc)
	if err != nil {
		return Record{}, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	versions, err := d.versionsLocked(tenant, model)
	if err != nil {
		return Record{}, err
	}
	latest := 0
	if n := len(versions); n > 0 {
		latest = versions[n-1].Version
	}
	if err := checkCAS(tenant, model, latest, opts.ExpectedLatest); err != nil {
		return Record{}, err
	}
	if latest > 0 && versions[len(versions)-1].Hash == hash {
		return versions[len(versions)-1], nil // content dedup
	}
	rec := Record{
		Ref:       Ref{Tenant: tenant, Model: model, Version: latest + 1},
		Hash:      hash,
		CreatedAt: stamp(opts),
		Comment:   opts.Comment,
		Source:    source,
	}
	if err := d.writeRecord(rec); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// writeRecord persists one version atomically: temp file, fsync, rename,
// directory fsync.
func (d *Disk) writeRecord(rec Record) error {
	dir := d.modelDir(rec.Tenant, rec.Model)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	data, err := json.MarshalIndent(recordJSON{
		Tenant:    rec.Tenant,
		Model:     rec.Model,
		Version:   rec.Version,
		Hash:      rec.Hash,
		CreatedAt: rec.CreatedAt,
		Comment:   rec.Comment,
		Document:  json.RawMessage(rec.Source),
	}, "", "  ")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".tmp-v*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { _ = tmp.Close(); _ = os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return fmt.Errorf("store: %w", err)
	}
	final := filepath.Join(dir, versionFile(rec.Version))
	if err := os.Rename(tmpName, final); err != nil {
		cleanup()
		return fmt.Errorf("store: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a rename survives power loss.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: sync %s: %w", dir, err)
	}
	return nil
}

// Get implements Store.
func (d *Disk) Get(ref Ref) (Record, error) {
	if err := validNames(ref.Tenant, ref.Model); err != nil {
		return Record{}, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	if ref.Version > 0 {
		path := filepath.Join(d.modelDir(ref.Tenant, ref.Model), versionFile(ref.Version))
		if _, err := os.Stat(path); errors.Is(err, fs.ErrNotExist) {
			return Record{}, fmt.Errorf("%w: %s", ErrNotFound, ref)
		}
		return readRecordFile(path)
	}
	versions, err := d.versionsLocked(ref.Tenant, ref.Model)
	if err != nil {
		return Record{}, err
	}
	if len(versions) == 0 {
		return Record{}, fmt.Errorf("%w: %s", ErrNotFound, ref)
	}
	return versions[len(versions)-1], nil
}

// Versions implements Store.
func (d *Disk) Versions(tenant, model string) ([]Record, error) {
	if err := validNames(tenant, model); err != nil {
		return nil, err
	}
	d.mu.RLock()
	defer d.mu.RUnlock()
	versions, err := d.versionsLocked(tenant, model)
	if err != nil {
		return nil, err
	}
	if len(versions) == 0 {
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, tenant, model)
	}
	return versions, nil
}

// Models implements Store.
func (d *Disk) Models(tenant string) ([]string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	entries, err := os.ReadDir(filepath.Join(d.root, tenant))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, de := range entries {
		if de.IsDir() {
			out = append(out, de.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Tenants implements Store.
func (d *Disk) Tenants() ([]string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, de := range entries {
		if de.IsDir() {
			out = append(out, de.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Delete implements Store.
func (d *Disk) Delete(tenant, model string) error {
	if err := validNames(tenant, model); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	dir := d.modelDir(tenant, model)
	if _, err := os.Stat(dir); errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, tenant, model)
	}
	if err := os.RemoveAll(dir); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Close implements Store (no held resources).
func (d *Disk) Close() error { return nil }
