package cluster_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"socrel/internal/cluster"
	"socrel/internal/faultinject"
	socruntime "socrel/internal/runtime"
	"socrel/internal/server"
)

// switchEval answers a per-replica constant until fail is flipped, then
// errors — the switch that forces the serving tier down its ladder.
type switchEval struct {
	p    float64
	fail *atomic.Bool
}

func (e switchEval) PfailCtx(ctx context.Context, service string, params ...float64) (float64, error) {
	if e.fail.Load() {
		return 0, errors.New("evaluator down")
	}
	return e.p, nil
}

// peerOwnedRequest finds a parameter point whose ring owner (in entry's
// view) is a peer, so Serve must forward.
func peerOwnedRequest(t *testing.T, entry *cluster.Node) (server.Request, string) {
	t.Helper()
	for i := 0; i < 256; i++ {
		req := server.Request{Scope: "model", Params: []float64{float64(i)}}
		if owner, ok := entry.Owner(req); ok && owner != entry.ID() {
			return req, owner
		}
	}
	t.Fatal("no peer-owned parameter point found in 256 tries")
	return server.Request{}, ""
}

// TestReadRepairAfterHeal: a replica cut off by a partition serves its
// own (older) exact answers; after the heal, one forwarded request pulls
// the owner's fresher snapshot back into the origin's stale store, so
// when the evaluator then dies and the owner with it, the origin serves
// Stale from the repaired value instead of its stale-er own one.
func TestReadRepairAfterHeal(t *testing.T) {
	clk := socruntime.NewFakeClock(time.Unix(0, 0))
	net := faultinject.NewNetwork(faultinject.NetConfig{Seed: 11})
	fail := &atomic.Bool{}
	pfail := map[string]float64{"replica-0": 0.1, "replica-1": 0.2, "replica-2": 0.3}
	f, err := cluster.NewFleet(cluster.FleetConfig{
		Replicas: 3,
		Node: cluster.NodeConfig{
			GossipInterval: time.Second,
			SuspectAfter:   3 * time.Second,
			DeadAfter:      9 * time.Second,
			Clock:          clk,
			Seed:           42,
		},
		Server:       server.Config{Hedge: server.HedgeConfig{Disabled: true}},
		NewEvaluator: func(id string) server.Evaluator { return switchEval{p: pfail[id], fail: fail} },
		Network:      net,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)

	entry := f.Node("replica-0")
	req, owner := peerOwnedRequest(t, entry)
	ctx := context.Background()

	// Partitioned: the forward fails and the origin serves its own exact
	// answer — which also warms its stale store with the OLDER value.
	net.Partition([]string{"replica-0"}, []string{"replica-1", "replica-2"})
	ans := entry.Serve(ctx, req)
	if ans.Kind != socruntime.Exact || ans.Pfail != pfail["replica-0"] {
		t.Fatalf("partitioned serve = %v p=%v, want local Exact %v", ans.Kind, ans.Pfail, pfail["replica-0"])
	}
	if got := entry.Stats().ReadRepaired; got != 0 {
		t.Fatalf("ReadRepaired = %d across a partition, want 0", got)
	}

	// Heal, with time passing so the owner's answer is strictly fresher
	// than the origin's own partition-era snapshot.
	clk.Advance(time.Second)
	net.Heal()
	ans = entry.Serve(ctx, req)
	if ans.Kind != socruntime.Exact || ans.Pfail != pfail[owner] {
		t.Fatalf("healed serve = %v p=%v, want forwarded Exact %v", ans.Kind, ans.Pfail, pfail[owner])
	}
	if got := entry.Stats().ReadRepaired; got != 1 {
		t.Fatalf("ReadRepaired = %d after healed forward, want 1", got)
	}
	lg, ok := entry.Server().Snapshot(req.Scope, req.Service, req.Params)
	if !ok || lg.Pfail != pfail[owner] {
		t.Fatalf("repaired snapshot = %+v ok=%v, want Pfail %v", lg, ok, pfail[owner])
	}

	// Repair is freshness-gated: replaying the same answer changes nothing.
	_ = entry.Serve(ctx, req)
	if got := entry.Stats().ReadRepaired; got != 1 {
		t.Fatalf("ReadRepaired = %d after equal-freshness replay, want still 1", got)
	}

	// Evaluator dies and the owner with it: the origin degrades to Stale
	// and the value it serves is the owner's repaired-in one.
	fail.Store(true)
	f.Kill(owner)
	ans = entry.Serve(ctx, req)
	if ans.Kind != socruntime.Stale {
		t.Fatalf("degraded serve = %v (err %v), want Stale", ans.Kind, ans.Err)
	}
	if ans.Pfail != pfail[owner] {
		t.Fatalf("stale Pfail = %v, want the read-repaired %v", ans.Pfail, pfail[owner])
	}
}

// TestFleetRestart: a killed replica restarted under its original ID
// rejoins the ring with fresh state, peers re-admit it on the next
// gossip exchange, and Restart refuses live or unknown ids.
func TestFleetRestart(t *testing.T) {
	clk := socruntime.NewFakeClock(time.Unix(0, 0))
	f := newTestFleet(t, 3, nil, clk)

	if _, err := f.Restart("replica-1"); err == nil {
		t.Fatal("Restart of a live replica did not error")
	}
	if _, err := f.Restart("replica-9"); err == nil {
		t.Fatal("Restart of an unknown replica did not error")
	}

	// Let the doomed replica gossip long enough that its heartbeat
	// counter is well above anything its next incarnation will reach
	// quickly — the restart must revive via direct proof of life, not by
	// outrunning the ghost's counter.
	for i := 0; i < 15; i++ {
		clk.Advance(time.Second)
		f.GossipRound()
	}
	if !f.Kill("replica-1") {
		t.Fatal("Kill failed")
	}
	// Survivors condemn the corpse.
	for i := 0; i < 10; i++ {
		clk.Advance(time.Second)
		f.GossipRound()
	}
	if got := f.Node("replica-0").MemberState("replica-1"); got != cluster.Dead {
		t.Fatalf("replica-0 judges killed peer %v, want Dead", got)
	}

	n, err := f.Restart("replica-1")
	if err != nil {
		t.Fatal(err)
	}
	if n == f.Node("replica-0") || f.Node("replica-1") != n {
		t.Fatal("Restart did not install the new node under the old ID")
	}
	if len(f.Live()) != 3 {
		t.Fatalf("live = %d after restart, want 3", len(f.Live()))
	}

	// The restarted node's first rounds re-admit it everywhere.
	for i := 0; i < 3; i++ {
		clk.Advance(time.Second)
		f.GossipRound()
	}
	for _, id := range []string{"replica-0", "replica-2"} {
		if got := f.Node(id).MemberState("replica-1"); got != cluster.Alive {
			t.Fatalf("%s judges restarted peer %v, want Alive", id, got)
		}
	}
	if got := n.MemberState("replica-0"); got != cluster.Alive {
		t.Fatalf("restarted node judges replica-0 %v, want Alive", got)
	}

	// And it serves.
	ans := n.Serve(context.Background(), server.Request{Scope: "model", Params: []float64{1}})
	if ans.Kind != socruntime.Exact {
		t.Fatalf("restarted node serve = %v, want Exact", ans.Kind)
	}
}
