package cluster

import (
	"fmt"
	"time"
)

// MemberState is a replica's liveness as judged by one observer. States
// only move through the suspect ladder by silence on the observer's
// clock; any fresher heartbeat — direct or relayed — resets a member to
// Alive, so a healed partition revives the members behind it without any
// special-case rejoin protocol.
type MemberState int

// Member states.
const (
	// Alive means heartbeats are current; the replica owns ring keys.
	Alive MemberState = iota + 1
	// Suspect means heartbeats are late. A suspect replica keeps its
	// ring keys — evicting on first silence would churn caches on every
	// hiccup — but is already a forwarding risk the caller absorbs by
	// falling back to local serving on an unreachable peer.
	Suspect
	// Dead means heartbeats stopped long enough ago that the replica is
	// evicted from the ring; its keys rebalance to the survivors.
	Dead
)

func (s MemberState) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("MemberState(%d)", int(s))
	}
}

// member is one replica in a node's membership view.
type member struct {
	id        string
	state     MemberState
	heartbeat uint64    // highest heartbeat counter seen
	lastAlive time.Time // local clock time of the last heartbeat advance
}

// MemberInfo is the exported view of one membership entry.
type MemberInfo struct {
	// ID is the replica.
	ID string
	// State is the observer's current liveness judgment.
	State MemberState
	// Heartbeat is the highest heartbeat counter seen for the replica.
	Heartbeat uint64
}
