package cluster

import (
	"hash/fnv"
	"math"
	"sort"
	"strconv"
)

// Ring is a consistent-hash ring routing (scope, service, parameter-
// region) keys to replicas. Each replica appears as VNodes virtual
// points, so load spreads evenly and a membership change moves only the
// keys adjacent to the joining or leaving replica's points — the
// expected churn for one of N replicas is K/N of K keys, not a full
// reshuffle. Ring is not safe for concurrent use; the Node guards it
// with its mutex and rebuilds it on membership changes.
type Ring struct {
	vnodes int
	points []ringPoint // sorted by hash
	nodes  map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing returns an empty ring with the given virtual-node count per
// replica (default 64).
func NewRing(vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	return &Ring{vnodes: vnodes, nodes: make(map[string]bool)}
}

// Add inserts a replica's virtual points (a no-op if already present).
func (r *Ring) Add(node string) {
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, ringPoint{hash: hash64(node + "#" + strconv.Itoa(i)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a replica's virtual points (a no-op if absent).
func (r *Ring) Remove(node string) {
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	for i := len(kept); i < len(r.points); i++ {
		r.points[i] = ringPoint{}
	}
	r.points = kept
}

// Has reports whether the replica is on the ring.
func (r *Ring) Has(node string) bool { return r.nodes[node] }

// Len returns the number of replicas on the ring.
func (r *Ring) Len() int { return len(r.nodes) }

// Nodes returns the replicas on the ring, sorted.
func (r *Ring) Nodes() []string {
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the replica owning key: the first virtual point at or
// clockwise of the key's hash. ok is false on an empty ring.
func (r *Ring) Owner(key string) (owner string, ok bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node, true
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return finalize(h.Sum64())
}

// finalize avalanches the FNV sum (splitmix64's mixer). Raw FNV-1a
// spreads a change in the final byte by only ~2^48 — narrower than one
// ring arc on a small fleet — so without this, keys differing in a
// trailing character land in the same arc and a replica's virtual
// points cluster instead of spreading.
func finalize(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// paramRegionMask zeroes the low 40 mantissa bits of a float64, leaving
// the sign, exponent, and top 12 mantissa bits: parameters within ~0.02%
// of each other land in the same region.
const paramRegionMask = ^uint64(1<<40 - 1)

// RouteKey renders (scope, service, parameter-region) into the ring key.
// Parameters are quantized to coarse regions rather than exact values so
// a parameter sweep — thousands of nearby points — routes to one replica
// and stays hot in its memo, compile, and artifact caches, instead of
// scattering across the fleet. Every replica computes the same key for
// the same request, which is what makes at-most-one-hop forwarding
// sufficient.
func RouteKey(scope, service string, params []float64) string {
	b := make([]byte, 0, len(scope)+1+len(service)+1+3*len(params))
	b = append(b, scope...)
	b = append(b, 0)
	b = append(b, service...)
	b = append(b, 0)
	for _, p := range params {
		bits := math.Float64bits(p) & paramRegionMask
		b = append(b, byte(bits>>40), byte(bits>>48), byte(bits>>56))
	}
	return string(b)
}
