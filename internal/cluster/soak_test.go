package cluster_test

import (
	"context"
	gorun "runtime"
	"sync"
	"testing"
	"time"

	"socrel/internal/assembly"
	"socrel/internal/cluster"
	"socrel/internal/core"
	"socrel/internal/faultinject"
	"socrel/internal/model"
	socruntime "socrel/internal/runtime"
	"socrel/internal/server"
)

// buildClusterAssembly is two composite apps bound to two distinct
// constant providers, so the fleet serves two scopes whose exact
// answers differ — the handle the soak needs to prove degraded answers
// never leak across scopes.
func buildClusterAssembly(t *testing.T) *assembly.Assembly {
	t.Helper()
	asm := assembly.New("cluster-soak")
	asm.MustAddService(model.NewConstant("provider", 0.02))
	asm.MustAddService(model.NewConstant("provider2", 0.1))
	for _, name := range []string{"app", "app2"} {
		app := model.NewComposite(name, nil, nil)
		st, err := app.Flow().AddState("work", model.AND, model.NoSharing)
		if err != nil {
			t.Fatal(err)
		}
		st.AddRequest(model.Request{Role: "worker"})
		if err := app.Flow().AddTransitionP(model.StartState, "work", 1); err != nil {
			t.Fatal(err)
		}
		if err := app.Flow().AddTransitionP("work", model.EndState, 1); err != nil {
			t.Fatal(err)
		}
		asm.MustAddService(app)
	}
	asm.AddBinding("app", "worker", "provider", "")
	asm.AddBinding("app2", "worker", "provider2", "")
	return asm
}

// soakEval builds a fresh interpreted evaluator per call — the worst
// case for the admission controller, and the only way fault-injected
// resolver failures keep firing past the first memoized evaluation.
type soakEval struct {
	resolver model.Resolver
	opts     core.Options
}

func (f soakEval) PfailCtx(ctx context.Context, service string, params ...float64) (float64, error) {
	return core.New(f.resolver, f.opts).PfailCtx(ctx, service, params...)
}

// scopedAnswer pairs an answer with the scope that asked for it.
type scopedAnswer struct {
	scope string
	ans   socruntime.Answer
}

// TestClusterChaosSoak floods a 5-replica fleet with bursts while the
// inter-replica network drops, duplicates, and delays rumors, one
// replica is killed outright, and the survivors are split by a
// symmetric partition. Invariants, checked under -race with every clock
// fake and no real sleeps:
//
//   - every answer is tagged and exact ⇔ nil-error holds throughout,
//     through forwarding, fallback, partition, and overload;
//   - degraded answers never leak across scopes: a Stale or Bounded
//     answer for one scope always carries that scope's own value;
//   - a provider tripped by SPRT on one replica quarantines fleet-wide
//     within bounded gossip rounds once the partition heals, and does
//     NOT cross the partition while it holds;
//   - the killed replica is judged Dead by every survivor, and the
//     wrongly-condemned far side revives after the heal;
//   - every live server quiesces and no goroutines leak.
func TestClusterChaosSoak(t *testing.T) {
	n := 400
	if testing.Short() {
		n = 120
	}
	before := gorun.NumGoroutine()
	ctx := context.Background()

	clk := socruntime.NewFakeClock(time.Unix(0, 0))
	net := faultinject.NewNetwork(faultinject.NetConfig{
		Seed:      2024,
		Drop:      0.05,
		Duplicate: 0.05,
		Delay:     0.10,
	})

	var injMu sync.Mutex
	injectors := make(map[string]*faultinject.Resolver)
	var evalSeed int64
	f, err := cluster.NewFleet(cluster.FleetConfig{
		Replicas: 5,
		Node: cluster.NodeConfig{
			GossipInterval: time.Second,
			SuspectAfter:   3 * time.Second,
			DeadAfter:      9 * time.Second,
			Clock:          clk,
			Seed:           7,
		},
		Server: server.Config{
			Service:       "app",
			QueueCapacity: 8,
			Hedge:         server.HedgeConfig{Disabled: true},
			Limiter: server.LimiterConfig{
				Initial:       2,
				Min:           1,
				Max:           4,
				LatencyTarget: 2 * time.Millisecond,
			},
			InitialEstimate: 50 * time.Microsecond,
		},
		NewEvaluator: func(id string) server.Evaluator {
			injMu.Lock()
			defer injMu.Unlock()
			evalSeed++
			inj := faultinject.Wrap(buildClusterAssembly(t), faultinject.Options{
				Seed:              1000 + evalSeed,
				LookupFailureRate: 0.20,
				BindFailureRate:   0.15,
				ExemptServices:    []string{"app", "app2"},
			})
			injectors[id] = inj
			return soakEval{resolver: inj}
		},
		Network: net,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	watchAll(t, f, "provider", 0.99)

	// Warm every replica's degradation store for both scopes, recording
	// each scope's exact value — the oracle for the leak check.
	scopeService := map[string]string{"A": "app", "B": "app2"}
	pExact := make(map[string]float64)
	for _, node := range f.Nodes() {
		for scope, svc := range scopeService {
			warmed := false
			for i := 0; i < 300 && !warmed; i++ {
				ans := node.Server().Serve(ctx, server.Request{Scope: scope, Service: svc})
				if ans.IsExact() {
					if p, seen := pExact[scope]; seen && p != ans.Pfail {
						t.Fatalf("replicas disagree on exact value for scope %s: %v vs %v", scope, p, ans.Pfail)
					}
					pExact[scope] = ans.Pfail
					warmed = true
				}
			}
			if !warmed {
				t.Fatalf("%s never produced an exact answer for scope %s", node.ID(), scope)
			}
		}
	}
	if pExact["A"] == pExact["B"] {
		t.Fatalf("scopes share the exact value %v — the leak check would be vacuous", pExact["A"])
	}
	f.GossipRound() // membership warm: everyone exchanges first heartbeats

	// burst floods the fleet and collects scope-tagged answers; no
	// arrival pacing, so nothing sleeps.
	burst := func(phase string) []scopedAnswer {
		answers := make(chan scopedAnswer, n)
		rep := faultinject.Burst(faultinject.BurstConfig{N: n, Seed: 99}, func(i int) error {
			scope := "A"
			if i%2 == 1 {
				scope = "B"
			}
			ans := f.Serve(ctx, server.Request{
				Scope:    scope,
				Service:  scopeService[scope],
				Priority: server.Priority(i % 3),
			})
			answers <- scopedAnswer{scope: scope, ans: ans}
			return nil
		})
		close(answers)
		if rep.Launched != n {
			t.Fatalf("%s: burst launched %d, want %d", phase, rep.Launched, n)
		}
		out := make([]scopedAnswer, 0, n)
		for sa := range answers {
			out = append(out, sa)
		}
		return out
	}

	// check enforces the per-answer invariants and returns the mix.
	check := func(phase string, answers []scopedAnswer) (exact, degraded int) {
		for _, sa := range answers {
			ans, want := sa.ans, pExact[sa.scope]
			if ans.Kind == socruntime.AnswerKind(0) {
				t.Fatalf("%s: untagged answer %+v", phase, ans)
			}
			if (ans.Kind == socruntime.Exact) != (ans.Err == nil) {
				t.Fatalf("%s: exact ⇔ nil-error violated: %+v", phase, ans)
			}
			switch ans.Kind {
			case socruntime.Exact, socruntime.Stale:
				if ans.Pfail != want {
					t.Fatalf("%s: scope %s got %v, want %v — cross-scope leak", phase, sa.scope, ans.Pfail, want)
				}
			case socruntime.Bounded:
				if ans.Lo != want || ans.Hi != want {
					t.Fatalf("%s: scope %s bounds [%v,%v], want [%v,%v]", phase, sa.scope, ans.Lo, ans.Hi, want, want)
				}
			}
			if ans.Kind == socruntime.Exact {
				exact++
			} else {
				degraded++
			}
		}
		return exact, degraded
	}

	// Phase A: healthy fleet under flood.
	exactA, degradedA := check("healthy", burst("healthy"))

	// Chaos: kill one replica outright and split the survivors.
	if !f.Kill("replica-1") {
		t.Fatal("Kill refused")
	}
	net.Partition([]string{"replica-0", "replica-2"}, []string{"replica-3", "replica-4"})

	// Phase B: flood the wounded fleet.
	exactB, degradedB := check("partitioned", burst("partitioned"))

	// Trip the provider on replica-0 and let suspicion run its course:
	// 12 virtual seconds of gossip is past DeadAfter for the killed
	// replica and for each side's view of the other.
	tripNode(t, f.Node("replica-0"), "provider")
	for i := 0; i < 12; i++ {
		clk.Advance(time.Second)
		f.GossipRound()
	}
	if !f.Node("replica-2").Quarantined("provider") {
		t.Fatal("quarantine did not spread within the partition side")
	}
	for _, id := range []string{"replica-3", "replica-4"} {
		if f.Node(id).Quarantined("provider") {
			t.Fatalf("quarantine leaked across the partition to %s", id)
		}
	}
	for _, id := range []string{"replica-0", "replica-2", "replica-3", "replica-4"} {
		if got := f.Node(id).MemberState("replica-1"); got != cluster.Dead {
			t.Fatalf("%s judges the killed replica %v, want dead", id, got)
		}
	}

	// Heal. Convergence must be bounded: within a few rounds every live
	// replica quarantines the provider and the far side is revived.
	net.Heal()
	net.Flush()
	rounds := 0
	for ; rounds < 4 && !f.Quarantined("provider"); rounds++ {
		f.GossipRound()
	}
	if !f.Quarantined("provider") {
		t.Fatalf("fleet-wide quarantine did not converge within %d post-heal rounds", rounds)
	}
	if got := f.Node("replica-0").MemberState("replica-3"); got != cluster.Alive {
		t.Fatalf("far side not revived after heal: %v", got)
	}
	if got := f.Node("replica-0").MemberState("replica-1"); got != cluster.Dead {
		t.Fatalf("heal resurrected the killed replica: %v", got)
	}

	// Phase C: flood the healed fleet.
	exactC, degradedC := check("healed", burst("healed"))

	exact := exactA + exactB + exactC
	degraded := degradedA + degradedB + degradedC
	if exact == 0 {
		t.Fatal("soak produced no exact answers: the fleet never actually served")
	}
	if degraded == 0 {
		t.Fatal("soak produced no degraded answers: chaos never engaged the ladder")
	}

	var sheds, skipped uint64
	injected := 0
	for _, node := range f.Live() {
		st := node.Server().Stats()
		if st.Inflight != 0 || st.QueueDepth != 0 {
			t.Fatalf("%s not quiescent after soak: %+v", node.ID(), st)
		}
		sheds += st.ShedQueueFull + st.ShedClass + st.ShedDeadline + st.SweptExpired
		skipped += node.Stats().RumorsSkipped
	}
	injMu.Lock()
	for _, inj := range injectors {
		injected += inj.Injected()
	}
	injMu.Unlock()
	// Shedding is scheduler-dependent with unpaced arrivals — a lucky
	// schedule can drain the queue as fast as it fills — so it is
	// reported, not required; the server-level soak asserts it under
	// paced overload.
	if skipped == 0 {
		t.Fatal("no rumor was version-vector-skipped across the whole soak")
	}
	if injected == 0 {
		t.Fatal("the fault injectors never fired")
	}
	ns := net.Stats()
	if ns.Dropped == 0 && ns.Blocked == 0 {
		t.Fatal("the network injector neither dropped nor blocked a message")
	}
	t.Logf("soak: %d exact / %d degraded over %d requests (A %d/%d, B %d/%d, C %d/%d); %d sheds, %d vv-skips, %d injected faults, net %+v, %d post-heal rounds",
		exact, degraded, 3*n, exactA, degradedA, exactB, degradedB, exactC, degradedC, sheds, skipped, injected, ns, rounds)

	// Zero goroutine leaks: forwards, waiters, and burst workers must all
	// unwind once the floods drain.
	deadline := time.Now().Add(2 * time.Second)
	for {
		gorun.GC()
		if g := gorun.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, gorun.NumGoroutine(), buf[:gorun.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
