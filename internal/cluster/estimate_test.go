package cluster_test

import (
	"math"
	"testing"
	"time"

	"socrel/internal/cluster"
	"socrel/internal/estimate"
	"socrel/internal/faultinject"
	"socrel/internal/monitor"
	socruntime "socrel/internal/runtime"
	"socrel/internal/server"
)

// newEstimatorFleet builds a deterministic fleet where every replica
// carries a failure-parameter estimator wired through FleetConfig.
func newEstimatorFleet(t *testing.T, replicas int, net *faultinject.Network, clk socruntime.Clock) *cluster.Fleet {
	t.Helper()
	f, err := cluster.NewFleet(cluster.FleetConfig{
		Replicas: replicas,
		Node: cluster.NodeConfig{
			GossipInterval: time.Second,
			SuspectAfter:   3 * time.Second,
			DeadAfter:      9 * time.Second,
			Clock:          clk,
			Seed:           42,
		},
		Server:       server.Config{Hedge: server.HedgeConfig{Disabled: true}},
		NewEvaluator: func(id string) server.Evaluator { return constEval{p: 0.25} },
		NewEstimator: func(id string) *estimate.Estimator {
			est, err := estimate.New(estimate.Config{Clock: clk})
			if err != nil {
				t.Fatal(err)
			}
			return est
		},
		Network: net,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)
	return f
}

// TestEstimateGossipConverges: observations fed to one replica's
// estimator reach every replica within one full-fanout push round, and
// the merged fits agree with the observing replica's.
func TestEstimateGossipConverges(t *testing.T) {
	clk := socruntime.NewFakeClock(time.Unix(0, 0))
	f := newEstimatorFleet(t, 3, nil, clk)
	k := estimate.Key{Provider: "prov", Context: "app"}

	n0 := f.Node("replica-0")
	for i := 0; i < 100; i++ {
		n0.ObserveEstimate(estimate.Outcome{
			Provider: k.Provider, Context: k.Context,
			Failed: i%10 == 0, Exposure: 1,
		})
	}
	want, ok := n0.Estimator().Estimate(k)
	if !ok {
		t.Fatal("observing replica has no fit")
	}

	if _, ok := f.Node("replica-2").Estimator().Estimate(k); ok {
		t.Fatal("estimate leaked before any gossip")
	}
	f.GossipRound()
	for _, n := range f.Nodes() {
		got, ok := n.Estimator().Estimate(k)
		if !ok {
			t.Fatalf("%s has no fit after gossip", n.ID())
		}
		if math.Abs(got.Rate-want.Rate) > 1e-12 || got.Observations != want.Observations {
			t.Fatalf("%s fit %+v diverges from observer's %+v", n.ID(), got, want)
		}
	}
	if st := f.Node("replica-1").Stats(); st.EstimatesMerged == 0 {
		t.Fatalf("no estimate merges counted: %+v", st)
	}
}

// TestEstimateGossipIdempotent: redelivered rumors are version-vector
// skips; redundant merges never inflate the evidence.
func TestEstimateGossipIdempotent(t *testing.T) {
	clk := socruntime.NewFakeClock(time.Unix(0, 0))
	f := newEstimatorFleet(t, 3, nil, clk)
	k := estimate.Key{Provider: "prov", Context: "app"}
	n0 := f.Node("replica-0")
	for i := 0; i < 50; i++ {
		n0.ObserveEstimate(estimate.Outcome{Provider: k.Provider, Context: k.Context, Failed: i%5 == 0})
	}
	f.GossipRound()
	n2 := f.Node("replica-2")
	before, _ := n2.Estimator().Estimate(k)
	merged := n2.Stats().EstimatesMerged
	for i := 0; i < 3; i++ {
		f.GossipRound()
	}
	after, _ := n2.Estimator().Estimate(k)
	if after != before {
		t.Fatalf("estimate changed without new observations: %+v -> %+v", before, after)
	}
	if got := n2.Stats().EstimatesMerged; got != merged {
		t.Fatalf("quiescent rounds still merged estimates: %d -> %d", merged, got)
	}
}

// TestEstimateDriftVerdictRidesGossip: a drift verdict reached on the
// observing replica is adopted by replicas that saw none of the traffic.
func TestEstimateDriftVerdictRidesGossip(t *testing.T) {
	clk := socruntime.NewFakeClock(time.Unix(0, 0))
	f := newEstimatorFleet(t, 3, nil, clk)
	k := estimate.Key{Provider: "prov", Context: "app"}
	n0 := f.Node("replica-0")
	if err := n0.Estimator().SetBound(k, 0.05); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		v, _ := n0.Estimator().Verdict(k)
		if v == monitor.Violating {
			break
		}
		n0.ObserveEstimate(estimate.Outcome{Provider: k.Provider, Context: k.Context, Failed: i%3 == 0})
	}
	if v, dir := n0.Estimator().Verdict(k); dir != 1 {
		t.Fatalf("observer never detected upward drift: verdict %v dir %d", v, dir)
	}
	f.GossipRound()
	for _, n := range f.Nodes() {
		if _, dir := n.Estimator().Verdict(k); dir != 1 {
			t.Fatalf("%s did not adopt the drift verdict via gossip", n.ID())
		}
	}
}

// TestServerOutcomesFeedEstimator: the fleet's OnOutcome chaining means
// plain served requests populate the estimator without any extra wiring.
func TestServerOutcomesFeedEstimator(t *testing.T) {
	clk := socruntime.NewFakeClock(time.Unix(0, 0))
	f := newEstimatorFleet(t, 1, nil, clk)
	n := f.Node("replica-0")
	for i := 0; i < 10; i++ {
		ans := n.Serve(nil, server.Request{Service: "app", Scope: "m"})
		if ans.Kind != socruntime.Exact {
			t.Fatalf("serve degraded: %+v", ans)
		}
	}
	k := estimate.Key{Provider: "app", Context: "m"}
	est, ok := n.Estimator().Estimate(k)
	if !ok {
		t.Fatal("served traffic did not reach the estimator")
	}
	if est.Observations != 10 || est.Failures != 0 {
		t.Fatalf("estimator saw %d obs / %d failures, want 10 / 0", est.Observations, est.Failures)
	}
}
