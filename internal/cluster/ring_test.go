package cluster_test

import (
	"fmt"
	"testing"

	"socrel/internal/cluster"
)

func ringOf(nodes ...string) *cluster.Ring {
	r := cluster.NewRing(64)
	for _, n := range nodes {
		r.Add(n)
	}
	return r
}

func owners(r *cluster.Ring, keys []string) map[string]string {
	out := make(map[string]string, len(keys))
	for _, k := range keys {
		o, ok := r.Owner(k)
		if !ok {
			panic("empty ring")
		}
		out[k] = o
	}
	return out
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = cluster.RouteKey(fmt.Sprintf("scope-%d", i%7), "app", []float64{float64(i) / 100})
	}
	return keys
}

// TestRingBalance: with 64 virtual nodes per replica, no replica owns
// less than half or more than twice its fair share of keys. FNV is
// deterministic, so this is a fixed property, not a flaky one.
func TestRingBalance(t *testing.T) {
	const n = 5
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("replica-%d", i)
	}
	r := ringOf(nodes...)
	keys := testKeys(5000)
	counts := make(map[string]int)
	for _, o := range owners(r, keys) {
		counts[o]++
	}
	fair := len(keys) / n
	for _, node := range nodes {
		if c := counts[node]; c < fair/2 || c > fair*2 {
			t.Errorf("%s owns %d keys, outside [%d, %d]", node, c, fair/2, fair*2)
		}
	}
}

// TestRingChurnOnLeave: removing a replica moves exactly the keys it
// owned — every other assignment is untouched — and re-adding it
// restores the original assignment bit for bit.
func TestRingChurnOnLeave(t *testing.T) {
	nodes := make([]string, 10)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("replica-%d", i)
	}
	r := ringOf(nodes...)
	keys := testKeys(2000)
	before := owners(r, keys)

	r.Remove("replica-3")
	after := owners(r, keys)
	for _, k := range keys {
		switch {
		case before[k] == "replica-3":
			if after[k] == "replica-3" {
				t.Fatalf("key still owned by removed replica")
			}
		case after[k] != before[k]:
			t.Fatalf("key not owned by the leaver moved: %s -> %s", before[k], after[k])
		}
	}

	r.Add("replica-3")
	restored := owners(r, keys)
	for _, k := range keys {
		if restored[k] != before[k] {
			t.Fatalf("rejoin did not restore ownership: %s vs %s", restored[k], before[k])
		}
	}
}

// TestRingChurnOnJoin: a new replica takes roughly its fair share
// K/(N+1) and no more than twice that — bounded churn, not a reshuffle.
func TestRingChurnOnJoin(t *testing.T) {
	nodes := make([]string, 10)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("replica-%d", i)
	}
	r := ringOf(nodes...)
	keys := testKeys(2000)
	before := owners(r, keys)

	r.Add("replica-10")
	after := owners(r, keys)
	moved := 0
	for _, k := range keys {
		if after[k] != before[k] {
			if after[k] != "replica-10" {
				t.Fatalf("join moved a key to a pre-existing replica: %s -> %s", before[k], after[k])
			}
			moved++
		}
	}
	fair := len(keys) / (len(nodes) + 1)
	if moved > 2*fair {
		t.Errorf("join moved %d keys, want <= %d (2x fair share)", moved, 2*fair)
	}
	if moved == 0 {
		t.Error("join moved no keys — new replica owns nothing")
	}
}

// TestRouteKeyRegions: nearby parameters quantize to the same route key
// (so a sweep stays on one replica's caches) while distinct scopes,
// services, and far-apart parameters route independently.
func TestRouteKeyRegions(t *testing.T) {
	base := cluster.RouteKey("A", "app", []float64{0.5})
	if got := cluster.RouteKey("A", "app", []float64{0.5 + 1e-8}); got != base {
		t.Error("nearby parameters landed in different regions")
	}
	if got := cluster.RouteKey("A", "app", []float64{0.6}); got == base {
		t.Error("distant parameters landed in the same region")
	}
	if got := cluster.RouteKey("B", "app", []float64{0.5}); got == base {
		t.Error("different scopes share a route key")
	}
	if got := cluster.RouteKey("A", "app2", []float64{0.5}); got == base {
		t.Error("different services share a route key")
	}
	if got := cluster.RouteKey("A", "app", nil); got == base {
		t.Error("different parameter arity shares a route key")
	}
}

// TestRingOwnerEmpty: an empty ring reports no owner rather than lying.
func TestRingOwnerEmpty(t *testing.T) {
	r := cluster.NewRing(0)
	if _, ok := r.Owner("anything"); ok {
		t.Fatal("empty ring claimed an owner")
	}
}
