package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"socrel/internal/estimate"
	"socrel/internal/monitor"
	socruntime "socrel/internal/runtime"
	"socrel/internal/server"
)

// ErrStopped is the terminal error a stopped node attaches to the
// Unavailable answers it hands out.
var ErrStopped = errors.New("cluster: node stopped")

// NodeConfig configures one replica.
type NodeConfig struct {
	// ID names the replica; it must be unique fleet-wide.
	ID string
	// Seeds are the replica IDs known at boot (self is implied). Every
	// seed starts Alive on the ring; gossip corrects the optimism.
	Seeds []string
	// VNodes is the virtual-node count per replica (default 64).
	VNodes int
	// Fanout is how many live peers each gossip round pushes to; 0 means
	// all of them (fine for small fleets, where a full push converges in
	// one round along every surviving link).
	Fanout int
	// GossipInterval is the background gossip period (default 100ms).
	// Only Fleet.Start's loop uses it; tests drive rounds directly.
	GossipInterval time.Duration
	// SuspectAfter is the silence after which a peer turns Suspect
	// (default 4 gossip intervals).
	SuspectAfter time.Duration
	// DeadAfter is the silence after which a peer turns Dead and leaves
	// the ring (default 12 gossip intervals; clamped above SuspectAfter).
	DeadAfter time.Duration
	// Seed feeds the fanout-selection RNG (deterministic per replica).
	Seed int64
	// GenBase offsets the node's evidence generation counter. A restarted
	// incarnation passes its predecessor's counter so the version-vector
	// entry it publishes for itself stays monotonic across the restart —
	// peers would otherwise dominance-skip its rumors as already-seen
	// until the fresh counter outran the ghost's.
	GenBase uint64
	// Clock supplies time; defaults to the real clock.
	Clock socruntime.Clock
}

func (c NodeConfig) withDefaults() NodeConfig {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = 100 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 4 * c.GossipInterval
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = 3 * c.SuspectAfter
	}
	if c.Clock == nil {
		c.Clock = socruntime.RealClock{}
	}
	return c
}

// NodeStats counts one replica's cluster-level traffic. Request counts
// classify by routing outcome; the per-request serving detail lives in
// the embedded server's own Stats.
type NodeStats struct {
	// ServedLocal counts requests this replica owned (or that had no
	// owner because the ring was empty) and served directly.
	ServedLocal uint64
	// Forwarded counts requests handed to their owner, one hop.
	Forwarded uint64
	// ForwardFailed counts forwards that failed (peer unreachable or
	// stopped) and fell back to serving locally.
	ForwardFailed uint64
	// ServedForDead counts requests whose ring owner was marked Dead, so
	// this replica served them itself rather than forwarding into a hole.
	ServedForDead uint64
	// ServedForwarded counts requests received from a peer's forward.
	ServedForwarded uint64
	// ReadRepaired counts forwarded answers whose fresher snapshot was
	// pushed back into this replica's own stale store, so a later
	// partition finds the entry already warm here.
	ReadRepaired uint64
	// RumorsSent and RumorsReceived count gossip traffic.
	RumorsSent     uint64
	RumorsReceived uint64
	// RumorsSkipped counts received rumors whose version vector the
	// local one already dominated — no merge needed.
	RumorsSkipped uint64
	// EvidenceMerged counts rumors actually folded into the tracker.
	EvidenceMerged uint64
	// BadRumors counts rumors whose evidence failed validation.
	BadRumors uint64
	// EstimatesMerged counts rumors whose estimator checkpoint was folded
	// into the local estimator; BadEstimates counts rumors where that
	// merge rejected at least one snapshot.
	EstimatesMerged uint64
	BadEstimates    uint64
}

// Node is one replica: an embedded serving tier (admission control,
// degradation ladder) plus a health tracker, joined to its peers by
// consistent-hash routing and health-evidence gossip. All methods are
// safe for concurrent use.
type Node struct {
	cfg       NodeConfig
	clock     socruntime.Clock
	srv       *server.Server
	tracker   *socruntime.HealthTracker
	transport Transport

	// est is the optional failure-parameter estimator whose snapshots
	// ride this replica's gossip. Stored atomically so observation and
	// gossip paths never take node.mu to reach it (same reasoning as
	// evidenceGen).
	est atomic.Pointer[estimate.Estimator]

	// evidenceGen counts locally observed health outcomes. It is atomic,
	// not mu-guarded, so Observe wrappers never take the node lock —
	// HealthTracker callbacks (OnTrip) run under the tracker's lock, and
	// keeping observation paths off node.mu rules out lock-order cycles
	// between the two.
	evidenceGen atomic.Uint64

	mu      sync.Mutex
	ring    *Ring
	members map[string]*member
	vv      map[string]uint64
	rng     *rand.Rand
	stats   NodeStats
	stopped bool
}

// NewNode wires a replica over an existing server and tracker and
// registers nothing — callers register it with the transport when it is
// ready to receive (Fleet does both).
func NewNode(cfg NodeConfig, srv *server.Server, tracker *socruntime.HealthTracker, transport Transport) (*Node, error) {
	if cfg.ID == "" {
		return nil, errors.New("cluster: NodeConfig.ID required")
	}
	if srv == nil || tracker == nil || transport == nil {
		return nil, errors.New("cluster: NewNode requires a server, tracker, and transport")
	}
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:       cfg,
		clock:     cfg.Clock,
		srv:       srv,
		tracker:   tracker,
		transport: transport,
		ring:      NewRing(cfg.VNodes),
		members:   make(map[string]*member),
		vv:        make(map[string]uint64),
		rng:       rand.New(rand.NewSource(cfg.Seed)),
	}
	n.evidenceGen.Store(cfg.GenBase)
	now := n.clock.Now()
	n.members[cfg.ID] = &member{id: cfg.ID, state: Alive, lastAlive: now}
	n.ring.Add(cfg.ID)
	for _, id := range cfg.Seeds {
		if id == cfg.ID || id == "" {
			continue
		}
		if _, ok := n.members[id]; ok {
			continue
		}
		n.members[id] = &member{id: id, state: Alive, lastAlive: now}
		n.ring.Add(id)
	}
	return n, nil
}

// ID returns the replica's name.
func (n *Node) ID() string { return n.cfg.ID }

// Server returns the embedded serving tier.
func (n *Node) Server() *server.Server { return n.srv }

// Tracker returns the embedded health tracker.
func (n *Node) Tracker() *socruntime.HealthTracker { return n.tracker }

// Watch registers a provider with the local SPRT monitor.
func (n *Node) Watch(provider string, predicted float64) error {
	return n.tracker.Watch(provider, predicted)
}

// Observe feeds one provider outcome to the local monitor and bumps the
// replica's evidence generation so the next gossip round carries it.
func (n *Node) Observe(provider string, success bool) monitor.Verdict {
	v := n.tracker.Observe(provider, success)
	n.evidenceGen.Add(1)
	return v
}

// AttachEstimator hooks a failure-parameter estimator into the replica:
// its checkpoint rides every subsequent gossip round, received rumors'
// estimates merge into it, and its observation generation counts toward
// the replica's version-vector entry. Attach before gossip starts;
// attaching nil detaches.
func (n *Node) AttachEstimator(est *estimate.Estimator) {
	n.est.Store(est)
}

// Estimator returns the attached estimator (nil if none).
func (n *Node) Estimator() *estimate.Estimator {
	return n.est.Load()
}

// ObserveEstimate feeds one invocation outcome to the attached estimator
// (a no-op without one), returning the bucket's drift verdict. The next
// gossip round carries the updated snapshot.
func (n *Node) ObserveEstimate(o estimate.Outcome) monitor.Verdict {
	est := n.est.Load()
	if est == nil {
		return monitor.Undecided
	}
	return est.Observe(o)
}

// EvidenceGen returns the node's current evidence generation — the sum
// of locally observed health outcomes and estimator observations, on
// top of any GenBase. It is the version-vector entry the next gossip
// round will publish; Fleet.Restart passes it forward as the successor
// incarnation's GenBase.
func (n *Node) EvidenceGen() uint64 {
	gen := n.evidenceGen.Load()
	if est := n.est.Load(); est != nil {
		gen += est.Gen()
	}
	return gen
}

// Quarantined reports whether this replica has the provider tripped —
// by its own observations or by merged peer evidence.
func (n *Node) Quarantined(provider string) bool {
	return n.tracker.Quarantined(provider)
}

// Stats returns a snapshot of the replica's cluster counters.
func (n *Node) Stats() NodeStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Members returns the replica's current membership view, sorted by ID.
func (n *Node) Members() []MemberInfo {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]MemberInfo, 0, len(n.members))
	for _, id := range sortedMemberIDs(n.members) {
		m := n.members[id]
		out = append(out, MemberInfo{ID: m.id, State: m.state, Heartbeat: m.heartbeat})
	}
	return out
}

// MemberState returns this replica's liveness judgment of id (0 if
// unknown).
func (n *Node) MemberState(id string) MemberState {
	n.mu.Lock()
	defer n.mu.Unlock()
	if m, ok := n.members[id]; ok {
		return m.state
	}
	return 0
}

// Owner returns the replica currently owning the request's route key in
// this node's view of the ring.
func (n *Node) Owner(req server.Request) (string, bool) {
	key := RouteKey(req.Scope, req.Service, req.Params)
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ring.Owner(key)
}

// Stop marks the node stopped: it refuses requests and rumors and sends
// nothing. It does not drain the embedded server — a chaos kill is
// abrupt by design; call Server().Drain first for a graceful exit.
func (n *Node) Stop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.stopped = true
}

// Stopped reports whether Stop was called.
func (n *Node) Stopped() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stopped
}

// Serve routes the request: the ring owner serves it, with at most one
// forwarding hop. If the owner is Dead, unreachable, or this replica
// itself, the request is served locally — under partition every replica
// degrades per its own server's ladder rather than failing the caller.
func (n *Node) Serve(ctx context.Context, req server.Request) socruntime.Answer {
	key := RouteKey(req.Scope, req.Service, req.Params)

	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return unavailableAnswer(n.cfg.ID)
	}
	owner, ok := n.ring.Owner(key)
	ownerAlive := false
	if ok && owner != n.cfg.ID {
		if m := n.members[owner]; m != nil && m.state != Dead {
			ownerAlive = true
		}
	}
	n.mu.Unlock()

	if !ok || owner == n.cfg.ID {
		n.bump(func(s *NodeStats) { s.ServedLocal++ })
		return n.srv.Serve(ctx, req)
	}
	if !ownerAlive {
		n.bump(func(s *NodeStats) { s.ServedForDead++ })
		return n.srv.Serve(ctx, req)
	}
	ans, err := n.transport.Forward(ctx, n.cfg.ID, owner, req)
	if err != nil {
		n.bump(func(s *NodeStats) { s.ForwardFailed++ })
		return n.srv.Serve(ctx, req)
	}
	n.bump(func(s *NodeStats) { s.Forwarded++ })
	n.readRepair(req, ans)
	return ans
}

// readRepair folds a peer's answer back into the local stale store when
// it is fresher than what this replica holds, so requests this replica
// must serve itself during a later partition start from the owner's
// last-known-good value instead of a cold store.
func (n *Node) readRepair(req server.Request, ans socruntime.Answer) {
	if ans.Kind != socruntime.Exact && ans.Kind != socruntime.Stale {
		return
	}
	if ans.AsOf.IsZero() {
		return
	}
	lg := socruntime.LastGood{Pfail: ans.Pfail, Provider: ans.Provider, At: ans.AsOf}
	if n.srv.RepairSnapshot(req.Scope, req.Service, req.Params, lg) {
		n.bump(func(s *NodeStats) { s.ReadRepaired++ })
	}
}

// ServeForwarded serves a request received from a peer. It is terminal:
// the receiver never forwards again, so routing is at most one hop even
// when views of the ring disagree during churn.
func (n *Node) ServeForwarded(ctx context.Context, req server.Request) (socruntime.Answer, error) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return socruntime.Answer{}, fmt.Errorf("%w: %s", ErrStopped, n.cfg.ID)
	}
	n.stats.ServedForwarded++
	n.mu.Unlock()
	return n.srv.Serve(ctx, req), nil
}

// HandleRumor folds one received rumor into the local view: heartbeat
// advances revive and admit members, and evidence merges through the
// tracker unless the version vector proves it is old news. Merging is a
// semilattice join, so duplicated and reordered rumors are harmless.
func (n *Node) HandleRumor(r Rumor) {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	n.stats.RumorsReceived++
	now := n.clock.Now()
	changed := n.applyHeartbeatLocked(r.From, r.Heartbeat, now, true)
	for id, hb := range r.Heartbeats {
		if n.applyHeartbeatLocked(id, hb, now, false) {
			changed = true
		}
	}
	if changed {
		n.rebuildRingLocked()
	}
	skip := dominates(n.vv, r.EvidenceVV)
	if skip {
		n.stats.RumorsSkipped++
	}
	n.mu.Unlock()
	if skip {
		return
	}

	// Merge outside the node lock: MergeCheckpoint takes the tracker
	// lock, and holding both here would order node.mu before tracker.mu
	// on this path while pinning every tracker callback to the reverse.
	// The same ordering argument covers the estimator's lock.
	if err := n.tracker.MergeCheckpoint(r.Evidence); err != nil {
		n.bump(func(s *NodeStats) { s.BadRumors++ })
		return
	}
	if est := n.est.Load(); est != nil && len(r.Estimates) > 0 {
		if err := est.MergeCheckpoint(r.Estimates); err != nil {
			// Valid snapshots merged; the rejects stay the sender's
			// problem. The version vector still advances — replaying the
			// same bad snapshot next round would not fix it.
			n.bump(func(s *NodeStats) { s.BadEstimates++ })
		} else {
			n.bump(func(s *NodeStats) { s.EstimatesMerged++ })
		}
	}
	n.mu.Lock()
	mergeVV(n.vv, r.EvidenceVV)
	n.stats.EvidenceMerged++
	n.mu.Unlock()
}

// applyHeartbeatLocked records a heartbeat. A counter advance proves
// the member was alive more recently than we knew; unknown members join
// Alive. A direct heartbeat — one carried in a rumor authored by the
// member itself rather than relayed — is proof of life even without an
// advance: a restarted incarnation counts from zero, below the peak its
// predecessor gossiped, and would otherwise stay condemned until its
// fresh counter outran a ghost's. Returns true if ring membership
// changed.
func (n *Node) applyHeartbeatLocked(id string, hb uint64, now time.Time, direct bool) bool {
	if id == "" || id == n.cfg.ID {
		return false
	}
	m, ok := n.members[id]
	if !ok {
		n.members[id] = &member{id: id, state: Alive, heartbeat: hb, lastAlive: now}
		return true
	}
	advanced := hb > m.heartbeat
	if advanced {
		m.heartbeat = hb
	}
	if advanced || direct {
		m.lastAlive = now
		if m.state != Alive {
			revived := m.state == Dead
			m.state = Alive
			return revived
		}
	}
	return false
}

// sweepLocked advances the silence ladder: Alive → Suspect → Dead.
// Returns true if any member crossed into or out of the ring.
func (n *Node) sweepLocked(now time.Time) bool {
	changed := false
	for _, m := range n.members {
		if m.id == n.cfg.ID {
			continue
		}
		silence := now.Sub(m.lastAlive)
		switch {
		case silence >= n.cfg.DeadAfter:
			if m.state != Dead {
				m.state = Dead
				changed = true
			}
		case silence >= n.cfg.SuspectAfter:
			if m.state == Alive {
				m.state = Suspect
			}
		}
	}
	return changed
}

func (n *Node) rebuildRingLocked() {
	for _, m := range n.members {
		if m.state == Dead {
			n.ring.Remove(m.id)
		} else {
			n.ring.Add(m.id)
		}
	}
}

// GossipRound runs one push round: advance the local heartbeat, sweep
// the silence ladder, and send the full local view — heartbeats,
// evidence checkpoint, version vector — to Fanout live peers (all of
// them when Fanout is 0).
func (n *Node) GossipRound() {
	n.mu.Lock()
	if n.stopped {
		n.mu.Unlock()
		return
	}
	now := n.clock.Now()
	self := n.members[n.cfg.ID]
	self.heartbeat++
	self.lastAlive = now
	if n.sweepLocked(now) {
		n.rebuildRingLocked()
	}
	// The self entry sums the two local evidence counters (SPRT outcomes
	// and estimator observations): both are monotone, so the sum is a
	// valid version-vector component covering either stream advancing.
	n.vv[n.cfg.ID] = n.EvidenceGen()

	// Push targets include Dead-judged members. A Dead judgment is local
	// and possibly wrong — after a symmetric partition both sides condemn
	// each other, and if neither ever pushed to its "dead" peers again
	// the split would outlive the heal. Pushing to a true corpse costs
	// one dropped message; pushing to a wrongly-condemned peer carries
	// the fresh heartbeat that revives it.
	heartbeats := make(map[string]uint64, len(n.members))
	var peers []string
	for id, m := range n.members {
		heartbeats[id] = m.heartbeat
		if id != n.cfg.ID {
			peers = append(peers, id)
		}
	}
	sort.Strings(peers) // map order would leak into count-based fault injection
	vv := make(map[string]uint64, len(n.vv))
	for id, v := range n.vv {
		vv[id] = v
	}
	targets := peers
	if n.cfg.Fanout > 0 && len(peers) > n.cfg.Fanout {
		targets = make([]string, 0, n.cfg.Fanout)
		for _, i := range n.rng.Perm(len(peers))[:n.cfg.Fanout] {
			targets = append(targets, peers[i])
		}
	}
	hb := self.heartbeat
	n.mu.Unlock()

	r := Rumor{
		From:       n.cfg.ID,
		Heartbeat:  hb,
		Heartbeats: heartbeats,
		Evidence:   n.tracker.Checkpoint(),
		EvidenceVV: vv,
	}
	if est := n.est.Load(); est != nil {
		r.Estimates = est.Checkpoint()
	}
	for _, to := range targets {
		n.transport.Gossip(n.cfg.ID, to, r)
	}
	if len(targets) > 0 {
		sent := uint64(len(targets))
		n.bump(func(s *NodeStats) { s.RumorsSent += sent })
	}
}

func (n *Node) bump(f func(*NodeStats)) {
	n.mu.Lock()
	f(&n.stats)
	n.mu.Unlock()
}

func unavailableAnswer(id string) socruntime.Answer {
	return socruntime.Answer{
		Kind: socruntime.Unavailable,
		Err:  fmt.Errorf("%w: %s", ErrStopped, id),
	}
}

func sortedMemberIDs(members map[string]*member) []string {
	ids := make([]string, 0, len(members))
	for id := range members {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
