package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"socrel/internal/faultinject"
	socruntime "socrel/internal/runtime"
	"socrel/internal/server"
)

// ErrPeerUnreachable is returned by Forward when the target replica is
// gone, stopped, or cut off by a partition. The forwarding node treats
// it as "serve locally instead" — never as a client-visible failure.
var ErrPeerUnreachable = errors.New("cluster: peer unreachable")

// Transport moves cluster traffic between replicas. Gossip is
// fire-and-forget (the protocol tolerates arbitrary loss, duplication,
// and reordering); Forward is the synchronous one-hop request handoff
// and reports unreachability so the caller can fall back to serving
// locally.
type Transport interface {
	// Gossip delivers one rumor to a peer, best-effort.
	Gossip(from, to string, r Rumor)
	// Forward hands a misrouted request to its owning replica and
	// returns that replica's answer. The receiving side always serves
	// locally (at most one hop by construction).
	Forward(ctx context.Context, from, to string, req server.Request) (socruntime.Answer, error)
}

// LocalTransport connects in-process replicas, optionally routing every
// message through a faultinject.Network so tests (and the chaos soak)
// inject partitions, drops, duplicates, and reordering between replicas
// that share an address space. It is safe for concurrent use.
type LocalTransport struct {
	mu    sync.RWMutex
	nodes map[string]*Node
	net   *faultinject.Network
}

// NewLocalTransport returns an empty transport; net may be nil for a
// reliable network.
func NewLocalTransport(net *faultinject.Network) *LocalTransport {
	return &LocalTransport{nodes: make(map[string]*Node), net: net}
}

// Register attaches a node under its ID.
func (t *LocalTransport) Register(n *Node) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.nodes[n.ID()] = n
}

// Deregister detaches a node: subsequent gossip to it is dropped and
// forwards fail with ErrPeerUnreachable (a killed replica, as seen by
// the survivors).
func (t *LocalTransport) Deregister(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.nodes, id)
}

func (t *LocalTransport) lookup(to string) (*Node, *faultinject.Network) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nodes[to], t.net
}

// Gossip implements Transport.
func (t *LocalTransport) Gossip(from, to string, r Rumor) {
	target, net := t.lookup(to)
	if target == nil {
		return
	}
	if net != nil {
		net.Deliver(from, to, func() { target.HandleRumor(r) })
		return
	}
	target.HandleRumor(r)
}

// Forward implements Transport. Partitions block forwards the same way
// they block gossip; the random drop/delay rates do not apply — a
// forward is a synchronous call that either reaches the peer or fails
// loudly, not a datagram.
func (t *LocalTransport) Forward(ctx context.Context, from, to string, req server.Request) (socruntime.Answer, error) {
	target, net := t.lookup(to)
	if target == nil {
		return socruntime.Answer{}, fmt.Errorf("%w: %s is gone", ErrPeerUnreachable, to)
	}
	if net != nil && !net.Reachable(from, to) {
		return socruntime.Answer{}, fmt.Errorf("%w: %s partitioned from %s", ErrPeerUnreachable, to, from)
	}
	return target.ServeForwarded(ctx, req)
}
