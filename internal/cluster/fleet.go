package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"socrel/internal/estimate"
	"socrel/internal/faultinject"
	socruntime "socrel/internal/runtime"
	"socrel/internal/server"
)

// FleetConfig assembles N identically configured replicas over one
// in-process transport.
type FleetConfig struct {
	// Replicas is the initial fleet size (default 3).
	Replicas int
	// Node is the per-replica template; ID and Seeds are filled in per
	// replica (replica-0 .. replica-N-1, each seeded with the full
	// initial roster).
	Node NodeConfig
	// Server is the per-replica serving-tier template; its Clock is
	// forced to the fleet clock.
	Server server.Config
	// Health is the per-replica tracker template; its breaker clock
	// defaults to the fleet clock.
	Health socruntime.HealthConfig
	// NewEvaluator builds each replica's evaluator. Required. It may
	// return a shared evaluator if that evaluator is concurrency-safe.
	NewEvaluator func(id string) server.Evaluator
	// NewEstimator, when set, builds each replica's failure-parameter
	// estimator. The fleet attaches it to the node (so its snapshots ride
	// gossip and peer snapshots merge in) and chains the replica server's
	// OnOutcome hook to feed it: every evaluation outcome is observed
	// under bucket (provider = target service, context = request scope).
	// Richer feeds — supervisor outcome events carrying real provider
	// identities — call Node.ObserveEstimate directly.
	NewEstimator func(id string) *estimate.Estimator
	// Network, when set, carries all inter-replica traffic so tests can
	// partition, drop, duplicate, and reorder it.
	Network *faultinject.Network
	// NewClock, when set, supplies each replica's clock — the seam the
	// deterministic simulation harness uses to give every node its own
	// skewed view of one shared fake timeline. A nil result falls back
	// to the template Node.Clock. The fleet's own background gossip loop
	// stays on the template clock.
	NewClock func(id string) socruntime.Clock
}

// Fleet is a set of replicas plus the glue a caller needs: an entry
// point that spreads requests over live replicas, a deterministic
// gossip driver for tests, a background gossip loop for production, and
// chaos controls (Kill, AddReplica).
type Fleet struct {
	cfg       FleetConfig
	clock     socruntime.Clock
	transport *LocalTransport
	next      atomic.Uint64

	mu       sync.Mutex
	nodes    []*Node // creation order; killed replicas stay, marked stopped
	byID     map[string]*Node
	killed   map[string]bool
	restarts int // lifetime Restart count, offsets restarted-node seeds

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
	started  bool
}

// NewFleet builds and registers the initial replicas. No gossip runs
// until Start (background, real time) or GossipRound (explicit, tests).
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.NewEvaluator == nil {
		return nil, errors.New("cluster: FleetConfig.NewEvaluator required")
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	cfg.Node = cfg.Node.withDefaults()
	if cfg.Health.Breaker.Clock == nil {
		cfg.Health.Breaker.Clock = cfg.Node.Clock
	}
	cfg.Server.Clock = cfg.Node.Clock

	f := &Fleet{
		cfg:       cfg,
		clock:     cfg.Node.Clock,
		transport: NewLocalTransport(cfg.Network),
		byID:      make(map[string]*Node),
		killed:    make(map[string]bool),
		stopCh:    make(chan struct{}),
	}
	roster := make([]string, cfg.Replicas)
	for i := range roster {
		roster[i] = fmt.Sprintf("replica-%d", i)
	}
	for i, id := range roster {
		if _, err := f.addNodeLocked(id, roster, int64(i)); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// buildNode constructs and transport-registers one replica without
// recording it in the fleet's bookkeeping (addNodeLocked and Restart
// record it differently).
func (f *Fleet) buildNode(id string, seeds []string, seedOffset int64, genBase uint64) (*Node, error) {
	ncfg := f.cfg.Node
	ncfg.ID = id
	ncfg.Seeds = seeds
	ncfg.Seed = f.cfg.Node.Seed + seedOffset
	ncfg.GenBase = genBase
	scfg := f.cfg.Server
	if f.cfg.NewClock != nil {
		if c := f.cfg.NewClock(id); c != nil {
			ncfg.Clock = c
			scfg.Clock = c
		}
	}
	var est *estimate.Estimator
	if f.cfg.NewEstimator != nil {
		est = f.cfg.NewEstimator(id)
	}
	if est != nil {
		// Chain rather than replace: the caller's hook still fires, and
		// the estimator sees every completed evaluation. Latency
		// quantization gives per-load buckets, so a provider that only
		// degrades when slow is estimated apart from its healthy traffic.
		lq := estimate.DefaultLatencyQuantizer()
		inner := scfg.OnOutcome
		scfg.OnOutcome = func(o server.Outcome) {
			est.Observe(estimate.Outcome{
				Provider: o.Service,
				Context:  o.Scope,
				Load:     lq.Bucket(o.Latency),
				Failed:   !o.Success,
				Latency:  o.Latency,
				At:       o.At,
			})
			if inner != nil {
				inner(o)
			}
		}
	}
	srv := server.New(f.cfg.NewEvaluator(id), scfg)
	tracker := socruntime.NewHealthTracker(f.cfg.Health)
	n, err := NewNode(ncfg, srv, tracker, f.transport)
	if err != nil {
		return nil, err
	}
	n.AttachEstimator(est)
	f.transport.Register(n)
	return n, nil
}

// addNodeLocked builds, registers, and records one replica. The fleet
// lock need not be held during construction at boot, but AddReplica
// holds it; the name documents the latter caller.
func (f *Fleet) addNodeLocked(id string, seeds []string, seedOffset int64) (*Node, error) {
	n, err := f.buildNode(id, seeds, seedOffset, 0)
	if err != nil {
		return nil, err
	}
	f.nodes = append(f.nodes, n)
	f.byID[id] = n
	return n, nil
}

// Transport exposes the fleet's transport (tests register extra nodes
// or point standalone nodes at it).
func (f *Fleet) Transport() *LocalTransport { return f.transport }

// Node returns a replica by ID (nil if unknown). Killed replicas are
// still returned so tests can inspect their final state.
func (f *Fleet) Node(id string) *Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.byID[id]
}

// Nodes returns all replicas in creation order, killed ones included.
func (f *Fleet) Nodes() []*Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]*Node(nil), f.nodes...)
}

// Live returns the replicas not yet killed, in creation order.
func (f *Fleet) Live() []*Node {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.liveLocked()
}

func (f *Fleet) liveLocked() []*Node {
	out := make([]*Node, 0, len(f.nodes))
	for _, n := range f.nodes {
		if !f.killed[n.ID()] {
			out = append(out, n)
		}
	}
	return out
}

// Serve routes one request into the fleet through a round-robin choice
// of live entry replica — the entry replica then owns the at-most-one-
// hop routing decision. With no live replicas the answer is Unavailable.
func (f *Fleet) Serve(ctx context.Context, req server.Request) socruntime.Answer {
	live := f.Live()
	if len(live) == 0 {
		return unavailableAnswer("fleet")
	}
	entry := live[f.next.Add(1)%uint64(len(live))]
	return entry.Serve(ctx, req)
}

// GossipRound runs one synchronous round on every live replica in
// creation order, then flushes any injected delays so tests advance the
// protocol deterministically round by round.
func (f *Fleet) GossipRound() {
	for _, n := range f.Live() {
		n.GossipRound()
	}
	if f.cfg.Network != nil {
		f.cfg.Network.Flush()
	}
}

// Kill abruptly stops a replica: it stops serving and gossiping and is
// deregistered from the transport, so peers see forwards fail and
// heartbeats cease — exactly a process kill, minus the process.
func (f *Fleet) Kill(id string) bool {
	f.mu.Lock()
	n := f.byID[id]
	if n == nil || f.killed[id] {
		f.mu.Unlock()
		return false
	}
	f.killed[id] = true
	f.mu.Unlock()
	n.Stop()
	f.transport.Deregister(id)
	return true
}

// Restart brings a killed replica back under its original ID: a fresh
// node (empty stores, reset estimator, new incarnation) seeded with the
// current live roster, occupying the dead replica's slot. Peers re-admit
// it on its first gossip round and mark it Alive again. Restarting a
// live or unknown replica is an error.
func (f *Fleet) Restart(id string) (*Node, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	old := f.byID[id]
	if old == nil {
		return nil, fmt.Errorf("cluster: Restart(%q): unknown replica", id)
	}
	if !f.killed[id] {
		return nil, fmt.Errorf("cluster: Restart(%q): replica is live", id)
	}
	seeds := make([]string, 0, len(f.nodes)+1)
	for _, n := range f.liveLocked() {
		seeds = append(seeds, n.ID())
	}
	seeds = append(seeds, id) // rejoin its own ring slot immediately
	f.restarts++
	// Carry the predecessor's evidence generation forward: the version
	// vector is per identity, not per incarnation, and a counter that
	// restarted from zero would have this node's rumors dominance-skipped
	// by every peer that remembers the old one.
	n, err := f.buildNode(id, seeds, int64(len(f.nodes)+f.restarts), old.EvidenceGen())
	if err != nil {
		f.restarts--
		return nil, err
	}
	for i, existing := range f.nodes {
		if existing == old {
			f.nodes[i] = n
			break
		}
	}
	f.byID[id] = n
	delete(f.killed, id)
	return n, nil
}

// AddReplica joins one new replica seeded with the current live roster.
// Peers admit it on its first gossip round.
func (f *Fleet) AddReplica() (*Node, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	id := fmt.Sprintf("replica-%d", len(f.nodes))
	seeds := make([]string, 0, len(f.nodes))
	for _, n := range f.liveLocked() {
		seeds = append(seeds, n.ID())
	}
	return f.addNodeLocked(id, seeds, int64(len(f.nodes)))
}

// Quarantined reports whether every live replica has the provider
// quarantined — the fleet-wide convergence predicate the chaos soak
// asserts after a heal.
func (f *Fleet) Quarantined(provider string) bool {
	live := f.Live()
	if len(live) == 0 {
		return false
	}
	for _, n := range live {
		if !n.Quarantined(provider) {
			return false
		}
	}
	return true
}

// Start launches the background gossip loop on the fleet clock: one
// round per GossipInterval until Stop. Tests that want determinism call
// GossipRound directly and never Start.
func (f *Fleet) Start() {
	f.mu.Lock()
	if f.started {
		f.mu.Unlock()
		return
	}
	f.started = true
	f.mu.Unlock()
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		for {
			select {
			case <-f.stopCh:
				return
			case <-f.clock.After(f.cfg.Node.GossipInterval):
				f.GossipRound()
			}
		}
	}()
}

// Stop halts the background loop (if running) and stops every live
// replica. It does not drain; use Drain first for a graceful shutdown.
func (f *Fleet) Stop() {
	f.stopOnce.Do(func() { close(f.stopCh) })
	f.wg.Wait()
	for _, n := range f.Live() {
		n.Stop()
	}
}

// Drain gracefully drains every live replica's serving tier in
// parallel, returning the first error (all drains run regardless).
func (f *Fleet) Drain(ctx context.Context, timeout time.Duration) error {
	live := f.Live()
	errs := make(chan error, len(live))
	var wg sync.WaitGroup
	for _, n := range live {
		wg.Add(1)
		go func(n *Node) {
			defer wg.Done()
			_, err := n.Server().Drain(ctx, timeout)
			errs <- err
		}(n)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
