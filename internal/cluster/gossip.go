package cluster

import (
	"socrel/internal/estimate"
	"socrel/internal/monitor"
)

// Rumor is one anti-entropy gossip message: the sender's full view of
// fleet liveness and provider-health evidence. The evidence payload is
// the existing monitor checkpoint map — the wire format PR 3 built for
// process restarts turns out to be exactly the merge unit a fleet needs.
//
// Full-state push gossip keeps the protocol trivially idempotent: a
// receiver folds the whole rumor in with Snapshot.Merge (a semilattice
// join), so dropped, duplicated, delayed, or reordered rumors all
// converge to the same state. The version vector exists purely to skip
// redundant merges, not for correctness.
type Rumor struct {
	// From is the sending replica.
	From string
	// Heartbeat is the sender's own heartbeat counter at send time.
	Heartbeat uint64
	// Heartbeats is the sender's view of every replica's latest
	// heartbeat (its own included), carrying liveness transitively: a
	// replica that cannot reach another directly still learns it is
	// alive through a common peer.
	Heartbeats map[string]uint64
	// Evidence is the sender's merged provider-health checkpoint.
	Evidence map[string]monitor.Snapshot
	// EvidenceVV is the sender's version vector: for each replica, the
	// generation of that replica's locally observed evidence (SPRT
	// outcomes plus estimator observations) folded into Evidence and
	// Estimates. A receiver whose own vector dominates the rumor's can
	// skip the merge entirely — the rumor carries nothing new.
	EvidenceVV map[string]uint64
	// Estimates is the sender's merged failure-parameter estimator
	// checkpoint (nil when the sender has no estimator attached). Like
	// Evidence it merges as a semilattice join (estimate.Snapshot.Merge),
	// so replicas that never saw a drifting provider's traffic still
	// converge on the fleet's best evidence about it.
	Estimates map[string]estimate.Snapshot
}

// dominates reports whether local covers every entry of remote — i.e.
// the remote evidence is entirely old news.
func dominates(local, remote map[string]uint64) bool {
	for id, v := range remote {
		if local[id] < v {
			return false
		}
	}
	return true
}

// mergeVV folds remote into local entry-wise by max.
func mergeVV(local, remote map[string]uint64) {
	for id, v := range remote {
		if local[id] < v {
			local[id] = v
		}
	}
}
