package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"socrel/internal/cluster"
	"socrel/internal/faultinject"
	"socrel/internal/monitor"
	socruntime "socrel/internal/runtime"
	"socrel/internal/server"
)

// constEval answers every evaluation with a fixed pfail.
type constEval struct{ p float64 }

func (e constEval) PfailCtx(ctx context.Context, service string, params ...float64) (float64, error) {
	return e.p, nil
}

// newTestFleet builds a deterministic fleet on a fake clock: hedging
// off, explicit gossip timing, optional fault-injected network.
func newTestFleet(t *testing.T, replicas int, net *faultinject.Network, clk socruntime.Clock) *cluster.Fleet {
	t.Helper()
	f, err := cluster.NewFleet(cluster.FleetConfig{
		Replicas: replicas,
		Node: cluster.NodeConfig{
			GossipInterval: time.Second,
			SuspectAfter:   3 * time.Second,
			DeadAfter:      9 * time.Second,
			Clock:          clk,
			Seed:           42,
		},
		Server:       server.Config{Hedge: server.HedgeConfig{Disabled: true}},
		NewEvaluator: func(id string) server.Evaluator { return constEval{p: 0.25} },
		Network:      net,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Stop)
	return f
}

// watchAll registers a provider on every replica's monitor.
func watchAll(t *testing.T, f *cluster.Fleet, provider string, predicted float64) {
	t.Helper()
	for _, n := range f.Nodes() {
		if err := n.Watch(provider, predicted); err != nil {
			t.Fatal(err)
		}
	}
}

// tripNode feeds one replica failures until its local SPRT trips.
func tripNode(t *testing.T, n *cluster.Node, provider string) {
	t.Helper()
	for i := 0; i < 200 && n.Tracker().Verdict(provider) != monitor.Violating; i++ {
		n.Observe(provider, false)
	}
	if !n.Quarantined(provider) {
		t.Fatalf("%s never quarantined %s under a pure-failure stream", n.ID(), provider)
	}
}

// TestFleetQuarantineConverges: a provider tripped by SPRT on one
// replica is quarantined fleet-wide within bounded gossip rounds — here
// a single full-fanout push round.
func TestFleetQuarantineConverges(t *testing.T) {
	clk := socruntime.NewFakeClock(time.Unix(0, 0))
	f := newTestFleet(t, 3, nil, clk)
	watchAll(t, f, "prov", 0.99)
	tripNode(t, f.Node("replica-0"), "prov")

	if f.Node("replica-2").Quarantined("prov") {
		t.Fatal("quarantine leaked before any gossip")
	}
	f.GossipRound()
	if !f.Quarantined("prov") {
		t.Fatal("quarantine did not converge after one full-fanout round")
	}
}

// TestGossipIdempotentRedelivery: once converged, further rounds are
// version-vector skips — evidence totals never double-count.
func TestGossipIdempotentRedelivery(t *testing.T) {
	clk := socruntime.NewFakeClock(time.Unix(0, 0))
	f := newTestFleet(t, 3, nil, clk)
	watchAll(t, f, "prov", 0.99)
	tripNode(t, f.Node("replica-0"), "prov")
	f.GossipRound()

	totals := make(map[string]int)
	for _, n := range f.Nodes() {
		totals[n.ID()] = n.Tracker().Checkpoint()["prov"].Total
	}
	for i := 0; i < 3; i++ {
		f.GossipRound()
	}
	for _, n := range f.Nodes() {
		if got := n.Tracker().Checkpoint()["prov"].Total; got != totals[n.ID()] {
			t.Fatalf("%s evidence total changed across re-deliveries: %d -> %d", n.ID(), totals[n.ID()], got)
		}
	}
	skipped := uint64(0)
	for _, n := range f.Nodes() {
		skipped += n.Stats().RumorsSkipped
	}
	if skipped == 0 {
		t.Fatal("no rumor was version-vector-skipped after convergence")
	}
}

// TestMembershipLifecycle: a killed replica slides Alive → Suspect →
// Dead on the survivors' clocks, keeps its ring keys while Suspect, and
// is evicted from the ring once Dead.
func TestMembershipLifecycle(t *testing.T) {
	clk := socruntime.NewFakeClock(time.Unix(0, 0))
	f := newTestFleet(t, 3, nil, clk)
	f.GossipRound() // everyone exchanges first heartbeats
	if !f.Kill("replica-2") {
		t.Fatal("Kill refused")
	}

	obs := f.Node("replica-0")
	step := func() {
		clk.Advance(time.Second)
		f.GossipRound()
	}
	step()
	if got := obs.MemberState("replica-2"); got != cluster.Alive {
		t.Fatalf("after 1s silence state = %v, want alive", got)
	}
	for obs.MemberState("replica-2") == cluster.Alive {
		if clk.Now().After(time.Unix(8, 0)) {
			t.Fatal("killed replica never turned suspect")
		}
		step()
	}
	if got := obs.MemberState("replica-2"); got != cluster.Suspect {
		t.Fatalf("state after suspect window = %v, want suspect", got)
	}
	ownsWhileSuspect := ownedKeys(obs, "replica-2")
	if ownsWhileSuspect == 0 {
		t.Fatal("suspect replica lost its ring keys prematurely")
	}
	for obs.MemberState("replica-2") != cluster.Dead {
		if clk.Now().After(time.Unix(30, 0)) {
			t.Fatal("killed replica never turned dead")
		}
		step()
	}
	if got := ownedKeys(obs, "replica-2"); got != 0 {
		t.Fatalf("dead replica still owns %d keys", got)
	}
	for _, id := range []string{"replica-0", "replica-1"} {
		if got := f.Node(id).MemberState("replica-2"); got != cluster.Dead {
			t.Fatalf("%s sees the killed replica as %v, want dead", id, got)
		}
	}
}

// ownedKeys counts how many of a key sample the observer's ring assigns
// to the given replica.
func ownedKeys(n *cluster.Node, owner string) int {
	count := 0
	for i := 0; i < 200; i++ {
		req := server.Request{Scope: fmt.Sprintf("scope-%d", i), Params: []float64{float64(i)}}
		if o, ok := n.Owner(req); ok && o == owner {
			count++
		}
	}
	return count
}

// TestForwardOneHop: a request entering at a non-owner is handed to the
// owner exactly once, and the owner serves it locally.
func TestForwardOneHop(t *testing.T) {
	clk := socruntime.NewFakeClock(time.Unix(0, 0))
	f := newTestFleet(t, 3, nil, clk)
	entry := f.Node("replica-0")

	var req server.Request
	ownerID := ""
	for i := 0; i < 1000; i++ {
		req = server.Request{Scope: fmt.Sprintf("scope-%d", i), Params: []float64{0.5}}
		if o, ok := entry.Owner(req); ok && o != entry.ID() {
			ownerID = o
			break
		}
	}
	if ownerID == "" {
		t.Fatal("no scope routed away from the entry replica")
	}

	ans := entry.Serve(context.Background(), req)
	if !ans.IsExact() || ans.Pfail != 0.25 {
		t.Fatalf("forwarded answer = %+v, want exact 0.25", ans)
	}
	if got := entry.Stats().Forwarded; got != 1 {
		t.Fatalf("entry Forwarded = %d, want 1", got)
	}
	if got := f.Node(ownerID).Stats().ServedForwarded; got != 1 {
		t.Fatalf("owner ServedForwarded = %d, want 1", got)
	}
}

// TestForwardFallsBackWhenOwnerUnreachable: a killed owner that is not
// yet marked Dead fails the forward, and the entry replica serves the
// request itself — the caller still gets an exact answer.
func TestForwardFallsBackWhenOwnerUnreachable(t *testing.T) {
	clk := socruntime.NewFakeClock(time.Unix(0, 0))
	f := newTestFleet(t, 3, nil, clk)
	entry := f.Node("replica-0")

	var req server.Request
	ownerID := ""
	for i := 0; i < 1000; i++ {
		req = server.Request{Scope: fmt.Sprintf("scope-%d", i), Params: []float64{0.5}}
		if o, ok := entry.Owner(req); ok && o != entry.ID() {
			ownerID = o
			break
		}
	}
	f.Kill(ownerID) // abrupt: entry still believes the owner is Alive

	ans := entry.Serve(context.Background(), req)
	if !ans.IsExact() || ans.Pfail != 0.25 {
		t.Fatalf("fallback answer = %+v, want exact 0.25", ans)
	}
	st := entry.Stats()
	if st.ForwardFailed != 1 {
		t.Fatalf("ForwardFailed = %d, want 1", st.ForwardFailed)
	}

	// Once the owner is marked Dead, its keys rebalance to a survivor:
	// the entry either owns the key now or forwards to a live peer, and
	// never burns another failed hop on the corpse.
	for entry.MemberState(ownerID) != cluster.Dead {
		clk.Advance(time.Second)
		f.GossipRound()
		if clk.Now().After(time.Unix(60, 0)) {
			t.Fatal("owner never marked dead")
		}
	}
	if newOwner, ok := entry.Owner(req); !ok || newOwner == ownerID {
		t.Fatalf("dead replica %s still owns the key", ownerID)
	}
	if ans := entry.Serve(context.Background(), req); !ans.IsExact() {
		t.Fatalf("post-death answer = %+v, want exact", ans)
	}
	if st = entry.Stats(); st.ForwardFailed != 1 {
		t.Fatalf("entry kept forwarding to a dead owner: ForwardFailed = %d", st.ForwardFailed)
	}
}

// TestPartitionBlocksThenHealsConvergence: evidence tripped on one side
// of a partition must not leak across it; after the heal, one gossip
// round converges the whole fleet.
func TestPartitionBlocksThenHealsConvergence(t *testing.T) {
	clk := socruntime.NewFakeClock(time.Unix(0, 0))
	net := faultinject.NewNetwork(faultinject.NetConfig{Seed: 7})
	f := newTestFleet(t, 3, net, clk)
	watchAll(t, f, "prov", 0.99)

	net.Partition([]string{"replica-0", "replica-1"})
	tripNode(t, f.Node("replica-0"), "prov")

	for i := 0; i < 3; i++ {
		f.GossipRound()
	}
	if !f.Node("replica-1").Quarantined("prov") {
		t.Fatal("quarantine did not spread within the majority side")
	}
	if f.Node("replica-2").Quarantined("prov") {
		t.Fatal("quarantine leaked across the partition")
	}

	net.Heal()
	f.GossipRound()
	if !f.Quarantined("prov") {
		t.Fatal("fleet did not converge after heal within one round")
	}
}

// TestAddReplicaJoins: a joining replica is admitted by its first gossip
// round and starts owning keys.
func TestAddReplicaJoins(t *testing.T) {
	clk := socruntime.NewFakeClock(time.Unix(0, 0))
	f := newTestFleet(t, 3, nil, clk)
	f.GossipRound()

	joined, err := f.AddReplica()
	if err != nil {
		t.Fatal(err)
	}
	if joined.ID() != "replica-3" {
		t.Fatalf("joined as %s, want replica-3", joined.ID())
	}
	f.GossipRound()
	for _, id := range []string{"replica-0", "replica-1", "replica-2"} {
		if got := f.Node(id).MemberState("replica-3"); got != cluster.Alive {
			t.Fatalf("%s sees the joiner as %v, want alive", id, got)
		}
	}
	if got := ownedKeys(f.Node("replica-0"), "replica-3"); got == 0 {
		t.Fatal("joiner owns no keys in a peer's ring")
	}
}

// TestFleetServeWithNoLiveReplicas: total loss yields a tagged
// Unavailable answer with an error, never a silent zero.
func TestFleetServeWithNoLiveReplicas(t *testing.T) {
	clk := socruntime.NewFakeClock(time.Unix(0, 0))
	f := newTestFleet(t, 2, nil, clk)
	f.Kill("replica-0")
	f.Kill("replica-1")
	ans := f.Serve(context.Background(), server.Request{})
	if ans.Kind != socruntime.Unavailable || ans.Err == nil {
		t.Fatalf("answer from a dead fleet = %+v, want Unavailable with error", ans)
	}
	if !errors.Is(ans.Err, cluster.ErrStopped) {
		t.Fatalf("error %v does not wrap ErrStopped", ans.Err)
	}
}
