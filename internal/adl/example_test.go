package adl_test

import (
	"fmt"

	"socrel/internal/adl"
	"socrel/internal/core"
)

// Example parses a complete system description — services with their
// analytic interfaces plus an assembly — and predicts a reliability.
func Example() {
	const src = `
service node cpu {
    speed 1e9
    rate 1e-9
}
service imgresize composite(pixels) {
    attr phi 1e-9
    state work and nosharing {
        call node(50 * pixels) internal 1 - (1 - phi)^(50 * pixels)
    }
    transition Start -> work prob 1
    transition work -> End prob 1
}
assembly prod {
    bind imgresize.node -> node
}
`
	doc, err := adl.ParseDSL(src)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	asm, err := doc.BuildAssembly("prod")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rel, err := core.New(asm, core.Options{}).Reliability("imgresize", 1e6)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("reliability of resizing a megapixel image: %.6f\n", rel)
	// Output:
	// reliability of resizing a megapixel image: 0.951229
}

func ExampleMarshalJSON() {
	doc, err := adl.ParseDSL(`
service loc perfect(ip, op)
`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	data, err := adl.MarshalJSON(doc)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(string(data))
	// Output:
	// {
	//   "services": [
	//     {
	//       "name": "loc",
	//       "kind": "simple",
	//       "params": [
	//         "ip",
	//         "op"
	//       ],
	//       "pfail": "0"
	//     }
	//   ]
	// }
}
