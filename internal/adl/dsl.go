package adl

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"socrel/internal/assembly"
	"socrel/internal/expr"
	"socrel/internal/model"
)

// ParseError describes a DSL parse failure with its line number.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("adl: line %d: %s", e.Line, e.Msg)
}

// ErrSyntax is a sentinel all ParseErrors match with errors.Is.
var ErrSyntax = errors.New("adl: syntax error")

// Is reports whether target is ErrSyntax.
func (e *ParseError) Is(target error) bool { return target == ErrSyntax }

// ParseDSL parses ADL source text into a Document. See the package comment
// for the grammar.
func ParseDSL(source string) (*Document, error) {
	p := &dslParser{lines: strings.Split(source, "\n")}
	doc := &Document{}
	for {
		line, ok := p.next()
		if !ok {
			break
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "service":
			svc, err := p.parseService(line)
			if err != nil {
				return nil, err
			}
			if _, dup := doc.Service(svc.Name()); dup {
				return nil, p.errf("duplicate service %q", svc.Name())
			}
			doc.Services = append(doc.Services, svc)
		case "assembly":
			def, err := p.parseAssembly(line)
			if err != nil {
				return nil, err
			}
			doc.Assemblies = append(doc.Assemblies, *def)
		default:
			return nil, p.errf("expected 'service' or 'assembly', got %q", fields[0])
		}
	}
	for _, svc := range doc.Services {
		if err := svc.Validate(); err != nil {
			return nil, fmt.Errorf("adl: %w", err)
		}
	}
	return doc, nil
}

type dslParser struct {
	lines []string
	pos   int // index of the next line to read
}

// next returns the next non-empty line with comments stripped.
func (p *dslParser) next() (string, bool) {
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		p.pos++
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			return line, true
		}
	}
	return "", false
}

func (p *dslParser) errf(format string, args ...any) error {
	return &ParseError{Line: p.pos, Msg: fmt.Sprintf(format, args...)}
}

// splitHeader splits "service NAME KIND(arg, arg) {" into name, kind, args
// and whether a block follows.
func (p *dslParser) parseService(line string) (model.Service, error) {
	rest := strings.TrimSpace(strings.TrimPrefix(line, "service"))
	hasBlock := strings.HasSuffix(rest, "{")
	if hasBlock {
		rest = strings.TrimSpace(strings.TrimSuffix(rest, "{"))
	}
	sp := strings.IndexAny(rest, " \t")
	if sp < 0 {
		return nil, p.errf("service needs a name and a kind")
	}
	name := rest[:sp]
	kindPart := strings.TrimSpace(rest[sp+1:])
	kind := kindPart
	var argSrc string
	if i := strings.Index(kindPart, "("); i >= 0 {
		if !strings.HasSuffix(kindPart, ")") {
			return nil, p.errf("unbalanced parentheses in service header")
		}
		kind = kindPart[:i]
		argSrc = kindPart[i+1 : len(kindPart)-1]
	}

	switch kind {
	case "cpu":
		attrs, err := p.parseAttrBlock(hasBlock, "speed", "rate")
		if err != nil {
			return nil, err
		}
		return model.NewCPU(name, attrs["speed"], attrs["rate"]), nil
	case "network":
		attrs, err := p.parseAttrBlock(hasBlock, "bandwidth", "rate")
		if err != nil {
			return nil, err
		}
		return model.NewNetwork(name, attrs["bandwidth"], attrs["rate"]), nil
	case "lpc":
		attrs, err := p.parseAttrBlock(hasBlock, "l")
		if err != nil {
			return nil, err
		}
		lpc, err := model.NewLPC(name, attrs["l"])
		if err != nil {
			return nil, p.errf("lpc %s: %v", name, err)
		}
		return lpc, nil
	case "rpc":
		attrs, err := p.parseAttrBlock(hasBlock, "c", "m")
		if err != nil {
			return nil, err
		}
		rpc, err := model.NewRPC(name, attrs["c"], attrs["m"])
		if err != nil {
			return nil, p.errf("rpc %s: %v", name, err)
		}
		return rpc, nil
	case "queue":
		attrs, err := p.parseAttrBlock(hasBlock, "c", "m")
		if err != nil {
			return nil, err
		}
		q, err := model.NewQueue(name, attrs["c"], attrs["m"])
		if err != nil {
			return nil, p.errf("queue %s: %v", name, err)
		}
		return q, nil
	case "retry":
		attrs, err := p.parseAttrBlock(hasBlock, "attempts")
		if err != nil {
			return nil, err
		}
		r, err := model.NewRetry(name, int(attrs["attempts"]))
		if err != nil {
			return nil, p.errf("retry %s: %v", name, err)
		}
		return r, nil
	case "kofn_transport":
		// Optional attribute "sharing" (nonzero = the channels share one
		// underlying resource).
		attrs, err := p.parseAttrBlock(hasBlock, "n", "k")
		if err != nil {
			return nil, err
		}
		dep := model.NoSharing
		if attrs["sharing"] != 0 {
			dep = model.Sharing
		}
		kt, err := model.NewKOfNTransport(name, int(attrs["n"]), int(attrs["k"]), dep)
		if err != nil {
			return nil, p.errf("kofn_transport %s: %v", name, err)
		}
		return kt, nil
	case "perfect":
		if hasBlock {
			return nil, p.errf("perfect service takes no block")
		}
		return model.NewPerfect(name, splitIdentList(argSrc)...), nil
	case "constant":
		if hasBlock {
			return nil, p.errf("constant service takes no block")
		}
		parts := splitTopLevel(argSrc)
		if len(parts) == 0 {
			return nil, p.errf("constant service needs a probability")
		}
		pv, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, p.errf("constant probability: %v", err)
		}
		var formals []string
		for _, f := range parts[1:] {
			formals = append(formals, strings.TrimSpace(f))
		}
		return model.NewConstant(name, pv, formals...), nil
	case "simple":
		return p.parseSimpleBody(name, splitIdentList(argSrc), hasBlock)
	case "composite":
		return p.parseCompositeBody(name, splitIdentList(argSrc), hasBlock)
	default:
		return nil, p.errf("unknown service kind %q", kind)
	}
}

// parseAttrBlock reads "key value" lines until '}' and requires exactly the
// given keys.
func (p *dslParser) parseAttrBlock(hasBlock bool, required ...string) (map[string]float64, error) {
	if !hasBlock {
		return nil, p.errf("service kind requires a { ... } block with: %s", strings.Join(required, ", "))
	}
	attrs := make(map[string]float64)
	for {
		line, ok := p.next()
		if !ok {
			return nil, p.errf("unexpected end of input in block")
		}
		if line == "}" {
			break
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, p.errf("expected 'key value', got %q", line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, p.errf("value of %s: %v", fields[0], err)
		}
		attrs[fields[0]] = v
	}
	for _, r := range required {
		if _, ok := attrs[r]; !ok {
			return nil, p.errf("missing attribute %q", r)
		}
	}
	return attrs, nil
}

func (p *dslParser) parseSimpleBody(name string, formals []string, hasBlock bool) (model.Service, error) {
	if !hasBlock {
		return nil, p.errf("simple service requires a block with a pfail law")
	}
	attrs := model.Attrs{}
	var pfail expr.Expr
	for {
		line, ok := p.next()
		if !ok {
			return nil, p.errf("unexpected end of input in simple service %s", name)
		}
		if line == "}" {
			break
		}
		switch {
		case strings.HasPrefix(line, "attr "):
			if err := p.parseAttrLine(line, attrs); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "pfail "):
			e, err := expr.Parse(strings.TrimSpace(strings.TrimPrefix(line, "pfail")))
			if err != nil {
				return nil, p.errf("pfail: %v", err)
			}
			pfail = e
		default:
			return nil, p.errf("unexpected statement in simple service: %q", line)
		}
	}
	if pfail == nil {
		return nil, p.errf("simple service %s has no pfail law", name)
	}
	return model.NewSimple(name, formals, attrs, pfail), nil
}

func (p *dslParser) parseAttrLine(line string, attrs model.Attrs) error {
	fields := strings.Fields(line)
	if len(fields) != 3 {
		return p.errf("expected 'attr name value', got %q", line)
	}
	v, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return p.errf("attr %s: %v", fields[1], err)
	}
	attrs[fields[1]] = v
	return nil
}

func (p *dslParser) parseCompositeBody(name string, formals []string, hasBlock bool) (model.Service, error) {
	if !hasBlock {
		return nil, p.errf("composite service requires a block")
	}
	attrs := model.Attrs{}
	type stateDef struct {
		st   *stateHeader
		reqs []model.Request
	}
	var states []stateDef
	type transDef struct{ from, to, prob string }
	var transitions []transDef

	for {
		line, ok := p.next()
		if !ok {
			return nil, p.errf("unexpected end of input in composite %s", name)
		}
		if line == "}" {
			break
		}
		switch {
		case strings.HasPrefix(line, "attr "):
			if err := p.parseAttrLine(line, attrs); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "state "):
			hdr, err := p.parseStateHeader(line)
			if err != nil {
				return nil, err
			}
			reqs, err := p.parseStateBody()
			if err != nil {
				return nil, err
			}
			states = append(states, stateDef{st: hdr, reqs: reqs})
		case strings.HasPrefix(line, "transition "):
			rest := strings.TrimSpace(strings.TrimPrefix(line, "transition"))
			arrow := strings.Index(rest, "->")
			if arrow < 0 {
				return nil, p.errf("transition needs '->': %q", line)
			}
			from := strings.TrimSpace(rest[:arrow])
			rest = strings.TrimSpace(rest[arrow+2:])
			probIdx := strings.Index(rest, " prob ")
			if probIdx < 0 {
				return nil, p.errf("transition needs 'prob EXPR': %q", line)
			}
			to := strings.TrimSpace(rest[:probIdx])
			probSrc := strings.TrimSpace(rest[probIdx+6:])
			transitions = append(transitions, transDef{from: from, to: to, prob: probSrc})
		default:
			return nil, p.errf("unexpected statement in composite: %q", line)
		}
	}

	comp := model.NewComposite(name, formals, attrs)
	for _, sd := range states {
		st, err := comp.Flow().AddState(sd.st.name, sd.st.completion, sd.st.dependency)
		if err != nil {
			return nil, fmt.Errorf("adl: %w", err)
		}
		st.K = sd.st.k
		for _, r := range sd.reqs {
			st.AddRequest(r)
		}
	}
	for _, td := range transitions {
		prob, err := expr.Parse(td.prob)
		if err != nil {
			return nil, p.errf("transition probability %q: %v", td.prob, err)
		}
		if err := comp.Flow().AddTransition(td.from, td.to, prob); err != nil {
			return nil, fmt.Errorf("adl: %w", err)
		}
	}
	return comp, nil
}

type stateHeader struct {
	name       string
	completion model.Completion
	k          int
	dependency model.Dependency
}

// parseStateHeader parses "state NAME COMPLETION [K] DEPENDENCY {".
func (p *dslParser) parseStateHeader(line string) (*stateHeader, error) {
	if !strings.HasSuffix(line, "{") {
		return nil, p.errf("state header must end with '{': %q", line)
	}
	fields := strings.Fields(strings.TrimSuffix(line, "{"))
	if len(fields) < 4 {
		return nil, p.errf("state header needs 'state NAME COMPLETION DEPENDENCY': %q", line)
	}
	hdr := &stateHeader{name: fields[1]}
	rest := fields[2:]
	switch rest[0] {
	case "and":
		hdr.completion = model.AND
	case "or":
		hdr.completion = model.OR
	case "kofn":
		hdr.completion = model.KOfN
		if len(rest) < 3 {
			return nil, p.errf("kofn needs a threshold: %q", line)
		}
		k, err := strconv.Atoi(rest[1])
		if err != nil {
			return nil, p.errf("kofn threshold: %v", err)
		}
		hdr.k = k
		rest = rest[1:]
	default:
		return nil, p.errf("unknown completion model %q", rest[0])
	}
	switch rest[1] {
	case "nosharing":
		hdr.dependency = model.NoSharing
	case "sharing":
		hdr.dependency = model.Sharing
	default:
		return nil, p.errf("unknown dependency model %q", rest[1])
	}
	return hdr, nil
}

// parseStateBody parses "call ..." lines until '}'.
func (p *dslParser) parseStateBody() ([]model.Request, error) {
	var reqs []model.Request
	for {
		line, ok := p.next()
		if !ok {
			return nil, p.errf("unexpected end of input in state body")
		}
		if line == "}" {
			return reqs, nil
		}
		if !strings.HasPrefix(line, "call ") {
			return nil, p.errf("expected 'call' in state body, got %q", line)
		}
		req, err := p.parseCall(strings.TrimSpace(strings.TrimPrefix(line, "call")))
		if err != nil {
			return nil, err
		}
		reqs = append(reqs, *req)
	}
}

// parseCall parses "ROLE(args) [connector(args)] [internal EXPR]".
func (p *dslParser) parseCall(src string) (*model.Request, error) {
	role, args, rest, err := p.takeCallHead(src)
	if err != nil {
		return nil, err
	}
	req := &model.Request{Role: role}
	if req.Params, err = p.parseExprList(args); err != nil {
		return nil, err
	}
	rest = strings.TrimSpace(rest)
	if strings.HasPrefix(rest, "connector") {
		afterKw := strings.TrimSpace(strings.TrimPrefix(rest, "connector"))
		if !strings.HasPrefix(afterKw, "(") {
			return nil, p.errf("connector needs an argument list: %q", src)
		}
		inner, tail, err := takeBalanced(afterKw)
		if err != nil {
			return nil, p.errf("connector arguments: %v", err)
		}
		if req.ConnParams, err = p.parseExprList(inner); err != nil {
			return nil, err
		}
		rest = strings.TrimSpace(tail)
	}
	if strings.HasPrefix(rest, "internal") {
		src := strings.TrimSpace(strings.TrimPrefix(rest, "internal"))
		e, err := expr.Parse(src)
		if err != nil {
			return nil, p.errf("internal failure expression: %v", err)
		}
		req.Internal = e
		rest = ""
	}
	if rest != "" {
		return nil, p.errf("unexpected trailing text in call: %q", rest)
	}
	return req, nil
}

// takeCallHead splits "role(args) tail" into its pieces.
func (p *dslParser) takeCallHead(src string) (role, args, tail string, err error) {
	i := strings.Index(src, "(")
	if i < 0 {
		// A bare role with no parameters.
		fields := strings.Fields(src)
		if len(fields) == 0 {
			return "", "", "", p.errf("empty call")
		}
		return fields[0], "", strings.TrimSpace(strings.TrimPrefix(src, fields[0])), nil
	}
	role = strings.TrimSpace(src[:i])
	inner, rest, berr := takeBalanced(src[i:])
	if berr != nil {
		return "", "", "", p.errf("call arguments: %v", berr)
	}
	return role, inner, rest, nil
}

// takeBalanced consumes a balanced "(...)" prefix and returns its inner
// text and the remainder.
func takeBalanced(src string) (inner, rest string, err error) {
	if len(src) == 0 || src[0] != '(' {
		return "", "", fmt.Errorf("expected '('")
	}
	depth := 0
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '(':
			depth++
		case ')':
			depth--
			if depth == 0 {
				return src[1:i], src[i+1:], nil
			}
		}
	}
	return "", "", fmt.Errorf("unbalanced parentheses in %q", src)
}

// splitTopLevel splits a comma-separated list at depth zero.
func splitTopLevel(src string) []string {
	src = strings.TrimSpace(src)
	if src == "" {
		return nil
	}
	var parts []string
	depth, start := 0, 0
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, src[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, src[start:])
	return parts
}

func splitIdentList(src string) []string {
	var out []string
	for _, part := range splitTopLevel(src) {
		if s := strings.TrimSpace(part); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func (p *dslParser) parseExprList(src string) ([]expr.Expr, error) {
	parts := splitTopLevel(src)
	out := make([]expr.Expr, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		e, err := expr.Parse(part)
		if err != nil {
			return nil, p.errf("expression %q: %v", part, err)
		}
		out = append(out, e)
	}
	if len(out) == 0 {
		return nil, nil
	}
	return out, nil
}

// parseAssembly parses "assembly NAME {" and its bind statements.
func (p *dslParser) parseAssembly(line string) (*AssemblyDef, error) {
	if !strings.HasSuffix(line, "{") {
		return nil, p.errf("assembly header must end with '{': %q", line)
	}
	fields := strings.Fields(strings.TrimSuffix(line, "{"))
	if len(fields) != 2 {
		return nil, p.errf("assembly header needs a name: %q", line)
	}
	def := &AssemblyDef{Name: fields[1]}
	for {
		l, ok := p.next()
		if !ok {
			return nil, p.errf("unexpected end of input in assembly %s", def.Name)
		}
		if l == "}" {
			return def, nil
		}
		if !strings.HasPrefix(l, "bind ") {
			return nil, p.errf("expected 'bind' in assembly body, got %q", l)
		}
		b, err := p.parseBind(strings.TrimSpace(strings.TrimPrefix(l, "bind")))
		if err != nil {
			return nil, err
		}
		def.Bindings = append(def.Bindings, *b)
	}
}

// parseBind parses "CALLER.ROLE -> PROVIDER [via CONNECTOR]".
func (p *dslParser) parseBind(src string) (*assembly.Binding, error) {
	arrow := strings.Index(src, "->")
	if arrow < 0 {
		return nil, p.errf("bind needs '->': %q", src)
	}
	left := strings.TrimSpace(src[:arrow])
	right := strings.TrimSpace(src[arrow+2:])
	dot := strings.LastIndex(left, ".")
	if dot < 0 {
		return nil, p.errf("bind left side needs CALLER.ROLE: %q", src)
	}
	b := &assembly.Binding{Caller: left[:dot], Role: left[dot+1:]}
	fields := strings.Fields(right)
	switch len(fields) {
	case 1:
		b.Provider = fields[0]
	case 3:
		if fields[1] != "via" {
			return nil, p.errf("bind right side must be 'PROVIDER [via CONNECTOR]': %q", src)
		}
		b.Provider, b.Connector = fields[0], fields[2]
	default:
		return nil, p.errf("bind right side must be 'PROVIDER [via CONNECTOR]': %q", src)
	}
	if b.Caller == "" || b.Role == "" || b.Provider == "" {
		return nil, p.errf("bind has empty components: %q", src)
	}
	return b, nil
}
