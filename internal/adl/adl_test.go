package adl

import (
	"errors"
	"math"
	"strings"
	"testing"

	"socrel/internal/model"
)

// paperDSL is the paper's section 4 example written in the ADL.
const paperDSL = `
# The search/sort example of Grassi's section 4.
service cpu1 cpu {
    speed 1e9
    rate 1e-10
}
service cpu2 cpu {
    speed 1e9
    rate 1e-10
}
service net12 network {
    bandwidth 1e5
    rate 5e-3
}
service lpc lpc {
    l 1000
}
service rpc rpc {
    c 10
    m 270
}
service sort1 composite(list) {
    attr phi 1e-6
    state work and nosharing {
        call cpu(list * log2(list)) internal 1 - (1 - phi)^(list * log2(list))
    }
    transition Start -> work prob 1
    transition work -> End prob 1
}
service sort2 composite(list) {
    attr phi 1e-7
    state work and nosharing {
        call cpu(list * log2(list)) internal 1 - (1 - phi)^(list * log2(list))
    }
    transition Start -> work prob 1
    transition work -> End prob 1
}
service search composite(elem, list, res) {
    attr phi 1e-7
    attr q 0.9
    state sort and nosharing {
        call sort(list) connector(elem + list, res)
    }
    state lookup and nosharing {
        call cpu(log2(list)) internal 1 - (1 - phi)^log2(list)
    }
    transition Start -> sort prob q
    transition Start -> lookup prob 1 - q
    transition sort -> lookup prob 1
    transition lookup -> End prob 1
}
assembly local {
    bind search.sort -> sort1 via lpc
    bind search.cpu -> cpu1
    bind sort1.cpu -> cpu1
    bind lpc.cpu -> cpu1
}
assembly remote {
    bind search.sort -> sort2 via rpc
    bind search.cpu -> cpu1
    bind sort2.cpu -> cpu2
    bind rpc.clientcpu -> cpu1
    bind rpc.servercpu -> cpu2
    bind rpc.net -> net12
}
`

func TestParsePaperDSL(t *testing.T) {
	doc, err := ParseDSL(paperDSL)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Services) != 8 {
		t.Errorf("services = %d, want 8", len(doc.Services))
	}
	if got := doc.AssemblyNames(); len(got) != 2 || got[0] != "local" || got[1] != "remote" {
		t.Errorf("assemblies = %v", got)
	}
	if _, ok := doc.Service("search"); !ok {
		t.Error("search not found")
	}
	if _, ok := doc.Service("ghost"); ok {
		t.Error("ghost found")
	}
}

// TestDSLAssemblyMatchesProgrammatic lives in engine_test.go (external
// test package): it imports internal/core, which now imports this
// package, so keeping it here would be an import cycle.

func TestBuildAssemblyUnknown(t *testing.T) {
	doc, err := ParseDSL(paperDSL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doc.BuildAssembly("ghost"); err == nil {
		t.Error("expected error for unknown assembly")
	}
}

func TestParseSimpleKinds(t *testing.T) {
	src := `
service loc perfect(ip, op)
service bare perfect
service flaky constant(0.25)
service leaf simple(n) {
    attr k 100
    pfail n / k
}
`
	doc, err := ParseDSL(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Services) != 4 {
		t.Fatalf("services = %d", len(doc.Services))
	}
	loc, _ := doc.Service("loc")
	if got := loc.FormalParams(); len(got) != 2 || got[0] != "ip" {
		t.Errorf("loc params = %v", got)
	}
	flaky, _ := doc.Service("flaky")
	p, err := flaky.(*model.Simple).Pfail(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.25 {
		t.Errorf("flaky Pfail = %g", p)
	}
	leaf, _ := doc.Service("leaf")
	p, err = leaf.(*model.Simple).Pfail([]float64{30})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.3) > 1e-15 {
		t.Errorf("leaf Pfail = %g", p)
	}
}

func TestParseKofNState(t *testing.T) {
	src := `
service backend constant(0.3)
service app composite {
    state s kofn 2 nosharing {
        call backend
        call backend
        call backend
    }
    transition Start -> s prob 1
    transition s -> End prob 1
}
`
	doc, err := ParseDSL(src)
	if err != nil {
		t.Fatal(err)
	}
	app, _ := doc.Service("app")
	st := app.(*model.Composite).Flow().State("s")
	if st.Completion != model.KOfN || st.K != 2 || len(st.Requests) != 3 {
		t.Errorf("state = %+v", st)
	}
	if st.Requests[0].Role != "backend" || st.Requests[0].Params != nil {
		t.Errorf("bare call request = %+v", st.Requests[0])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"unknown statement", "bogus foo"},
		{"unknown kind", "service x teleporter"},
		{"missing name", "service cpu"},
		{"duplicate service", "service x perfect\nservice x perfect"},
		{"cpu missing block", "service x cpu"},
		{"cpu missing attr", "service x cpu {\nspeed 1\n}"},
		{"bad attr value", "service x cpu {\nspeed fast\nrate 1\n}"},
		{"attr line shape", "service x cpu {\nspeed\nrate 1\n}"},
		{"constant no prob", "service x constant()"},
		{"constant bad prob", "service x constant(soon)"},
		{"constant with block", "service x constant(0.2) {"},
		{"perfect with block", "service x perfect {"},
		{"simple no pfail", "service x simple(n) {\nattr a 1\n}"},
		{"simple bad expr", "service x simple(n) {\npfail n +\n}"},
		{"simple bad stmt", "service x simple(n) {\nwat\n}"},
		{"unterminated block", "service x simple(n) {\npfail n"},
		{"composite bad state hdr", "service x composite {\nstate s and {\n}"},
		{"composite unknown completion", "service x composite {\nstate s xor nosharing {\n}\n}"},
		{"composite unknown dependency", "service x composite {\nstate s and maybe {\n}\n}"},
		{"kofn missing k", "service x composite {\nstate s kofn nosharing {\n}\n}"},
		{"transition no arrow", "service x composite {\ntransition a b prob 1\n}"},
		{"transition no prob", "service x composite {\ntransition a -> b\n}"},
		{"state bad call", "service x composite {\nstate s and nosharing {\nwat\n}\n}"},
		{"call bad expr", "service x composite {\nstate s and nosharing {\ncall y(1 +)\n}\n}"},
		{"call trailing junk", "service x composite {\nstate s and nosharing {\ncall y(1) zzz\n}\n}"},
		{"call unbalanced", "service x composite {\nstate s and nosharing {\ncall y(1\n}\n}"},
		{"assembly no name", "assembly {"},
		{"assembly bad bind", "assembly a {\nbind x y\n}"},
		{"bind no dot", "assembly a {\nbind xy -> z\n}"},
		{"bind bad via", "assembly a {\nbind x.y -> z through w\n}"},
		{"service header unbalanced", "service x simple(n {"},
		{"transition out of End", "service x composite {\ntransition End -> Start prob 1\n}"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseDSL(tc.src); err == nil {
				t.Errorf("ParseDSL succeeded, want error; src:\n%s", tc.src)
			}
		})
	}
}

func TestParseErrorHasLine(t *testing.T) {
	_, err := ParseDSL("service ok perfect\nbogus")
	if err == nil {
		t.Fatal("expected error")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error is %T", err)
	}
	if pe.Line != 2 {
		t.Errorf("Line = %d, want 2", pe.Line)
	}
	if !errors.Is(err, ErrSyntax) {
		t.Error("ParseError does not match ErrSyntax")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := `
# full-line comment

service x perfect   # trailing comment

`
	doc, err := ParseDSL(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc.Services) != 1 {
		t.Errorf("services = %d", len(doc.Services))
	}
}

// TestJSONRoundTrip (DSL -> Document -> JSON -> Document preserves the
// reliability semantics exactly) lives in engine_test.go (external test
// package) for the same import-cycle reason.

func TestJSONRoundTripKofNAndSharing(t *testing.T) {
	src := `
service backend constant(0.3)
service app composite {
    attr phi 0.01
    state s kofn 2 sharing {
        call backend internal phi
        call backend internal phi
        call backend internal phi
    }
    transition Start -> s prob 1
    transition s -> End prob 1
}
`
	doc, err := ParseDSL(src)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalJSON(doc)
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := UnmarshalJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	app, _ := doc2.Service("app")
	st := app.(*model.Composite).Flow().State("s")
	if st.Completion != model.KOfN || st.K != 2 || st.Dependency != model.Sharing {
		t.Errorf("state after round trip = %+v", st)
	}
	if st.Requests[0].Internal == nil {
		t.Error("internal expression lost in round trip")
	}
}

func TestUnmarshalJSONErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"bad json", "{"},
		{"unknown kind", `{"services":[{"name":"x","kind":"magic"}]}`},
		{"bad pfail", `{"services":[{"name":"x","kind":"simple","pfail":"1 +"}]}`},
		{"bad completion", `{"services":[{"name":"x","kind":"composite","states":[{"name":"s","completion":"xor","dependency":"nosharing"}]}]}`},
		{"bad dependency", `{"services":[{"name":"x","kind":"composite","states":[{"name":"s","completion":"and","dependency":"maybe"}]}]}`},
		{"bad transition expr", `{"services":[{"name":"x","kind":"composite","transitions":[{"from":"Start","to":"End","prob":"1 +"}]}]}`},
		{"invalid composite", `{"services":[{"name":"x","kind":"composite","states":[{"name":"s","completion":"and","dependency":"nosharing"}]}]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := UnmarshalJSON([]byte(tc.src)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestMarshalContainsExpressions(t *testing.T) {
	doc, err := ParseDSL(paperDSL)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalJSON(doc)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{"log2(list)", `"kind": "simple"`, `"kind": "composite"`, `"connector": "lpc"`} {
		if !strings.Contains(s, want) {
			t.Errorf("marshaled JSON missing %q", want)
		}
	}
}

func TestParseConnectorSugarKinds(t *testing.T) {
	src := `
service mq queue {
    c 10
    m 270
}
service r3 retry {
    attempts 3
}
service rep kofn_transport {
    n 3
    k 2
    sharing 1
}
`
	doc, err := ParseDSL(src)
	if err != nil {
		t.Fatal(err)
	}
	mq, _ := doc.Service("mq")
	if got := len(mq.(*model.Composite).Flow().States()); got != 6 { // Start,End+4 legs
		t.Errorf("queue states = %d", got)
	}
	r3, _ := doc.Service("r3")
	st := r3.(*model.Composite).Flow().State("deliver")
	if st == nil || st.K != 1 || len(st.Requests) != 3 {
		t.Errorf("retry state = %+v", st)
	}
	rep, _ := doc.Service("rep")
	st = rep.(*model.Composite).Flow().State("deliver")
	if st == nil || st.K != 2 || st.Dependency != model.Sharing {
		t.Errorf("kofn_transport state = %+v", st)
	}
	// Bad parameters surface as parse errors.
	if _, err := ParseDSL("service x retry {\nattempts 0\n}"); err == nil {
		t.Error("expected error for zero attempts")
	}
	if _, err := ParseDSL("service x kofn_transport {\nn 2\nk 3\n}"); err == nil {
		t.Error("expected error for k > n")
	}
}

// TestShippedPaperADLFile lives in engine_test.go (external test
// package) for the same import-cycle reason.
