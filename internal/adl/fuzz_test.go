package adl

import (
	"errors"
	"testing"
)

// FuzzParseDSL drives the ADL parser (and, for accepted documents, the
// assembly builder) with arbitrary source text. The property under test is
// crash-resistance: no input may panic or hang; malformed input must fail
// with an *adl.ParseError (or a lower-layer typed error), never a crash.
func FuzzParseDSL(f *testing.F) {
	f.Add(paperDSL)
	for _, seed := range []string{
		"",
		"service c cpu {\n speed 1e9\n rate 1e-10\n}",
		"service s composite(n) {\n state w and nosharing {\n  call c(n)\n }\n transition Start -> w prob 1\n transition w -> End prob 1\n}",
		"assembly a {\n bind s.c -> c\n}",
		"service x constant {\n pfail 0.5\n}",
		"service broken",
		"service s composite() {",
		"transition Start -> End prob 1",
		"# only a comment",
		"service s cpu {\n speed -1\n rate nan\n}",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		doc, err := ParseDSL(src)
		if err != nil {
			if doc != nil {
				t.Fatalf("ParseDSL returned both a document and an error: %v", err)
			}
			return
		}
		// Accepted documents must survive assembly construction without
		// panicking; semantic errors are fine.
		for _, name := range doc.AssemblyNames() {
			if asm, err := doc.BuildAssembly(name); err == nil && asm != nil {
				_ = asm.Validate()
			}
		}
		_ = errors.Is(err, ErrSyntax)
	})
}
