package adl

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzParseDSL drives the ADL parser (and, for accepted documents, the
// assembly builder) with arbitrary source text. Two properties are under
// test: crash-resistance — no input may panic or hang; malformed input must
// fail with an *adl.ParseError (or a lower-layer typed error), never a
// crash — and canonical-form stability: for every accepted document,
// parse → normalize → marshal → parse must be a fixed point of the
// canonical serialization (the content hash the model store dedups on).
func FuzzParseDSL(f *testing.F) {
	f.Add(paperDSL)
	for _, seed := range []string{
		"",
		"service c cpu {\n speed 1e9\n rate 1e-10\n}",
		"service s composite(n) {\n state w and nosharing {\n  call c(n)\n }\n transition Start -> w prob 1\n transition w -> End prob 1\n}",
		"assembly a {\n bind s.c -> c\n}",
		"service x constant {\n pfail 0.5\n}",
		"service broken",
		"service s composite() {",
		"transition Start -> End prob 1",
		"# only a comment",
		"service s cpu {\n speed -1\n rate nan\n}",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		doc, err := ParseDSL(src)
		if err != nil {
			if doc != nil {
				t.Fatalf("ParseDSL returned both a document and an error: %v", err)
			}
			return
		}
		// Accepted documents must survive assembly construction without
		// panicking; semantic errors are fine.
		for _, name := range doc.AssemblyNames() {
			if asm, err := doc.BuildAssembly(name); err == nil && asm != nil {
				_ = asm.Validate()
			}
		}
		_ = errors.Is(err, ErrSyntax)

		// Canonical round trip: an accepted document must normalize, and
		// the canonical serialization must be a fixed point under reparse.
		norm, err := Normalize(doc)
		if err != nil {
			// Documents the JSON codec cannot represent (none today) would
			// surface here; a typed error is acceptable, a panic is not.
			return
		}
		first, err := MarshalJSON(norm)
		if err != nil {
			t.Fatalf("marshal normalized document: %v", err)
		}
		reparsed, err := UnmarshalJSON(first)
		if err != nil {
			t.Fatalf("canonical JSON does not reparse: %v\n%s", err, first)
		}
		norm2, err := Normalize(reparsed)
		if err != nil {
			t.Fatalf("renormalize: %v", err)
		}
		second, err := MarshalJSON(norm2)
		if err != nil {
			t.Fatalf("remarshal: %v", err)
		}
		if !bytes.Equal(first, second) {
			t.Fatalf("canonical form is not a fixed point:\nfirst:\n%s\nsecond:\n%s", first, second)
		}
	})
}
