package adl

import (
	"encoding/json"
	"fmt"

	"socrel/internal/assembly"
	"socrel/internal/expr"
	"socrel/internal/model"
)

// JSON data-transfer representation. Expressions are serialized as their
// source text (expr.Expr.String round-trips through expr.Parse).

type documentJSON struct {
	Services   []serviceJSON  `json:"services"`
	Assemblies []assemblyJSON `json:"assemblies,omitempty"`
}

type serviceJSON struct {
	Name   string             `json:"name"`
	Kind   string             `json:"kind"` // "simple" or "composite"
	Params []string           `json:"params,omitempty"`
	Attrs  map[string]float64 `json:"attrs,omitempty"`
	// Simple services.
	Pfail string `json:"pfail,omitempty"`
	// Composite services.
	States      []stateJSON      `json:"states,omitempty"`
	Transitions []transitionJSON `json:"transitions,omitempty"`
}

type stateJSON struct {
	Name       string        `json:"name"`
	Completion string        `json:"completion"`
	K          int           `json:"k,omitempty"`
	Dependency string        `json:"dependency"`
	Requests   []requestJSON `json:"requests,omitempty"`
}

type requestJSON struct {
	Role       string   `json:"role"`
	Params     []string `json:"params,omitempty"`
	ConnParams []string `json:"connParams,omitempty"`
	Internal   string   `json:"internal,omitempty"`
}

type transitionJSON struct {
	From string `json:"from"`
	To   string `json:"to"`
	Prob string `json:"prob"`
}

type assemblyJSON struct {
	Name     string        `json:"name"`
	Bindings []bindingJSON `json:"bindings"`
}

type bindingJSON struct {
	Caller    string `json:"caller"`
	Role      string `json:"role"`
	Provider  string `json:"provider"`
	Connector string `json:"connector,omitempty"`
}

// MarshalJSON serializes the document. Simple services (including the
// cpu/network/connector sugar kinds) serialize uniformly as kind "simple"
// with their failure-law expression; the representation is canonical, not
// sugar-preserving.
func MarshalJSON(d *Document) ([]byte, error) {
	out := documentJSON{}
	for _, svc := range d.Services {
		sj, err := serviceToJSON(svc)
		if err != nil {
			return nil, err
		}
		out.Services = append(out.Services, sj)
	}
	for _, a := range d.Assemblies {
		aj := assemblyJSON{Name: a.Name}
		for _, b := range a.Bindings {
			aj.Bindings = append(aj.Bindings, bindingJSON(b))
		}
		out.Assemblies = append(out.Assemblies, aj)
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalJSON parses a document serialized by MarshalJSON.
func UnmarshalJSON(data []byte) (*Document, error) {
	var in documentJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("adl: %w", err)
	}
	doc := &Document{}
	for _, sj := range in.Services {
		svc, err := serviceFromJSON(sj)
		if err != nil {
			return nil, err
		}
		if err := svc.Validate(); err != nil {
			return nil, fmt.Errorf("adl: %w", err)
		}
		doc.Services = append(doc.Services, svc)
	}
	for _, aj := range in.Assemblies {
		def := AssemblyDef{Name: aj.Name}
		for _, bj := range aj.Bindings {
			def.Bindings = append(def.Bindings, assembly.Binding(bj))
		}
		doc.Assemblies = append(doc.Assemblies, def)
	}
	return doc, nil
}

func serviceToJSON(svc model.Service) (serviceJSON, error) {
	switch s := svc.(type) {
	case *model.Simple:
		return serviceJSON{
			Name:   s.Name(),
			Kind:   "simple",
			Params: s.FormalParams(),
			Attrs:  s.Attributes(),
			Pfail:  s.PfailExpr().String(),
		}, nil
	case *model.Composite:
		sj := serviceJSON{
			Name:   s.Name(),
			Kind:   "composite",
			Params: s.FormalParams(),
			Attrs:  s.Attributes(),
		}
		for _, st := range s.Flow().States() {
			if st.Name == model.StartState || st.Name == model.EndState {
				continue
			}
			stj := stateJSON{
				Name:       st.Name,
				Completion: completionToJSON(st.Completion),
				K:          st.K,
				Dependency: dependencyToJSON(st.Dependency),
			}
			for _, r := range st.Requests {
				rj := requestJSON{Role: r.Role}
				for _, e := range r.Params {
					rj.Params = append(rj.Params, e.String())
				}
				for _, e := range r.ConnParams {
					rj.ConnParams = append(rj.ConnParams, e.String())
				}
				if r.Internal != nil {
					rj.Internal = r.Internal.String()
				}
				stj.Requests = append(stj.Requests, rj)
			}
			sj.States = append(sj.States, stj)
		}
		for _, tr := range s.Flow().Transitions() {
			sj.Transitions = append(sj.Transitions, transitionJSON{
				From: tr.From, To: tr.To, Prob: tr.Prob.String(),
			})
		}
		return sj, nil
	default:
		return serviceJSON{}, fmt.Errorf("%w: unsupported service type %T", model.ErrInvalidService, svc)
	}
}

func serviceFromJSON(sj serviceJSON) (model.Service, error) {
	switch sj.Kind {
	case "simple":
		pfail, err := expr.Parse(sj.Pfail)
		if err != nil {
			return nil, fmt.Errorf("adl: service %s pfail: %w", sj.Name, err)
		}
		return model.NewSimple(sj.Name, sj.Params, sj.Attrs, pfail), nil
	case "composite":
		comp := model.NewComposite(sj.Name, sj.Params, sj.Attrs)
		for _, stj := range sj.States {
			completion, err := completionFromJSON(stj.Completion)
			if err != nil {
				return nil, fmt.Errorf("adl: service %s state %s: %w", sj.Name, stj.Name, err)
			}
			dependency, err := dependencyFromJSON(stj.Dependency)
			if err != nil {
				return nil, fmt.Errorf("adl: service %s state %s: %w", sj.Name, stj.Name, err)
			}
			st, err := comp.Flow().AddState(stj.Name, completion, dependency)
			if err != nil {
				return nil, fmt.Errorf("adl: %w", err)
			}
			st.K = stj.K
			for _, rj := range stj.Requests {
				req := model.Request{Role: rj.Role}
				for _, src := range rj.Params {
					e, err := expr.Parse(src)
					if err != nil {
						return nil, fmt.Errorf("adl: service %s request %s param %q: %w", sj.Name, rj.Role, src, err)
					}
					req.Params = append(req.Params, e)
				}
				for _, src := range rj.ConnParams {
					e, err := expr.Parse(src)
					if err != nil {
						return nil, fmt.Errorf("adl: service %s request %s connector param %q: %w", sj.Name, rj.Role, src, err)
					}
					req.ConnParams = append(req.ConnParams, e)
				}
				if rj.Internal != "" {
					e, err := expr.Parse(rj.Internal)
					if err != nil {
						return nil, fmt.Errorf("adl: service %s request %s internal %q: %w", sj.Name, rj.Role, rj.Internal, err)
					}
					req.Internal = e
				}
				st.AddRequest(req)
			}
		}
		for _, tj := range sj.Transitions {
			prob, err := expr.Parse(tj.Prob)
			if err != nil {
				return nil, fmt.Errorf("adl: service %s transition %s->%s: %w", sj.Name, tj.From, tj.To, err)
			}
			if err := comp.Flow().AddTransition(tj.From, tj.To, prob); err != nil {
				return nil, fmt.Errorf("adl: %w", err)
			}
		}
		return comp, nil
	default:
		return nil, fmt.Errorf("adl: service %s: unknown kind %q", sj.Name, sj.Kind)
	}
}

func completionToJSON(c model.Completion) string {
	switch c {
	case model.AND:
		return "and"
	case model.OR:
		return "or"
	case model.KOfN:
		return "kofn"
	default:
		return ""
	}
}

func completionFromJSON(s string) (model.Completion, error) {
	switch s {
	case "and":
		return model.AND, nil
	case "or":
		return model.OR, nil
	case "kofn":
		return model.KOfN, nil
	default:
		return 0, fmt.Errorf("unknown completion %q", s)
	}
}

func dependencyToJSON(d model.Dependency) string {
	switch d {
	case model.NoSharing:
		return "nosharing"
	case model.Sharing:
		return "sharing"
	default:
		return ""
	}
}

func dependencyFromJSON(s string) (model.Dependency, error) {
	switch s {
	case "nosharing":
		return model.NoSharing, nil
	case "sharing":
		return model.Sharing, nil
	default:
		return 0, fmt.Errorf("unknown dependency %q", s)
	}
}
