package adl

import (
	"bytes"
	"strings"
	"testing"
)

// mustCanonicalBytes normalizes and marshals, failing the test on error.
func mustCanonicalBytes(t *testing.T, d *Document) []byte {
	t.Helper()
	n, err := Normalize(d)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	data, err := MarshalJSON(n)
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	return data
}

// TestNormalizeFixedPoint is the round-trip property on the paper example:
// parse → normalize → marshal → parse must be a fixed point of the
// canonical serialization.
func TestNormalizeFixedPoint(t *testing.T) {
	doc, err := ParseDSL(paperDSL)
	if err != nil {
		t.Fatal(err)
	}
	first := mustCanonicalBytes(t, doc)
	reparsed, err := UnmarshalJSON(first)
	if err != nil {
		t.Fatalf("reparse canonical JSON: %v", err)
	}
	second := mustCanonicalBytes(t, reparsed)
	if !bytes.Equal(first, second) {
		t.Errorf("canonical form is not a fixed point:\nfirst:\n%s\nsecond:\n%s", first, second)
	}
}

// TestHashInsensitiveToOrderAndSugar verifies content addressing: the same
// services and bindings declared in a different order, and the lowered
// (sugar-free) form, hash identically.
func TestHashInsensitiveToOrderAndSugar(t *testing.T) {
	doc, err := ParseDSL(paperDSL)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := Hash(doc)
	if err != nil {
		t.Fatal(err)
	}

	// Reversed declaration order.
	rev := &Document{}
	for i := len(doc.Services) - 1; i >= 0; i-- {
		rev.Services = append(rev.Services, doc.Services[i])
	}
	for i := len(doc.Assemblies) - 1; i >= 0; i-- {
		def := doc.Assemblies[i]
		var bindings = def.Bindings
		for l, r := 0, len(bindings)-1; l < r; l, r = l+1, r-1 {
			bindings[l], bindings[r] = bindings[r], bindings[l]
		}
		rev.Assemblies = append(rev.Assemblies, AssemblyDef{Name: def.Name, Bindings: bindings})
	}
	h2, err := Hash(rev)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Errorf("hash depends on declaration order: %s vs %s", h1, h2)
	}

	// Lowered form (canonical JSON reparsed — sugar kinds gone).
	lowered, err := UnmarshalJSON(mustCanonicalBytes(t, doc))
	if err != nil {
		t.Fatal(err)
	}
	h3, err := Hash(lowered)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h3 {
		t.Errorf("hash depends on sugar lowering: %s vs %s", h1, h3)
	}
}

// TestHashDistinguishesContent: a one-constant change must move the hash.
func TestHashDistinguishesContent(t *testing.T) {
	doc, err := ParseDSL(paperDSL)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := Hash(doc)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := ParseDSL(strings.Replace(paperDSL, "attr q 0.9", "attr q 0.8", 1))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := Hash(changed)
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Error("documents with different attributes hash identically")
	}
}

// TestFromAssemblyRoundTrip lifts the built remote assembly back into a
// document and checks it rebuilds an equivalent assembly (same bindings,
// same services by name).
func TestFromAssemblyRoundTrip(t *testing.T) {
	doc, err := ParseDSL(paperDSL)
	if err != nil {
		t.Fatal(err)
	}
	asm, err := doc.BuildAssembly("remote")
	if err != nil {
		t.Fatal(err)
	}
	lifted, err := FromAssembly(asm)
	if err != nil {
		t.Fatal(err)
	}
	re, err := lifted.BuildAssembly("remote")
	if err != nil {
		t.Fatalf("rebuild lifted assembly: %v", err)
	}
	if got, want := len(re.ServiceNames()), len(asm.ServiceNames()); got != want {
		t.Errorf("services = %d, want %d", got, want)
	}
	if got, want := len(re.Bindings()), len(asm.Bindings()); got != want {
		t.Errorf("bindings = %d, want %d", got, want)
	}
}
