// Package adl implements a machine-processable representation of analytic
// interfaces and assemblies — the role section 5 of the paper assigns to
// extended OWL-S/BPEL descriptions. Two concrete syntaxes are provided over
// one document model:
//
//   - a compact, line-oriented textual DSL (ParseDSL) for humans, and
//   - a JSON codec (MarshalJSON / UnmarshalJSON helpers on Document) for
//     tooling.
//
// A Document carries service definitions (with their usage-profile flows,
// failure laws and parameter-dependency expressions, all serialized as
// expression source text) and named assemblies (binding sets). Documents
// build directly into assembly.Assembly values ready for the prediction
// engine.
//
// # DSL overview
//
// Statements are line-oriented; '#' starts a comment; blocks open with a
// trailing '{' and close with a line containing only '}'.
//
//	service cpu1 cpu {
//	    speed 1e9
//	    rate 1e-10
//	}
//	service net12 network {
//	    bandwidth 1e5
//	    rate 5e-3
//	}
//	service loc1 perfect            # optionally: perfect(ip, op)
//	service flaky constant(0.3)
//	service lpc1 lpc {              # Figure 2 LPC connector
//	    l 1000
//	}
//	service rpc1 rpc {              # Figure 2 RPC connector
//	    c 10
//	    m 270
//	}
//	service leaf simple(n) {
//	    attr k 100
//	    pfail n / k
//	}
//	service search composite(elem, list, res) {
//	    attr phi 1e-7
//	    attr q 0.9
//	    state sort and nosharing {
//	        call sort(list) connector(elem + list, res)
//	    }
//	    state lookup and nosharing {
//	        call cpu(log2(list)) internal 1 - (1 - phi)^log2(list)
//	    }
//	    transition Start -> sort prob q
//	    transition Start -> lookup prob 1 - q
//	    transition sort -> lookup prob 1
//	    transition lookup -> End prob 1
//	}
//	assembly local {
//	    bind search.sort -> sort1 via lpc1
//	    bind search.cpu -> cpu1
//	}
//
// State headers are "state NAME COMPLETION DEPENDENCY" where COMPLETION is
// one of and / or / kofn K, and DEPENDENCY is nosharing / sharing.
package adl

import (
	"fmt"

	"socrel/internal/assembly"
	"socrel/internal/model"
)

// Document is the parsed content of an ADL source: service definitions and
// named assemblies over them.
type Document struct {
	// Services holds the definitions in declaration order.
	Services []model.Service
	// Assemblies holds the binding sets in declaration order.
	Assemblies []AssemblyDef
}

// AssemblyDef is a named set of bindings.
type AssemblyDef struct {
	Name     string
	Bindings []assembly.Binding
}

// Service returns the named service definition.
func (d *Document) Service(name string) (model.Service, bool) {
	for _, s := range d.Services {
		if s.Name() == name {
			return s, true
		}
	}
	return nil, false
}

// BuildAssembly materializes the named assembly: the services reachable
// from its bindings (callers, providers, connectors, and — transitively —
// any role of an included composite that resolves directly by service
// name), plus the assembly's bindings, validated. Services of the document
// that only belong to other assemblies (e.g. the RPC connector in the
// paper's local assembly) are excluded.
func (d *Document) BuildAssembly(name string) (*assembly.Assembly, error) {
	var def *AssemblyDef
	for i := range d.Assemblies {
		if d.Assemblies[i].Name == name {
			def = &d.Assemblies[i]
			break
		}
	}
	if def == nil {
		return nil, fmt.Errorf("adl: %w: assembly %q", model.ErrUnknownService, name)
	}
	needed := make(map[string]bool)
	for _, b := range def.Bindings {
		needed[b.Caller] = true
		needed[b.Provider] = true
		if b.Connector != "" {
			needed[b.Connector] = true
		}
	}
	// Close over direct-name role references of included composites.
	for changed := true; changed; {
		changed = false
		for svcName := range needed {
			svc, ok := d.Service(svcName)
			if !ok {
				continue // Validate will report it
			}
			comp, ok := svc.(*model.Composite)
			if !ok {
				continue
			}
			for _, role := range comp.Roles() {
				if hasBinding(def.Bindings, svcName, role) {
					continue
				}
				if _, ok := d.Service(role); ok && !needed[role] {
					needed[role] = true
					changed = true
				}
			}
		}
	}
	asm := assembly.New(name)
	for _, svc := range d.Services {
		if !needed[svc.Name()] {
			continue
		}
		if err := asm.AddService(svc); err != nil {
			return nil, fmt.Errorf("adl: %w", err)
		}
	}
	for _, b := range def.Bindings {
		asm.AddBinding(b.Caller, b.Role, b.Provider, b.Connector)
	}
	if err := asm.Validate(); err != nil {
		return nil, fmt.Errorf("adl: %w", err)
	}
	return asm, nil
}

func hasBinding(bindings []assembly.Binding, caller, role string) bool {
	for _, b := range bindings {
		if b.Caller == caller && b.Role == role {
			return true
		}
	}
	return false
}

// AssemblyNames returns the declared assembly names in order.
func (d *Document) AssemblyNames() []string {
	out := make([]string, len(d.Assemblies))
	for i, a := range d.Assemblies {
		out[i] = a.Name
	}
	return out
}
