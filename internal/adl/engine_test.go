package adl_test

// Engine-facing ADL tests live in an external test package: they import
// internal/core, and core imports adl (CompileDocument), so an
// in-package test would be an import cycle.

import (
	"math"
	"os"
	"testing"

	"socrel/internal/adl"
	"socrel/internal/assembly"
	"socrel/internal/core"
)

// paperDoc parses the shipped section-4 example (the same model as the
// in-package paperDSL fixture) and returns its source and document.
func paperDoc(t *testing.T) (string, *adl.Document) {
	t.Helper()
	data, err := os.ReadFile("../../examples/paper.adl")
	if err != nil {
		t.Fatal(err)
	}
	doc, err := adl.ParseDSL(string(data))
	if err != nil {
		t.Fatal(err)
	}
	return string(data), doc
}

// TestDSLAssemblyMatchesProgrammatic verifies the full pipeline: DSL text
// -> document -> assembly -> engine agrees with the closed forms of
// section 4 (the same check the programmatic construction passes).
func TestDSLAssemblyMatchesProgrammatic(t *testing.T) {
	_, doc := paperDoc(t)
	p := assembly.DefaultPaperParams() // matches the constants in the ADL
	for _, tc := range []struct {
		name   string
		remote bool
	}{{"local", false}, {"remote", true}} {
		asm, err := doc.BuildAssembly(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		ev := core.New(asm, core.Options{})
		for _, list := range []float64{64, 4096, 1 << 16} {
			got, err := ev.Pfail("search", 1, list, 1)
			if err != nil {
				t.Fatal(err)
			}
			want := assembly.ClosedFormSearch(p, tc.remote, 1, list, 1)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("%s list=%g: DSL-built engine %.15g vs closed form %.15g",
					tc.name, list, got, want)
			}
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	_, doc := paperDoc(t)
	data, err := adl.MarshalJSON(doc)
	if err != nil {
		t.Fatal(err)
	}
	doc2, err := adl.UnmarshalJSON(data)
	if err != nil {
		t.Fatalf("UnmarshalJSON: %v\njson:\n%s", err, data)
	}
	if len(doc2.Services) != len(doc.Services) || len(doc2.Assemblies) != len(doc.Assemblies) {
		t.Fatalf("round trip changed counts: %d/%d services, %d/%d assemblies",
			len(doc2.Services), len(doc.Services), len(doc2.Assemblies), len(doc.Assemblies))
	}
	for _, name := range []string{"local", "remote"} {
		a1, err := doc.BuildAssembly(name)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := doc2.BuildAssembly(name)
		if err != nil {
			t.Fatal(err)
		}
		v1, err := core.New(a1, core.Options{}).Pfail("search", 1, 4096, 1)
		if err != nil {
			t.Fatal(err)
		}
		v2, err := core.New(a2, core.Options{}).Pfail("search", 1, 4096, 1)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v1-v2) > 1e-15 {
			t.Errorf("%s: round trip changed Pfail: %g vs %g", name, v1, v2)
		}
	}
}

func TestShippedPaperADLFile(t *testing.T) {
	// The example file in the repository must stay parseable and agree
	// with the programmatic construction.
	_, doc := paperDoc(t)
	p := assembly.DefaultPaperParams()
	for _, tc := range []struct {
		name   string
		remote bool
	}{{"local", false}, {"remote", true}} {
		asm, err := doc.BuildAssembly(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.New(asm, core.Options{}).Pfail("search", 1, 4096, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := assembly.ClosedFormSearch(p, tc.remote, 1, 4096, 1)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("%s: shipped ADL %.15g vs closed form %.15g", tc.name, got, want)
		}
	}
}
