package adl

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"

	"socrel/internal/assembly"
	"socrel/internal/model"
)

// Canonical form and content addressing. The model store keys versions by
// the hash of a document's canonical serialization, so two authors (or one
// author using the DSL vs. the JSON codec) publishing semantically
// identical documents deduplicate to one version. Canonicalization:
//
//   - services sorted by name, assemblies sorted by name, bindings sorted
//     by (caller, role);
//   - every expression reduced to its parse-stable source form (the fixed
//     point of expr.Parse ∘ expr.Expr.String);
//   - the sugar service kinds (cpu, network, lpc, ...) lowered to their
//     canonical simple/composite representation (MarshalJSON already
//     lowers them).
//
// Normalize is idempotent: Normalize(Normalize(d)) marshals byte-identically
// to Normalize(d). The round-trip property test and the ADL fuzz harness
// both enforce this.

// Normalize returns a canonical copy of the document. The input is not
// modified; services are rebuilt through the JSON codec, which lowers
// syntactic sugar and re-parses every expression from its printed form.
func Normalize(d *Document) (*Document, error) {
	sorted := &Document{
		Services:   append([]model.Service(nil), d.Services...),
		Assemblies: make([]AssemblyDef, len(d.Assemblies)),
	}
	sort.SliceStable(sorted.Services, func(i, j int) bool {
		return sorted.Services[i].Name() < sorted.Services[j].Name()
	})
	for i, a := range d.Assemblies {
		def := AssemblyDef{Name: a.Name, Bindings: append([]assembly.Binding(nil), a.Bindings...)}
		sort.SliceStable(def.Bindings, func(x, y int) bool {
			if def.Bindings[x].Caller != def.Bindings[y].Caller {
				return def.Bindings[x].Caller < def.Bindings[y].Caller
			}
			return def.Bindings[x].Role < def.Bindings[y].Role
		})
		sorted.Assemblies[i] = def
	}
	sort.SliceStable(sorted.Assemblies, func(i, j int) bool {
		return sorted.Assemblies[i].Name < sorted.Assemblies[j].Name
	})
	// Round-tripping through the JSON codec lowers sugar kinds and
	// canonicalizes expression text.
	data, err := MarshalJSON(sorted)
	if err != nil {
		return nil, err
	}
	return UnmarshalJSON(data)
}

// Hash returns the content address of the document: the hex SHA-256 of its
// canonical serialization. Documents that normalize identically hash
// identically regardless of declaration order, sugar, or expression
// spelling.
func Hash(d *Document) (string, error) {
	n, err := Normalize(d)
	if err != nil {
		return "", err
	}
	data, err := MarshalJSON(n)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// FromAssembly lifts a materialized assembly back into a single-assembly
// document (its services plus one AssemblyDef), so builder-derived variants
// can be published to the model store.
func FromAssembly(asm *assembly.Assembly) (*Document, error) {
	doc := &Document{}
	for _, name := range asm.ServiceNames() {
		svc, err := asm.ServiceByName(name)
		if err != nil {
			return nil, fmt.Errorf("adl: %w", err)
		}
		doc.Services = append(doc.Services, svc)
	}
	doc.Assemblies = []AssemblyDef{{Name: asm.Name(), Bindings: asm.Bindings()}}
	return doc, nil
}
