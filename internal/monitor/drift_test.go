package monitor

import (
	"math"
	"math/rand"
	"testing"
)

func TestDriftConfigDefaults(t *testing.T) {
	d, err := NewDrift(DriftConfig{Bound: 0.05})
	if err != nil {
		t.Fatalf("NewDrift: %v", err)
	}
	cfg := d.Config()
	if cfg.Ratio != 2 || cfg.Alpha != 0.01 || cfg.Beta != 0.01 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	for _, bad := range []DriftConfig{
		{Bound: 0},
		{Bound: -1},
		{Bound: math.NaN()},
		{Bound: 0.1, Ratio: 1},
		{Bound: 0.1, Ratio: 0.5},
		{Bound: 0.1, Alpha: 1.5},
		{Bound: 0.1, Beta: -0.1},
	} {
		if _, err := NewDrift(bad); err == nil {
			t.Errorf("NewDrift(%+v) accepted invalid config", bad)
		}
	}
}

// drive feeds a seeded Bernoulli outcome stream with true rate lam and
// constant exposure, returning the verdict and observation count.
func drive(t *testing.T, d *Drift, lam, exposure float64, seed int64, max int) (Verdict, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pFail := 1 - math.Exp(-lam*exposure)
	for i := 1; i <= max; i++ {
		if v := d.Record(exposure, rng.Float64() < pFail); v != Undecided {
			return v, i
		}
	}
	return Undecided, max
}

func TestDriftDetectsUpwardDrift(t *testing.T) {
	d, err := NewDrift(DriftConfig{Bound: 0.05, Ratio: 2})
	if err != nil {
		t.Fatalf("NewDrift: %v", err)
	}
	v, n := drive(t, d, 0.2, 1.0, 1, 20000)
	if v != Violating || d.Direction() != +1 {
		t.Fatalf("verdict %v direction %d after %d obs; want Violating/+1", v, d.Direction(), n)
	}
}

func TestDriftDetectsDownwardDrift(t *testing.T) {
	d, err := NewDrift(DriftConfig{Bound: 0.2, Ratio: 2})
	if err != nil {
		t.Fatalf("NewDrift: %v", err)
	}
	v, n := drive(t, d, 0.02, 1.0, 2, 20000)
	if v != Violating || d.Direction() != -1 {
		t.Fatalf("verdict %v direction %d after %d obs; want Violating/-1", v, d.Direction(), n)
	}
}

func TestDriftAcceptsHoldingRate(t *testing.T) {
	d, err := NewDrift(DriftConfig{Bound: 0.1, Ratio: 3})
	if err != nil {
		t.Fatalf("NewDrift: %v", err)
	}
	v, n := drive(t, d, 0.1, 1.0, 3, 50000)
	if v != Meeting {
		t.Fatalf("verdict %v after %d obs; want Meeting", v, n)
	}
	if d.Direction() != 0 {
		t.Fatalf("direction %d for Meeting verdict", d.Direction())
	}
}

func TestDriftExposureWeighting(t *testing.T) {
	// A failure on a tiny exposure is far stronger evidence of an
	// elevated rate than a failure on a huge exposure, where even the
	// bound rate fails almost surely.
	d, err := NewDrift(DriftConfig{Bound: 0.1})
	if err != nil {
		t.Fatalf("NewDrift: %v", err)
	}
	small := llStep(0.2, 0.1, 0.01, true)
	large := llStep(0.2, 0.1, 100, true)
	if small <= large {
		t.Fatalf("llStep failure: small-exposure %g <= large-exposure %g", small, large)
	}
	// A success on a long exposure argues harder against drift-up than a
	// success on a short one.
	if s1, s2 := llStep(0.2, 0.1, 10, false), llStep(0.2, 0.1, 0.1, false); s1 >= s2 {
		t.Fatalf("llStep success: long-exposure %g >= short-exposure %g", s1, s2)
	}
	// Zero-exposure failure takes the log(Ratio) limit and stays finite.
	if got := llStep(0.2, 0.1, 0, true); math.IsInf(got, 0) || math.IsNaN(got) || math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("zero-exposure failure step = %g, want log(2)", got)
	}
	_ = d
}

func TestDriftDecidedSticksUntilReset(t *testing.T) {
	d, err := NewDrift(DriftConfig{Bound: 0.05})
	if err != nil {
		t.Fatalf("NewDrift: %v", err)
	}
	for i := 0; i < 1000 && d.Verdict() == Undecided; i++ {
		d.Record(1, true)
	}
	if d.Verdict() != Violating {
		t.Fatalf("verdict %v; want Violating", d.Verdict())
	}
	// Contradictory evidence does not un-decide.
	for i := 0; i < 1000; i++ {
		d.Record(1, false)
	}
	if d.Verdict() != Violating || d.Direction() != +1 {
		t.Fatalf("decided verdict regressed: %v/%d", d.Verdict(), d.Direction())
	}
	d.Reset()
	if d.Verdict() != Undecided || d.Direction() != 0 {
		t.Fatalf("Reset did not re-arm: %v/%d", d.Verdict(), d.Direction())
	}
}

func TestDriftSnapshotRoundTrip(t *testing.T) {
	d, err := NewDrift(DriftConfig{Bound: 0.05, Ratio: 4, Alpha: 0.05, Beta: 0.02})
	if err != nil {
		t.Fatalf("NewDrift: %v", err)
	}
	drive(t, d, 0.05, 0.7, 7, 25)
	snap := d.Snapshot()
	r, err := RestoreDrift(snap)
	if err != nil {
		t.Fatalf("RestoreDrift: %v", err)
	}
	// Restored detector continues identically on the same stream.
	rng1 := rand.New(rand.NewSource(99))
	rng2 := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		f1 := rng1.Float64() < 0.1
		f2 := rng2.Float64() < 0.1
		v1 := d.Record(0.7, f1)
		v2 := r.Record(0.7, f2)
		if v1 != v2 {
			t.Fatalf("obs %d: verdicts diverged %v vs %v", i, v1, v2)
		}
	}
	if d.Snapshot() != r.Snapshot() {
		t.Fatalf("snapshots diverged:\n%+v\n%+v", d.Snapshot(), r.Snapshot())
	}
}

func TestDriftSnapshotValidation(t *testing.T) {
	for _, bad := range []DriftSnapshot{
		{Config: DriftConfig{Bound: 0}},
		{Config: DriftConfig{Bound: 0.1}, LLRUp: math.NaN()},
		{Config: DriftConfig{Bound: 0.1}, Decided: Verdict(9)},
		{Config: DriftConfig{Bound: 0.1}, Decided: Violating, Direction: 0},
		{Config: DriftConfig{Bound: 0.1}, Decided: Meeting, Direction: 1},
		{Config: DriftConfig{Bound: 0.1}, Decided: Undecided, Direction: -2},
	} {
		if _, err := RestoreDrift(bad); err == nil {
			t.Errorf("RestoreDrift(%+v) accepted invalid snapshot", bad)
		}
	}
}
