package monitor

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// record feeds n outcomes from rng with the given success probability
// into every monitor of ms, keeping their streams identical.
func record(t *testing.T, rng *rand.Rand, p float64, n int, ms ...*Monitor) {
	t.Helper()
	for i := 0; i < n; i++ {
		ok := rng.Float64() < p
		for _, m := range ms {
			m.Record(ok)
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m, err := New(Config{Predicted: 0.95, Window: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	record(t, rng, 0.9, 20, m)

	r, err := Restore(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if r.Total() != m.Total() || r.Cumulative() != m.Cumulative() || r.Windowed() != m.Windowed() || r.SPRT() != m.SPRT() {
		t.Fatalf("restored state differs: total %d/%d cum %g/%g win %g/%g sprt %v/%v",
			r.Total(), m.Total(), r.Cumulative(), m.Cumulative(), r.Windowed(), m.Windowed(), r.SPRT(), m.SPRT())
	}

	// The restored monitor must continue exactly like the original under
	// an identical outcome stream — same estimates, same verdict at every
	// step (this is what "SPRT evidence survives" means).
	cont := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		ok := cont.Float64() < 0.7
		m.Record(ok)
		r.Record(ok)
		if r.SPRT() != m.SPRT() || r.Windowed() != m.Windowed() || r.Cumulative() != m.Cumulative() {
			t.Fatalf("step %d: restored diverged: sprt %v/%v win %g/%g", i, r.SPRT(), m.SPRT(), r.Windowed(), m.Windowed())
		}
	}
	if m.SPRT() != Violating {
		t.Fatalf("expected the degraded stream to end Violating, got %v", m.SPRT())
	}
}

func TestSnapshotSerializesAsJSON(t *testing.T) {
	m, err := New(Config{Predicted: 0.99})
	if err != nil {
		t.Fatal(err)
	}
	record(t, rand.New(rand.NewSource(3)), 0.5, 50, m)
	data, err := json.Marshal(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Total() != m.Total() || r.SPRT() != m.SPRT() {
		t.Fatalf("JSON round trip lost state: total %d/%d sprt %v/%v", r.Total(), m.Total(), r.SPRT(), m.SPRT())
	}
}

func TestRestoreKeepsResetSPRTSemantics(t *testing.T) {
	m, err := New(Config{Predicted: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		m.Record(false)
	}
	if m.SPRT() != Violating {
		t.Fatalf("want Violating, got %v", m.SPRT())
	}
	r, err := Restore(m.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if r.SPRT() != Violating {
		t.Fatalf("restored verdict = %v, want Violating", r.SPRT())
	}
	total := r.Total()
	r.ResetSPRT()
	if r.SPRT() != Undecided {
		t.Fatalf("ResetSPRT did not re-arm: %v", r.SPRT())
	}
	if r.Total() != total {
		t.Fatalf("ResetSPRT changed statistics: total %d -> %d", total, r.Total())
	}
}

func TestRestoreRejectsBadSnapshots(t *testing.T) {
	good, err := New(Config{Predicted: 0.95, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	good.Record(true)
	base := good.Snapshot()

	cases := map[string]func(s Snapshot) Snapshot{
		"successes > total": func(s Snapshot) Snapshot { s.Successes = s.Total + 1; return s },
		"negative total":    func(s Snapshot) Snapshot { s.Total = -1; return s },
		"window > config":   func(s Snapshot) Snapshot { s.Window = make([]bool, 9); s.Total = 9; return s },
		"window > total":    func(s Snapshot) Snapshot { s.Window = []bool{true, true}; return s },
		"bad verdict":       func(s Snapshot) Snapshot { s.Decided = Verdict(42); return s },
	}
	for name, mutate := range cases {
		if _, err := Restore(mutate(base)); err == nil {
			t.Errorf("%s: Restore accepted an invalid snapshot", name)
		}
	}
	if _, err := Restore(Snapshot{Config: Config{Predicted: 2}}); err == nil {
		t.Error("Restore accepted an invalid config")
	}
}

func TestSnapshotWindowChronology(t *testing.T) {
	m, err := New(Config{Predicted: 0.9, Window: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Stream longer than the window: the snapshot must hold the LAST 3
	// outcomes, oldest first.
	for _, ok := range []bool{true, true, false, true, false} {
		m.Record(ok)
	}
	s := m.Snapshot()
	want := []bool{false, true, false}
	if len(s.Window) != len(want) {
		t.Fatalf("window length %d, want %d", len(s.Window), len(want))
	}
	for i := range want {
		if s.Window[i] != want[i] {
			t.Fatalf("window = %v, want %v", s.Window, want)
		}
	}
}
