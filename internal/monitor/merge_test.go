package monitor

import (
	"math/rand"
	"reflect"
	"testing"
)

// genSnapshot draws a random valid snapshot: a monitor with a random
// configuration fed a random outcome stream, optionally with its SPRT
// verdict forced.
func genSnapshot(t *testing.T, rng *rand.Rand) Snapshot {
	t.Helper()
	cfg := Config{
		Predicted: 0.5 + 0.49*rng.Float64(),
		Window:    1 + rng.Intn(32),
	}
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	n := rng.Intn(64)
	for i := 0; i < n; i++ {
		m.Record(rng.Float64() < 0.7)
	}
	if rng.Intn(4) == 0 {
		m.ResetSPRT() // mix decided and re-armed tests
	}
	return m.Snapshot()
}

// normalize maps a nil window to an empty one so DeepEqual compares
// content, not slice headers.
func normalize(s Snapshot) Snapshot {
	if s.Window == nil {
		s.Window = []bool{}
	}
	return s
}

func mustMerge(t *testing.T, a, b Snapshot) Snapshot {
	t.Helper()
	out, err := a.Merge(b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	return out
}

// TestMergeProperties checks the semilattice laws over random snapshot
// pairs/triples: commutativity, idempotency, associativity, and that
// re-delivering a snapshot that was already merged changes nothing (so
// gossip re-delivery cannot double-count evidence).
func TestMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 500; trial++ {
		a := genSnapshot(t, rng)
		b := genSnapshot(t, rng)
		c := genSnapshot(t, rng)

		ab := mustMerge(t, a, b)
		ba := mustMerge(t, b, a)
		if !reflect.DeepEqual(normalize(ab), normalize(ba)) {
			t.Fatalf("trial %d: Merge not commutative:\n a=%+v\n b=%+v\n ab=%+v\n ba=%+v", trial, a, b, ab, ba)
		}

		aa := mustMerge(t, a, a)
		if !reflect.DeepEqual(normalize(aa), normalize(a)) {
			t.Fatalf("trial %d: Merge(a,a) != a:\n a=%+v\n aa=%+v", trial, a, aa)
		}

		// Re-delivery: merging b in again is a no-op.
		abb := mustMerge(t, ab, b)
		if !reflect.DeepEqual(normalize(abb), normalize(ab)) {
			t.Fatalf("trial %d: re-delivery changed the merge:\n ab=%+v\n abb=%+v", trial, ab, abb)
		}
		if abb.Total != ab.Total || abb.Successes != ab.Successes {
			t.Fatalf("trial %d: re-delivery double-counted evidence: %+v vs %+v", trial, ab, abb)
		}

		abc1 := mustMerge(t, ab, c)
		abc2 := mustMerge(t, a, mustMerge(t, b, c))
		if !reflect.DeepEqual(normalize(abc1), normalize(abc2)) {
			t.Fatalf("trial %d: Merge not associative:\n (ab)c=%+v\n a(bc)=%+v", trial, abc1, abc2)
		}

		// The merged snapshot must always restore.
		if _, err := Restore(ab); err != nil {
			t.Fatalf("trial %d: merged snapshot not restorable: %v\n%+v", trial, err, ab)
		}
	}
}

// TestMergeNeverRegressesViolating forces a Violating verdict on one side
// and checks the merge keeps it regardless of which side carries more
// evidence.
func TestMergeNeverRegressesViolating(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		a := genSnapshot(t, rng)
		b := genSnapshot(t, rng)
		a.Decided = Violating
		got := mustMerge(t, a, b)
		if got.Decided != Violating {
			t.Fatalf("trial %d: merge regressed a Violating verdict:\n a=%+v\n b=%+v\n got=%+v", trial, a, b, got)
		}
		got = mustMerge(t, b, a)
		if got.Decided != Violating {
			t.Fatalf("trial %d: merge (flipped) regressed a Violating verdict: %+v", trial, got)
		}
	}
}

// TestMergeMostEvidenceWins pins the headline semantics: the side with
// more recorded outcomes supplies the merged statistics.
func TestMergeMostEvidenceWins(t *testing.T) {
	mkSnap := func(outcomes int, ok bool) Snapshot {
		m, err := New(Config{Predicted: 0.9, Window: 8})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < outcomes; i++ {
			m.Record(ok)
		}
		return m.Snapshot()
	}
	small := mkSnap(3, true)
	big := mkSnap(20, false)
	got := mustMerge(t, small, big)
	if got.Total != big.Total || got.Successes != big.Successes {
		t.Fatalf("merge did not take the side with more evidence: %+v", got)
	}
}

// TestMergeRejectsInvalid checks both inputs are validated.
func TestMergeRejectsInvalid(t *testing.T) {
	valid := Snapshot{Config: Config{Predicted: 0.9}, Total: 2, Successes: 1, Decided: Undecided}
	bad := Snapshot{Config: Config{Predicted: 0.9}, Total: 1, Successes: 5, Decided: Undecided}
	if _, err := valid.Merge(bad); err == nil {
		t.Fatal("Merge accepted an invalid right operand")
	}
	if _, err := bad.Merge(valid); err == nil {
		t.Fatal("Merge accepted an invalid left operand")
	}
}
