package monitor

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/sim"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Predicted: 0},
		{Predicted: 1},
		{Predicted: -0.5},
		{Predicted: 0.9, Degraded: 0.95}, // degraded above predicted
		{Predicted: 0.9, Degraded: -0.1},
		{Predicted: 0.9, Alpha: 2},
		{Predicted: 0.9, Beta: -1},
		{Predicted: 0.9, Window: -5},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("config %d: error = %v", i, err)
		}
	}
	if _, err := New(Config{Predicted: 0.9}); err != nil {
		t.Errorf("defaulted config rejected: %v", err)
	}
}

func TestEstimates(t *testing.T) {
	m, err := New(Config{Predicted: 0.9, Window: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cumulative() != 0 || m.Windowed() != 0 {
		t.Error("empty monitor should report 0")
	}
	outcomes := []bool{true, true, false, true, true, true}
	for _, o := range outcomes {
		m.Record(o)
	}
	if m.Total() != 6 {
		t.Errorf("Total = %d", m.Total())
	}
	if got := m.Cumulative(); math.Abs(got-5.0/6) > 1e-12 {
		t.Errorf("Cumulative = %g", got)
	}
	// Window of 4 sees the last four: false->shifted out; last 4 = F T T T?
	// outcomes[2:] = F T T T -> 3/4.
	if got := m.Windowed(); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Windowed = %g", got)
	}
}

func TestSPRTDetectsDegradation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m, err := New(Config{Predicted: 0.95, Degraded: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	// Feed outcomes at the degraded rate; must reach Violating.
	steps := 0
	for m.SPRT() == Undecided && steps < 100000 {
		m.Record(rng.Float64() < 0.85)
		steps++
	}
	if m.SPRT() != Violating {
		t.Fatalf("verdict = %v after %d steps", m.SPRT(), steps)
	}
	if steps > 2000 {
		t.Errorf("SPRT took %d observations, expected a quick decision", steps)
	}
}

func TestSPRTAcceptsHealthyService(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m, err := New(Config{Predicted: 0.95, Degraded: 0.85})
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for m.SPRT() == Undecided && steps < 100000 {
		m.Record(rng.Float64() < 0.95)
		steps++
	}
	if m.SPRT() != Meeting {
		t.Fatalf("verdict = %v after %d steps", m.SPRT(), steps)
	}
}

func TestSPRTErrorRates(t *testing.T) {
	// Empirical false-alarm rate at the predicted level stays near alpha.
	const trials = 200
	falseAlarms := 0
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < trials; trial++ {
		m, err := New(Config{Predicted: 0.9, Degraded: 0.7, Alpha: 0.05, Beta: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		for m.SPRT() == Undecided {
			m.Record(rng.Float64() < 0.9)
		}
		if m.SPRT() == Violating {
			falseAlarms++
		}
	}
	rate := float64(falseAlarms) / trials
	if rate > 0.12 { // alpha=0.05 with generous slack for 200 trials
		t.Errorf("false alarm rate = %g, want ~0.05", rate)
	}
}

func TestResetSPRT(t *testing.T) {
	m, err := New(Config{Predicted: 0.95, Degraded: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		m.Record(false)
	}
	if m.SPRT() != Violating {
		t.Fatalf("verdict = %v", m.SPRT())
	}
	m.ResetSPRT()
	if m.SPRT() != Undecided {
		t.Error("reset did not re-arm the test")
	}
	if m.Total() != 50 {
		t.Error("reset must keep cumulative statistics")
	}
}

func TestIntervalCheck(t *testing.T) {
	m, err := New(Config{Predicted: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if v := m.IntervalCheck(1.96, 100); v != Undecided {
		t.Errorf("verdict with no data = %v", v)
	}
	// 2000 observations at 70%: clearly violating a 0.9 prediction.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 2000; i++ {
		m.Record(rng.Float64() < 0.7)
	}
	if v := m.IntervalCheck(1.96, 100); v != Violating {
		t.Errorf("verdict = %v, want Violating", v)
	}
	// A healthy service meets the prediction.
	m2, err := New(Config{Predicted: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		m2.Record(rng.Float64() < 0.9)
	}
	if v := m2.IntervalCheck(1.96, 100); v != Meeting {
		t.Errorf("verdict = %v, want Meeting", v)
	}
}

func TestVerdictString(t *testing.T) {
	if Undecided.String() == "" || Meeting.String() == "" || Violating.String() == "" ||
		Verdict(42).String() == "" {
		t.Error("empty verdict strings")
	}
}

// TestMonitorAgainstSimulatedAssembly closes the paper's loop: predict the
// remote assembly's reliability, deploy it (the simulator), monitor the
// outcomes, and confirm the monitor reports the prediction as met — then
// degrade the network and confirm a violation is detected.
func TestMonitorAgainstSimulatedAssembly(t *testing.T) {
	p := assembly.DefaultPaperParams()
	p.Gamma = 5e-2
	asm, err := assembly.RemoteAssembly(p)
	if err != nil {
		t.Fatal(err)
	}
	predicted, err := core.New(asm, core.Options{}).Reliability("search", 1, 4096, 1)
	if err != nil {
		t.Fatal(err)
	}

	m, err := New(Config{Predicted: predicted, Degraded: predicted * 0.9})
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(asm, sim.Options{Seed: 5})
	for i := 0; i < 20000 && m.SPRT() == Undecided; i++ {
		ok, err := s.Invoke("search", 1, 4096, 1)
		if err != nil {
			t.Fatal(err)
		}
		m.Record(ok)
	}
	if m.SPRT() != Meeting {
		t.Fatalf("healthy deployment verdict = %v (observed %g, predicted %g)",
			m.SPRT(), m.Cumulative(), predicted)
	}

	// The network degrades 4x; the same prediction must now be violated.
	pBad := p
	pBad.Gamma = 2e-1
	asmBad, err := assembly.RemoteAssembly(pBad)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(Config{Predicted: predicted, Degraded: predicted * 0.9})
	if err != nil {
		t.Fatal(err)
	}
	sBad := sim.New(asmBad, sim.Options{Seed: 6})
	for i := 0; i < 20000 && m2.SPRT() == Undecided; i++ {
		ok, err := sBad.Invoke("search", 1, 4096, 1)
		if err != nil {
			t.Fatal(err)
		}
		m2.Record(ok)
	}
	if m2.SPRT() != Violating {
		t.Fatalf("degraded deployment verdict = %v (observed %g, predicted %g)",
			m2.SPRT(), m2.Cumulative(), predicted)
	}
}
