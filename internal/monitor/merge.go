package monitor

// Snapshot merging is how SPRT evidence travels between replicas: a
// serving fleet gossips per-provider checkpoints, and every receiver folds
// a remote snapshot into its own with Merge. Because the two replicas
// observed *different* outcome streams, summing their counts would
// double-count evidence as rumors are re-delivered; Merge instead picks
// the snapshot carrying the most evidence under a deterministic total
// order ("most evidence wins") and preserves the one verdict that must
// never regress: a tripped (Violating) SPRT on either side stays tripped
// in the result.
//
// The pick-the-max-plus-sticky-verdict construction makes Merge a
// join-semilattice operation: commutative, associative, and idempotent.
// Re-delivered or reordered gossip therefore converges to the same state
// no matter how many times or in what order snapshots arrive.

// Merge combines two snapshots of the same provider observed from
// different vantage points. The statistics come from the input carrying
// the most evidence (most recorded outcomes; ties broken by a
// deterministic total order over every statistical field); the verdict
// merges separately by its own join (Violating > Meeting > Undecided),
// so a tripped SPRT on either input is preserved no matter which side
// wins on evidence. Both inputs must be valid snapshots.
//
// The two components merge independently — a product of two
// join-semilattices — which is what makes the whole operation
// commutative, associative, and idempotent. The evidence comparator must
// therefore never read Decided: the verdict join rewrites that field, and
// a comparator that depended on it would see merged snapshots order
// differently from their inputs, breaking associativity.
func (s Snapshot) Merge(o Snapshot) (Snapshot, error) {
	if _, err := s.validate(); err != nil {
		return Snapshot{}, err
	}
	if _, err := o.validate(); err != nil {
		return Snapshot{}, err
	}
	win := s
	if compareEvidence(s, o) < 0 {
		win = o
	}
	out := win
	out.Window = append([]bool(nil), win.Window...)
	out.Decided = joinVerdict(s.Decided, o.Decided)
	return out, nil
}

// joinVerdict is the verdict lattice's join: Violating > Meeting >
// Undecided. A decided test dominates an armed one, and Violating — the
// verdict that quarantines a provider — dominates everything.
func joinVerdict(a, b Verdict) Verdict {
	if a >= b {
		return a
	}
	return b
}

// compareEvidence is a deterministic total order over a snapshot's
// statistical content (everything except Decided): it returns >0 when a
// carries strictly more (or more alarming) evidence than b, <0 for the
// converse, and 0 only for identical content. The order prefers more
// outcomes, then more failures, then a larger log likelihood ratio; the
// remaining comparisons exist only to make the order total so Merge is
// commutative.
func compareEvidence(a, b Snapshot) int {
	if a.Total != b.Total {
		return cmpInt(a.Total, b.Total)
	}
	// Same totals: more failures is the more alarming evidence.
	if a.Successes != b.Successes {
		return cmpInt(b.Successes, a.Successes)
	}
	if a.LLR != b.LLR {
		return cmpFloat(a.LLR, b.LLR)
	}
	for _, c := range [5][2]float64{
		{a.Config.Predicted, b.Config.Predicted},
		{a.Config.Degraded, b.Config.Degraded},
		{a.Config.Alpha, b.Config.Alpha},
		{a.Config.Beta, b.Config.Beta},
		{float64(a.Config.Window), float64(b.Config.Window)},
	} {
		if c[0] != c[1] {
			return cmpFloat(c[0], c[1])
		}
	}
	if len(a.Window) != len(b.Window) {
		return cmpInt(len(a.Window), len(b.Window))
	}
	for i := range a.Window {
		if a.Window[i] != b.Window[i] {
			return cmpBool(a.Window[i], b.Window[i])
		}
	}
	return 0
}

func cmpInt(a, b int) int {
	if a > b {
		return 1
	}
	if a < b {
		return -1
	}
	return 0
}

func cmpBool(a, b bool) int {
	switch {
	case a == b:
		return 0
	case a:
		return 1
	default:
		return -1
	}
}

func cmpFloat(a, b float64) int {
	if a > b {
		return 1
	}
	if a < b {
		return -1
	}
	return 0
}
