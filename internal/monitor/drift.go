package monitor

// Drift detection for failure-law *parameters*. Where Monitor tests a
// Bernoulli success probability against the engine's predicted
// reliability, Drift tests the rate parameter of one of the paper's
// exponential failure laws (eqs. (1)-(2): Pfail = 1 - exp(-rate *
// exposure)) against the value currently bound in the model. It is the
// sequential half of the estimation loop: the estimator fits a rate from
// live outcomes, and Drift decides — with bounded error rates and as few
// observations as possible — whether the true rate has moved away from
// the bound enough to warrant re-prediction.
//
// The test is Wald's SPRT again, but exposure-weighted and two-sided:
// each observation carries an exposure t (the N/s or B/b of the failure
// law), and two one-sided tests run in parallel, one for drift *up* (true
// rate >= Ratio * bound) and one for drift *down* (true rate <= bound /
// Ratio). Under an exponential law the per-observation log likelihood
// ratio between rates l1 and l0 is
//
//	success: log(exp(-l1 t) / exp(-l0 t))            = -(l1 - l0) * t
//	failure: log((1 - exp(-l1 t)) / (1 - exp(-l0 t)))
//
// so successes on long exposures are strong evidence against a higher
// rate, and failures on short exposures are strong evidence for one —
// exactly the weighting a per-request Bernoulli test would lose.

import (
	"fmt"
	"math"
)

// DriftConfig parameterizes a Drift detector.
type DriftConfig struct {
	// Bound is the rate parameter currently bound in the model (H0);
	// must be positive.
	Bound float64
	// Ratio is the multiplicative drift each one-sided test should
	// detect: drift up means rate >= Ratio*Bound, drift down means
	// rate <= Bound/Ratio. Must exceed 1; zero defaults to 2.
	Ratio float64
	// Alpha is the false-alarm rate of each one-sided test (default
	// 0.01).
	Alpha float64
	// Beta is the missed-detection rate of each one-sided test (default
	// 0.01).
	Beta float64
}

func (c DriftConfig) withDefaults() (DriftConfig, error) {
	if c.Bound <= 0 || math.IsInf(c.Bound, 0) || math.IsNaN(c.Bound) {
		return c, fmt.Errorf("%w: bound rate %g", ErrBadConfig, c.Bound)
	}
	if c.Ratio == 0 {
		c.Ratio = 2
	}
	if c.Ratio <= 1 || math.IsInf(c.Ratio, 0) || math.IsNaN(c.Ratio) {
		return c, fmt.Errorf("%w: drift ratio %g", ErrBadConfig, c.Ratio)
	}
	if c.Alpha == 0 {
		c.Alpha = 0.01
	}
	if c.Beta == 0 {
		c.Beta = 0.01
	}
	if c.Alpha <= 0 || c.Alpha >= 1 || c.Beta <= 0 || c.Beta >= 1 {
		return c, fmt.Errorf("%w: alpha=%g beta=%g", ErrBadConfig, c.Alpha, c.Beta)
	}
	return c, nil
}

// Validate checks the configuration, returning it with defaults applied.
func (c DriftConfig) Validate() (DriftConfig, error) { return c.withDefaults() }

// Drift is a two-sided, exposure-weighted SPRT on an exponential failure
// rate. Like Monitor's SPRT, a decided test stays decided until reset.
type Drift struct {
	cfg DriftConfig

	llrUp   float64 // one-sided test: rate drifted up to Ratio*Bound
	llrDown float64 // one-sided test: rate drifted down to Bound/Ratio
	upper   float64 // accept H1 (drifted)
	lower   float64 // accept H0 (holding)

	decided   Verdict
	direction int // +1 drift up, -1 drift down, 0 none
}

// NewDrift returns a Drift detector for the given configuration.
func NewDrift(cfg DriftConfig) (*Drift, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Drift{
		cfg:     cfg,
		upper:   math.Log((1 - cfg.Beta) / cfg.Alpha),
		lower:   math.Log(cfg.Beta / (1 - cfg.Alpha)),
		decided: Undecided,
	}, nil
}

// llStep returns the log likelihood ratio contribution of one observation
// under alternative rate l1 vs null rate l0.
func llStep(l1, l0, exposure float64, failed bool) float64 {
	if !failed {
		return -(l1 - l0) * exposure
	}
	if exposure <= 0 {
		// Limit of the failure term as exposure -> 0: log(l1/l0).
		return math.Log(l1 / l0)
	}
	// 1 - exp(-x) == -expm1(-x), stable for small x.
	return math.Log(-math.Expm1(-l1*exposure)) - math.Log(-math.Expm1(-l0*exposure))
}

// Record consumes one observation: whether the invocation failed, and the
// exposure it accumulated under the failure law (the N/s of eq. (1) or
// B/b of eq. (2); non-positive exposures contribute the zero-exposure
// limit). Once decided, further observations are ignored until Reset.
func (d *Drift) Record(exposure float64, failed bool) Verdict {
	if d.decided != Undecided {
		return d.decided
	}
	if failed && exposure < 0 {
		exposure = 0
	}
	up := d.cfg.Ratio * d.cfg.Bound
	down := d.cfg.Bound / d.cfg.Ratio
	d.llrUp += llStep(up, d.cfg.Bound, exposure, failed)
	d.llrDown += llStep(down, d.cfg.Bound, exposure, failed)
	switch {
	case d.llrUp >= d.upper:
		d.decided, d.direction = Violating, +1
	case d.llrDown >= d.upper:
		d.decided, d.direction = Violating, -1
	case d.llrUp <= d.lower && d.llrDown <= d.lower:
		d.decided = Meeting
	}
	return d.decided
}

// Verdict returns the current verdict: Violating once either one-sided
// test accepts its drift hypothesis, Meeting once both accept the bound,
// Undecided otherwise.
func (d *Drift) Verdict() Verdict { return d.decided }

// Direction reports which way a Violating verdict drifted: +1 up, -1
// down, 0 while not Violating.
func (d *Drift) Direction() int { return d.direction }

// Config returns the detector's defaulted configuration.
func (d *Drift) Config() DriftConfig { return d.cfg }

// Reset re-arms the detector against the same bound, discarding
// accumulated evidence (e.g. after the bound itself was re-predicted —
// callers usually construct a fresh detector with the new bound instead).
func (d *Drift) Reset() {
	d.llrUp, d.llrDown = 0, 0
	d.decided, d.direction = Undecided, 0
}

// DriftSnapshot is a self-contained checkpoint of a Drift detector. All
// fields are exported so it serializes with encoding/json as-is.
type DriftSnapshot struct {
	// Config is the detector's (defaulted) configuration.
	Config DriftConfig
	// LLRUp and LLRDown are the two one-sided cumulative log likelihood
	// ratios.
	LLRUp   float64
	LLRDown float64
	// Decided is the detector's verdict and Direction its drift sign
	// (+1 up, -1 down, 0 while not Violating).
	Decided   Verdict
	Direction int
}

// Snapshot captures the detector's complete state.
func (d *Drift) Snapshot() DriftSnapshot {
	return DriftSnapshot{
		Config:    d.cfg,
		LLRUp:     d.llrUp,
		LLRDown:   d.llrDown,
		Decided:   d.decided,
		Direction: d.direction,
	}
}

// validate checks a drift snapshot's internal consistency, returning its
// defaulted configuration.
func (s DriftSnapshot) validate() (DriftConfig, error) {
	cfg, err := s.Config.withDefaults()
	if err != nil {
		return cfg, err
	}
	if math.IsNaN(s.LLRUp) || math.IsNaN(s.LLRDown) {
		return cfg, fmt.Errorf("%w: NaN log likelihood ratio", ErrBadSnapshot)
	}
	switch s.Decided {
	case Undecided, Meeting, Violating:
	default:
		return cfg, fmt.Errorf("%w: verdict %d", ErrBadSnapshot, int(s.Decided))
	}
	switch s.Direction {
	case -1, 0, +1:
	default:
		return cfg, fmt.Errorf("%w: drift direction %d", ErrBadSnapshot, s.Direction)
	}
	if (s.Decided == Violating) != (s.Direction != 0) {
		return cfg, fmt.Errorf("%w: verdict %v with direction %d", ErrBadSnapshot, s.Decided, s.Direction)
	}
	return cfg, nil
}

// RestoreDrift rebuilds a Drift detector from a snapshot.
func RestoreDrift(s DriftSnapshot) (*Drift, error) {
	if _, err := s.validate(); err != nil {
		return nil, err
	}
	d, err := NewDrift(s.Config)
	if err != nil {
		return nil, err
	}
	d.llrUp = s.LLRUp
	d.llrDown = s.LLRDown
	d.decided = s.Decided
	d.direction = s.Direction
	return d, nil
}
