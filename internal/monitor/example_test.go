package monitor_test

import (
	"fmt"
	"math/rand"

	"socrel/internal/monitor"
)

// Example monitors a deployed service whose true reliability has dropped
// below the engine's prediction; the sequential test raises the alarm.
func Example() {
	m, err := monitor.New(monitor.Config{
		Predicted: 0.95, // what the engine promised
		Degraded:  0.85, // the degradation level worth alarming on
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rng := rand.New(rand.NewSource(1))
	n := 0
	for m.SPRT() == monitor.Undecided {
		m.Record(rng.Float64() < 0.85) // the service actually runs at 0.85
		n++
	}
	fmt.Println("verdict:", m.SPRT())
	fmt.Println("decided within 500 observations:", n < 500)
	// Output:
	// verdict: violating prediction
	// decided within 500 observations: true
}
