// Package monitor implements the runtime side of reliability assessment
// the paper's conclusion calls out: "predicting the reliability of an
// assembly of services actually represents only one side of the
// reliability assessment ..., with the other side represented by
// appropriate monitoring activities to check whether the assembly of
// selected services will actually achieve the predicted reliability."
//
// A Monitor consumes invocation outcomes (success/failure) for a deployed
// service, maintains windowed and cumulative reliability estimates, and
// checks them against the engine's prediction two ways:
//
//   - a Wilson confidence-interval check (conservative, fixed sample), and
//   - Wald's sequential probability ratio test (SPRT), which detects a
//     degradation from the predicted reliability to a specified degraded
//     level with bounded error rates using far fewer observations.
package monitor

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by this package.
var (
	// ErrBadConfig is returned for invalid probabilities or rates.
	ErrBadConfig = errors.New("monitor: invalid configuration")
	// ErrBadSnapshot is returned by Restore for inconsistent snapshots.
	ErrBadSnapshot = errors.New("monitor: invalid snapshot")
)

// Verdict is the state of a reliability check.
type Verdict int

// Verdicts.
const (
	// Undecided means the evidence is not yet conclusive.
	Undecided Verdict = iota + 1
	// Meeting means the service is meeting its predicted reliability.
	Meeting
	// Violating means the service is running below its predicted
	// reliability.
	Violating
)

func (v Verdict) String() string {
	switch v {
	case Undecided:
		return "undecided"
	case Meeting:
		return "meeting prediction"
	case Violating:
		return "violating prediction"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Config parameterizes a Monitor.
type Config struct {
	// Predicted is the reliability the engine predicted (H0).
	Predicted float64
	// Degraded is the degraded reliability the SPRT should detect (H1);
	// must be below Predicted. Zero defaults to 0.9 * Predicted.
	Degraded float64
	// Alpha is the SPRT false-alarm rate (default 0.01).
	Alpha float64
	// Beta is the SPRT missed-detection rate (default 0.01).
	Beta float64
	// Window is the sliding-window length for the windowed estimate
	// (default 1000).
	Window int
}

func (c Config) withDefaults() (Config, error) {
	if c.Predicted <= 0 || c.Predicted >= 1 {
		return c, fmt.Errorf("%w: predicted reliability %g", ErrBadConfig, c.Predicted)
	}
	if c.Degraded == 0 {
		c.Degraded = 0.9 * c.Predicted
	}
	if c.Degraded <= 0 || c.Degraded >= c.Predicted {
		return c, fmt.Errorf("%w: degraded reliability %g (predicted %g)", ErrBadConfig, c.Degraded, c.Predicted)
	}
	if c.Alpha == 0 {
		c.Alpha = 0.01
	}
	if c.Beta == 0 {
		c.Beta = 0.01
	}
	if c.Alpha <= 0 || c.Alpha >= 1 || c.Beta <= 0 || c.Beta >= 1 {
		return c, fmt.Errorf("%w: alpha=%g beta=%g", ErrBadConfig, c.Alpha, c.Beta)
	}
	if c.Window == 0 {
		c.Window = 1000
	}
	if c.Window < 1 {
		return c, fmt.Errorf("%w: window %d", ErrBadConfig, c.Window)
	}
	return c, nil
}

// Monitor tracks observed reliability against a prediction.
type Monitor struct {
	cfg Config

	total     int
	successes int

	ring    []bool
	ringPos int
	ringLen int
	winSucc int

	// SPRT state: cumulative log likelihood ratio log(P1/P0) and the
	// decision thresholds.
	llr     float64
	upper   float64 // accept H1 (violating)
	lower   float64 // accept H0 (meeting)
	decided Verdict

	llSucc float64 // log(p1/p0) per success
	llFail float64 // log((1-p1)/(1-p0)) per failure
}

// New returns a Monitor for the given configuration.
func New(cfg Config) (*Monitor, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Monitor{
		cfg:     cfg,
		ring:    make([]bool, cfg.Window),
		upper:   math.Log((1 - cfg.Beta) / cfg.Alpha),
		lower:   math.Log(cfg.Beta / (1 - cfg.Alpha)),
		decided: Undecided,
		llSucc:  math.Log(cfg.Degraded / cfg.Predicted),
		llFail:  math.Log((1 - cfg.Degraded) / (1 - cfg.Predicted)),
	}, nil
}

// Record consumes one invocation outcome.
func (m *Monitor) Record(success bool) {
	m.total++
	if success {
		m.successes++
	}
	// Sliding window.
	if m.ringLen == len(m.ring) {
		if m.ring[m.ringPos] {
			m.winSucc--
		}
	} else {
		m.ringLen++
	}
	m.ring[m.ringPos] = success
	if success {
		m.winSucc++
	}
	m.ringPos = (m.ringPos + 1) % len(m.ring)

	// SPRT update (only until a decision is reached; a decided test stays
	// decided — callers reset to re-arm).
	if m.decided == Undecided {
		if success {
			m.llr += m.llSucc
		} else {
			m.llr += m.llFail
		}
		if m.llr >= m.upper {
			m.decided = Violating
		} else if m.llr <= m.lower {
			m.decided = Meeting
		}
	}
}

// Total returns the number of recorded outcomes.
func (m *Monitor) Total() int { return m.total }

// Cumulative returns the all-time observed reliability (0 with no data).
func (m *Monitor) Cumulative() float64 {
	if m.total == 0 {
		return 0
	}
	return float64(m.successes) / float64(m.total)
}

// Windowed returns the sliding-window observed reliability (0 with no
// data).
func (m *Monitor) Windowed() float64 {
	if m.ringLen == 0 {
		return 0
	}
	return float64(m.winSucc) / float64(m.ringLen)
}

// SPRT returns the sequential test's current verdict.
func (m *Monitor) SPRT() Verdict { return m.decided }

// ResetSPRT re-arms the sequential test (e.g. after a deployment fix),
// keeping the cumulative and windowed statistics.
func (m *Monitor) ResetSPRT() {
	m.llr = 0
	m.decided = Undecided
}

// Snapshot is a self-contained checkpoint of a Monitor: configuration,
// cumulative counts, the sliding window in chronological order, and the
// SPRT state. Supervisors checkpoint monitors across rebinds (and process
// restarts) so accumulated SPRT evidence is never lost; all fields are
// exported so a Snapshot serializes with encoding/json as-is.
type Snapshot struct {
	// Config is the monitor's (defaulted) configuration.
	Config Config
	// Total and Successes are the cumulative outcome counts.
	Total     int
	Successes int
	// Window holds the sliding-window outcomes, oldest first (at most
	// Config.Window entries).
	Window []bool
	// LLR is the SPRT's cumulative log likelihood ratio.
	LLR float64
	// Decided is the SPRT's verdict.
	Decided Verdict
}

// Snapshot captures the monitor's complete state.
func (m *Monitor) Snapshot() Snapshot {
	win := make([]bool, 0, m.ringLen)
	start := 0
	if m.ringLen == len(m.ring) {
		start = m.ringPos
	}
	for i := 0; i < m.ringLen; i++ {
		win = append(win, m.ring[(start+i)%len(m.ring)])
	}
	return Snapshot{
		Config:    m.cfg,
		Total:     m.total,
		Successes: m.successes,
		Window:    win,
		LLR:       m.llr,
		Decided:   m.decided,
	}
}

// validate checks a snapshot's internal consistency, returning its
// defaulted configuration. Restore and Merge share it.
func (s Snapshot) validate() (Config, error) {
	cfg, err := s.Config.withDefaults()
	if err != nil {
		return cfg, err
	}
	if s.Total < 0 || s.Successes < 0 || s.Successes > s.Total {
		return cfg, fmt.Errorf("%w: %d successes of %d outcomes", ErrBadSnapshot, s.Successes, s.Total)
	}
	if len(s.Window) > cfg.Window || len(s.Window) > s.Total {
		return cfg, fmt.Errorf("%w: window of %d entries (config window %d, total %d)", ErrBadSnapshot, len(s.Window), cfg.Window, s.Total)
	}
	switch s.Decided {
	case Undecided, Meeting, Violating:
	default:
		return cfg, fmt.Errorf("%w: verdict %d", ErrBadSnapshot, int(s.Decided))
	}
	return cfg, nil
}

// Restore rebuilds a Monitor from a snapshot. The restored monitor
// continues exactly where the snapshot was taken: same estimates, same
// SPRT evidence, same verdict — and ResetSPRT keeps its usual semantics
// (re-arm the sequential test, keep the statistics).
func Restore(s Snapshot) (*Monitor, error) {
	if _, err := s.validate(); err != nil {
		return nil, err
	}
	m, err := New(s.Config)
	if err != nil {
		return nil, err
	}
	for i, ok := range s.Window {
		m.ring[i] = ok
		if ok {
			m.winSucc++
		}
	}
	m.ringLen = len(s.Window)
	m.ringPos = len(s.Window) % len(m.ring)
	m.total = s.Total
	m.successes = s.Successes
	m.llr = s.LLR
	m.decided = s.Decided
	return m, nil
}

// IntervalCheck compares the prediction against the cumulative Wilson
// interval at the given z quantile (e.g. 1.96): Violating if the whole
// interval lies below the prediction, Meeting if the prediction is inside
// or below, Undecided with fewer than min observations.
func (m *Monitor) IntervalCheck(z float64, min int) Verdict {
	if m.total < min || m.total == 0 {
		return Undecided
	}
	p := m.Cumulative()
	n := float64(m.total)
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z * math.Sqrt(p*(1-p)/n+z*z/(4*n*n)) / denom
	hi := center + half
	if hi < m.cfg.Predicted {
		return Violating
	}
	return Meeting
}
