package baseline

import (
	"errors"
	"fmt"

	"socrel/internal/core"
	"socrel/internal/model"
)

// FromComposite derives a Cheung-style model from a composite service's
// flow at a fixed actual-parameter point: each working state becomes a
// component whose reliability is the state's success probability with
// **connector failures ignored** — the abstraction level of the ref. [19]
// family, which models components and their control flow but not the
// interaction infrastructure. Cascading provider reliabilities are computed
// with the full engine; only the connectors of this composite's own
// requests are dropped.
//
// The gap between the derived model's prediction and the full engine's is
// exactly the reliability impact of the interaction infrastructure
// (experiment T5).
func FromComposite(resolver model.Resolver, comp *model.Composite, params []float64, opts core.Options) (*Cheung, error) {
	env, err := model.Env(comp, params)
	if err != nil {
		return nil, err
	}
	ev := core.New(resolver, opts)
	out := NewCheung()

	for _, st := range comp.Flow().States() {
		if st.Name == model.StartState || st.Name == model.EndState {
			continue
		}
		fails := make([]model.RequestFailure, len(st.Requests))
		for i, req := range st.Requests {
			providerName, _, err := resolver.Bind(comp.Name(), req.Role)
			if errors.Is(err, model.ErrNoBinding) {
				providerName = req.Role
			} else if err != nil {
				return nil, err
			}
			apVals := make([]float64, len(req.Params))
			for j, e := range req.Params {
				v, err := e.Eval(env)
				if err != nil {
					return nil, fmt.Errorf("baseline: %s state %s: %w", comp.Name(), st.Name, err)
				}
				apVals[j] = v
			}
			pSvc, err := ev.Pfail(providerName, apVals...)
			if err != nil {
				return nil, err
			}
			var pInt float64
			if req.Internal != nil {
				v, err := req.Internal.Eval(env)
				if err != nil {
					return nil, fmt.Errorf("baseline: %s state %s internal: %w", comp.Name(), st.Name, err)
				}
				pInt = clamp01(v)
			}
			// Connector contribution deliberately omitted.
			fails[i] = model.RequestFailure{Int: pInt, Ext: pSvc}
		}
		f, err := model.CombineState(st.Completion, st.Dependency, st.K, fails)
		if err != nil {
			return nil, fmt.Errorf("baseline: %s state %s: %w", comp.Name(), st.Name, err)
		}
		if err := out.SetComponent(st.Name, 1-f); err != nil {
			return nil, err
		}
	}

	for _, tr := range comp.Flow().Transitions() {
		p, err := tr.Prob.Eval(env)
		if err != nil {
			return nil, fmt.Errorf("baseline: %s transition %s -> %s: %w", comp.Name(), tr.From, tr.To, err)
		}
		if err := out.SetTransition(tr.From, tr.To, clamp01(p)); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
