package baseline

import (
	"errors"
	"math"
	"testing"

	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/model"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// simpleModel builds Start -> c1 -> c2 -> End with given reliabilities.
func simpleModel(t *testing.T, r1, r2 float64) *Cheung {
	t.Helper()
	c := NewCheung()
	if err := c.SetComponent("c1", r1); err != nil {
		t.Fatal(err)
	}
	if err := c.SetComponent("c2", r2); err != nil {
		t.Fatal(err)
	}
	for _, tr := range []struct {
		from, to string
		p        float64
	}{{"Start", "c1", 1}, {"c1", "c2", 1}, {"c2", "End", 1}} {
		if err := c.SetTransition(tr.from, tr.to, tr.p); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestCheungSequential(t *testing.T) {
	c := simpleModel(t, 0.9, 0.8)
	got, err := c.Reliability()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(got, 0.72, 1e-12) {
		t.Errorf("Reliability = %g, want 0.72", got)
	}
}

func TestCheungBranching(t *testing.T) {
	c := NewCheung()
	if err := c.SetComponent("a", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := c.SetComponent("b", 0.5); err != nil {
		t.Fatal(err)
	}
	for _, tr := range []struct {
		from, to string
		p        float64
	}{
		{"Start", "a", 0.7}, {"Start", "b", 0.3},
		{"a", "End", 1}, {"b", "End", 1},
	} {
		if err := c.SetTransition(tr.from, tr.to, tr.p); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.Reliability()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.7*0.9 + 0.3*0.5
	if !approxEq(got, want, 1e-12) {
		t.Errorf("Reliability = %g, want %g", got, want)
	}
}

func TestCheungCyclic(t *testing.T) {
	// c -> c with prob 0.5, -> End with 0.5; R_c = 0.9.
	// R = sum_k (0.9 * 0.5)^k * 0.9 * 0.5 ... closed form:
	// R = 0.9*0.5 / (1 - 0.9*0.5).
	c := NewCheung()
	if err := c.SetComponent("c", 0.9); err != nil {
		t.Fatal(err)
	}
	for _, tr := range []struct {
		from, to string
		p        float64
	}{{"Start", "c", 1}, {"c", "c", 0.5}, {"c", "End", 0.5}} {
		if err := c.SetTransition(tr.from, tr.to, tr.p); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.Reliability()
	if err != nil {
		t.Fatal(err)
	}
	want := 0.45 / (1 - 0.45)
	if !approxEq(got, want, 1e-12) {
		t.Errorf("Reliability = %g, want %g", got, want)
	}
}

func TestCheungErrors(t *testing.T) {
	c := NewCheung()
	if err := c.SetComponent("x", 1.5); !errors.Is(err, ErrBadReliability) {
		t.Errorf("error = %v", err)
	}
	// Transition into a state with no reliability assignment.
	if err := c.SetTransition("Start", "mystery", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.SetTransition("mystery", "End", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Reliability(); !errors.Is(err, ErrUnknownComponent) {
		t.Errorf("error = %v", err)
	}
}

func TestPathBasedMatchesCheungAcyclic(t *testing.T) {
	c := simpleModel(t, 0.95, 0.85)
	exact, err := c.Reliability()
	if err != nil {
		t.Fatal(err)
	}
	res, err := PathBased(c, PathOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(res.Reliability, exact, 1e-12) {
		t.Errorf("path-based %g vs state-based %g", res.Reliability, exact)
	}
	if !approxEq(res.Coverage, 1, 1e-12) {
		t.Errorf("coverage = %g, want 1 on acyclic graph", res.Coverage)
	}
	if len(res.Paths) != 1 || len(res.Paths[0].States) != 4 {
		t.Errorf("paths = %+v", res.Paths)
	}
}

func TestPathBasedTruncationOnCycles(t *testing.T) {
	c := NewCheung()
	if err := c.SetComponent("c", 0.9); err != nil {
		t.Fatal(err)
	}
	for _, tr := range []struct {
		from, to string
		p        float64
	}{{"Start", "c", 1}, {"c", "c", 0.5}, {"c", "End", 0.5}} {
		if err := c.SetTransition(tr.from, tr.to, tr.p); err != nil {
			t.Fatal(err)
		}
	}
	exact, err := c.Reliability()
	if err != nil {
		t.Fatal(err)
	}
	// Tight truncation: underestimates, coverage < 1.
	res, err := PathBased(c, PathOptions{MaxLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage >= 1-1e-9 {
		t.Errorf("coverage = %g, expected truncation below 1", res.Coverage)
	}
	if res.Reliability > exact {
		t.Errorf("truncated path-based %g exceeds exact %g", res.Reliability, exact)
	}
	// Generous truncation: converges to the exact value.
	res2, err := PathBased(c, PathOptions{MaxLen: 200, MinProb: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(res2.Reliability, exact, 1e-9) {
		t.Errorf("deep path-based %g vs exact %g", res2.Reliability, exact)
	}
	// Paths are sorted by probability.
	for i := 1; i < len(res2.Paths); i++ {
		if res2.Paths[i].Prob > res2.Paths[i-1].Prob {
			t.Fatal("paths not sorted by probability")
		}
	}
}

func TestPathBasedUnknownComponent(t *testing.T) {
	c := NewCheung()
	if err := c.SetTransition("Start", "ghost", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.SetTransition("ghost", "End", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := PathBased(c, PathOptions{}); !errors.Is(err, ErrUnknownComponent) {
		t.Errorf("error = %v", err)
	}
}

// TestAdapterMatchesEngineWithPerfectConnectors: when every connector is
// perfect, ignoring connectors loses nothing, so the derived Cheung model
// must agree exactly with the full engine.
func TestAdapterMatchesEngineWithPerfectConnectors(t *testing.T) {
	p := assembly.DefaultPaperParams()
	local, err := assembly.LocalAssembly(p)
	if err != nil {
		t.Fatal(err)
	}
	// Rebind the sort connection to a perfect connection.
	noConn := local.Clone("noconn")
	noConn.AddBinding("search", "sort", "sort1", "")
	svc, err := noConn.ServiceByName("search")
	if err != nil {
		t.Fatal(err)
	}
	comp := svc.(*model.Composite)
	params := []float64{1, 4096, 1}
	full, err := core.New(noConn, core.Options{}).Reliability("search", params...)
	if err != nil {
		t.Fatal(err)
	}
	cheung, err := FromComposite(noConn, comp, params, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cheung.Reliability()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(got, full, 1e-12) {
		t.Errorf("adapter %g vs engine %g", got, full)
	}
}

// TestAblationConnectorGap is experiment T5's core claim: on the remote
// assembly the baseline (no connectors) overestimates reliability, and the
// gap equals the RPC connector's failure contribution.
func TestAblationConnectorGap(t *testing.T) {
	p := assembly.DefaultPaperParams()
	p.Gamma = 5e-2 // unreliable network makes the gap pronounced
	remote, err := assembly.RemoteAssembly(p)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := remote.ServiceByName("search")
	if err != nil {
		t.Fatal(err)
	}
	comp := svc.(*model.Composite)
	params := []float64{1, 4096, 1}
	full, err := core.New(remote, core.Options{}).Reliability("search", params...)
	if err != nil {
		t.Fatal(err)
	}
	cheung, err := FromComposite(remote, comp, params, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	noConn, err := cheung.Reliability()
	if err != nil {
		t.Fatal(err)
	}
	if noConn <= full {
		t.Errorf("baseline %g should overestimate full model %g", noConn, full)
	}
	// The overestimate must be substantial here (the network dominates).
	if (noConn-full)/(1-full) < 0.5 {
		t.Errorf("connector gap too small: baseline %g vs full %g", noConn, full)
	}
}
