package baseline

import (
	"fmt"
	"sort"
)

// Path is one enumerated execution path with its occurrence probability and
// the product of component reliabilities along it.
type Path struct {
	States      []string
	Prob        float64
	Reliability float64
}

// PathOptions bounds path enumeration on cyclic graphs.
type PathOptions struct {
	// MaxLen bounds path length in states (default 64).
	MaxLen int
	// MinProb prunes paths whose occurrence probability falls below this
	// threshold (default 1e-12).
	MinProb float64
	// MaxPaths bounds the number of enumerated paths (default 100000).
	MaxPaths int
}

func (o PathOptions) withDefaults() PathOptions {
	if o.MaxLen <= 0 {
		o.MaxLen = 64
	}
	if o.MinProb <= 0 {
		o.MinProb = 1e-12
	}
	if o.MaxPaths <= 0 {
		o.MaxPaths = 100000
	}
	return o
}

// PathResult is the outcome of a path-based analysis.
type PathResult struct {
	// Reliability is sum over paths of Prob * Reliability.
	Reliability float64
	// Coverage is the total probability mass of the enumerated paths;
	// below 1 it means the truncation missed some (long or rare) paths.
	Coverage float64
	// Paths holds the enumerated paths, highest probability first.
	Paths []Path
}

// PathBased runs the Dolbec-Shepard analysis on the same inputs as a
// Cheung model: enumerate Start-to-End paths and accumulate
// probability-weighted path reliabilities.
func PathBased(c *Cheung, opts PathOptions) (PathResult, error) {
	opts = opts.withDefaults()
	var res PathResult
	type frame struct {
		state string
		path  []string
		prob  float64
		rel   float64
	}
	stack := []frame{{state: startState, path: []string{startState}, prob: 1, rel: 1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.state == endState {
			res.Paths = append(res.Paths, Path{States: f.path, Prob: f.prob, Reliability: f.rel})
			res.Reliability += f.prob * f.rel
			res.Coverage += f.prob
			if len(res.Paths) >= opts.MaxPaths {
				break
			}
			continue
		}
		if len(f.path) >= opts.MaxLen {
			continue
		}
		succ := c.chain.Successors(f.state)
		for next, p := range succ {
			np := f.prob * p
			if np < opts.MinProb {
				continue
			}
			nrel := f.rel
			if next != endState && next != startState {
				r, ok := c.rel[next]
				if !ok {
					return PathResult{}, fmt.Errorf("%w: %q", ErrUnknownComponent, next)
				}
				nrel *= r
			}
			path := make([]string, len(f.path)+1)
			copy(path, f.path)
			path[len(f.path)] = next
			stack = append(stack, frame{state: next, path: path, prob: np, rel: nrel})
		}
	}
	sort.Slice(res.Paths, func(i, j int) bool { return res.Paths[i].Prob > res.Paths[j].Prob })
	return res, nil
}
