// Package baseline reimplements the related-work reliability models the
// paper positions itself against (section 5), for the ablation experiments:
//
//   - Cheung-style state-based models (Wang/Wu/Chen, ref. [19]): one
//     reliability number per component, a probabilistic control-flow graph,
//     no connectors, no parameter dependency, no sharing.
//   - Dolbec-Shepard path-based models (ref. [5]): enumerate execution
//     paths, multiply component reliabilities along each, and weight by
//     path probability. Exact on acyclic graphs, truncated on cyclic ones.
//
// Adapters derive baseline inputs from a full analytic-interface assembly
// so both can be run on the same architecture; the gap between their
// predictions and the full engine quantifies what ignoring connectors and
// the interaction infrastructure costs (experiment T5).
package baseline

import (
	"errors"
	"fmt"

	"socrel/internal/markov"
)

// Errors returned by baseline models.
var (
	// ErrUnknownComponent is returned when a flow references a component
	// with no reliability assignment.
	ErrUnknownComponent = errors.New("baseline: unknown component")
	// ErrBadReliability is returned for reliabilities outside [0, 1].
	ErrBadReliability = errors.New("baseline: reliability outside [0,1]")
)

// Cheung is a state-based architectural reliability model: components with
// scalar reliabilities visited according to a control-flow Markov chain
// from Start to End.
type Cheung struct {
	rel   map[string]float64
	chain *markov.Chain
}

// NewCheung returns an empty model containing only Start and End.
func NewCheung() *Cheung {
	c := &Cheung{rel: make(map[string]float64), chain: markov.New()}
	c.chain.AddState(startState)
	c.chain.AddState(endState)
	return c
}

const (
	startState = "Start"
	endState   = "End"
	failState  = "Fail"
)

// SetComponent assigns a component's reliability.
func (c *Cheung) SetComponent(name string, reliability float64) error {
	if reliability < 0 || reliability > 1 {
		return fmt.Errorf("%w: %s = %g", ErrBadReliability, name, reliability)
	}
	c.rel[name] = reliability
	c.chain.AddState(name)
	return nil
}

// SetTransition sets a control-flow transition probability.
func (c *Cheung) SetTransition(from, to string, p float64) error {
	return c.chain.SetTransition(from, to, p)
}

// Reliability computes the probability of reaching End from Start with
// every visited component succeeding: the classic absorbing-chain
// computation with per-state failure probability 1 - R_i.
func (c *Cheung) Reliability() (float64, error) {
	aug := c.chain.Clone()
	for _, name := range c.chain.States() {
		if name == startState || name == endState {
			continue
		}
		r, ok := c.rel[name]
		if !ok {
			return 0, fmt.Errorf("%w: %q", ErrUnknownComponent, name)
		}
		if err := aug.ScaleOutgoing(name, r); err != nil {
			return 0, err
		}
		if r < 1 {
			if err := aug.SetTransition(name, failState, 1-r); err != nil {
				return 0, err
			}
		}
	}
	abs, err := markov.NewAbsorbing(aug, markov.MethodAuto)
	if err != nil {
		return 0, fmt.Errorf("baseline: %w", err)
	}
	return abs.AbsorptionProbability(startState, endState)
}
