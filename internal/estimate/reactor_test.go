package estimate

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"socrel/internal/monitor"
)

type fakeRepredictor struct {
	calls []struct {
		provider, attr string
		rate           float64
	}
	err error
}

func (f *fakeRepredictor) Repredict(_ context.Context, provider, attr string, rate float64) (float64, float64, error) {
	f.calls = append(f.calls, struct {
		provider, attr string
		rate           float64
	}{provider, attr, rate})
	if f.err != nil {
		return 0, 0, f.err
	}
	return 0.1, 0.2, nil
}

type fakeTripper struct{ trips []string }

func (f *fakeTripper) TripDrift(provider string, _ error) bool {
	f.trips = append(f.trips, provider)
	return true
}

func TestNewReactorValidation(t *testing.T) {
	if _, err := NewReactor(ReactorConfig{}); err == nil {
		t.Fatal("NewReactor accepted nil estimator")
	}
	e, _ := newTestEstimator(t, Config{})
	if _, err := NewReactor(ReactorConfig{Estimator: e, RelThreshold: -1}); err == nil {
		t.Fatal("NewReactor accepted negative threshold")
	}
	if _, err := NewReactor(ReactorConfig{Estimator: e, MinObservations: -3}); err == nil {
		t.Fatal("NewReactor accepted negative min observations")
	}
	r, err := NewReactor(ReactorConfig{Estimator: e})
	if err != nil {
		t.Fatalf("NewReactor: %v", err)
	}
	if r.cfg.RelThreshold != 0.25 || r.cfg.MinObservations != 20 {
		t.Fatalf("defaults not applied: %+v", r.cfg)
	}
	if err := r.Bind(Key{Provider: "p"}, "lambda", 0); err == nil {
		t.Fatal("Bind accepted zero rate")
	}
}

// driveDrift feeds seeded outcomes at the true rate until the bucket's
// drift verdict trips or max observations pass.
func driveDrift(e *Estimator, k Key, lam float64, seed int64, max int) {
	rng := rand.New(rand.NewSource(seed))
	pf := -math.Expm1(-lam)
	for i := 0; i < max; i++ {
		if e.Observe(Outcome{Provider: k.Provider, Context: k.Context, Load: k.Load,
			Failed: rng.Float64() < pf, Exposure: 1}) == monitor.Violating {
			return
		}
	}
}

func TestReactorRepredictsOnConfirmedDrift(t *testing.T) {
	e, _ := newTestEstimator(t, Config{})
	rep := &fakeRepredictor{}
	var published []RepredictEvent
	r, err := NewReactor(ReactorConfig{
		Estimator:   e,
		Repredictor: rep,
		OnRepredict: func(ev RepredictEvent) { published = append(published, ev) },
	})
	if err != nil {
		t.Fatalf("NewReactor: %v", err)
	}
	k := Key{Provider: "cpu1", Context: "app", Load: 0}
	if err := r.Bind(k, "lambda", 0.05); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if e.Bound(k) != 0.05 {
		t.Fatal("Bind did not set the estimator bound")
	}

	// Nothing to do while the verdict is undecided.
	if evs, err := r.Step(context.Background()); err != nil || len(evs) != 0 {
		t.Fatalf("idle Step: %v %v", evs, err)
	}

	driveDrift(e, k, 0.25, 5, 5000)
	evs, err := r.Step(context.Background())
	if err != nil {
		t.Fatalf("Step: %v", err)
	}
	if len(evs) != 1 || len(rep.calls) != 1 {
		t.Fatalf("re-predictions: events=%d calls=%d", len(evs), len(rep.calls))
	}
	ev := evs[0]
	call := rep.calls[0]
	if call.provider != "cpu1" || call.attr != "lambda" {
		t.Fatalf("bad repredict call: %+v", call)
	}
	if ev.OldRate != 0.05 || ev.NewRate != call.rate || ev.OldPfail != 0.1 || ev.NewPfail != 0.2 {
		t.Fatalf("bad event: %+v", ev)
	}
	if ev.NewRate < ev.Estimate.Lo || ev.NewRate > ev.Estimate.Hi {
		t.Fatalf("rebound rate %g outside its own CI [%g, %g]", ev.NewRate, ev.Estimate.Lo, ev.Estimate.Hi)
	}
	if len(published) != 1 || published[0] != ev {
		t.Fatalf("OnRepredict mismatch: %+v", published)
	}
	if got := r.Rate(k); got != ev.NewRate {
		t.Fatalf("binding rate %g, want %g", got, ev.NewRate)
	}
	if got := e.Bound(k); got != ev.NewRate {
		t.Fatalf("estimator bound %g, want %g", got, ev.NewRate)
	}
	// Re-binding re-armed the detector: no immediate re-trigger.
	if v, _ := e.Verdict(k); v != monitor.Undecided {
		t.Fatalf("verdict after rebind: %v", v)
	}
	if evs, _ := r.Step(context.Background()); len(evs) != 0 {
		t.Fatal("Step re-predicted without fresh evidence")
	}
	s := r.Stats()
	if s.Repredicted != 1 || s.Triggered != 1 || s.Steps != 3 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestReactorSkipsSmallMoves(t *testing.T) {
	// Drift detector trips (ratio gates at 2x) but the threshold is set
	// higher than the actual move, so the reactor must hold fire.
	e, _ := newTestEstimator(t, Config{DriftRatio: 1.5})
	rep := &fakeRepredictor{}
	r, err := NewReactor(ReactorConfig{Estimator: e, Repredictor: rep, RelThreshold: 10})
	if err != nil {
		t.Fatalf("NewReactor: %v", err)
	}
	k := Key{Provider: "p", Context: "c", Load: 0}
	if err := r.Bind(k, "lambda", 0.05); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	driveDrift(e, k, 0.2, 9, 5000)
	if v, _ := e.Verdict(k); v != monitor.Violating {
		t.Fatal("drift never tripped")
	}
	if evs, err := r.Step(context.Background()); err != nil || len(evs) != 0 || len(rep.calls) != 0 {
		t.Fatalf("reactor acted on sub-threshold move: %v %v %d", evs, err, len(rep.calls))
	}
}

func TestReactorRetriesFailedRepredict(t *testing.T) {
	e, _ := newTestEstimator(t, Config{})
	boom := errors.New("rebind exploded")
	rep := &fakeRepredictor{err: boom}
	r, err := NewReactor(ReactorConfig{Estimator: e, Repredictor: rep})
	if err != nil {
		t.Fatalf("NewReactor: %v", err)
	}
	k := Key{Provider: "p", Context: "c", Load: 0}
	if err := r.Bind(k, "lambda", 0.05); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	driveDrift(e, k, 0.25, 6, 5000)
	if _, err := r.Step(context.Background()); !errors.Is(err, boom) {
		t.Fatalf("Step error = %v, want %v", err, boom)
	}
	if !errors.Is(r.LastErr(), boom) {
		t.Fatalf("LastErr = %v", r.LastErr())
	}
	if r.Rate(k) != 0.05 {
		t.Fatal("failed re-prediction moved the binding")
	}
	// The repredictor recovers; the next Step retries and succeeds.
	rep.err = nil
	evs, err := r.Step(context.Background())
	if err != nil || len(evs) != 1 {
		t.Fatalf("retry Step: %v %v", evs, err)
	}
	s := r.Stats()
	if s.RepredictErrors != 1 || s.Repredicted != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestReactorTripperPath(t *testing.T) {
	e, _ := newTestEstimator(t, Config{})
	tr := &fakeTripper{}
	r, err := NewReactor(ReactorConfig{Estimator: e, Tripper: tr})
	if err != nil {
		t.Fatalf("NewReactor: %v", err)
	}
	k := Key{Provider: "p", Context: "c", Load: 0}
	if err := r.Bind(k, "lambda", 0.05); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	driveDrift(e, k, 0.25, 8, 5000)
	if _, err := r.Step(context.Background()); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if len(tr.trips) != 1 || tr.trips[0] != "p" {
		t.Fatalf("trips: %v", tr.trips)
	}
	// One confirmed drift trips once, not once per Step.
	if _, err := r.Step(context.Background()); err != nil {
		t.Fatalf("Step: %v", err)
	}
	if len(tr.trips) != 1 {
		t.Fatalf("re-tripped on stale evidence: %v", tr.trips)
	}
	if s := r.Stats(); s.Tripped != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestReactorObserveConvenience(t *testing.T) {
	e, _ := newTestEstimator(t, Config{})
	rep := &fakeRepredictor{}
	r, err := NewReactor(ReactorConfig{Estimator: e, Repredictor: rep})
	if err != nil {
		t.Fatalf("NewReactor: %v", err)
	}
	k := Key{Provider: "p", Context: "c", Load: 0}
	if err := r.Bind(k, "lambda", 0.05); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	rng := rand.New(rand.NewSource(12))
	pf := -math.Expm1(-0.25)
	var events []RepredictEvent
	for i := 0; i < 5000 && len(events) == 0; i++ {
		evs, err := r.Observe(context.Background(), Outcome{
			Provider: k.Provider, Context: k.Context, Failed: rng.Float64() < pf})
		if err != nil {
			t.Fatalf("Observe: %v", err)
		}
		events = append(events, evs...)
	}
	if len(events) != 1 {
		t.Fatalf("Observe path produced %d re-predictions", len(events))
	}
}
