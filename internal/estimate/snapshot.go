package estimate

// Estimator checkpoints and their gossip merge. The construction mirrors
// monitor/merge.go exactly: two replicas observed *different* outcome
// streams for the same bucket, so summing their counts would
// double-count evidence as rumors are re-delivered. Merge instead picks
// the snapshot carrying the most evidence under a deterministic total
// order over the statistical content, and joins the drift verdict
// separately by lexicographic max over (verdict, direction) — so a
// tripped detector on either side stays tripped no matter which side
// wins on evidence. The product of the two joins is a join-semilattice:
// commutative, associative, idempotent, hence convergent under
// re-delivered and reordered gossip.
//
// As in monitor, the evidence comparator must never read Decided or
// Direction: the verdict join rewrites those fields, and a comparator
// depending on them would order merged snapshots differently from their
// inputs, breaking associativity.

import (
	"fmt"
	"math"
	"sort"
	"time"

	"socrel/internal/monitor"
)

// ObsSnapshot is one window entry of a Snapshot.
type ObsSnapshot struct {
	At       time.Time
	Exposure float64
	Failed   bool
	Latency  time.Duration
}

// Snapshot is a self-contained checkpoint of one estimation bucket. All
// fields are exported so it serializes with encoding/json as-is; maps of
// Key.String() to Snapshot form the estimator checkpoint that rides
// cluster gossip.
type Snapshot struct {
	// Total, Failures, and Exposure are the cumulative counts.
	Total    int
	Failures int
	Exposure float64
	// Window holds the sliding-window observations, oldest first.
	Window []ObsSnapshot
	// Bound is the bucket's bound rate (0 when unbound) and DriftRatio,
	// DriftAlpha, DriftBeta its detector parameters (meaningful only
	// with a bound).
	Bound      float64
	DriftRatio float64
	DriftAlpha float64
	DriftBeta  float64
	// LLRUp and LLRDown are the detector's one-sided log likelihood
	// ratios (0 when unbound).
	LLRUp   float64
	LLRDown float64
	// Decided is the bucket's effective drift verdict (the zero Verdict
	// when the bucket never had a bound) and Direction its sign.
	Decided   monitor.Verdict
	Direction int
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// validate checks a snapshot's internal consistency.
func (s Snapshot) validate() error {
	if s.Total < 0 || s.Failures < 0 || s.Failures > s.Total {
		return fmt.Errorf("%w: %d failures of %d outcomes", ErrBadSnapshot, s.Failures, s.Total)
	}
	if !finite(s.Exposure) || s.Exposure < 0 {
		return fmt.Errorf("%w: exposure %g", ErrBadSnapshot, s.Exposure)
	}
	if len(s.Window) > s.Total {
		return fmt.Errorf("%w: window of %d entries exceeds total %d", ErrBadSnapshot, len(s.Window), s.Total)
	}
	winFail := 0
	for i, o := range s.Window {
		if !finite(o.Exposure) || o.Exposure < 0 {
			return fmt.Errorf("%w: window[%d] exposure %g", ErrBadSnapshot, i, o.Exposure)
		}
		if o.Latency < 0 {
			return fmt.Errorf("%w: window[%d] latency %v", ErrBadSnapshot, i, o.Latency)
		}
		if o.Failed {
			winFail++
		}
	}
	if winFail > s.Failures {
		return fmt.Errorf("%w: %d windowed failures exceed cumulative %d", ErrBadSnapshot, winFail, s.Failures)
	}
	if !finite(s.Bound) || s.Bound < 0 {
		return fmt.Errorf("%w: bound %g", ErrBadSnapshot, s.Bound)
	}
	if !finite(s.LLRUp) || !finite(s.LLRDown) {
		return fmt.Errorf("%w: non-finite log likelihood ratio", ErrBadSnapshot)
	}
	switch s.Decided {
	case 0, monitor.Undecided, monitor.Meeting, monitor.Violating:
	default:
		return fmt.Errorf("%w: verdict %d", ErrBadSnapshot, int(s.Decided))
	}
	switch s.Direction {
	case -1, 0, +1:
	default:
		return fmt.Errorf("%w: drift direction %d", ErrBadSnapshot, s.Direction)
	}
	if (s.Decided == monitor.Violating) != (s.Direction != 0) {
		return fmt.Errorf("%w: verdict %v with direction %d", ErrBadSnapshot, s.Decided, s.Direction)
	}
	if s.Bound > 0 {
		if s.Decided == 0 {
			return fmt.Errorf("%w: bound %g with no verdict", ErrBadSnapshot, s.Bound)
		}
		if _, err := (monitor.DriftConfig{Bound: s.Bound, Ratio: s.DriftRatio, Alpha: s.DriftAlpha, Beta: s.DriftBeta}).Validate(); err != nil {
			return fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
	}
	return nil
}

// Merge combines two snapshots of the same bucket observed from
// different vantage points. The statistics come from the input carrying
// the most evidence; the drift verdict joins separately (lexicographic
// max over verdict then direction), so a tripped detector on either
// input is preserved. Both inputs must be valid snapshots.
func (s Snapshot) Merge(o Snapshot) (Snapshot, error) {
	if err := s.validate(); err != nil {
		return Snapshot{}, err
	}
	if err := o.validate(); err != nil {
		return Snapshot{}, err
	}
	win := s
	if compareEvidence(s, o) < 0 {
		win = o
	}
	out := win
	out.Window = append([]ObsSnapshot(nil), win.Window...)
	out.Decided, out.Direction = joinVerdict(s.Decided, s.Direction, o.Decided, o.Direction)
	return out, nil
}

// joinVerdict is the verdict lattice's join: lexicographic max over
// (verdict, direction), with Violating > Meeting > Undecided > none.
func joinVerdict(av monitor.Verdict, ad int, bv monitor.Verdict, bd int) (monitor.Verdict, int) {
	if av > bv || (av == bv && ad >= bd) {
		return av, ad
	}
	return bv, bd
}

// compareEvidence is a deterministic total order over a snapshot's
// statistical content (everything except Decided/Direction): more
// outcomes first, then more failures (the more alarming evidence), then
// more exposure, then the larger drift likelihood ratios; the remaining
// comparisons exist only to make the order total so Merge is
// commutative.
func compareEvidence(a, b Snapshot) int {
	if a.Total != b.Total {
		return cmpInt(a.Total, b.Total)
	}
	if a.Failures != b.Failures {
		return cmpInt(a.Failures, b.Failures)
	}
	for _, c := range [8][2]float64{
		{a.Exposure, b.Exposure},
		{a.LLRUp, b.LLRUp},
		{a.LLRDown, b.LLRDown},
		{a.Bound, b.Bound},
		{a.DriftRatio, b.DriftRatio},
		{a.DriftAlpha, b.DriftAlpha},
		{a.DriftBeta, b.DriftBeta},
		{float64(len(a.Window)), float64(len(b.Window))},
	} {
		if c[0] != c[1] {
			return cmpFloat(c[0], c[1])
		}
	}
	for i := range a.Window {
		x, y := a.Window[i], b.Window[i]
		if !x.At.Equal(y.At) {
			return cmpInt64(x.At.UnixNano(), y.At.UnixNano())
		}
		if x.Exposure != y.Exposure {
			return cmpFloat(x.Exposure, y.Exposure)
		}
		if x.Failed != y.Failed {
			if x.Failed {
				return 1
			}
			return -1
		}
		if x.Latency != y.Latency {
			return cmpInt64(int64(x.Latency), int64(y.Latency))
		}
	}
	return 0
}

func cmpInt(a, b int) int {
	switch {
	case a > b:
		return 1
	case a < b:
		return -1
	default:
		return 0
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a > b:
		return 1
	case a < b:
		return -1
	default:
		return 0
	}
}

func cmpFloat(a, b float64) int {
	switch {
	case a > b:
		return 1
	case a < b:
		return -1
	default:
		return 0
	}
}

// snapshotLocked captures one bucket. Callers hold e.mu.
func (e *Estimator) snapshotLocked(en *entry) Snapshot {
	s := Snapshot{
		Total:    en.total,
		Failures: en.failures,
		Exposure: en.exposure,
		Bound:    en.bound,
	}
	start := 0
	if en.ringLen == len(en.ring) {
		start = en.ringPos
	}
	s.Window = make([]ObsSnapshot, 0, en.ringLen)
	for i := 0; i < en.ringLen; i++ {
		o := en.ring[(start+i)%len(en.ring)]
		s.Window = append(s.Window, ObsSnapshot{At: o.at, Exposure: o.exposure, Failed: o.failed, Latency: o.latency})
	}
	if en.drift != nil {
		ds := en.drift.Snapshot()
		s.DriftRatio = ds.Config.Ratio
		s.DriftAlpha = ds.Config.Alpha
		s.DriftBeta = ds.Config.Beta
		s.LLRUp = ds.LLRUp
		s.LLRDown = ds.LLRDown
	}
	s.Decided, s.Direction = en.effectiveVerdict()
	if en.drift != nil && s.Decided == 0 {
		s.Decided = monitor.Undecided
	}
	return s
}

// restoreEntryLocked rebuilds a bucket from a valid snapshot. The window
// is truncated to the estimator's own capacity (newest entries win).
// Callers hold e.mu.
func (e *Estimator) restoreEntryLocked(s Snapshot) (*entry, error) {
	en := &entry{
		total:    s.Total,
		failures: s.Failures,
		exposure: s.Exposure,
		ring:     make([]obs, e.cfg.Window),
		bound:    s.Bound,
	}
	win := s.Window
	if len(win) > e.cfg.Window {
		win = win[len(win)-e.cfg.Window:]
	}
	for i, o := range win {
		en.ring[i] = obs{at: o.At, exposure: o.Exposure, failed: o.Failed, latency: o.Latency}
	}
	en.ringLen = len(win)
	en.ringPos = len(win) % e.cfg.Window
	if s.Bound > 0 {
		decided := s.Decided
		if decided == 0 {
			decided = monitor.Undecided
		}
		llrUp, llrDown, dir := s.LLRUp, s.LLRDown, s.Direction
		if decided == monitor.Meeting {
			// Meeting never freezes the live detector (see Observe): park
			// the confirmation in the merged slot and restore the detector
			// re-armed so the bucket keeps watching for later drift.
			en.mergedDecided, en.mergedDir = monitor.Meeting, 0
			decided, dir = monitor.Undecided, 0
			llrUp, llrDown = 0, 0
		}
		d, err := monitor.RestoreDrift(monitor.DriftSnapshot{
			Config:    monitor.DriftConfig{Bound: s.Bound, Ratio: s.DriftRatio, Alpha: s.DriftAlpha, Beta: s.DriftBeta},
			LLRUp:     llrUp,
			LLRDown:   llrDown,
			Decided:   decided,
			Direction: dir,
		})
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		en.drift = d
	} else {
		en.mergedDecided, en.mergedDir = s.Decided, s.Direction
	}
	return en, nil
}

// Checkpoint captures the estimator's complete state as a map from
// Key.String() to bucket snapshot, suitable for gossip or persistence.
func (e *Estimator) Checkpoint() map[string]Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]Snapshot, len(e.entries))
	for k, en := range e.entries {
		out[k.String()] = e.snapshotLocked(en)
	}
	return out
}

// RestoreCheckpoint replaces any buckets named in the checkpoint with the
// checkpointed state (other buckets are untouched). Invalid keys or
// snapshots fail the whole restore without partial application.
func (e *Estimator) RestoreCheckpoint(cp map[string]Snapshot) error {
	restored := make(map[Key]*entry, len(cp))
	e.mu.Lock()
	defer e.mu.Unlock()
	for ks, s := range cp {
		k, err := ParseKey(ks)
		if err != nil {
			return err
		}
		if err := s.validate(); err != nil {
			return fmt.Errorf("bucket %q: %w", ks, err)
		}
		en, err := e.restoreEntryLocked(s)
		if err != nil {
			return fmt.Errorf("bucket %q: %w", ks, err)
		}
		restored[k] = en
	}
	for k, en := range restored {
		e.entries[k] = en
	}
	e.gen.Add(1)
	return nil
}

// MergeCheckpoint folds a remote checkpoint into the estimator: unknown
// buckets are adopted, known buckets merge via Snapshot.Merge. Invalid
// entries are counted and skipped (gossip keeps flowing past one bad
// bucket); the first error is returned after the full pass. A bucket
// whose effective verdict flips to Violating through the merge fires
// OnDrift with FromMerge set.
func (e *Estimator) MergeCheckpoint(cp map[string]Snapshot) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var firstErr error
	for _, ks := range sortedKeys(cp) {
		s := cp[ks]
		k, err := ParseKey(ks)
		if err != nil {
			e.stats.BadMerges++
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		local, known := e.entries[k]
		merged := s
		var before monitor.Verdict
		if known {
			before, _ = local.effectiveVerdict()
			merged, err = e.snapshotLocked(local).Merge(s)
		} else {
			err = s.validate()
		}
		if err != nil {
			e.stats.BadMerges++
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		en, err := e.restoreEntryLocked(merged)
		if err != nil {
			e.stats.BadMerges++
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		e.entries[k] = en
		e.stats.Merged++
		// No e.gen bump: gen versions *locally observed* evidence for
		// gossip version vectors. Merged-in state is already covered by
		// the senders' own vector entries; bumping here would make every
		// merge look like fresh local evidence and defeat the
		// dominance-based skip (rumors would echo forever).
		if after, dir := en.effectiveVerdict(); after == monitor.Violating && before != monitor.Violating {
			e.tripLocked(k, en, dir, true)
		}
	}
	return firstErr
}

func sortedKeys(m map[string]Snapshot) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
