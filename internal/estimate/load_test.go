package estimate

import (
	"testing"
	"time"
)

func TestLatencyQuantizerBuckets(t *testing.T) {
	q := DefaultLatencyQuantizer()
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Microsecond, 0},
		{time.Millisecond, 1}, // boundary lands in the upper bucket
		{5 * time.Millisecond, 1},
		{10 * time.Millisecond, 2},
		{99 * time.Millisecond, 2},
		{100 * time.Millisecond, 3},
		{time.Hour, 3},
	}
	for _, c := range cases {
		if got := q.Bucket(c.d); got != c.want {
			t.Errorf("Bucket(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	if got := (LatencyQuantizer{}).Bucket(time.Hour); got != 0 {
		t.Errorf("zero quantizer Bucket = %d, want 0", got)
	}
}

func TestDepthQuantizerBuckets(t *testing.T) {
	q := DefaultDepthQuantizer()
	cases := []struct {
		depth int
		want  int
	}{
		{0, 0},
		{7, 0},
		{8, 1},
		{31, 1},
		{32, 2},
		{127, 2},
		{128, 3},
		{100000, 3},
	}
	for _, c := range cases {
		if got := q.Bucket(c.depth); got != c.want {
			t.Errorf("Bucket(%d) = %d, want %d", c.depth, got, c.want)
		}
	}
	if got := (DepthQuantizer{}).Bucket(1 << 20); got != 0 {
		t.Errorf("zero quantizer Bucket = %d, want 0", got)
	}

	// Distinct burst sizes land in distinct buckets — the property the
	// DST load-burst events rely on to exercise per-load estimation.
	small, large := q.Bucket(4), q.Bucket(64)
	if small == large {
		t.Fatalf("burst sizes 4 and 64 share bucket %d", small)
	}
}
