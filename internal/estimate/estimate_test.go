package estimate

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"socrel/internal/monitor"
	"socrel/internal/runtime"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func newTestEstimator(t *testing.T, cfg Config) (*Estimator, *runtime.FakeClock) {
	t.Helper()
	clk := runtime.NewFakeClock(t0)
	cfg.Clock = clk
	e, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return e, clk
}

func TestKeyStringRoundTrip(t *testing.T) {
	for _, k := range []Key{
		{Provider: "cpu1", Context: "search", Load: 0},
		{Provider: "net", Context: "", Load: 3},
		{Provider: "p", Context: "a b c", Load: -1},
	} {
		got, err := ParseKey(k.String())
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("round trip %q: got %+v want %+v", k.String(), got, k)
		}
	}
	for _, bad := range []string{"", "noseparator", "only|one", "a|b|notanint", "|ctx|0"} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) accepted malformed key", bad)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	for _, bad := range []Config{
		{Window: -1},
		{MaxAge: -time.Second},
		{Confidence: 1.5},
		{DriftRatio: 0.5},
		{DriftAlpha: 2},
	} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%+v) accepted invalid config", bad)
		}
	}
	e, _ := newTestEstimator(t, Config{})
	cfg := e.Config()
	if cfg.Window != 256 || cfg.Confidence != 0.95 || cfg.DriftRatio != 2 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

// TestDeterministicMLE checks the failures-per-exposure estimator on an
// exactly known stream.
func TestDeterministicMLE(t *testing.T) {
	e, _ := newTestEstimator(t, Config{Window: 512})
	k := Key{Provider: "cpu1", Context: "app", Load: 0}
	for i := 0; i < 100; i++ {
		e.Observe(Outcome{Provider: k.Provider, Context: k.Context, Failed: i < 10, Exposure: 2})
	}
	est, ok := e.Estimate(k)
	if !ok {
		t.Fatal("no estimate")
	}
	if est.Observations != 100 || est.Failures != 10 || est.Exposure != 200 {
		t.Fatalf("window stats: %+v", est)
	}
	// Constant exposure t: the grouped-exponential MLE equals the exact
	// inversion -ln(1 - d/n)/t, independent of the solver.
	want := -math.Log(1-0.1) / 2
	if math.Abs(est.Rate-want) > 1e-10 {
		t.Fatalf("rate %g, want %g", est.Rate, want)
	}
	if est.Lo >= est.Rate || est.Hi <= est.Rate || est.Lo <= 0 {
		t.Fatalf("interval [%g, %g] does not bracket MLE %g", est.Lo, est.Hi, est.Rate)
	}
	// Rare-failure limit: CI width is close to the 1/sqrt(d) lognormal.
	if ratio := est.Hi / est.Rate; math.Abs(ratio-math.Exp(1.959963984540054/math.Sqrt(10))) > 0.05 {
		t.Fatalf("hi/rate %g far from lognormal rare-failure limit", ratio)
	}
}

// TestGoldenConvergence recovers known rates from seeded synthetic
// streams: the true rate must land inside the estimator's own CI.
func TestGoldenConvergence(t *testing.T) {
	for _, tc := range []struct {
		name string
		lam  float64
		seed int64
	}{
		{"lambda-0.1", 0.1, 11},
		{"lambda-0.02", 0.02, 22},
		{"beta-0.5", 0.5, 33},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, _ := newTestEstimator(t, Config{Window: 1024})
			k := Key{Provider: "p", Context: "c", Load: 0}
			rng := rand.New(rand.NewSource(tc.seed))
			for i := 0; i < 1024; i++ {
				exp := 0.5 + rng.Float64() // exposures in [0.5, 1.5)
				pf := -math.Expm1(-tc.lam * exp)
				e.Observe(Outcome{Provider: k.Provider, Context: k.Context, Failed: rng.Float64() < pf, Exposure: exp})
			}
			est, ok := e.Estimate(k)
			if !ok {
				t.Fatal("no estimate")
			}
			if tc.lam < est.Lo || tc.lam > est.Hi {
				t.Fatalf("true rate %g outside CI [%g, %g] (MLE %g, %d failures)", tc.lam, est.Lo, est.Hi, est.Rate, est.Failures)
			}
			if math.Abs(est.Rate-tc.lam)/tc.lam > 0.5 {
				t.Fatalf("MLE %g too far from truth %g", est.Rate, tc.lam)
			}
		})
	}
}

// TestCensoredLowTraffic checks the zero-failure path: the interval must
// widen (upper bound shrink only with more evidence, grow as evidence
// ages out) instead of oscillating a point estimate.
func TestCensoredLowTraffic(t *testing.T) {
	e, clk := newTestEstimator(t, Config{Window: 128, MaxAge: 10 * time.Second})
	k := Key{Provider: "quiet", Context: "c", Load: 0}
	obsEvery := 500 * time.Millisecond

	feed := func(n int) {
		for i := 0; i < n; i++ {
			clk.Advance(obsEvery)
			e.Observe(Outcome{Provider: k.Provider, Context: k.Context, Exposure: 1})
		}
	}

	feed(5)
	est1, ok := e.Estimate(k)
	if !ok {
		t.Fatal("no estimate after 5 obs")
	}
	if est1.Rate != 0 || est1.Lo != 0 {
		t.Fatalf("censored sample has nonzero MLE: %+v", est1)
	}
	// Rule of three: hi = -ln(0.05)/T ~ 3/T.
	if want := -math.Log(0.05) / 5; math.Abs(est1.Hi-want) > 1e-12 {
		t.Fatalf("censored hi %g, want %g", est1.Hi, want)
	}

	// More evidence tightens the bound monotonically.
	feed(10)
	est2, _ := e.Estimate(k)
	if est2.Hi >= est1.Hi {
		t.Fatalf("hi did not tighten with evidence: %g -> %g", est1.Hi, est2.Hi)
	}

	// Silence ages evidence out; the bound must widen again, and the
	// point estimate must not move.
	clk.Advance(8 * time.Second)
	est3, ok := e.Estimate(k)
	if !ok {
		t.Fatal("estimate vanished while some window entries are fresh")
	}
	if est3.Hi <= est2.Hi {
		t.Fatalf("hi did not widen as evidence aged: %g -> %g", est2.Hi, est3.Hi)
	}
	if est3.Rate != 0 {
		t.Fatalf("censored point estimate oscillated to %g", est3.Rate)
	}

	// Total silence: no usable exposure left.
	clk.Advance(time.Hour)
	if _, ok := e.Estimate(k); ok {
		t.Fatal("estimate survived with every window entry stale")
	}
}

func TestContextAndLoadBucketing(t *testing.T) {
	e, _ := newTestEstimator(t, Config{})
	for i := 0; i < 50; i++ {
		e.Observe(Outcome{Provider: "p", Context: "search", Load: 0, Failed: true})
		e.Observe(Outcome{Provider: "p", Context: "search", Load: 2})
		e.Observe(Outcome{Provider: "p", Context: "browse", Load: 0})
	}
	hot, _ := e.Estimate(Key{Provider: "p", Context: "search", Load: 0})
	loaded, _ := e.Estimate(Key{Provider: "p", Context: "search", Load: 2})
	browse, _ := e.Estimate(Key{Provider: "p", Context: "browse", Load: 0})
	if hot.Failures != 50 || loaded.Failures != 0 || browse.Failures != 0 {
		t.Fatalf("buckets bled: hot=%d loaded=%d browse=%d", hot.Failures, loaded.Failures, browse.Failures)
	}
	all := e.All()
	if len(all) != 3 {
		t.Fatalf("All() returned %d buckets, want 3", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Key.String() >= all[i].Key.String() {
			t.Fatalf("All() not sorted: %v before %v", all[i-1].Key, all[i].Key)
		}
	}
}

func TestDriftVerdictAndCallback(t *testing.T) {
	var events []DriftEvent
	clk := runtime.NewFakeClock(t0)
	e, err := New(Config{Clock: clk, OnDrift: func(ev DriftEvent) { events = append(events, ev) }})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	k := Key{Provider: "p", Context: "c", Load: 0}
	if err := e.SetBound(k, 0.05); err != nil {
		t.Fatalf("SetBound: %v", err)
	}
	// True rate far above the bound: all failures at exposure 1.
	var v monitor.Verdict
	for i := 0; i < 200 && v != monitor.Violating; i++ {
		v = e.Observe(Outcome{Provider: k.Provider, Context: k.Context, Failed: true})
	}
	if v != monitor.Violating {
		t.Fatalf("verdict %v after 200 failures against bound 0.05", v)
	}
	if got, dir := e.Verdict(k); got != monitor.Violating || dir != +1 {
		t.Fatalf("Verdict() = %v/%d, want Violating/+1", got, dir)
	}
	if len(events) != 1 {
		t.Fatalf("OnDrift fired %d times, want 1", len(events))
	}
	ev := events[0]
	if ev.Key != k || ev.Direction != +1 || ev.Bound != 0.05 || ev.FromMerge {
		t.Fatalf("bad drift event: %+v", ev)
	}
	if s := e.Stats(); s.DriftViolations != 1 {
		t.Fatalf("DriftViolations = %d, want 1", s.DriftViolations)
	}
	// Rebinding re-arms the detector.
	if err := e.SetBound(k, 1.5); err != nil {
		t.Fatalf("SetBound: %v", err)
	}
	if got, _ := e.Verdict(k); got != monitor.Undecided {
		t.Fatalf("verdict after rebind = %v, want Undecided", got)
	}
	if err := e.SetBound(k, math.NaN()); err == nil {
		t.Fatal("SetBound accepted NaN")
	}
}

func TestGenAdvances(t *testing.T) {
	e, _ := newTestEstimator(t, Config{})
	g0 := e.Gen()
	e.Observe(Outcome{Provider: "p"})
	if e.Gen() <= g0 {
		t.Fatal("Observe did not advance Gen")
	}
	g1 := e.Gen()
	if err := e.SetBound(Key{Provider: "p"}, 0.1); err != nil {
		t.Fatalf("SetBound: %v", err)
	}
	if e.Gen() <= g1 {
		t.Fatal("SetBound did not advance Gen")
	}
}

func TestPfailAt(t *testing.T) {
	est := Estimate{Rate: 0.1, Lo: 0.05, Hi: 0.2}
	p, lo, hi := est.PfailAt(2)
	if math.Abs(p-(1-math.Exp(-0.2))) > 1e-12 || lo >= p || hi <= p {
		t.Fatalf("PfailAt: p=%g lo=%g hi=%g", p, lo, hi)
	}
}

func TestZQuantile(t *testing.T) {
	for _, tc := range []struct{ conf, z float64 }{
		{0.90, 1.6448536269514722},
		{0.95, 1.959963984540054},
		{0.99, 2.5758293035489004},
	} {
		if got := zQuantile(tc.conf); math.Abs(got-tc.z) > 1e-6 {
			t.Errorf("zQuantile(%g) = %g, want %g", tc.conf, got, tc.z)
		}
	}
}

// TestMeetingRearmsDetector: a bucket whose traffic confirms the bound
// must still catch drift that starts afterwards. A sticky Meeting would
// blind the detector; instead the confirmation parks in the merged slot
// and the live detector re-arms.
func TestMeetingRearmsDetector(t *testing.T) {
	e, _ := newTestEstimator(t, Config{Window: 128})
	k := Key{Provider: "cpu1", Context: "app"}
	if err := e.SetBound(k, 0.05); err != nil {
		t.Fatal(err)
	}

	// Phase 1: a long healthy stretch at the bound rate — deterministic
	// 1-in-20 failures (rate -ln(0.95) ≈ 0.051) so the SPRT marches to
	// Meeting without the sampling variance that risks a false trip.
	healthy := func(i int) bool { return i%20 == 0 }
	sawMeeting := false
	for i := 0; i < 4000; i++ {
		v := e.Observe(Outcome{Provider: "cpu1", Context: "app", Failed: healthy(i)})
		if v == monitor.Meeting {
			sawMeeting = true
		}
		if v == monitor.Violating {
			t.Fatalf("false drift trip at healthy observation %d", i)
		}
	}
	if !sawMeeting {
		t.Fatal("bound never confirmed Meeting during the healthy stretch")
	}

	// Phase 2: the true rate quadruples (1-in-5 failures). The detector
	// must trip despite the earlier Meeting decision.
	tripped := false
	for i := 0; i < 4000 && !tripped; i++ {
		if e.Observe(Outcome{Provider: "cpu1", Context: "app", Failed: i%5 == 0}) == monitor.Violating {
			tripped = true
		}
	}
	if !tripped {
		t.Fatal("detector never tripped after drift — Meeting blinded it")
	}
	if v, dir := e.Verdict(k); v != monitor.Violating || dir != 1 {
		t.Fatalf("verdict %v dir %d, want Violating +1", v, dir)
	}

	// The same re-arm survives a checkpoint round trip: a restored
	// Meeting bucket keeps watching too.
	e2, _ := newTestEstimator(t, Config{Window: 128})
	if err := e2.SetBound(k, 0.05); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4000; i++ {
		e2.Observe(Outcome{Provider: "cpu1", Context: "app", Failed: healthy(i)})
	}
	if v, _ := e2.Verdict(k); v != monitor.Meeting {
		t.Fatalf("verdict %v, want Meeting before round trip", v)
	}
	e3, _ := newTestEstimator(t, Config{Window: 128})
	if err := e3.RestoreCheckpoint(e2.Checkpoint()); err != nil {
		t.Fatal(err)
	}
	if v, _ := e3.Verdict(k); v != monitor.Meeting {
		t.Fatalf("restored verdict %v, want Meeting", v)
	}
	tripped = false
	for i := 0; i < 4000 && !tripped; i++ {
		if e3.Observe(Outcome{Provider: "cpu1", Context: "app", Failed: i%5 == 0}) == monitor.Violating {
			tripped = true
		}
	}
	if !tripped {
		t.Fatal("restored detector never tripped after drift")
	}
}
