package estimate

import "time"

// Load-bucket assignment helpers. Key.Load is a small integer so a
// provider that only degrades under load is estimated apart from its
// healthy contexts, but raw load signals — latencies, queue depths,
// burst sizes — are continuous. These quantizers map a signal to a
// bucket index by counting crossed thresholds: bucket 0 is everything
// below the first threshold, bucket len(Thresholds) everything at or
// above the last. Thresholds must be ascending; the zero value of
// either quantizer maps every input to bucket 0 (single-bucket
// estimation, the pre-quantizer behavior).

// LatencyQuantizer buckets by observed invocation latency.
type LatencyQuantizer struct {
	// Thresholds are the ascending bucket boundaries.
	Thresholds []time.Duration
}

// Bucket returns the index of the bucket d falls in: the number of
// thresholds at or below d.
func (q LatencyQuantizer) Bucket(d time.Duration) int {
	b := 0
	for _, t := range q.Thresholds {
		if d < t {
			break
		}
		b++
	}
	return b
}

// DefaultLatencyQuantizer buckets at 1ms / 10ms / 100ms — interactive,
// nominal, slow, and pathological, matched to the serving layer's
// millisecond-scale latency targets.
func DefaultLatencyQuantizer() LatencyQuantizer {
	return LatencyQuantizer{Thresholds: []time.Duration{
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	}}
}

// DepthQuantizer buckets by an integer depth signal — a queue depth, an
// in-flight count, or a burst size.
type DepthQuantizer struct {
	// Thresholds are the ascending bucket boundaries.
	Thresholds []int
}

// Bucket returns the index of the bucket depth falls in: the number of
// thresholds at or below depth.
func (q DepthQuantizer) Bucket(depth int) int {
	b := 0
	for _, t := range q.Thresholds {
		if depth < t {
			break
		}
		b++
	}
	return b
}

// DefaultDepthQuantizer buckets at 8 / 32 / 128 — idle, busy, saturated,
// and overloaded, matched to the admission queue's default capacity
// scale.
func DefaultDepthQuantizer() DepthQuantizer {
	return DepthQuantizer{Thresholds: []int{8, 32, 128}}
}
