package estimate_test

// The headline robustness soak for the estimation loop: a fleet whose
// bound failure parameter silently drifts away from reality must notice,
// re-predict, and converge — fleet-wide, through a lossy gossip fabric,
// with every clock fake and no real sleeps.
//
// One replica serves all the traffic for a CPU-law provider whose TRUE
// failure rate ramps from the bound 0.05 up to 0.2 mid-soak (a
// faultinject.Ramp profile drives the sampler). The other replicas see
// the evidence only through estimator snapshots riding gossip, over a
// network that drops and duplicates rumors. Each replica runs its own
// Supervisor (the live model) and Reactor (the acting half of the loop).
// Invariants, checked under -race:
//
//   - during the healthy warmup nobody re-predicts and every replica
//     serves the seed prediction 1-exp(-0.05);
//   - after the ramp, every replica — including the two that observed
//     nothing locally — re-predicts within a bounded number of gossip
//     rounds;
//   - the true rate lies inside every replica's confidence interval, and
//     each replica's re-bound rate is within a factor the SPRT's
//     indifference region permits;
//   - each supervisor's served prediction equals 1-exp(-rate) for its
//     re-bound rate and lies inside the CI band mapped through the
//     failure law — predictions track reality to within the estimator's
//     own stated uncertainty;
//   - replicas that never observed traffic converged via merges, and no
//     goroutines leak.

import (
	"context"
	"math"
	gorun "runtime"
	"testing"
	"time"

	"socrel/internal/assembly"
	"socrel/internal/cluster"
	"socrel/internal/core"
	"socrel/internal/estimate"
	"socrel/internal/expr"
	"socrel/internal/faultinject"
	"socrel/internal/model"
	"socrel/internal/registry"
	socruntime "socrel/internal/runtime"
	"socrel/internal/server"
)

// buildDriftAssembly is the estimation fixture: an "app" composite with
// one open role "worker" and a single CPU candidate whose failure law is
// 1 - exp(-lambda * N / s). With speed 1 and N = 1 every invocation
// carries exposure exactly 1, so Pfail(app) == 1 - exp(-lambda) and the
// estimator's per-exposure rate IS the model's lambda.
func buildDriftAssembly(t *testing.T, lam float64) (*assembly.Assembly, []registry.Candidate) {
	t.Helper()
	asm := assembly.New("drift-soak")
	asm.MustAddService(model.NewCPU("cpu1", 1, lam))
	app := model.NewComposite("app", nil, nil)
	st, err := app.Flow().AddState("work", model.AND, model.NoSharing)
	if err != nil {
		t.Fatal(err)
	}
	st.AddRequest(model.Request{Role: "worker", Params: []expr.Expr{expr.Num(1)}})
	if err := app.Flow().AddTransitionP(model.StartState, "work", 1); err != nil {
		t.Fatal(err)
	}
	if err := app.Flow().AddTransitionP("work", model.EndState, 1); err != nil {
		t.Fatal(err)
	}
	asm.MustAddService(app)
	return asm, []registry.Candidate{{Provider: "cpu1"}}
}

// driftEval is the replica server evaluator; the soak drives the
// estimators directly, so a constant is all the serving tier needs.
type driftEval struct{ p float64 }

func (e driftEval) PfailCtx(context.Context, string, ...float64) (float64, error) {
	return e.p, nil
}

func TestDriftChaosSoak(t *testing.T) {
	const (
		replicas = 3
		lam0     = 0.05 // bound rate, live in every replica's model
		lamTrue  = 0.2  // where the true rate ramps to
		perRound = 20   // observations replica-0 serves per gossip round
	)
	warmRounds, rampRounds := 20, 15
	settleRounds, maxRounds := 10, 200
	if testing.Short() {
		warmRounds = 10
	}
	before := gorun.NumGoroutine()
	ctx := context.Background()

	t0 := time.Unix(0, 0)
	clk := socruntime.NewFakeClock(t0)
	truth := faultinject.Ramp{
		Start: t0.Add(time.Duration(warmRounds) * time.Second),
		Over:  time.Duration(rampRounds) * time.Second,
		From:  lam0,
		To:    lamTrue,
	}
	sampler := faultinject.NewSampler(truth, 1234)

	f, err := cluster.NewFleet(cluster.FleetConfig{
		Replicas: replicas,
		Node: cluster.NodeConfig{
			GossipInterval: time.Second,
			SuspectAfter:   5 * time.Second,
			DeadAfter:      15 * time.Second,
			Clock:          clk,
			Seed:           3,
		},
		Server:       server.Config{Service: "app", Hedge: server.HedgeConfig{Disabled: true}},
		NewEvaluator: func(id string) server.Evaluator { return driftEval{p: 1 - math.Exp(-lam0)} },
		NewEstimator: func(id string) *estimate.Estimator {
			est, err := estimate.New(estimate.Config{Window: 128, Clock: clk})
			if err != nil {
				t.Fatal(err)
			}
			return est
		},
		Network: faultinject.NewNetwork(faultinject.NetConfig{Seed: 7, Drop: 0.05, Duplicate: 0.05, Delay: 0.10}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	key := estimate.Key{Provider: "cpu1", Context: "app"}
	type replica struct {
		node *cluster.Node
		sup  *socruntime.Supervisor
		re   *estimate.Reactor
	}
	var reps []*replica
	for _, node := range f.Nodes() {
		asm, cands := buildDriftAssembly(t, lam0)
		sup, err := socruntime.NewSupervisor(ctx, socruntime.SupervisorConfig{Clock: clk},
			asm, "app", "worker", cands, core.Options{}, "app")
		if err != nil {
			t.Fatal(err)
		}
		re, err := estimate.NewReactor(estimate.ReactorConfig{
			Estimator:       node.Estimator(),
			Repredictor:     sup,
			MinObservations: 40,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := re.Bind(key, "lambda", lam0); err != nil {
			t.Fatal(err)
		}
		reps = append(reps, &replica{node: node, sup: sup, re: re})
	}

	drive := func() {
		now := clk.Now()
		for j := 0; j < perRound; j++ {
			reps[0].node.ObserveEstimate(estimate.Outcome{
				Provider: "cpu1",
				Context:  "app",
				Failed:   sampler.Failed(now, 1),
				Exposure: 1,
				Latency:  time.Millisecond,
			})
		}
	}
	step := func(round int) {
		for _, r := range reps {
			if _, err := r.re.Step(ctx); err != nil {
				t.Fatalf("round %d: reactor step on %s: %v", round, r.node.ID(), err)
			}
		}
	}

	// Phase 1 — healthy warmup at exactly the bound rate: the loop must
	// hold still, and every replica serves the seed prediction.
	round := 0
	for ; round < warmRounds; round++ {
		drive()
		f.GossipRound()
		step(round)
		clk.Advance(time.Second)
	}
	for _, r := range reps {
		if st := r.re.Stats(); st.Repredicted != 0 {
			t.Fatalf("%s re-predicted during the healthy warmup: %+v", r.node.ID(), st)
		}
		if got, want := 1-r.sup.Predicted(), 1-math.Exp(-lam0); math.Abs(got-want) > 1e-12 {
			t.Fatalf("%s warmup Pfail %g, want %g", r.node.ID(), got, want)
		}
	}

	// Phase 2 — the true rate ramps to 4x the bound while only replica-0
	// observes traffic. Keep the rounds coming until every replica has
	// re-predicted AND every replica's served prediction sits inside its
	// own CI band (an early mid-ramp rebind lands low; the re-armed SPRT
	// then walks the bound up to the post-ramp rate over later rounds).
	inBand := func(r *replica) bool {
		est, ok := r.node.Estimator().Estimate(key)
		if !ok {
			return false
		}
		p := 1 - r.sup.Predicted()
		lo, hi := 1-math.Exp(-est.Lo), 1-math.Exp(-est.Hi)
		return p >= lo-1e-9 && p <= hi+1e-9
	}
	doneRound, convRound := -1, -1
	for ; round < maxRounds; round++ {
		drive()
		f.GossipRound()
		step(round)
		clk.Advance(time.Second)
		if doneRound < 0 {
			all := true
			for _, r := range reps {
				if r.re.Stats().Repredicted == 0 {
					all = false
				}
			}
			if all {
				doneRound = round
			}
		} else if round >= doneRound+settleRounds {
			all := true
			for _, r := range reps {
				if !inBand(r) {
					all = false
				}
			}
			if all {
				convRound = round
				break
			}
		}
	}
	if doneRound < 0 || convRound < 0 {
		for _, r := range reps {
			t.Logf("%s rate=%g reactor %+v estimator %+v",
				r.node.ID(), r.re.Rate(key), r.re.Stats(), r.node.Estimator().Stats())
		}
		t.Fatalf("fleet never converged within %d rounds (all re-predicted at round %d)", maxRounds, doneRound)
	}
	// Bounded detection: the whole fleet must close the loop within 40
	// rounds (800 observations) of the ramp completing.
	if lag := doneRound - (warmRounds + rampRounds); lag > 40 {
		t.Fatalf("fleet took %d post-ramp rounds to re-predict everywhere, want <= 40", lag)
	}

	// Phase 3 — convergence: predictions track reality to within the
	// estimator's own stated uncertainty, on every replica.
	for _, r := range reps {
		id := r.node.ID()
		est, ok := r.node.Estimator().Estimate(key)
		if !ok {
			t.Fatalf("%s has no estimate for %s", id, key)
		}
		if est.Lo > lamTrue || est.Hi < lamTrue {
			t.Errorf("%s CI [%g, %g] excludes the true rate %g", id, est.Lo, est.Hi, lamTrue)
		}
		rate := r.re.Rate(key)
		if rate < lamTrue/2 || rate > lamTrue*2 {
			t.Errorf("%s re-bound rate %g, want within a factor 2 of %g", id, rate, lamTrue)
		}
		// The served prediction is exactly the failure law at the re-bound
		// rate, and lies inside the CI band mapped through the law.
		got, want := 1-r.sup.Predicted(), 1-math.Exp(-rate)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s prediction %g does not track its re-bound rate (want %g)", id, got, want)
		}
		lo, hi := 1-math.Exp(-est.Lo), 1-math.Exp(-est.Hi)
		if got < lo-1e-9 || got > hi+1e-9 {
			t.Errorf("%s predicted Pfail %g outside its CI band [%g, %g] (true %g)",
				id, got, lo, hi, 1-math.Exp(-lamTrue))
		}
		if id != reps[0].node.ID() {
			if st := r.node.Stats(); st.EstimatesMerged == 0 {
				t.Errorf("%s re-predicted without ever merging an estimate snapshot", id)
			}
		}
	}

	// Phase 4 — shutdown: everything quiesces, nothing leaks.
	f.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if g := gorun.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, gorun.NumGoroutine(), buf[:gorun.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
