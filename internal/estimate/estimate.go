// Package estimate closes the prediction loop: it learns the failure-law
// parameters the engine predicts with from the request outcomes the
// serving layer observes.
//
// The paper's model is white-box — Pfail is computed from per-provider
// constants (the λ of eq. (1), β of eq. (2), ϕ of eq. (14)) that an
// author wrote down. This package treats those constants as estimands
// instead: an Estimator ingests an outcome stream (success/failure,
// exposure under the failure law, latency, timestamp), buckets it per
// provider, per service context, and per load bucket, and fits each
// bucket's exponential failure rate by windowed MLE with confidence
// intervals (mle.go). A per-bucket drift detector (monitor.Drift, an
// exposure-weighted two-sided SPRT) tests the fitted stream against the
// rate currently bound in the model, and a Reactor (reactor.go) turns a
// confirmed drift into a re-prediction: rebind the parameter, recompute
// Pfail through the Supervisor, publish old and new predictions.
//
// Estimator state checkpoints into Snapshots that merge via an
// evidence-weighted join-semilattice (snapshot.go) — the same
// most-evidence-wins-plus-sticky-verdict construction as
// monitor.Snapshot.Merge — so estimates ride the cluster's anti-entropy
// gossip and every replica converges to the same learned parameters no
// matter how rumors are duplicated or reordered.
//
// All time behavior goes through runtime.Clock, so every test runs
// deterministically on a FakeClock.
package estimate

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"socrel/internal/monitor"
	"socrel/internal/runtime"
)

// Errors returned by this package.
var (
	// ErrBadConfig is returned for invalid estimator configuration.
	ErrBadConfig = errors.New("estimate: invalid configuration")
	// ErrBadKey is returned by ParseKey for malformed key strings.
	ErrBadKey = errors.New("estimate: invalid key")
	// ErrBadSnapshot is returned for inconsistent snapshots.
	ErrBadSnapshot = errors.New("estimate: invalid snapshot")
	// ErrBadBound is returned by SetBound for unusable rate values.
	ErrBadBound = errors.New("estimate: invalid bound rate")
)

// Key identifies one estimation bucket: a provider, the service context
// it was invoked under (e.g. the composite service or scope name), and a
// load bucket (e.g. a saturation level) — CARP-style context bucketing so
// a provider that degrades only under load or only for one workload is
// estimated apart from its healthy contexts.
type Key struct {
	Provider string
	Context  string
	Load     int
}

// String renders the key in the canonical "provider|context|load" form
// used as checkpoint map keys. Provider and context must not contain '|'.
func (k Key) String() string {
	return k.Provider + "|" + k.Context + "|" + strconv.Itoa(k.Load)
}

// ParseKey inverts Key.String.
func ParseKey(s string) (Key, error) {
	i := strings.Index(s, "|")
	j := strings.LastIndex(s, "|")
	if i < 0 || j <= i {
		return Key{}, fmt.Errorf("%w: %q", ErrBadKey, s)
	}
	load, err := strconv.Atoi(s[j+1:])
	if err != nil {
		return Key{}, fmt.Errorf("%w: %q: bad load bucket", ErrBadKey, s)
	}
	k := Key{Provider: s[:i], Context: s[i+1 : j], Load: load}
	if k.Provider == "" {
		return Key{}, fmt.Errorf("%w: %q: empty provider", ErrBadKey, s)
	}
	return k, nil
}

// Outcome is one observed invocation outcome.
type Outcome struct {
	// Provider, Context, and Load identify the estimation bucket.
	Provider string
	Context  string
	Load     int
	// Failed reports whether the invocation failed.
	Failed bool
	// Exposure is the exposure accumulated under the failure law (the
	// N/s of eq. (1) or B/b of eq. (2)); non-positive defaults to 1
	// (one nominal invocation).
	Exposure float64
	// Latency is the observed invocation latency.
	Latency time.Duration
	// At is the observation timestamp; zero defaults to the estimator's
	// clock.
	At time.Time
}

// DriftEvent describes a bucket whose drift detector just tripped.
type DriftEvent struct {
	// Key is the estimation bucket.
	Key Key
	// Direction is +1 for drift up (rate rose), -1 for drift down.
	Direction int
	// Bound is the rate the bucket was tested against and Rate the
	// current windowed MLE at the moment of the trip.
	Bound float64
	Rate  float64
	// Observations is the windowed evidence behind Rate.
	Observations int
	// At is the estimator clock at the trip.
	At time.Time
	// FromMerge reports whether the verdict arrived via gossip merge
	// rather than local observation.
	FromMerge bool
}

// Config parameterizes an Estimator.
type Config struct {
	// Window is the per-bucket sliding-window capacity in observations
	// (default 256).
	Window int
	// MaxAge additionally expires window entries older than this at
	// estimation time (0 = no age limit). With an age limit, a bucket
	// that stops receiving traffic decays to a censored sample whose
	// interval widens instead of freezing at stale point estimates.
	MaxAge time.Duration
	// Confidence is the confidence level for rate intervals, in (0,1)
	// (default 0.95).
	Confidence float64
	// DriftRatio, DriftAlpha, and DriftBeta parameterize each bucket's
	// drift detector (see monitor.DriftConfig; defaults 2, 0.01, 0.01).
	DriftRatio float64
	DriftAlpha float64
	DriftBeta  float64
	// Clock supplies time (default runtime.RealClock).
	Clock runtime.Clock
	// OnDrift, when set, is called whenever a bucket's drift verdict
	// becomes Violating — from a local observation or a gossip merge.
	// It runs with the estimator's lock held and must not call back.
	OnDrift func(DriftEvent)
}

func (c Config) withDefaults() (Config, error) {
	if c.Window == 0 {
		c.Window = 256
	}
	if c.Window < 1 {
		return c, fmt.Errorf("%w: window %d", ErrBadConfig, c.Window)
	}
	if c.MaxAge < 0 {
		return c, fmt.Errorf("%w: max age %v", ErrBadConfig, c.MaxAge)
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	if c.Confidence <= 0 || c.Confidence >= 1 {
		return c, fmt.Errorf("%w: confidence %g", ErrBadConfig, c.Confidence)
	}
	if c.DriftRatio == 0 {
		c.DriftRatio = 2
	}
	if c.DriftAlpha == 0 {
		c.DriftAlpha = 0.01
	}
	if c.DriftBeta == 0 {
		c.DriftBeta = 0.01
	}
	// Validate the drift parameters once against a placeholder bound.
	if _, err := (monitor.DriftConfig{Bound: 1, Ratio: c.DriftRatio, Alpha: c.DriftAlpha, Beta: c.DriftBeta}).Validate(); err != nil {
		return c, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if c.Clock == nil {
		c.Clock = runtime.RealClock{}
	}
	return c, nil
}

// obs is one ring-buffered observation.
type obs struct {
	at       time.Time
	exposure float64
	failed   bool
	latency  time.Duration
}

// entry is one estimation bucket.
type entry struct {
	total    int
	failures int
	exposure float64

	ring    []obs
	ringPos int
	ringLen int

	bound float64
	drift *monitor.Drift
	// merged holds a verdict adopted from gossip when the local detector
	// cannot carry it (bound-less bucket); the effective verdict is the
	// join of both.
	mergedDecided monitor.Verdict
	mergedDir     int
}

// Stats are monotonic estimator counters.
type Stats struct {
	// Observed counts ingested outcomes; Keys is the live bucket count.
	Observed uint64
	Keys     int
	// DriftViolations counts drift-verdict trips (local or merged).
	DriftViolations uint64
	// Merged counts snapshots folded in via MergeCheckpoint; BadMerges
	// counts snapshots rejected as invalid.
	Merged    uint64
	BadMerges uint64
}

// Estimator fits per-bucket failure rates from an outcome stream.
// All methods are safe for concurrent use.
type Estimator struct {
	cfg   Config
	clock runtime.Clock

	// gen counts state changes (observations and merges); the cluster
	// layer folds it into gossip version vectors so new estimation
	// evidence invalidates rumor-skip.
	gen atomic.Uint64

	mu      sync.Mutex
	entries map[Key]*entry
	stats   Stats
}

// New returns an Estimator for the given configuration.
func New(cfg Config) (*Estimator, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return &Estimator{
		cfg:     cfg,
		clock:   cfg.Clock,
		entries: make(map[Key]*entry),
	}, nil
}

// Gen returns a monotonic counter bumped by every state change.
func (e *Estimator) Gen() uint64 { return e.gen.Load() }

// Config returns the estimator's (defaulted) configuration.
func (e *Estimator) Config() Config { return e.cfg }

func (e *Estimator) entryLocked(k Key) *entry {
	en := e.entries[k]
	if en == nil {
		en = &entry{ring: make([]obs, e.cfg.Window)}
		e.entries[k] = en
	}
	return en
}

// effectiveVerdict joins the detector's verdict with any merged one.
func (en *entry) effectiveVerdict() (monitor.Verdict, int) {
	d, dir := en.mergedDecided, en.mergedDir
	if en.drift != nil {
		dv, ddir := en.drift.Verdict(), en.drift.Direction()
		if dv > d || (dv == d && ddir > dir) {
			d, dir = dv, ddir
		}
	}
	return d, dir
}

// Observe ingests one outcome and returns the bucket's drift verdict
// after the update (zero Verdict when the bucket has no bound to drift
// from).
func (e *Estimator) Observe(o Outcome) monitor.Verdict {
	if o.Exposure <= 0 || math.IsNaN(o.Exposure) || math.IsInf(o.Exposure, 0) {
		o.Exposure = 1
	}
	if o.At.IsZero() {
		o.At = e.clock.Now()
	}
	k := Key{Provider: o.Provider, Context: o.Context, Load: o.Load}

	e.mu.Lock()
	defer e.mu.Unlock()
	en := e.entryLocked(k)

	en.total++
	if o.Failed {
		en.failures++
	}
	en.exposure += o.Exposure
	if en.ringLen == len(en.ring) {
		// Evict the oldest.
	} else {
		en.ringLen++
	}
	en.ring[en.ringPos] = obs{at: o.At, exposure: o.Exposure, failed: o.Failed, latency: o.Latency}
	en.ringPos = (en.ringPos + 1) % len(en.ring)

	e.stats.Observed++
	e.gen.Add(1)

	if en.drift != nil {
		before, _ := en.effectiveVerdict()
		en.drift.Record(o.Exposure, o.Failed)
		if en.drift.Verdict() == monitor.Meeting {
			// The bound is confirmed at the current evidence. Park the
			// confirmation in the merged-verdict slot and re-arm the live
			// detector: a sticky Meeting would blind the bucket to drift
			// that starts after a long healthy stretch.
			en.mergedDecided, en.mergedDir = joinVerdict(en.mergedDecided, en.mergedDir, monitor.Meeting, 0)
			en.drift.Reset()
		}
		after, dir := en.effectiveVerdict()
		if after == monitor.Violating && before != monitor.Violating {
			e.tripLocked(k, en, dir, false)
		}
	}
	v, _ := en.effectiveVerdict()
	return v
}

// tripLocked records a drift trip and fires OnDrift. Callers hold e.mu.
func (e *Estimator) tripLocked(k Key, en *entry, dir int, fromMerge bool) {
	e.stats.DriftViolations++
	if e.cfg.OnDrift == nil {
		return
	}
	est, _ := e.estimateLocked(en)
	e.cfg.OnDrift(DriftEvent{
		Key:          k,
		Direction:    dir,
		Bound:        en.bound,
		Rate:         est.Rate,
		Observations: est.Observations,
		At:           e.clock.Now(),
		FromMerge:    fromMerge,
	})
}

// SetBound binds the rate the bucket's drift detector tests against —
// the value currently live in the model — and (re-)arms the detector,
// discarding prior drift evidence. A zero rate clears the bound and
// disables drift detection for the bucket.
func (e *Estimator) SetBound(k Key, rate float64) error {
	if rate < 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return fmt.Errorf("%w: %g", ErrBadBound, rate)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	en := e.entryLocked(k)
	en.bound = rate
	en.mergedDecided, en.mergedDir = 0, 0
	if rate == 0 {
		en.drift = nil
	} else {
		d, err := monitor.NewDrift(monitor.DriftConfig{
			Bound: rate,
			Ratio: e.cfg.DriftRatio,
			Alpha: e.cfg.DriftAlpha,
			Beta:  e.cfg.DriftBeta,
		})
		if err != nil {
			return err
		}
		en.drift = d
	}
	e.gen.Add(1)
	return nil
}

// Bound returns the bucket's currently bound rate (0 when unbound).
func (e *Estimator) Bound(k Key) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	if en := e.entries[k]; en != nil {
		return en.bound
	}
	return 0
}

// Verdict returns the bucket's drift verdict: the join of the local
// detector's verdict and any verdict adopted from gossip. The zero
// Verdict means the bucket is unknown or has no bound.
func (e *Estimator) Verdict(k Key) (monitor.Verdict, int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if en := e.entries[k]; en != nil {
		return en.effectiveVerdict()
	}
	return 0, 0
}

// estimateLocked fits the bucket's windowed rate. Callers hold e.mu.
func (e *Estimator) estimateLocked(en *entry) (Estimate, bool) {
	var cutoff time.Time
	if e.cfg.MaxAge > 0 {
		cutoff = e.clock.Now().Add(-e.cfg.MaxAge)
	}
	start := 0
	if en.ringLen == len(en.ring) {
		start = en.ringPos
	}
	var (
		failExp  []float64
		succExp  float64
		count    int
		exposure float64
		latency  time.Duration
	)
	for i := 0; i < en.ringLen; i++ {
		o := en.ring[(start+i)%len(en.ring)]
		if !cutoff.IsZero() && o.at.Before(cutoff) {
			continue
		}
		count++
		exposure += o.exposure
		latency += o.latency
		if o.failed {
			failExp = append(failExp, o.exposure)
		} else {
			succExp += o.exposure
		}
	}
	rate, lo, hi, ok := fitRate(failExp, succExp, e.cfg.Confidence)
	if !ok {
		return Estimate{Failures: len(failExp), Observations: count, Exposure: exposure}, false
	}
	est := Estimate{
		Rate:         rate,
		Lo:           lo,
		Hi:           hi,
		Failures:     len(failExp),
		Observations: count,
		Exposure:     exposure,
	}
	if count > 0 {
		est.MeanLatency = latency.Seconds() / float64(count)
	}
	return est, true
}

// Estimate fits the bucket's windowed failure rate, reporting ok=false
// when the bucket is unknown or carries no usable exposure.
func (e *Estimator) Estimate(k Key) (Estimate, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	en := e.entries[k]
	if en == nil {
		return Estimate{}, false
	}
	return e.estimateLocked(en)
}

// BucketEstimate is one bucket's full estimation state, as exposed by
// /estimates.
type BucketEstimate struct {
	Key      Key
	Estimate Estimate
	// OK reports whether Estimate carries a usable fit.
	OK bool
	// Bound is the bucket's bound rate (0 when unbound); Drift its
	// effective verdict (zero when unbound) and Direction the drift
	// sign.
	Bound     float64
	Drift     monitor.Verdict
	Direction int
}

// All returns every bucket's estimation state, sorted by key.
func (e *Estimator) All() []BucketEstimate {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]BucketEstimate, 0, len(e.entries))
	for k, en := range e.entries {
		est, ok := e.estimateLocked(en)
		v, dir := en.effectiveVerdict()
		out = append(out, BucketEstimate{Key: k, Estimate: est, OK: ok, Bound: en.bound, Drift: v, Direction: dir})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.String() < out[j].Key.String() })
	return out
}

// Stats returns a copy of the estimator's counters.
func (e *Estimator) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.Keys = len(e.entries)
	return s
}
