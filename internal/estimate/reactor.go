package estimate

// The Reactor is the acting half of the estimation loop. The Estimator
// only learns; the Reactor decides when learned reality has diverged from
// the bound model far enough to act, and then acts: it rebinds the
// drifted parameter and recomputes Pfail through a Repredictor (the
// runtime Supervisor), publishing the old and new predictions together
// with the triggering estimate. Where no re-prediction path exists it
// can instead trip the provider's breaker through a DriftTripper
// (runtime.HealthTracker), so sustained drift quarantines a provider the
// same way hard failures do.
//
// The trigger is deliberately conjunctive — all of:
//
//  1. the bucket's drift SPRT is Violating (sequential evidence with
//     bounded error rates),
//  2. the windowed MLE moved past RelThreshold relative to the bound
//     (the move is worth acting on),
//  3. the bound lies outside the estimate's confidence interval (the
//     move is resolvable at the current evidence), and
//  4. the window holds at least MinObservations outcomes,
//
// so a single unlucky burst neither rebinds the model nor flaps it back.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"socrel/internal/monitor"
)

// Repredictor applies a re-estimated failure-law parameter to the live
// model and recomputes the prediction. *runtime.Supervisor implements it.
type Repredictor interface {
	Repredict(ctx context.Context, provider, attr string, rate float64) (oldPfail, newPfail float64, err error)
}

// DriftTripper quarantines a provider on confirmed drift.
// *runtime.HealthTracker implements it.
type DriftTripper interface {
	TripDrift(provider string, reason error) bool
}

// RepredictEvent describes one completed re-prediction.
type RepredictEvent struct {
	// Key is the estimation bucket and Attr the rebound model attribute
	// (e.g. "lambda", "beta").
	Key  Key
	Attr string
	// OldRate/NewRate are the parameter before and after; OldPfail and
	// NewPfail the prediction before and after.
	OldRate, NewRate   float64
	OldPfail, NewPfail float64
	// Estimate is the windowed estimate that triggered the move.
	Estimate Estimate
	// At is the reactor clock at the re-prediction.
	At time.Time
}

// ReactorConfig parameterizes a Reactor.
type ReactorConfig struct {
	// Estimator supplies estimates and drift verdicts (required).
	Estimator *Estimator
	// Repredictor, when set, receives confirmed drifts as re-prediction
	// requests.
	Repredictor Repredictor
	// Tripper, when set and no Repredictor is configured, receives
	// confirmed drifts as breaker trips.
	Tripper DriftTripper
	// RelThreshold is the minimum relative parameter move to act on
	// (default 0.25).
	RelThreshold float64
	// MinObservations is the minimum windowed evidence to act on
	// (default 20).
	MinObservations int
	// OnRepredict, when set, is called after every completed
	// re-prediction, outside the reactor's lock for the estimator but
	// while the reactor's own lock is held — it must not call back into
	// the reactor.
	OnRepredict func(RepredictEvent)
}

// ReactorStats are monotonic reactor counters.
type ReactorStats struct {
	// Steps counts Step passes; Considered counts binding evaluations.
	Steps      uint64
	Considered uint64
	// Triggered counts trigger-gate passes, Repredicted completed
	// re-predictions, RepredictErrors failed attempts (retried on the
	// next Step), and Tripped breaker trips via the Tripper path.
	Triggered       uint64
	Repredicted     uint64
	RepredictErrors uint64
	Tripped         uint64
}

// binding is one parameter under reactor management.
type binding struct {
	attr string
	rate float64
}

// Reactor watches bound parameters and re-predicts on confirmed drift.
// All methods are safe for concurrent use.
type Reactor struct {
	cfg ReactorConfig

	mu       sync.Mutex
	bindings map[Key]*binding
	lastErr  error
	stats    ReactorStats
}

// NewReactor returns a Reactor for the given configuration.
func NewReactor(cfg ReactorConfig) (*Reactor, error) {
	if cfg.Estimator == nil {
		return nil, fmt.Errorf("%w: reactor needs an estimator", ErrBadConfig)
	}
	if cfg.RelThreshold == 0 {
		cfg.RelThreshold = 0.25
	}
	if cfg.RelThreshold < 0 || math.IsNaN(cfg.RelThreshold) || math.IsInf(cfg.RelThreshold, 0) {
		return nil, fmt.Errorf("%w: relative threshold %g", ErrBadConfig, cfg.RelThreshold)
	}
	if cfg.MinObservations == 0 {
		cfg.MinObservations = 20
	}
	if cfg.MinObservations < 1 {
		return nil, fmt.Errorf("%w: min observations %d", ErrBadConfig, cfg.MinObservations)
	}
	return &Reactor{cfg: cfg, bindings: make(map[Key]*binding)}, nil
}

// Bind registers a model parameter under reactor management: the bucket's
// outcomes are tested against rate (the value live in the model for
// attr), and confirmed drift re-predicts through the Repredictor using
// the bucket's Provider and attr.
func (r *Reactor) Bind(k Key, attr string, rate float64) error {
	if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
		return fmt.Errorf("%w: %g", ErrBadBound, rate)
	}
	if err := r.cfg.Estimator.SetBound(k, rate); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bindings[k] = &binding{attr: attr, rate: rate}
	return nil
}

// Observe forwards one outcome to the estimator and, when it trips the
// bucket's drift verdict, immediately runs a Step.
func (r *Reactor) Observe(ctx context.Context, o Outcome) ([]RepredictEvent, error) {
	if v := r.cfg.Estimator.Observe(o); v != monitor.Violating {
		return nil, nil
	}
	return r.Step(ctx)
}

// Step evaluates every managed binding once, in deterministic key order,
// re-predicting (or tripping) those whose drift is confirmed. It returns
// the completed re-predictions; a failed re-prediction attempt records an
// error (returned after the full pass) and is retried on the next Step.
func (r *Reactor) Step(ctx context.Context) ([]RepredictEvent, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Steps++

	keys := make([]Key, 0, len(r.bindings))
	for k := range r.bindings {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })

	var (
		events   []RepredictEvent
		firstErr error
	)
	for _, k := range keys {
		b := r.bindings[k]
		r.stats.Considered++
		est, ok := r.cfg.Estimator.Estimate(k)
		if !ok || est.Observations < r.cfg.MinObservations {
			continue
		}
		if v, _ := r.cfg.Estimator.Verdict(k); v != monitor.Violating {
			continue
		}
		// Conservative target: with zero windowed failures the MLE is 0,
		// which is not a usable rate — rebind to the interval's upper
		// bound instead (the largest rate the censored window supports).
		target := est.Rate
		if target <= 0 {
			target = est.Hi
		}
		if target <= 0 {
			continue
		}
		if math.Abs(target-b.rate)/b.rate < r.cfg.RelThreshold {
			continue
		}
		if b.rate >= est.Lo && b.rate <= est.Hi {
			continue
		}
		r.stats.Triggered++

		if r.cfg.Repredictor == nil {
			if r.cfg.Tripper != nil {
				r.cfg.Tripper.TripDrift(k.Provider, fmt.Errorf(
					"estimate: %s drifted from %g to %g (CI [%g, %g], %d obs)",
					b.attr, b.rate, target, est.Lo, est.Hi, est.Observations))
				r.stats.Tripped++
				// Re-arm against the unchanged bound so one confirmed
				// drift trips once, not once per Step.
				if err := r.cfg.Estimator.SetBound(k, b.rate); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			continue
		}

		oldPfail, newPfail, err := r.cfg.Repredictor.Repredict(ctx, k.Provider, b.attr, target)
		if err != nil {
			r.stats.RepredictErrors++
			r.lastErr = err
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		ev := RepredictEvent{
			Key:      k,
			Attr:     b.attr,
			OldRate:  b.rate,
			NewRate:  target,
			OldPfail: oldPfail,
			NewPfail: newPfail,
			Estimate: est,
			At:       r.cfg.Estimator.Config().Clock.Now(),
		}
		b.rate = target
		if err := r.cfg.Estimator.SetBound(k, target); err != nil && firstErr == nil {
			firstErr = err
		}
		r.stats.Repredicted++
		events = append(events, ev)
		if r.cfg.OnRepredict != nil {
			r.cfg.OnRepredict(ev)
		}
	}
	return events, firstErr
}

// Rate returns the rate the reactor currently has bound for the bucket
// (0 when unmanaged).
func (r *Reactor) Rate(k Key) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if b := r.bindings[k]; b != nil {
		return b.rate
	}
	return 0
}

// LastErr returns the most recent re-prediction error (nil when none).
func (r *Reactor) LastErr() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastErr
}

// Stats returns a copy of the reactor's counters.
func (r *Reactor) Stats() ReactorStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}
