package estimate

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"socrel/internal/monitor"
	"socrel/internal/runtime"
)

// randomSnapshot produces a valid snapshot by running a real estimator
// over a random stream — validity by construction, realism for free.
func randomSnapshot(t *testing.T, rng *rand.Rand) Snapshot {
	t.Helper()
	clk := runtime.NewFakeClock(t0.Add(time.Duration(rng.Intn(1000)) * time.Second))
	e, err := New(Config{Window: 8 + rng.Intn(16), Clock: clk})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	k := Key{Provider: "p", Context: "c", Load: 0}
	if rng.Intn(3) > 0 {
		if err := e.SetBound(k, 0.01+rng.Float64()); err != nil {
			t.Fatalf("SetBound: %v", err)
		}
	}
	n := rng.Intn(40)
	for i := 0; i < n; i++ {
		clk.Advance(time.Duration(1+rng.Intn(900)) * time.Millisecond)
		e.Observe(Outcome{
			Provider: k.Provider,
			Context:  k.Context,
			Failed:   rng.Float64() < 0.3,
			Exposure: 0.1 + rng.Float64(),
			Latency:  time.Duration(rng.Intn(50)) * time.Millisecond,
		})
	}
	cp := e.Checkpoint()
	s, ok := cp[k.String()]
	if !ok {
		// No bound and no observations: synthesize the empty bucket.
		return Snapshot{}
	}
	return s
}

func mustMerge(t *testing.T, a, b Snapshot) Snapshot {
	t.Helper()
	m, err := a.Merge(b)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	return m
}

func TestMergeSemilatticeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		a := randomSnapshot(t, rng)
		b := randomSnapshot(t, rng)
		c := randomSnapshot(t, rng)

		// Idempotent.
		if got := mustMerge(t, a, a); !reflect.DeepEqual(got, normalizeWin(a)) {
			t.Fatalf("trial %d: merge(a,a) != a\n got %+v\nwant %+v", trial, got, a)
		}
		// Commutative.
		ab, ba := mustMerge(t, a, b), mustMerge(t, b, a)
		if !reflect.DeepEqual(ab, ba) {
			t.Fatalf("trial %d: merge not commutative\n ab %+v\n ba %+v", trial, ab, ba)
		}
		// Associative.
		left := mustMerge(t, mustMerge(t, a, b), c)
		right := mustMerge(t, a, mustMerge(t, b, c))
		if !reflect.DeepEqual(left, right) {
			t.Fatalf("trial %d: merge not associative\n l %+v\n r %+v", trial, left, right)
		}
	}
}

// normalizeWin matches Merge's non-nil empty window convention.
func normalizeWin(s Snapshot) Snapshot {
	s.Window = append([]ObsSnapshot(nil), s.Window...)
	return s
}

func TestMergeStickyViolating(t *testing.T) {
	// The side with less evidence is Violating: the winner's statistics
	// must combine with the loser's verdict.
	big := Snapshot{Total: 100, Failures: 5, Exposure: 100, Bound: 0.05,
		DriftRatio: 2, DriftAlpha: 0.01, DriftBeta: 0.01, Decided: monitor.Undecided}
	small := Snapshot{Total: 10, Failures: 8, Exposure: 10, Bound: 0.05,
		DriftRatio: 2, DriftAlpha: 0.01, DriftBeta: 0.01, LLRUp: 7,
		Decided: monitor.Violating, Direction: +1}
	m := mustMerge(t, big, small)
	if m.Total != 100 || m.Decided != monitor.Violating || m.Direction != +1 {
		t.Fatalf("merge lost evidence or verdict: %+v", m)
	}
	// And in the other argument order.
	m2 := mustMerge(t, small, big)
	if !reflect.DeepEqual(m, m2) {
		t.Fatalf("order dependence: %+v vs %+v", m, m2)
	}
}

func TestMergeRejectsInvalid(t *testing.T) {
	good := Snapshot{Total: 1, Failures: 0, Exposure: 1}
	for _, bad := range []Snapshot{
		{Total: -1},
		{Total: 1, Failures: 2},
		{Total: 1, Exposure: math.NaN()},
		{Total: 0, Window: []ObsSnapshot{{Exposure: 1}}},
		{Total: 2, Failures: 0, Window: []ObsSnapshot{{Exposure: 1, Failed: true}}},
		{Total: 1, Bound: -0.5},
		{Total: 1, Bound: 0.5}, // bound with no verdict
		{Total: 1, Decided: monitor.Violating},
		{Total: 1, Decided: monitor.Meeting, Direction: 1},
		{Total: 1, LLRUp: math.Inf(1)},
	} {
		if _, err := good.Merge(bad); err == nil {
			t.Errorf("Merge accepted invalid snapshot %+v", bad)
		}
		if _, err := bad.Merge(good); err == nil {
			t.Errorf("Merge from invalid receiver %+v succeeded", bad)
		}
	}
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	e, clk := newTestEstimator(t, Config{Window: 32})
	k := Key{Provider: "p", Context: "c", Load: 1}
	if err := e.SetBound(k, 0.1); err != nil {
		t.Fatalf("SetBound: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100; i++ {
		clk.Advance(50 * time.Millisecond)
		e.Observe(Outcome{Provider: k.Provider, Context: k.Context, Load: k.Load,
			Failed: rng.Float64() < 0.1, Exposure: 1, Latency: time.Millisecond})
	}
	cp := e.Checkpoint()

	r, _ := newTestEstimator(t, Config{Window: 32})
	if err := r.RestoreCheckpoint(cp); err != nil {
		t.Fatalf("RestoreCheckpoint: %v", err)
	}
	if !reflect.DeepEqual(e.All(), r.All()) {
		t.Fatalf("restored state diverges:\n%+v\n%+v", e.All(), r.All())
	}
	if !reflect.DeepEqual(r.Checkpoint(), cp) {
		t.Fatal("re-checkpoint does not round-trip")
	}
	if r.Bound(k) != 0.1 {
		t.Fatalf("restored bound %g", r.Bound(k))
	}

	// Restore into a smaller window truncates to the newest entries.
	small, _ := newTestEstimator(t, Config{Window: 8})
	if err := small.RestoreCheckpoint(cp); err != nil {
		t.Fatalf("RestoreCheckpoint small: %v", err)
	}
	scp := small.Checkpoint()[k.String()]
	full := cp[k.String()]
	if len(scp.Window) != 8 {
		t.Fatalf("truncated window has %d entries", len(scp.Window))
	}
	if !reflect.DeepEqual(scp.Window, full.Window[len(full.Window)-8:]) {
		t.Fatal("truncation did not keep the newest entries")
	}

	if err := r.RestoreCheckpoint(map[string]Snapshot{"bogus": {}}); err == nil {
		t.Fatal("RestoreCheckpoint accepted malformed key")
	}
}

func TestMergeCheckpointConverges(t *testing.T) {
	mk := func(seed int64) *Estimator {
		e, clk := newTestEstimator(t, Config{Window: 64})
		rng := rand.New(rand.NewSource(seed))
		if err := e.SetBound(Key{Provider: "p", Context: "c", Load: 0}, 0.05); err != nil {
			t.Fatalf("SetBound: %v", err)
		}
		for i := 0; i < 50+rng.Intn(50); i++ {
			clk.Advance(time.Duration(10+rng.Intn(100)) * time.Millisecond)
			e.Observe(Outcome{Provider: "p", Context: "c",
				Failed: rng.Float64() < 0.05, Exposure: 0.5 + rng.Float64()})
		}
		return e
	}
	a, b := mk(1), mk(2)

	// Exchange checkpoints both ways (including a redundant re-delivery);
	// both sides must converge to identical state.
	cpA, cpB := a.Checkpoint(), b.Checkpoint()
	if err := a.MergeCheckpoint(cpB); err != nil {
		t.Fatalf("a.Merge: %v", err)
	}
	if err := b.MergeCheckpoint(cpA); err != nil {
		t.Fatalf("b.Merge: %v", err)
	}
	if err := b.MergeCheckpoint(cpA); err != nil {
		t.Fatalf("b re-merge: %v", err)
	}
	if !reflect.DeepEqual(a.Checkpoint(), b.Checkpoint()) {
		t.Fatal("replicas did not converge after checkpoint exchange")
	}
	if s := a.Stats(); s.Merged == 0 {
		t.Fatal("merge counter did not advance")
	}
}

func TestMergeCheckpointAdoptsAndTrips(t *testing.T) {
	// Replica A observes enough failures to trip drift; replica B has
	// never heard of the bucket and must adopt it, firing OnDrift with
	// FromMerge set.
	a, _ := newTestEstimator(t, Config{})
	k := Key{Provider: "hot", Context: "c", Load: 0}
	if err := a.SetBound(k, 0.05); err != nil {
		t.Fatalf("SetBound: %v", err)
	}
	for i := 0; i < 300; i++ {
		if a.Observe(Outcome{Provider: k.Provider, Context: k.Context, Failed: true}) == monitor.Violating {
			break
		}
	}
	if v, _ := a.Verdict(k); v != monitor.Violating {
		t.Fatal("replica A never tripped")
	}

	var events []DriftEvent
	clk := runtime.NewFakeClock(t0)
	b, err := New(Config{Clock: clk, OnDrift: func(ev DriftEvent) { events = append(events, ev) }})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := b.MergeCheckpoint(a.Checkpoint()); err != nil {
		t.Fatalf("MergeCheckpoint: %v", err)
	}
	if v, dir := b.Verdict(k); v != monitor.Violating || dir != +1 {
		t.Fatalf("adopted verdict %v/%d", v, dir)
	}
	if len(events) != 1 || !events[0].FromMerge || events[0].Key != k {
		t.Fatalf("drift events: %+v", events)
	}
	// Re-delivery must not re-fire.
	if err := b.MergeCheckpoint(a.Checkpoint()); err != nil {
		t.Fatalf("re-merge: %v", err)
	}
	if len(events) != 1 {
		t.Fatalf("redelivered rumor re-fired OnDrift: %d events", len(events))
	}
}

func TestMergeCheckpointSkipsBadEntries(t *testing.T) {
	e, _ := newTestEstimator(t, Config{})
	cp := map[string]Snapshot{
		"ok|c|0":      {Total: 3, Failures: 1, Exposure: 3, Window: []ObsSnapshot{{At: t0, Exposure: 1, Failed: true}}},
		"bad|c|0":     {Total: 1, Failures: 2},
		"unparseable": {},
	}
	if err := e.MergeCheckpoint(cp); err == nil {
		t.Fatal("MergeCheckpoint swallowed invalid entries")
	}
	if _, ok := e.Estimate(Key{Provider: "ok", Context: "c", Load: 0}); !ok {
		t.Fatal("valid entry was not merged past the bad ones")
	}
	s := e.Stats()
	if s.BadMerges != 2 || s.Merged != 1 {
		t.Fatalf("stats: %+v", s)
	}
}
