package estimate

// Maximum-likelihood estimation for the paper's exponential failure laws.
//
// Eqs. (1)-(2) model a provider invocation as surviving an exposure t
// (CPU work N/s, network transfer B/b) under a constant failure rate r:
// Pfail(t) = 1 - exp(-r t). An outcome stream is therefore a grouped
// exponential sample — each observation reports only whether the
// invocation outlived its exposure — with log likelihood
//
//	L(r) = sum_fail log(1 - exp(-r t_i)) - r * sum_succ t_i
//
// The score U(r) = sum_fail t_i/(exp(r t_i) - 1) - sum_succ t_i is
// strictly decreasing, so the MLE is the unique root, found here by
// bisection (deterministic, immune to the flat-likelihood pathologies a
// Newton step can hit). In the rare-failure limit (r t << 1) the root
// collapses to the classic failures-per-exposure estimator d/T; at
// higher rates the naive d/T is biased low (a failure did not survive
// its whole exposure) and the root corrects it — for constant exposure t
// it equals the exact inversion -log(1 - d/n)/t.
//
// Confidence intervals come from the log-scale normal approximation with
// the observed Fisher information I(r) = sum_fail t_i^2 *
// exp(r t_i)/(exp(r t_i)-1)^2: se(log r^) = 1/(r^ sqrt(I)), which
// reduces to the familiar 1/sqrt(d) for rare failures and stays
// positive. With zero failures the MLE is degenerate at 0; the one-sided
// exact bound P(no failures | r, T) = exp(-r T) = 1 - confidence gives
// hi = -log(1-confidence)/T — the "rule of three" (3/T at 95%) — so a
// censored, low-traffic provider reports an interval that only widens
// with silence instead of an oscillating point estimate.

import "math"

// Estimate is a fitted failure rate with its confidence interval and the
// evidence behind it.
type Estimate struct {
	// Rate is the MLE failure rate (failures per unit exposure). Zero
	// when no failures were observed.
	Rate float64
	// Lo and Hi bound the rate at the estimator's confidence level.
	Lo, Hi float64
	// Failures and Observations count the windowed evidence; Exposure is
	// its total exposure.
	Failures     int
	Observations int
	Exposure     float64
	// MeanLatency is the mean observed latency over the window, in
	// seconds (0 with no data).
	MeanLatency float64
}

// PfailAt maps the rate interval through the failure law at the given
// exposure: returns the point estimate and bounds of
// 1 - exp(-rate * exposure).
func (e Estimate) PfailAt(exposure float64) (pfail, lo, hi float64) {
	f := func(r float64) float64 { return -math.Expm1(-r * exposure) }
	return f(e.Rate), f(e.Lo), f(e.Hi)
}

// score is the log-likelihood derivative U(r) for failure exposures
// failExp and total success exposure succExp.
func score(r float64, failExp []float64, succExp float64) float64 {
	u := -succExp
	for _, t := range failExp {
		u += t / math.Expm1(r*t)
	}
	return u
}

// fitRate computes the MLE and confidence interval from the window's
// failure exposures and total success exposure. Returns ok=false when
// there is no usable exposure.
func fitRate(failExp []float64, succExp float64, confidence float64) (rate, lo, hi float64, ok bool) {
	total := succExp
	for _, t := range failExp {
		total += t
	}
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return 0, 0, 0, false
	}
	d := len(failExp)
	if d == 0 {
		// Censored sample: exact one-sided upper bound.
		return 0, 0, -math.Log(1-confidence) / succExp, true
	}
	if succExp <= 0 {
		// Every observation failed: the likelihood has no interior
		// maximum. Continuity correction: credit half a mean exposure
		// of survival, the grouped analogue of (d - 1/2) successes.
		succExp = total / float64(2*d)
	}

	// U is strictly decreasing with U(0+) = +inf and U(inf) = -succExp:
	// bracket the root from the rare-failure guess d/T, then bisect.
	rate = float64(d) / total
	lo0, hi0 := rate, rate
	for score(lo0, failExp, succExp) < 0 {
		lo0 /= 2
	}
	for score(hi0, failExp, succExp) > 0 {
		hi0 *= 2
	}
	for i := 0; i < 100 && hi0-lo0 > 1e-14*hi0; i++ {
		mid := (lo0 + hi0) / 2
		if score(mid, failExp, succExp) > 0 {
			lo0 = mid
		} else {
			hi0 = mid
		}
	}
	rate = (lo0 + hi0) / 2

	// Observed Fisher information at the MLE.
	info := 0.0
	for _, t := range failExp {
		em := math.Expm1(rate * t)
		info += t * t * (em + 1) / (em * em)
	}
	seLog := 1 / (rate * math.Sqrt(info))
	z := zQuantile(confidence)
	return rate, rate * math.Exp(-z*seLog), rate * math.Exp(z*seLog), true
}

// zQuantile returns the two-sided normal quantile for the given
// confidence level, i.e. z with P(|N(0,1)| <= z) = confidence.
func zQuantile(confidence float64) float64 {
	// Invert via the one-sided tail: z = Phi^-1((1+confidence)/2).
	return normQuantile((1 + confidence) / 2)
}

// normQuantile is Acklam's rational approximation to the standard normal
// inverse CDF (relative error < 1.15e-9 over (0,1)), plenty for interval
// construction and dependency-free.
func normQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
