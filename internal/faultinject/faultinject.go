// Package faultinject provides controlled fault injection for robustness
// testing of the evaluation engine: a model.Resolver wrapper that hides
// services, fails lookups and bindings at configurable rates, delays
// lookups past configurable deadlines (exercising retry-budget and
// timeout paths), and a set of deliberately defective service
// constructions (non-finite attributes, invalid constructor arguments,
// flows with bad row sums or no path to absorption, panicking failure
// laws). Randomized (transient) failures are marked model.ErrTransient;
// deterministic ones (hidden services) are not.
//
// Every failure introduced here matches ErrInjected via errors.Is, so a
// chaos suite can tell injected faults from genuine engine defects. The
// package is test infrastructure: importing it registers the fi_panic
// expression builtin.
package faultinject

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"socrel/internal/expr"
	"socrel/internal/model"
)

// ErrInjected marks every failure introduced by this package.
var ErrInjected = errors.New("faultinject: injected fault")

func init() {
	// fi_panic(x) panics when x > 0 and returns a small constant
	// otherwise, so a test controls the panic point through a service
	// parameter (and a non-constant argument keeps the compiler from
	// folding the call away at compile time).
	_ = expr.RegisterBuiltin("fi_panic", 1, func(args []float64) (float64, error) {
		if args[0] > 0 {
			panic(fmt.Sprintf("faultinject: deliberate panic (arg %g)", args[0]))
		}
		return 0.05, nil
	})
}

// Options configures a wrapped resolver.
type Options struct {
	// Seed seeds the per-call randomization. Wrapped resolvers are
	// deterministic for a given seed and call sequence.
	Seed int64
	// MissingServices lists service names the wrapper hides: lookups fail
	// with an injected model.ErrUnknownService regardless of the base.
	MissingServices []string
	// LookupFailureRate is the probability that any single ServiceByName
	// call fails with an injected model.ErrUnknownService.
	LookupFailureRate float64
	// BindFailureRate is the probability that any single Bind call fails
	// with an injected error that is NOT model.ErrNoBinding, so the
	// engine cannot fall back to role-as-name resolution.
	BindFailureRate float64
	// ExemptServices are never hit by randomized lookup failures, hiding,
	// or injected latency — typically the evaluation roots, so the fault
	// lands inside the engine rather than on the entry lookup.
	ExemptServices []string
	// LookupDelay, when positive, delays ServiceByName calls by this
	// duration before they proceed — past a retry layer's per-attempt
	// deadline, this exercises timeout and retry-budget paths rather than
	// error paths. Delays count as injected faults.
	LookupDelay time.Duration
	// LookupDelayRate is the probability that any single lookup is
	// delayed; zero with a positive LookupDelay means every lookup.
	LookupDelayRate float64
	// Sleep performs injected delays (default time.Sleep). Tests inject a
	// virtual-clock sleeper so delay paths stay deterministic and fast.
	Sleep func(time.Duration)
}

// Resolver wraps a base model.Resolver with fault injection. It is safe
// for concurrent use if the base is.
type Resolver struct {
	base    model.Resolver
	opts    Options
	missing map[string]bool
	exempt  map[string]bool

	mu       sync.Mutex
	rng      *rand.Rand
	injected int
}

var _ model.Resolver = (*Resolver)(nil)

// Wrap returns a fault-injecting resolver over base.
func Wrap(base model.Resolver, opts Options) *Resolver {
	r := &Resolver{
		base:    base,
		opts:    opts,
		missing: make(map[string]bool, len(opts.MissingServices)),
		exempt:  make(map[string]bool, len(opts.ExemptServices)),
		rng:     rand.New(rand.NewSource(opts.Seed)),
	}
	for _, n := range opts.MissingServices {
		r.missing[n] = true
	}
	for _, n := range opts.ExemptServices {
		r.exempt[n] = true
	}
	return r
}

// Injected returns how many faults the wrapper has injected so far.
func (r *Resolver) Injected() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.injected
}

// roll draws one fault decision and counts a hit.
func (r *Resolver) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	r.mu.Lock()
	hit := r.rng.Float64() < rate
	if hit {
		r.injected++
	}
	r.mu.Unlock()
	return hit
}

// note counts one deterministic (non-randomized) injection.
func (r *Resolver) note() {
	r.mu.Lock()
	r.injected++
	r.mu.Unlock()
}

// ServiceByName implements model.Resolver with hiding, randomized lookup
// failures, and injected latency. Hidden services are a permanent fault;
// randomized failures are additionally marked model.ErrTransient so retry
// layers classify them as worth retrying.
func (r *Resolver) ServiceByName(name string) (model.Service, error) {
	if !r.exempt[name] {
		if r.missing[name] {
			r.note()
			return nil, fmt.Errorf("%w: %w: %q is hidden", ErrInjected, model.ErrUnknownService, name)
		}
		if r.roll(r.opts.LookupFailureRate) {
			return nil, fmt.Errorf("%w: %w: %w: transient lookup failure for %q", ErrInjected, model.ErrTransient, model.ErrUnknownService, name)
		}
		if r.opts.LookupDelay > 0 && (r.opts.LookupDelayRate <= 0 || r.roll(r.opts.LookupDelayRate)) {
			if r.opts.LookupDelayRate <= 0 {
				r.note()
			}
			r.sleep(r.opts.LookupDelay)
		}
	}
	return r.base.ServiceByName(name)
}

// sleep performs one injected delay through the configured hook.
func (r *Resolver) sleep(d time.Duration) {
	if r.opts.Sleep != nil {
		r.opts.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Bind implements model.Resolver with randomized binding failures, marked
// transient: a refused binding may succeed on re-resolution.
func (r *Resolver) Bind(caller, role string) (provider, connector string, err error) {
	if r.roll(r.opts.BindFailureRate) {
		return "", "", fmt.Errorf("%w: %w: bind %s/%s refused", ErrInjected, model.ErrTransient, caller, role)
	}
	return r.base.Bind(caller, role)
}

// Deliberately defective service constructions. Each returns a service
// seeded with one defect class the engine must reject with its typed
// taxonomy instead of panicking, hanging, or returning a silent NaN.

// NaNAttribute returns a parameterless simple service whose failure law
// reads a NaN attribute, so evaluation produces a non-finite probability.
func NaNAttribute(name string) *model.Simple {
	return model.NewSimple(name, nil, model.Attrs{"x": math.NaN()}, expr.Var("x"))
}

// InfLaw returns a simple service whose law evaluates to +Inf for any
// parameter value.
func InfLaw(name string) *model.Simple {
	return model.NewSimple(name, []string{"N"}, model.Attrs{"huge": math.Inf(1)}, expr.MustParse("huge + N"))
}

// BadConstructor returns a CPU constructed with a non-positive speed; the
// constructor defect surfaces at validation and evaluation time.
func BadConstructor(name string) *model.Simple {
	return model.NewCPU(name, -5, 0.001)
}

// PanicLaw returns a simple service whose failure law panics whenever its
// parameter is positive (via the fi_panic builtin), for testing panic
// isolation in evaluation pipelines and worker pools.
func PanicLaw(name string) *model.Simple {
	return model.NewSimple(name, []string{"N"}, nil, expr.MustParse("fi_panic(N)"))
}

// RowSumComposite returns a composite whose single working state's
// outgoing constant probability mass sums to 0.6 instead of one — a
// defective flow both engines must reject.
func RowSumComposite(name string) *model.Composite {
	c := model.NewComposite(name, nil, nil)
	mustAddState(c, "Work")
	mustAddTransition(c, model.StartState, "Work", 1)
	mustAddTransition(c, "Work", model.EndState, 0.6)
	return c
}

// UnreachableEndComposite returns a composite containing a two-state cycle
// with no escape: its row sums are valid but the chain has transient
// states that can never reach absorption.
func UnreachableEndComposite(name string) *model.Composite {
	c := model.NewComposite(name, nil, nil)
	mustAddState(c, "A")
	mustAddState(c, "B")
	mustAddTransition(c, model.StartState, "A", 1)
	mustAddTransition(c, "A", "B", 1)
	mustAddTransition(c, "B", "A", 1)
	return c
}

// MissingProviderComposite returns a composite requesting a role that has
// no binding and no service definition of that name anywhere.
func MissingProviderComposite(name string) *model.Composite {
	c := model.NewComposite(name, nil, nil)
	st := mustAddState(c, "Work")
	st.AddRequest(model.Request{Role: "fi_ghost_role"})
	mustAddTransition(c, model.StartState, "Work", 1)
	mustAddTransition(c, "Work", model.EndState, 1)
	return c
}

func mustAddState(c *model.Composite, name string) *model.State {
	st, err := c.Flow().AddState(name, model.AND, model.NoSharing)
	if err != nil {
		panic(err)
	}
	return st
}

func mustAddTransition(c *model.Composite, from, to string, p float64) {
	if err := c.Flow().AddTransitionP(from, to, p); err != nil {
		panic(err)
	}
}
