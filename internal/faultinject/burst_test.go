package faultinject

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestBurstConcurrent(t *testing.T) {
	var cur, peak atomic.Int64
	release := make(chan struct{})
	rep := Burst(BurstConfig{N: 16}, func(i int) error {
		n := cur.Add(1)
		if n > peak.Load() {
			peak.Store(n)
		}
		if n == 16 {
			close(release) // the whole herd has arrived at once
		}
		<-release
		return nil
	})
	if rep.Launched != 16 || rep.Failed != 0 {
		t.Fatalf("report = %+v, want 16 launched, 0 failed", rep)
	}
	if peak.Load() != 16 {
		t.Fatalf("peak concurrency = %d, want 16 (thundering herd)", peak.Load())
	}
}

func TestBurstArrivalSchedule(t *testing.T) {
	var mu sync.Mutex
	var slept []time.Duration
	rep := Burst(BurstConfig{
		N:       8,
		Arrival: time.Millisecond,
		Jitter:  time.Millisecond,
		Seed:    42,
		Sleep: func(d time.Duration) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		},
	}, func(i int) error {
		if i%2 == 1 {
			return errors.New("shed")
		}
		return nil
	})
	if rep.Launched != 8 || rep.Failed != 4 || len(rep.Errs) != 4 {
		t.Fatalf("report = %+v, want 8 launched, 4 failed", rep)
	}
	// Request 0 may draw a zero jitter (no sleep); everyone else sleeps
	// once, within [i×Arrival, i×Arrival+Jitter).
	if len(slept) < 7 || len(slept) > 8 {
		t.Fatalf("got %d sleeps, want 7 or 8", len(slept))
	}
	for _, d := range slept {
		if d <= 0 || d >= 8*time.Millisecond+time.Millisecond {
			t.Fatalf("sleep %v outside the arrival schedule", d)
		}
	}
}

func TestBurstDeterministicForSeed(t *testing.T) {
	collect := func() []time.Duration {
		var mu sync.Mutex
		var slept []time.Duration
		Burst(BurstConfig{N: 8, Jitter: time.Second, Seed: 7, Sleep: func(d time.Duration) {
			mu.Lock()
			slept = append(slept, d)
			mu.Unlock()
		}}, func(int) error { return nil })
		sortDurations(slept)
		return slept
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("runs drew different numbers of delays: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter draw %d differs between identical seeds: %v vs %v", i, a[i], b[i])
		}
	}
}

func sortDurations(ds []time.Duration) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func TestBurstDefaults(t *testing.T) {
	var calls atomic.Int64
	rep := Burst(BurstConfig{}, func(int) error { calls.Add(1); return nil })
	if rep.Launched != 32 || calls.Load() != 32 {
		t.Fatalf("default burst = %+v with %d calls, want N=32", rep, calls.Load())
	}
}
