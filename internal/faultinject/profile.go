package faultinject

// Time-varying failure-rate injection for drift chaos: a RateProfile maps
// wall-clock (or FakeClock) time to an instantaneous exponential failure
// rate, and a Sampler draws per-invocation outcomes from it. The drift
// soak ramps a provider's true rate away from the rate its model was
// fitted with and asserts the estimation layer detects and corrects it.

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// RateProfile is a time-varying instantaneous failure rate λ(t) for an
// exponential failure law Pfail = 1 - exp(-λ(t)·exposure).
// Implementations must be safe for concurrent use (the provided profiles
// are stateless).
type RateProfile interface {
	// Rate returns the instantaneous failure rate at t. It is
	// non-negative.
	Rate(t time.Time) float64
}

// Step is a RateProfile that switches from Before to After at At: the
// classic sudden-drift injection.
type Step struct {
	// At is the switch instant; Rate returns Before strictly before At
	// and After from At on.
	At time.Time
	// Before and After are the rates on either side of the step.
	Before, After float64
}

// Rate implements RateProfile.
func (s Step) Rate(t time.Time) float64 {
	if t.Before(s.At) {
		return clampRate(s.Before)
	}
	return clampRate(s.After)
}

// Ramp is a RateProfile that interpolates linearly from From (at Start)
// to To (at Start+Over), holding constant outside the window: gradual
// drift, the hardest case for threshold alarms.
type Ramp struct {
	// Start is when the ramp begins and Over how long it takes; Over <= 0
	// degenerates to a Step at Start.
	Start time.Time
	Over  time.Duration
	// From and To are the rates before and after the ramp.
	From, To float64
}

// Rate implements RateProfile.
func (r Ramp) Rate(t time.Time) float64 {
	if !t.After(r.Start) {
		return clampRate(r.From)
	}
	if r.Over <= 0 || !t.Before(r.Start.Add(r.Over)) {
		return clampRate(r.To)
	}
	frac := float64(t.Sub(r.Start)) / float64(r.Over)
	return clampRate(r.From + (r.To-r.From)*frac)
}

// Diurnal is a RateProfile oscillating sinusoidally around Base with the
// given Amplitude and Period: load-correlated daily rhythm. The rate
// peaks at Phase past each period boundary (measured from the zero
// time) and is clamped at zero when Amplitude exceeds Base.
type Diurnal struct {
	// Base is the mean rate and Amplitude the peak deviation from it.
	Base, Amplitude float64
	// Period is the oscillation period (default 24h) and Phase the
	// offset of the peak within it.
	Period time.Duration
	Phase  time.Duration
}

// Rate implements RateProfile.
func (d Diurnal) Rate(t time.Time) float64 {
	period := d.Period
	if period <= 0 {
		period = 24 * time.Hour
	}
	x := float64(t.Sub(time.Time{})-d.Phase) / float64(period)
	return clampRate(d.Base + d.Amplitude*math.Cos(2*math.Pi*x))
}

// Constant is the trivial RateProfile: a fixed rate.
type Constant float64

// Rate implements RateProfile.
func (c Constant) Rate(time.Time) float64 { return clampRate(float64(c)) }

func clampRate(r float64) float64 {
	if math.IsNaN(r) || r < 0 {
		return 0
	}
	return r
}

// Sampler draws per-invocation outcomes from a RateProfile: an
// invocation at time t with the given exposure fails with probability
// 1 - exp(-Rate(t)·exposure). It is deterministic for a given seed and
// call sequence, and safe for concurrent use (calls are serialized).
type Sampler struct {
	profile RateProfile

	mu  sync.Mutex
	rng *rand.Rand
}

// NewSampler returns a Sampler over profile seeded with seed.
func NewSampler(profile RateProfile, seed int64) *Sampler {
	return &Sampler{profile: profile, rng: rand.New(rand.NewSource(seed))}
}

// Profile returns the sampler's rate profile.
func (s *Sampler) Profile() RateProfile { return s.profile }

// Failed draws one invocation outcome at time t under the given
// exposure: true means the invocation failed. Non-positive or non-finite
// exposure is treated as 1.
func (s *Sampler) Failed(t time.Time, exposure float64) bool {
	if exposure <= 0 || math.IsNaN(exposure) || math.IsInf(exposure, 0) {
		exposure = 1
	}
	p := -math.Expm1(-s.profile.Rate(t) * exposure)
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Float64() < p
}
