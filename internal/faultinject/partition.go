package faultinject

import (
	"math/rand"
	"sync"
)

// NetConfig parameterizes a Network message-fault injector.
//
// All probabilities are in [0, 1] and drawn from one seeded RNG, so a
// single-threaded test replays the exact same fault schedule for a seed;
// under concurrent delivery the schedule is deterministic only up to the
// callers' interleaving.
type NetConfig struct {
	// Seed seeds the fault draws.
	Seed int64
	// Drop is the probability a message is silently discarded.
	Drop float64
	// Duplicate is the probability a delivered message is delivered
	// again later — a retransmit, held like a delayed message and
	// subject to the partition state at its release time.
	Duplicate float64
	// Delay is the probability a message is held and released only after
	// later traffic has gone past it — delay and reordering in one
	// mechanism, measured in messages rather than wall time so tests
	// stay deterministic without sleeping.
	Delay float64
	// MaxDelay bounds how many subsequent deliveries a held message can
	// wait before it is released (default 4).
	MaxDelay int
	// PreserveFIFO, when set, keeps per-(src, dst) delivery order: a
	// message whose pair has traffic still held queues behind it instead
	// of overtaking, and held messages of one pair never reorder among
	// themselves. Cross-pair reordering still happens — this models a
	// per-connection FIFO transport (TCP-like) with lossy links between
	// different pairs.
	PreserveFIFO bool
}

func (c NetConfig) withDefaults() NetConfig {
	if c.MaxDelay <= 0 {
		c.MaxDelay = 4
	}
	return c
}

// NetStats counts a Network's decisions.
type NetStats struct {
	// Sent counts every Deliver call.
	Sent uint64
	// Delivered counts executed sends, duplicates included.
	Delivered uint64
	// Dropped counts random drops; Blocked counts partition drops —
	// checked both at send time and again when a held message releases.
	Dropped, Blocked uint64
	// Duplicated counts extra deliveries; Delayed counts held messages
	// (FIFO-forced holds included).
	Duplicated, Delayed uint64
}

// netOp is one kind of one-shot fault directive.
type netOp int

const (
	opDrop netOp = iota
	opDup
	opDelay
)

// directive is a pending one-shot fault: the next count messages
// matching (from, to) suffer op. Empty from/to match any endpoint.
type directive struct {
	op       netOp
	from, to string
	count    int
	slots    int // opDelay: how many later deliveries overtake
}

func (d directive) matches(from, to string) bool {
	return (d.from == "" || d.from == from) && (d.to == "" || d.to == to)
}

// heldMsg is a delayed message waiting for its release point. The
// endpoints ride along so the partition map is consulted again at
// release time: a message in flight when a partition forms is lost at
// the cut, not teleported across it.
type heldMsg struct {
	due      uint64 // message-counter value at which it releases
	from, to string
	send     func()
}

// Network injects partitions, drops, duplicates, delays, and reordering
// into a message-passing layer. Callers route every send through Deliver;
// the injector decides the message's fate with a seeded RNG, the current
// partition map, and any pending one-shot directives (DropNext,
// DuplicateNext, DelayNext) — the deterministic, event-addressable
// interface the DST harness schedules faults through. It is safe for
// concurrent use; sends execute outside the injector's lock.
type Network struct {
	mu         sync.Mutex
	cfg        NetConfig
	rng        *rand.Rand
	group      map[string]int
	held       []heldMsg
	directives []directive
	count      uint64
	stats      NetStats
}

// NewNetwork returns a fault-free network for cfg (zero rates = reliable
// transport; Partition and the *Next directives still apply).
func NewNetwork(cfg NetConfig) *Network {
	cfg = cfg.withDefaults()
	return &Network{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		group: make(map[string]int),
	}
}

// Partition splits the network: messages flow only between endpoints in
// the same group. Endpoints not named in any group form one implicit
// extra group of their own (connected to each other, cut off from every
// named group). Partition replaces any previous split.
func (n *Network) Partition(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.group = make(map[string]int)
	for i, g := range groups {
		for _, id := range g {
			n.group[id] = i + 1 // 0 is the implicit group of unnamed endpoints
		}
	}
}

// Heal removes the partition; drop/duplicate/delay rates keep applying.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.group = make(map[string]int)
}

// Reachable reports whether the partition currently lets from talk to to.
func (n *Network) Reachable(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.group[from] == n.group[to]
}

// DropNext arranges for the next count messages from→to (empty strings
// match any endpoint) to be silently discarded, regardless of the
// configured rates. Directives stack and are consumed in FIFO order.
func (n *Network) DropNext(from, to string, count int) {
	n.addDirective(directive{op: opDrop, from: from, to: to, count: count})
}

// DuplicateNext arranges for the next count matching messages to be
// delivered and then retransmitted: the extra copy is held like a
// delayed message and re-checked against the partition at release.
func (n *Network) DuplicateNext(from, to string, count int) {
	n.addDirective(directive{op: opDup, from: from, to: to, count: count})
}

// DelayNext arranges for the next count matching messages to be held
// until slots later deliveries have gone past them (slots <= 0 uses
// MaxDelay).
func (n *Network) DelayNext(from, to string, count, slots int) {
	n.addDirective(directive{op: opDelay, from: from, to: to, count: count, slots: slots})
}

func (n *Network) addDirective(d directive) {
	if d.count <= 0 {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.directives = append(n.directives, d)
}

// takeDirectiveLocked consumes one charge of the first pending directive
// of the given op matching (from, to), returning it.
func (n *Network) takeDirectiveLocked(op netOp, from, to string) (directive, bool) {
	for i := range n.directives {
		d := &n.directives[i]
		if d.op != op || !d.matches(from, to) {
			continue
		}
		d.count--
		out := *d
		if d.count <= 0 {
			n.directives = append(n.directives[:i], n.directives[i+1:]...)
		}
		return out, true
	}
	return directive{}, false
}

// Deliver routes one message: send runs zero times (dropped, or blocked
// by a partition at send or at release), once, twice (duplicated — the
// second copy arrives later, as a retransmit), or later (held for
// reordering and released by subsequent Deliver or Flush calls).
// Messages already due for release are flushed first, so a held message
// is overtaken by at most MaxDelay later messages.
func (n *Network) Deliver(from, to string, send func()) {
	n.mu.Lock()
	n.count++
	n.stats.Sent++
	due := n.takeDueLocked()
	var out []func()
	switch {
	case n.group[from] != n.group[to]:
		n.stats.Blocked++
	case n.takeDropLocked(from, to) || n.roll(n.cfg.Drop):
		n.stats.Dropped++
	default:
		if slots, delayed := n.delayDecisionLocked(from, to); delayed {
			n.stats.Delayed++
			n.holdLocked(from, to, n.count+uint64(slots), send)
			break
		}
		if n.cfg.PreserveFIFO {
			if fifoDue := n.pairMaxDueLocked(from, to); fifoDue > 0 {
				// Earlier traffic for this pair is still held: queue
				// behind it so the pair's order survives the reorder.
				n.stats.Delayed++
				n.holdLocked(from, to, fifoDue, send)
				break
			}
		}
		out = append(out, send)
		n.stats.Delivered++
		if n.takeDupLocked(from, to) || n.roll(n.cfg.Duplicate) {
			// The duplicate is a retransmit: it arrives after later
			// traffic and is re-checked against the partition at release,
			// so a dup sent just before a split cannot cross the cut.
			n.stats.Duplicated++
			n.holdLocked(from, to, n.count+uint64(1+n.rng.Intn(n.cfg.MaxDelay)), send)
		}
	}
	n.mu.Unlock()
	for _, s := range due {
		s()
	}
	for _, s := range out {
		s()
	}
}

func (n *Network) takeDropLocked(from, to string) bool {
	_, ok := n.takeDirectiveLocked(opDrop, from, to)
	return ok
}

func (n *Network) takeDupLocked(from, to string) bool {
	_, ok := n.takeDirectiveLocked(opDup, from, to)
	return ok
}

// delayDecisionLocked decides whether this message is delayed, and by
// how many slots: an explicit DelayNext directive first, then the
// configured random rate.
func (n *Network) delayDecisionLocked(from, to string) (slots int, delayed bool) {
	if d, ok := n.takeDirectiveLocked(opDelay, from, to); ok {
		if d.slots > 0 {
			return d.slots, true
		}
		return n.cfg.MaxDelay, true
	}
	if n.roll(n.cfg.Delay) {
		return 1 + n.rng.Intn(n.cfg.MaxDelay), true
	}
	return 0, false
}

// holdLocked parks one message for later release. Under PreserveFIFO the
// due point is clamped so it never releases before earlier held traffic
// of the same pair (takeDueLocked releases in hold order at equal dues,
// so the pair's order is preserved).
func (n *Network) holdLocked(from, to string, due uint64, send func()) {
	if n.cfg.PreserveFIFO {
		if fifoDue := n.pairMaxDueLocked(from, to); due < fifoDue {
			due = fifoDue
		}
	}
	n.held = append(n.held, heldMsg{due: due, from: from, to: to, send: send})
}

// pairMaxDueLocked returns the latest release point among held messages
// of the pair (0 when none are held).
func (n *Network) pairMaxDueLocked(from, to string) uint64 {
	var due uint64
	for _, h := range n.held {
		if h.from == from && h.to == to && h.due > due {
			due = h.due
		}
	}
	return due
}

// Flush releases every held message immediately (e.g. at the end of a
// chaos phase, so no traffic is stranded). Release still respects the
// partition: a held message whose endpoints are split is lost, not
// teleported across the cut.
func (n *Network) Flush() {
	n.mu.Lock()
	due := make([]func(), 0, len(n.held))
	for _, h := range n.held {
		if n.group[h.from] != n.group[h.to] {
			n.stats.Blocked++
			continue
		}
		due = append(due, h.send)
	}
	n.stats.Delivered += uint64(len(due))
	n.held = nil
	n.mu.Unlock()
	for _, s := range due {
		s()
	}
}

// takeDueLocked removes and returns the sends of held messages whose
// release point has passed and whose endpoints are still connected;
// messages caught behind a partition formed after they were sent are
// blocked. Callers hold n.mu and run the sends after unlocking.
func (n *Network) takeDueLocked() []func() {
	var due []func()
	kept := n.held[:0]
	for _, h := range n.held {
		if h.due <= n.count {
			if n.group[h.from] != n.group[h.to] {
				n.stats.Blocked++
			} else {
				due = append(due, h.send)
			}
		} else {
			kept = append(kept, h)
		}
	}
	for i := len(kept); i < len(n.held); i++ {
		n.held[i] = heldMsg{}
	}
	n.held = kept
	n.stats.Delivered += uint64(len(due))
	return due
}

// roll draws one fault decision.
func (n *Network) roll(p float64) bool {
	return p > 0 && n.rng.Float64() < p
}

// Stats returns a snapshot of the network's counters.
func (n *Network) Stats() NetStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Held reports how many messages are currently held for delayed release.
func (n *Network) Held() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.held)
}

// PendingDirectives reports the total remaining charges across all armed
// one-shot directives. Directives are consumed only by matching messages
// that actually reach the directive check — a partition blocks messages
// before directives see them — so an armed directive can outlive the
// fault era it was injected in. Callers asserting the network is quiet
// should require this to be zero.
func (n *Network) PendingDirectives() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	total := 0
	for _, d := range n.directives {
		total += d.count
	}
	return total
}
