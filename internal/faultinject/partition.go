package faultinject

import (
	"math/rand"
	"sync"
)

// NetConfig parameterizes a Network message-fault injector.
//
// All probabilities are in [0, 1] and drawn from one seeded RNG, so a
// single-threaded test replays the exact same fault schedule for a seed;
// under concurrent delivery the schedule is deterministic only up to the
// callers' interleaving.
type NetConfig struct {
	// Seed seeds the fault draws.
	Seed int64
	// Drop is the probability a message is silently discarded.
	Drop float64
	// Duplicate is the probability a delivered message is delivered
	// twice.
	Duplicate float64
	// Delay is the probability a message is held and released only after
	// later traffic has gone past it — delay and reordering in one
	// mechanism, measured in messages rather than wall time so tests
	// stay deterministic without sleeping.
	Delay float64
	// MaxDelay bounds how many subsequent deliveries a held message can
	// wait before it is released (default 4).
	MaxDelay int
}

func (c NetConfig) withDefaults() NetConfig {
	if c.MaxDelay <= 0 {
		c.MaxDelay = 4
	}
	return c
}

// NetStats counts a Network's decisions.
type NetStats struct {
	// Sent counts every Deliver call.
	Sent uint64
	// Delivered counts executed sends, duplicates included.
	Delivered uint64
	// Dropped counts random drops; Blocked counts partition drops.
	Dropped, Blocked uint64
	// Duplicated counts extra deliveries; Delayed counts held messages.
	Duplicated, Delayed uint64
}

// heldMsg is a delayed message waiting for its release point.
type heldMsg struct {
	due  uint64 // message-counter value at which it releases
	send func()
}

// Network injects partitions, drops, duplicates, delays, and reordering
// into a message-passing layer. Callers route every send through Deliver;
// the injector decides the message's fate with a seeded RNG and the
// current partition map. It is safe for concurrent use; sends execute
// outside the injector's lock.
type Network struct {
	mu    sync.Mutex
	cfg   NetConfig
	rng   *rand.Rand
	group map[string]int
	held  []heldMsg
	count uint64
	stats NetStats
}

// NewNetwork returns a fault-free network for cfg (zero rates = reliable
// transport; Partition still applies).
func NewNetwork(cfg NetConfig) *Network {
	cfg = cfg.withDefaults()
	return &Network{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		group: make(map[string]int),
	}
}

// Partition splits the network: messages flow only between endpoints in
// the same group. Endpoints not named in any group form one implicit
// extra group of their own (connected to each other, cut off from every
// named group). Partition replaces any previous split.
func (n *Network) Partition(groups ...[]string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.group = make(map[string]int)
	for i, g := range groups {
		for _, id := range g {
			n.group[id] = i + 1 // 0 is the implicit group of unnamed endpoints
		}
	}
}

// Heal removes the partition; drop/duplicate/delay rates keep applying.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.group = make(map[string]int)
}

// Reachable reports whether the partition currently lets from talk to to.
func (n *Network) Reachable(from, to string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.group[from] == n.group[to]
}

// Deliver routes one message: send runs zero times (dropped or blocked by
// a partition), once, twice (duplicated), or later (held for reordering
// and released by subsequent Deliver or Flush calls). Messages already
// due for release are flushed first, so a held message is overtaken by at
// most MaxDelay later messages.
func (n *Network) Deliver(from, to string, send func()) {
	n.mu.Lock()
	n.count++
	n.stats.Sent++
	due := n.takeDueLocked()
	var out []func()
	switch {
	case n.group[from] != n.group[to]:
		n.stats.Blocked++
	case n.roll(n.cfg.Drop):
		n.stats.Dropped++
	case n.roll(n.cfg.Delay):
		n.stats.Delayed++
		wait := 1 + n.rng.Intn(n.cfg.MaxDelay)
		n.held = append(n.held, heldMsg{due: n.count + uint64(wait), send: send})
	default:
		out = append(out, send)
		if n.roll(n.cfg.Duplicate) {
			n.stats.Duplicated++
			out = append(out, send)
		}
		n.stats.Delivered += uint64(len(out))
	}
	n.mu.Unlock()
	for _, s := range due {
		s()
	}
	for _, s := range out {
		s()
	}
}

// Flush releases every held message immediately (e.g. at the end of a
// chaos phase, so no traffic is stranded).
func (n *Network) Flush() {
	n.mu.Lock()
	due := make([]func(), 0, len(n.held))
	for _, h := range n.held {
		due = append(due, h.send)
	}
	n.stats.Delivered += uint64(len(due))
	n.held = nil
	n.mu.Unlock()
	for _, s := range due {
		s()
	}
}

// takeDueLocked removes and returns the sends of held messages whose
// release point has passed. Callers hold n.mu and run the sends after
// unlocking.
func (n *Network) takeDueLocked() []func() {
	var due []func()
	kept := n.held[:0]
	for _, h := range n.held {
		if h.due <= n.count {
			due = append(due, h.send)
		} else {
			kept = append(kept, h)
		}
	}
	for i := len(kept); i < len(n.held); i++ {
		n.held[i] = heldMsg{}
	}
	n.held = kept
	n.stats.Delivered += uint64(len(due))
	return due
}

// roll draws one fault decision.
func (n *Network) roll(p float64) bool {
	return p > 0 && n.rng.Float64() < p
}

// Stats returns a snapshot of the network's counters.
func (n *Network) Stats() NetStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Held reports how many messages are currently held for delayed release.
func (n *Network) Held() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.held)
}
