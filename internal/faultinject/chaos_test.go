package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/expr"
	"socrel/internal/markov"
	"socrel/internal/model"
)

// isTaxonomy reports whether err matches the documented error taxonomy of
// the evaluation engine (DESIGN.md §8): every failure a chaos evaluation
// produces must be one of these classes — never an unclassified error,
// never a panic, never a silent NaN success.
func isTaxonomy(err error) bool {
	for _, sentinel := range []error{
		core.ErrCanceled,
		core.ErrNonFinite,
		core.ErrNoConvergence,
		core.ErrUnresolvedBinding,
		core.ErrDefectiveFlow,
		core.ErrNotCompilable,
		core.ErrPanic,
		model.ErrUnknownService,
		model.ErrInvalidService,
		model.ErrArity,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// Defect kinds the random generator can seed into an assembly.
const (
	defNone = iota
	defNaNAttr
	defInfLaw
	defBadCtor
	defPanicLaw
	defRowSum
	defUnreachable
	defMissingProvider
	defCount
)

// randomAssembly builds a small random assembly rooted at a composite with
// one formal parameter N, optionally seeding one defect. The defective
// service (when any) is always requested by the first working state, so
// the defect is on the evaluation path.
func randomAssembly(rng *rand.Rand, defect int) (*assembly.Assembly, string) {
	asm := assembly.New("chaos")
	nProv := 2 + rng.Intn(3)
	names := make([]string, 0, nProv)
	arity := make(map[string]int)
	for i := 0; i < nProv; i++ {
		name := fmt.Sprintf("P%d", i)
		if i == 0 {
			switch defect {
			case defNaNAttr:
				asm.MustAddService(NaNAttribute(name))
				arity[name] = 0
			case defInfLaw:
				asm.MustAddService(InfLaw(name))
				arity[name] = 1
			case defBadCtor:
				asm.MustAddService(BadConstructor(name))
				arity[name] = 1
			case defPanicLaw:
				asm.MustAddService(PanicLaw(name))
				arity[name] = 1
			case defRowSum:
				asm.MustAddService(RowSumComposite(name))
				arity[name] = 0
			case defUnreachable:
				asm.MustAddService(UnreachableEndComposite(name))
				arity[name] = 0
			case defMissingProvider:
				asm.MustAddService(MissingProviderComposite(name))
				arity[name] = 0
			default:
				asm.MustAddService(model.NewConstant(name, rng.Float64()*0.2))
				arity[name] = 0
			}
			names = append(names, name)
			continue
		}
		switch rng.Intn(3) {
		case 0:
			asm.MustAddService(model.NewCPU(name, 1+rng.Float64()*100, rng.Float64()*0.01))
			arity[name] = 1
		case 1:
			asm.MustAddService(model.NewConstant(name, rng.Float64()*0.2))
			arity[name] = 0
		default:
			asm.MustAddService(model.NewNetwork(name, 1+rng.Float64()*1000, rng.Float64()*0.01))
			arity[name] = 1
		}
		names = append(names, name)
	}

	root := model.NewComposite("Root", []string{"N"}, nil)
	flow := root.Flow()
	nStates := 1 + rng.Intn(3)
	prev := model.StartState
	for s := 0; s < nStates; s++ {
		sname := fmt.Sprintf("S%d", s)
		completion := model.AND
		if rng.Intn(3) == 0 {
			completion = model.OR
		}
		st, err := flow.AddState(sname, completion, model.NoSharing)
		if err != nil {
			panic(err)
		}
		nReq := 1 + rng.Intn(2)
		for q := 0; q < nReq; q++ {
			p := names[rng.Intn(len(names))]
			if s == 0 && q == 0 && defect != defNone {
				p = names[0] // put the defect on the evaluation path
			}
			var params []expr.Expr
			if arity[p] == 1 {
				params = []expr.Expr{expr.Var("N")}
			}
			st.AddRequest(model.Request{Role: p, Params: params})
		}
		if err := flow.AddTransitionP(prev, sname, 1); err != nil {
			panic(err)
		}
		prev = sname
	}
	if err := flow.AddTransitionP(prev, model.EndState, 1); err != nil {
		panic(err)
	}
	asm.MustAddService(root)
	return asm, root.Name()
}

// TestChaosRandomized drives both engines through well over a thousand
// evaluations of randomized assemblies under randomized fault injection
// (hidden services, transient lookup and binding failures, seeded model
// defects, cancellations, starved iteration budgets). The invariants: no
// evaluation panics or hangs, every failure matches the typed taxonomy,
// and every success is a finite probability in [0, 1].
func TestChaosRandomized(t *testing.T) {
	const rounds = 140
	const points = 8
	evals := 0
	checkValue := func(round, pt int, p float64) {
		if math.IsNaN(p) || math.IsInf(p, 0) || p < 0 || p > 1 {
			t.Fatalf("round %d point %d: successful evaluation returned %g, want a probability", round, pt, p)
		}
	}
	checkErr := func(round, pt int, err error) {
		if !isTaxonomy(err) {
			t.Fatalf("round %d point %d: error outside the taxonomy: %v", round, pt, err)
		}
	}
	for round := 0; round < rounds; round++ {
		rng := rand.New(rand.NewSource(int64(round)*7919 + 1))
		defect := rng.Intn(defCount)
		asm, root := randomAssembly(rng, defect)

		fiOpts := Options{Seed: int64(round), ExemptServices: []string{root}}
		if rng.Intn(2) == 0 {
			fiOpts.LookupFailureRate = 0.05
		}
		if rng.Intn(2) == 0 {
			fiOpts.BindFailureRate = 0.05
		}
		if rng.Intn(5) == 0 {
			fiOpts.MissingServices = []string{fmt.Sprintf("P%d", rng.Intn(2))}
		}
		res := Wrap(asm, fiOpts)

		var opts core.Options
		if rng.Intn(4) == 0 {
			opts.Method = markov.MethodIterative
			if rng.Intn(2) == 0 {
				opts.IterMaxIter = 1 // starve the solver to provoke ErrNoConvergence
			}
		}

		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		if round%10 == 9 {
			cancel() // pre-canceled round: everything must surface ErrCanceled
		}

		if rng.Intn(3) == 2 {
			// Compiled engine with the concurrent batch pool.
			ca, err := core.Compile(res, opts, root)
			if err != nil {
				checkErr(round, -1, err)
			} else {
				sets := make([][]float64, points)
				for pt := range sets {
					sets[pt] = []float64{0.5 + rng.Float64()*99}
				}
				out, err := ca.PfailBatchCtx(ctx, root, sets)
				evals += points
				if err != nil {
					checkErr(round, -1, err)
				}
				if len(out) != points {
					t.Fatalf("round %d: batch returned %d results, want %d", round, len(out), points)
				}
				for pt, p := range out {
					if math.IsNaN(p) {
						continue // failed or skipped point
					}
					checkValue(round, pt, p)
				}
				cancel()
				continue
			}
		}
		// Interpreted engine (with compiled delegation kicking in after the
		// first call when the assembly allows it).
		ev := core.New(res, opts)
		for pt := 0; pt < points; pt++ {
			p, err := ev.PfailCtx(ctx, root, 0.5+rng.Float64()*99)
			evals++
			if err != nil {
				checkErr(round, pt, err)
				continue
			}
			checkValue(round, pt, p)
		}
		cancel()
	}
	if evals < 1000 {
		t.Fatalf("chaos suite ran %d evaluations, want >= 1000", evals)
	}
	t.Logf("chaos suite: %d evaluations", evals)
}

// TestDefectClasses pins each seeded defect to its taxonomy class on both
// engines.
func TestDefectClasses(t *testing.T) {
	cases := []struct {
		name   string
		svc    model.Service
		params []float64
		want   error
	}{
		{"nan-attribute", NaNAttribute("D"), nil, core.ErrNonFinite},
		{"inf-law", InfLaw("D"), []float64{3}, core.ErrNonFinite},
		{"bad-constructor", BadConstructor("D"), []float64{3}, model.ErrInvalidService},
		{"panic-law", PanicLaw("D"), []float64{3}, core.ErrPanic},
		{"row-sum", RowSumComposite("D"), nil, core.ErrDefectiveFlow},
		{"unreachable-end", UnreachableEndComposite("D"), nil, core.ErrDefectiveFlow},
		{"missing-provider", MissingProviderComposite("D"), nil, core.ErrUnresolvedBinding},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			asm := assembly.New("defect")
			asm.MustAddService(tc.svc)

			if _, err := core.New(asm, core.Options{}).Pfail("D", tc.params...); !errors.Is(err, tc.want) {
				t.Errorf("interpreted: got %v, want errors.Is(err, %v)", err, tc.want)
			}

			// Compiled engine: the defect surfaces either at Compile time or
			// at evaluation time, but always in the same class.
			ca, err := core.Compile(asm, core.Options{}, "D")
			if err == nil {
				_, err = ca.Pfail("D", tc.params...)
			}
			if !errors.Is(err, tc.want) {
				t.Errorf("compiled: got %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
}

// TestWrapInjection pins the wrapper's own behavior: hidden services,
// deterministic rates, the injected-fault marker, and the exemption list.
func TestWrapInjection(t *testing.T) {
	asm := assembly.New("base")
	asm.MustAddService(model.NewConstant("A", 0.1))
	asm.MustAddService(model.NewConstant("B", 0.2))

	res := Wrap(asm, Options{MissingServices: []string{"B"}, ExemptServices: []string{"A"}})
	if _, err := res.ServiceByName("A"); err != nil {
		t.Fatalf("exempt service failed: %v", err)
	}
	_, err := res.ServiceByName("B")
	if !errors.Is(err, ErrInjected) || !errors.Is(err, model.ErrUnknownService) {
		t.Fatalf("hidden service: got %v, want ErrInjected wrapping ErrUnknownService", err)
	}
	if res.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1", res.Injected())
	}

	all := Wrap(asm, Options{LookupFailureRate: 1, BindFailureRate: 1})
	if _, err := all.ServiceByName("A"); !errors.Is(err, ErrInjected) {
		t.Fatalf("rate-1 lookup: got %v, want ErrInjected", err)
	}
	_, _, err = all.Bind("X", "r")
	if !errors.Is(err, ErrInjected) || errors.Is(err, model.ErrNoBinding) {
		t.Fatalf("rate-1 bind: got %v, want injected non-ErrNoBinding", err)
	}
}
