package faultinject

import (
	"math"
	"testing"
	"time"
)

var profT0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestStepProfile(t *testing.T) {
	p := Step{At: profT0, Before: 0.05, After: 0.2}
	if got := p.Rate(profT0.Add(-time.Nanosecond)); got != 0.05 {
		t.Fatalf("before step: %g", got)
	}
	if got := p.Rate(profT0); got != 0.2 {
		t.Fatalf("at step instant: %g", got)
	}
	if got := p.Rate(profT0.Add(time.Hour)); got != 0.2 {
		t.Fatalf("after step: %g", got)
	}
	if got := (Step{At: profT0, Before: -1, After: math.NaN()}).Rate(profT0); got != 0 {
		t.Fatalf("bad rates not clamped: %g", got)
	}
}

func TestRampProfile(t *testing.T) {
	p := Ramp{Start: profT0, Over: 100 * time.Second, From: 0.05, To: 0.25}
	if got := p.Rate(profT0.Add(-time.Hour)); got != 0.05 {
		t.Fatalf("before ramp: %g", got)
	}
	if got := p.Rate(profT0); got != 0.05 {
		t.Fatalf("at ramp start: %g", got)
	}
	if got := p.Rate(profT0.Add(50 * time.Second)); math.Abs(got-0.15) > 1e-12 {
		t.Fatalf("midpoint: %g, want 0.15", got)
	}
	if got := p.Rate(profT0.Add(25 * time.Second)); math.Abs(got-0.10) > 1e-12 {
		t.Fatalf("quarter point: %g, want 0.10", got)
	}
	if got := p.Rate(profT0.Add(100 * time.Second)); got != 0.25 {
		t.Fatalf("at ramp end: %g", got)
	}
	if got := p.Rate(profT0.Add(time.Hour)); got != 0.25 {
		t.Fatalf("after ramp: %g", got)
	}
	// Monotone non-decreasing across the window for an upward ramp.
	prev := -1.0
	for s := -10; s <= 110; s++ {
		got := p.Rate(profT0.Add(time.Duration(s) * time.Second))
		if got < prev {
			t.Fatalf("ramp not monotone at %ds: %g < %g", s, got, prev)
		}
		prev = got
	}
	// Over <= 0 degenerates to a step at Start.
	step := Ramp{Start: profT0, From: 0.05, To: 0.25}
	if step.Rate(profT0.Add(-time.Nanosecond)) != 0.05 || step.Rate(profT0.Add(time.Nanosecond)) != 0.25 {
		t.Fatal("degenerate ramp is not a step")
	}
}

func TestDiurnalProfile(t *testing.T) {
	p := Diurnal{Base: 0.1, Amplitude: 0.05, Period: 24 * time.Hour}
	peak := p.Rate(time.Time{})
	if math.Abs(peak-0.15) > 1e-9 {
		t.Fatalf("peak %g, want 0.15", peak)
	}
	trough := p.Rate(time.Time{}.Add(12 * time.Hour))
	if math.Abs(trough-0.05) > 1e-9 {
		t.Fatalf("trough %g, want 0.05", trough)
	}
	if got := p.Rate(time.Time{}.Add(24 * time.Hour)); math.Abs(got-peak) > 1e-9 {
		t.Fatalf("not periodic: %g vs %g", got, peak)
	}
	// Phase shifts the peak.
	shifted := Diurnal{Base: 0.1, Amplitude: 0.05, Period: 24 * time.Hour, Phase: 6 * time.Hour}
	if got := shifted.Rate(time.Time{}.Add(6 * time.Hour)); math.Abs(got-0.15) > 1e-9 {
		t.Fatalf("shifted peak %g, want 0.15", got)
	}
	// Amplitude above Base clamps at zero rather than going negative.
	deep := Diurnal{Base: 0.05, Amplitude: 0.2, Period: 24 * time.Hour}
	if got := deep.Rate(time.Time{}.Add(12 * time.Hour)); got != 0 {
		t.Fatalf("negative excursion not clamped: %g", got)
	}
	// Default period is 24h.
	dflt := Diurnal{Base: 0.1, Amplitude: 0.05}
	if got := dflt.Rate(time.Time{}.Add(24 * time.Hour)); math.Abs(got-0.15) > 1e-9 {
		t.Fatalf("default period wrong: %g", got)
	}
}

func TestConstantProfile(t *testing.T) {
	if got := Constant(0.07).Rate(profT0); got != 0.07 {
		t.Fatalf("constant: %g", got)
	}
	if got := Constant(-3).Rate(profT0); got != 0 {
		t.Fatalf("negative constant not clamped: %g", got)
	}
}

// TestSamplerMatchesProfile draws many outcomes on each side of a step
// and checks the empirical failure fractions track 1-exp(-λ·exposure).
func TestSamplerMatchesProfile(t *testing.T) {
	p := Step{At: profT0.Add(time.Hour), Before: 0.05, After: 0.5}
	s := NewSampler(p, 42)
	const n = 20000
	count := func(at time.Time, exposure float64) float64 {
		fails := 0
		for i := 0; i < n; i++ {
			if s.Failed(at, exposure) {
				fails++
			}
		}
		return float64(fails) / n
	}
	before := count(profT0, 1)
	if want := -math.Expm1(-0.05); math.Abs(before-want) > 0.01 {
		t.Fatalf("pre-step failure fraction %g, want ≈%g", before, want)
	}
	after := count(profT0.Add(2*time.Hour), 1)
	if want := -math.Expm1(-0.5); math.Abs(after-want) > 0.02 {
		t.Fatalf("post-step failure fraction %g, want ≈%g", after, want)
	}
	// Exposure scales the per-invocation failure probability.
	heavy := count(profT0, 10)
	if want := -math.Expm1(-0.5); math.Abs(heavy-want) > 0.02 {
		t.Fatalf("exposure-10 failure fraction %g, want ≈%g", heavy, want)
	}
}

func TestSamplerDeterministicPerSeed(t *testing.T) {
	draw := func(seed int64) []bool {
		s := NewSampler(Constant(0.3), seed)
		out := make([]bool, 200)
		for i := range out {
			out[i] = s.Failed(profT0.Add(time.Duration(i)*time.Second), 1)
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := draw(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestSamplerDefaultsBadExposure(t *testing.T) {
	// Exposure <= 0 / NaN / Inf behaves like exposure 1: with a rate so
	// high that exposure 1 virtually always fails, every draw fails.
	s := NewSampler(Constant(50), 1)
	for _, exp := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if !s.Failed(profT0, exp) {
			t.Fatalf("exposure %v did not default to 1", exp)
		}
	}
	if s.Profile() == nil {
		t.Fatal("Profile accessor lost the profile")
	}
}
