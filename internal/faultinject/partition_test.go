package faultinject

import (
	"testing"
)

// TestNetworkReliableByDefault: zero rates and no partition deliver
// everything exactly once, in order.
func TestNetworkReliableByDefault(t *testing.T) {
	n := NewNetwork(NetConfig{Seed: 1})
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		n.Deliver("a", "b", func() { got = append(got, i) })
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d messages, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("reliable network reordered: %v", got)
		}
	}
	st := n.Stats()
	if st.Sent != 10 || st.Delivered != 10 || st.Dropped+st.Blocked+st.Duplicated+st.Delayed != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

// TestNetworkPartitionBlocksAcrossGroups: cross-group messages are
// blocked, intra-group (including the implicit unnamed group) flow, and
// Heal restores everything.
func TestNetworkPartitionBlocksAcrossGroups(t *testing.T) {
	n := NewNetwork(NetConfig{Seed: 1})
	n.Partition([]string{"a", "b"}, []string{"c"})

	delivered := 0
	send := func() { delivered++ }

	n.Deliver("a", "b", send) // same group
	n.Deliver("a", "c", send) // across groups
	n.Deliver("c", "a", send) // across groups
	n.Deliver("x", "y", send) // both unnamed: implicit group
	n.Deliver("a", "x", send) // named vs unnamed: blocked
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2 (a→b and x→y)", delivered)
	}
	if n.Reachable("a", "c") || !n.Reachable("a", "b") || !n.Reachable("x", "y") {
		t.Fatal("Reachable disagrees with the partition")
	}
	if st := n.Stats(); st.Blocked != 3 {
		t.Fatalf("blocked = %d, want 3", st.Blocked)
	}

	n.Heal()
	n.Deliver("a", "c", send)
	if delivered != 3 {
		t.Fatal("heal did not restore cross-group delivery")
	}
}

// TestNetworkFaultMix drives enough messages through a faulty config to
// exercise every mechanism, and checks conservation: every sent message
// is accounted for as delivered-once, duplicated, dropped, or still held.
func TestNetworkFaultMix(t *testing.T) {
	n := NewNetwork(NetConfig{Seed: 99, Drop: 0.2, Duplicate: 0.2, Delay: 0.2, MaxDelay: 3})
	delivered := 0
	const total = 2000
	for i := 0; i < total; i++ {
		n.Deliver("a", "b", func() { delivered++ })
	}
	n.Flush()
	st := n.Stats()
	if st.Dropped == 0 || st.Duplicated == 0 || st.Delayed == 0 {
		t.Fatalf("fault mix never exercised some mechanism: %+v", st)
	}
	if n.Held() != 0 {
		t.Fatalf("%d messages still held after Flush", n.Held())
	}
	want := total - int(st.Dropped) + int(st.Duplicated)
	if delivered != want {
		t.Fatalf("delivered %d, want %d (= sent - dropped + duplicated)", delivered, want)
	}
	if uint64(delivered) != st.Delivered {
		t.Fatalf("Delivered counter %d disagrees with executions %d", st.Delivered, delivered)
	}
}

// TestNetworkDeterministicForSeed: the same seed and call sequence yields
// the same fault schedule.
func TestNetworkDeterministicForSeed(t *testing.T) {
	run := func() (order []int, st NetStats) {
		n := NewNetwork(NetConfig{Seed: 7, Drop: 0.15, Duplicate: 0.15, Delay: 0.25, MaxDelay: 3})
		for i := 0; i < 200; i++ {
			i := i
			n.Deliver("a", "b", func() { order = append(order, i) })
		}
		n.Flush()
		return order, n.Stats()
	}
	o1, s1 := run()
	o2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ for identical seeds: %+v vs %+v", s1, s2)
	}
	if len(o1) != len(o2) {
		t.Fatalf("delivery counts differ: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("delivery order diverged at %d: %v vs %v", i, o1[:i+1], o2[:i+1])
		}
	}
}

// TestNetworkDelayReorders: a held message is overtaken by later traffic
// but released within MaxDelay subsequent deliveries.
func TestNetworkDelayReorders(t *testing.T) {
	n := NewNetwork(NetConfig{Seed: 3, Delay: 0.5, MaxDelay: 2})
	var order []int
	const total = 400
	for i := 0; i < total; i++ {
		i := i
		n.Deliver("a", "b", func() { order = append(order, i) })
	}
	n.Flush()
	if len(order) != total {
		t.Fatalf("delivered %d, want %d", len(order), total)
	}
	reordered := false
	pos := make([]int, total)
	for p, v := range order {
		pos[v] = p
	}
	for i := 1; i < total; i++ {
		if pos[i] < pos[i-1] {
			reordered = true
		}
		// A message can be overtaken, but only by a bounded amount: its
		// delivery position trails its index by at most MaxDelay extra
		// slots past the furthest any earlier message reached.
		if pos[i] > i+2*2 { // MaxDelay=2 held + up to 2 duplicates-not-configured slack
			t.Fatalf("message %d delivered at position %d: delay unbounded", i, pos[i])
		}
	}
	if !reordered {
		t.Fatal("Delay=0.5 never reordered anything")
	}
}
