package faultinject

import (
	"testing"
)

// TestNetworkReliableByDefault: zero rates and no partition deliver
// everything exactly once, in order.
func TestNetworkReliableByDefault(t *testing.T) {
	n := NewNetwork(NetConfig{Seed: 1})
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		n.Deliver("a", "b", func() { got = append(got, i) })
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d messages, want 10", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("reliable network reordered: %v", got)
		}
	}
	st := n.Stats()
	if st.Sent != 10 || st.Delivered != 10 || st.Dropped+st.Blocked+st.Duplicated+st.Delayed != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

// TestNetworkPartitionBlocksAcrossGroups: cross-group messages are
// blocked, intra-group (including the implicit unnamed group) flow, and
// Heal restores everything.
func TestNetworkPartitionBlocksAcrossGroups(t *testing.T) {
	n := NewNetwork(NetConfig{Seed: 1})
	n.Partition([]string{"a", "b"}, []string{"c"})

	delivered := 0
	send := func() { delivered++ }

	n.Deliver("a", "b", send) // same group
	n.Deliver("a", "c", send) // across groups
	n.Deliver("c", "a", send) // across groups
	n.Deliver("x", "y", send) // both unnamed: implicit group
	n.Deliver("a", "x", send) // named vs unnamed: blocked
	if delivered != 2 {
		t.Fatalf("delivered %d, want 2 (a→b and x→y)", delivered)
	}
	if n.Reachable("a", "c") || !n.Reachable("a", "b") || !n.Reachable("x", "y") {
		t.Fatal("Reachable disagrees with the partition")
	}
	if st := n.Stats(); st.Blocked != 3 {
		t.Fatalf("blocked = %d, want 3", st.Blocked)
	}

	n.Heal()
	n.Deliver("a", "c", send)
	if delivered != 3 {
		t.Fatal("heal did not restore cross-group delivery")
	}
}

// TestNetworkFaultMix drives enough messages through a faulty config to
// exercise every mechanism, and checks conservation: every sent message
// is accounted for as delivered-once, duplicated, dropped, or still held.
func TestNetworkFaultMix(t *testing.T) {
	n := NewNetwork(NetConfig{Seed: 99, Drop: 0.2, Duplicate: 0.2, Delay: 0.2, MaxDelay: 3})
	delivered := 0
	const total = 2000
	for i := 0; i < total; i++ {
		n.Deliver("a", "b", func() { delivered++ })
	}
	n.Flush()
	st := n.Stats()
	if st.Dropped == 0 || st.Duplicated == 0 || st.Delayed == 0 {
		t.Fatalf("fault mix never exercised some mechanism: %+v", st)
	}
	if n.Held() != 0 {
		t.Fatalf("%d messages still held after Flush", n.Held())
	}
	want := total - int(st.Dropped) + int(st.Duplicated)
	if delivered != want {
		t.Fatalf("delivered %d, want %d (= sent - dropped + duplicated)", delivered, want)
	}
	if uint64(delivered) != st.Delivered {
		t.Fatalf("Delivered counter %d disagrees with executions %d", st.Delivered, delivered)
	}
}

// TestNetworkDeterministicForSeed: the same seed and call sequence yields
// the same fault schedule.
func TestNetworkDeterministicForSeed(t *testing.T) {
	run := func() (order []int, st NetStats) {
		n := NewNetwork(NetConfig{Seed: 7, Drop: 0.15, Duplicate: 0.15, Delay: 0.25, MaxDelay: 3})
		for i := 0; i < 200; i++ {
			i := i
			n.Deliver("a", "b", func() { order = append(order, i) })
		}
		n.Flush()
		return order, n.Stats()
	}
	o1, s1 := run()
	o2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ for identical seeds: %+v vs %+v", s1, s2)
	}
	if len(o1) != len(o2) {
		t.Fatalf("delivery counts differ: %d vs %d", len(o1), len(o2))
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("delivery order diverged at %d: %v vs %v", i, o1[:i+1], o2[:i+1])
		}
	}
}

// TestNetworkDuplicateRespectsPartitionAtDelivery: a duplicate is a
// retransmit — it arrives after later traffic, and if a partition forms
// between the original delivery and the retransmit's release, the copy
// is lost at the cut instead of teleported across it.
func TestNetworkDuplicateRespectsPartitionAtDelivery(t *testing.T) {
	n := NewNetwork(NetConfig{Seed: 1})
	n.DuplicateNext("a", "b", 1)
	delivered := 0
	n.Deliver("a", "b", func() { delivered++ })
	if delivered != 1 {
		t.Fatalf("original delivered %d times, want 1 (dup must arrive later)", delivered)
	}
	if n.Held() != 1 {
		t.Fatalf("%d messages held, want the 1 retransmit", n.Held())
	}

	n.Partition([]string{"a"}, []string{"b"})
	n.Flush()
	if delivered != 1 {
		t.Fatalf("retransmit crossed an active partition: delivered %d", delivered)
	}
	st := n.Stats()
	if st.Duplicated != 1 || st.Blocked != 1 {
		t.Fatalf("want 1 duplicated + 1 blocked at release, got %+v", st)
	}

	// Control: without the partition the retransmit does arrive.
	n2 := NewNetwork(NetConfig{Seed: 1})
	n2.DuplicateNext("a", "b", 1)
	delivered = 0
	n2.Deliver("a", "b", func() { delivered++ })
	n2.Flush()
	if delivered != 2 {
		t.Fatalf("unpartitioned retransmit lost: delivered %d, want 2", delivered)
	}
}

// TestNetworkHeldRespectsPartitionAtDelivery: a message delayed before a
// split does not cross the cut when its release point passes.
func TestNetworkHeldRespectsPartitionAtDelivery(t *testing.T) {
	n := NewNetwork(NetConfig{Seed: 1, MaxDelay: 2})
	n.DelayNext("a", "b", 1, 2)
	delivered := 0
	n.Deliver("a", "b", func() { delivered++ }) // held
	n.Partition([]string{"a"}, []string{"b"})
	// Unrelated traffic pushes the counter past the release point.
	n.Deliver("x", "y", func() {})
	n.Deliver("x", "y", func() {})
	n.Deliver("x", "y", func() {})
	if delivered != 0 {
		t.Fatal("held message crossed an active partition at release")
	}
	n.Heal()
	n.DelayNext("a", "b", 1, 1)
	n.Deliver("a", "b", func() { delivered++ }) // held again, healed net
	n.Deliver("x", "y", func() {})
	n.Deliver("x", "y", func() {})
	if delivered != 1 {
		t.Fatalf("held message lost on a healed network: delivered %d", delivered)
	}
}

// TestNetworkDirectivesDeterministic: one-shot directives fire exactly
// count times against matching traffic, with wildcards, regardless of
// the configured (zero) rates.
func TestNetworkDirectivesDeterministic(t *testing.T) {
	n := NewNetwork(NetConfig{Seed: 5})
	n.DropNext("a", "b", 2)
	n.DropNext("", "c", 1) // wildcard source
	delivered := map[string]int{}
	for i := 0; i < 4; i++ {
		n.Deliver("a", "b", func() { delivered["ab"]++ })
	}
	n.Deliver("x", "c", func() { delivered["xc"]++ })
	n.Deliver("x", "c", func() { delivered["xc"]++ })
	if delivered["ab"] != 2 || delivered["xc"] != 1 {
		t.Fatalf("directive drops off: %+v (want ab=2, xc=1)", delivered)
	}
	if st := n.Stats(); st.Dropped != 3 {
		t.Fatalf("dropped %d, want 3", st.Dropped)
	}
}

// TestNetworkPreserveFIFO: with PreserveFIFO, per-(src,dst) order
// survives injected delays — later same-pair messages queue behind held
// ones instead of overtaking — while cross-pair reordering still occurs.
func TestNetworkPreserveFIFO(t *testing.T) {
	n := NewNetwork(NetConfig{Seed: 11, MaxDelay: 4, PreserveFIFO: true})
	var ab, cd []int
	n.DelayNext("a", "b", 1, 4)
	for i := 0; i < 8; i++ {
		i := i
		n.Deliver("a", "b", func() { ab = append(ab, i) })
		n.Deliver("c", "d", func() { cd = append(cd, i) })
	}
	n.Flush()
	if len(ab) != 8 || len(cd) != 8 {
		t.Fatalf("lost messages: ab=%d cd=%d", len(ab), len(cd))
	}
	for i := 1; i < len(ab); i++ {
		if ab[i] < ab[i-1] {
			t.Fatalf("PreserveFIFO violated for pair a→b: %v", ab)
		}
	}
	for i := 1; i < len(cd); i++ {
		if cd[i] < cd[i-1] {
			t.Fatalf("PreserveFIFO violated for pair c→d: %v", cd)
		}
	}

	// Without the option the same schedule reorders the a→b stream.
	n2 := NewNetwork(NetConfig{Seed: 11, MaxDelay: 4})
	var ab2 []int
	n2.DelayNext("a", "b", 1, 4)
	for i := 0; i < 8; i++ {
		i := i
		n2.Deliver("a", "b", func() { ab2 = append(ab2, i) })
		n2.Deliver("c", "d", func() {})
	}
	n2.Flush()
	reordered := false
	for i := 1; i < len(ab2); i++ {
		if ab2[i] < ab2[i-1] {
			reordered = true
		}
	}
	if !reordered {
		t.Fatal("control run never reordered — the FIFO assertion above is vacuous")
	}
}

// TestNetworkDelayReorders: a held message is overtaken by later traffic
// but released within MaxDelay subsequent deliveries.
func TestNetworkDelayReorders(t *testing.T) {
	n := NewNetwork(NetConfig{Seed: 3, Delay: 0.5, MaxDelay: 2})
	var order []int
	const total = 400
	for i := 0; i < total; i++ {
		i := i
		n.Deliver("a", "b", func() { order = append(order, i) })
	}
	n.Flush()
	if len(order) != total {
		t.Fatalf("delivered %d, want %d", len(order), total)
	}
	reordered := false
	pos := make([]int, total)
	for p, v := range order {
		pos[v] = p
	}
	for i := 1; i < total; i++ {
		if pos[i] < pos[i-1] {
			reordered = true
		}
		// A message can be overtaken, but only by a bounded amount: its
		// delivery position trails its index by at most MaxDelay extra
		// slots past the furthest any earlier message reached.
		if pos[i] > i+2*2 { // MaxDelay=2 held + up to 2 duplicates-not-configured slack
			t.Fatalf("message %d delivered at position %d: delay unbounded", i, pos[i])
		}
	}
	if !reordered {
		t.Fatal("Delay=0.5 never reordered anything")
	}
}
