package faultinject

import (
	"math/rand"
	"sync"
	"time"
)

// BurstConfig configures an overload burst: N concurrent requests with
// configurable arrival pacing and jitter. A zero Arrival with zero
// Jitter is a thundering herd — every request fires at once.
type BurstConfig struct {
	// N is the number of concurrent requests (default 32).
	N int
	// Arrival is the base inter-arrival gap: request i starts after
	// i×Arrival (plus jitter).
	Arrival time.Duration
	// Jitter adds a uniform random extra in [0, Jitter) to each request's
	// start offset, breaking lock-step arrival.
	Jitter time.Duration
	// Seed seeds the jitter draw; bursts are deterministic for a given
	// seed (modulo goroutine scheduling).
	Seed int64
	// Sleep performs arrival delays (default time.Sleep). Tests inject a
	// recording or virtual-clock hook to keep burst tests fast and
	// deterministic.
	Sleep func(time.Duration)
}

// BurstReport aggregates one burst's outcomes.
type BurstReport struct {
	// Launched is how many requests ran (= cfg.N).
	Launched int
	// Failed is how many returned a non-nil error.
	Failed int
	// Errs holds each non-nil error, in completion order.
	Errs []error
}

// Burst fires cfg.N concurrent invocations of fn — fn(i) receives the
// request index — honoring the configured arrival schedule, and blocks
// until every invocation returns. fn must be safe for concurrent use;
// overload tests point it at a serving layer and assert on the shed
// behavior the report surfaces.
func Burst(cfg BurstConfig, fn func(i int) error) BurstReport {
	if cfg.N <= 0 {
		cfg.N = 32
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	// The whole arrival schedule is drawn up front so the report is
	// reproducible for a seed regardless of completion order.
	rng := rand.New(rand.NewSource(cfg.Seed))
	offsets := make([]time.Duration, cfg.N)
	for i := range offsets {
		off := time.Duration(i) * cfg.Arrival
		if cfg.Jitter > 0 {
			off += time.Duration(rng.Int63n(int64(cfg.Jitter)))
		}
		offsets[i] = off
	}

	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		rep = BurstReport{Launched: cfg.N}
	)
	for i := 0; i < cfg.N; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if offsets[i] > 0 {
				sleep(offsets[i])
			}
			if err := fn(i); err != nil {
				mu.Lock()
				rep.Failed++
				rep.Errs = append(rep.Errs, err)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return rep
}
