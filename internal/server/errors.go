package server

import (
	"errors"
	"fmt"
)

// ErrOverloaded is the umbrella sentinel for every load-shedding decision
// this package makes: a shed answer's Err always matches it via errors.Is,
// alongside the specific reason below. Shedding is not an evaluation
// failure — the engine was never asked — so none of these match the core
// taxonomy; they are the serving layer's own vocabulary.
var ErrOverloaded = errors.New("server: overloaded")

// Specific shed reasons, each wrapping ErrOverloaded.
var (
	// ErrQueueFull means the admission queue was at capacity.
	ErrQueueFull = fmt.Errorf("%w: admission queue full", ErrOverloaded)
	// ErrClassShed means the request's priority class is shed at the
	// current queue fill (lower classes shed earlier as saturation
	// deepens).
	ErrClassShed = fmt.Errorf("%w: priority class shed at current saturation", ErrOverloaded)
	// ErrDeadlineBudget means the request's remaining deadline could not
	// cover the observed service-time estimate (including expected queue
	// wait), so evaluating it would only waste capacity on an answer the
	// caller would never see.
	ErrDeadlineBudget = fmt.Errorf("%w: remaining deadline below service-time estimate", ErrOverloaded)
	// ErrExpiredInQueue means the request was admitted but its deadline
	// budget ran out while it waited for a concurrency slot; the sweep
	// removed it instead of evaluating it.
	ErrExpiredInQueue = fmt.Errorf("%w: deadline budget expired while queued", ErrOverloaded)
	// ErrDraining means the server is shutting down gracefully: admission
	// is closed while in-flight and queued work finishes. It wraps
	// ErrOverloaded so front ends translate it to the same 503 +
	// Retry-After they use for load sheds — to the client, a draining
	// replica and a saturated one both mean "retry elsewhere, soon".
	ErrDraining = fmt.Errorf("%w: server draining", ErrOverloaded)
)

// ErrDrainTimeout is returned by Drain when its deadline elapses with
// work still in flight. It does not wrap ErrOverloaded: it is a report to
// the operator, not a shed answer.
var ErrDrainTimeout = errors.New("server: drain deadline exceeded with work in flight")
