package server

import (
	"context"
	"time"
)

// HedgeConfig parameterizes request hedging: racing a duplicate
// evaluation on a second concurrency slot when the primary straggles
// past the p95 of recent latencies. Hedging only fires at normal
// saturation and only when a spare slot is free, so it cannot steal
// capacity from queued work.
type HedgeConfig struct {
	// Disabled turns hedging off entirely.
	Disabled bool
	// DelayFactor scales the p95-based hedge delay (default 1.0: hedge
	// once the attempt has outlived 95% of recent evaluations).
	DelayFactor float64
	// MinDelay floors the hedge delay so cold-start estimates cannot
	// trigger immediate duplicates (default 1ms).
	MinDelay time.Duration
}

func (c HedgeConfig) withDefaults() HedgeConfig {
	if c.DelayFactor <= 0 {
		c.DelayFactor = 1
	}
	if c.MinDelay <= 0 {
		c.MinDelay = time.Millisecond
	}
	return c
}

// hedgeDelayLocked is the current hedge pacing: DelayFactor × p95 of
// the recent-latency window, floored at MinDelay.
func (s *Server) hedgeDelayLocked() time.Duration {
	d := time.Duration(s.cfg.Hedge.DelayFactor * float64(s.lat.p95()))
	if d < s.cfg.Hedge.MinDelay {
		d = s.cfg.Hedge.MinDelay
	}
	return d
}

// attemptResult is one attempt's outcome in the hedging race.
type attemptResult struct {
	p     float64
	err   error
	hedge bool
}

// evalHedged runs one evaluation, racing a hedged duplicate when the
// primary outlives the hedge delay, saturation is normal, and a spare
// concurrency slot exists. The first successful attempt wins and the
// loser is canceled through the shared evaluation context; if the first
// completion failed but a duplicate is still in flight, the duplicate
// gets its chance before the failure is reported. The caller holds the
// primary slot; the hedge acquires and releases its own.
func (s *Server) evalHedged(ctx context.Context, service string, params []float64, deadline time.Time) (float64, error) {
	evalCtx, cancel, cleanup := s.deadlineCtx(ctx, deadline)
	defer cleanup()

	// Buffered to both attempts so the loser never blocks on send: it
	// deposits its (canceled) result and exits — no goroutine leak.
	results := make(chan attemptResult, 2)
	go func() {
		p, err := s.eval.PfailCtx(evalCtx, service, params...)
		results <- attemptResult{p: p, err: err}
	}()

	var hedgeTimer <-chan time.Time
	s.mu.Lock()
	if !s.cfg.Hedge.Disabled && s.saturationLocked() == SatNormal {
		hedgeTimer = s.clock.After(s.hedgeDelayLocked())
	}
	s.mu.Unlock()

	pending := 1
	var firstErr error
	for pending > 0 {
		select {
		case r := <-results:
			pending--
			if r.err == nil {
				cancel()
				if r.hedge {
					s.mu.Lock()
					s.stats.HedgeWins++
					s.mu.Unlock()
				}
				return r.p, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
		case <-hedgeTimer:
			hedgeTimer = nil
			s.mu.Lock()
			if s.limiter.tryAcquire() {
				s.stats.HedgesLaunched++
				pending++
				go func() {
					p, err := s.eval.PfailCtx(evalCtx, service, params...)
					s.mu.Lock()
					s.limiter.release()
					s.dispatchLocked()
					s.mu.Unlock()
					results <- attemptResult{p: p, err: err, hedge: true}
				}()
			}
			s.mu.Unlock()
		}
	}
	return 0, firstErr
}
