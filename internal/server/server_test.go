package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"socrel/internal/core"
	"socrel/internal/linalg"
	socruntime "socrel/internal/runtime"
)

// stubEval is a swappable Evaluator for deterministic tests.
type stubEval struct {
	mu    sync.Mutex
	calls int
	fn    func(ctx context.Context, service string, params ...float64) (float64, error)
}

func (s *stubEval) PfailCtx(ctx context.Context, service string, params ...float64) (float64, error) {
	s.mu.Lock()
	s.calls++
	fn := s.fn
	s.mu.Unlock()
	return fn(ctx, service, params...)
}

func (s *stubEval) set(fn func(ctx context.Context, service string, params ...float64) (float64, error)) {
	s.mu.Lock()
	s.fn = fn
	s.mu.Unlock()
}

func (s *stubEval) callCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.calls
}

func constEval(p float64) *stubEval {
	return &stubEval{fn: func(context.Context, string, ...float64) (float64, error) { return p, nil }}
}

func checkInvariant(t *testing.T, ans socruntime.Answer) {
	t.Helper()
	if (ans.Kind == socruntime.Exact) != (ans.Err == nil) {
		t.Fatalf("exact ⇔ nil-error invariant violated: kind=%v err=%v", ans.Kind, ans.Err)
	}
	if ans.Kind == 0 {
		t.Fatal("answer must always carry an explicit kind tag")
	}
}

func TestServeExact(t *testing.T) {
	clock := socruntime.NewFakeClock(time.Unix(1000, 0))
	srv := New(constEval(0.125), Config{
		Service: "app",
		Hedge:   HedgeConfig{Disabled: true},
		Clock:   clock,
	})
	ans := srv.Serve(context.Background(), Request{})
	checkInvariant(t, ans)
	if ans.Kind != socruntime.Exact || ans.Pfail != 0.125 {
		t.Fatalf("got %+v, want Exact 0.125", ans)
	}
	if !ans.AsOf.Equal(clock.Now()) {
		t.Fatalf("AsOf = %v, want clock time %v", ans.AsOf, clock.Now())
	}
	st := srv.Stats()
	if st.Offered != 1 || st.Admitted != 1 || st.Exact != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Saturation != SatNormal {
		t.Fatalf("idle server saturation = %v, want normal", st.Saturation)
	}
}

func TestShedDeadlineBudget(t *testing.T) {
	clock := socruntime.NewFakeClock(time.Unix(1000, 0))
	srv := New(constEval(0.5), Config{
		Service: "app",
		Hedge:   HedgeConfig{Disabled: true},
		Clock:   clock,
	})
	// Default service-time estimate is 1ms; half that budget cannot work.
	ans := srv.Serve(context.Background(), Request{Timeout: 500 * time.Microsecond})
	checkInvariant(t, ans)
	if ans.Kind != socruntime.Unavailable {
		t.Fatalf("kind = %v, want Unavailable (nothing to degrade to yet)", ans.Kind)
	}
	if !errors.Is(ans.Err, ErrDeadlineBudget) || !errors.Is(ans.Err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrDeadlineBudget wrapping ErrOverloaded", ans.Err)
	}
	st := srv.Stats()
	if st.ShedDeadline != 1 || st.Admitted != 0 {
		t.Fatalf("stats = %+v, want one deadline shed and no admission", st)
	}
}

// saturate occupies the server's only concurrency slot with an
// evaluation parked on the returned gate, then enqueues n waiters (each
// with a 1h budget so WaitForTimers can sequence on their await timers).
func saturate(t *testing.T, srv *Server, eval *stubEval, clock *socruntime.FakeClock, n int) (gate chan struct{}, answers chan socruntime.Answer) {
	t.Helper()
	gate = make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	eval.set(func(ctx context.Context, _ string, _ ...float64) (float64, error) {
		once.Do(func() { close(started) })
		select {
		case <-gate:
			return 0.5, nil
		case <-ctx.Done():
			return 0, fmt.Errorf("%w: %w", core.ErrCanceled, ctx.Err())
		}
	})
	answers = make(chan socruntime.Answer, n+1)
	go func() { answers <- srv.Serve(context.Background(), Request{}) }()
	<-started // the slot is held
	eval.set(func(context.Context, string, ...float64) (float64, error) { return 0.5, nil })
	for i := 0; i < n; i++ {
		go func() {
			answers <- srv.Serve(context.Background(), Request{Timeout: time.Hour})
		}()
		clock.WaitForTimers(i + 1)
	}
	return gate, answers
}

func TestQueueFullAndClassShedding(t *testing.T) {
	clock := socruntime.NewFakeClock(time.Unix(1000, 0))
	eval := constEval(0.5)
	srv := New(eval, Config{
		Service:       "app",
		QueueCapacity: 4,
		Limiter:       LimiterConfig{Initial: 1, Min: 1, Max: 1},
		Hedge:         HedgeConfig{Disabled: true},
		Clock:         clock,
	})

	gate, answers := saturate(t, srv, eval, clock, 2)
	if sat := srv.Saturation(); sat != SatElevated {
		t.Fatalf("saturation at fill 0.5 = %v, want elevated", sat)
	}

	// Fill 0.5: best-effort sheds, interactive and batch still admitted.
	ans := srv.Serve(context.Background(), Request{Priority: BestEffort})
	checkInvariant(t, ans)
	if !errors.Is(ans.Err, ErrClassShed) {
		t.Fatalf("best-effort at fill 0.5: err = %v, want ErrClassShed", ans.Err)
	}

	// Third waiter brings fill to 0.75: batch sheds too.
	go func() { answers <- srv.Serve(context.Background(), Request{Timeout: time.Hour}) }()
	clock.WaitForTimers(3)
	if sat := srv.Saturation(); sat != SatSevere {
		t.Fatalf("saturation at fill 0.75 = %v, want severe", sat)
	}
	ans = srv.Serve(context.Background(), Request{Priority: Batch})
	checkInvariant(t, ans)
	if !errors.Is(ans.Err, ErrClassShed) {
		t.Fatalf("batch at fill 0.75: err = %v, want ErrClassShed", ans.Err)
	}

	// Fourth waiter fills the queue: even interactive sheds.
	go func() { answers <- srv.Serve(context.Background(), Request{Timeout: time.Hour}) }()
	clock.WaitForTimers(4)
	if sat := srv.Saturation(); sat != SatOverload {
		t.Fatalf("saturation at full queue = %v, want overload", sat)
	}
	ans = srv.Serve(context.Background(), Request{Priority: Interactive})
	checkInvariant(t, ans)
	if !errors.Is(ans.Err, ErrQueueFull) {
		t.Fatalf("interactive at full queue: err = %v, want ErrQueueFull", ans.Err)
	}

	// Release the slot: the backlog drains and every admitted request
	// completes exactly.
	close(gate)
	for i := 0; i < 5; i++ {
		got := <-answers
		checkInvariant(t, got)
		if got.Kind != socruntime.Exact {
			t.Fatalf("drained answer %d = %+v, want Exact", i, got)
		}
	}
	st := srv.Stats()
	if st.ShedClass != 2 || st.ShedQueueFull != 1 || st.Exact != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.QueueDepth != 0 || st.Inflight != 0 {
		t.Fatalf("server not quiescent after drain: %+v", st)
	}
}

func TestExpiredWhileQueued(t *testing.T) {
	clock := socruntime.NewFakeClock(time.Unix(1000, 0))
	eval := constEval(0.5)
	srv := New(eval, Config{
		Service: "app",
		Limiter: LimiterConfig{Initial: 1, Min: 1, Max: 1},
		Hedge:   HedgeConfig{Disabled: true},
		Clock:   clock,
	})

	gate := make(chan struct{})
	started := make(chan struct{})
	eval.set(func(ctx context.Context, _ string, _ ...float64) (float64, error) {
		close(started)
		<-gate
		return 0.5, nil
	})
	first := make(chan socruntime.Answer, 1)
	go func() { first <- srv.Serve(context.Background(), Request{}) }()
	<-started

	// Queued request with a 50ms budget; the slot never frees in time.
	queued := make(chan socruntime.Answer, 1)
	go func() { queued <- srv.Serve(context.Background(), Request{Timeout: 50 * time.Millisecond}) }()
	clock.WaitForTimers(1)
	clock.Advance(60 * time.Millisecond)

	ans := <-queued
	checkInvariant(t, ans)
	if !errors.Is(ans.Err, ErrExpiredInQueue) {
		t.Fatalf("err = %v, want ErrExpiredInQueue", ans.Err)
	}
	if srv.Stats().SweptExpired != 1 {
		t.Fatalf("stats = %+v, want SweptExpired 1", srv.Stats())
	}

	eval.set(func(context.Context, string, ...float64) (float64, error) { return 0.5, nil })
	close(gate)
	if got := <-first; got.Kind != socruntime.Exact {
		t.Fatalf("blocker answer = %+v, want Exact", got)
	}
}

func TestSweepExpiredOnDispatch(t *testing.T) {
	clock := socruntime.NewFakeClock(time.Unix(1000, 0))
	eval := constEval(0.5)
	srv := New(eval, Config{
		Service:         "app",
		Limiter:         LimiterConfig{Initial: 1, Min: 1, Max: 1},
		Hedge:           HedgeConfig{Disabled: true},
		InitialEstimate: 10 * time.Millisecond,
		Clock:           clock,
	})

	gate := make(chan struct{})
	started := make(chan struct{})
	eval.set(func(ctx context.Context, _ string, _ ...float64) (float64, error) {
		close(started)
		<-gate
		return 0.5, nil
	})
	first := make(chan socruntime.Answer, 1)
	go func() { first <- srv.Serve(context.Background(), Request{}) }()
	<-started
	eval.set(func(context.Context, string, ...float64) (float64, error) { return 0.5, nil })

	// Budget 30ms passes admission (estimate 10ms), but after 25ms the
	// remaining 5ms cannot cover the estimate: dispatch must sweep it
	// rather than grant it a doomed slot.
	queued := make(chan socruntime.Answer, 1)
	go func() { queued <- srv.Serve(context.Background(), Request{Timeout: 30 * time.Millisecond}) }()
	clock.WaitForTimers(1)
	clock.Advance(25 * time.Millisecond) // await timer (30ms) has not fired
	close(gate)

	ans := <-queued
	checkInvariant(t, ans)
	if !errors.Is(ans.Err, ErrExpiredInQueue) {
		t.Fatalf("err = %v, want ErrExpiredInQueue via dispatch sweep", ans.Err)
	}
	if got := <-first; got.Kind != socruntime.Exact {
		t.Fatalf("blocker answer = %+v, want Exact", got)
	}
	if st := srv.Stats(); st.SweptExpired != 1 {
		t.Fatalf("stats = %+v, want SweptExpired 1", st)
	}
}

func TestDegradationLadder(t *testing.T) {
	clock := socruntime.NewFakeClock(time.Unix(1000, 0))
	eval := constEval(0.2)
	srv := New(eval, Config{
		Service: "app",
		Hedge:   HedgeConfig{Disabled: true},
		Clock:   clock,
	})
	ctx := context.Background()

	// Fresh failure with no history: Unavailable.
	eval.set(func(context.Context, string, ...float64) (float64, error) {
		return 0, errors.New("boom")
	})
	ans := srv.Serve(ctx, Request{Params: []float64{9}})
	checkInvariant(t, ans)
	if ans.Kind != socruntime.Unavailable {
		t.Fatalf("no history: kind = %v, want Unavailable", ans.Kind)
	}

	// Exact answer seeds the per-point snapshot and the bounds window.
	eval.set(func(context.Context, string, ...float64) (float64, error) { return 0.2, nil })
	ans = srv.Serve(ctx, Request{Params: []float64{1}})
	if ans.Kind != socruntime.Exact {
		t.Fatalf("seed answer = %+v, want Exact", ans)
	}

	// Same point fails later: Stale with age and cause.
	clock.Advance(5 * time.Second)
	cause := errors.New("backend down")
	eval.set(func(context.Context, string, ...float64) (float64, error) { return 0, cause })
	ans = srv.Serve(ctx, Request{Params: []float64{1}})
	checkInvariant(t, ans)
	if ans.Kind != socruntime.Stale || ans.Pfail != 0.2 {
		t.Fatalf("got %+v, want Stale 0.2", ans)
	}
	if ans.Age != 5*time.Second {
		t.Fatalf("stale age = %v, want 5s", ans.Age)
	}
	if !errors.Is(ans.Err, cause) {
		t.Fatalf("stale err = %v, want the causing error", ans.Err)
	}

	// Solver residual: Bounded interval centered on the snapshot.
	eval.set(func(context.Context, string, ...float64) (float64, error) {
		return 0, &linalg.NoConvergenceError{Iterations: 10, Residual: 0.05}
	})
	ans = srv.Serve(ctx, Request{Params: []float64{1}})
	checkInvariant(t, ans)
	if ans.Kind != socruntime.Bounded {
		t.Fatalf("kind = %v, want Bounded from solver residual", ans.Kind)
	}
	if math.Abs(ans.Lo-0.15) > 1e-12 || math.Abs(ans.Hi-0.25) > 1e-12 || ans.Pfail != ans.Hi {
		t.Fatalf("bounds = [%v, %v] pfail %v, want [0.15, 0.25] 0.25", ans.Lo, ans.Hi, ans.Pfail)
	}

	// Unseen point with history elsewhere: Bounded from the sliding
	// window of recent exact answers.
	eval.set(func(context.Context, string, ...float64) (float64, error) {
		return 0, errors.New("boom")
	})
	ans = srv.Serve(ctx, Request{Params: []float64{2}})
	checkInvariant(t, ans)
	if ans.Kind != socruntime.Bounded {
		t.Fatalf("kind = %v, want Bounded from exact-answer window", ans.Kind)
	}
	if ans.Lo != 0.2 || ans.Hi != 0.2 {
		t.Fatalf("window bounds = [%v, %v], want [0.2, 0.2]", ans.Lo, ans.Hi)
	}

	st := srv.Stats()
	if st.Exact != 1 || st.Stale != 1 || st.Bounded != 2 || st.Unavailable != 1 {
		t.Fatalf("ladder stats = %+v", st)
	}
}

func TestHedgeWinsAndCancelsLoser(t *testing.T) {
	clock := socruntime.NewFakeClock(time.Unix(1000, 0))
	eval := &stubEval{}
	primaryStarted := make(chan struct{})
	primaryCanceled := make(chan error, 1)
	eval.set(func(ctx context.Context, _ string, _ ...float64) (float64, error) {
		eval.mu.Lock()
		call := eval.calls
		eval.mu.Unlock()
		if call == 1 {
			// Primary: a straggler that only finishes when canceled.
			close(primaryStarted)
			<-ctx.Done()
			primaryCanceled <- ctx.Err()
			return 0, fmt.Errorf("%w: %w", core.ErrCanceled, ctx.Err())
		}
		return 0.25, nil // hedge wins instantly
	})
	srv := New(eval, Config{
		Service: "app",
		Limiter: LimiterConfig{Initial: 2, Min: 1, Max: 2},
		Clock:   clock,
	})

	done := make(chan socruntime.Answer, 1)
	go func() { done <- srv.Serve(context.Background(), Request{}) }()
	// The primary attempt must be in flight before the hedge timer fires,
	// or the duplicate could reach the stub first and take its role.
	<-primaryStarted
	// The only pending timer is the hedge timer (delay = max(p95, 1ms)).
	clock.WaitForTimers(1)
	clock.Advance(2 * time.Millisecond)

	ans := <-done
	checkInvariant(t, ans)
	if ans.Kind != socruntime.Exact || ans.Pfail != 0.25 {
		t.Fatalf("got %+v, want the hedge's Exact 0.25", ans)
	}
	if err := <-primaryCanceled; err == nil {
		t.Fatal("losing primary attempt was not canceled")
	}
	st := srv.Stats()
	if st.HedgesLaunched != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats = %+v, want one hedge launched and won", st)
	}
	if eval.callCount() != 2 {
		t.Fatalf("eval calls = %d, want 2 (primary + hedge)", eval.callCount())
	}
	if st.Inflight != 0 {
		t.Fatalf("inflight = %d after hedged request, want 0", st.Inflight)
	}
}

func TestNoHedgeAboveNormalSaturation(t *testing.T) {
	clock := socruntime.NewFakeClock(time.Unix(1000, 0))
	eval := constEval(0.5)
	srv := New(eval, Config{
		Service:       "app",
		QueueCapacity: 4,
		Limiter:       LimiterConfig{Initial: 2, Min: 1, Max: 2},
		Clock:         clock,
	})
	// A parked (deadline-less) waiter lifts fill to 0.25 = elevated.
	// White-box: the waiter is synthetic, so drive evalHedged directly
	// with a manually acquired slot instead of going through Serve.
	srv.mu.Lock()
	srv.queue.push(&waiter{pri: Interactive, enq: clock.Now(), ready: make(chan error, 1)})
	srv.limiter.tryAcquire()
	srv.mu.Unlock()
	if sat := srv.Saturation(); sat != SatElevated {
		t.Fatalf("saturation = %v, want elevated", sat)
	}

	gate := make(chan struct{})
	started := make(chan struct{})
	eval.set(func(ctx context.Context, _ string, _ ...float64) (float64, error) {
		close(started)
		<-gate
		return 0.5, nil
	})
	type result struct {
		p   float64
		err error
	}
	done := make(chan result, 1)
	go func() {
		p, err := srv.evalHedged(context.Background(), "app", nil, time.Time{})
		done <- result{p, err}
	}()
	<-started
	// No hedge timer may exist: an Advance that would have fired any
	// hedge delay launches nothing.
	clock.Advance(time.Hour)
	close(gate)
	if r := <-done; r.err != nil || r.p != 0.5 {
		t.Fatalf("evalHedged = (%v, %v), want (0.5, nil)", r.p, r.err)
	}
	if st := srv.Stats(); st.HedgesLaunched != 0 {
		t.Fatalf("hedges launched at elevated saturation: %+v", st)
	}
	if eval.callCount() != 1 {
		t.Fatalf("eval calls = %d, want 1 (no duplicate)", eval.callCount())
	}
}

func TestDeadlineCancelsRunningEvaluation(t *testing.T) {
	clock := socruntime.NewFakeClock(time.Unix(1000, 0))
	eval := &stubEval{}
	eval.set(func(ctx context.Context, _ string, _ ...float64) (float64, error) {
		<-ctx.Done()
		return 0, fmt.Errorf("%w: %w", core.ErrCanceled, ctx.Err())
	})
	srv := New(eval, Config{
		Service:         "app",
		Limiter:         LimiterConfig{Initial: 4, Min: 1, Max: 4},
		Hedge:           HedgeConfig{Disabled: true},
		InitialEstimate: 5 * time.Millisecond,
		Clock:           clock,
	})
	done := make(chan socruntime.Answer, 1)
	go func() { done <- srv.Serve(context.Background(), Request{Timeout: 10 * time.Millisecond}) }()
	// The only timer is the deadline watcher.
	clock.WaitForTimers(1)
	clock.Advance(11 * time.Millisecond)

	ans := <-done
	checkInvariant(t, ans)
	if ans.Kind != socruntime.Unavailable || !errors.Is(ans.Err, core.ErrCanceled) {
		t.Fatalf("got %+v, want Unavailable with a cancellation cause", ans)
	}
	// A deadline expiry is a capacity signal: the limiter must back off.
	if st := srv.Stats(); st.Limit >= 4 {
		t.Fatalf("limit = %v after deadline expiry, want < 4 (multiplicative decrease)", st.Limit)
	}
}

func TestContextCancelWhileQueued(t *testing.T) {
	clock := socruntime.NewFakeClock(time.Unix(1000, 0))
	eval := constEval(0.5)
	srv := New(eval, Config{
		Service: "app",
		Limiter: LimiterConfig{Initial: 1, Min: 1, Max: 1},
		Hedge:   HedgeConfig{Disabled: true},
		Clock:   clock,
	})
	gate := make(chan struct{})
	started := make(chan struct{})
	eval.set(func(ctx context.Context, _ string, _ ...float64) (float64, error) {
		close(started)
		<-gate
		return 0.5, nil
	})
	first := make(chan socruntime.Answer, 1)
	go func() { first <- srv.Serve(context.Background(), Request{}) }()
	<-started
	eval.set(func(context.Context, string, ...float64) (float64, error) { return 0.5, nil })

	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan socruntime.Answer, 1)
	go func() { queued <- srv.Serve(ctx, Request{Timeout: time.Hour}) }()
	clock.WaitForTimers(1)
	cancel()

	ans := <-queued
	checkInvariant(t, ans)
	if !errors.Is(ans.Err, core.ErrCanceled) || !errors.Is(ans.Err, context.Canceled) {
		t.Fatalf("err = %v, want core.ErrCanceled wrapping context.Canceled", ans.Err)
	}
	if st := srv.Stats(); st.CanceledWaiting != 1 {
		t.Fatalf("stats = %+v, want CanceledWaiting 1", st)
	}
	close(gate)
	if got := <-first; got.Kind != socruntime.Exact {
		t.Fatalf("blocker answer = %+v, want Exact", got)
	}
}

func TestServeBatchFallbackLoop(t *testing.T) {
	clock := socruntime.NewFakeClock(time.Unix(1000, 0))
	eval := &stubEval{}
	eval.set(func(_ context.Context, _ string, params ...float64) (float64, error) {
		if params[0] == 2 {
			return 0, core.ErrDefectiveFlow
		}
		return 0.1 * params[0], nil
	})
	srv := New(eval, Config{
		Service: "app",
		Hedge:   HedgeConfig{Disabled: true},
		Clock:   clock,
	})
	out := srv.ServeBatch(context.Background(), BatchRequest{
		ParamSets: [][]float64{{1}, {2}, {3}},
		Priority:  Batch,
	})
	if len(out) != 3 {
		t.Fatalf("got %d answers, want 3", len(out))
	}
	for i, ans := range out {
		checkInvariant(t, ans)
		_ = i
	}
	if out[0].Kind != socruntime.Exact || out[0].Pfail != 0.1 {
		t.Fatalf("out[0] = %+v, want Exact 0.1", out[0])
	}
	if out[1].Kind == socruntime.Exact {
		t.Fatalf("out[1] = %+v, want a degraded tag for the defective point", out[1])
	}
	if !errors.Is(out[1].Err, core.ErrDefectiveFlow) {
		t.Fatalf("out[1].Err = %v, want the defect cause", out[1].Err)
	}
	if out[2].Kind != socruntime.Exact || math.Abs(out[2].Pfail-0.3) > 1e-12 {
		t.Fatalf("out[2] = %+v, want Exact 0.3", out[2])
	}
}

// stubBatchEval adds the batch fast path with the engine's NaN
// partial-results contract.
type stubBatchEval struct {
	stubEval
	batch func(ctx context.Context, service string, sets [][]float64) ([]float64, error)
}

func (s *stubBatchEval) PfailBatchCtx(ctx context.Context, service string, sets [][]float64) ([]float64, error) {
	return s.batch(ctx, service, sets)
}

func TestServeBatchKernelNaNContract(t *testing.T) {
	clock := socruntime.NewFakeClock(time.Unix(1000, 0))
	eval := &stubBatchEval{
		batch: func(_ context.Context, _ string, sets [][]float64) ([]float64, error) {
			ps := make([]float64, len(sets))
			for i := range ps {
				ps[i] = 0.01 * float64(i)
			}
			ps[1] = math.NaN()
			return ps, core.ErrDefectiveFlow
		},
	}
	eval.set(func(context.Context, string, ...float64) (float64, error) { return 0, nil })
	srv := New(eval, Config{
		Service: "app",
		Hedge:   HedgeConfig{Disabled: true},
		Clock:   clock,
	})
	out := srv.ServeBatch(context.Background(), BatchRequest{ParamSets: [][]float64{{1}, {2}, {3}}})
	for _, ans := range out {
		checkInvariant(t, ans)
	}
	if out[0].Kind != socruntime.Exact || out[2].Kind != socruntime.Exact {
		t.Fatalf("partial results must stay exact: %+v / %+v", out[0], out[2])
	}
	if out[1].Kind == socruntime.Exact || !errors.Is(out[1].Err, core.ErrDefectiveFlow) {
		t.Fatalf("NaN point must degrade with the batch error: %+v", out[1])
	}
}

func TestServeBatchShedDegradesEveryPoint(t *testing.T) {
	clock := socruntime.NewFakeClock(time.Unix(1000, 0))
	srv := New(constEval(0.5), Config{
		Service: "app",
		Hedge:   HedgeConfig{Disabled: true},
		Clock:   clock,
	})
	out := srv.ServeBatch(context.Background(), BatchRequest{
		ParamSets: [][]float64{{1}, {2}},
		Timeout:   time.Microsecond, // below the service-time estimate
	})
	if len(out) != 2 {
		t.Fatalf("got %d answers, want 2", len(out))
	}
	for i, ans := range out {
		checkInvariant(t, ans)
		if !errors.Is(ans.Err, ErrDeadlineBudget) {
			t.Fatalf("point %d err = %v, want ErrDeadlineBudget", i, ans.Err)
		}
	}
}
