package server

import (
	"fmt"
	"testing"
	"time"

	"socrel/internal/core"
)

func testLimiter(initial, min, max int) *aimdLimiter {
	return newLimiter(LimiterConfig{
		Initial:       initial,
		Min:           min,
		Max:           max,
		LatencyTarget: 10 * time.Millisecond,
		Backoff:       0.5,
	})
}

func TestLimiterShrinksUnderLatencyAndRecovers(t *testing.T) {
	l := testLimiter(8, 1, 16)

	// Injected latency over target: multiplicative decrease.
	l.observe(100*time.Millisecond, nil)
	if l.limit != 4 {
		t.Fatalf("limit after one slow completion = %v, want 4 (8 × 0.5)", l.limit)
	}
	for i := 0; i < 10; i++ {
		l.observe(100*time.Millisecond, nil)
	}
	if l.limit != 1 {
		t.Fatalf("sustained latency should shrink to Min=1, got %v", l.limit)
	}

	// Latency back under target: additive recovery, 1/limit per success.
	l.observe(time.Millisecond, nil)
	if l.limit != 2 {
		t.Fatalf("first recovery step = %v, want 2 (1 + 1/1)", l.limit)
	}
	prev := l.limit
	for i := 0; i < 200; i++ {
		l.observe(time.Millisecond, nil)
		if l.limit < prev {
			t.Fatalf("recovery must be monotone, %v -> %v", prev, l.limit)
		}
		prev = l.limit
	}
	if l.limit != 16 {
		t.Fatalf("full recovery should reach Max=16, got %v", l.limit)
	}
	l.observe(time.Millisecond, nil)
	if l.limit != 16 {
		t.Fatalf("limit must clamp at Max, got %v", l.limit)
	}
}

func TestLimiterBacksOffOnCancellation(t *testing.T) {
	l := testLimiter(8, 1, 16)
	l.observe(time.Millisecond, fmt.Errorf("wrap: %w", core.ErrCanceled))
	if l.limit != 4 {
		t.Fatalf("deadline/cancel completion should back off, limit = %v, want 4", l.limit)
	}
}

func TestLimiterIgnoresDefectErrors(t *testing.T) {
	l := testLimiter(8, 1, 16)
	l.observe(time.Millisecond, core.ErrDefectiveFlow)
	l.observe(100*time.Millisecond, core.ErrNonFinite)
	if l.limit != 8 {
		t.Fatalf("defect errors carry no capacity signal, limit = %v, want 8", l.limit)
	}
}

func TestLimiterAcquireRelease(t *testing.T) {
	l := testLimiter(2, 1, 2)
	if !l.tryAcquire() || !l.tryAcquire() {
		t.Fatal("window of 2 should grant two slots")
	}
	if l.tryAcquire() {
		t.Fatal("third acquire must fail at limit 2")
	}
	l.release()
	if !l.tryAcquire() {
		t.Fatal("released slot should be grantable again")
	}
	if l.inflight != 2 {
		t.Fatalf("inflight = %d, want 2", l.inflight)
	}
}

func TestLimiterDefaults(t *testing.T) {
	l := newLimiter(LimiterConfig{})
	if l.cfg.Min != 1 || l.cfg.Max < l.cfg.Min || l.cfg.Initial < l.cfg.Min {
		t.Fatalf("bad defaults: %+v", l.cfg)
	}
	if l.cfg.LatencyTarget != 50*time.Millisecond || l.cfg.Backoff != 0.9 {
		t.Fatalf("bad defaults: %+v", l.cfg)
	}
}

func TestLatencyDigestEstimateAndP95(t *testing.T) {
	d := newLatencyDigest(time.Millisecond, 0.5, 8)
	if d.p95() != time.Millisecond {
		t.Fatalf("empty digest p95 should fall back to estimate, got %v", d.p95())
	}
	d.observe(3 * time.Millisecond)
	if d.estimate != 2*time.Millisecond {
		t.Fatalf("EWMA after one sample = %v, want 2ms", d.estimate)
	}
	// Window of identical samples with one outlier: p95 picks the high tail.
	for i := 0; i < 7; i++ {
		d.observe(time.Millisecond)
	}
	d.observe(100 * time.Millisecond) // overwrites oldest; window now has the outlier
	if p := d.p95(); p != 100*time.Millisecond {
		t.Fatalf("p95 with outlier = %v, want 100ms", p)
	}
	d.observe(-time.Second) // negative clamps to zero, must not corrupt the ring
	if d.estimate < 0 {
		t.Fatalf("estimate went negative: %v", d.estimate)
	}
}
