// Package server is the overload-resilient serving layer: a
// concurrency-limited prediction front end that keeps the engine
// answering when offered load exceeds capacity. It wraps any evaluator
// (core.CompiledAssembly in production, core.Evaluator for assemblies
// outside the compiled domain) behind four cooperating mechanisms:
//
//   - a bounded, deadline-aware admission queue (queue.go): requests
//     whose remaining deadline cannot cover the observed service-time
//     estimate are shed at the door, queued entries whose budget expires
//     are swept at every dispatch, and the pop order adapts from FIFO to
//     LIFO as the backlog deepens;
//   - an AIMD concurrency limiter (limiter.go) sizing the in-flight
//     window from measured latency, so capacity tracks the hardware and
//     the workload rather than a static GOMAXPROCS guess;
//   - priority classes with per-class shedding thresholds: best-effort
//     traffic is shed first, interactive last;
//   - request hedging (hedge.go): when the system is unsaturated and a
//     spare slot exists, a straggling evaluation is raced against a
//     duplicate on a second pooled session after a p95-based delay, and
//     the loser is canceled.
//
// Every request gets a tagged runtime.Answer instead of a silent
// timeout: as saturation deepens the ladder downgrades Exact → Stale
// (the per-point snapshot of the last exact answer) → Bounded (a
// solver-residual interval via runtime.Degrade, or the sliding min/max
// of recent exact answers) → Unavailable, and the exact ⇔ nil-error
// invariant of the runtime package holds throughout.
//
// All time-dependent behavior runs against runtime.Clock, so queue,
// limiter, and hedging tests are deterministic with a FakeClock and no
// wall-clock sleeps.
package server

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"socrel/internal/core"
	socruntime "socrel/internal/runtime"
)

// Evaluator is the prediction backend: *core.CompiledAssembly and
// *core.Evaluator both satisfy it.
type Evaluator interface {
	PfailCtx(ctx context.Context, service string, params ...float64) (float64, error)
}

// BatchEvaluator is the optional batch fast path; when the backend
// provides it (core.CompiledAssembly does), ServeBatch routes whole
// parameter grids through it instead of looping single evaluations.
type BatchEvaluator interface {
	PfailBatchCtx(ctx context.Context, service string, paramSets [][]float64) ([]float64, error)
}

// ClassConfig parameterizes one priority class.
type ClassConfig struct {
	// ShedFill is the queue fill fraction at or above which new requests
	// of this class are shed (0 picks the class default: interactive 1.0,
	// batch 0.75, best-effort 0.5; 1.0 means "only when the queue is
	// full", which the queue-full check handles first).
	ShedFill float64
}

// Config parameterizes a Server.
type Config struct {
	// Service is the default evaluation target for requests that leave
	// Request.Service empty.
	Service string
	// QueueCapacity bounds the admission queue (default 64).
	QueueCapacity int
	// LIFODepth is the backlog depth above which the queue pops newest
	// first (default QueueCapacity/4).
	LIFODepth int
	// Limiter configures the AIMD concurrency limiter.
	Limiter LimiterConfig
	// Hedge configures request hedging.
	Hedge HedgeConfig
	// Classes overrides per-class shed thresholds, indexed by Priority.
	Classes [3]ClassConfig
	// InitialEstimate seeds the service-time estimate before any
	// completion has been observed (default 1ms).
	InitialEstimate time.Duration
	// EstimateDecay is the EWMA factor in (0, 1] for the service-time
	// estimate (default 0.2).
	EstimateDecay float64
	// StaleCapacity bounds the per-point snapshot store backing Stale
	// answers (default 4096 entries; the store is reset wholesale at
	// capacity, like the engine memo).
	StaleCapacity int
	// BoundsWindow is how many recent exact answers feed the per-scope
	// [min, max] interval used for Bounded answers when no per-point
	// snapshot exists (default 64).
	BoundsWindow int
	// Clock drives every queue, limiter, and hedging decision (default
	// the wall clock).
	Clock socruntime.Clock
	// OnOutcome, when set, receives one Outcome for every Serve request
	// whose evaluation actually ran (shed or expired requests emit
	// nothing — they observed the server, not the model). It is called
	// outside the server's lock, so calling back into the server is
	// safe. This is the outcome stream estimation layers consume.
	OnOutcome func(Outcome)
}

// Outcome describes one completed evaluation, as published to
// Config.OnOutcome: what was evaluated, whether it succeeded, and how
// long it took on the server's clock.
type Outcome struct {
	// Service is the evaluation target and Scope the request's scope.
	Service, Scope string
	// Success reports whether the evaluation produced an exact answer.
	Success bool
	// Latency is the measured evaluation latency.
	Latency time.Duration
	// At is when the evaluation completed, on the server's clock.
	At time.Time
}

// Saturation summarizes how deep into overload the server is, derived
// from the queue fill. It is what gates hedging and (through the class
// thresholds) shedding.
type Saturation int

// Saturation levels.
const (
	// SatNormal: shallow backlog; hedging allowed.
	SatNormal Saturation = iota
	// SatElevated: backlog building; hedging disabled (a hedge doubles
	// load exactly when capacity is scarce).
	SatElevated
	// SatSevere: best-effort and batch classes shedding.
	SatSevere
	// SatOverload: queue full; everything sheds.
	SatOverload
)

func (s Saturation) String() string {
	switch s {
	case SatNormal:
		return "normal"
	case SatElevated:
		return "elevated"
	case SatSevere:
		return "severe"
	case SatOverload:
		return "overload"
	default:
		return "invalid"
	}
}

// Queue fill fractions at which saturation levels begin.
const (
	elevatedFill = 0.25
	severeFill   = 0.75
)

// Request is one prediction request.
type Request struct {
	// Service names the evaluation target (default Config.Service).
	Service string
	// Scope partitions the stale-answer store. Callers multiplexing
	// several models through one server (e.g. per-request artifact
	// dispatch) must set it to the model's identity, or degraded answers
	// computed for one model could serve another's requests.
	Scope string
	// Params are the actual parameters.
	Params []float64
	// Priority classes the request for shedding (zero = Interactive).
	Priority Priority
	// Timeout is the request's deadline budget measured on the server's
	// clock (0 = none beyond the context's own deadline). Prefer it over
	// a context deadline when the server runs on a FakeClock.
	Timeout time.Duration
}

// BatchRequest is one batched prediction request; the whole grid is
// admitted as a single queue unit and evaluated through the backend's
// batch kernel when available.
type BatchRequest struct {
	// Service names the evaluation target (default Config.Service).
	Service string
	// Scope partitions the stale-answer store (see Request.Scope).
	Scope string
	// ParamSets are the parameter points.
	ParamSets [][]float64
	// Priority classes the request (zero = Interactive; batch sweeps
	// typically want Batch).
	Priority Priority
	// Timeout is the whole batch's deadline budget on the server clock.
	Timeout time.Duration
}

// Stats is a point-in-time snapshot of the server's counters and gauges.
type Stats struct {
	// Offered counts every request presented to Serve/ServeBatch (batch
	// requests count once).
	Offered uint64
	// Admitted counts requests that passed admission control.
	Admitted uint64
	// Answer-kind counters over all served requests (batch requests
	// count per point).
	Exact, Stale, Bounded, Unavailable uint64
	// Shed reasons.
	ShedQueueFull, ShedClass, ShedDeadline, SweptExpired, CanceledWaiting uint64
	// ShedDraining counts requests refused because the server is
	// draining for shutdown.
	ShedDraining uint64
	// Hedging counters.
	HedgesLaunched, HedgeWins uint64
	// Repaired counts stale-store entries adopted via RepairSnapshot
	// (read-repair from a peer's fresher answer).
	Repaired uint64
	// Limit is the AIMD limiter's current window; Inflight and
	// QueueDepth are the live gauges.
	Limit      float64
	Inflight   int
	QueueDepth int
	// EstimatedLatency is the admission controller's service-time
	// estimate; HedgeDelay is the current p95-based hedge pacing.
	EstimatedLatency time.Duration
	HedgeDelay       time.Duration
	// Saturation is the current level.
	Saturation Saturation
}

// Server is the admission-controlled prediction front end. Methods are
// safe for concurrent use by any number of goroutines.
type Server struct {
	cfg   Config
	clock socruntime.Clock
	eval  Evaluator

	mu       sync.Mutex
	queue    *admissionQueue
	limiter  *aimdLimiter
	lat      *latencyDigest
	stale    map[string]socruntime.LastGood
	bounds   map[string]*boundsRing // per-scope rings of recent exact answers
	stats    Stats
	draining bool
	drained  chan struct{} // closed once draining and quiescent
}

// boundsRing is a sliding window of recent exact answers for one scope,
// backing the Bounded rung of the degradation ladder. Rings are per
// scope so interval bounds never mix answers from different models.
type boundsRing struct {
	vals []float64
	n, i int
}

func (r *boundsRing) push(p float64) {
	r.vals[r.i] = p
	r.i = (r.i + 1) % len(r.vals)
	if r.n < len(r.vals) {
		r.n++
	}
}

func (r *boundsRing) minMax() (lo, hi float64, ok bool) {
	if r == nil || r.n == 0 {
		return 0, 0, false
	}
	lo, hi = r.vals[0], r.vals[0]
	for _, p := range r.vals[:r.n] {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	return lo, hi, true
}

// New builds a Server over eval. eval must not be nil.
func New(eval Evaluator, cfg Config) *Server {
	if eval == nil {
		panic("server: nil evaluator")
	}
	if cfg.Clock == nil {
		cfg.Clock = socruntime.RealClock{}
	}
	if cfg.StaleCapacity <= 0 {
		cfg.StaleCapacity = 4096
	}
	if cfg.BoundsWindow <= 0 {
		cfg.BoundsWindow = 64
	}
	for pri, def := range [3]float64{1.0, severeFill, 0.5} {
		if cfg.Classes[pri].ShedFill <= 0 {
			cfg.Classes[pri].ShedFill = def
		}
	}
	cfg.Hedge = cfg.Hedge.withDefaults()
	return &Server{
		cfg:     cfg,
		clock:   cfg.Clock,
		eval:    eval,
		queue:   newAdmissionQueue(cfg.QueueCapacity, cfg.LIFODepth),
		limiter: newLimiter(cfg.Limiter),
		lat:     newLatencyDigest(cfg.InitialEstimate, cfg.EstimateDecay, 0),
		stale:   make(map[string]socruntime.LastGood),
		bounds:  make(map[string]*boundsRing),
	}
}

// Stats returns a snapshot of the server's counters and gauges.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Limit = s.limiter.limit
	st.Inflight = s.limiter.inflight
	st.QueueDepth = s.queue.depth
	st.EstimatedLatency = s.lat.estimate
	st.HedgeDelay = s.hedgeDelayLocked()
	st.Saturation = s.saturationLocked()
	return st
}

// Saturation returns the current saturation level.
func (s *Server) Saturation() Saturation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saturationLocked()
}

func (s *Server) saturationLocked() Saturation {
	switch fill := s.queue.fill(); {
	case s.queue.full():
		return SatOverload
	case fill >= severeFill:
		return SatSevere
	case fill >= elevatedFill:
		return SatElevated
	default:
		return SatNormal
	}
}

// Serve answers one prediction request, always returning a tagged
// answer: Exact on a successful evaluation, and a degraded tag (Stale,
// Bounded, or Unavailable, each carrying the causing error) when the
// request was shed, expired, or the evaluation failed. It never returns
// the zero Answer.
func (s *Server) Serve(ctx context.Context, req Request) socruntime.Answer {
	if ctx == nil {
		ctx = context.Background()
	}
	service := req.Service
	if service == "" {
		service = s.cfg.Service
	}
	key := snapshotKey(req.Scope, service, req.Params)
	now := s.clock.Now()
	deadline := s.effectiveDeadline(ctx, now, req.Timeout)

	s.mu.Lock()
	s.stats.Offered++
	if !req.Priority.valid() {
		req.Priority = BestEffort
	}
	if cause := s.admitLocked(req.Priority, deadline, now); cause != nil {
		ans := s.degradeLocked(req.Scope, key, cause, now)
		s.mu.Unlock()
		return ans
	}
	s.stats.Admitted++
	var w *waiter
	if s.queue.depth == 0 && s.limiter.tryAcquire() {
		// Fast path: empty queue and a free slot.
	} else {
		w = &waiter{pri: req.Priority, enq: now, deadline: deadline, ready: make(chan error, 1)}
		s.queue.push(w)
	}
	s.mu.Unlock()

	if w != nil {
		if cause := s.await(ctx, w); cause != nil {
			s.mu.Lock()
			ans := s.degradeLocked(req.Scope, key, cause, s.clock.Now())
			s.mu.Unlock()
			return ans
		}
	}

	// We hold one in-flight slot.
	start := s.clock.Now()
	p, err := s.evalHedged(ctx, service, req.Params, deadline)
	end := s.clock.Now()

	s.mu.Lock()
	s.limiter.observe(end.Sub(start), err)
	s.limiter.release()
	s.dispatchLocked()
	var ans socruntime.Answer
	if err == nil {
		s.lat.observe(end.Sub(start))
		s.recordExactLocked(req.Scope, key, p, end)
		s.stats.Exact++
		ans = socruntime.Answer{Kind: socruntime.Exact, Pfail: p, AsOf: end}
	} else {
		ans = s.degradeLocked(req.Scope, key, err, end)
	}
	s.mu.Unlock()

	if s.cfg.OnOutcome != nil {
		s.cfg.OnOutcome(Outcome{
			Service: service,
			Scope:   req.Scope,
			Success: err == nil,
			Latency: end.Sub(start),
			At:      end,
		})
	}
	return ans
}

// ServeBatch answers one batched request: the grid is admitted as a
// single unit, holds a single concurrency slot (the batch kernel brings
// its own internal parallelism), and is never hedged. The result always
// has len(ParamSets) entries; points the batch could not evaluate carry
// degraded tags, the rest are Exact.
func (s *Server) ServeBatch(ctx context.Context, req BatchRequest) []socruntime.Answer {
	if ctx == nil {
		ctx = context.Background()
	}
	service := req.Service
	if service == "" {
		service = s.cfg.Service
	}
	out := make([]socruntime.Answer, len(req.ParamSets))
	now := s.clock.Now()
	deadline := s.effectiveDeadline(ctx, now, req.Timeout)

	s.mu.Lock()
	s.stats.Offered++
	if !req.Priority.valid() {
		req.Priority = BestEffort
	}
	if cause := s.admitLocked(req.Priority, deadline, now); cause != nil {
		s.degradeBatchLocked(out, req.Scope, service, req.ParamSets, cause, now)
		s.mu.Unlock()
		return out
	}
	s.stats.Admitted++
	var w *waiter
	if s.queue.depth == 0 && s.limiter.tryAcquire() {
	} else {
		w = &waiter{pri: req.Priority, enq: now, deadline: deadline, ready: make(chan error, 1)}
		s.queue.push(w)
	}
	s.mu.Unlock()

	if w != nil {
		if cause := s.await(ctx, w); cause != nil {
			s.mu.Lock()
			s.degradeBatchLocked(out, req.Scope, service, req.ParamSets, cause, s.clock.Now())
			s.mu.Unlock()
			return out
		}
	}

	start := s.clock.Now()
	ps, err := s.evalBatch(ctx, service, req.ParamSets, deadline)
	end := s.clock.Now()

	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(req.ParamSets); n > 0 {
		per := end.Sub(start) / time.Duration(n)
		s.limiter.observe(per, err)
		if err == nil {
			s.lat.observe(per)
		}
	}
	s.limiter.release()
	s.dispatchLocked()
	if err == nil && ps == nil {
		err = fmt.Errorf("server: batch evaluator returned no results")
	}
	for i, params := range req.ParamSets {
		key := snapshotKey(req.Scope, service, params)
		if i < len(ps) && !math.IsNaN(ps[i]) {
			s.recordExactLocked(req.Scope, key, ps[i], end)
			s.stats.Exact++
			out[i] = socruntime.Answer{Kind: socruntime.Exact, Pfail: ps[i], AsOf: end}
			continue
		}
		cause := err
		if cause == nil {
			cause = fmt.Errorf("server: batch point %d not evaluated", i)
		}
		out[i] = s.degradeLocked(req.Scope, key, cause, end)
	}
	return out
}

// effectiveDeadline combines the context deadline with the request's
// clock-relative timeout, preferring the earlier. Context deadlines are
// wall-clock times; under a FakeClock only Request.Timeout is
// meaningful, which is why both exist.
func (s *Server) effectiveDeadline(ctx context.Context, now time.Time, timeout time.Duration) time.Time {
	var dl time.Time
	if d, ok := ctx.Deadline(); ok {
		dl = d
	}
	if timeout > 0 {
		if t := now.Add(timeout); dl.IsZero() || t.Before(dl) {
			dl = t
		}
	}
	return dl
}

// admitLocked is the admission controller: it sheds when the queue is
// full, when the request's class is over its fill threshold, and when
// the remaining deadline cannot cover the service-time estimate plus
// the expected queue wait.
func (s *Server) admitLocked(pri Priority, deadline, now time.Time) error {
	if s.draining {
		s.stats.ShedDraining++
		return ErrDraining
	}
	if s.queue.full() {
		s.stats.ShedQueueFull++
		return ErrQueueFull
	}
	if fill := s.queue.fill(); fill >= s.cfg.Classes[pri].ShedFill {
		s.stats.ShedClass++
		return fmt.Errorf("%w (class %s, fill %.2f)", ErrClassShed, pri, fill)
	}
	if !deadline.IsZero() && deadline.Sub(now) < s.requiredBudgetLocked() {
		s.stats.ShedDeadline++
		return ErrDeadlineBudget
	}
	return nil
}

// requiredBudgetLocked is the deadline budget a request needs right now:
// one service time, plus one per full window of queued work ahead of it.
func (s *Server) requiredBudgetLocked() time.Duration {
	est := s.lat.estimate
	waves := 1 + s.queue.depth/s.limiter.limitInt()
	return est * time.Duration(waves)
}

// await parks the caller until dispatch grants it a slot or sheds it.
// A nil return means the caller now holds a slot; non-nil is the shed
// cause (swept, canceled, or expired while waiting).
func (s *Server) await(ctx context.Context, w *waiter) error {
	var timer <-chan time.Time
	if !w.deadline.IsZero() {
		timer = s.clock.After(w.deadline.Sub(w.enq))
	}
	select {
	case cause := <-w.ready:
		return cause
	case <-ctx.Done():
		return s.abandon(w, fmt.Errorf("%w: %w while queued", core.ErrCanceled, ctx.Err()))
	case <-timer:
		return s.abandon(w, ErrExpiredInQueue)
	}
}

// abandon withdraws w from the queue after a cancellation or timer fire.
// If dispatch got there first the grant (or shed) in w.ready wins: a
// granted slot is handed back, a shed reason is returned as-is.
func (s *Server) abandon(w *waiter, cause error) error {
	s.mu.Lock()
	if s.queue.remove(w) {
		if cause == ErrExpiredInQueue {
			s.stats.SweptExpired++
		} else {
			s.stats.CanceledWaiting++
		}
		s.mu.Unlock()
		return cause
	}
	s.mu.Unlock()
	// Dispatch already decided; its decision is in the channel.
	granted := <-w.ready
	if granted == nil {
		s.mu.Lock()
		s.limiter.release()
		s.dispatchLocked()
		s.mu.Unlock()
		return cause
	}
	return granted
}

// dispatchLocked sweeps expired waiters and grants slots while the
// window has room. Called whenever a slot frees or the window grows.
func (s *Server) dispatchLocked() {
	now := s.clock.Now()
	est := s.lat.estimate
	s.queue.sweep(
		func(w *waiter) bool { return w.deadline.Sub(now) < est },
		func(w *waiter) {
			s.stats.SweptExpired++
			w.granted = true
			w.ready <- ErrExpiredInQueue
		},
	)
	for s.queue.depth > 0 && s.limiter.tryAcquire() {
		w := s.queue.pop()
		w.granted = true
		w.ready <- nil
	}
	s.maybeQuiesceLocked()
}

// maybeQuiesceLocked completes an in-progress drain once the last slot
// frees and the queue is empty. dispatchLocked runs at every release
// point, so this is checked exactly when quiescence can change.
func (s *Server) maybeQuiesceLocked() {
	if s.draining && s.drained != nil && s.limiter.inflight == 0 && s.queue.depth == 0 {
		close(s.drained)
		s.drained = nil
	}
}

// Draining reports whether the server has stopped admitting requests.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Drain gracefully shuts the server down: admission closes immediately
// (new requests degrade with ErrDraining, which front ends surface as
// 503 + Retry-After), while queued and in-flight work runs to
// completion. Drain blocks until the server is quiescent, the timeout
// elapses on the server's clock (ErrDrainTimeout), or ctx is canceled;
// it returns the final stats snapshot either way, so callers can emit a
// last accounting line. Drain is idempotent — concurrent callers all
// wait for the same quiescence.
func (s *Server) Drain(ctx context.Context, timeout time.Duration) (Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.drained = make(chan struct{})
		s.maybeQuiesceLocked()
	}
	done := s.drained
	s.mu.Unlock()
	if done == nil { // already quiescent
		return s.Stats(), nil
	}
	var timer <-chan time.Time
	if timeout > 0 {
		timer = s.clock.After(timeout)
	}
	select {
	case <-done:
		return s.Stats(), nil
	case <-ctx.Done():
		return s.Stats(), fmt.Errorf("server: drain interrupted: %w", ctx.Err())
	case <-timer:
		return s.Stats(), ErrDrainTimeout
	}
}

// Snapshot returns the per-point stale-store entry for (scope, service,
// params) — the value a degraded answer for that point would serve. An
// empty service resolves to the configured default, matching Serve.
func (s *Server) Snapshot(scope, service string, params []float64) (socruntime.LastGood, bool) {
	if service == "" {
		service = s.cfg.Service
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	lg, ok := s.stale[snapshotKey(scope, service, params)]
	return lg, ok
}

// RepairSnapshot folds an exact value learned elsewhere — typically a
// peer replica's fresher answer observed across a forward — into the
// stale store and the scope's bounds window, but only when it is
// strictly fresher than the local entry; read-repair must never roll a
// point backward. It reports whether the entry was adopted. Values
// outside [0, 1] or carrying no timestamp are rejected.
func (s *Server) RepairSnapshot(scope, service string, params []float64, lg socruntime.LastGood) bool {
	if service == "" {
		service = s.cfg.Service
	}
	if lg.At.IsZero() || math.IsNaN(lg.Pfail) || lg.Pfail < 0 || lg.Pfail > 1 {
		return false
	}
	key := snapshotKey(scope, service, params)
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.stale[key]; ok && !cur.At.Before(lg.At) {
		return false
	}
	if len(s.stale) >= s.cfg.StaleCapacity {
		clear(s.stale)
	}
	s.stale[key] = lg
	ring := s.bounds[scope]
	if ring == nil {
		if len(s.bounds) >= s.cfg.StaleCapacity {
			clear(s.bounds)
		}
		ring = &boundsRing{vals: make([]float64, s.cfg.BoundsWindow)}
		s.bounds[scope] = ring
	}
	ring.push(lg.Pfail)
	s.stats.Repaired++
	return true
}

// recordExactLocked refreshes the per-point snapshot and the scope's
// bounds window with one exact answer.
func (s *Server) recordExactLocked(scope, key string, p float64, at time.Time) {
	if len(s.stale) >= s.cfg.StaleCapacity {
		clear(s.stale)
	}
	s.stale[key] = socruntime.LastGood{Pfail: p, At: at}
	ring := s.bounds[scope]
	if ring == nil {
		if len(s.bounds) >= s.cfg.StaleCapacity {
			clear(s.bounds)
		}
		ring = &boundsRing{vals: make([]float64, s.cfg.BoundsWindow)}
		s.bounds[scope] = ring
	}
	ring.push(p)
}

// degradeLocked walks the degradation ladder for one request that could
// not be answered exactly: Stale from the per-point snapshot, Bounded
// from a solver residual (runtime.Degrade) or from the scope's
// recent-exact interval, Unavailable as the floor. The returned answer
// always carries cause.
func (s *Server) degradeLocked(scope, key string, cause error, now time.Time) socruntime.Answer {
	var last *socruntime.LastGood
	if lg, ok := s.stale[key]; ok {
		last = &lg
	}
	ans := socruntime.Degrade(cause, last, now)
	if ans.Kind == socruntime.Unavailable {
		if lo, hi, ok := s.bounds[scope].minMax(); ok {
			ans = socruntime.BoundedInterval(lo, hi, cause)
		}
	}
	switch ans.Kind {
	case socruntime.Stale:
		s.stats.Stale++
	case socruntime.Bounded:
		s.stats.Bounded++
	default:
		s.stats.Unavailable++
	}
	return ans
}

// degradeBatchLocked degrades every point of a shed batch.
func (s *Server) degradeBatchLocked(out []socruntime.Answer, scope, service string, sets [][]float64, cause error, now time.Time) {
	for i, params := range sets {
		out[i] = s.degradeLocked(scope, snapshotKey(scope, service, params), cause, now)
	}
}

// evalBatch runs the grid through the backend's batch kernel when it has
// one, falling back to a per-point loop with cancellation checks at
// every point boundary.
func (s *Server) evalBatch(ctx context.Context, service string, sets [][]float64, deadline time.Time) ([]float64, error) {
	evalCtx, cancel, cleanup := s.deadlineCtx(ctx, deadline)
	defer cleanup()
	_ = cancel
	if be, ok := s.eval.(BatchEvaluator); ok {
		return be.PfailBatchCtx(evalCtx, service, sets)
	}
	out := make([]float64, len(sets))
	for i := range out {
		out[i] = math.NaN()
	}
	var firstErr error
	for i, params := range sets {
		if err := evalCtx.Err(); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("server: batch point %d: %w: %w", i, core.ErrCanceled, err)
			}
			break
		}
		p, err := s.eval.PfailCtx(evalCtx, service, params...)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("server: batch point %d: %w", i, err)
			}
			continue
		}
		out[i] = p
	}
	return out, firstErr
}

// deadlineCtx derives the evaluation context: cancelable, with a
// clock-driven deadline watcher when a deadline is set (context's own
// WithDeadline compares against the wall clock, which would not respect
// a FakeClock). cleanup must be deferred; cancel aborts the evaluation
// early.
func (s *Server) deadlineCtx(ctx context.Context, deadline time.Time) (evalCtx context.Context, cancel context.CancelFunc, cleanup func()) {
	evalCtx, cancel = context.WithCancel(ctx)
	if deadline.IsZero() {
		return evalCtx, cancel, cancel
	}
	d := deadline.Sub(s.clock.Now())
	if d <= 0 {
		cancel()
		return evalCtx, cancel, cancel
	}
	stop := make(chan struct{})
	go func() {
		select {
		case <-s.clock.After(d):
			cancel()
		case <-stop:
		}
	}()
	return evalCtx, cancel, func() {
		close(stop)
		cancel()
	}
}

// snapshotKey renders (scope, service, params) into the stale-store key.
func snapshotKey(scope, service string, params []float64) string {
	b := make([]byte, 0, len(scope)+1+len(service)+1+8*len(params))
	b = append(b, scope...)
	b = append(b, 0)
	b = append(b, service...)
	b = append(b, 0)
	for _, p := range params {
		bits := math.Float64bits(p)
		b = append(b,
			byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
			byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
	}
	return string(b)
}
