package server_test

import (
	"context"
	"fmt"
	gorun "runtime"
	"testing"
	"time"

	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/faultinject"
	"socrel/internal/model"
	socruntime "socrel/internal/runtime"
	"socrel/internal/server"
)

// buildSoakAssembly is a small composite app bound to a constant
// provider, evaluated through the interpreted engine so fault-injected
// resolver failures land at evaluation time (the compiled engine
// resolves bindings at compile time and would never see them).
func buildSoakAssembly(t *testing.T) *assembly.Assembly {
	t.Helper()
	asm := assembly.New("soak")
	asm.MustAddService(model.NewConstant("provider", 0.02))
	app := model.NewComposite("app", nil, nil)
	st, err := app.Flow().AddState("work", model.AND, model.NoSharing)
	if err != nil {
		t.Fatal(err)
	}
	st.AddRequest(model.Request{Role: "worker"})
	if err := app.Flow().AddTransitionP(model.StartState, "work", 1); err != nil {
		t.Fatal(err)
	}
	if err := app.Flow().AddTransitionP("work", model.EndState, 1); err != nil {
		t.Fatal(err)
	}
	asm.MustAddService(app)
	asm.AddBinding("app", "worker", "provider", "")
	return asm
}

// freshEval builds a new interpreted evaluator per call: the interpreted
// engine is single-goroutine and memoizes aggressively, so a shared
// instance would neither tolerate the server's concurrency nor let the
// fault injector fire past the first call. A fresh instance per request
// is also the worst case the admission controller is supposed to
// survive: every evaluation pays full resolution cost.
type freshEval struct {
	resolver model.Resolver
	opts     core.Options
}

func (f freshEval) PfailCtx(ctx context.Context, service string, params ...float64) (float64, error) {
	return core.New(f.resolver, f.opts).PfailCtx(ctx, service, params...)
}

// TestChaosSoakOverloadLadder floods an admission-controlled server with
// a jittered burst of mixed-priority, mixed-deadline requests while the
// underlying resolver injects transient lookup and binding failures.
// Acceptance invariants, checked under -race:
//
//   - every answer is tagged, and exact ⇔ nil-error holds throughout;
//   - the burst exercises the ladder: some answers are exact, some are
//     degraded (shed or failed), and shedding actually fired;
//   - the server quiesces (no in-flight slots, empty queue) and no
//     goroutines leak.
func TestChaosSoakOverloadLadder(t *testing.T) {
	n := 300
	if testing.Short() {
		n = 60
	}
	before := gorun.NumGoroutine()

	asm := buildSoakAssembly(t)
	inj := faultinject.Wrap(asm, faultinject.Options{
		Seed:              1234,
		LookupFailureRate: 0.20,
		BindFailureRate:   0.15,
		ExemptServices:    []string{"app"},
	})
	srv := server.New(freshEval{resolver: inj}, server.Config{
		Service:       "app",
		QueueCapacity: 8,
		Limiter: server.LimiterConfig{
			Initial:       2,
			Min:           1,
			Max:           4,
			LatencyTarget: 2 * time.Millisecond,
		},
		InitialEstimate: 50 * time.Microsecond,
	})
	ctx := context.Background()

	// Warm-up: serve until one exact answer seeds the stale store and the
	// bounds window, so the ladder has something to degrade to.
	warm := 0
	for ; warm < 200; warm++ {
		if srv.Serve(ctx, server.Request{}).IsExact() {
			break
		}
	}
	if warm == 200 {
		t.Fatal("warm-up never produced an exact answer")
	}

	answers := make(chan socruntime.Answer, n)
	rep := faultinject.Burst(faultinject.BurstConfig{
		N:       n,
		Arrival: 20 * time.Microsecond,
		Jitter:  100 * time.Microsecond,
		Seed:    99,
	}, func(i int) error {
		req := server.Request{Priority: server.Priority(i % 3)}
		switch i % 4 {
		case 0:
			req.Timeout = 50 * time.Microsecond // mostly doomed budgets
		case 1, 2:
			req.Timeout = 250 * time.Millisecond
		}
		ans := srv.Serve(ctx, req)
		answers <- ans
		if ans.Err != nil {
			return fmt.Errorf("request %d degraded: %w", i, ans.Err)
		}
		return nil
	})
	close(answers)
	if rep.Launched != n {
		t.Fatalf("burst launched %d, want %d", rep.Launched, n)
	}

	var exact, degraded int
	for ans := range answers {
		if ans.Kind == socruntime.AnswerKind(0) {
			t.Fatalf("untagged answer under overload: %+v", ans)
		}
		if (ans.Kind == socruntime.Exact) != (ans.Err == nil) {
			t.Fatalf("exact ⇔ nil-error invariant violated: %+v", ans)
		}
		if ans.Kind == socruntime.Exact {
			exact++
		} else {
			degraded++
		}
	}
	if exact+degraded != n {
		t.Fatalf("got %d answers, want %d", exact+degraded, n)
	}
	if exact == 0 {
		t.Fatal("soak produced no exact answers: server never actually served")
	}
	if degraded == 0 {
		t.Fatal("soak produced no degraded answers: overload never engaged the ladder")
	}

	st := srv.Stats()
	if st.Inflight != 0 || st.QueueDepth != 0 {
		t.Fatalf("server not quiescent after burst: %+v", st)
	}
	sheds := st.ShedQueueFull + st.ShedClass + st.ShedDeadline + st.SweptExpired
	if sheds == 0 {
		t.Fatalf("no load shedding under a %d-request burst into a queue of 8: %+v", n, st)
	}
	if kinds := st.Exact + st.Stale + st.Bounded + st.Unavailable; kinds != uint64(n+warm+1) {
		t.Fatalf("answer-kind counters sum to %d, want %d served requests", kinds, n+warm+1)
	}
	if inj.Injected() == 0 {
		t.Fatal("fault injector never fired")
	}
	t.Logf("soak: %d exact, %d degraded (%d sheds) over %d requests; %d injected faults; stats %+v",
		exact, degraded, sheds, n, inj.Injected(), st)

	// Zero goroutine leaks: hedges, deadline watchers, and waiters must
	// all unwind once the burst drains.
	deadline := time.Now().Add(2 * time.Second)
	for {
		gorun.GC()
		if g := gorun.NumGoroutine(); g <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, gorun.NumGoroutine(), buf[:gorun.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
