package server_test

import (
	"context"
	"errors"
	gorun "runtime"
	"testing"
	"time"

	socruntime "socrel/internal/runtime"
	"socrel/internal/server"
)

// gateEval blocks every evaluation until release closes, signaling entry
// on entered, so tests control exactly when in-flight work finishes.
type gateEval struct {
	entered chan struct{}
	release chan struct{}
}

func (g *gateEval) PfailCtx(ctx context.Context, service string, params ...float64) (float64, error) {
	g.entered <- struct{}{}
	<-g.release
	return 0.25, nil
}

func newGateEval() *gateEval {
	return &gateEval{entered: make(chan struct{}, 8), release: make(chan struct{})}
}

func waitDraining(t *testing.T, srv *server.Server) {
	t.Helper()
	for i := 0; !srv.Draining(); i++ {
		if i > 1e7 {
			t.Fatal("server never started draining")
		}
		gorun.Gosched()
	}
}

// TestDrainIdleReturnsImmediately: draining a quiescent server completes
// at once and closes admission.
func TestDrainIdleReturnsImmediately(t *testing.T) {
	clk := socruntime.NewFakeClock(time.Unix(0, 0))
	srv := server.New(newGateEval(), server.Config{Clock: clk, Hedge: server.HedgeConfig{Disabled: true}})

	st, err := srv.Drain(context.Background(), time.Second)
	if err != nil {
		t.Fatalf("Drain on idle server: %v", err)
	}
	if st.Offered != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}

	ans := srv.Serve(context.Background(), server.Request{})
	if ans.Kind == socruntime.Exact {
		t.Fatal("draining server served an exact answer")
	}
	if !errors.Is(ans.Err, server.ErrDraining) || !errors.Is(ans.Err, server.ErrOverloaded) {
		t.Fatalf("shed error %v does not wrap ErrDraining/ErrOverloaded", ans.Err)
	}
	if got := srv.Stats().ShedDraining; got != 1 {
		t.Fatalf("ShedDraining = %d, want 1", got)
	}
}

// TestDrainFinishesInFlightAndQueued: work admitted before the drain —
// both holding a slot and parked in the queue — runs to completion and
// returns exact answers, while new arrivals shed; Drain returns once the
// last of it finishes.
func TestDrainFinishesInFlightAndQueued(t *testing.T) {
	clk := socruntime.NewFakeClock(time.Unix(0, 0))
	eval := newGateEval()
	srv := server.New(eval, server.Config{
		Clock:   clk,
		Hedge:   server.HedgeConfig{Disabled: true},
		Limiter: server.LimiterConfig{Initial: 1, Min: 1, Max: 1},
	})
	ctx := context.Background()

	answers := make(chan socruntime.Answer, 2)
	go func() { answers <- srv.Serve(ctx, server.Request{}) }()
	<-eval.entered // first request holds the only slot
	go func() { answers <- srv.Serve(ctx, server.Request{}) }()
	for srv.Stats().QueueDepth == 0 { // second request parks in the queue
		gorun.Gosched()
	}

	drainErr := make(chan error, 1)
	go func() {
		_, err := srv.Drain(ctx, 0)
		drainErr <- err
	}()
	waitDraining(t, srv)

	// New arrivals shed while the backlog finishes.
	if ans := srv.Serve(ctx, server.Request{}); !errors.Is(ans.Err, server.ErrDraining) {
		t.Fatalf("arrival during drain got %v, want ErrDraining", ans.Err)
	}
	select {
	case err := <-drainErr:
		t.Fatalf("Drain returned (%v) with work still in flight", err)
	default:
	}

	close(eval.release)
	for i := 0; i < 2; i++ {
		if ans := <-answers; !ans.IsExact() || ans.Pfail != 0.25 {
			t.Fatalf("pre-drain request %d got %+v, want exact 0.25", i, ans)
		}
	}
	if err := <-drainErr; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	st := srv.Stats()
	if st.Inflight != 0 || st.QueueDepth != 0 {
		t.Fatalf("server not quiescent after drain: %+v", st)
	}
	if st.Exact != 2 || st.ShedDraining != 1 {
		t.Fatalf("stats %+v, want 2 exact and 1 drain shed", st)
	}
}

// TestDrainTimeoutOnFakeClock: a drain whose deadline elapses on the
// virtual clock reports ErrDrainTimeout while the straggler still runs,
// and a later drain completes cleanly once it finishes.
func TestDrainTimeoutOnFakeClock(t *testing.T) {
	clk := socruntime.NewFakeClock(time.Unix(0, 0))
	eval := newGateEval()
	srv := server.New(eval, server.Config{Clock: clk, Hedge: server.HedgeConfig{Disabled: true}})
	ctx := context.Background()

	done := make(chan socruntime.Answer, 1)
	go func() { done <- srv.Serve(ctx, server.Request{}) }()
	<-eval.entered

	drainErr := make(chan error, 1)
	go func() {
		_, err := srv.Drain(ctx, 5*time.Second)
		drainErr <- err
	}()
	waitDraining(t, srv)
	clk.WaitForTimers(1) // the drain deadline is the only pending timer
	clk.Advance(5 * time.Second)
	if err := <-drainErr; !errors.Is(err, server.ErrDrainTimeout) {
		t.Fatalf("Drain = %v, want ErrDrainTimeout", err)
	}

	close(eval.release)
	if ans := <-done; !ans.IsExact() {
		t.Fatalf("straggler got %+v, want exact", ans)
	}
	if _, err := srv.Drain(ctx, time.Second); err != nil {
		t.Fatalf("second Drain after quiescence: %v", err)
	}
}

// TestDrainCanceledContext: canceling the context abandons the wait (the
// server keeps draining) and reports the cancellation.
func TestDrainCanceledContext(t *testing.T) {
	clk := socruntime.NewFakeClock(time.Unix(0, 0))
	eval := newGateEval()
	srv := server.New(eval, server.Config{Clock: clk, Hedge: server.HedgeConfig{Disabled: true}})

	done := make(chan socruntime.Answer, 1)
	go func() { done <- srv.Serve(context.Background(), server.Request{}) }()
	<-eval.entered

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Drain(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("Drain = %v, want context.Canceled", err)
	}
	if !srv.Draining() {
		t.Fatal("canceled Drain un-drained the server")
	}
	close(eval.release)
	<-done
}
