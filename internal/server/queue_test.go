package server

import (
	"testing"
	"time"
)

func mkWaiter(pri Priority, enq time.Time, budget time.Duration) *waiter {
	w := &waiter{pri: pri, enq: enq, ready: make(chan error, 1)}
	if budget > 0 {
		w.deadline = enq.Add(budget)
	}
	return w
}

func TestQueueDefaults(t *testing.T) {
	q := newAdmissionQueue(0, 0)
	if q.capacity != 64 {
		t.Fatalf("default capacity = %d, want 64", q.capacity)
	}
	if q.lifoDepth != 16 {
		t.Fatalf("default lifoDepth = %d, want 16", q.lifoDepth)
	}
	q = newAdmissionQueue(2, 0)
	if q.lifoDepth != 1 {
		t.Fatalf("small-capacity lifoDepth = %d, want 1", q.lifoDepth)
	}
}

func TestQueueFIFOWhenShallow(t *testing.T) {
	q := newAdmissionQueue(16, 8)
	t0 := time.Unix(0, 0)
	a := mkWaiter(Interactive, t0, 0)
	b := mkWaiter(Interactive, t0.Add(time.Second), 0)
	q.push(a)
	q.push(b)
	if got := q.pop(); got != a {
		t.Fatalf("shallow queue popped %v, want oldest first (FIFO)", got)
	}
	if got := q.pop(); got != b {
		t.Fatalf("second pop = %v, want b", got)
	}
	if q.pop() != nil {
		t.Fatal("empty queue pop should return nil")
	}
}

func TestQueueLIFOWhenDeep(t *testing.T) {
	q := newAdmissionQueue(16, 2)
	t0 := time.Unix(0, 0)
	ws := make([]*waiter, 4)
	for i := range ws {
		ws[i] = mkWaiter(Interactive, t0.Add(time.Duration(i)*time.Second), 0)
		q.push(ws[i])
	}
	// depth 4 > lifoDepth 2: newest first.
	if got := q.pop(); got != ws[3] {
		t.Fatalf("deep queue popped %v, want newest (LIFO)", got)
	}
	if got := q.pop(); got != ws[2] {
		t.Fatalf("still deep: popped %v, want ws[2]", got)
	}
	// depth now 2 == lifoDepth: back to FIFO.
	if got := q.pop(); got != ws[0] {
		t.Fatalf("shallow again: popped %v, want oldest (FIFO)", got)
	}
}

func TestQueuePriorityOrder(t *testing.T) {
	q := newAdmissionQueue(16, 8)
	t0 := time.Unix(0, 0)
	be := mkWaiter(BestEffort, t0, 0)
	ba := mkWaiter(Batch, t0, 0)
	in := mkWaiter(Interactive, t0, 0)
	q.push(be)
	q.push(ba)
	q.push(in)
	want := []*waiter{in, ba, be}
	for i, w := range want {
		if got := q.pop(); got != w {
			t.Fatalf("pop %d = %v, want priority order interactive>batch>best-effort", i, got)
		}
	}
}

func TestQueueSweepShedsExpired(t *testing.T) {
	q := newAdmissionQueue(16, 8)
	t0 := time.Unix(0, 0)
	fresh := mkWaiter(Interactive, t0, time.Hour)
	dead := mkWaiter(Interactive, t0, time.Millisecond)
	forever := mkWaiter(Batch, t0, 0) // no deadline: never swept
	q.push(fresh)
	q.push(dead)
	q.push(forever)

	now := t0.Add(time.Second)
	var shed []*waiter
	q.sweep(
		func(w *waiter) bool { return w.deadline.Before(now) },
		func(w *waiter) { shed = append(shed, w) },
	)
	if len(shed) != 1 || shed[0] != dead {
		t.Fatalf("sweep shed %v, want exactly the expired waiter", shed)
	}
	if q.depth != 2 {
		t.Fatalf("depth after sweep = %d, want 2", q.depth)
	}
	if got := q.pop(); got != fresh {
		t.Fatalf("post-sweep pop = %v, want the fresh waiter", got)
	}
}

func TestQueueRemoveRace(t *testing.T) {
	q := newAdmissionQueue(16, 8)
	w := mkWaiter(Interactive, time.Unix(0, 0), 0)
	q.push(w)
	if !q.remove(w) {
		t.Fatal("remove of a queued waiter should succeed")
	}
	if q.depth != 0 {
		t.Fatalf("depth after remove = %d, want 0", q.depth)
	}
	if q.remove(w) {
		t.Fatal("second remove should report the waiter already gone")
	}
}

func TestQueueFillAndFull(t *testing.T) {
	q := newAdmissionQueue(4, 8)
	for i := 0; i < 4; i++ {
		if q.full() {
			t.Fatalf("full at depth %d of 4", i)
		}
		q.push(mkWaiter(Interactive, time.Unix(0, 0), 0))
	}
	if !q.full() {
		t.Fatal("queue at capacity should report full")
	}
	if q.fill() != 1 {
		t.Fatalf("fill = %v, want 1", q.fill())
	}
}
