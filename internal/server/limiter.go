package server

import (
	"errors"
	"runtime"
	"sort"
	"time"

	"socrel/internal/core"
)

// LimiterConfig parameterizes the AIMD concurrency limiter.
type LimiterConfig struct {
	// Initial is the starting in-flight window (default GOMAXPROCS,
	// clamped into [Min, Max]).
	Initial int
	// Min and Max clamp the window (defaults 1 and 4*GOMAXPROCS).
	Min, Max int
	// LatencyTarget is the per-evaluation latency the limiter steers
	// toward: completions at or under it grow the window additively,
	// completions over it (and deadline expiries) shrink it
	// multiplicatively (default 50ms).
	LatencyTarget time.Duration
	// Backoff is the multiplicative-decrease factor in (0, 1)
	// (default 0.9).
	Backoff float64
}

func (c LimiterConfig) withDefaults() LimiterConfig {
	if c.Min <= 0 {
		c.Min = 1
	}
	if c.Max <= 0 {
		c.Max = 4 * runtime.GOMAXPROCS(0)
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Initial <= 0 {
		c.Initial = runtime.GOMAXPROCS(0)
	}
	if c.Initial < c.Min {
		c.Initial = c.Min
	}
	if c.Initial > c.Max {
		c.Initial = c.Max
	}
	if c.LatencyTarget <= 0 {
		c.LatencyTarget = 50 * time.Millisecond
	}
	if c.Backoff <= 0 || c.Backoff >= 1 {
		c.Backoff = 0.9
	}
	return c
}

// aimdLimiter sizes the in-flight window from measured latency instead of
// a static GOMAXPROCS guess: additive increase while completions meet the
// latency target, multiplicative decrease when latency blows past it or
// evaluations start dying on their deadlines. It is not safe for
// concurrent use on its own; the Server guards it with its mutex.
type aimdLimiter struct {
	cfg      LimiterConfig
	limit    float64
	inflight int
}

func newLimiter(cfg LimiterConfig) *aimdLimiter {
	cfg = cfg.withDefaults()
	return &aimdLimiter{cfg: cfg, limit: float64(cfg.Initial)}
}

// limitInt is the current integral window.
func (l *aimdLimiter) limitInt() int {
	n := int(l.limit)
	if n < l.cfg.Min {
		n = l.cfg.Min
	}
	return n
}

// tryAcquire claims one in-flight slot if the window has room.
func (l *aimdLimiter) tryAcquire() bool {
	if l.inflight >= l.limitInt() {
		return false
	}
	l.inflight++
	return true
}

// release returns one in-flight slot.
func (l *aimdLimiter) release() {
	if l.inflight > 0 {
		l.inflight--
	}
}

// observe feeds one completed evaluation into the AIMD controller.
// Successful completions under the latency target grow the window by
// 1/limit (one slot per round-trip of the full window, the classic AIMD
// probe); slow completions and canceled/deadline-expired evaluations
// shrink it multiplicatively. Defect errors (defective flows, non-finite
// laws) carry no capacity signal and leave the window alone.
func (l *aimdLimiter) observe(latency time.Duration, err error) {
	switch {
	case err == nil && latency <= l.cfg.LatencyTarget:
		l.limit += 1 / l.limit
	case err == nil || errors.Is(err, core.ErrCanceled):
		l.limit *= l.cfg.Backoff
	default:
		return
	}
	if l.limit < float64(l.cfg.Min) {
		l.limit = float64(l.cfg.Min)
	}
	if l.limit > float64(l.cfg.Max) {
		l.limit = float64(l.cfg.Max)
	}
}

// latencyDigest tracks the observed service time two ways: an EWMA used
// as the admission controller's service-time estimate, and a sliding
// window of recent samples for the p95 that paces request hedging.
type latencyDigest struct {
	alpha    float64
	estimate time.Duration
	ring     []time.Duration
	n, idx   int
	scratch  []time.Duration
}

func newLatencyDigest(initial time.Duration, alpha float64, window int) *latencyDigest {
	if initial <= 0 {
		initial = time.Millisecond
	}
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	if window <= 0 {
		window = 128
	}
	return &latencyDigest{
		alpha:    alpha,
		estimate: initial,
		ring:     make([]time.Duration, window),
		scratch:  make([]time.Duration, 0, window),
	}
}

// observe folds one successful evaluation's latency into the digest.
func (d *latencyDigest) observe(lat time.Duration) {
	if lat < 0 {
		lat = 0
	}
	d.estimate = time.Duration((1-d.alpha)*float64(d.estimate) + d.alpha*float64(lat))
	d.ring[d.idx] = lat
	d.idx = (d.idx + 1) % len(d.ring)
	if d.n < len(d.ring) {
		d.n++
	}
}

// p95 returns the 95th percentile of the recent-latency window, falling
// back to the EWMA estimate before any sample exists.
func (d *latencyDigest) p95() time.Duration {
	if d.n == 0 {
		return d.estimate
	}
	s := append(d.scratch[:0], d.ring[:d.n]...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	k := (95*len(s)+99)/100 - 1 // ceil rank: the sample ≥ 95% of the window
	return s[k]
}
