package server

import (
	"time"
)

// Priority classes requests into shedding tiers: interactive traffic is
// shed last, best-effort first. The zero value is Interactive.
type Priority int

// Priority classes, most to least protected.
const (
	// Interactive requests are shed only when the queue is completely
	// full.
	Interactive Priority = iota
	// Batch requests are shed once the queue fill crosses their class
	// threshold.
	Batch
	// BestEffort requests are shed first as saturation builds.
	BestEffort
	numPriorities
)

func (p Priority) String() string {
	switch p {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	case BestEffort:
		return "best-effort"
	default:
		return "invalid"
	}
}

// valid reports whether p names a real class.
func (p Priority) valid() bool { return p >= Interactive && p < numPriorities }

// waiter is one admitted request parked in the queue until a concurrency
// slot frees (or its deadline budget runs out). ready carries the
// dispatch decision: nil grants a slot, non-nil is the shed reason. Both
// granted and the queue slices are guarded by the Server mutex.
type waiter struct {
	pri      Priority
	enq      time.Time
	deadline time.Time // zero = none
	ready    chan error
	granted  bool
}

// admissionQueue is the bounded, deadline-aware holding area between
// admission and dispatch: one slice per priority class, popped in class
// order. Within a class the pop order is adaptive: FIFO while the total
// backlog is shallow (fairness), switching to LIFO once the backlog
// crosses lifoDepth — under saturation the newest request is the one
// whose deadline budget is most likely to survive the remaining wait,
// while old entries are swept as their budgets expire instead of being
// served first and dying anyway.
type admissionQueue struct {
	capacity  int
	lifoDepth int
	q         [numPriorities][]*waiter
	depth     int
}

func newAdmissionQueue(capacity, lifoDepth int) *admissionQueue {
	if capacity <= 0 {
		capacity = 64
	}
	if lifoDepth <= 0 {
		lifoDepth = capacity / 4
		if lifoDepth < 1 {
			lifoDepth = 1
		}
	}
	return &admissionQueue{capacity: capacity, lifoDepth: lifoDepth}
}

// full reports whether the queue is at capacity.
func (a *admissionQueue) full() bool { return a.depth >= a.capacity }

// fill is the current fill fraction in [0, 1].
func (a *admissionQueue) fill() float64 {
	return float64(a.depth) / float64(a.capacity)
}

// push parks w. The caller has already checked full().
func (a *admissionQueue) push(w *waiter) {
	a.q[w.pri] = append(a.q[w.pri], w)
	a.depth++
}

// remove unlinks w (a caller abandoning its wait). It reports whether w
// was still queued; false means dispatch already granted or shed it and
// the caller must consume w.ready instead.
func (a *admissionQueue) remove(w *waiter) bool {
	q := a.q[w.pri]
	for i, x := range q {
		if x == w {
			a.q[w.pri] = append(q[:i], q[i+1:]...)
			a.depth--
			return true
		}
	}
	return false
}

// sweep removes every waiter whose deadline budget can no longer cover
// the estimated service time (expired(w) == true), calling onShed for
// each. Sweeping runs at every dispatch so a saturated queue sheds its
// dead entries instead of letting them occupy capacity ahead of
// requests that can still make their deadlines.
func (a *admissionQueue) sweep(expired func(*waiter) bool, onShed func(*waiter)) {
	for pri := range a.q {
		q := a.q[pri]
		kept := q[:0]
		for _, w := range q {
			if w.deadline.IsZero() || !expired(w) {
				kept = append(kept, w)
				continue
			}
			a.depth--
			onShed(w)
		}
		// Clear the tail so swept waiters are not retained.
		for i := len(kept); i < len(q); i++ {
			q[i] = nil
		}
		a.q[pri] = kept
	}
}

// pop removes and returns the next waiter to dispatch: classes in
// priority order, adaptive FIFO/LIFO within the class. It returns nil
// when the queue is empty.
func (a *admissionQueue) pop() *waiter {
	for pri := range a.q {
		q := a.q[pri]
		if len(q) == 0 {
			continue
		}
		var w *waiter
		if a.depth > a.lifoDepth {
			w = q[len(q)-1]
			q[len(q)-1] = nil
			a.q[pri] = q[:len(q)-1]
		} else {
			w = q[0]
			copy(q, q[1:])
			q[len(q)-1] = nil
			a.q[pri] = q[:len(q)-1]
		}
		a.depth--
		return w
	}
	return nil
}
