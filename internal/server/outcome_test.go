package server

import (
	"context"
	"errors"
	"testing"
	"time"

	socruntime "socrel/internal/runtime"
)

func TestOnOutcomePublishesEvaluations(t *testing.T) {
	clock := socruntime.NewFakeClock(time.Unix(1000, 0))
	eval := constEval(0.125)
	var events []Outcome
	srv := New(eval, Config{
		Service:   "app",
		Hedge:     HedgeConfig{Disabled: true},
		Clock:     clock,
		OnOutcome: func(o Outcome) { events = append(events, o) },
	})

	ans := srv.Serve(context.Background(), Request{Scope: "m1"})
	checkInvariant(t, ans)
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	o := events[0]
	if o.Service != "app" || o.Scope != "m1" || !o.Success || !o.At.Equal(clock.Now()) {
		t.Fatalf("bad outcome: %+v", o)
	}

	// Failed evaluations publish too, with Success false.
	boom := errors.New("solver exploded")
	eval.set(func(context.Context, string, ...float64) (float64, error) { return 0, boom })
	srv.Serve(context.Background(), Request{Service: "other"})
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if o := events[1]; o.Success || o.Service != "other" {
		t.Fatalf("bad failure outcome: %+v", o)
	}
}

func TestOnOutcomeSilentForShedRequests(t *testing.T) {
	clock := socruntime.NewFakeClock(time.Unix(1000, 0))
	var events []Outcome
	srv := New(constEval(0.1), Config{
		Service:   "app",
		Hedge:     HedgeConfig{Disabled: true},
		Clock:     clock,
		OnOutcome: func(o Outcome) { events = append(events, o) },
	})
	if _, err := srv.Drain(context.Background(), 0); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	ans := srv.Serve(context.Background(), Request{})
	if ans.Kind == socruntime.Exact {
		t.Fatal("draining server served exact")
	}
	if len(events) != 0 {
		t.Fatalf("shed request published %d outcome events", len(events))
	}
}
