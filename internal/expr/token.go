// Package expr implements the small arithmetic expression language used by
// analytic interfaces to express parameter dependency: actual parameters of
// cascading service requests, transition probabilities, and failure laws are
// all expressions over the formal parameters and attributes of a service.
//
// The language supports floating point literals, identifiers, the binary
// operators + - * / ^ (right-associative power), unary minus, parentheses,
// and calls to a fixed set of builtin functions (exp, log, log2, log10,
// sqrt, pow, min, max, abs, floor, ceil).
//
// Expressions are parsed once into an immutable AST and evaluated many times
// against an Env binding identifiers to values. ASTs support symbolic
// differentiation and algebraic simplification, which the sensitivity
// analysis package uses to compute exact parameter sensitivities.
package expr

import "fmt"

// tokenKind enumerates lexical token categories.
type tokenKind int

const (
	tokenEOF tokenKind = iota + 1
	tokenNumber
	tokenIdent
	tokenPlus
	tokenMinus
	tokenStar
	tokenSlash
	tokenCaret
	tokenLParen
	tokenRParen
	tokenComma
)

func (k tokenKind) String() string {
	switch k {
	case tokenEOF:
		return "end of input"
	case tokenNumber:
		return "number"
	case tokenIdent:
		return "identifier"
	case tokenPlus:
		return "'+'"
	case tokenMinus:
		return "'-'"
	case tokenStar:
		return "'*'"
	case tokenSlash:
		return "'/'"
	case tokenCaret:
		return "'^'"
	case tokenLParen:
		return "'('"
	case tokenRParen:
		return "')'"
	case tokenComma:
		return "','"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is a single lexical token with its source position.
type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in the input
}

// SyntaxError describes a parse failure at a byte offset of the input.
type SyntaxError struct {
	Input string // the full expression source
	Pos   int    // byte offset of the offending token
	Msg   string // human readable description
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("expr: parse %q: %s at offset %d", e.Input, e.Msg, e.Pos)
}

// lexer scans an expression source string into tokens.
type lexer struct {
	input string
	pos   int
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool { return isIdentStart(c) || isDigit(c) }

// next returns the next token, advancing the lexer.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		break
	}
	if l.pos >= len(l.input) {
		return token{kind: tokenEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.input[l.pos]
	switch {
	case isDigit(c) || c == '.':
		return l.lexNumber()
	case isIdentStart(c):
		for l.pos < len(l.input) && isIdentPart(l.input[l.pos]) {
			l.pos++
		}
		return token{kind: tokenIdent, text: l.input[start:l.pos], pos: start}, nil
	}
	l.pos++
	switch c {
	case '+':
		return token{kind: tokenPlus, text: "+", pos: start}, nil
	case '-':
		return token{kind: tokenMinus, text: "-", pos: start}, nil
	case '*':
		return token{kind: tokenStar, text: "*", pos: start}, nil
	case '/':
		return token{kind: tokenSlash, text: "/", pos: start}, nil
	case '^':
		return token{kind: tokenCaret, text: "^", pos: start}, nil
	case '(':
		return token{kind: tokenLParen, text: "(", pos: start}, nil
	case ')':
		return token{kind: tokenRParen, text: ")", pos: start}, nil
	case ',':
		return token{kind: tokenComma, text: ",", pos: start}, nil
	}
	return token{}, &SyntaxError{Input: l.input, Pos: start, Msg: fmt.Sprintf("unexpected character %q", c)}
}

// lexNumber scans a floating point literal: digits, optional fraction,
// optional exponent (e or E with optional sign).
func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	for l.pos < len(l.input) && isDigit(l.input[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.input) && l.input[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.input) && isDigit(l.input[l.pos]) {
			l.pos++
		}
	}
	if l.pos == start || (l.pos == start+1 && l.input[start] == '.') {
		return token{}, &SyntaxError{Input: l.input, Pos: start, Msg: "malformed number"}
	}
	if l.pos < len(l.input) && (l.input[l.pos] == 'e' || l.input[l.pos] == 'E') {
		mark := l.pos
		l.pos++
		if l.pos < len(l.input) && (l.input[l.pos] == '+' || l.input[l.pos] == '-') {
			l.pos++
		}
		if l.pos >= len(l.input) || !isDigit(l.input[l.pos]) {
			// Not an exponent after all (e.g. "2e" followed by an ident);
			// treat the 'e' as the start of the next token.
			l.pos = mark
		} else {
			for l.pos < len(l.input) && isDigit(l.input[l.pos]) {
				l.pos++
			}
		}
	}
	return token{kind: tokenNumber, text: l.input[start:l.pos], pos: start}, nil
}
