package expr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// numericDeriv computes a central finite difference of e at env with respect
// to name.
func numericDeriv(t *testing.T, e Expr, env Env, name string) float64 {
	t.Helper()
	h := 1e-6 * math.Max(math.Abs(env[name]), 1)
	up := env.Clone()
	up[name] += h
	dn := env.Clone()
	dn[name] -= h
	vu, err := e.Eval(up)
	if err != nil {
		t.Fatalf("Eval up: %v", err)
	}
	vd, err := e.Eval(dn)
	if err != nil {
		t.Fatalf("Eval dn: %v", err)
	}
	return (vu - vd) / (2 * h)
}

func TestDiffMatchesFiniteDifference(t *testing.T) {
	env := Env{"x": 1.3, "y": 2.7, "n": 50}
	tests := []string{
		"x",
		"y",
		"3",
		"x + y",
		"x - y",
		"x * y",
		"x / y",
		"x ^ 3",
		"x ^ y",
		"-x * y",
		"exp(-x)",
		"log(x)",
		"log2(x)",
		"log10(x)",
		"sqrt(x)",
		"pow(x, 2)",
		"1 - exp(-x * n / 10)",
		"(1 - x / 10) ^ n",
		"x * log2(x)",
		"exp(-x) * (1 - y / 10) ^ 2",
	}
	for _, src := range tests {
		t.Run(src, func(t *testing.T) {
			e := MustParse(src)
			d := e.Diff("x")
			got, err := d.Eval(env)
			if err != nil {
				t.Fatalf("Eval derivative %q: %v", d, err)
			}
			want := numericDeriv(t, e, env, "x")
			if math.Abs(got-want) > 1e-4*math.Max(math.Abs(want), 1) {
				t.Errorf("d/dx %q = %g, want ≈ %g (symbolic: %s)", src, got, want, d)
			}
		})
	}
}

func TestDiffOfOtherVariableIsZero(t *testing.T) {
	e := MustParse("exp(-x) + x ^ 2")
	d := Simplify(e.Diff("unrelated"))
	v, err := d.Eval(nil)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if v != 0 {
		t.Errorf("d/d(unrelated) = %v (%g), want 0", d, v)
	}
}

func TestDiffNonDifferentiableIsNaN(t *testing.T) {
	for _, src := range []string{"abs(x)", "floor(x)", "ceil(x)", "min(x, 1)", "max(x, 1)"} {
		e := MustParse(src)
		v, err := e.Diff("x").Eval(Env{"x": 2})
		if err != nil {
			t.Fatalf("Eval diff of %q: %v", src, err)
		}
		if !math.IsNaN(v) {
			t.Errorf("diff of %q = %g, want NaN marker", src, v)
		}
	}
}

func TestSimplify(t *testing.T) {
	tests := []struct {
		src, want string
	}{
		{"x + 0", "x"},
		{"0 + x", "x"},
		{"x - 0", "x"},
		{"0 - x", "-x"},
		{"x * 1", "x"},
		{"1 * x", "x"},
		{"x * 0", "0"},
		{"0 * x", "0"},
		{"0 / x", "0"},
		{"x / 1", "x"},
		{"x ^ 1", "x"},
		{"x ^ 0", "1"},
		{"1 ^ x", "1"},
		{"1 + 2", "3"},
		{"2 * 3 + 4", "10"},
		{"exp(0)", "1"},
		{"log(1)", "0"},
		{"sqrt(4) * x", "2 * x"},
		{"--x", "x"},
		{"-(3)", "(-3)"},
		{"(1 - 1) * log(x)", "0"},
		// Constant-shift gathering through nested +/- chains.
		{"1 - (1 - x)", "x"},
		{"1 - (1 - (1 - (1 - x)))", "x"},
		{"2 - (1 - x)", "1 + x"},
		{"3 - (x - 1)", "4 - x"},
		{"2 + (x + 3)", "5 + x"},
		{"2 + (x - 3)", "(-1) + x"},
		{"(1 - x) - 1", "-x"},
		{"(x + 5) - 5", "x"},
		// Neg normalization into +/-.
		{"x + -y", "x - y"},
		{"-x + y", "y - x"},
		{"x - -y", "x + y"},
		// Constant-factor gathering through products and quotients.
		{"3 * (2 * x)", "6 * x"},
		{"(x * 2) * 3", "6 * x"},
		{"2 * (4 / x)", "8 / x"},
		// Rational-form normalization.
		{"(x / 2) / 3", "x / 6"},
		{"x / (y / z)", "x * z / y"},
		{"4 / (x / 2)", "8 / x"},
		{"(x / y) / z", "x / (y * z)"},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			got := Simplify(MustParse(tt.src)).String()
			if got != tt.want {
				t.Errorf("Simplify(%q) = %q, want %q", tt.src, got, tt.want)
			}
		})
	}
}

// TestSimplifyPreservesValue is a property test: simplification never changes
// the value of an expression on environments where both are defined.
func TestSimplifyPreservesValue(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	gen := func() Expr { return randomExpr(rng, 4) }
	f := func() bool {
		e := gen()
		env := Env{"x": rng.Float64()*4 + 0.1, "y": rng.Float64()*4 + 0.1, "z": rng.Float64()*4 + 0.1}
		v1, err1 := e.Eval(env)
		s := Simplify(e)
		v2, err2 := s.Eval(env)
		if err1 != nil {
			// Simplification may extend the domain; nothing to compare.
			return true
		}
		if err2 != nil {
			return false
		}
		return almostEqual(v1, v2) || (math.IsNaN(v1) && math.IsNaN(v2)) ||
			(math.IsInf(v1, 0) && v1 == v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestBindThenEval is a property test: binding a subset of variables then
// evaluating with the rest equals evaluating with the full environment.
func TestBindThenEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func() bool {
		e := randomExpr(rng, 4)
		full := Env{"x": rng.Float64()*3 + 0.2, "y": rng.Float64()*3 + 0.2, "z": rng.Float64()*3 + 0.2}
		v1, err1 := e.Eval(full)
		if err1 != nil {
			return true
		}
		partial := Bind(e, Env{"x": full["x"]})
		v2, err2 := partial.Eval(Env{"y": full["y"], "z": full["z"]})
		if err2 != nil {
			return false
		}
		return almostEqual(v1, v2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// randomExpr builds a random expression over x, y, z with the given depth.
func randomExpr(rng *rand.Rand, depth int) Expr {
	if depth == 0 {
		switch rng.Intn(4) {
		case 0:
			return Num(math.Floor(rng.Float64()*10) / 2)
		case 1:
			return Var("x")
		case 2:
			return Var("y")
		default:
			return Var("z")
		}
	}
	switch rng.Intn(8) {
	case 0:
		return Add(randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	case 1:
		return Sub(randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	case 2:
		return Mul(randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	case 3:
		return Div(randomExpr(rng, depth-1), randomExpr(rng, depth-1))
	case 4:
		return Pow(randomExpr(rng, depth-1), Num(float64(rng.Intn(3))))
	case 5:
		return &Neg{X: randomExpr(rng, depth-1)}
	case 6:
		return Call1("exp", &Neg{X: Call1("abs", randomExpr(rng, depth-1))})
	default:
		return Call1("sqrt", Call1("abs", randomExpr(rng, depth-1)))
	}
}

func TestDiffStringParseable(t *testing.T) {
	// Derivatives must render to parseable source (used by the ADL when
	// exporting sensitivity expressions).
	for _, src := range []string{"x * log2(x)", "exp(-l * n / s)", "(1 - phi) ^ n"} {
		e := MustParse(src)
		for _, v := range Vars(e) {
			d := Simplify(e.Diff(v))
			if _, err := Parse(d.String()); err != nil {
				t.Errorf("derivative of %q wrt %s renders unparseable %q: %v", src, v, d, err)
			}
		}
	}
}
