package expr

import "testing"

// FuzzParse drives the expression parser (and, for accepted inputs, the
// printer, the evaluator, and the program compiler) with arbitrary source
// text. The property under test is crash-resistance: no input may panic or
// exhaust the stack; malformed input must fail with an error.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"1 - exp(-lambda * N / s)",
		"n * log2(n)",
		"1 - (1-phi)^(n*log2(n))",
		"pow(x, 2) + min(a, b) / max(a, 1)",
		"-x^2",
		"((((((1))))))",
		"1/0",
		"log(-1)",
		"sqrt(",
		"foo(1, 2, 3)",
		"1e999",
		"..5",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			t.Skip("oversized input")
		}
		e, err := Parse(src)
		if err != nil {
			return
		}
		// Accepted input must survive printing, evaluation, and program
		// compilation without panicking; evaluation errors are fine.
		rendered := e.String()
		env := Env{}
		for _, v := range Vars(e) {
			env[v] = 0.5
		}
		_, _ = e.Eval(env)
		if _, err := CompileProgram(e, Vars(e), nil); err != nil {
			t.Fatalf("parseable expression %q failed to compile: %v", rendered, err)
		}
	})
}
