package expr

import "math"

// Derivative returns the symbolic partial derivative of e with respect to
// name, simplified. It computes the same rules as the Diff method, but is
// memoized on node identity and simplifies as it builds: differentiating
// an expression with heavy subterm sharing (the DAGs the parametric chain
// elimination produces) costs time linear in the number of distinct
// nodes, where Diff's structural recursion would take exponential time
// and produce an exponential tree.
//
// Non-differentiable builtins (abs, floor, ceil, min, max) differentiate
// to NaN constants, matching Diff, so the error is visible at evaluation
// time rather than silently wrong.
func Derivative(e Expr, name string) Expr {
	d := &differ{
		name:  name,
		dmemo: make(map[Expr]Expr),
		smemo: make(map[Expr]Expr),
	}
	return d.diff(e)
}

type differ struct {
	name  string
	dmemo map[Expr]Expr // original node -> derivative
	smemo map[Expr]Expr // shared simplification memo
}

func (d *differ) simp(e Expr) Expr { return simplifyMemo(e, d.smemo) }

func (d *differ) diff(e Expr) Expr {
	if r, ok := d.dmemo[e]; ok {
		return r
	}
	r := d.diffNode(e)
	d.dmemo[e] = r
	return r
}

func (d *differ) diffNode(e Expr) Expr {
	switch n := e.(type) {
	case Num:
		return Num(0)
	case Var:
		if string(n) == d.name {
			return Num(1)
		}
		return Num(0)
	case *Neg:
		return d.simp(&Neg{X: d.diff(n.X)})
	case *Binary:
		dl, dr := d.diff(n.L), d.diff(n.R)
		switch n.Op {
		case OpAdd:
			return d.simp(Add(dl, dr))
		case OpSub:
			return d.simp(Sub(dl, dr))
		case OpMul:
			return d.simp(Add(Mul(dl, n.R), Mul(n.L, dr)))
		case OpDiv:
			if isZeroConst(dr) {
				// Constant denominator: dl/r, sparing the quotient-rule
				// square that elimination denominators would otherwise
				// accumulate at every chain stage.
				return d.simp(Div(dl, n.R))
			}
			return d.simp(Div(Sub(Mul(dl, n.R), Mul(n.L, dr)), Pow(n.R, Num(2))))
		case OpPow:
			return d.diffPow(e, n.L, n.R, dl, dr)
		default:
			return Num(math.NaN())
		}
	case *CallExpr:
		switch n.Name {
		case "exp":
			return d.simp(Mul(e, d.diff(n.Args[0])))
		case "log":
			return d.simp(Div(d.diff(n.Args[0]), n.Args[0]))
		case "log2":
			return d.simp(Div(d.diff(n.Args[0]), Mul(n.Args[0], Num(math.Ln2))))
		case "log10":
			return d.simp(Div(d.diff(n.Args[0]), Mul(n.Args[0], Num(math.Ln10))))
		case "sqrt":
			return d.simp(Div(d.diff(n.Args[0]), Mul(Num(2), e)))
		case "pow":
			return d.diffPow(e, n.Args[0], n.Args[1], d.diff(n.Args[0]), d.diff(n.Args[1]))
		default:
			return Num(math.NaN())
		}
	default:
		return Num(math.NaN())
	}
}

// diffPow differentiates l^r (orig is the original node, reused so the
// general-power rule shares it instead of rebuilding it).
func (d *differ) diffPow(orig, l, r, dl, dr Expr) Expr {
	if rc, ok := r.(Num); ok {
		// (f^c)' = c f^(c-1) f'
		return d.simp(Mul(Mul(r, Pow(l, Num(float64(rc)-1))), dl))
	}
	// f^g = exp(g log f): (f^g)' = f^g (g' log f + g f'/f)
	return d.simp(Mul(orig, Add(Mul(dr, Call1("log", l)), Mul(r, Div(dl, l)))))
}

func isZeroConst(e Expr) bool {
	c, ok := e.(Num)
	return ok && float64(c) == 0
}
