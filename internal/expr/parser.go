package expr

import (
	"fmt"
	"strconv"
)

// Parse parses source into an expression tree.
func Parse(source string) (Expr, error) {
	p := &parser{lex: lexer{input: source}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	e, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	if p.cur.kind != tokenEOF {
		return nil, p.errorf("unexpected %s", p.cur.kind)
	}
	return e, nil
}

// MustParse is Parse for statically known-good expressions; it panics on
// error and is intended for package-level construction of builtin models.
func MustParse(source string) Expr {
	e, err := Parse(source)
	if err != nil {
		panic(err)
	}
	return e
}

// maxParseDepth bounds expression nesting. Failure laws and transition
// probabilities are shallow in practice; the cap exists so adversarial
// input (deeply nested parentheses from fuzzing or untrusted ADL text)
// fails with a syntax error instead of exhausting the goroutine stack —
// parsing, evaluation, and printing all recurse to the same depth.
const maxParseDepth = 512

// parser is a Pratt (precedence climbing) parser over the lexer.
type parser struct {
	lex   lexer
	cur   token
	depth int
}

func (p *parser) errorf(format string, args ...any) error {
	return &SyntaxError{Input: p.lex.input, Pos: p.cur.pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = tok
	return nil
}

// binding powers per operator; power is right-associative.
func binaryOp(k tokenKind) (op Op, leftBP, rightBP int, ok bool) {
	switch k {
	case tokenPlus:
		return OpAdd, 10, 11, true
	case tokenMinus:
		return OpSub, 10, 11, true
	case tokenStar:
		return OpMul, 20, 21, true
	case tokenSlash:
		return OpDiv, 20, 21, true
	case tokenCaret:
		return OpPow, 41, 40, true // right-associative
	default:
		return 0, 0, 0, false
	}
}

func (p *parser) parseExpr(minBP int) (Expr, error) {
	p.depth++
	defer func() { p.depth-- }()
	if p.depth > maxParseDepth {
		return nil, p.errorf("expression nested deeper than %d", maxParseDepth)
	}
	lhs, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		op, leftBP, rightBP, ok := binaryOp(p.cur.kind)
		if !ok || leftBP < minBP {
			return lhs, nil
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr(rightBP)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: op, L: lhs, R: rhs}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	switch p.cur.kind {
	case tokenNumber:
		v, err := strconv.ParseFloat(p.cur.text, 64)
		if err != nil {
			return nil, p.errorf("malformed number %q", p.cur.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return Num(v), nil

	case tokenMinus:
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Unary minus binds tighter than * and / but looser than ^,
		// so -x^2 parses as -(x^2).
		x, err := p.parseExpr(30)
		if err != nil {
			return nil, err
		}
		return &Neg{X: x}, nil

	case tokenLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if p.cur.kind != tokenRParen {
			return nil, p.errorf("expected ')', got %s", p.cur.kind)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return e, nil

	case tokenIdent:
		name := p.cur.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.cur.kind != tokenLParen {
			return Var(name), nil
		}
		return p.parseCall(name)

	default:
		return nil, p.errorf("expected expression, got %s", p.cur.kind)
	}
}

func (p *parser) parseCall(name string) (Expr, error) {
	arity, ok := IsBuiltin(name)
	if !ok {
		return nil, p.errorf("unknown function %q", name)
	}
	if err := p.advance(); err != nil { // consume '('
		return nil, err
	}
	var args []Expr
	if p.cur.kind != tokenRParen {
		for {
			a, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.cur.kind != tokenComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if p.cur.kind != tokenRParen {
		return nil, p.errorf("expected ')' closing call to %s, got %s", name, p.cur.kind)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if len(args) != arity {
		return nil, p.errorf("%s expects %d argument(s), got %d", name, arity, len(args))
	}
	return &CallExpr{Name: name, Args: args}, nil
}
