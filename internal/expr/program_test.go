package expr

import (
	"errors"
	"math"
	"testing"
)

// TestProgramMatchesInterpreter compiles a spread of expressions and
// checks that the program produces bit-identical values to AST
// evaluation under the same environment.
func TestProgramMatchesInterpreter(t *testing.T) {
	cases := []struct {
		src   string
		slots []string
		attrs Env
	}{
		{"1 + 2 * 3", nil, nil},
		{"x", []string{"x"}, nil},
		{"x + y * x - y / (x + 3)", []string{"x", "y"}, nil},
		{"-x ^ 2", []string{"x"}, nil},
		{"1 - (1 - phi) ^ n", []string{"n"}, Env{"phi": 1e-6}},
		{"n * log2(n)", []string{"n"}, nil},
		{"exp(-gamma * n / speed)", []string{"n"}, Env{"gamma": 1e-10, "speed": 1e9}},
		{"min(x, y) + max(x, y) + abs(x - y)", []string{"x", "y"}, nil},
		{"sqrt(x) + floor(y) + ceil(y) + log(x) + log10(x)", []string{"x", "y"}, nil},
		{"pow(x, 3) + x ^ 0.5", []string{"x"}, nil},
		{"a * x + b", []string{"x"}, Env{"a": 0.25, "b": 0.75}},
	}
	grids := [][]float64{{0.5, 3.5}, {1, 0.25}, {2.25, 9}, {17, 2}, {4096, 1}}
	for _, tc := range cases {
		e := MustParse(tc.src)
		prog, err := CompileProgram(e, tc.slots, tc.attrs)
		if err != nil {
			t.Fatalf("CompileProgram(%q): %v", tc.src, err)
		}
		stack := make([]float64, prog.MaxStack())
		for _, grid := range grids {
			slots := make([]float64, len(tc.slots))
			for i := range slots {
				slots[i] = grid[i%len(grid)]
			}
			env := tc.attrs.Clone()
			if env == nil {
				env = Env{}
			}
			for i, name := range tc.slots {
				env[name] = slots[i]
			}
			want, err := e.Eval(env)
			if err != nil {
				t.Fatalf("Eval(%q, %v): %v", tc.src, env, err)
			}
			got, err := prog.Eval(slots, stack)
			if err != nil {
				t.Fatalf("Program.Eval(%q, %v): %v", tc.src, slots, err)
			}
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Errorf("%q at %v: program = %.17g, interpreter = %.17g", tc.src, slots, got, want)
			}
		}
	}
}

// TestProgramConstFold checks that fully constant expressions fold to a
// single constant instruction at compile time.
func TestProgramConstFold(t *testing.T) {
	prog, err := CompileProgram(MustParse("1 - (1 - phi) ^ 8"), nil, Env{"phi": 0.5})
	if err != nil {
		t.Fatal(err)
	}
	v, ok := prog.Const()
	if !ok {
		t.Fatalf("expected constant program, got %s", prog)
	}
	want := 1 - math.Pow(0.5, 8)
	if v != want {
		t.Errorf("Const = %g, want %g", v, want)
	}
	if prog.MaxStack() != 1 {
		t.Errorf("MaxStack = %d, want 1", prog.MaxStack())
	}
}

// TestProgramUnboundIdentifier checks that unknown identifiers are
// rejected at compile time, not evaluation time.
func TestProgramUnboundIdentifier(t *testing.T) {
	_, err := CompileProgram(MustParse("x + ghost"), []string{"x"}, nil)
	if !errors.Is(err, ErrUnboundIdentifier) {
		t.Fatalf("error = %v, want ErrUnboundIdentifier", err)
	}
}

// TestProgramSlotShadowsAttr mirrors model.Env: a formal parameter takes
// precedence over an attribute of the same name.
func TestProgramSlotShadowsAttr(t *testing.T) {
	prog, err := CompileProgram(MustParse("n * 2"), []string{"n"}, Env{"n": 99})
	if err != nil {
		t.Fatal(err)
	}
	got, err := prog.Eval([]float64{3}, make([]float64, prog.MaxStack()))
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Errorf("Eval = %g, want 6 (slot must shadow attribute)", got)
	}
}

// TestProgramRuntimeErrors checks that the compiled program reports the
// same error classes as the interpreter.
func TestProgramRuntimeErrors(t *testing.T) {
	cases := []struct {
		src  string
		want error
	}{
		{"1 / x", ErrDivisionByZero},
		{"x ^ 0.5", ErrDomain}, // x = -1 below: sqrt of a negative
		{"log(x)", ErrDomain},  // log(0)
	}
	vals := []float64{0, -1, 0}
	for i, tc := range cases {
		prog, err := CompileProgram(MustParse(tc.src), []string{"x"}, nil)
		if err != nil {
			t.Fatalf("CompileProgram(%q): %v", tc.src, err)
		}
		_, err = prog.Eval([]float64{vals[i]}, make([]float64, prog.MaxStack()))
		if !errors.Is(err, tc.want) {
			t.Errorf("%q: error = %v, want %v", tc.src, err, tc.want)
		}
	}
}

// TestProgramAllocFree confirms the execute phase performs no heap
// allocation once slot and stack buffers are provided.
func TestProgramAllocFree(t *testing.T) {
	prog := MustCompileProgram(MustParse("1 - (1 - phi) ^ (n * log2(n))"), []string{"n"}, Env{"phi": 1e-6})
	slots := []float64{4096}
	stack := make([]float64, prog.MaxStack())
	avg := testing.AllocsPerRun(100, func() {
		if _, err := prog.Eval(slots, stack); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Errorf("Eval allocates %.1f objects per run, want 0", avg)
	}
}
