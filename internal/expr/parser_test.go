package expr

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func evalString(t *testing.T, src string, env Env) float64 {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func almostEqual(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-12*math.Max(scale, 1)
}

func TestParseAndEval(t *testing.T) {
	env := Env{"x": 3, "y": 2, "list": 1024}
	tests := []struct {
		src  string
		want float64
	}{
		{"1", 1},
		{"1.5", 1.5},
		{".5", 0.5},
		{"2e3", 2000},
		{"2E-3", 0.002},
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"2 ^ 3 ^ 2", 512}, // right-associative
		{"-2 ^ 2", -4},     // unary minus binds looser than ^
		{"(-2) ^ 2", 4},
		{"10 - 3 - 2", 5}, // left-associative
		{"12 / 3 / 2", 2},
		{"x + y", 5},
		{"x * y - y", 4},
		{"-x", -3},
		{"--x", 3},
		{"exp(0)", 1},
		{"log(exp(1))", 1},
		{"log2(list)", 10},
		{"log10(1000)", 3},
		{"sqrt(16)", 4},
		{"abs(-3.5)", 3.5},
		{"floor(2.7)", 2},
		{"ceil(2.1)", 3},
		{"pow(2, 10)", 1024},
		{"min(3, 7)", 3},
		{"max(3, 7)", 7},
		{"list * log2(list)", 10240},
		{"1 - exp(-2 * 0)", 0},
		{"2*x^2 - 3*x + 1", 10},
		{"min(x, y) + max(x, y)", 5},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			got := evalString(t, tt.src, env)
			if !almostEqual(got, tt.want) {
				t.Errorf("eval(%q) = %g, want %g", tt.src, got, tt.want)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"1 +",
		"* 2",
		"(1 + 2",
		"1 + 2)",
		"foo(1)",      // unknown function
		"exp()",       // arity
		"exp(1, 2)",   // arity
		"pow(1)",      // arity
		"min(1,2,3)",  // arity
		"1 2",         // trailing token
		"x $ y",       // bad character
		"1..2",        // malformed number
		"exp(1,, 2)",  // empty argument
		"log(3) 4",    // trailing expression
		"((((((1))))", // unbalanced
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse("1 + $")
	if err == nil {
		t.Fatal("expected error")
	}
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *SyntaxError", err)
	}
	if se.Pos != 4 {
		t.Errorf("Pos = %d, want 4", se.Pos)
	}
	if !strings.Contains(se.Error(), "1 + $") {
		t.Errorf("message %q does not contain the input", se.Error())
	}
}

func TestEvalErrors(t *testing.T) {
	tests := []struct {
		src  string
		env  Env
		want error
	}{
		{"x + 1", Env{}, ErrUnboundIdentifier},
		{"log(0)", nil, ErrDomain},
		{"log(-1)", nil, ErrDomain},
		{"log2(0)", nil, ErrDomain},
		{"log10(-2)", nil, ErrDomain},
		{"sqrt(-1)", nil, ErrDomain},
		{"1 / 0", nil, ErrDivisionByZero},
		{"1 / (x - x)", Env{"x": 5}, ErrDivisionByZero},
		{"(-1) ^ 0.5", nil, ErrDomain},
		{"pow(-1, 0.5)", nil, ErrDomain},
	}
	for _, tt := range tests {
		t.Run(tt.src, func(t *testing.T) {
			e, err := Parse(tt.src)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if _, err := e.Eval(tt.env); !errors.Is(err, tt.want) {
				t.Errorf("Eval error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestVars(t *testing.T) {
	e := MustParse("a * log2(b) + c / (a - d)")
	got := Vars(e)
	want := []string{"a", "b", "c", "d"}
	if len(got) != len(want) {
		t.Fatalf("Vars = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Vars = %v, want %v", got, want)
		}
	}
	if vs := Vars(Num(3)); len(vs) != 0 {
		t.Errorf("Vars(3) = %v, want empty", vs)
	}
}

func TestStringRoundTrip(t *testing.T) {
	env := Env{"x": 1.7, "y": 0.3, "z": 42}
	sources := []string{
		"1 + 2 * 3",
		"(1 + 2) * 3",
		"2 ^ 3 ^ 2",
		"-x",
		"x - (y - z)",
		"x / (y / z)",
		"(x + y) ^ 2",
		"-(x + y)",
		"exp(-x * y / z)",
		"min(x, max(y, z))",
		"x * log2(z) - sqrt(y)",
		"1 - (1 - x) * (1 - y)",
	}
	for _, src := range sources {
		t.Run(src, func(t *testing.T) {
			e1, err := Parse(src)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			printed := e1.String()
			e2, err := Parse(printed)
			if err != nil {
				t.Fatalf("re-Parse(%q): %v", printed, err)
			}
			v1, err1 := e1.Eval(env)
			v2, err2 := e2.Eval(env)
			if err1 != nil || err2 != nil {
				t.Fatalf("eval errors: %v, %v", err1, err2)
			}
			if !almostEqual(v1, v2) {
				t.Errorf("round trip %q -> %q changed value: %g vs %g", src, printed, v1, v2)
			}
		})
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse on invalid input did not panic")
		}
	}()
	MustParse("1 +")
}

func TestEnvCloneMerge(t *testing.T) {
	base := Env{"a": 1, "b": 2}
	clone := base.Clone()
	clone["a"] = 99
	if base["a"] != 1 {
		t.Error("Clone aliases the original map")
	}
	merged := base.Merge(Env{"b": 20, "c": 3})
	if merged["a"] != 1 || merged["b"] != 20 || merged["c"] != 3 {
		t.Errorf("Merge = %v", merged)
	}
	if base["b"] != 2 {
		t.Error("Merge mutated the receiver")
	}
}

func TestNumberFollowedByIdent(t *testing.T) {
	// "2e" should lex as number 2 followed by identifier e when no exponent
	// digits follow; "2 e" is then a parse error (two expressions).
	if _, err := Parse("2e"); err == nil {
		t.Error("Parse(\"2e\") succeeded, want error")
	}
	// But a proper exponent works.
	if got := evalString(t, "2e2", nil); got != 200 {
		t.Errorf("2e2 = %g", got)
	}
}
