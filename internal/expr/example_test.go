package expr_test

import (
	"fmt"

	"socrel/internal/expr"
)

func Example() {
	// Parse the paper's sort-cost expression and evaluate it for a
	// concrete list size.
	e := expr.MustParse("list * log2(list)")
	ops, err := e.Eval(expr.Env{"list": 1024})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("operations: %.0f\n", ops)
	// Output:
	// operations: 10240
}

func ExampleParse() {
	e, err := expr.Parse("1 - exp(-lambda * N / s)")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	p, err := e.Eval(expr.Env{"lambda": 1e-4, "N": 1e9, "s": 1e9})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("Pfail = %.6f\n", p)
	// Output:
	// Pfail = 0.000100
}

func ExampleExpr_diff() {
	// Symbolic differentiation for sensitivity analysis.
	e := expr.MustParse("exp(-g * x)")
	d := expr.Simplify(e.Diff("g"))
	v, err := d.Eval(expr.Env{"g": 0.5, "x": 2})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("d/dg at (0.5, 2): %.6f\n", v)
	// Output:
	// d/dg at (0.5, 2): -0.735759
}

func ExampleBind() {
	// Partially evaluate an expression, leaving some parameters free.
	e := expr.MustParse("a * n + b")
	partial := expr.Bind(e, expr.Env{"a": 2, "b": 0})
	fmt.Println(partial)
	// Output:
	// 2 * n
}
