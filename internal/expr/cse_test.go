package expr

import (
	"math/rand"
	"testing"
)

// TestCSESharedSubterms checks that common subexpressions — whether shared
// by node identity (a DAG) or duplicated structurally in the source — are
// emitted once and reloaded from a local, and that the resulting program
// still matches the tree interpreter exactly.
func TestCSESharedSubterms(t *testing.T) {
	// Structural duplicates: the parser builds distinct nodes, hash-consing
	// must merge them.
	dup, err := CompileProgram(MustParse("((x+1)*(x+1)) * ((x+1)*(x+1))"), []string{"x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Emitting (x+1) once and squaring twice needs well under the 15 ops of
	// the expanded tree.
	if dup.Ops() >= 12 {
		t.Errorf("structurally duplicated program has %d ops, want CSE to shrink it below 12", dup.Ops())
	}
	stack := make([]float64, dup.MaxStack())
	got, err := dup.Eval([]float64{2.5}, stack)
	if err != nil {
		t.Fatal(err)
	}
	want := ((2.5 + 1) * (2.5 + 1)) * ((2.5 + 1) * (2.5 + 1))
	if got != want {
		t.Errorf("Eval = %v, want %v", got, want)
	}

	// Identity-shared DAG: a chain of squarings whose tree expansion is
	// 2^20 nodes must compile to a linear program.
	e := Expr(MustParse("x + 0.5"))
	for i := 0; i < 20; i++ {
		e = Mul(e, e)
	}
	prog, err := CompileProgram(e, []string{"x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Ops() > 100 {
		t.Errorf("DAG program has %d ops, want linear in DAG size", prog.Ops())
	}
	stack = make([]float64, prog.MaxStack())
	got, err = prog.Eval([]float64{0.5001}, stack)
	if err != nil {
		t.Fatal(err)
	}
	acc := 0.5001 + 0.5
	for i := 0; i < 20; i++ {
		acc *= acc
	}
	if got != acc {
		t.Errorf("DAG Eval = %v, want %v (bitwise)", got, acc)
	}
}

// TestCSELaneMatchesScalar holds EvalLane to bitwise agreement with Eval on
// programs with locals, across a lane of random points.
func TestCSELaneMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	srcs := []string{
		"((x+1)*(x+1)) * ((x+1)*(x+1))",
		"(x*y + 1) / (x*y + 2) + (x*y + 1) * (x*y + 2)",
		"sqrt(x*x + y*y) * sqrt(x*x + y*y)",
	}
	const lanes = 8
	for _, src := range srcs {
		prog, err := CompileProgram(MustParse(src), []string{"x", "y"}, nil)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		slots := make([]float64, 2*lanes)
		for i := range slots {
			slots[i] = rng.Float64()*3 + 0.1
		}
		out := make([]float64, lanes)
		laneStack := make([]float64, prog.MaxStack()*lanes+LaneCallScratch)
		if err := prog.EvalLane(slots, lanes, out, laneStack); err != nil {
			t.Fatalf("%s: EvalLane: %v", src, err)
		}
		stack := make([]float64, prog.MaxStack())
		for k := 0; k < lanes; k++ {
			want, err := prog.Eval([]float64{slots[k], slots[lanes+k]}, stack)
			if err != nil {
				t.Fatalf("%s: Eval lane %d: %v", src, k, err)
			}
			if out[k] != want {
				t.Errorf("%s lane %d: EvalLane %v != Eval %v (want bitwise)", src, k, out[k], want)
			}
		}
	}
}

// TestCSEEvalAllocFree pins the steady-state evaluation of a program with
// locals (opTee/opLoad) at zero allocations.
func TestCSEEvalAllocFree(t *testing.T) {
	prog, err := CompileProgram(MustParse("((x+1)*(x+1)) / ((x+1)*(x+1) + 3)"), []string{"x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	stack := make([]float64, prog.MaxStack())
	slots := []float64{1.25}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := prog.Eval(slots, stack); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Eval with locals allocates %v per run, want 0", allocs)
	}
}

// TestCSEConstDedup checks that repeated constants share one constant-pool
// entry (observable through the op count staying linear).
func TestCSEConstDedup(t *testing.T) {
	prog, err := CompileProgram(MustParse("x*0.75 + y*0.75 + x*y*0.75"), []string{"x", "y"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	stack := make([]float64, prog.MaxStack())
	got, err := prog.Eval([]float64{2, 3}, stack)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2*0.75 + 3*0.75 + 2*3*0.75; got != want {
		t.Errorf("Eval = %v, want %v", got, want)
	}
}
