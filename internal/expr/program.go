package expr

import (
	"fmt"
	"math"
)

// Program is an expression compiled to a flat, allocation-free stack
// program. Identifiers are resolved at compile time: formal parameters
// become numbered slots filled per evaluation, attributes become embedded
// constants, and anything else is rejected with ErrUnboundIdentifier —
// moving the whole class of unbound-identifier failures from evaluation
// time to compile time.
//
// Compilation performs common-subexpression elimination: structurally
// equal subtrees are hash-consed into one node, and any node referenced
// more than once is computed a single time into a local (a reserved cell
// at the base of the evaluation stack, written by opTee and reread by
// opLoad). The value a CSE'd program computes is bit-identical to the
// uneliminated one — a reused local holds exactly the value recomputation
// would have produced — so lane/scalar and compiled/interpreted parity
// contracts are unaffected.
//
// A Program is immutable after compilation and safe for concurrent use;
// per-evaluation state lives entirely in the caller-provided stack.
type Program struct {
	src       string
	code      []instr
	consts    []float64
	calls     []compiledCall
	numSlots  int
	numLocals int
	maxStack  int
}

type opcode uint8

const (
	opConst opcode = iota
	opSlot
	opAdd
	opSub
	opMul
	opDiv
	opPow
	opNeg
	opCall
	opTee  // copy the stack top into local idx (no pop)
	opLoad // push local idx onto the stack
)

type instr struct {
	op  opcode
	idx uint32
}

type compiledCall struct {
	name  string
	arity int
	fn    func(args []float64) (float64, error)
}

// CompileProgram compiles e against an evaluation contract: the ordered
// slot names (typically a service's formal parameters) and a constant
// environment (typically its attributes). Slot names shadow constants of
// the same name, matching model.Env. Constant subexpressions are folded at
// compile time with the same operation order the interpreter would use, so
// compiled and interpreted evaluation agree bitwise.
func CompileProgram(e Expr, slotNames []string, consts Env) (*Program, error) {
	slots := make(map[string]int, len(slotNames))
	for i, n := range slotNames {
		slots[n] = i
	}
	e = Fold(e, slotNames, consts)
	e = internExpr(e)
	p := &Program{src: renderSrc(e), numSlots: len(slotNames)}
	em := &emitter{
		p:        p,
		slots:    slots,
		shared:   sharedNodes(e),
		locals:   make(map[Expr]uint32),
		constIdx: make(map[uint64]uint32),
	}
	if err := em.emit(e); err != nil {
		return nil, err
	}
	p.numLocals = len(em.locals)
	p.maxStack = p.computeMaxStack()
	return p, nil
}

// MustCompileProgram compiles a statically known-good expression,
// panicking on error.
func MustCompileProgram(e Expr, slotNames []string, consts Env) *Program {
	p, err := CompileProgram(e, slotNames, consts)
	if err != nil {
		panic(err)
	}
	return p
}

// maxSrcNodes caps the tree size String renders for a compiled program.
// The parametric compiler produces DAGs whose tree expansion can be
// exponential in depth, so rendering must be size-gated; past the cap the
// source form becomes a placeholder.
const maxSrcNodes = 1 << 14

func renderSrc(e Expr) string {
	if n := treeSizeCapped(e, make(map[Expr]int)); n > maxSrcNodes {
		return fmt.Sprintf("<compiled expression wider than %d nodes>", maxSrcNodes)
	}
	return e.String()
}

// treeSizeCapped returns the tree-expansion size of e, saturating at
// maxSrcNodes+1; memoized on node identity so DAGs are measured in time
// linear in their distinct nodes.
func treeSizeCapped(e Expr, memo map[Expr]int) int {
	if s, ok := memo[e]; ok {
		return s
	}
	s := 1
	switch n := e.(type) {
	case *Neg:
		s += treeSizeCapped(n.X, memo)
	case *Binary:
		s += treeSizeCapped(n.L, memo) + treeSizeCapped(n.R, memo)
	case *CallExpr:
		for _, a := range n.Args {
			s += treeSizeCapped(a, memo)
		}
	}
	if s > maxSrcNodes {
		s = maxSrcNodes + 1
	}
	memo[e] = s
	return s
}

// internKey identifies an expression node structurally by its kind, any
// leaf payload, and the identities of its (already canonical) children.
type internKey struct {
	kind byte
	op   Op
	name string
	bits uint64
	a, b Expr
}

// internExpr hash-conses e bottom-up so that structurally equal subtrees
// become pointer-identical, turning structural equality into pointer
// equality for the sharing analysis below.
func internExpr(e Expr) Expr {
	return internMemo(e, make(map[internKey]Expr), make(map[Expr]Expr))
}

func internMemo(e Expr, canon map[internKey]Expr, done map[Expr]Expr) Expr {
	if c, ok := done[e]; ok {
		return c
	}
	var out Expr
	var key internKey
	haveKey := true
	switch n := e.(type) {
	case Num:
		key = internKey{kind: 1, bits: math.Float64bits(float64(n))}
		out = n
	case Var:
		key = internKey{kind: 2, name: string(n)}
		out = n
	case *Neg:
		x := internMemo(n.X, canon, done)
		key = internKey{kind: 3, a: x}
		out = &Neg{X: x}
	case *Binary:
		l := internMemo(n.L, canon, done)
		r := internMemo(n.R, canon, done)
		key = internKey{kind: 4, op: n.Op, a: l, b: r}
		out = &Binary{Op: n.Op, L: l, R: r}
	case *CallExpr:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = internMemo(a, canon, done)
		}
		out = &CallExpr{Name: n.Name, Args: args}
		switch len(args) {
		case 1:
			key = internKey{kind: 5, name: n.Name, a: args[0]}
		case 2:
			key = internKey{kind: 5, name: n.Name, a: args[0], b: args[1]}
		default:
			haveKey = false
		}
	default:
		out, haveKey = e, false
	}
	if haveKey {
		if c, ok := canon[key]; ok {
			out = c
		} else {
			canon[key] = out
		}
	}
	done[e] = out
	return out
}

// sharedNodes returns the interior nodes of the (interned) DAG that are
// referenced more than once; each gets a local so it is computed exactly
// once. Leaves (constants, slots) are cheaper to rematerialize than load.
func sharedNodes(root Expr) map[Expr]bool {
	counts := make(map[Expr]int)
	var walk func(Expr)
	walk = func(e Expr) {
		counts[e]++
		if counts[e] != 1 {
			return
		}
		switch n := e.(type) {
		case *Neg:
			walk(n.X)
		case *Binary:
			walk(n.L)
			walk(n.R)
		case *CallExpr:
			for _, a := range n.Args {
				walk(a)
			}
		}
	}
	walk(root)
	shared := make(map[Expr]bool)
	for node, c := range counts {
		if c < 2 {
			continue
		}
		switch node.(type) {
		case Num, Var:
		default:
			shared[node] = true
		}
	}
	return shared
}

type emitter struct {
	p        *Program
	slots    map[string]int
	shared   map[Expr]bool
	locals   map[Expr]uint32 // shared node -> assigned local (once emitted)
	constIdx map[uint64]uint32
}

func (em *emitter) emit(e Expr) error {
	if idx, ok := em.locals[e]; ok {
		em.p.code = append(em.p.code, instr{op: opLoad, idx: idx})
		return nil
	}
	if err := em.emitNode(e); err != nil {
		return err
	}
	if em.shared[e] {
		idx := uint32(len(em.locals))
		em.locals[e] = idx
		em.p.code = append(em.p.code, instr{op: opTee, idx: idx})
	}
	return nil
}

func (em *emitter) emitNode(e Expr) error {
	p := em.p
	switch n := e.(type) {
	case Num:
		bits := math.Float64bits(float64(n))
		ci, ok := em.constIdx[bits]
		if !ok {
			ci = uint32(len(p.consts))
			p.consts = append(p.consts, float64(n))
			em.constIdx[bits] = ci
		}
		p.code = append(p.code, instr{op: opConst, idx: ci})
		return nil
	case Var:
		i, ok := em.slots[string(n)]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnboundIdentifier, string(n))
		}
		p.code = append(p.code, instr{op: opSlot, idx: uint32(i)})
		return nil
	case *Neg:
		if err := em.emit(n.X); err != nil {
			return err
		}
		p.code = append(p.code, instr{op: opNeg})
		return nil
	case *Binary:
		if err := em.emit(n.L); err != nil {
			return err
		}
		if err := em.emit(n.R); err != nil {
			return err
		}
		var op opcode
		switch n.Op {
		case OpAdd:
			op = opAdd
		case OpSub:
			op = opSub
		case OpMul:
			op = opMul
		case OpDiv:
			op = opDiv
		case OpPow:
			op = opPow
		default:
			return fmt.Errorf("expr: compile: unknown operator %v", n.Op)
		}
		p.code = append(p.code, instr{op: op})
		return nil
	case *CallExpr:
		b, ok := builtins[n.Name]
		if !ok {
			return fmt.Errorf("expr: compile: unknown function %q", n.Name)
		}
		if len(n.Args) != b.arity {
			return fmt.Errorf("expr: compile: %s expects %d argument(s), got %d", n.Name, b.arity, len(n.Args))
		}
		for _, a := range n.Args {
			if err := em.emit(a); err != nil {
				return err
			}
		}
		p.code = append(p.code, instr{op: opCall, idx: uint32(len(p.calls))})
		p.calls = append(p.calls, compiledCall{name: n.Name, arity: b.arity, fn: b.eval})
		return nil
	default:
		return fmt.Errorf("expr: compile: unsupported node %T", e)
	}
}

// computeMaxStack returns the total stack requirement: the locals region
// at the base plus the deepest operand excursion above it.
func (p *Program) computeMaxStack() int {
	sp, best := 0, 0
	for _, in := range p.code {
		switch in.op {
		case opConst, opSlot, opLoad:
			sp++
		case opAdd, opSub, opMul, opDiv, opPow:
			sp--
		case opNeg, opTee:
			// depth unchanged
		case opCall:
			sp -= p.calls[in.idx].arity - 1
		}
		if sp > best {
			best = sp
		}
	}
	return p.numLocals + best
}

// NumSlots returns the number of parameter slots the program reads.
func (p *Program) NumSlots() int { return p.numSlots }

// MaxStack returns the evaluation-stack depth Eval requires (including the
// locals region common-subexpression elimination reserves at its base).
func (p *Program) MaxStack() int { return p.maxStack }

// Ops returns the number of instructions in the compiled program.
func (p *Program) Ops() int { return len(p.code) }

// Const reports whether the program folded to a single constant, and its
// value.
func (p *Program) Const() (float64, bool) {
	if len(p.code) == 1 && p.code[0].op == opConst {
		return p.consts[0], true
	}
	return 0, false
}

// String returns the (folded) source form of the compiled expression, or a
// placeholder when the tree expansion of the compiled DAG is too large to
// render.
func (p *Program) String() string { return p.src }

// LaneCallScratch is the number of extra entries EvalLane requires at the
// tail of its stack, used as gather scratch for builtin-call arguments.
// No builtin today exceeds this arity; one that did would fall back to an
// allocation rather than fail.
const LaneCallScratch = 8

// EvalLane runs the program over a structure-of-arrays lane of `lanes`
// parameter points in one instruction pass: slot s of point k lives at
// slots[s*lanes+k], and the result of point k is written to out[k]. The
// per-point operation sequence is exactly Eval's, so every lane result is
// bit-identical to a scalar evaluation of the same point; only the
// instruction-dispatch overhead is amortized across the lane.
//
// stack must hold at least MaxStack()*lanes+LaneCallScratch entries (the
// tail is scratch for builtin-call arguments, kept out of the lane rows
// so no per-call buffer escapes to the heap) and out at least lanes
// entries; neither is retained. A point-level failure (division by zero,
// domain error) fails the whole lane — callers that need per-point error
// attribution re-run the lane's points through Eval.
func (p *Program) EvalLane(slots []float64, lanes int, out, stack []float64) error {
	sp := p.numLocals
	for _, in := range p.code {
		switch in.op {
		case opConst:
			c := p.consts[in.idx]
			row := stack[sp*lanes : sp*lanes+lanes]
			for k := range row {
				row[k] = c
			}
			sp++
		case opSlot:
			copy(stack[sp*lanes:sp*lanes+lanes], slots[int(in.idx)*lanes:int(in.idx)*lanes+lanes])
			sp++
		case opLoad:
			copy(stack[sp*lanes:sp*lanes+lanes], stack[int(in.idx)*lanes:int(in.idx)*lanes+lanes])
			sp++
		case opTee:
			copy(stack[int(in.idx)*lanes:int(in.idx)*lanes+lanes], stack[(sp-1)*lanes:sp*lanes])
		case opAdd:
			sp--
			dst := stack[(sp-1)*lanes : sp*lanes]
			src := stack[sp*lanes : (sp+1)*lanes]
			for k := range dst {
				dst[k] += src[k]
			}
		case opSub:
			sp--
			dst := stack[(sp-1)*lanes : sp*lanes]
			src := stack[sp*lanes : (sp+1)*lanes]
			for k := range dst {
				dst[k] -= src[k]
			}
		case opMul:
			sp--
			dst := stack[(sp-1)*lanes : sp*lanes]
			src := stack[sp*lanes : (sp+1)*lanes]
			for k := range dst {
				dst[k] *= src[k]
			}
		case opDiv:
			sp--
			dst := stack[(sp-1)*lanes : sp*lanes]
			src := stack[sp*lanes : (sp+1)*lanes]
			for k := range dst {
				if src[k] == 0 {
					return fmt.Errorf("%w: in %s", ErrDivisionByZero, p.src)
				}
				dst[k] /= src[k]
			}
		case opPow:
			sp--
			dst := stack[(sp-1)*lanes : sp*lanes]
			src := stack[sp*lanes : (sp+1)*lanes]
			for k := range dst {
				v := math.Pow(dst[k], src[k])
				if math.IsNaN(v) {
					return fmt.Errorf("%w: pow(%g, %g)", ErrDomain, dst[k], src[k])
				}
				dst[k] = v
			}
		case opNeg:
			row := stack[(sp-1)*lanes : sp*lanes]
			for k := range row {
				row[k] = -row[k]
			}
		case opCall:
			c := &p.calls[in.idx]
			sp -= c.arity
			// Gather arguments into the stack's scratch tail: a local
			// buffer would escape through the indirect builtin call and
			// cost one heap allocation per lane evaluation.
			args := stack[len(stack)-LaneCallScratch:]
			if c.arity > LaneCallScratch {
				args = make([]float64, c.arity)
			} else {
				args = args[:c.arity]
			}
			for k := 0; k < lanes; k++ {
				for a := 0; a < c.arity; a++ {
					args[a] = stack[(sp+a)*lanes+k]
				}
				v, err := c.fn(args)
				if err != nil {
					return err
				}
				stack[sp*lanes+k] = v
			}
			sp++
		}
	}
	copy(out[:lanes], stack[p.numLocals*lanes:(p.numLocals+1)*lanes])
	return nil
}

// Eval runs the program. slots must hold at least NumSlots values and
// stack at least MaxStack entries; neither is retained, so callers can
// reuse scratch buffers across evaluations for allocation-free operation.
func (p *Program) Eval(slots, stack []float64) (float64, error) {
	sp := p.numLocals
	for _, in := range p.code {
		switch in.op {
		case opConst:
			stack[sp] = p.consts[in.idx]
			sp++
		case opSlot:
			stack[sp] = slots[in.idx]
			sp++
		case opLoad:
			stack[sp] = stack[in.idx]
			sp++
		case opTee:
			stack[in.idx] = stack[sp-1]
		case opAdd:
			sp--
			stack[sp-1] += stack[sp]
		case opSub:
			sp--
			stack[sp-1] -= stack[sp]
		case opMul:
			sp--
			stack[sp-1] *= stack[sp]
		case opDiv:
			sp--
			if stack[sp] == 0 {
				return 0, fmt.Errorf("%w: in %s", ErrDivisionByZero, p.src)
			}
			stack[sp-1] /= stack[sp]
		case opPow:
			sp--
			v := math.Pow(stack[sp-1], stack[sp])
			if math.IsNaN(v) {
				return 0, fmt.Errorf("%w: pow(%g, %g)", ErrDomain, stack[sp-1], stack[sp])
			}
			stack[sp-1] = v
		case opNeg:
			stack[sp-1] = -stack[sp-1]
		case opCall:
			c := &p.calls[in.idx]
			sp -= c.arity
			v, err := c.fn(stack[sp : sp+c.arity])
			if err != nil {
				return 0, err
			}
			stack[sp] = v
			sp++
		}
	}
	return stack[p.numLocals], nil
}
