package expr

import (
	"fmt"
	"math"
)

// Program is an expression compiled to a flat, allocation-free stack
// program. Identifiers are resolved at compile time: formal parameters
// become numbered slots filled per evaluation, attributes become embedded
// constants, and anything else is rejected with ErrUnboundIdentifier —
// moving the whole class of unbound-identifier failures from evaluation
// time to compile time.
//
// A Program is immutable after compilation and safe for concurrent use;
// per-evaluation state lives entirely in the caller-provided stack.
type Program struct {
	src      string
	code     []instr
	consts   []float64
	calls    []compiledCall
	numSlots int
	maxStack int
}

type opcode uint8

const (
	opConst opcode = iota
	opSlot
	opAdd
	opSub
	opMul
	opDiv
	opPow
	opNeg
	opCall
)

type instr struct {
	op  opcode
	idx uint32
}

type compiledCall struct {
	name  string
	arity int
	fn    func(args []float64) (float64, error)
}

// CompileProgram compiles e against an evaluation contract: the ordered
// slot names (typically a service's formal parameters) and a constant
// environment (typically its attributes). Slot names shadow constants of
// the same name, matching model.Env. Constant subexpressions are folded at
// compile time with the same operation order the interpreter would use, so
// compiled and interpreted evaluation agree bitwise.
func CompileProgram(e Expr, slotNames []string, consts Env) (*Program, error) {
	slots := make(map[string]int, len(slotNames))
	for i, n := range slotNames {
		slots[n] = i
	}
	// Fold attribute constants in, but never a name that a slot shadows.
	folded := consts
	if len(consts) > 0 {
		for _, n := range slotNames {
			if _, shadowed := consts[n]; shadowed {
				folded = consts.Clone()
				for _, sn := range slotNames {
					delete(folded, sn)
				}
				break
			}
		}
		e = Bind(e, folded)
	} else {
		e = Simplify(e)
	}
	p := &Program{src: e.String(), numSlots: len(slotNames)}
	if err := p.emit(e, slots); err != nil {
		return nil, err
	}
	p.maxStack = p.computeMaxStack()
	return p, nil
}

// MustCompileProgram compiles a statically known-good expression,
// panicking on error.
func MustCompileProgram(e Expr, slotNames []string, consts Env) *Program {
	p, err := CompileProgram(e, slotNames, consts)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *Program) emit(e Expr, slots map[string]int) error {
	switch n := e.(type) {
	case Num:
		p.code = append(p.code, instr{op: opConst, idx: uint32(len(p.consts))})
		p.consts = append(p.consts, float64(n))
		return nil
	case Var:
		i, ok := slots[string(n)]
		if !ok {
			return fmt.Errorf("%w: %q", ErrUnboundIdentifier, string(n))
		}
		p.code = append(p.code, instr{op: opSlot, idx: uint32(i)})
		return nil
	case *Neg:
		if err := p.emit(n.X, slots); err != nil {
			return err
		}
		p.code = append(p.code, instr{op: opNeg})
		return nil
	case *Binary:
		if err := p.emit(n.L, slots); err != nil {
			return err
		}
		if err := p.emit(n.R, slots); err != nil {
			return err
		}
		var op opcode
		switch n.Op {
		case OpAdd:
			op = opAdd
		case OpSub:
			op = opSub
		case OpMul:
			op = opMul
		case OpDiv:
			op = opDiv
		case OpPow:
			op = opPow
		default:
			return fmt.Errorf("expr: compile: unknown operator %v", n.Op)
		}
		p.code = append(p.code, instr{op: op})
		return nil
	case *CallExpr:
		b, ok := builtins[n.Name]
		if !ok {
			return fmt.Errorf("expr: compile: unknown function %q", n.Name)
		}
		if len(n.Args) != b.arity {
			return fmt.Errorf("expr: compile: %s expects %d argument(s), got %d", n.Name, b.arity, len(n.Args))
		}
		for _, a := range n.Args {
			if err := p.emit(a, slots); err != nil {
				return err
			}
		}
		p.code = append(p.code, instr{op: opCall, idx: uint32(len(p.calls))})
		p.calls = append(p.calls, compiledCall{name: n.Name, arity: b.arity, fn: b.eval})
		return nil
	default:
		return fmt.Errorf("expr: compile: unsupported node %T", e)
	}
}

func (p *Program) computeMaxStack() int {
	sp, best := 0, 0
	for _, in := range p.code {
		switch in.op {
		case opConst, opSlot:
			sp++
		case opAdd, opSub, opMul, opDiv, opPow:
			sp--
		case opNeg:
			// depth unchanged
		case opCall:
			sp -= p.calls[in.idx].arity - 1
		}
		if sp > best {
			best = sp
		}
	}
	return best
}

// NumSlots returns the number of parameter slots the program reads.
func (p *Program) NumSlots() int { return p.numSlots }

// MaxStack returns the evaluation-stack depth Eval requires.
func (p *Program) MaxStack() int { return p.maxStack }

// Const reports whether the program folded to a single constant, and its
// value.
func (p *Program) Const() (float64, bool) {
	if len(p.code) == 1 && p.code[0].op == opConst {
		return p.consts[0], true
	}
	return 0, false
}

// String returns the (folded) source form of the compiled expression.
func (p *Program) String() string { return p.src }

// LaneCallScratch is the number of extra entries EvalLane requires at the
// tail of its stack, used as gather scratch for builtin-call arguments.
// No builtin today exceeds this arity; one that did would fall back to an
// allocation rather than fail.
const LaneCallScratch = 8

// EvalLane runs the program over a structure-of-arrays lane of `lanes`
// parameter points in one instruction pass: slot s of point k lives at
// slots[s*lanes+k], and the result of point k is written to out[k]. The
// per-point operation sequence is exactly Eval's, so every lane result is
// bit-identical to a scalar evaluation of the same point; only the
// instruction-dispatch overhead is amortized across the lane.
//
// stack must hold at least MaxStack()*lanes+LaneCallScratch entries (the
// tail is scratch for builtin-call arguments, kept out of the lane rows
// so no per-call buffer escapes to the heap) and out at least lanes
// entries; neither is retained. A point-level failure (division by zero,
// domain error) fails the whole lane — callers that need per-point error
// attribution re-run the lane's points through Eval.
func (p *Program) EvalLane(slots []float64, lanes int, out, stack []float64) error {
	sp := 0
	for _, in := range p.code {
		switch in.op {
		case opConst:
			c := p.consts[in.idx]
			row := stack[sp*lanes : sp*lanes+lanes]
			for k := range row {
				row[k] = c
			}
			sp++
		case opSlot:
			copy(stack[sp*lanes:sp*lanes+lanes], slots[int(in.idx)*lanes:int(in.idx)*lanes+lanes])
			sp++
		case opAdd:
			sp--
			dst := stack[(sp-1)*lanes : sp*lanes]
			src := stack[sp*lanes : (sp+1)*lanes]
			for k := range dst {
				dst[k] += src[k]
			}
		case opSub:
			sp--
			dst := stack[(sp-1)*lanes : sp*lanes]
			src := stack[sp*lanes : (sp+1)*lanes]
			for k := range dst {
				dst[k] -= src[k]
			}
		case opMul:
			sp--
			dst := stack[(sp-1)*lanes : sp*lanes]
			src := stack[sp*lanes : (sp+1)*lanes]
			for k := range dst {
				dst[k] *= src[k]
			}
		case opDiv:
			sp--
			dst := stack[(sp-1)*lanes : sp*lanes]
			src := stack[sp*lanes : (sp+1)*lanes]
			for k := range dst {
				if src[k] == 0 {
					return fmt.Errorf("%w: in %s", ErrDivisionByZero, p.src)
				}
				dst[k] /= src[k]
			}
		case opPow:
			sp--
			dst := stack[(sp-1)*lanes : sp*lanes]
			src := stack[sp*lanes : (sp+1)*lanes]
			for k := range dst {
				v := math.Pow(dst[k], src[k])
				if math.IsNaN(v) {
					return fmt.Errorf("%w: pow(%g, %g)", ErrDomain, dst[k], src[k])
				}
				dst[k] = v
			}
		case opNeg:
			row := stack[(sp-1)*lanes : sp*lanes]
			for k := range row {
				row[k] = -row[k]
			}
		case opCall:
			c := &p.calls[in.idx]
			sp -= c.arity
			// Gather arguments into the stack's scratch tail: a local
			// buffer would escape through the indirect builtin call and
			// cost one heap allocation per lane evaluation.
			args := stack[len(stack)-LaneCallScratch:]
			if c.arity > LaneCallScratch {
				args = make([]float64, c.arity)
			} else {
				args = args[:c.arity]
			}
			for k := 0; k < lanes; k++ {
				for a := 0; a < c.arity; a++ {
					args[a] = stack[(sp+a)*lanes+k]
				}
				v, err := c.fn(args)
				if err != nil {
					return err
				}
				stack[sp*lanes+k] = v
			}
			sp++
		}
	}
	copy(out[:lanes], stack[:lanes])
	return nil
}

// Eval runs the program. slots must hold at least NumSlots values and
// stack at least MaxStack entries; neither is retained, so callers can
// reuse scratch buffers across evaluations for allocation-free operation.
func (p *Program) Eval(slots, stack []float64) (float64, error) {
	sp := 0
	for _, in := range p.code {
		switch in.op {
		case opConst:
			stack[sp] = p.consts[in.idx]
			sp++
		case opSlot:
			stack[sp] = slots[in.idx]
			sp++
		case opAdd:
			sp--
			stack[sp-1] += stack[sp]
		case opSub:
			sp--
			stack[sp-1] -= stack[sp]
		case opMul:
			sp--
			stack[sp-1] *= stack[sp]
		case opDiv:
			sp--
			if stack[sp] == 0 {
				return 0, fmt.Errorf("%w: in %s", ErrDivisionByZero, p.src)
			}
			stack[sp-1] /= stack[sp]
		case opPow:
			sp--
			v := math.Pow(stack[sp-1], stack[sp])
			if math.IsNaN(v) {
				return 0, fmt.Errorf("%w: pow(%g, %g)", ErrDomain, stack[sp-1], stack[sp])
			}
			stack[sp-1] = v
		case opNeg:
			stack[sp-1] = -stack[sp-1]
		case opCall:
			c := &p.calls[in.idx]
			sp -= c.arity
			v, err := c.fn(stack[sp : sp+c.arity])
			if err != nil {
				return 0, err
			}
			stack[sp] = v
			sp++
		}
	}
	return stack[0], nil
}
