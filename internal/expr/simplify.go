package expr

import "math"

// Simplify returns an algebraically simplified expression with the same
// value (up to floating-point re-association on the rewritten subterms)
// on every environment where the original is defined. It performs
// constant folding, the usual identity eliminations (x+0, x*1, x*0, x^1,
// x^0, --x, 0/x, folding of constant-only function calls), nested
// constant-shift cancellation (1-(1-x) collapses to x, constant terms of
// +/- chains gather into one), constant-factor gathering for products,
// and rational-form normalization ((a/b)/c folds to a/(b*c), a/(b/c) to
// (a*c)/b) — the rewrite set the parametric chain elimination needs to
// keep closed forms small.
//
// Simplification can extend the domain of an expression (for example
// 0 * log(x) simplifies to 0, which is defined at x <= 0); it never
// shrinks it. Simplify is memoized on node identity, so expressions with
// heavy subterm sharing (DAGs) simplify in time linear in the number of
// distinct nodes, not the tree expansion.
func Simplify(e Expr) Expr {
	return simplifyMemo(e, make(map[Expr]Expr))
}

func simplifyMemo(e Expr, memo map[Expr]Expr) Expr {
	if s, ok := memo[e]; ok {
		return s
	}
	s := simplifyNode(e, memo)
	memo[e] = s
	return s
}

func simplifyNode(e Expr, memo map[Expr]Expr) Expr {
	switch n := e.(type) {
	case Num, Var:
		return e

	case *Neg:
		x := simplifyMemo(n.X, memo)
		if c, ok := x.(Num); ok {
			return Num(-float64(c))
		}
		if inner, ok := x.(*Neg); ok {
			return inner.X
		}
		return &Neg{X: x}

	case *Binary:
		l, r := simplifyMemo(n.L, memo), simplifyMemo(n.R, memo)
		lc, lIsConst := l.(Num)
		rc, rIsConst := r.(Num)
		if lIsConst && rIsConst {
			if v, err := (&Binary{Op: n.Op, L: l, R: r}).Eval(nil); err == nil && !math.IsNaN(v) {
				return Num(v)
			}
		}
		switch n.Op {
		case OpAdd:
			if lIsConst && float64(lc) == 0 {
				return r
			}
			if rIsConst && float64(rc) == 0 {
				return l
			}
			if neg, ok := r.(*Neg); ok { // l + (-x) = l - x
				return simplifyMemo(Sub(l, neg.X), memo)
			}
			if neg, ok := l.(*Neg); ok { // (-x) + r = r - x
				return simplifyMemo(Sub(r, neg.X), memo)
			}
			if lIsConst {
				if out, ok := constShift(float64(lc), r, false); ok {
					return simplifyMemo(out, memo)
				}
			}
			if rIsConst {
				if out, ok := constShift(float64(rc), l, false); ok {
					return simplifyMemo(out, memo)
				}
			}
		case OpSub:
			if rIsConst && float64(rc) == 0 {
				return l
			}
			if lIsConst && float64(lc) == 0 {
				return simplifyMemo(&Neg{X: r}, memo)
			}
			if neg, ok := r.(*Neg); ok { // l - (-x) = l + x
				return simplifyMemo(Add(l, neg.X), memo)
			}
			if lIsConst {
				// c - (k - x) = (c-k) + x: cancels nested 1-(1-x) chains.
				if out, ok := constShift(float64(lc), r, true); ok {
					return simplifyMemo(out, memo)
				}
			}
			if rIsConst {
				// x - c = (-c) + x, gathered through the same shift rules.
				if out, ok := constShift(-float64(rc), l, false); ok {
					return simplifyMemo(out, memo)
				}
			}
		case OpMul:
			if lIsConst {
				if float64(lc) == 0 {
					return Num(0)
				}
				if float64(lc) == 1 {
					return r
				}
				if out, ok := constScale(float64(lc), r); ok {
					return simplifyMemo(out, memo)
				}
			}
			if rIsConst {
				if float64(rc) == 0 {
					return Num(0)
				}
				if float64(rc) == 1 {
					return l
				}
				if out, ok := constScale(float64(rc), l); ok {
					return simplifyMemo(out, memo)
				}
			}
		case OpDiv:
			if lIsConst && float64(lc) == 0 {
				return Num(0)
			}
			if rIsConst && float64(rc) == 1 {
				return l
			}
			if ld, ok := l.(*Binary); ok && ld.Op == OpDiv { // (a/b)/c = a/(b*c)
				return simplifyMemo(Div(ld.L, Mul(ld.R, r)), memo)
			}
			if rd, ok := r.(*Binary); ok && rd.Op == OpDiv { // a/(b/c) = (a*c)/b
				return simplifyMemo(Div(Mul(l, rd.R), rd.L), memo)
			}
		case OpPow:
			if rIsConst {
				if float64(rc) == 1 {
					return l
				}
				if float64(rc) == 0 {
					return Num(1)
				}
			}
			if lIsConst && float64(lc) == 1 {
				return Num(1)
			}
		}
		if l == n.L && r == n.R {
			return n
		}
		return &Binary{Op: n.Op, L: l, R: r}

	case *CallExpr:
		args := make([]Expr, len(n.Args))
		allConst := true
		for i, a := range n.Args {
			args[i] = simplifyMemo(a, memo)
			if _, ok := args[i].(Num); !ok {
				allConst = false
			}
		}
		out := &CallExpr{Name: n.Name, Args: args}
		if allConst {
			if v, err := out.Eval(nil); err == nil && !math.IsNaN(v) {
				return Num(v)
			}
		}
		return out

	default:
		return e
	}
}

// constShift gathers a constant added to (negate=false) or subtracting
// (negate=true) an inner +/- node that carries its own constant:
//
//	c + (k + x) = (c+k) + x    c - (k + x) = (c-k) - x
//	c + (k - x) = (c+k) - x    c - (k - x) = (c-k) + x
//	c + (x - k) = (c-k) + x    c - (x - k) = (c+k) - x
//
// The returned expression needs one more Simplify pass to fold the new
// constant (and cancel it when it lands on zero, as in 1-(1-x) = x).
func constShift(c float64, x Expr, negate bool) (Expr, bool) {
	b, ok := x.(*Binary)
	if !ok {
		return nil, false
	}
	switch b.Op {
	case OpAdd:
		if k, ok := b.L.(Num); ok {
			if negate {
				return Sub(Num(c-float64(k)), b.R), true
			}
			return Add(Num(c+float64(k)), b.R), true
		}
		if k, ok := b.R.(Num); ok {
			if negate {
				return Sub(Num(c-float64(k)), b.L), true
			}
			return Add(Num(c+float64(k)), b.L), true
		}
	case OpSub:
		if k, ok := b.L.(Num); ok { // (k - x)
			if negate {
				return Add(Num(c-float64(k)), b.R), true
			}
			return Sub(Num(c+float64(k)), b.R), true
		}
		if k, ok := b.R.(Num); ok { // (x - k)
			if negate {
				return Sub(Num(c+float64(k)), b.L), true
			}
			return Add(Num(c-float64(k)), b.L), true
		}
	}
	return nil, false
}

// constScale gathers a constant factor into an inner product or quotient
// that carries its own constant: c*(k*x) = (c*k)*x, c*(a/b) = (c*a)/b.
func constScale(c float64, x Expr) (Expr, bool) {
	b, ok := x.(*Binary)
	if !ok {
		return nil, false
	}
	switch b.Op {
	case OpMul:
		if k, ok := b.L.(Num); ok {
			return Mul(Num(c*float64(k)), b.R), true
		}
		if k, ok := b.R.(Num); ok {
			return Mul(Num(c*float64(k)), b.L), true
		}
	case OpDiv:
		if k, ok := b.L.(Num); ok {
			return Div(Num(c*float64(k)), b.R), true
		}
	}
	return nil, false
}

// Bind substitutes constant values for the given identifiers, returning a
// partially evaluated (and simplified) expression. Identifiers absent from
// bindings remain free.
func Bind(e Expr, bindings Env) Expr {
	return Simplify(bindMemo(e, bindings, make(map[Expr]Expr)))
}

func bindMemo(e Expr, bindings Env, memo map[Expr]Expr) Expr {
	if b, ok := memo[e]; ok {
		return b
	}
	b := bindNode(e, bindings, memo)
	memo[e] = b
	return b
}

func bindNode(e Expr, bindings Env, memo map[Expr]Expr) Expr {
	switch n := e.(type) {
	case Num:
		return n
	case Var:
		if v, ok := bindings[string(n)]; ok {
			return Num(v)
		}
		return n
	case *Neg:
		return &Neg{X: bindMemo(n.X, bindings, memo)}
	case *Binary:
		return &Binary{Op: n.Op, L: bindMemo(n.L, bindings, memo), R: bindMemo(n.R, bindings, memo)}
	case *CallExpr:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = bindMemo(a, bindings, memo)
		}
		return &CallExpr{Name: n.Name, Args: args}
	default:
		return e
	}
}

// Subst substitutes expressions for identifiers, returning the simplified
// result. Identifiers absent from bindings remain free. The parametric
// compiler uses it to inline actual-parameter expressions into a callee's
// failure law.
func Subst(e Expr, bindings map[string]Expr) Expr {
	return Simplify(substMemo(e, bindings, make(map[Expr]Expr)))
}

func substMemo(e Expr, bindings map[string]Expr, memo map[Expr]Expr) Expr {
	if s, ok := memo[e]; ok {
		return s
	}
	s := substNode(e, bindings, memo)
	memo[e] = s
	return s
}

func substNode(e Expr, bindings map[string]Expr, memo map[Expr]Expr) Expr {
	switch n := e.(type) {
	case Num:
		return n
	case Var:
		if r, ok := bindings[string(n)]; ok {
			return r
		}
		return n
	case *Neg:
		return &Neg{X: substMemo(n.X, bindings, memo)}
	case *Binary:
		return &Binary{Op: n.Op, L: substMemo(n.L, bindings, memo), R: substMemo(n.R, bindings, memo)}
	case *CallExpr:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = substMemo(a, bindings, memo)
		}
		return &CallExpr{Name: n.Name, Args: args}
	default:
		return e
	}
}

// Fold applies the compiled-evaluation contract symbolically: slot names
// shadow constants of the same name, every remaining constant is bound in,
// and the result is simplified. CompileProgram folds through exactly this
// function, so a caller that needs the symbolic form a program was emitted
// from (the parametric compiler) gets the identical expression.
func Fold(e Expr, slotNames []string, consts Env) Expr {
	if len(consts) == 0 {
		return Simplify(e)
	}
	folded := consts
	for _, n := range slotNames {
		if _, shadowed := consts[n]; shadowed {
			folded = consts.Clone()
			for _, sn := range slotNames {
				delete(folded, sn)
			}
			break
		}
	}
	return Bind(e, folded)
}
