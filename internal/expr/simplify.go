package expr

import "math"

// Simplify returns an algebraically simplified expression with the same
// value on every environment where the original is defined. It performs
// constant folding and the usual identity eliminations (x+0, x*1, x*0,
// x^1, x^0, --x, 0/x, folding of constant-only function calls).
//
// Simplification can extend the domain of an expression (for example
// 0 * log(x) simplifies to 0, which is defined at x <= 0); it never
// shrinks it.
func Simplify(e Expr) Expr {
	switch n := e.(type) {
	case Num, Var:
		return e

	case *Neg:
		x := Simplify(n.X)
		if c, ok := x.(Num); ok {
			return Num(-float64(c))
		}
		if inner, ok := x.(*Neg); ok {
			return inner.X
		}
		return &Neg{X: x}

	case *Binary:
		l, r := Simplify(n.L), Simplify(n.R)
		lc, lIsConst := l.(Num)
		rc, rIsConst := r.(Num)
		if lIsConst && rIsConst {
			if v, err := (&Binary{Op: n.Op, L: l, R: r}).Eval(nil); err == nil && !math.IsNaN(v) {
				return Num(v)
			}
		}
		switch n.Op {
		case OpAdd:
			if lIsConst && float64(lc) == 0 {
				return r
			}
			if rIsConst && float64(rc) == 0 {
				return l
			}
		case OpSub:
			if rIsConst && float64(rc) == 0 {
				return l
			}
			if lIsConst && float64(lc) == 0 {
				return Simplify(&Neg{X: r})
			}
		case OpMul:
			if lIsConst {
				if float64(lc) == 0 {
					return Num(0)
				}
				if float64(lc) == 1 {
					return r
				}
			}
			if rIsConst {
				if float64(rc) == 0 {
					return Num(0)
				}
				if float64(rc) == 1 {
					return l
				}
			}
		case OpDiv:
			if lIsConst && float64(lc) == 0 {
				return Num(0)
			}
			if rIsConst && float64(rc) == 1 {
				return l
			}
		case OpPow:
			if rIsConst {
				if float64(rc) == 1 {
					return l
				}
				if float64(rc) == 0 {
					return Num(1)
				}
			}
			if lIsConst && float64(lc) == 1 {
				return Num(1)
			}
		}
		return &Binary{Op: n.Op, L: l, R: r}

	case *CallExpr:
		args := make([]Expr, len(n.Args))
		allConst := true
		for i, a := range n.Args {
			args[i] = Simplify(a)
			if _, ok := args[i].(Num); !ok {
				allConst = false
			}
		}
		out := &CallExpr{Name: n.Name, Args: args}
		if allConst {
			if v, err := out.Eval(nil); err == nil && !math.IsNaN(v) {
				return Num(v)
			}
		}
		return out

	default:
		return e
	}
}

// Bind substitutes constant values for the given identifiers, returning a
// partially evaluated (and simplified) expression. Identifiers absent from
// bindings remain free.
func Bind(e Expr, bindings Env) Expr {
	return Simplify(bind(e, bindings))
}

func bind(e Expr, bindings Env) Expr {
	switch n := e.(type) {
	case Num:
		return n
	case Var:
		if v, ok := bindings[string(n)]; ok {
			return Num(v)
		}
		return n
	case *Neg:
		return &Neg{X: bind(n.X, bindings)}
	case *Binary:
		return &Binary{Op: n.Op, L: bind(n.L, bindings), R: bind(n.R, bindings)}
	case *CallExpr:
		args := make([]Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = bind(a, bindings)
		}
		return &CallExpr{Name: n.Name, Args: args}
	default:
		return e
	}
}
