package expr

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Env binds identifiers to numeric values during evaluation.
type Env map[string]float64

// Clone returns an independent copy of the environment.
func (e Env) Clone() Env {
	out := make(Env, len(e))
	for k, v := range e {
		out[k] = v
	}
	return out
}

// Merge returns a new Env containing e's bindings overridden by o's.
func (e Env) Merge(o Env) Env {
	out := e.Clone()
	for k, v := range o {
		out[k] = v
	}
	return out
}

// Evaluation errors.
var (
	// ErrUnboundIdentifier is returned when evaluation encounters an
	// identifier with no binding in the environment.
	ErrUnboundIdentifier = errors.New("expr: unbound identifier")
	// ErrDomain is returned when a function is evaluated outside its
	// mathematical domain (e.g. log of a non-positive number).
	ErrDomain = errors.New("expr: domain error")
	// ErrDivisionByZero is returned when a division has a zero denominator.
	ErrDivisionByZero = errors.New("expr: division by zero")
)

// Expr is an immutable expression tree node.
type Expr interface {
	// Eval computes the value of the expression under env.
	Eval(env Env) (float64, error)
	// Vars appends the free identifiers of the expression to set.
	vars(set map[string]bool)
	// Diff returns the symbolic derivative with respect to name.
	Diff(name string) Expr
	// String renders a parseable representation of the expression.
	String() string
	// precedence is used by String to parenthesize minimally.
	precedence() int
}

// Vars returns the sorted set of free identifiers in e.
func Vars(e Expr) []string {
	set := make(map[string]bool)
	e.vars(set)
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Num is a numeric literal.
type Num float64

// Eval implements Expr.
func (n Num) Eval(Env) (float64, error) { return float64(n), nil }

func (n Num) vars(map[string]bool) {}

// Diff implements Expr: the derivative of a constant is zero.
func (n Num) Diff(string) Expr { return Num(0) }

func (n Num) String() string {
	if float64(n) < 0 {
		return "(" + strconv.FormatFloat(float64(n), 'g', -1, 64) + ")"
	}
	return strconv.FormatFloat(float64(n), 'g', -1, 64)
}

func (n Num) precedence() int { return 5 }

// Var is an identifier resolved against the evaluation environment.
type Var string

// Eval implements Expr.
func (v Var) Eval(env Env) (float64, error) {
	val, ok := env[string(v)]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnboundIdentifier, string(v))
	}
	return val, nil
}

func (v Var) vars(set map[string]bool) { set[string(v)] = true }

// Diff implements Expr.
func (v Var) Diff(name string) Expr {
	if string(v) == name {
		return Num(1)
	}
	return Num(0)
}

func (v Var) String() string { return string(v) }

func (v Var) precedence() int { return 5 }

// Op enumerates binary operators.
type Op int

// Binary operators.
const (
	OpAdd Op = iota + 1
	OpSub
	OpMul
	OpDiv
	OpPow
)

func (o Op) String() string {
	switch o {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpPow:
		return "^"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

func (o Op) prec() int {
	switch o {
	case OpAdd, OpSub:
		return 1
	case OpMul, OpDiv:
		return 2
	case OpPow:
		return 4
	default:
		return 0
	}
}

// Binary is a binary operation node.
type Binary struct {
	Op   Op
	L, R Expr
}

// Eval implements Expr.
func (b *Binary) Eval(env Env) (float64, error) {
	l, err := b.L.Eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.R.Eval(env)
	if err != nil {
		return 0, err
	}
	switch b.Op {
	case OpAdd:
		return l + r, nil
	case OpSub:
		return l - r, nil
	case OpMul:
		return l * r, nil
	case OpDiv:
		if r == 0 {
			return 0, fmt.Errorf("%w: %s / 0", ErrDivisionByZero, b.L)
		}
		return l / r, nil
	case OpPow:
		v := math.Pow(l, r)
		if math.IsNaN(v) {
			return 0, fmt.Errorf("%w: pow(%g, %g)", ErrDomain, l, r)
		}
		return v, nil
	default:
		return 0, fmt.Errorf("expr: unknown operator %v", b.Op)
	}
}

func (b *Binary) vars(set map[string]bool) {
	b.L.vars(set)
	b.R.vars(set)
}

// Diff implements Expr using the standard differentiation rules. For powers
// with a non-constant exponent it rewrites f^g as exp(g*log(f)).
func (b *Binary) Diff(name string) Expr {
	dl, dr := b.L.Diff(name), b.R.Diff(name)
	switch b.Op {
	case OpAdd:
		return Add(dl, dr)
	case OpSub:
		return Sub(dl, dr)
	case OpMul:
		return Add(Mul(dl, b.R), Mul(b.L, dr))
	case OpDiv:
		// (l/r)' = (l'r - lr') / r^2
		return Div(Sub(Mul(dl, b.R), Mul(b.L, dr)), Pow(b.R, Num(2)))
	case OpPow:
		if rc, ok := b.R.(Num); ok {
			// (f^c)' = c f^(c-1) f'
			return Mul(Mul(b.R, Pow(b.L, Num(float64(rc)-1))), dl)
		}
		// f^g = exp(g log f): (f^g)' = f^g (g' log f + g f'/f)
		return Mul(b, Add(Mul(dr, Call1("log", b.L)), Mul(b.R, Div(dl, b.L))))
	default:
		return Num(math.NaN())
	}
}

func (b *Binary) String() string {
	var sb strings.Builder
	writeChild := func(c Expr, needHigher bool) {
		p := c.precedence()
		threshold := b.Op.prec()
		if needHigher {
			threshold++
		}
		if p < threshold {
			sb.WriteByte('(')
			sb.WriteString(c.String())
			sb.WriteByte(')')
			return
		}
		sb.WriteString(c.String())
	}
	// - and / are left-associative: the right child needs strictly higher
	// precedence to avoid parentheses. ^ is right-associative: the left
	// child needs them instead.
	switch b.Op {
	case OpPow:
		writeChild(b.L, true)
	default:
		writeChild(b.L, false)
	}
	sb.WriteString(" " + b.Op.String() + " ")
	switch b.Op {
	case OpSub, OpDiv:
		writeChild(b.R, true)
	default:
		writeChild(b.R, false)
	}
	return sb.String()
}

func (b *Binary) precedence() int { return b.Op.prec() }

// Neg is unary minus.
type Neg struct{ X Expr }

// Eval implements Expr.
func (n *Neg) Eval(env Env) (float64, error) {
	v, err := n.X.Eval(env)
	if err != nil {
		return 0, err
	}
	return -v, nil
}

func (n *Neg) vars(set map[string]bool) { n.X.vars(set) }

// Diff implements Expr.
func (n *Neg) Diff(name string) Expr { return &Neg{X: n.X.Diff(name)} }

func (n *Neg) String() string {
	if n.X.precedence() < 3 {
		return "-(" + n.X.String() + ")"
	}
	return "-" + n.X.String()
}

func (n *Neg) precedence() int { return 3 }

// builtin describes a builtin function.
type builtin struct {
	arity int
	eval  func(args []float64) (float64, error)
}

var builtins = map[string]builtin{
	"exp": {1, func(a []float64) (float64, error) { return math.Exp(a[0]), nil }},
	"log": {1, func(a []float64) (float64, error) {
		if a[0] <= 0 {
			return 0, fmt.Errorf("%w: log(%g)", ErrDomain, a[0])
		}
		return math.Log(a[0]), nil
	}},
	"log2": {1, func(a []float64) (float64, error) {
		if a[0] <= 0 {
			return 0, fmt.Errorf("%w: log2(%g)", ErrDomain, a[0])
		}
		return math.Log2(a[0]), nil
	}},
	"log10": {1, func(a []float64) (float64, error) {
		if a[0] <= 0 {
			return 0, fmt.Errorf("%w: log10(%g)", ErrDomain, a[0])
		}
		return math.Log10(a[0]), nil
	}},
	"sqrt": {1, func(a []float64) (float64, error) {
		if a[0] < 0 {
			return 0, fmt.Errorf("%w: sqrt(%g)", ErrDomain, a[0])
		}
		return math.Sqrt(a[0]), nil
	}},
	"abs":   {1, func(a []float64) (float64, error) { return math.Abs(a[0]), nil }},
	"floor": {1, func(a []float64) (float64, error) { return math.Floor(a[0]), nil }},
	"ceil":  {1, func(a []float64) (float64, error) { return math.Ceil(a[0]), nil }},
	"pow": {2, func(a []float64) (float64, error) {
		v := math.Pow(a[0], a[1])
		if math.IsNaN(v) {
			return 0, fmt.Errorf("%w: pow(%g, %g)", ErrDomain, a[0], a[1])
		}
		return v, nil
	}},
	"min": {2, func(a []float64) (float64, error) { return math.Min(a[0], a[1]), nil }},
	"max": {2, func(a []float64) (float64, error) { return math.Max(a[0], a[1]), nil }},
}

// IsBuiltin reports whether name is a builtin function and its arity.
func IsBuiltin(name string) (arity int, ok bool) {
	b, ok := builtins[name]
	return b.arity, ok
}

// RegisterBuiltin registers (or replaces) a builtin function, making it
// callable from parsed expressions and compiled programs. The builtin
// table is read without locking on the evaluation hot path, so
// registration must happen before any concurrent parsing, compilation, or
// evaluation — typically from an init function or test setup. The
// fault-injection harness uses this to plant deliberately misbehaving
// functions (panics, NaN producers) behind both engine paths.
func RegisterBuiltin(name string, arity int, fn func(args []float64) (float64, error)) error {
	if name == "" || arity < 0 || fn == nil {
		return fmt.Errorf("expr: invalid builtin registration %q", name)
	}
	builtins[name] = builtin{arity: arity, eval: fn}
	return nil
}

// CallExpr is a call to a builtin function.
type CallExpr struct {
	Name string
	Args []Expr
}

// Eval implements Expr.
func (c *CallExpr) Eval(env Env) (float64, error) {
	b, ok := builtins[c.Name]
	if !ok {
		return 0, fmt.Errorf("expr: unknown function %q", c.Name)
	}
	if len(c.Args) != b.arity {
		return 0, fmt.Errorf("expr: %s expects %d argument(s), got %d", c.Name, b.arity, len(c.Args))
	}
	vals := make([]float64, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(env)
		if err != nil {
			return 0, err
		}
		vals[i] = v
	}
	return b.eval(vals)
}

func (c *CallExpr) vars(set map[string]bool) {
	for _, a := range c.Args {
		a.vars(set)
	}
}

// Diff implements Expr for the differentiable builtins. Non-differentiable
// builtins (abs, floor, ceil, min, max) differentiate to NaN constants so
// the error is visible at evaluation time rather than silently wrong.
func (c *CallExpr) Diff(name string) Expr {
	switch c.Name {
	case "exp":
		return Mul(c, c.Args[0].Diff(name))
	case "log":
		return Div(c.Args[0].Diff(name), c.Args[0])
	case "log2":
		return Div(c.Args[0].Diff(name), Mul(c.Args[0], Num(math.Ln2)))
	case "log10":
		return Div(c.Args[0].Diff(name), Mul(c.Args[0], Num(math.Ln10)))
	case "sqrt":
		return Div(c.Args[0].Diff(name), Mul(Num(2), c))
	case "pow":
		return Pow(c.Args[0], c.Args[1]).Diff(name)
	default:
		return Num(math.NaN())
	}
}

func (c *CallExpr) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return c.Name + "(" + strings.Join(parts, ", ") + ")"
}

func (c *CallExpr) precedence() int { return 5 }

// Constructor helpers used by Diff, Simplify and programmatic model building.

// Add returns l + r.
func Add(l, r Expr) Expr { return &Binary{Op: OpAdd, L: l, R: r} }

// Sub returns l - r.
func Sub(l, r Expr) Expr { return &Binary{Op: OpSub, L: l, R: r} }

// Mul returns l * r.
func Mul(l, r Expr) Expr { return &Binary{Op: OpMul, L: l, R: r} }

// Div returns l / r.
func Div(l, r Expr) Expr { return &Binary{Op: OpDiv, L: l, R: r} }

// Pow returns l ^ r.
func Pow(l, r Expr) Expr { return &Binary{Op: OpPow, L: l, R: r} }

// Call1 returns name(arg) for a unary builtin.
func Call1(name string, arg Expr) Expr { return &CallExpr{Name: name, Args: []Expr{arg}} }

// Call2 returns name(a, b) for a binary builtin.
func Call2(name string, a, b Expr) Expr { return &CallExpr{Name: name, Args: []Expr{a, b}} }
