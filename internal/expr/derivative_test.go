package expr

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// TestDerivativeMatchesDiff checks the memoized Derivative against the
// structural Diff method on random expressions: both evaluated at random
// points must agree wherever both are defined.
func TestDerivativeMatchesDiff(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for i := 0; i < 20000 && checked < 300; i++ {
		e := randomExpr(rng, 4)
		env := Env{"x": rng.Float64()*4 + 0.1, "y": rng.Float64()*4 + 0.1, "z": rng.Float64()*4 + 0.1}
		v1, err1 := e.Diff("x").Eval(env)
		v2, err2 := Derivative(e, "x").Eval(env)
		if err1 != nil {
			continue // outside the original derivative's domain
		}
		if err2 != nil {
			// Simplification may only extend the domain, never shrink it.
			t.Fatalf("Derivative(%s) errored where Diff did not: %v", e, err2)
		}
		if math.IsNaN(v1) {
			// Diff's NaN poisoning of a non-differentiable subterm may be
			// eliminated by Derivative's simplifying construction (f^0
			// differentiates to 0 even when f' is marked NaN) — a strict
			// improvement, not a divergence.
			continue
		}
		if math.IsNaN(v2) {
			t.Fatalf("Derivative(%s) = NaN where Diff = %v", e, v1)
		}
		if !almostEqual(v1, v2) {
			t.Errorf("expr %s: Diff %v vs Derivative %v", e, v1, v2)
		}
		checked++
	}
	if checked < 300 {
		t.Fatalf("only %d comparisons landed in-domain", checked)
	}
}

// TestDerivativeSharedDAG differentiates an expression with exponential
// tree expansion but linear DAG size: e_{n} = e_{n-1} + e_{n-1} built on a
// shared node. The structural Diff would take 2^40 steps; Derivative must
// finish and produce a program evaluating to the analytic 2^40.
func TestDerivativeSharedDAG(t *testing.T) {
	const depth = 40
	e := Expr(Var("x"))
	for i := 0; i < depth; i++ {
		e = Add(e, e) // both children the same node: a DAG, not a tree
	}
	d := Derivative(e, "x")
	prog, err := CompileProgram(d, []string{"x"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	stack := make([]float64, prog.MaxStack())
	got, err := prog.Eval([]float64{3.5}, stack)
	if err != nil {
		t.Fatal(err)
	}
	if want := math.Pow(2, depth); got != want {
		t.Errorf("d/dx of 2^%d * x = %v, want %v", depth, got, want)
	}
	if ops := prog.Ops(); ops > 8*depth {
		t.Errorf("derivative program has %d ops; CSE failed to keep the DAG linear", ops)
	}
}

// TestDerivativeNonDifferentiable checks that non-differentiable builtins
// poison the derivative with NaN instead of a silently wrong value.
func TestDerivativeNonDifferentiable(t *testing.T) {
	for _, src := range []string{"abs(x)", "floor(x) * 2", "min(x, 3)"} {
		d := Derivative(MustParse(src), "x")
		v, err := d.Eval(Env{"x": 1.5})
		if err == nil && !math.IsNaN(v) {
			t.Errorf("Derivative(%s) = %v, want NaN poisoning", src, v)
		}
	}
}

// TestDerivativeConstDenominator pins the constant-denominator shortcut:
// d/dx (x/c) must compile to a quotient by c, not a quotient-rule square.
func TestDerivativeConstDenominator(t *testing.T) {
	d := Derivative(MustParse("x / 4"), "x")
	if s := d.String(); strings.Contains(s, "^") {
		t.Errorf("d/dx(x/4) = %q kept the quotient-rule square", s)
	}
	v, err := d.Eval(nil)
	if err != nil || v != 0.25 {
		t.Errorf("d/dx(x/4) = %v, %v; want 0.25", v, err)
	}
}
