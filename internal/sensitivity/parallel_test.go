package sensitivity

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"socrel/internal/assembly"
	"socrel/internal/core"
)

// TestSweepParallelMatchesSerial checks order and values against Sweep.
func TestSweepParallelMatchesSerial(t *testing.T) {
	xs, err := PowersOfTwo(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x float64) (float64, error) { return 1 / (1 + x), nil }
	serial, err := Sweep("s", xs, f)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepParallel("s", xs, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Points) != len(serial.Points) {
		t.Fatalf("len = %d, want %d", len(par.Points), len(serial.Points))
	}
	for i := range par.Points {
		if par.Points[i] != serial.Points[i] {
			t.Errorf("point %d: %+v != %+v", i, par.Points[i], serial.Points[i])
		}
	}
}

// TestSweepParallelFirstError: with several failing points, the error of
// the lowest-indexed one is reported, like the serial sweep.
func TestSweepParallelFirstError(t *testing.T) {
	boom := errors.New("boom")
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	f := func(x float64) (float64, error) {
		if x >= 3 {
			return 0, fmt.Errorf("%w at %g", boom, x)
		}
		return x, nil
	}
	_, err := SweepParallel("s", xs, f)
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want boom", err)
	}
	if got := err.Error(); !contains(got, "at 3") {
		t.Errorf("error %q should report the first failing point (x=3)", got)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestSweepParallelPaperAssemblies sweeps Pfail("search") over list sizes
// through a shared CompiledAssembly for both paper assemblies, with eight
// concurrent sweep callers on top of SweepParallel's own workers, and
// requires bit-identical agreement with the serial sweep.
func TestSweepParallelPaperAssemblies(t *testing.T) {
	p := assembly.DefaultPaperParams()
	builds := map[string]func(assembly.PaperParams) (*assembly.Assembly, error){
		"local":  assembly.LocalAssembly,
		"remote": assembly.RemoteAssembly,
	}
	xs, err := PowersOfTwo(4, 20)
	if err != nil {
		t.Fatal(err)
	}
	for name, build := range builds {
		asm, err := build(p)
		if err != nil {
			t.Fatal(err)
		}
		ca, err := core.Compile(asm, core.Options{}, "search")
		if err != nil {
			t.Fatal(err)
		}
		f := func(list float64) (float64, error) { return ca.Pfail("search", 1, list, 1) }
		serial, err := Sweep(name, xs, f)
		if err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				par, err := SweepParallel(name, xs, f)
				if err != nil {
					t.Error(err)
					return
				}
				for i := range par.Points {
					if par.Points[i] != serial.Points[i] {
						t.Errorf("%s point %d: parallel %+v != serial %+v", name, i, par.Points[i], serial.Points[i])
						return
					}
				}
			}()
		}
		wg.Wait()
	}
}

// TestSweepParallelConcurrentCallers runs several parallel sweeps at once
// (exercised under -race in CI).
func TestSweepParallelConcurrentCallers(t *testing.T) {
	xs, err := LinSpace(0, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	f := func(x float64) (float64, error) { return x * x, nil }
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s, err := SweepParallel("s", xs, f)
			if err != nil {
				t.Error(err)
				return
			}
			for i, pt := range s.Points {
				if pt.X != xs[i] || pt.Y != xs[i]*xs[i] {
					t.Errorf("point %d mismatch: %+v", i, pt)
					return
				}
			}
		}()
	}
	wg.Wait()
}
