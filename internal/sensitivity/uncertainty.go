package sensitivity

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"socrel/internal/core"
)

// Dist is a one-dimensional input distribution for uncertainty analysis.
type Dist struct {
	// Kind selects the distribution family.
	Kind DistKind
	// A, B parameterize it: Uniform on [A, B]; LogUniform on [A, B]
	// (A > 0); Normal with mean A and standard deviation B; Point at A.
	A, B float64
}

// DistKind enumerates distribution families.
type DistKind int

// Distribution families.
const (
	// DistPoint is a degenerate distribution at A.
	DistPoint DistKind = iota + 1
	// DistUniform is uniform on [A, B].
	DistUniform
	// DistLogUniform is log-uniform on [A, B] (both positive) — the
	// natural prior for failure rates known only to an order of magnitude.
	DistLogUniform
	// DistNormal has mean A and standard deviation B.
	DistNormal
)

func (d Dist) validate(name string) error {
	switch d.Kind {
	case DistPoint:
		return nil
	case DistUniform:
		if d.B < d.A {
			return fmt.Errorf("%w: %s uniform [%g, %g]", ErrBadRange, name, d.A, d.B)
		}
	case DistLogUniform:
		if d.A <= 0 || d.B < d.A {
			return fmt.Errorf("%w: %s log-uniform [%g, %g]", ErrBadRange, name, d.A, d.B)
		}
	case DistNormal:
		if d.B < 0 {
			return fmt.Errorf("%w: %s normal sigma %g", ErrBadRange, name, d.B)
		}
	default:
		return fmt.Errorf("%w: %s has unknown distribution kind %d", ErrBadRange, name, int(d.Kind))
	}
	return nil
}

func (d Dist) sample(rng *rand.Rand) float64 {
	switch d.Kind {
	case DistUniform:
		return d.A + rng.Float64()*(d.B-d.A)
	case DistLogUniform:
		return d.A * math.Exp(rng.Float64()*math.Log(d.B/d.A))
	case DistNormal:
		return d.A + rng.NormFloat64()*d.B
	default:
		return d.A
	}
}

// UncertaintyResult summarizes the output distribution of a study target
// under input uncertainty.
type UncertaintyResult struct {
	// Samples is the number of Monte Carlo draws.
	Samples int
	// Mean and StdDev of the output.
	Mean, StdDev float64
	// Q05, Median, Q95 are output quantiles.
	Q05, Median, Q95 float64
	// Min and Max observed outputs.
	Min, Max float64
}

// BatchParamFunc evaluates many sampled parameter environments in one
// call, returning ys[i] for envs[i]. It is the Monte Carlo counterpart of
// BatchFunc: the study draws every sample up front and hands the whole
// batch to the implementation, so a compiled study target (see
// CompiledParamBatch) evaluates all draws through core.PfailBatchCtx's
// lane-vectorized kernel instead of one solve per draw.
type BatchParamFunc func(ctx context.Context, envs []map[string]float64) ([]float64, error)

// CompiledParamBatch adapts a compiled service to a BatchParamFunc: frame
// maps one sampled environment to the service's actual-parameter list. Use
// it when the uncertain inputs are formal parameters of the study service;
// uncertain *attributes* (baked into the compiled programs as constants)
// still need a generic ParamFunc that rebuilds the assembly per draw.
func CompiledParamBatch(ca *core.CompiledAssembly, service string, frame func(params map[string]float64) []float64) BatchParamFunc {
	return func(ctx context.Context, envs []map[string]float64) ([]float64, error) {
		sets := make([][]float64, len(envs))
		for i, env := range envs {
			if err := frameCtxErr(ctx, i); err != nil {
				return nil, err
			}
			sets[i] = frame(env)
		}
		return ca.PfailBatchCtx(ctx, service, sets)
	}
}

// CompiledReliabilityParamBatch is CompiledParamBatch over reliability
// (1 - Pfail) instead of failure probability.
func CompiledReliabilityParamBatch(ca *core.CompiledAssembly, service string, frame func(params map[string]float64) []float64) BatchParamFunc {
	return func(ctx context.Context, envs []map[string]float64) ([]float64, error) {
		sets := make([][]float64, len(envs))
		for i, env := range envs {
			if err := frameCtxErr(ctx, i); err != nil {
				return nil, err
			}
			sets[i] = frame(env)
		}
		return ca.ReliabilityBatchCtx(ctx, service, sets)
	}
}

// PerSample adapts a scalar ParamFunc to a BatchParamFunc: samples are
// evaluated in order with a cancellation check at every sample boundary.
func PerSample(f ParamFunc) BatchParamFunc {
	return func(ctx context.Context, envs []map[string]float64) ([]float64, error) {
		ys := make([]float64, len(envs))
		for i, env := range envs {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("%w: canceled at sample %d: %w", core.ErrCanceled, i, err)
			}
			y, err := f(env)
			if err != nil {
				return nil, fmt.Errorf("sample %d: %w", i, err)
			}
			ys[i] = y
		}
		return ys, nil
	}
}

// Uncertainty propagates input-parameter uncertainty through f by Monte
// Carlo sampling: each named parameter is drawn from its distribution,
// f is evaluated, and the output distribution is summarized. Use it to put
// bands around reliability predictions whose failure rates are only known
// approximately.
func Uncertainty(f ParamFunc, dists map[string]Dist, samples int, seed int64) (UncertaintyResult, error) {
	return UncertaintyBatch(context.Background(), PerSample(f), dists, samples, seed)
}

// UncertaintyBatch is the batch-kernel form of Uncertainty: all samples
// are drawn first (the draw sequence for a given seed is identical to
// Uncertainty's, so the two forms see the same inputs) and evaluated in
// one BatchParamFunc call, honoring cancellation. With CompiledParamBatch
// the whole Monte Carlo study becomes a single core.PfailBatchCtx batch.
func UncertaintyBatch(ctx context.Context, f BatchParamFunc, dists map[string]Dist, samples int, seed int64) (UncertaintyResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if samples < 2 {
		return UncertaintyResult{}, fmt.Errorf("%w: %d samples", ErrBadRange, samples)
	}
	names := make([]string, 0, len(dists))
	for name, d := range dists {
		if err := d.validate(name); err != nil {
			return UncertaintyResult{}, err
		}
		names = append(names, name)
	}
	sort.Strings(names)

	rng := rand.New(rand.NewSource(seed))
	envs := make([]map[string]float64, samples)
	for i := range envs {
		if err := frameCtxErr(ctx, i); err != nil {
			return UncertaintyResult{}, fmt.Errorf("sensitivity: uncertainty %w", err)
		}
		env := make(map[string]float64, len(names))
		for _, name := range names {
			env[name] = dists[name].sample(rng)
		}
		envs[i] = env
	}
	outs, err := f(ctx, envs)
	if err != nil {
		return UncertaintyResult{}, fmt.Errorf("sensitivity: uncertainty %w", err)
	}
	if len(outs) != samples {
		return UncertaintyResult{}, fmt.Errorf("sensitivity: uncertainty: batch returned %d values for %d samples", len(outs), samples)
	}
	var sum, sumSq float64
	for _, y := range outs {
		sum += y
		sumSq += y * y
	}
	sort.Float64s(outs)
	n := float64(samples)
	mean := sum / n
	variance := math.Max(0, sumSq/n-mean*mean)
	return UncertaintyResult{
		Samples: samples,
		Mean:    mean,
		StdDev:  math.Sqrt(variance),
		Q05:     quantile(outs, 0.05),
		Median:  quantile(outs, 0.5),
		Q95:     quantile(outs, 0.95),
		Min:     outs[0],
		Max:     outs[len(outs)-1],
	}, nil
}

// quantile returns the linearly interpolated q-quantile of sorted values.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
