package sensitivity

import (
	"errors"
	"fmt"

	"socrel/internal/core"
)

// Gradient returns ∂Pfail/∂param for every formal parameter of the service
// at the given point, ordered like core's FormalParams. When the assembly
// came from core.CompileParametric and the service has a differentiable
// closed form, the partials come from the compiled symbolic derivatives
// (exact, one expression evaluation per parameter); otherwise — a plain
// Compile, a fallback to the numeric kernel, or a non-differentiable
// closed form — each partial falls back to the central finite difference
// through Pfail, transparently.
func Gradient(ca *core.CompiledAssembly, service string, params ...float64) ([]float64, error) {
	grads, err := ca.Sensitivities(service, params...)
	if err == nil {
		return grads, nil
	}
	if !errors.Is(err, core.ErrNoParametricForm) && !errors.Is(err, core.ErrNonDifferentiable) {
		return nil, err
	}
	out := make([]float64, len(params))
	pt := make([]float64, len(params))
	for i := range params {
		i := i
		d, ferr := FiniteDiff(func(x float64) (float64, error) {
			copy(pt, params)
			pt[i] = x
			return ca.Pfail(service, pt...)
		}, params[i])
		if ferr != nil {
			return nil, fmt.Errorf("sensitivity: gradient of %s in parameter %d: %w", service, i, ferr)
		}
		out[i] = d
	}
	return out, nil
}
