// Package sensitivity provides the parameter-study toolkit used by the
// experiment harness: grid generators, sweeps producing named series
// (the raw material of Figure 6), finite-difference sensitivities and
// one-at-a-time elasticities, and a bisection-based crossover finder that
// locates where one assembly overtakes another.
package sensitivity

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by this package.
var (
	// ErrBadRange is returned for malformed grid or bracket specifications.
	ErrBadRange = errors.New("sensitivity: invalid range")
	// ErrNoCrossover is returned when the bracket does not contain a sign
	// change of f - g.
	ErrNoCrossover = errors.New("sensitivity: no crossover in bracket")
)

// Func is a scalar study target (e.g. x = list size, result = Pfail).
type Func func(x float64) (float64, error)

// Point is one sample of a series.
type Point struct {
	X, Y float64
}

// Series is a named sequence of samples, one curve of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Sweep evaluates f over xs and returns the resulting series.
func Sweep(name string, xs []float64, f Func) (Series, error) {
	s := Series{Name: name, Points: make([]Point, 0, len(xs))}
	for _, x := range xs {
		y, err := f(x)
		if err != nil {
			return Series{}, fmt.Errorf("sensitivity: sweep %s at %g: %w", name, x, err)
		}
		s.Points = append(s.Points, Point{X: x, Y: y})
	}
	return s, nil
}

// LinSpace returns n evenly spaced values from lo to hi inclusive.
func LinSpace(lo, hi float64, n int) ([]float64, error) {
	if n < 2 || hi <= lo {
		return nil, fmt.Errorf("%w: linspace(%g, %g, %d)", ErrBadRange, lo, hi, n)
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out, nil
}

// GeomSpace returns n geometrically spaced values from lo to hi inclusive.
func GeomSpace(lo, hi float64, n int) ([]float64, error) {
	if n < 2 || lo <= 0 || hi <= lo {
		return nil, fmt.Errorf("%w: geomspace(%g, %g, %d)", ErrBadRange, lo, hi, n)
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	out[n-1] = hi
	return out, nil
}

// PowersOfTwo returns 2^loExp .. 2^hiExp inclusive.
func PowersOfTwo(loExp, hiExp int) ([]float64, error) {
	if hiExp < loExp {
		return nil, fmt.Errorf("%w: powers of two %d..%d", ErrBadRange, loExp, hiExp)
	}
	out := make([]float64, 0, hiExp-loExp+1)
	for e := loExp; e <= hiExp; e++ {
		out = append(out, math.Ldexp(1, e))
	}
	return out, nil
}

// FiniteDiff returns the central finite-difference derivative of f at x.
func FiniteDiff(f Func, x float64) (float64, error) {
	h := 1e-6 * math.Max(math.Abs(x), 1)
	up, err := f(x + h)
	if err != nil {
		return 0, err
	}
	dn, err := f(x - h)
	if err != nil {
		return 0, err
	}
	return (up - dn) / (2 * h), nil
}

// Crossover finds an x in [lo, hi] where f(x) - g(x) changes sign, by
// bisection to the given relative tolerance on the bracket width. The
// endpoints must bracket a sign change.
func Crossover(f, g Func, lo, hi, tol float64) (float64, error) {
	if hi <= lo {
		return 0, fmt.Errorf("%w: [%g, %g]", ErrBadRange, lo, hi)
	}
	if tol <= 0 {
		tol = 1e-9
	}
	diff := func(x float64) (float64, error) {
		fv, err := f(x)
		if err != nil {
			return 0, err
		}
		gv, err := g(x)
		if err != nil {
			return 0, err
		}
		return fv - gv, nil
	}
	dLo, err := diff(lo)
	if err != nil {
		return 0, err
	}
	dHi, err := diff(hi)
	if err != nil {
		return 0, err
	}
	if dLo == 0 {
		return lo, nil
	}
	if dHi == 0 {
		return hi, nil
	}
	if (dLo > 0) == (dHi > 0) {
		return 0, fmt.Errorf("%w: f-g has the same sign at %g and %g", ErrNoCrossover, lo, hi)
	}
	for hi-lo > tol*math.Max(math.Abs(lo), math.Abs(hi)) {
		mid := lo + (hi-lo)/2
		dMid, err := diff(mid)
		if err != nil {
			return 0, err
		}
		if dMid == 0 {
			return mid, nil
		}
		if (dMid > 0) == (dLo > 0) {
			lo, dLo = mid, dMid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// ParamFunc is a study target over a named-parameter environment.
type ParamFunc func(params map[string]float64) (float64, error)

// Elasticity is a normalized one-at-a-time sensitivity:
// (dY/Y) / (dX/X) around the base point.
type Elasticity struct {
	Param string
	Value float64
}

// Elasticities perturbs each parameter of base by the relative step
// (default 1e-3 when step <= 0) and returns the elasticity of f with
// respect to each, in the iteration order of names.
func Elasticities(f ParamFunc, base map[string]float64, names []string, step float64) ([]Elasticity, error) {
	if step <= 0 {
		step = 1e-3
	}
	y0, err := f(base)
	if err != nil {
		return nil, err
	}
	out := make([]Elasticity, 0, len(names))
	for _, name := range names {
		x0, ok := base[name]
		if !ok {
			return nil, fmt.Errorf("%w: unknown parameter %q", ErrBadRange, name)
		}
		h := step * math.Max(math.Abs(x0), 1e-300)
		up := cloneParams(base)
		up[name] = x0 + h
		dn := cloneParams(base)
		dn[name] = x0 - h
		yu, err := f(up)
		if err != nil {
			return nil, err
		}
		yd, err := f(dn)
		if err != nil {
			return nil, err
		}
		deriv := (yu - yd) / (2 * h)
		el := deriv * x0
		if y0 != 0 {
			el /= y0
		}
		out = append(out, Elasticity{Param: name, Value: el})
	}
	return out, nil
}

func cloneParams(m map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
