package sensitivity_test

import (
	"fmt"
	"math"

	"socrel/internal/assembly"
	"socrel/internal/sensitivity"
)

// ExampleCrossover locates the list size at which the paper's remote
// assembly overtakes the local one (the Figure 6 crossover for
// phi1 = 1e-6, gamma = 5e-3).
func ExampleCrossover() {
	p := assembly.DefaultPaperParams()
	p.Phi1, p.Gamma = 1e-6, 5e-3
	local := func(l float64) (float64, error) {
		return assembly.ClosedFormSearch(p, false, 1, l, 1), nil
	}
	remote := func(l float64) (float64, error) {
		return assembly.ClosedFormSearch(p, true, 1, l, 1), nil
	}
	x, err := sensitivity.Crossover(local, remote, 16, 1<<20, 1e-9)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("remote overtakes local near list = 2^%.0f\n", math.Round(math.Log2(x)))
	// Output:
	// remote overtakes local near list = 2^15
}

// ExampleUncertainty puts a band on a prediction whose input is only known
// to an order of magnitude.
func ExampleUncertainty() {
	f := func(params map[string]float64) (float64, error) {
		p := assembly.DefaultPaperParams()
		p.Gamma = params["gamma"]
		return assembly.ClosedFormSearch(p, true, 1, 256, 1), nil
	}
	res, err := sensitivity.Uncertainty(f, map[string]sensitivity.Dist{
		"gamma": {Kind: sensitivity.DistLogUniform, A: 5e-3, B: 5e-2},
	}, 4000, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// ClosedFormSearch returns Pfail, so the quantiles are unreliability
	// quantiles directly.
	fmt.Printf("unreliability spans about %.0fx across the 90%% band\n", res.Q95/res.Q05)
	// Output:
	// unreliability spans about 7x across the 90% band
}
