package sensitivity

import (
	"math"
	"testing"

	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/expr"
	"socrel/internal/model"
)

func gradientFixture(t *testing.T) *assembly.Assembly {
	t.Helper()
	asm := assembly.New("grad")
	leaf := model.NewSimple("leaf", []string{"n"}, model.Attrs{"phi": 1e-4},
		expr.MustParse("1 - (1 - phi) ^ n"))
	if err := asm.AddService(leaf); err != nil {
		t.Fatal(err)
	}
	root := model.NewComposite("root", []string{"x"}, nil)
	flow := root.Flow()
	s0, err := flow.AddState("s0", model.AND, model.NoSharing)
	if err != nil {
		t.Fatal(err)
	}
	s0.AddRequest(model.Request{Role: "leaf", Params: []expr.Expr{expr.Var("x")}})
	for _, tr := range []struct {
		from, to string
		p        float64
	}{
		{model.StartState, "s0", 1},
		{"s0", "s0", 0.1},
		{"s0", model.EndState, 0.9},
	} {
		if err := flow.AddTransitionP(tr.from, tr.to, tr.p); err != nil {
			t.Fatal(err)
		}
	}
	if err := asm.AddService(root); err != nil {
		t.Fatal(err)
	}
	return asm
}

// TestGradientSymbolicVsFallback checks that the symbolic gradient of a
// parametric assembly and the finite-difference fallback of a plain
// compile agree on the same model.
func TestGradientSymbolicVsFallback(t *testing.T) {
	asm := gradientFixture(t)
	par, err := core.CompileParametric(asm, core.Options{}, core.ParametricOptions{}, "root")
	if err != nil {
		t.Fatal(err)
	}
	if st := par.ParametricStats(); st.Outputs != 1 {
		t.Fatalf("no closed form: %v", par.ParametricFallbacks())
	}
	plain, err := core.Compile(asm, core.Options{}, "root")
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{5, 120, 3000} {
		sym, err := Gradient(par, "root", x)
		if err != nil {
			t.Fatalf("symbolic gradient at %g: %v", x, err)
		}
		fd, err := Gradient(plain, "root", x)
		if err != nil {
			t.Fatalf("fallback gradient at %g: %v", x, err)
		}
		if len(sym) != 1 || len(fd) != 1 {
			t.Fatalf("gradient lengths %d, %d", len(sym), len(fd))
		}
		scale := math.Max(math.Abs(fd[0]), 1e-12)
		if rel := math.Abs(sym[0]-fd[0]) / scale; rel > 1e-4 {
			t.Errorf("x=%g: symbolic %v vs finite difference %v (rel %g)", x, sym[0], fd[0], rel)
		}
	}
	// The symbolic path must have been served by compiled derivatives.
	if st := par.ParametricStats(); st.GradientPoints != 3 {
		t.Errorf("GradientPoints = %d, want 3", st.GradientPoints)
	}
}
