package sensitivity

import (
	"errors"
	"math"
	"testing"

	"socrel/internal/assembly"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestLinSpace(t *testing.T) {
	xs, err := LinSpace(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 2.5, 5, 7.5, 10}
	for i := range want {
		if !approxEq(xs[i], want[i], 1e-12) {
			t.Errorf("xs = %v", xs)
			break
		}
	}
	if _, err := LinSpace(1, 1, 5); !errors.Is(err, ErrBadRange) {
		t.Errorf("error = %v", err)
	}
	if _, err := LinSpace(0, 1, 1); !errors.Is(err, ErrBadRange) {
		t.Errorf("error = %v", err)
	}
}

func TestGeomSpace(t *testing.T) {
	xs, err := GeomSpace(1, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if !approxEq(xs[i], want[i], 1e-9) {
			t.Errorf("xs = %v", xs)
			break
		}
	}
	if _, err := GeomSpace(0, 10, 3); !errors.Is(err, ErrBadRange) {
		t.Errorf("error = %v", err)
	}
}

func TestPowersOfTwo(t *testing.T) {
	xs, err := PowersOfTwo(4, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{16, 32, 64, 128}
	for i := range want {
		if xs[i] != want[i] {
			t.Fatalf("xs = %v", xs)
		}
	}
	if _, err := PowersOfTwo(5, 4); !errors.Is(err, ErrBadRange) {
		t.Errorf("error = %v", err)
	}
}

func TestSweep(t *testing.T) {
	s, err := Sweep("square", []float64{1, 2, 3}, func(x float64) (float64, error) { return x * x, nil })
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "square" || len(s.Points) != 3 || s.Points[2].Y != 9 {
		t.Errorf("series = %+v", s)
	}
	_, err = Sweep("bad", []float64{1}, func(float64) (float64, error) { return 0, errors.New("boom") })
	if err == nil {
		t.Error("expected error")
	}
}

func TestFiniteDiff(t *testing.T) {
	d, err := FiniteDiff(func(x float64) (float64, error) { return x * x * x, nil }, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(d, 12, 1e-5) {
		t.Errorf("d = %g, want 12", d)
	}
}

func TestCrossoverKnownRoot(t *testing.T) {
	f := func(x float64) (float64, error) { return x * x, nil }
	g := func(x float64) (float64, error) { return x + 2, nil } // equal at x=2
	x, err := Crossover(f, g, 0, 10, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(x, 2, 1e-8) {
		t.Errorf("crossover = %g, want 2", x)
	}
}

func TestCrossoverErrors(t *testing.T) {
	f := func(x float64) (float64, error) { return 1, nil }
	g := func(x float64) (float64, error) { return 0, nil }
	if _, err := Crossover(f, g, 0, 10, 0); !errors.Is(err, ErrNoCrossover) {
		t.Errorf("error = %v", err)
	}
	if _, err := Crossover(f, g, 5, 1, 0); !errors.Is(err, ErrBadRange) {
		t.Errorf("error = %v", err)
	}
	boom := func(x float64) (float64, error) { return 0, errors.New("boom") }
	if _, err := Crossover(boom, g, 0, 1, 0); err == nil {
		t.Error("expected propagated error")
	}
}

func TestCrossoverEndpointRoot(t *testing.T) {
	f := func(x float64) (float64, error) { return x, nil }
	g := func(x float64) (float64, error) { return 0, nil }
	x, err := Crossover(f, g, 0, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if x != 0 {
		t.Errorf("crossover = %g, want endpoint 0", x)
	}
}

// TestFigure6CrossoverLocation verifies the analytical prediction from
// DESIGN.md: with hardware failure negligible, the local and remote search
// assemblies cross near log2(list) = gamma*(m/b)/(phi1-phi2).
func TestFigure6CrossoverLocation(t *testing.T) {
	p := assembly.DefaultPaperParams()
	p.Phi1, p.Gamma = 1e-6, 5e-3
	local := func(l float64) (float64, error) {
		return assembly.ClosedFormSearch(p, false, 1, l, 1), nil
	}
	remote := func(l float64) (float64, error) {
		return assembly.ClosedFormSearch(p, true, 1, l, 1), nil
	}
	x, err := Crossover(local, remote, 16, 1<<20, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	predicted := math.Exp2(p.Gamma * (p.M / p.B) / (p.Phi1 - p.Phi2))
	// Within a factor of two of the back-of-envelope location (the
	// neglected terms shift it slightly).
	if x < predicted/2 || x > predicted*2 {
		t.Errorf("crossover at list=%g, predicted ≈ %g", x, predicted)
	}
}

func TestElasticities(t *testing.T) {
	// f = a^2 * b: elasticity wrt a is 2, wrt b is 1.
	f := func(p map[string]float64) (float64, error) {
		return p["a"] * p["a"] * p["b"], nil
	}
	base := map[string]float64{"a": 3, "b": 5}
	els, err := Elasticities(f, base, []string{"a", "b"}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if len(els) != 2 {
		t.Fatalf("els = %+v", els)
	}
	if !approxEq(els[0].Value, 2, 1e-6) || els[0].Param != "a" {
		t.Errorf("elasticity a = %+v", els[0])
	}
	if !approxEq(els[1].Value, 1, 1e-6) {
		t.Errorf("elasticity b = %+v", els[1])
	}
	// Base must not be mutated.
	if base["a"] != 3 || base["b"] != 5 {
		t.Error("Elasticities mutated base")
	}
	if _, err := Elasticities(f, base, []string{"ghost"}, 0); !errors.Is(err, ErrBadRange) {
		t.Errorf("error = %v", err)
	}
}

// TestFigure6Elasticities sanity-checks the dominant failure drivers of the
// remote assembly: gamma (network) should matter far more than lambda1
// (hardware) under the default constants.
func TestFigure6Elasticities(t *testing.T) {
	f := func(params map[string]float64) (float64, error) {
		p := assembly.DefaultPaperParams()
		p.Gamma = params["gamma"]
		p.Lambda1 = params["lambda1"]
		return assembly.ClosedFormSearch(p, true, 1, 4096, 1), nil
	}
	base := map[string]float64{"gamma": 5e-3, "lambda1": 1e-10}
	els, err := Elasticities(f, base, []string{"gamma", "lambda1"}, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(els[0].Value) <= math.Abs(els[1].Value)*100 {
		t.Errorf("gamma elasticity %g should dominate lambda1 elasticity %g",
			els[0].Value, els[1].Value)
	}
}
