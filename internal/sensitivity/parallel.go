package sensitivity

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// SweepParallel evaluates f over xs concurrently, fanning the points out
// over up to GOMAXPROCS goroutines, and returns the same series Sweep
// would: points in xs order. f must be safe for concurrent use (for
// reliability studies, evaluate through a core.CompiledAssembly, which
// is immutable; a *core.Evaluator is not concurrency-safe). If several
// points fail, the error of the lowest-indexed one is returned.
func SweepParallel(name string, xs []float64, f Func) (Series, error) {
	workers := min(runtime.GOMAXPROCS(0), len(xs))
	if workers <= 1 {
		return Sweep(name, xs, f)
	}
	points := make([]Point, len(xs))
	var next atomic.Int64
	errIdx := len(xs)
	var errVal error
	var errMu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(xs) {
					return
				}
				y, err := f(xs[i])
				if err != nil {
					errMu.Lock()
					if i < errIdx {
						errIdx, errVal = i, fmt.Errorf("sensitivity: sweep %s at %g: %w", name, xs[i], err)
					}
					errMu.Unlock()
					continue
				}
				points[i] = Point{X: xs[i], Y: y}
			}
		}()
	}
	wg.Wait()
	if errVal != nil {
		return Series{}, errVal
	}
	return Series{Name: name, Points: points}, nil
}
