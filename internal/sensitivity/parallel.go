package sensitivity

import (
	"context"
	"fmt"
	"runtime/debug"

	"socrel/internal/core"
)

// BatchFunc evaluates a whole grid of study points in one call, returning
// ys[i] for xs[i]. It is the batch-kernel counterpart of Func: instead of
// the sweep fanning single-point closures out over goroutines, the
// implementation receives every point at once and brings its own
// evaluation strategy — CompiledBatch routes the grid through
// core.PfailBatchCtx, whose lane-vectorized kernel and worker pool are
// where sweep parallelism now lives.
type BatchFunc func(ctx context.Context, xs []float64) ([]float64, error)

// CompiledBatch adapts a compiled service to a BatchFunc sweeping Pfail:
// frame maps the swept scalar to the service's full actual-parameter list
// (e.g. the list size into (user, list, q)). The returned BatchFunc hands
// the whole grid to core.PfailBatchCtx in one call, so the sweep gets the
// lane-vectorized batch kernel, its memo, and its worker pool.
func CompiledBatch(ca *core.CompiledAssembly, service string, frame func(x float64) []float64) BatchFunc {
	return func(ctx context.Context, xs []float64) ([]float64, error) {
		sets := make([][]float64, len(xs))
		for i, x := range xs {
			if err := frameCtxErr(ctx, i); err != nil {
				return nil, err
			}
			sets[i] = frame(x)
		}
		return ca.PfailBatchCtx(ctx, service, sets)
	}
}

// CompiledReliabilityBatch is CompiledBatch sweeping reliability (1 - Pfail)
// instead of failure probability.
func CompiledReliabilityBatch(ca *core.CompiledAssembly, service string, frame func(x float64) []float64) BatchFunc {
	return func(ctx context.Context, xs []float64) ([]float64, error) {
		sets := make([][]float64, len(xs))
		for i, x := range xs {
			if err := frameCtxErr(ctx, i); err != nil {
				return nil, err
			}
			sets[i] = frame(x)
		}
		return ca.ReliabilityBatchCtx(ctx, service, sets)
	}
}

// PerPoint adapts a scalar Func to a BatchFunc for study targets that have
// no batch entry point. Points are evaluated in order with a cancellation
// check at every point boundary and panic isolation per point (a panicking
// point surfaces core.ErrPanic; an expired context surfaces
// core.ErrCanceled). There is no hidden concurrency: a bare closure gets
// point-at-a-time evaluation, and parallel throughput is the batch
// implementation's job (see CompiledBatch).
func PerPoint(f Func) BatchFunc {
	return func(ctx context.Context, xs []float64) ([]float64, error) {
		ys := make([]float64, len(xs))
		for i, x := range xs {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("%w: canceled at point %d: %w", core.ErrCanceled, i, err)
			}
			y, err := guardFunc(f, x)
			if err != nil {
				return nil, fmt.Errorf("at %g: %w", x, err)
			}
			ys[i] = y
		}
		return ys, nil
	}
}

// SweepBatch evaluates bf over xs and returns the same series Sweep would:
// points in xs order.
func SweepBatch(name string, xs []float64, bf BatchFunc) (Series, error) {
	return SweepBatchCtx(context.Background(), name, xs, bf)
}

// SweepBatchCtx evaluates the whole grid through one BatchFunc call,
// honoring cancellation. It is the single sweep core: the scalar sweeps
// delegate here via PerPoint, and compiled sweeps via CompiledBatch, so
// every caller shares one error and ordering contract — points in xs
// order, and on failure the error of the lowest-indexed failing point
// (core.PfailBatchCtx reports exactly that; PerPoint stops at the first).
func SweepBatchCtx(ctx context.Context, name string, xs []float64, bf BatchFunc) (Series, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ys, err := bf(ctx, xs)
	if err != nil {
		return Series{}, fmt.Errorf("sensitivity: sweep %s: %w", name, err)
	}
	if len(ys) != len(xs) {
		return Series{}, fmt.Errorf("sensitivity: sweep %s: batch returned %d values for %d points", name, len(ys), len(xs))
	}
	s := Series{Name: name, Points: make([]Point, len(xs))}
	for i, x := range xs {
		s.Points[i] = Point{X: x, Y: ys[i]}
	}
	return s, nil
}

// SweepParallel evaluates f over xs and returns the same series Sweep
// would: points in xs order. The name is historical: the per-point
// goroutine fan-out it once carried is gone, replaced by the batch kernel
// (sweep a compiled service with SweepBatch + CompiledBatch to evaluate
// the grid through core.PfailBatchCtx's worker pool). A bare Func is
// evaluated point-at-a-time with the same isolation guarantees: a
// panicking point surfaces core.ErrPanic without taking the process down,
// and f is never called concurrently with itself.
func SweepParallel(name string, xs []float64, f Func) (Series, error) {
	return SweepBatchCtx(context.Background(), name, xs, PerPoint(f))
}

// SweepParallelCtx is SweepParallel honoring cancellation: the sweep stops
// at the next point boundary once ctx expires and surfaces
// core.ErrCanceled.
func SweepParallelCtx(ctx context.Context, name string, xs []float64, f Func) (Series, error) {
	return SweepBatchCtx(ctx, name, xs, PerPoint(f))
}

// frameCtxErr is the cancellation check for frame/draw loops that only
// build inputs (no evaluation): the per-iteration work is tiny, so the
// check is strided — a canceled study still stops within 256 iterations
// of the cancel instead of framing an arbitrarily large grid first.
func frameCtxErr(ctx context.Context, i int) error {
	if i&255 != 0 {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("%w: canceled while framing point %d: %w", core.ErrCanceled, i, err)
	}
	return nil
}

// guardFunc evaluates one sweep point with panic isolation, so a defective
// model function cannot crash the sweep (or the process) and instead fails
// just its own point.
func guardFunc(f Func, x float64) (y float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			y, err = 0, &core.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return f(x)
}
