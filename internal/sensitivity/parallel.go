package sensitivity

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"socrel/internal/core"
)

// SweepParallel evaluates f over xs concurrently, fanning the points out
// over up to GOMAXPROCS goroutines, and returns the same series Sweep
// would: points in xs order. f must be safe for concurrent use (for
// reliability studies, evaluate through a core.CompiledAssembly, which
// is immutable; a *core.Evaluator is not concurrency-safe). If several
// points fail, the error of the lowest-indexed one is returned.
func SweepParallel(name string, xs []float64, f Func) (Series, error) {
	return SweepParallelCtx(context.Background(), name, xs, f)
}

// SweepParallelCtx is SweepParallel honoring cancellation and isolating
// panics. Workers check ctx before every point, so a cancellation stops
// the sweep at the next point boundary and surfaces core.ErrCanceled; a
// panicking point surfaces core.ErrPanic without taking down the workers
// evaluating its siblings.
func SweepParallelCtx(ctx context.Context, name string, xs []float64, f Func) (Series, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	points := make([]Point, len(xs))
	errIdx := len(xs)
	var errVal error
	var errMu sync.Mutex
	record := func(i int, err error) {
		errMu.Lock()
		if i < errIdx {
			errIdx, errVal = i, err
		}
		errMu.Unlock()
	}
	canceled := func(i int, err error) error {
		return fmt.Errorf("%w: sweep %s canceled at point %d: %w", core.ErrCanceled, name, i, err)
	}
	evalPoint := func(i int) {
		y, err := guardFunc(f, xs[i])
		if err != nil {
			record(i, fmt.Errorf("sensitivity: sweep %s at %g: %w", name, xs[i], err))
			return
		}
		points[i] = Point{X: xs[i], Y: y}
	}
	workers := min(runtime.GOMAXPROCS(0), len(xs))
	if workers <= 1 {
		for i := range xs {
			if err := ctx.Err(); err != nil {
				record(i, canceled(i, err))
				break
			}
			evalPoint(i)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(xs) {
						return
					}
					if err := ctx.Err(); err != nil {
						record(i, canceled(i, err))
						return
					}
					evalPoint(i)
				}
			}()
		}
		wg.Wait()
	}
	if errVal != nil {
		return Series{}, errVal
	}
	return Series{Name: name, Points: points}, nil
}

// guardFunc evaluates one sweep point with panic isolation, so a defective
// model function cannot kill a worker goroutine (which would crash the
// whole process) and instead fails just its own point.
func guardFunc(f Func, x float64) (y float64, err error) {
	defer func() {
		if r := recover(); r != nil {
			y, err = 0, &core.PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return f(x)
}
