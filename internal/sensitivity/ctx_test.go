package sensitivity

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"socrel/internal/core"
)

// TestSweepParallelCtxCanceled cancels the sweep from inside the first
// evaluated point and checks that the workers stop at the next point
// boundary instead of evaluating all 128 points.
func TestSweepParallelCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	f := func(x float64) (float64, error) {
		if calls.Add(1) == 1 {
			cancel()
		}
		return x, nil
	}
	xs := make([]float64, 128)
	for i := range xs {
		xs[i] = float64(i)
	}
	_, err := SweepParallelCtx(ctx, "s", xs, f)
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want core.ErrCanceled", err)
	}
	if n, limit := calls.Load(), int64(2*runtime.GOMAXPROCS(0)+2); n > limit {
		t.Errorf("%d points evaluated after the cancel, want <= %d", n, limit)
	}
}

// TestSweepParallelPanicIsolated: a panicking point fails the sweep with
// core.ErrPanic instead of crashing the worker (and the process).
func TestSweepParallelPanicIsolated(t *testing.T) {
	_, err := SweepParallel("s", []float64{1, 2, 3, 4}, func(x float64) (float64, error) {
		if x == 3 {
			panic("boom")
		}
		return x, nil
	})
	if !errors.Is(err, core.ErrPanic) {
		t.Fatalf("err = %v, want core.ErrPanic", err)
	}
	var pe *core.PanicError
	if !errors.As(err, &pe) || pe.Value != any("boom") || len(pe.Stack) == 0 {
		t.Errorf("err = %v, want a *core.PanicError carrying the panic value and stack", err)
	}
}
