package sensitivity

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"

	"socrel/internal/assembly"
	"socrel/internal/core"
)

// TestSweepParallelCtxCanceled cancels the sweep from inside the first
// evaluated point and checks that the workers stop at the next point
// boundary instead of evaluating all 128 points.
func TestSweepParallelCtxCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	f := func(x float64) (float64, error) {
		if calls.Add(1) == 1 {
			cancel()
		}
		return x, nil
	}
	xs := make([]float64, 128)
	for i := range xs {
		xs[i] = float64(i)
	}
	_, err := SweepParallelCtx(ctx, "s", xs, f)
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want core.ErrCanceled", err)
	}
	if n, limit := calls.Load(), int64(2*runtime.GOMAXPROCS(0)+2); n > limit {
		t.Errorf("%d points evaluated after the cancel, want <= %d", n, limit)
	}
}

// TestSweepParallelPanicIsolated: a panicking point fails the sweep with
// core.ErrPanic instead of crashing the worker (and the process).
func TestSweepParallelPanicIsolated(t *testing.T) {
	_, err := SweepParallel("s", []float64{1, 2, 3, 4}, func(x float64) (float64, error) {
		if x == 3 {
			panic("boom")
		}
		return x, nil
	})
	if !errors.Is(err, core.ErrPanic) {
		t.Fatalf("err = %v, want core.ErrPanic", err)
	}
	var pe *core.PanicError
	if !errors.As(err, &pe) || pe.Value != any("boom") || len(pe.Stack) == 0 {
		t.Errorf("err = %v, want a *core.PanicError carrying the panic value and stack", err)
	}
}

// TestUncertaintyBatchCancelMidFlight cancels the study from inside the
// third sample's evaluation; PerSample must stop at the next sample
// boundary instead of evaluating all 512 draws.
func TestUncertaintyBatchCancelMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	f := func(params map[string]float64) (float64, error) {
		if calls.Add(1) == 3 {
			cancel()
		}
		return params["x"], nil
	}
	_, err := UncertaintyBatch(ctx, PerSample(f), map[string]Dist{
		"x": {Kind: DistUniform, A: 0, B: 1},
	}, 512, 7)
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want core.ErrCanceled", err)
	}
	if n := calls.Load(); n > 4 {
		t.Errorf("%d samples evaluated after the cancel, want <= 4", n)
	}
}

// TestUncertaintyBatchPreCanceled: an already-expired context stops the
// study in the draw loop, before the target is ever called.
func TestUncertaintyBatchPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var calls atomic.Int64
	f := func(ctx context.Context, envs []map[string]float64) ([]float64, error) {
		calls.Add(1)
		ys := make([]float64, len(envs))
		return ys, nil
	}
	_, err := UncertaintyBatch(ctx, f, map[string]Dist{
		"x": {Kind: DistUniform, A: 0, B: 1},
	}, 4096, 7)
	if !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want core.ErrCanceled", err)
	}
	if calls.Load() != 0 {
		t.Error("batch target was called despite a pre-canceled context")
	}
}

// TestCompiledBatchFramePreCanceled: the frame loop notices an expired
// context before framing the grid, so the frame function (which may be
// arbitrarily expensive) runs at most a stride's worth of times.
func TestCompiledBatchFramePreCanceled(t *testing.T) {
	asm, err := assembly.RemoteAssembly(assembly.DefaultPaperParams())
	if err != nil {
		t.Fatal(err)
	}
	ca, err := core.Compile(asm, core.Options{}, "search")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var frames atomic.Int64
	bf := CompiledBatch(ca, "search", func(x float64) []float64 {
		frames.Add(1)
		return []float64{1, x, 1}
	})
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	if _, err := SweepBatchCtx(ctx, "list", xs, bf); !errors.Is(err, core.ErrCanceled) {
		t.Fatalf("err = %v, want core.ErrCanceled", err)
	}
	if frames.Load() != 0 {
		t.Errorf("frame ran %d times despite a pre-canceled context", frames.Load())
	}
}
