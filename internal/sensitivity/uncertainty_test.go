package sensitivity

import (
	"context"
	"errors"
	"math"
	"testing"

	"socrel/internal/assembly"
	"socrel/internal/core"
)

func TestUncertaintyPointDistribution(t *testing.T) {
	// All-point inputs: zero output spread.
	f := func(p map[string]float64) (float64, error) { return p["a"] + p["b"], nil }
	res, err := Uncertainty(f, map[string]Dist{
		"a": {Kind: DistPoint, A: 2},
		"b": {Kind: DistPoint, A: 3},
	}, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mean != 5 || res.StdDev != 0 || res.Min != 5 || res.Max != 5 {
		t.Errorf("result = %+v", res)
	}
}

func TestUncertaintyUniformMoments(t *testing.T) {
	// Uniform [0, 1]: mean 0.5, sd 1/sqrt(12) ≈ 0.2887.
	f := func(p map[string]float64) (float64, error) { return p["u"], nil }
	res, err := Uncertainty(f, map[string]Dist{"u": {Kind: DistUniform, A: 0, B: 1}}, 50000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mean-0.5) > 0.01 {
		t.Errorf("mean = %g", res.Mean)
	}
	if math.Abs(res.StdDev-1/math.Sqrt(12)) > 0.01 {
		t.Errorf("sd = %g", res.StdDev)
	}
	if math.Abs(res.Median-0.5) > 0.02 || math.Abs(res.Q05-0.05) > 0.02 || math.Abs(res.Q95-0.95) > 0.02 {
		t.Errorf("quantiles = %+v", res)
	}
}

func TestUncertaintyNormal(t *testing.T) {
	f := func(p map[string]float64) (float64, error) { return p["x"], nil }
	res, err := Uncertainty(f, map[string]Dist{"x": {Kind: DistNormal, A: 10, B: 2}}, 50000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Mean-10) > 0.05 || math.Abs(res.StdDev-2) > 0.05 {
		t.Errorf("result = %+v", res)
	}
}

func TestUncertaintyLogUniform(t *testing.T) {
	// Log-uniform [1e-3, 1e-1]: median is the geometric mean 1e-2.
	f := func(p map[string]float64) (float64, error) { return p["r"], nil }
	res, err := Uncertainty(f, map[string]Dist{"r": {Kind: DistLogUniform, A: 1e-3, B: 1e-1}}, 50000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(math.Log10(res.Median)-(-2)) > 0.05 {
		t.Errorf("median = %g, want ~1e-2", res.Median)
	}
	if res.Min < 1e-3 || res.Max > 1e-1 {
		t.Errorf("support violated: [%g, %g]", res.Min, res.Max)
	}
}

func TestUncertaintyErrors(t *testing.T) {
	f := func(p map[string]float64) (float64, error) { return 0, nil }
	if _, err := Uncertainty(f, nil, 1, 1); !errors.Is(err, ErrBadRange) {
		t.Errorf("error = %v", err)
	}
	bad := map[string]Dist{"x": {Kind: DistUniform, A: 2, B: 1}}
	if _, err := Uncertainty(f, bad, 10, 1); !errors.Is(err, ErrBadRange) {
		t.Errorf("error = %v", err)
	}
	bad2 := map[string]Dist{"x": {Kind: DistLogUniform, A: -1, B: 1}}
	if _, err := Uncertainty(f, bad2, 10, 1); !errors.Is(err, ErrBadRange) {
		t.Errorf("error = %v", err)
	}
	bad3 := map[string]Dist{"x": {Kind: DistNormal, A: 0, B: -1}}
	if _, err := Uncertainty(f, bad3, 10, 1); !errors.Is(err, ErrBadRange) {
		t.Errorf("error = %v", err)
	}
	bad4 := map[string]Dist{"x": {Kind: DistKind(99)}}
	if _, err := Uncertainty(f, bad4, 10, 1); !errors.Is(err, ErrBadRange) {
		t.Errorf("error = %v", err)
	}
	boom := func(p map[string]float64) (float64, error) { return 0, errors.New("boom") }
	if _, err := Uncertainty(boom, map[string]Dist{"x": {Kind: DistPoint, A: 1}}, 10, 1); err == nil {
		t.Error("expected propagated error")
	}
}

func TestUncertaintyDeterministicSeed(t *testing.T) {
	f := func(p map[string]float64) (float64, error) { return p["u"], nil }
	d := map[string]Dist{"u": {Kind: DistUniform, A: 0, B: 1}}
	a, err := Uncertainty(f, d, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Uncertainty(f, d, 1000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != b.Mean || a.Q95 != b.Q95 {
		t.Error("same seed produced different results")
	}
}

// TestUncertaintyBatchCompiled routes a Monte Carlo study whose uncertain
// input is a formal parameter (the list-size workload) through the
// compiled batch kernel and requires bitwise agreement with the generic
// per-sample path: same seed, same draws, and the lane kernel is
// bit-identical to scalar evaluation.
func TestUncertaintyBatchCompiled(t *testing.T) {
	asm, err := assembly.RemoteAssembly(assembly.DefaultPaperParams())
	if err != nil {
		t.Fatal(err)
	}
	ca, err := core.Compile(asm, core.Options{}, "search")
	if err != nil {
		t.Fatal(err)
	}
	dists := map[string]Dist{"list": {Kind: DistLogUniform, A: 16, B: 1 << 20}}
	frame := func(env map[string]float64) []float64 { return []float64{1, env["list"], 1} }
	batch, err := UncertaintyBatch(context.Background(),
		CompiledParamBatch(ca, "search", frame), dists, 2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	generic, err := Uncertainty(func(env map[string]float64) (float64, error) {
		return ca.Pfail("search", 1, env["list"], 1)
	}, dists, 2000, 9)
	if err != nil {
		t.Fatal(err)
	}
	if batch != generic {
		t.Errorf("batch study %+v != generic study %+v", batch, generic)
	}
	if !(batch.Q05 < batch.Median && batch.Median < batch.Q95) {
		t.Errorf("quantiles not ordered: %+v", batch)
	}
}

// TestUncertaintyOnPaperModel puts a band around the remote assembly's
// reliability when gamma is only known to an order of magnitude — the
// realistic SOC setting where a provider's failure rate is a rough
// estimate.
func TestUncertaintyOnPaperModel(t *testing.T) {
	f := func(params map[string]float64) (float64, error) {
		p := assembly.DefaultPaperParams()
		p.Gamma = params["gamma"]
		return assembly.ClosedFormSearch(p, true, 1, 4096, 1), nil
	}
	res, err := Uncertainty(f, map[string]Dist{
		"gamma": {Kind: DistLogUniform, A: 5e-3, B: 5e-2},
	}, 5000, 5)
	if err != nil {
		t.Fatal(err)
	}
	// The unreliability band must be wide (gamma dominates) and ordered.
	if !(res.Q05 < res.Median && res.Median < res.Q95) {
		t.Errorf("quantiles not ordered: %+v", res)
	}
	if res.Q95-res.Q05 < 0.1 {
		t.Errorf("band too narrow for an order-of-magnitude gamma: %+v", res)
	}
	if res.Min < 0 || res.Max > 1 {
		t.Errorf("outputs escape [0,1]: %+v", res)
	}
}
