// Package propagation releases the paper's fail-stop assumption — the
// extension its conclusion explicitly defers ("the fail-stop assumption
// ... should be released to deal also with error propagation aspects
// [11]", citing Laprie's dependability taxonomy).
//
// Under fail-stop, every fault manifests as a detected service
// interruption, so an execution either completes correctly or visibly
// fails. With error propagation, a component may instead produce an
// *erroneous but undetected* result that contaminates downstream
// computation. Each flow state therefore gets a behavior quadruple:
//
//   - PFail:  probability the state visibly fails (the fail-stop part,
//     exactly what the reliability engine computes per state);
//   - PIntro: probability that, having not failed, the state introduces an
//     error into its output;
//   - PDetect: probability that a state *receiving* contaminated input
//     detects the error, turning it into a visible failure (fail-stop
//     recovery of detectability);
//   - PMask: probability that a state receiving contaminated input masks
//     the error (its output is clean despite the dirty input).
//
// The analysis builds the product chain (flow state) x (clean | dirty) and
// solves for the three absorbing outcomes: Correct (End reached with clean
// data), Erroneous (End reached with contaminated data — the silent
// failure mass invisible to a fail-stop model), and Failed.
package propagation

import (
	"errors"
	"fmt"

	"socrel/internal/core"
	"socrel/internal/markov"
	"socrel/internal/model"
)

// ErrBadBehavior is returned for probabilities outside [0, 1] or an
// inconsistent detect/mask split.
var ErrBadBehavior = errors.New("propagation: invalid state behavior")

// Behavior is the error-propagation behavior of one flow state.
type Behavior struct {
	// PFail is the visible (fail-stop) failure probability of the state.
	PFail float64
	// PIntro is the probability of introducing an error given no visible
	// failure.
	PIntro float64
	// PDetect is the probability of detecting contaminated input
	// (resulting in a visible failure).
	PDetect float64
	// PMask is the probability of masking contaminated input (clean
	// output). The remaining mass 1-PDetect-PMask propagates the error.
	PMask float64
}

func (b Behavior) validate(state string) error {
	for _, p := range []float64{b.PFail, b.PIntro, b.PDetect, b.PMask} {
		if p < 0 || p > 1 {
			return fmt.Errorf("%w: state %q has probability %g", ErrBadBehavior, state, p)
		}
	}
	if b.PDetect+b.PMask > 1+1e-12 {
		return fmt.Errorf("%w: state %q has PDetect+PMask = %g > 1", ErrBadBehavior, state, b.PDetect+b.PMask)
	}
	return nil
}

// Result is the three-way outcome distribution of an execution.
type Result struct {
	// PCorrect is the probability of completing with a correct result.
	PCorrect float64
	// PErroneous is the probability of completing with an undetected
	// erroneous result — invisible to a fail-stop analysis.
	PErroneous float64
	// PFailed is the probability of a visible failure.
	PFailed float64
}

// Reliability returns the strict reliability: correct completion only.
func (r Result) Reliability() float64 { return r.PCorrect }

// Analysis is an error-propagation model over a flow.
type Analysis struct {
	chain     *markov.Chain // the bare flow (Start/states/End), validated
	behaviors map[string]Behavior
}

// New creates an analysis over a flow chain. The chain must contain
// model.StartState and model.EndState; every non-Start/End transient state
// must get a Behavior via SetBehavior before Run.
func New(flow *markov.Chain) *Analysis {
	return &Analysis{chain: flow, behaviors: make(map[string]Behavior)}
}

// SetBehavior assigns a state's error behavior.
func (a *Analysis) SetBehavior(state string, b Behavior) error {
	if err := b.validate(state); err != nil {
		return err
	}
	if _, ok := a.chain.StateIndex(state); !ok {
		return fmt.Errorf("%w: %q", markov.ErrUnknownState, state)
	}
	a.behaviors[state] = b
	return nil
}

// Run solves the product chain and returns the outcome distribution.
func (a *Analysis) Run() (Result, error) {
	if err := a.chain.Validate(); err != nil {
		return Result{}, fmt.Errorf("propagation: %w", err)
	}
	const (
		okEnd  = "CorrectEnd"
		badEnd = "ErroneousEnd"
		fail   = "Fail"
	)
	clean := func(s string) string { return s + "|clean" }
	dirty := func(s string) string { return s + "|dirty" }

	prod := markov.New()
	prod.AddState(okEnd)
	prod.AddState(badEnd)
	prod.AddState(fail)

	states := a.chain.States()
	for _, s := range states {
		if s == model.EndState {
			continue
		}
		if s != model.StartState {
			if _, ok := a.behaviors[s]; !ok {
				return Result{}, fmt.Errorf("%w: state %q has no behavior", ErrBadBehavior, s)
			}
		}
		succ := a.chain.Successors(s)

		// Transition helper: from a product state with outcome
		// probabilities (pFailOut, pCleanOut, pDirtyOut), distribute over
		// the flow successors, mapping End to the terminal outcomes.
		emit := func(from string, pFailOut, pCleanOut, pDirtyOut float64) error {
			if pFailOut > 0 {
				if err := prod.SetTransition(from, fail, pFailOut); err != nil {
					return err
				}
			}
			for next, p := range succ {
				if p == 0 {
					continue
				}
				cleanTo, dirtyTo := clean(next), dirty(next)
				if next == model.EndState {
					cleanTo, dirtyTo = okEnd, badEnd
				}
				if pCleanOut > 0 {
					if err := prod.SetTransition(from, cleanTo, pCleanOut*p); err != nil {
						return err
					}
				}
				if pDirtyOut > 0 {
					if err := prod.SetTransition(from, dirtyTo, pDirtyOut*p); err != nil {
						return err
					}
				}
			}
			return nil
		}

		if s == model.StartState {
			// Start models no behavior: clean pass-through (the paper's
			// "no failure can occur in it").
			if err := emit(clean(s), 0, 1, 0); err != nil {
				return Result{}, err
			}
			continue
		}
		b := a.behaviors[s]

		// Clean input: fail with PFail; otherwise introduce an error with
		// PIntro.
		if err := emit(clean(s), b.PFail, (1-b.PFail)*(1-b.PIntro), (1-b.PFail)*b.PIntro); err != nil {
			return Result{}, err
		}

		// Dirty input: detect (visible failure), mask (process as clean),
		// or propagate. Masking still exposes the state's own failure and
		// error-introduction behavior; propagation keeps the output dirty
		// but the state can still visibly fail on its own.
		pProp := 1 - b.PDetect - b.PMask
		failOut := b.PDetect + (b.PMask+pProp)*b.PFail
		cleanOut := b.PMask * (1 - b.PFail) * (1 - b.PIntro)
		dirtyOut := b.PMask*(1-b.PFail)*b.PIntro + pProp*(1-b.PFail)
		if err := emit(dirty(s), failOut, cleanOut, dirtyOut); err != nil {
			return Result{}, err
		}
	}

	abs, err := markov.NewAbsorbing(prod, markov.MethodAuto)
	if err != nil {
		return Result{}, fmt.Errorf("propagation: %w", err)
	}
	start := clean(model.StartState)
	var res Result
	if res.PCorrect, err = abs.AbsorptionProbability(start, okEnd); err != nil {
		return Result{}, err
	}
	if res.PErroneous, err = abs.AbsorptionProbability(start, badEnd); err != nil {
		return Result{}, err
	}
	if res.PFailed, err = abs.AbsorptionProbability(start, fail); err != nil {
		return Result{}, err
	}
	return res, nil
}

// FromComposite builds an analysis for a composite service at a concrete
// parameter point: the per-state visible failure probabilities come from
// the reliability engine (a core.Report), the flow structure from the
// composite, and the error behaviors (PIntro/PDetect/PMask) from the
// supplied map (states absent from the map get zero error behavior —
// pure fail-stop).
func FromComposite(resolver model.Resolver, comp *model.Composite, params []float64, opts core.Options, errBehaviors map[string]Behavior) (*Analysis, error) {
	ev := core.New(resolver, opts)
	rep, err := ev.Report(comp.Name(), params...)
	if err != nil {
		return nil, err
	}
	env, err := model.Env(comp, params)
	if err != nil {
		return nil, err
	}
	chain := markov.New()
	chain.AddState(model.StartState)
	chain.AddState(model.EndState)
	for _, tr := range comp.Flow().Transitions() {
		p, err := tr.Prob.Eval(env)
		if err != nil {
			return nil, fmt.Errorf("propagation: transition %s -> %s: %w", tr.From, tr.To, err)
		}
		if err := chain.SetTransition(tr.From, tr.To, p); err != nil {
			return nil, err
		}
	}
	a := New(chain)
	for _, st := range rep.States {
		b := errBehaviors[st.Name]
		b.PFail = st.PFail
		if err := a.SetBehavior(st.Name, b); err != nil {
			return nil, err
		}
	}
	return a, nil
}
