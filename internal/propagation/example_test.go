package propagation_test

import (
	"fmt"

	"socrel/internal/markov"
	"socrel/internal/model"
	"socrel/internal/propagation"
)

// Example shows what fail-stop analyses miss: a pipeline whose first stage
// silently corrupts 10% of its outputs while the second stage detects only
// half of the corrupted inputs.
func Example() {
	flow := markov.New()
	for _, tr := range []struct{ from, to string }{
		{model.StartState, "produce"},
		{"produce", "consume"},
		{"consume", model.EndState},
	} {
		if err := flow.SetTransition(tr.from, tr.to, 1); err != nil {
			fmt.Println("error:", err)
			return
		}
	}
	a := propagation.New(flow)
	if err := a.SetBehavior("produce", propagation.Behavior{PIntro: 0.1}); err != nil {
		fmt.Println("error:", err)
		return
	}
	if err := a.SetBehavior("consume", propagation.Behavior{PDetect: 0.5}); err != nil {
		fmt.Println("error:", err)
		return
	}
	res, err := a.Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("correct:           %.2f\n", res.PCorrect)
	fmt.Printf("silently erroneous: %.2f\n", res.PErroneous)
	fmt.Printf("visibly failed:     %.2f\n", res.PFailed)
	// Output:
	// correct:           0.90
	// silently erroneous: 0.05
	// visibly failed:     0.05
}
