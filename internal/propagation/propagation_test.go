package propagation

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"socrel/internal/assembly"
	"socrel/internal/core"
	"socrel/internal/markov"
	"socrel/internal/model"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// linearChain builds Start -> s1 -> s2 -> End.
func linearChain(t *testing.T) *markov.Chain {
	t.Helper()
	c := markov.New()
	for _, tr := range []struct{ from, to string }{
		{model.StartState, "s1"}, {"s1", "s2"}, {"s2", model.EndState},
	} {
		if err := c.SetTransition(tr.from, tr.to, 1); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestPureFailStopMatchesReliability(t *testing.T) {
	// With zero error behavior the analysis reduces to the fail-stop
	// result: PCorrect = (1-f1)(1-f2), PErroneous = 0.
	c := linearChain(t)
	a := New(c)
	if err := a.SetBehavior("s1", Behavior{PFail: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetBehavior("s2", Behavior{PFail: 0.2}); err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(res.PCorrect, 0.9*0.8, 1e-12) {
		t.Errorf("PCorrect = %g, want 0.72", res.PCorrect)
	}
	if res.PErroneous != 0 {
		t.Errorf("PErroneous = %g, want 0", res.PErroneous)
	}
	if !approxEq(res.PFailed, 1-0.72, 1e-12) {
		t.Errorf("PFailed = %g", res.PFailed)
	}
}

func TestErrorIntroductionHandComputed(t *testing.T) {
	// s1 introduces errors with 0.3 (never fails); s2 neither detects nor
	// masks. PErroneous = 0.3, PCorrect = 0.7.
	c := linearChain(t)
	a := New(c)
	if err := a.SetBehavior("s1", Behavior{PIntro: 0.3}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetBehavior("s2", Behavior{}); err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(res.PErroneous, 0.3, 1e-12) || !approxEq(res.PCorrect, 0.7, 1e-12) {
		t.Errorf("result = %+v", res)
	}
}

func TestDetectionTurnsErrorsIntoFailures(t *testing.T) {
	// Full detection downstream: the erroneous mass becomes failures.
	c := linearChain(t)
	a := New(c)
	if err := a.SetBehavior("s1", Behavior{PIntro: 0.3}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetBehavior("s2", Behavior{PDetect: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(res.PFailed, 0.3, 1e-12) || res.PErroneous != 0 {
		t.Errorf("result = %+v", res)
	}
}

func TestMaskingRestoresCorrectness(t *testing.T) {
	// Full masking downstream: the erroneous mass is recovered.
	c := linearChain(t)
	a := New(c)
	if err := a.SetBehavior("s1", Behavior{PIntro: 0.3}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetBehavior("s2", Behavior{PMask: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(res.PCorrect, 1, 1e-12) {
		t.Errorf("result = %+v", res)
	}
}

func TestMixedDetectMaskPropagate(t *testing.T) {
	// s1 introduces with 0.4; s2: detect 0.25, mask 0.25, propagate 0.5.
	c := linearChain(t)
	a := New(c)
	if err := a.SetBehavior("s1", Behavior{PIntro: 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetBehavior("s2", Behavior{PDetect: 0.25, PMask: 0.25}); err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	wantCorrect := 0.6 + 0.4*0.25 // clean path + masked
	wantErr := 0.4 * 0.5          // propagated
	wantFail := 0.4 * 0.25        // detected
	if !approxEq(res.PCorrect, wantCorrect, 1e-12) ||
		!approxEq(res.PErroneous, wantErr, 1e-12) ||
		!approxEq(res.PFailed, wantFail, 1e-12) {
		t.Errorf("result = %+v, want (%g, %g, %g)", res, wantCorrect, wantErr, wantFail)
	}
}

// TestOutcomesSumToOne is a property test over random chains/behaviors.
func TestOutcomesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func() bool {
		n := rng.Intn(5) + 1
		c := markov.New()
		prev := model.StartState
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = "s" + string(rune('0'+i))
			if err := c.SetTransition(prev, names[i], 1); err != nil {
				return false
			}
			prev = names[i]
		}
		if err := c.SetTransition(prev, model.EndState, 1); err != nil {
			return false
		}
		a := New(c)
		for _, name := range names {
			d := rng.Float64()
			m := rng.Float64() * (1 - d)
			if err := a.SetBehavior(name, Behavior{
				PFail:   rng.Float64() * 0.5,
				PIntro:  rng.Float64() * 0.5,
				PDetect: d,
				PMask:   m,
			}); err != nil {
				return false
			}
		}
		res, err := a.Run()
		if err != nil {
			return false
		}
		sum := res.PCorrect + res.PErroneous + res.PFailed
		return approxEq(sum, 1, 1e-9) &&
			res.PCorrect >= 0 && res.PErroneous >= 0 && res.PFailed >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBehaviorValidation(t *testing.T) {
	c := linearChain(t)
	a := New(c)
	if err := a.SetBehavior("s1", Behavior{PFail: -0.1}); !errors.Is(err, ErrBadBehavior) {
		t.Errorf("error = %v", err)
	}
	if err := a.SetBehavior("s1", Behavior{PDetect: 0.7, PMask: 0.7}); !errors.Is(err, ErrBadBehavior) {
		t.Errorf("error = %v", err)
	}
	if err := a.SetBehavior("ghost", Behavior{}); !errors.Is(err, markov.ErrUnknownState) {
		t.Errorf("error = %v", err)
	}
	// Missing behavior surfaces at Run.
	if err := a.SetBehavior("s1", Behavior{}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Run(); !errors.Is(err, ErrBadBehavior) {
		t.Errorf("error = %v", err)
	}
}

func TestBranchingFlowPropagation(t *testing.T) {
	// Start -> a (0.5) -> End, Start -> b (0.5) -> End; only a introduces.
	c := markov.New()
	if err := c.SetTransition(model.StartState, "a", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := c.SetTransition(model.StartState, "b", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := c.SetTransition("a", model.EndState, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.SetTransition("b", model.EndState, 1); err != nil {
		t.Fatal(err)
	}
	a := New(c)
	if err := a.SetBehavior("a", Behavior{PIntro: 0.4}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetBehavior("b", Behavior{}); err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(res.PErroneous, 0.2, 1e-12) {
		t.Errorf("PErroneous = %g, want 0.2", res.PErroneous)
	}
}

// TestFromCompositeMatchesEngine verifies the bridge: with zero error
// behaviors, PCorrect equals the engine's reliability, and with nonzero
// introduction the silent-failure mass appears.
func TestFromCompositeMatchesEngine(t *testing.T) {
	p := assembly.DefaultPaperParams()
	p.Gamma = 5e-2
	asm, err := assembly.RemoteAssembly(p)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := asm.ServiceByName("search")
	if err != nil {
		t.Fatal(err)
	}
	comp := svc.(*model.Composite)
	params := []float64{1, 4096, 1}

	failStop, err := core.New(asm, core.Options{}).Reliability("search", params...)
	if err != nil {
		t.Fatal(err)
	}

	// Zero error behaviors: exact fail-stop agreement.
	a, err := FromComposite(asm, comp, params, core.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(res.PCorrect, failStop, 1e-12) || res.PErroneous != 0 {
		t.Errorf("fail-stop bridge: %+v vs engine %g", res, failStop)
	}

	// The sort state silently corrupts 1% of its outputs; the lookup
	// state detects half of the corrupted inputs.
	a2, err := FromComposite(asm, comp, params, core.Options{}, map[string]Behavior{
		"sort":   {PIntro: 0.01},
		"lookup": {PDetect: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := a2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res2.PErroneous <= 0 {
		t.Error("expected a silent-failure mass")
	}
	if res2.PCorrect >= failStop {
		t.Errorf("strict reliability %g should drop below fail-stop %g", res2.PCorrect, failStop)
	}
	if !approxEq(res2.PCorrect+res2.PErroneous+res2.PFailed, 1, 1e-9) {
		t.Errorf("outcomes sum to %g", res2.PCorrect+res2.PErroneous+res2.PFailed)
	}
}
