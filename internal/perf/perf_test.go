package perf

import (
	"errors"
	"math"
	"testing"

	"socrel/internal/assembly"
	"socrel/internal/expr"
	"socrel/internal/model"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func paperProfile(t *testing.T, asm *assembly.Assembly) *Profile {
	t.Helper()
	p := New(asm)
	if err := p.UseCanonicalCosts(asm.ServiceNames()); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSimpleCPUCost(t *testing.T) {
	asm := assembly.New("t")
	asm.MustAddService(model.NewCPU("cpu1", 1e9, 1e-10))
	p := paperProfile(t, asm)
	got, err := p.ExpectedTime("cpu1", 2e9)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(got, 2, 1e-12) {
		t.Errorf("ExpectedTime = %g, want 2", got)
	}
}

func TestSimpleNetCost(t *testing.T) {
	asm := assembly.New("t")
	asm.MustAddService(model.NewNetwork("net", 1e5, 1e-2))
	p := paperProfile(t, asm)
	got, err := p.ExpectedTime("net", 5e4)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(got, 0.5, 1e-12) {
		t.Errorf("ExpectedTime = %g, want 0.5", got)
	}
}

func TestMissingCostLaw(t *testing.T) {
	asm := assembly.New("t")
	asm.MustAddService(model.NewCPU("cpu1", 1e9, 1e-10))
	p := New(asm) // no canonical costs
	if _, err := p.ExpectedTime("cpu1", 1); !errors.Is(err, ErrNoCost) {
		t.Errorf("error = %v, want ErrNoCost", err)
	}
	if _, err := p.ExpectedTime("ghost"); !errors.Is(err, model.ErrUnknownService) {
		t.Errorf("error = %v", err)
	}
}

func TestPerfectServicesZeroCost(t *testing.T) {
	asm := assembly.New("t")
	asm.MustAddService(model.NewPerfect("loc", "ip", "op"))
	p := paperProfile(t, asm)
	got, err := p.ExpectedTime("loc", 10, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("ExpectedTime = %g, want 0", got)
	}
}

// TestPaperSearchTimeHandComputed verifies the composite accumulation on
// the paper's local assembly against the hand-derived expectation:
// E[T] = q * (T_lpc + T_sort1) + T_lookup
// where T_lpc = l/s1, T_sort1 = L*log2(L)/s1, T_lookup = log2(L)/s1.
func TestPaperSearchTimeHandComputed(t *testing.T) {
	pp := assembly.DefaultPaperParams()
	asm, err := assembly.LocalAssembly(pp)
	if err != nil {
		t.Fatal(err)
	}
	p := paperProfile(t, asm)
	list := 4096.0
	got, err := p.ExpectedTime("search", 1, list, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := pp.Q*(pp.L/pp.S1+list*math.Log2(list)/pp.S1) + math.Log2(list)/pp.S1
	if !approxEq(got, want, 1e-15) {
		t.Errorf("ExpectedTime = %g, want %g", got, want)
	}
}

// TestRemoteSlowerThanLocal mirrors Figure 6 in the time domain
// (experiment T7): with the default constants the remote assembly pays the
// RPC marshaling and transmission costs, so it is slower.
func TestRemoteSlowerThanLocal(t *testing.T) {
	pp := assembly.DefaultPaperParams()
	local, err := assembly.LocalAssembly(pp)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := assembly.RemoteAssembly(pp)
	if err != nil {
		t.Fatal(err)
	}
	for _, list := range []float64{16, 1024, 1 << 20} {
		tl, err := paperProfile(t, local).ExpectedTime("search", 1, list, 1)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := paperProfile(t, remote).ExpectedTime("search", 1, list, 1)
		if err != nil {
			t.Fatal(err)
		}
		if tr <= tl {
			t.Errorf("list=%g: remote %g should be slower than local %g", list, tr, tl)
		}
	}
}

// TestRemoteTimeHandComputed checks the RPC transport cost explicitly:
// E[T_remote] = q*(T_rpc + T_sort2) + T_lookup with
// T_rpc = 2*c*(ip+op)/s1... split across both cpus and the network.
func TestRemoteTimeHandComputed(t *testing.T) {
	pp := assembly.DefaultPaperParams()
	asm, err := assembly.RemoteAssembly(pp)
	if err != nil {
		t.Fatal(err)
	}
	p := paperProfile(t, asm)
	elem, list, res := 1.0, 1024.0, 1.0
	got, err := p.ExpectedTime("search", elem, list, res)
	if err != nil {
		t.Fatal(err)
	}
	ip, op := elem+list, res
	tRPC := pp.C*ip/pp.S1 + pp.M*ip/pp.B + pp.C*ip/pp.S2 + // request leg
		pp.C*op/pp.S2 + pp.M*op/pp.B + pp.C*op/pp.S1 // response leg
	tSort := list * math.Log2(list) / pp.S2
	tLookup := math.Log2(list) / pp.S1
	want := pp.Q*(tRPC+tSort) + tLookup
	if !approxEq(got, want, 1e-15) {
		t.Errorf("ExpectedTime = %g, want %g", got, want)
	}
}

func TestLoopingFlowTime(t *testing.T) {
	// s -> s with prob r: expected visits 1/(1-r), each visit costs c.
	asm := assembly.New("t")
	asm.MustAddService(model.NewCPU("cpu", 1, 0)) // cost law N/s = N
	c := model.NewComposite("app", nil, nil)
	st, err := c.Flow().AddState("s", model.AND, model.NoSharing)
	if err != nil {
		t.Fatal(err)
	}
	st.AddRequest(model.Request{Role: "cpu", Params: []expr.Expr{expr.Num(3)}})
	if err := c.Flow().AddTransitionP(model.StartState, "s", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Flow().AddTransitionP("s", "s", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := c.Flow().AddTransitionP("s", model.EndState, 0.5); err != nil {
		t.Fatal(err)
	}
	asm.MustAddService(c)
	p := paperProfile(t, asm)
	got, err := p.ExpectedTime("app")
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(got, 6, 1e-12) { // 2 expected visits * cost 3
		t.Errorf("ExpectedTime = %g, want 6", got)
	}
}

func TestRecursiveAssemblyRejected(t *testing.T) {
	asm := assembly.New("t")
	c := model.NewComposite("a", nil, nil)
	st, err := c.Flow().AddState("s", model.AND, model.NoSharing)
	if err != nil {
		t.Fatal(err)
	}
	st.AddRequest(model.Request{Role: "a"})
	if err := c.Flow().AddTransitionP(model.StartState, "s", 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Flow().AddTransitionP("s", model.EndState, 1); err != nil {
		t.Fatal(err)
	}
	asm.MustAddService(c)
	p := paperProfile(t, asm)
	if _, err := p.ExpectedTime("a"); err == nil {
		t.Error("expected recursion error")
	}
}

func TestSetCostOverride(t *testing.T) {
	asm := assembly.New("t")
	asm.MustAddService(model.NewCPU("cpu1", 1e9, 0))
	p := New(asm)
	p.SetCost("cpu1", expr.MustParse("2 * N / s"))
	got, err := p.ExpectedTime("cpu1", 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(got, 2, 1e-12) {
		t.Errorf("overridden cost = %g, want 2", got)
	}
	// UseCanonicalCosts must not clobber the explicit law.
	if err := p.UseCanonicalCosts(asm.ServiceNames()); err != nil {
		t.Fatal(err)
	}
	got, err = p.ExpectedTime("cpu1", 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(got, 2, 1e-12) {
		t.Errorf("cost after UseCanonicalCosts = %g, want 2", got)
	}
}
